//===- observe/Profile.cpp - End-of-run --profile report -------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//

#include "observe/Profile.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

namespace igdt {

double ProfileReport::cacheHitRate() const {
  std::uint64_t Lookups = CacheHits + CacheMisses;
  return Lookups ? double(CacheHits) / double(Lookups) : 0;
}

double ProfileReport::modelCacheAvoidRate() const {
  return SolverQueries ? double(ModelCacheHits) / double(SolverQueries) : 0;
}

double ProfileReport::codeCacheHitRate() const {
  std::uint64_t Requests = JitCompiles + JitCodeCacheHits;
  return Requests ? double(JitCodeCacheHits) / double(Requests) : 0;
}

double ProfileReport::storeHitRate() const {
  std::uint64_t Lookups = StoreHits + StoreMisses;
  return Lookups ? double(StoreHits) / double(Lookups) : 0;
}

std::string ProfileReport::render() const {
  std::string Out = "== profile ==\n";
  {
    TablePrinter T({"stage", "total ms", "count", "mean ms"});
    for (const Stage &S : Stages)
      T.addRow({S.Name, formatString("%.2f", S.TotalMillis),
                formatString("%llu", (unsigned long long)S.Count),
                formatString("%.3f",
                             S.Count ? S.TotalMillis / double(S.Count) : 0)});
    Out += T.render();
  }
  if (!TopInstructions.empty()) {
    Out += "\n";
    TablePrinter T({"instruction", "total ms"});
    for (const Item &I : TopInstructions)
      T.addRow({I.Name, formatString("%.2f", I.Millis)});
    Out += T.render();
  }
  {
    Out += "\n";
    TablePrinter T({"solver cache", "value"});
    T.addRow({"queries",
              formatString("%llu", (unsigned long long)SolverQueries)});
    T.addRow({"hits", formatString("%llu", (unsigned long long)CacheHits)});
    T.addRow({"misses", formatString("%llu", (unsigned long long)CacheMisses)});
    T.addRow({"unsat subsumed",
              formatString("%llu", (unsigned long long)CacheUnsatSubsumed)});
    T.addRow({"hit rate", formatPercent(cacheHitRate())});
    T.addRow({"model-bank hits",
              formatString("%llu", (unsigned long long)ModelCacheHits)});
    T.addRow({"model-bank avoid rate", formatPercent(modelCacheAvoidRate())});
    T.addRow({"prefix-reuse solves",
              formatString("%llu", (unsigned long long)PrefixReuseSolves)});
    T.addRow({"full solves",
              formatString("%llu", (unsigned long long)FullSolves)});
    Out += T.render();
  }
  {
    Out += "\n";
    TablePrinter T({"code cache", "value"});
    T.addRow({"compiles",
              formatString("%llu", (unsigned long long)JitCompiles)});
    T.addRow({"hits",
              formatString("%llu", (unsigned long long)JitCodeCacheHits)});
    T.addRow({"hit rate", formatPercent(codeCacheHitRate())});
    Out += T.render();
  }
  if (HasStore) {
    Out += "\n";
    TablePrinter T({"verdict store", "value"});
    auto U64 = [](std::uint64_t V) {
      return formatString("%llu", (unsigned long long)V);
    };
    T.addRow({"served", U64(StoreServed)});
    T.addRow({"hits", U64(StoreHits)});
    T.addRow({"misses", U64(StoreMisses)});
    T.addRow({"hit rate", formatPercent(storeHitRate())});
    T.addRow({"stored", U64(StoreStores)});
    T.addRow({"live solver queries", U64(LiveSolverQueries)});
    Out += T.render();
  }
  if (HasSchedule) {
    Out += "\n";
    TablePrinter T({"scheduling", "value"});
    auto U64 = [](std::uint64_t V) {
      return formatString("%llu", (unsigned long long)V);
    };
    T.addRow({"waves", U64(ScheduleWaves)});
    T.addRow({"tier escalations", U64(ScheduleTierEscalations)});
    T.addRow({"early exits", U64(ScheduleEarlyExits)});
    T.addRow({"pool refunds", U64(SchedulePoolRefunds)});
    T.addRow({"pool refund units", U64(SchedulePoolRefundUnits)});
    T.addRow({"pool transfers", U64(SchedulePoolGrants)});
    T.addRow({"pool grant units", U64(SchedulePoolGrantUnits)});
    T.addRow({"priority inversions", U64(SchedulePriorityInversions)});
    T.addRow({"warm-start entries", U64(ScheduleWarmStartEntries)});
    T.addRow({"discarded runs", U64(ScheduleDiscardedRuns)});
    T.addRow({"discarded units", U64(ScheduleDiscardedUnits)});
    Out += T.render();
  }
  if (!Metrics.empty()) {
    Out += "\n";
    Out += Metrics.render();
  }
  return Out;
}

JsonValue ProfileReport::toJson() const {
  JsonValue V = JsonValue::object();
  JsonValue StagesJson = JsonValue::array();
  for (const Stage &S : Stages) {
    JsonValue One = JsonValue::object();
    One.set("stage", JsonValue::string(S.Name));
    One.set("total_millis", JsonValue::number(S.TotalMillis));
    One.set("count", JsonValue::number(static_cast<double>(S.Count)));
    StagesJson.push(std::move(One));
  }
  V.set("stages", std::move(StagesJson));
  JsonValue TopJson = JsonValue::array();
  for (const Item &I : TopInstructions) {
    JsonValue One = JsonValue::object();
    One.set("instruction", JsonValue::string(I.Name));
    One.set("total_millis", JsonValue::number(I.Millis));
    TopJson.push(std::move(One));
  }
  V.set("top_instructions", std::move(TopJson));
  JsonValue Cache = JsonValue::object();
  Cache.set("queries", JsonValue::number(static_cast<double>(SolverQueries)));
  Cache.set("hits", JsonValue::number(static_cast<double>(CacheHits)));
  Cache.set("misses", JsonValue::number(static_cast<double>(CacheMisses)));
  Cache.set("unsat_subsumed",
            JsonValue::number(static_cast<double>(CacheUnsatSubsumed)));
  Cache.set("hit_rate", JsonValue::number(cacheHitRate()));
  Cache.set("model_hits",
            JsonValue::number(static_cast<double>(ModelCacheHits)));
  Cache.set("model_avoid_rate", JsonValue::number(modelCacheAvoidRate()));
  Cache.set("prefix_reuse_solves",
            JsonValue::number(static_cast<double>(PrefixReuseSolves)));
  Cache.set("full_solves",
            JsonValue::number(static_cast<double>(FullSolves)));
  V.set("solver_cache", std::move(Cache));
  JsonValue CodeCache = JsonValue::object();
  CodeCache.set("compiles",
                JsonValue::number(static_cast<double>(JitCompiles)));
  CodeCache.set("hits",
                JsonValue::number(static_cast<double>(JitCodeCacheHits)));
  CodeCache.set("hit_rate", JsonValue::number(codeCacheHitRate()));
  V.set("code_cache", std::move(CodeCache));
  if (HasStore) {
    auto N = [](std::uint64_t V) {
      return JsonValue::number(static_cast<double>(V));
    };
    JsonValue StoreJson = JsonValue::object();
    StoreJson.set("served", N(StoreServed));
    StoreJson.set("hits", N(StoreHits));
    StoreJson.set("misses", N(StoreMisses));
    StoreJson.set("hit_rate", JsonValue::number(storeHitRate()));
    StoreJson.set("stored", N(StoreStores));
    StoreJson.set("live_solver_queries", N(LiveSolverQueries));
    V.set("store", std::move(StoreJson));
  }
  if (HasSchedule) {
    auto N = [](std::uint64_t V) {
      return JsonValue::number(static_cast<double>(V));
    };
    JsonValue Sched = JsonValue::object();
    Sched.set("waves", N(ScheduleWaves));
    Sched.set("tier_escalations", N(ScheduleTierEscalations));
    Sched.set("early_exits", N(ScheduleEarlyExits));
    Sched.set("pool_refunds", N(SchedulePoolRefunds));
    Sched.set("pool_refund_units", N(SchedulePoolRefundUnits));
    Sched.set("pool_transfers", N(SchedulePoolGrants));
    Sched.set("pool_grant_units", N(SchedulePoolGrantUnits));
    Sched.set("priority_inversions", N(SchedulePriorityInversions));
    Sched.set("warm_start_entries", N(ScheduleWarmStartEntries));
    Sched.set("discarded_runs", N(ScheduleDiscardedRuns));
    Sched.set("discarded_units", N(ScheduleDiscardedUnits));
    V.set("scheduling", std::move(Sched));
  }
  V.set("metrics", Metrics.toJson());
  return V;
}

} // namespace igdt
