//===- observe/MetricsRegistry.cpp - Named counters and histograms ---------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//

#include "observe/MetricsRegistry.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

namespace igdt {

void MetricsRegistry::Histogram::sample(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    Min = Value < Min ? Value : Min;
    Max = Value > Max ? Value : Max;
  }
  ++Count;
  Total += Value;
}

void MetricsRegistry::Histogram::merge(const Histogram &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  Min = Other.Min < Min ? Other.Min : Min;
  Max = Other.Max > Max ? Other.Max : Max;
  Count += Other.Count;
  Total += Other.Total;
}

void MetricsRegistry::add(const std::string &Name, std::uint64_t Delta) {
  Counters[Name] += Delta;
}

void MetricsRegistry::sample(const std::string &Name, double Value) {
  Histograms[Name].sample(Value);
}

std::uint64_t MetricsRegistry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, H] : Other.Histograms)
    Histograms[Name].merge(H);
}

void MetricsRegistry::reset() {
  Counters.clear();
  Histograms.clear();
}

std::string MetricsRegistry::render() const {
  std::string Out;
  if (!Counters.empty()) {
    TablePrinter T({"counter", "value"});
    for (const auto &[Name, Value] : Counters)
      T.addRow({Name, formatString("%llu", (unsigned long long)Value)});
    Out += T.render();
  }
  if (!Histograms.empty()) {
    if (!Out.empty())
      Out += "\n";
    TablePrinter T({"histogram", "count", "total", "mean", "min", "max"});
    for (const auto &[Name, H] : Histograms)
      T.addRow({Name, formatString("%llu", (unsigned long long)H.Count),
                formatString("%.3f", H.Total), formatString("%.3f", H.mean()),
                formatString("%.3f", H.Min), formatString("%.3f", H.Max)});
    Out += T.render();
  }
  return Out;
}

JsonValue MetricsRegistry::toJson() const {
  JsonValue V = JsonValue::object();
  JsonValue C = JsonValue::object();
  for (const auto &[Name, Value] : Counters)
    C.set(Name, JsonValue::number(static_cast<double>(Value)));
  V.set("counters", std::move(C));
  JsonValue H = JsonValue::object();
  for (const auto &[Name, Hist] : Histograms) {
    JsonValue One = JsonValue::object();
    One.set("count", JsonValue::number(static_cast<double>(Hist.Count)));
    One.set("total", JsonValue::number(Hist.Total));
    One.set("min", JsonValue::number(Hist.Min));
    One.set("max", JsonValue::number(Hist.Max));
    H.set(Name, std::move(One));
  }
  V.set("histograms", std::move(H));
  return V;
}

void MetricsSink::emit(TraceEvent Event) {
  Registry.add(std::string("events.") + traceEventKindName(Event.Kind));
  switch (Event.Kind) {
  case TraceEventKind::SolverQuery:
    Registry.add("events.solver.status." + Event.Detail);
    Registry.add("events.solver.nodes", Event.Value);
    Registry.add("events.solver.cases", Event.Extra);
    break;
  case TraceEventKind::CacheLookup:
    // "code-*" details come from the JIT code cache; everything else
    // from the solver's memo tiers.
    Registry.add((Event.Detail.rfind("code-", 0) == 0
                      ? "events.jit.cache."
                      : "events.solver.cache.") +
                 Event.Detail);
    break;
  case TraceEventKind::LadderRung:
    Registry.add("events.ladder.retries");
    if (Event.Detail == "sat" || Event.Detail == "unsat")
      Registry.add("events.ladder.rescues");
    break;
  case TraceEventKind::PathExplored:
    Registry.add("events.paths.explored");
    if (Event.Extra)
      Registry.add("events.paths.curated");
    break;
  case TraceEventKind::ExploreDone:
    if (Event.Millis > 0)
      Registry.sample("stage.explore.millis", Event.Millis);
    break;
  case TraceEventKind::Compile:
    Registry.add("events.compile." + Event.Detail);
    Registry.add("events.compile.bytes", Event.Value);
    break;
  case TraceEventKind::SimRun:
    Registry.add("events.sim.exit." + Event.Detail);
    Registry.add("events.sim.fuel", Event.Value);
    break;
  case TraceEventKind::PathVerdict:
    Registry.add("events.verdict." + Event.Detail);
    break;
  case TraceEventKind::Containment:
    Registry.add("events.containment." + Event.Detail);
    break;
  case TraceEventKind::Quarantine:
    break;
  case TraceEventKind::StageTime:
    if (Event.Millis > 0)
      Registry.sample("stage." + Event.Detail + ".millis", Event.Millis);
    break;
  case TraceEventKind::WorkerEvent:
    Registry.add("events.worker." + Event.Detail);
    break;
  }
}

} // namespace igdt
