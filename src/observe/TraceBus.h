//===- observe/TraceBus.h - Structured pipeline tracing --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead structured tracing bus threaded through the whole
/// pipeline (solver, explorer, Cogit front-ends, simulator, differential
/// tester, campaign runner). Emitters hold a nullable `TraceSink *`; the
/// disabled-path cost is exactly one branch on that pointer, so tier-1
/// timings are unaffected when nobody is listening.
///
/// Under `CampaignOptions::Jobs > 1` each worker buffers its events in a
/// worker-local `TraceBuffer` and the campaign's single merge thread
/// flushes buffers in catalog order — the same discipline checkpoints and
/// incidents already follow — so the JSONL trace is byte-identical at any
/// job count. The one deliberately scheduling-dependent event kind
/// (CacheLookup: tier-2 SharedUnsatIndex hits vary with worker timing) is
/// filtered out of the deterministic trace file and only feeds diagnostic
/// metrics.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_OBSERVE_TRACEBUS_H
#define IGDT_OBSERVE_TRACEBUS_H

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace igdt {

/// The event taxonomy. One kind per pipeline stage boundary the
/// evaluation cares about; see DESIGN.md "Observability" for the field
/// conventions of each kind.
enum class TraceEventKind : std::uint8_t {
  /// Solver answered one query. Detail=status, Value=nodes searched,
  /// Extra=cases explored (both deltas for this query, cost-compensated
  /// on cache hits so they are scheduling-independent).
  SolverQuery,
  /// Solver cache diagnostics. Detail=hit|miss|unsat-subsumed|shared-hit.
  /// Scheduling-dependent by design (tier-2 hits depend on worker
  /// interleaving); excluded from deterministic trace files.
  CacheLookup,
  /// Degradation-ladder retry of an Unknown negation. Value=rung,
  /// Detail=resulting status.
  LadderRung,
  /// Concolic execution finished one path. Detail=exit kind,
  /// Extra=1 when the path survived curation, Value=path index.
  PathExplored,
  /// Exploration of one instruction completed. Detail=complete or
  /// budget-exhausted, Value=path count, Millis=exploration wall time.
  ExploreDone,
  /// A Cogit front-end produced code. Detail=compiler kind, Aux=unit
  /// (bytecode|method|native-method), Value=machine code bytes.
  Compile,
  /// MachineSim executed compiled code. Detail=machine exit kind,
  /// Value=fuel consumed, Aux=dispatch engine (reference|predecoded),
  /// Extra=1 when the predecoded form was served from the code cache.
  /// The campaign merge loop blanks Aux/Extra so deterministic trace
  /// files stay byte-identical across predecode/arena configurations;
  /// Session-level traces keep them.
  SimRun,
  /// DifferentialTester classified one path. Detail=path status,
  /// Aux=compiler/backend, Value=path index.
  PathVerdict,
  /// CampaignRunner contained a harness fault. Detail=stage,
  /// Aux=error class, Value=attempt number.
  Containment,
  /// CampaignRunner quarantined an instruction. Value=attempts used.
  Quarantine,
  /// Named stage duration. Detail=stage name, Millis=duration.
  StageTime,
  /// Worker-process lifecycle (out-of-process campaigns): a worker
  /// crashed, hung past the watchdog or answered corruptly.
  /// Detail=failure kind, Aux=error text, Value=worker id, Extra=pid.
  /// Scheduling-dependent by nature (which worker, which pid); the
  /// campaign merge loop blanks Value/Extra and the deterministic
  /// trace file excludes the kind entirely — cross-topology byte
  /// identity rests on the Containment/Quarantine events instead.
  WorkerEvent,
};

/// Stable lowercase name used as the JSONL "kind" field.
const char *traceEventKindName(TraceEventKind Kind);

/// True for kinds whose emission depends on worker scheduling
/// (CacheLookup, WorkerEvent). These never enter deterministic
/// trace files.
bool traceEventIsSchedulingDependent(TraceEventKind Kind);

/// One typed event. Every event carries the instruction name and the
/// campaign attempt it belongs to so traces correlate with incidents
/// and checkpoint rows.
struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::SolverQuery;
  /// Instruction (or byte-code sequence) being processed. Stamped by
  /// TraceScope; emitters leave it empty.
  std::string Instruction;
  /// Campaign attempt (1-based). Stamped by TraceScope.
  unsigned Attempt = 0;
  /// Kind-specific discriminator (status / stage / exit name).
  std::string Detail;
  /// Secondary string payload (backend, unit, error class).
  std::string Aux;
  /// Primary numeric payload.
  std::uint64_t Value = 0;
  /// Secondary numeric payload.
  std::uint64_t Extra = 0;
  /// Wall time in milliseconds. Zeroed by TraceScope when the campaign
  /// runs with RecordTimings off, preserving trace byte-identity.
  double Millis = 0;

  bool operator==(const TraceEvent &Other) const = default;

  /// Compact single-line JSON (the JSONL trace format).
  std::string toJson() const;
  /// Parses one JSONL line; false on malformed input or unknown kind.
  static bool fromJson(const std::string &Line, TraceEvent &Out);
};

/// Abstract event consumer. Emitters call `emit` only behind a null
/// check on their sink pointer.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void emit(TraceEvent Event) = 0;
};

/// Discards every event. Exists so callers can keep a non-null sink
/// wired while measuring the enabled-but-empty overhead.
class NullTraceSink final : public TraceSink {
public:
  void emit(TraceEvent) override {}
};

/// Worker-local accumulator. Not thread-safe by design: each campaign
/// worker owns one per instruction attempt, and the merge thread drains
/// them in catalog order.
class TraceBuffer final : public TraceSink {
public:
  void emit(TraceEvent Event) override { Events.push_back(std::move(Event)); }

  const std::vector<TraceEvent> &events() const { return Events; }
  std::vector<TraceEvent> take() { return std::move(Events); }
  void clear() { Events.clear(); }
  bool empty() const { return Events.empty(); }

private:
  std::vector<TraceEvent> Events;
};

/// Stamping forwarder: fills in the instruction name and attempt on
/// every event that passes through, and zeroes Millis when timings are
/// not being recorded. Emitters below the campaign layer stay ignorant
/// of which instruction they serve.
class TraceScope final : public TraceSink {
public:
  TraceScope(TraceSink *Downstream, std::string Instruction, unsigned Attempt,
             bool RecordTimings = true)
      : Downstream(Downstream), Instruction(std::move(Instruction)),
        Attempt(Attempt), RecordTimings(RecordTimings) {}

  void emit(TraceEvent Event) override {
    if (!Downstream)
      return;
    Event.Instruction = Instruction;
    Event.Attempt = Attempt;
    if (!RecordTimings)
      Event.Millis = 0;
    Downstream->emit(std::move(Event));
  }

private:
  TraceSink *Downstream;
  std::string Instruction;
  unsigned Attempt;
  bool RecordTimings;
};

/// Writes one JSON object per line to a stream. By default applies the
/// determinism filter (drops scheduling-dependent kinds) so the file is
/// byte-identical across job counts; pass IncludeSchedulingDependent to
/// get the full diagnostic stream instead.
class JsonlTraceSink final : public TraceSink {
public:
  explicit JsonlTraceSink(std::ostream &Out,
                          bool IncludeSchedulingDependent = false)
      : Out(Out), IncludeSchedulingDependent(IncludeSchedulingDependent) {}

  void emit(TraceEvent Event) override;

  /// Lines actually written (post-filter).
  std::uint64_t written() const { return Written; }

private:
  std::ostream &Out;
  bool IncludeSchedulingDependent;
  std::uint64_t Written = 0;
};

/// Fans events out to several sinks. The only thread-safe sink: campaign
/// code never shares it across workers (each worker buffers locally),
/// but Session wires it where a user sink and the metrics sink both
/// listen, and guards against future concurrent use.
class TraceBus final : public TraceSink {
public:
  /// Registers \p Sink (non-owning). Null is ignored.
  void addSink(TraceSink *Sink);

  void emit(TraceEvent Event) override;

  /// Number of registered sinks.
  std::size_t sinkCount() const;

private:
  mutable std::mutex Lock;
  std::vector<TraceSink *> Sinks;
};

} // namespace igdt

#endif // IGDT_OBSERVE_TRACEBUS_H
