//===- observe/TraceBus.cpp - Structured pipeline tracing ------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceBus.h"

#include "support/Json.h"

namespace igdt {

const char *traceEventKindName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::SolverQuery:
    return "solver-query";
  case TraceEventKind::CacheLookup:
    return "cache-lookup";
  case TraceEventKind::LadderRung:
    return "ladder-rung";
  case TraceEventKind::PathExplored:
    return "path-explored";
  case TraceEventKind::ExploreDone:
    return "explore-done";
  case TraceEventKind::Compile:
    return "compile";
  case TraceEventKind::SimRun:
    return "sim-run";
  case TraceEventKind::PathVerdict:
    return "path-verdict";
  case TraceEventKind::Containment:
    return "containment";
  case TraceEventKind::Quarantine:
    return "quarantine";
  case TraceEventKind::StageTime:
    return "stage-time";
  case TraceEventKind::WorkerEvent:
    return "worker-event";
  }
  return "unknown";
}

bool traceEventIsSchedulingDependent(TraceEventKind Kind) {
  // Tier-2 SharedUnsatIndex hits depend on which worker stored a proof
  // first, and worker-process lifecycle depends on pids and wall time;
  // everything else is a pure function of the instruction and the
  // campaign options (see DESIGN.md "Parallel execution model").
  return Kind == TraceEventKind::CacheLookup ||
         Kind == TraceEventKind::WorkerEvent;
}

namespace {

/// Kinds in declaration order, for fromJson name lookup.
constexpr TraceEventKind AllKinds[] = {
    TraceEventKind::SolverQuery,  TraceEventKind::CacheLookup,
    TraceEventKind::LadderRung,   TraceEventKind::PathExplored,
    TraceEventKind::ExploreDone,  TraceEventKind::Compile,
    TraceEventKind::SimRun,       TraceEventKind::PathVerdict,
    TraceEventKind::Containment,  TraceEventKind::Quarantine,
    TraceEventKind::StageTime,    TraceEventKind::WorkerEvent,
};

} // namespace

std::string TraceEvent::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("kind", JsonValue::string(traceEventKindName(Kind)));
  V.set("instruction", JsonValue::string(Instruction));
  V.set("attempt", JsonValue::number(Attempt));
  V.set("detail", JsonValue::string(Detail));
  V.set("aux", JsonValue::string(Aux));
  V.set("value", JsonValue::number(static_cast<double>(Value)));
  V.set("extra", JsonValue::number(static_cast<double>(Extra)));
  V.set("millis", JsonValue::number(Millis));
  return V.dump();
}

bool TraceEvent::fromJson(const std::string &Line, TraceEvent &Out) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  std::string KindName = V->stringOr("kind", "");
  bool Found = false;
  for (TraceEventKind K : AllKinds) {
    if (KindName == traceEventKindName(K)) {
      Out.Kind = K;
      Found = true;
      break;
    }
  }
  if (!Found)
    return false;
  Out.Instruction = V->stringOr("instruction", "");
  Out.Attempt = static_cast<unsigned>(V->numberOr("attempt", 0));
  Out.Detail = V->stringOr("detail", "");
  Out.Aux = V->stringOr("aux", "");
  Out.Value = static_cast<std::uint64_t>(V->numberOr("value", 0));
  Out.Extra = static_cast<std::uint64_t>(V->numberOr("extra", 0));
  Out.Millis = V->numberOr("millis", 0);
  return true;
}

void JsonlTraceSink::emit(TraceEvent Event) {
  if (!IncludeSchedulingDependent && traceEventIsSchedulingDependent(Event.Kind))
    return;
  Out << Event.toJson() << '\n';
  ++Written;
}

void TraceBus::addSink(TraceSink *Sink) {
  if (!Sink)
    return;
  std::lock_guard<std::mutex> Guard(Lock);
  Sinks.push_back(Sink);
}

void TraceBus::emit(TraceEvent Event) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Sinks.empty())
    return;
  for (std::size_t I = 0; I + 1 < Sinks.size(); ++I)
    Sinks[I]->emit(Event);
  Sinks.back()->emit(std::move(Event));
}

std::size_t TraceBus::sinkCount() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Sinks.size();
}

} // namespace igdt
