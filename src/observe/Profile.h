//===- observe/Profile.h - End-of-run --profile report ---------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--profile` end-of-run report: per-stage wall time, the top-N
/// most expensive instructions, solver-cache effectiveness, and the
/// merged metrics registry. Rendered via TablePrinter for terminals and
/// serialised into BENCH_campaign.json for CI. Built from a
/// CampaignSummary by evalkit's buildCampaignProfile (this header stays
/// free of evalkit types to keep the library graph acyclic).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_OBSERVE_PROFILE_H
#define IGDT_OBSERVE_PROFILE_H

#include "observe/MetricsRegistry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

struct JsonValue;

/// Aggregated end-of-run profile.
struct ProfileReport {
  /// One pipeline stage ("explore", "test:SimpleStack", ...).
  struct Stage {
    std::string Name;
    double TotalMillis = 0;
    std::uint64_t Count = 0;
  };

  /// One expensive instruction for the top-N table.
  struct Item {
    std::string Name;
    double Millis = 0;
  };

  std::vector<Stage> Stages;
  std::vector<Item> TopInstructions;

  /// Solver-cache effectiveness (whole-process totals).
  std::uint64_t SolverQueries = 0;
  std::uint64_t CacheHits = 0;
  std::uint64_t CacheMisses = 0;
  std::uint64_t CacheUnsatSubsumed = 0;
  /// Tier-0 model-bank hits: queries answered by re-evaluating a
  /// recently found model instead of searching.
  std::uint64_t ModelCacheHits = 0;
  /// Queries solved through the assertion stack's reused prefix
  /// expansion (the newly pushed conjunct was the only one expanded).
  std::uint64_t PrefixReuseSolves = 0;
  /// Queries that needed a from-scratch case expansion + search: no
  /// cache tier answered and no prefix expansion could be reused.
  /// Counted by the solver rather than derived here — tier-2 shared
  /// proofs hit per-case, so cache hits and prefix reuse are not
  /// disjoint query sets and subtraction would over-count reuse.
  std::uint64_t FullSolves = 0;

  /// Compile-once effectiveness: front-end runs issued vs replays
  /// served from the code cache.
  std::uint64_t JitCompiles = 0;
  std::uint64_t JitCodeCacheHits = 0;

  /// Content-addressed store activity (the "Verdict store" table; only
  /// rendered when HasStore — a campaign with an active store emits it
  /// even when fully served, so warm zero-work runs still produce
  /// comparable profiles). Stage times and the solver totals above come
  /// from the served records (the cold run's cost figures);
  /// LiveSolverQueries is the solver work this run actually performed.
  bool HasStore = false;
  std::uint64_t StoreServed = 0;
  std::uint64_t StoreHits = 0;
  std::uint64_t StoreMisses = 0;
  std::uint64_t StoreStores = 0;
  std::uint64_t LiveSolverQueries = 0;

  /// Adaptive-scheduling activity (the "Scheduling" table; only
  /// rendered when HasSchedule — fixed-order campaigns skip it). Flat
  /// uint64 mirrors of evalkit's ScheduleStats, to keep this header
  /// free of evalkit types.
  bool HasSchedule = false;
  std::uint64_t ScheduleWaves = 0;
  std::uint64_t ScheduleTierEscalations = 0;
  std::uint64_t ScheduleEarlyExits = 0;
  std::uint64_t SchedulePoolRefunds = 0;
  std::uint64_t SchedulePoolRefundUnits = 0;
  std::uint64_t SchedulePoolGrants = 0;
  std::uint64_t SchedulePoolGrantUnits = 0;
  std::uint64_t SchedulePriorityInversions = 0;
  std::uint64_t ScheduleWarmStartEntries = 0;
  std::uint64_t ScheduleDiscardedRuns = 0;
  std::uint64_t ScheduleDiscardedUnits = 0;

  /// The merged campaign metrics (counters + histograms).
  MetricsRegistry Metrics;

  /// Hit fraction over all lookups; 0 when no lookups happened.
  double cacheHitRate() const;

  /// Fraction of full solver solves avoided by the model bank.
  double modelCacheAvoidRate() const;

  /// Fraction of compile requests served from the code cache.
  double codeCacheHitRate() const;

  /// Fraction of store lookups that served a record; 0 without lookups.
  double storeHitRate() const;

  /// Aligned tables: stages, top instructions, cache, metrics.
  std::string render() const;

  /// JSON for embedding into BENCH_campaign.json.
  JsonValue toJson() const;
};

} // namespace igdt

#endif // IGDT_OBSERVE_PROFILE_H
