//===- observe/MetricsRegistry.h - Named counters and histograms -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process registry of named counters and duration histograms.
/// This is the single home for pipeline statistics: SolverStats counters
/// are folded in per-shard under "solver.*" (the campaign merge does the
/// fold in catalog order, so per-shard and merged numbers are both
/// correct), and trace events fold in through MetricsSink under
/// "events.*". Names are kept in a sorted map so renderings and JSON
/// dumps are deterministic.
///
/// Not thread-safe by design: campaign workers fold into worker-local
/// registries (or not at all) and the merge thread combines them.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_OBSERVE_METRICSREGISTRY_H
#define IGDT_OBSERVE_METRICSREGISTRY_H

#include "observe/TraceBus.h"

#include <cstdint>
#include <map>
#include <string>

namespace igdt {

struct JsonValue;

/// Sorted-name registry of counters and min/mean/max histograms.
class MetricsRegistry {
public:
  /// Aggregate of sampled values (durations, sizes).
  struct Histogram {
    std::uint64_t Count = 0;
    double Total = 0;
    double Min = 0;
    double Max = 0;

    void sample(double Value);
    void merge(const Histogram &Other);
    double mean() const { return Count ? Total / double(Count) : 0; }
  };

  /// Adds \p Delta to the named counter, creating it at zero.
  void add(const std::string &Name, std::uint64_t Delta = 1);
  /// Records one sample into the named histogram.
  void sample(const std::string &Name, double Value);

  /// Current value of a counter; 0 when absent.
  std::uint64_t counter(const std::string &Name) const;

  const std::map<std::string, std::uint64_t> &counters() const {
    return Counters;
  }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }

  /// Adds every counter and histogram of \p Other into this registry.
  void merge(const MetricsRegistry &Other);

  void reset();
  bool empty() const { return Counters.empty() && Histograms.empty(); }

  /// Renders counters and histograms as two aligned tables.
  std::string render() const;

  /// {"counters": {...}, "histograms": {name: {count,total,min,max}}}.
  JsonValue toJson() const;

private:
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, Histogram> Histograms;
};

/// Folds trace events into a registry under "events.*" names, e.g.
/// "events.solver.status.Sat" or "events.verdict.Difference". The
/// campaign merge thread runs one of these over the merged stream;
/// Session runs one over its own bus.
class MetricsSink final : public TraceSink {
public:
  explicit MetricsSink(MetricsRegistry &Registry) : Registry(Registry) {}

  void emit(TraceEvent Event) override;

private:
  MetricsRegistry &Registry;
};

} // namespace igdt

#endif // IGDT_OBSERVE_METRICSREGISTRY_H
