//===- service/ResultStore.cpp - File-backed content-addressed store ---------===//

#include "service/ResultStore.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>

using namespace igdt;

namespace {

std::string keyToHex(std::uint64_t Key) {
  return formatString("%016llx", static_cast<unsigned long long>(Key));
}

bool hexToKey(const std::string &Hex, std::uint64_t &Key) {
  if (Hex.empty() || Hex.size() > 16)
    return false;
  std::uint64_t V = 0;
  for (char C : Hex) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = unsigned(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | Digit;
  }
  Key = V;
  return true;
}

std::string putLine(std::uint64_t Key, const std::string &Instruction,
                    const std::string &Record) {
  JsonValue V = JsonValue::object();
  V.set("v", JsonValue::number(ResultStore::FormatVersion));
  V.set("key", JsonValue::string(keyToHex(Key)));
  V.set("instruction", JsonValue::string(Instruction));
  V.set("record", JsonValue::string(Record));
  return V.dump();
}

std::string tombstoneLine(std::uint64_t Key) {
  JsonValue V = JsonValue::object();
  V.set("v", JsonValue::number(ResultStore::FormatVersion));
  V.set("key", JsonValue::string(keyToHex(Key)));
  V.set("tombstone", JsonValue::boolean(true));
  return V.dump();
}

} // namespace

ResultStore::ResultStore(std::string PathArg) : Path(std::move(PathArg)) {
  std::ifstream In(Path);
  // Seal a torn final line (a crash mid-append) with a newline now, so
  // the first post-crash put starts a fresh line instead of gluing
  // itself onto the garbage and dying with it.
  bool SealTornTail = false;
  if (In.seekg(0, std::ios::end) && In.tellg() > 0) {
    In.seekg(-1, std::ios::end);
    SealTornTail = In.get() != '\n';
  }
  In.clear();
  In.seekg(0);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    std::uint64_t Key = 0;
    if (!V || unsigned(V->numberOr("v", 0)) > FormatVersion ||
        !hexToKey(V->stringOr("key", ""), Key)) {
      ++DeadLines;
      continue;
    }
    if (V->boolOr("tombstone", false)) {
      // The tombstone itself is dead weight, and so is the put it
      // buried (when one existed).
      DeadLines += Live.erase(Key) + 1;
      continue;
    }
    Entry E;
    E.Instruction = V->stringOr("instruction", "");
    E.Record = V->stringOr("record", "");
    if (E.Record.empty()) {
      ++DeadLines;
      continue;
    }
    if (!Live.emplace(Key, std::move(E)).second) {
      Live[Key] = {V->stringOr("instruction", ""), V->stringOr("record", "")};
      ++DeadLines; // the superseded earlier put
    }
  }
  In.close();
  if (SealTornTail) {
    std::ofstream Out(Path, std::ios::app);
    Out << '\n';
  }
}

void ResultStore::appendLocked(const std::string &Line) {
  std::ofstream Out(Path, std::ios::app);
  Out << Line << '\n';
}

bool ResultStore::lookup(std::uint64_t Key, std::string &RecordLine) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Live.find(Key);
  if (It == Live.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  RecordLine = It->second.Record;
  return true;
}

void ResultStore::put(std::uint64_t Key, const std::string &Instruction,
                      const std::string &RecordLine) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Live.find(Key);
  if (It != Live.end()) {
    if (It->second.Record == RecordLine)
      return; // identical re-store: no log growth
    ++DeadLines;
  }
  Live[Key] = {Instruction, RecordLine};
  appendLocked(putLine(Key, Instruction, RecordLine));
  ++Stores;
}

std::size_t ResultStore::invalidate(const std::string &Instruction) {
  std::lock_guard<std::mutex> Lock(M);
  std::size_t Removed = 0;
  for (auto It = Live.begin(); It != Live.end();) {
    if (Instruction.empty() || It->second.Instruction == Instruction) {
      appendLocked(tombstoneLine(It->first));
      DeadLines += 2; // the tombstone plus the put it buried
      It = Live.erase(It);
      ++Removed;
    } else {
      ++It;
    }
  }
  return Removed;
}

ResultStore::GcStats ResultStore::gc() {
  std::lock_guard<std::mutex> Lock(M);
  GcStats Stats;
  Stats.Kept = Live.size();
  Stats.Dropped = DeadLines;
  std::string Tmp = Path + ".gc";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    for (const auto &[Key, E] : Live)
      Out << putLine(Key, E.Instruction, E.Record) << '\n';
  }
  std::rename(Tmp.c_str(), Path.c_str());
  DeadLines = 0;
  return Stats;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Live.size();
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> Lock(M);
  return Hits;
}

std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> Lock(M);
  return Misses;
}

std::uint64_t ResultStore::stores() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stores;
}
