//===- service/Client.cpp - Daemon client --------------------------------------===//

#include "service/Client.h"

#include "evalkit/WireProtocol.h"
#include "support/Json.h"
#include "support/Socket.h"

#include <chrono>
#include <thread>

using namespace igdt;

namespace {

void setError(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
}

} // namespace

bool ServiceClient::call(const ServiceRequest &Request, ServiceReply &Reply,
                         std::string *Error) {
  int Fd = unixConnect(SocketPath, Error);
  if (Fd < 0)
    return false;
  std::string Encoded = encodeFrame(FrameType::Request, Request.toJson().dump());
  if (!writeAll(Fd, Encoded.data(), Encoded.size())) {
    setError(Error, "send failed: " + SocketPath);
    closeFd(Fd);
    return false;
  }
  FrameDecoder Decoder;
  char Buf[4096];
  for (;;) {
    long N = readSome(Fd, Buf, sizeof(Buf));
    if (N <= 0) {
      setError(Error, "daemon closed the connection before replying");
      closeFd(Fd);
      return false;
    }
    Decoder.feed(Buf, std::size_t(N));
    WireFrame Frame;
    FrameDecoder::Status S = Decoder.next(Frame);
    if (S == FrameDecoder::Status::NeedMore)
      continue;
    closeFd(Fd);
    if (S == FrameDecoder::Status::Corrupt || Frame.Type != FrameType::Reply) {
      setError(Error, "corrupt reply stream from daemon");
      return false;
    }
    std::optional<JsonValue> V = JsonValue::parse(Frame.Payload);
    if (!V || !ServiceReply::fromJson(*V, Reply, Error)) {
      setError(Error, "malformed reply JSON from daemon");
      return false;
    }
    return true;
  }
}

bool ServiceClient::ping(std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "ping";
  ServiceReply Reply;
  return call(Request, Reply, Error) && Reply.Ok;
}

bool ServiceClient::submit(const CampaignRequest &Campaign, bool WantProfile,
                           std::string &SessionId, std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "submit";
  Request.Campaign = Campaign;
  Request.WantProfile = WantProfile;
  ServiceReply Reply;
  if (!call(Request, Reply, Error))
    return false;
  if (!Reply.Ok) {
    setError(Error, Reply.Error);
    return false;
  }
  std::optional<JsonValue> Body = JsonValue::parse(Reply.Body);
  if (!Body) {
    setError(Error, "malformed submit body");
    return false;
  }
  SessionId = Body->stringOr("session", "");
  return !SessionId.empty();
}

bool ServiceClient::status(const std::string &SessionId, StatusReply &Out,
                           std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "status";
  Request.SessionId = SessionId;
  ServiceReply Reply;
  if (!call(Request, Reply, Error))
    return false;
  if (!Reply.Ok) {
    setError(Error, Reply.Error);
    return false;
  }
  std::optional<JsonValue> Body = JsonValue::parse(Reply.Body);
  return Body && StatusReply::fromJson(*Body, Out, Error);
}

bool ServiceClient::subscribe(const std::string &SessionId,
                              std::uint64_t &Cursor,
                              std::vector<std::string> &Events, bool &Done,
                              std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "subscribe";
  Request.SessionId = SessionId;
  Request.Cursor = Cursor;
  ServiceReply Reply;
  if (!call(Request, Reply, Error))
    return false;
  if (!Reply.Ok) {
    setError(Error, Reply.Error);
    return false;
  }
  std::optional<JsonValue> Body = JsonValue::parse(Reply.Body);
  if (!Body) {
    setError(Error, "malformed subscribe body");
    return false;
  }
  if (const JsonValue *Batch = Body->find("events"))
    for (const JsonValue &Line : Batch->Arr)
      if (Line.K == JsonValue::Kind::String)
        Events.push_back(Line.Str);
  Cursor = std::uint64_t(Body->numberOr("next", double(Cursor)));
  Done = Body->boolOr("done", false);
  return true;
}

bool ServiceClient::wait(const std::string &SessionId, StatusReply &Out,
                         std::string *Error) {
  for (;;) {
    if (!status(SessionId, Out, Error))
      return false;
    if (Out.Done)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool ServiceClient::invalidate(const std::string &StorePath,
                               const std::string &Instruction,
                               std::size_t &Removed, std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "invalidate";
  Request.StorePath = StorePath;
  Request.Instruction = Instruction;
  ServiceReply Reply;
  if (!call(Request, Reply, Error))
    return false;
  if (!Reply.Ok) {
    setError(Error, Reply.Error);
    return false;
  }
  std::optional<JsonValue> Body = JsonValue::parse(Reply.Body);
  if (!Body)
    return false;
  Removed = std::size_t(Body->numberOr("removed", 0));
  return true;
}

bool ServiceClient::gc(const std::string &StorePath, std::size_t &Kept,
                       std::size_t &Dropped, std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "gc";
  Request.StorePath = StorePath;
  ServiceReply Reply;
  if (!call(Request, Reply, Error))
    return false;
  if (!Reply.Ok) {
    setError(Error, Reply.Error);
    return false;
  }
  std::optional<JsonValue> Body = JsonValue::parse(Reply.Body);
  if (!Body)
    return false;
  Kept = std::size_t(Body->numberOr("kept", 0));
  Dropped = std::size_t(Body->numberOr("dropped", 0));
  return true;
}

bool ServiceClient::shutdown(std::string *Error) {
  ServiceRequest Request;
  Request.Verb = "shutdown";
  ServiceReply Reply;
  return call(Request, Reply, Error) && Reply.Ok;
}
