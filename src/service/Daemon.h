//===- service/Daemon.h - Unix-socket front-end for CampaignService ----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The igdtd transport loop: listens on a Unix-domain socket, speaks
/// the length-prefixed CRC-framed protocol (evalkit/WireProtocol —
/// Request/Reply frames carrying api/Requests JSON), and hands every
/// request to a CampaignService. One thread per connection; a
/// connection whose stream fails a frame check is dropped, never
/// guessed at (the same sticky-corruption contract the worker pipes
/// use). The accept loop polls so a shutdown verb — or stop() from a
/// signal handler's flag — is noticed within one poll interval.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SERVICE_DAEMON_H
#define IGDT_SERVICE_DAEMON_H

#include "service/CampaignService.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace igdt {

struct DaemonOptions {
  /// Unix-domain socket path to listen on.
  std::string SocketPath;
  ServiceOptions Service;
  /// Accept-poll interval: the latency bound on noticing shutdown.
  unsigned PollMillis = 200;
};

/// Owns the listening socket and the connection threads.
class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  /// Binds the socket. False (with \p Error set) when that fails.
  bool start(std::string *Error = nullptr);

  /// Serves until a shutdown request arrives or stop() is called.
  /// Joins every connection thread before returning.
  void run();

  /// Asynchronous stop (safe from another thread).
  void stop() { Stopping.store(true); }

  CampaignService &service() { return Service; }

private:
  void serveConnection(int Fd);

  DaemonOptions Opts;
  CampaignService Service;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::vector<std::thread> Connections;
};

} // namespace igdt

#endif // IGDT_SERVICE_DAEMON_H
