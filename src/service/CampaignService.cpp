//===- service/CampaignService.cpp - Daemon-side campaign sessions -----------===//

#include "service/CampaignService.h"

#include "api/Session.h"
#include "observe/TraceBus.h"
#include "service/ResultStore.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <chrono>
#include <utility>

using namespace igdt;

namespace {

/// Captures the campaign's merged trace stream for subscribers: one
/// serialised JSONL line per event, cursor-addressable. The runner's
/// merge thread is the only emitter, but subscribers read concurrently,
/// hence the lock.
class EventLog final : public TraceSink {
public:
  void emit(TraceEvent Event) override {
    std::string Line = Event.toJson();
    {
      std::lock_guard<std::mutex> Lock(M);
      Lines.push_back(std::move(Line));
    }
    Changed.notify_all();
  }

  /// Marks the stream complete and wakes blocked subscribers.
  void finish() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Finished = true;
    }
    Changed.notify_all();
  }

  /// Blocks up to \p WaitMillis for events at/after \p Cursor, then
  /// returns them (possibly none on timeout). \p Done reports whether
  /// the stream is complete and fully consumed by this batch.
  std::vector<std::string> read(std::uint64_t Cursor, unsigned WaitMillis,
                                bool &Done) {
    std::unique_lock<std::mutex> Lock(M);
    Changed.wait_for(Lock, std::chrono::milliseconds(WaitMillis),
                     [&] { return Finished || Lines.size() > Cursor; });
    std::vector<std::string> Batch;
    for (std::size_t I = Cursor; I < Lines.size(); ++I)
      Batch.push_back(Lines[I]);
    Done = Finished && Cursor + Batch.size() >= Lines.size();
    return Batch;
  }

private:
  std::mutex M;
  std::condition_variable Changed;
  std::vector<std::string> Lines;
  bool Finished = false;
};

ServiceReply makeError(const std::string &Verb, std::string Error) {
  ServiceReply Reply;
  Reply.Verb = Verb;
  Reply.Ok = false;
  Reply.Error = std::move(Error);
  return Reply;
}

ServiceReply makeOk(const std::string &Verb, std::string Body = "") {
  ServiceReply Reply;
  Reply.Verb = Verb;
  Reply.Ok = true;
  Reply.Body = std::move(Body);
  return Reply;
}

} // namespace

/// One submitted campaign session.
struct CampaignService::SessionState {
  std::string Id;
  CampaignRequest Request;
  bool WantProfile = false;
  bool WorkersDegraded = false;
  EventLog Events;
  std::thread Worker;

  std::mutex SM;
  StatusReply Status;

  StatusReply snapshot() {
    std::lock_guard<std::mutex> Lock(SM);
    return Status;
  }
};

CampaignService::CampaignService(ServiceOptions OptsArg)
    : Opts(std::move(OptsArg)) {}

CampaignService::~CampaignService() {
  std::vector<SessionState *> All;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[Id, S] : Sessions)
      All.push_back(S.get());
  }
  for (SessionState *S : All)
    if (S->Worker.joinable())
      S->Worker.join();
}

ResultStore *CampaignService::storeFor(const std::string &Path) {
  if (Path.empty())
    return nullptr;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Stores.find(Path);
  if (It == Stores.end()) {
    It = Stores.emplace(Path, std::make_unique<ResultStore>(Path)).first;
    Metrics.add("service.stores_opened");
  }
  return It->second.get();
}

CampaignService::SessionState *
CampaignService::findSession(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second.get();
}

ServiceReply CampaignService::submit(const ServiceRequest &Request) {
  auto State = std::make_unique<SessionState>();
  SessionState *S = State.get();
  S->Request = Request.Campaign;
  S->WantProfile = Request.WantProfile || Request.Campaign.Profile;
  {
    std::lock_guard<std::mutex> Lock(M);
    S->Id = formatString("s%u", NextSessionId++);
    S->Status.State = "queued";
    Sessions.emplace(S->Id, std::move(State));
  }
  Metrics.add("service.submits");

  // ProcessPool forks, and this daemon is multi-threaded: degrade
  // worker processes to in-process threads unless explicitly allowed.
  if (S->Request.WorkerProcesses > 0 && !Opts.AllowWorkerProcesses) {
    if (S->Request.Jobs < S->Request.WorkerProcesses)
      S->Request.Jobs = S->Request.WorkerProcesses;
    S->Request.WorkerProcesses = 0;
    S->WorkersDegraded = true;
    Metrics.add("service.workers_degraded");
  }
  if (S->Request.StorePath.empty())
    S->Request.StorePath = Opts.StorePath;
  ResultStore *Store = storeFor(S->Request.StorePath);

  S->Worker = std::thread([this, S, Store] {
    {
      std::lock_guard<std::mutex> Lock(S->SM);
      S->Status.State = "running";
    }
    StatusReply Final;
    try {
      Session Sess(S->Request.toSessionConfig());
      Sess.config().Campaign.Store = Store;
      Sess.config().Campaign.ExtraTraceSink = &S->Events;
      if (S->WantProfile)
        Sess.config().Profile = true;
      CampaignSummary Summary = Sess.runCampaign();
      Final.State = "done";
      Final.Done = true;
      Final.Completed = Summary.CompletedInstructions;
      Final.Total = unsigned(Summary.Records.size());
      Final.Resumed = Summary.ResumedInstructions;
      Final.StoreServed = Summary.StoreServed;
      Final.Quarantined = unsigned(Summary.Quarantined.size());
      for (const InstructionRecord &R : Summary.Records)
        Final.Paths += R.Paths;
      Final.LiveSolverQueries = Summary.LiveSolver.Queries;
      Final.ExitCode = Summary.exitCode();
      if (const ProfileReport *Profile = Sess.profile())
        Final.ProfileJson = Profile->toJson().dump();
    } catch (const std::exception &E) {
      Final.State = "failed";
      Final.Done = true;
      Final.ExitCode = 3;
      Final.Error = E.what();
      Metrics.add("service.session_failures");
    }
    {
      std::lock_guard<std::mutex> Lock(S->SM);
      Final.Version = S->Status.Version;
      S->Status = std::move(Final);
    }
    S->Events.finish();
    SessionEvent.notify_all();
  });

  JsonValue Body = JsonValue::object();
  Body.set("session", JsonValue::string(S->Id));
  Body.set("workers_degraded", JsonValue::boolean(S->WorkersDegraded));
  Body.set("store_attached", JsonValue::boolean(Store != nullptr));
  return makeOk("submit", Body.dump());
}

ServiceReply CampaignService::status(const ServiceRequest &Request) {
  SessionState *S = findSession(Request.SessionId);
  if (!S)
    return makeError("status", "unknown session: " + Request.SessionId);
  return makeOk("status", S->snapshot().toJson().dump());
}

ServiceReply CampaignService::subscribe(const ServiceRequest &Request) {
  SessionState *S = findSession(Request.SessionId);
  if (!S)
    return makeError("subscribe", "unknown session: " + Request.SessionId);
  bool Done = false;
  std::vector<std::string> Batch =
      S->Events.read(Request.Cursor, Opts.SubscribeWaitMillis, Done);
  JsonValue Body = JsonValue::object();
  JsonValue Events = JsonValue::array();
  for (std::string &Line : Batch)
    Events.push(JsonValue::string(std::move(Line)));
  Body.set("events", std::move(Events));
  Body.set("next", JsonValue::number(double(Request.Cursor + Batch.size())));
  Body.set("done", JsonValue::boolean(Done));
  return makeOk("subscribe", Body.dump());
}

ServiceReply CampaignService::invalidate(const ServiceRequest &Request) {
  std::string Path =
      Request.StorePath.empty() ? Opts.StorePath : Request.StorePath;
  ResultStore *Store = storeFor(Path);
  if (!Store)
    return makeError("invalidate", "no store configured");
  std::size_t Removed = Store->invalidate(Request.Instruction);
  Metrics.add("service.invalidations", Removed);
  JsonValue Body = JsonValue::object();
  Body.set("removed", JsonValue::number(double(Removed)));
  Body.set("live", JsonValue::number(double(Store->size())));
  return makeOk("invalidate", Body.dump());
}

ServiceReply CampaignService::gc(const ServiceRequest &Request) {
  std::string Path =
      Request.StorePath.empty() ? Opts.StorePath : Request.StorePath;
  ResultStore *Store = storeFor(Path);
  if (!Store)
    return makeError("gc", "no store configured");
  ResultStore::GcStats Stats = Store->gc();
  Metrics.add("service.gc_runs");
  JsonValue Body = JsonValue::object();
  Body.set("kept", JsonValue::number(double(Stats.Kept)));
  Body.set("dropped", JsonValue::number(double(Stats.Dropped)));
  return makeOk("gc", Body.dump());
}

ServiceReply CampaignService::handle(const ServiceRequest &Request) {
  Metrics.add("service.requests");
  if (Request.Verb == "ping")
    return makeOk("ping");
  if (Request.Verb == "submit")
    return submit(Request);
  if (Request.Verb == "status")
    return status(Request);
  if (Request.Verb == "subscribe")
    return subscribe(Request);
  if (Request.Verb == "invalidate")
    return invalidate(Request);
  if (Request.Verb == "gc")
    return gc(Request);
  if (Request.Verb == "shutdown") {
    {
      std::lock_guard<std::mutex> Lock(M);
      Shutdown = true;
    }
    Metrics.add("service.shutdowns");
    return makeOk("shutdown");
  }
  Metrics.add("service.bad_requests");
  return makeError(Request.Verb, "unknown verb: " + Request.Verb);
}

std::string CampaignService::handleJson(const std::string &RequestJson) {
  std::optional<JsonValue> V = JsonValue::parse(RequestJson);
  ServiceRequest Request;
  std::string Error;
  if (!V || !ServiceRequest::fromJson(*V, Request, &Error)) {
    Metrics.add("service.bad_requests");
    return makeError("", Error.empty() ? "malformed request JSON" : Error)
        .toJson()
        .dump();
  }
  return handle(Request).toJson().dump();
}

bool CampaignService::shutdownRequested() const {
  std::lock_guard<std::mutex> Lock(M);
  return Shutdown;
}
