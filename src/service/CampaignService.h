//===- service/CampaignService.h - Daemon-side campaign sessions -------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-free heart of the campaign daemon: accepts
/// ServiceRequest messages (api/Requests.h), multiplexes submitted
/// campaigns onto background session threads, streams each session's
/// merged trace events to subscribers via cursor-based long-polls, and
/// backs every campaign with a shared content-addressed ResultStore so
/// a re-submitted request re-explores only what changed. Daemon (the
/// socket front-end) and the in-process tests drive the same handle()
/// entry point, so every verb is unit-testable without a socket.
///
/// Verbs: submit, status, subscribe, invalidate, gc, ping, shutdown.
///
/// Campaigns run with WorkerProcesses degraded to in-process threads
/// unless ServiceOptions::AllowWorkerProcesses — ProcessPool forks, and
/// forking a multi-threaded daemon is undefined behaviour territory.
/// The degradation is observable (service.workers_degraded metric and
/// the session's reply), never silent.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SERVICE_CAMPAIGNSERVICE_H
#define IGDT_SERVICE_CAMPAIGNSERVICE_H

#include "api/Requests.h"
#include "observe/MetricsRegistry.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace igdt {

class ResultStore;

/// Daemon-side policy knobs.
struct ServiceOptions {
  /// Store backing submits whose request names none; empty = no
  /// default store (such submits run uncached).
  std::string StorePath;
  /// Allow forking worker processes from the daemon (off: requests
  /// asking for WorkerProcesses run them as threads instead).
  bool AllowWorkerProcesses = false;
  /// Longest a subscribe long-poll blocks waiting for new events.
  unsigned SubscribeWaitMillis = 2000;
};

/// One daemon instance's session table + store registry. Thread-safe.
class CampaignService {
public:
  explicit CampaignService(ServiceOptions Opts = ServiceOptions());
  /// Joins every session thread (campaigns run to completion; the
  /// checkpoint makes abandoned work resumable, not lost).
  ~CampaignService();

  /// Dispatches one request to its verb handler. Never throws; errors
  /// come back as Ok=false replies.
  ServiceReply handle(const ServiceRequest &Request);

  /// JSON-in/JSON-out convenience for transports: parses a
  /// ServiceRequest, dispatches, serialises the reply.
  std::string handleJson(const std::string &RequestJson);

  /// True once a shutdown request was accepted; the transport loop
  /// polls this.
  bool shutdownRequested() const;

  /// Service-lifetime counters (service.* namespace).
  MetricsRegistry &metrics() { return Metrics; }

private:
  /// One submitted campaign: the worker thread, its progress snapshot,
  /// and the trace events captured for subscribers.
  struct SessionState;

  ServiceReply submit(const ServiceRequest &Request);
  ServiceReply status(const ServiceRequest &Request);
  ServiceReply subscribe(const ServiceRequest &Request);
  ServiceReply invalidate(const ServiceRequest &Request);
  ServiceReply gc(const ServiceRequest &Request);

  /// The shared store for \p Path, opening it on first use. Null for
  /// an empty path.
  ResultStore *storeFor(const std::string &Path);

  SessionState *findSession(const std::string &Id);

  ServiceOptions Opts;
  mutable std::mutex M;
  std::condition_variable SessionEvent;
  std::map<std::string, std::unique_ptr<SessionState>> Sessions;
  std::map<std::string, std::unique_ptr<ResultStore>> Stores;
  unsigned NextSessionId = 1;
  bool Shutdown = false;
  MetricsRegistry Metrics;
};

} // namespace igdt

#endif // IGDT_SERVICE_CAMPAIGNSERVICE_H
