//===- service/Client.h - Daemon client ---------------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The igdt-client side of the daemon protocol: one connection per
/// call (so a daemon restart between calls needs no session repair —
/// the reconnect-and-resume story after a SIGKILL is just "call
/// again"), frames the request, waits for the reply frame, rejects
/// anything corrupt. Typed helpers wrap the common verbs; everything
/// returns false with a human-readable error instead of throwing, so
/// the CLI can turn failures into exit codes.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SERVICE_CLIENT_H
#define IGDT_SERVICE_CLIENT_H

#include "api/Requests.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Blocking request/reply client for a running igdtd.
class ServiceClient {
public:
  explicit ServiceClient(std::string SocketPath)
      : SocketPath(std::move(SocketPath)) {}

  /// One round trip: connect, send \p Request, decode the reply.
  /// False (with \p Error) on transport failure or a corrupt stream;
  /// an Ok=false reply is still a successful call.
  bool call(const ServiceRequest &Request, ServiceReply &Reply,
            std::string *Error = nullptr);

  /// \name Typed verb helpers
  /// @{
  bool ping(std::string *Error = nullptr);
  /// Submits \p Campaign; \p SessionId receives the daemon's handle.
  bool submit(const CampaignRequest &Campaign, bool WantProfile,
              std::string &SessionId, std::string *Error = nullptr);
  bool status(const std::string &SessionId, StatusReply &Out,
              std::string *Error = nullptr);
  /// One subscribe long-poll from \p Cursor. On success appends the
  /// batch to \p Events, advances \p Cursor, and sets \p Done when the
  /// stream is complete.
  bool subscribe(const std::string &SessionId, std::uint64_t &Cursor,
                 std::vector<std::string> &Events, bool &Done,
                 std::string *Error = nullptr);
  /// Blocks until the session reports done, polling status. Returns
  /// the final status in \p Out.
  bool wait(const std::string &SessionId, StatusReply &Out,
            std::string *Error = nullptr);
  /// Invalidates \p Instruction (empty = all) in \p StorePath (empty =
  /// daemon default). \p Removed receives the entry count.
  bool invalidate(const std::string &StorePath, const std::string &Instruction,
                  std::size_t &Removed, std::string *Error = nullptr);
  bool gc(const std::string &StorePath, std::size_t &Kept,
          std::size_t &Dropped, std::string *Error = nullptr);
  bool shutdown(std::string *Error = nullptr);
  /// @}

  const std::string &socketPath() const { return SocketPath; }

private:
  std::string SocketPath;
};

} // namespace igdt

#endif // IGDT_SERVICE_CLIENT_H
