//===- service/ResultStore.h - File-backed content-addressed store -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's persistent VerdictStore: a JSONL file mapping content
/// addresses (evalkit/VerdictStore.h key derivation) to the exact
/// checkpoint record line a fresh run produced. One line per put:
///
///   {"v":1,"key":"<16 hex>","instruction":"...","record":"<line>"}
///
/// and one per invalidation (a tombstone):
///
///   {"v":1,"key":"<16 hex>","tombstone":true}
///
/// The file is append-only during operation — crash-safe by the same
/// argument as the campaign checkpoint (a torn final line parses as
/// garbage and is skipped on load; every complete line is valid). Load
/// replays the log in order with last-entry-wins, so a put after a
/// tombstone resurrects the key and gc() compacts the log to its live
/// entries. The record value is stored as an opaque string and served
/// verbatim: the store never re-serialises a record, which is what
/// makes cache-served checkpoint rows byte-identical to fresh ones.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SERVICE_RESULTSTORE_H
#define IGDT_SERVICE_RESULTSTORE_H

#include "evalkit/VerdictStore.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace igdt {

/// File-backed content-addressed verdict store. Thread-safe: daemon
/// sessions naming the same path share one instance.
class ResultStore : public VerdictStore {
public:
  /// Current on-disk entry schema.
  static constexpr unsigned FormatVersion = 1;

  /// Opens (creating if needed) the store at \p Path and loads the
  /// live entries. A malformed line is skipped, not fatal.
  explicit ResultStore(std::string Path);

  bool lookup(std::uint64_t Key, std::string &RecordLine) override;
  void put(std::uint64_t Key, const std::string &Instruction,
           const std::string &RecordLine) override;

  /// Appends tombstones for every live entry whose instruction equals
  /// \p Instruction (empty = every live entry). Returns the number of
  /// entries invalidated.
  std::size_t invalidate(const std::string &Instruction);

  struct GcStats {
    std::size_t Kept = 0;
    /// Log lines discarded by compaction: tombstones, superseded puts,
    /// and unparseable lines.
    std::size_t Dropped = 0;
  };

  /// Rewrites the log to exactly the live entries (atomic rename).
  GcStats gc();

  /// Live entry count.
  std::size_t size() const;

  const std::string &path() const { return Path; }

  /// \name Lifetime counters (for service.* metrics)
  /// @{
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t stores() const;
  /// @}

private:
  struct Entry {
    std::string Instruction;
    std::string Record;
  };

  /// Appends one already-serialised log line (lock held by caller).
  void appendLocked(const std::string &Line);

  std::string Path;
  mutable std::mutex M;
  std::map<std::uint64_t, Entry> Live;
  /// Log lines on disk that a compaction would drop (tombstones and
  /// superseded puts accumulate here between gc() calls).
  std::size_t DeadLines = 0;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Stores = 0;
};

} // namespace igdt

#endif // IGDT_SERVICE_RESULTSTORE_H
