//===- service/Daemon.cpp - Unix-socket front-end for CampaignService --------===//

#include "service/Daemon.h"

#include "evalkit/WireProtocol.h"
#include "support/Socket.h"

#include <utility>

using namespace igdt;

Daemon::Daemon(DaemonOptions OptsArg)
    : Opts(std::move(OptsArg)), Service(Opts.Service) {}

Daemon::~Daemon() {
  stop();
  for (std::thread &T : Connections)
    if (T.joinable())
      T.join();
  closeFd(ListenFd);
}

bool Daemon::start(std::string *Error) {
  ListenFd = unixListen(Opts.SocketPath, Error);
  return ListenFd >= 0;
}

void Daemon::serveConnection(int Fd) {
  FrameDecoder Decoder;
  char Buf[4096];
  bool Alive = true;
  while (Alive && !Stopping.load()) {
    if (!waitReadable(Fd, int(Opts.PollMillis)))
      continue; // bounded wait: re-check the stop flag
    long N = readSome(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      break; // EOF or error: client went away
    Decoder.feed(Buf, std::size_t(N));
    WireFrame Frame;
    FrameDecoder::Status S;
    while (Alive && (S = Decoder.next(Frame)) == FrameDecoder::Status::Frame) {
      if (Frame.Type != FrameType::Request) {
        // A client speaking the worker-pipe frame types at the daemon
        // is confused; drop it rather than answer.
        Service.metrics().add("service.bad_frames");
        Alive = false;
        break;
      }
      std::string Reply = Service.handleJson(Frame.Payload);
      std::string Encoded = encodeFrame(FrameType::Reply, Reply);
      if (!writeAll(Fd, Encoded.data(), Encoded.size()))
        Alive = false;
    }
    if (S == FrameDecoder::Status::Corrupt) {
      Service.metrics().add("service.corrupt_streams");
      break;
    }
  }
  closeFd(Fd);
}

void Daemon::run() {
  while (!Stopping.load() && !Service.shutdownRequested()) {
    int Fd = unixAccept(ListenFd, int(Opts.PollMillis));
    if (Fd < 0)
      continue; // poll timeout (or transient accept failure): re-check stop
    Service.metrics().add("service.connections");
    Connections.emplace_back([this, Fd] { serveConnection(Fd); });
  }
  Stopping.store(true); // release connection loops blocked mid-stream
  for (std::thread &T : Connections)
    if (T.joinable())
      T.join();
  Connections.clear();
}
