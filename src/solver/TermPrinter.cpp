//===- solver/TermPrinter.cpp - Human-readable term rendering ----------------===//

#include "solver/TermPrinter.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace igdt;

std::string igdt::printObjTerm(const ObjTerm *T) {
  switch (T->TermKind) {
  case ObjTerm::Kind::Var:
    switch (T->Role) {
    case VarRole::Receiver:
      return "receiver";
    case VarRole::StackSlot:
      return formatString("s%d", T->Index);
    case VarRole::Local:
      return formatString("t%d", T->Index);
    case VarRole::SlotOf:
      return formatString("%s.slot%d", printObjTerm(T->Parent).c_str(),
                          T->Index);
    }
    igdt_unreachable("unhandled var role");
  case ObjTerm::Kind::Const:
    if (isSmallIntOop(T->ConstValue))
      return formatString("%lld", (long long)smallIntValue(T->ConstValue));
    return formatString("const@%llx", (unsigned long long)T->ConstValue);
  case ObjTerm::Kind::IntObj:
    return formatString("intObject(%s)", printIntTerm(T->IntPayload).c_str());
  case ObjTerm::Kind::FloatObj:
    return formatString("floatObject(%s)",
                        printFloatTerm(T->FloatPayload).c_str());
  case ObjTerm::Kind::NewObj:
    return formatString("new%u(class=%u)", T->AllocId, T->AllocClass);
  }
  igdt_unreachable("unhandled obj term kind");
}

std::string igdt::printIntTerm(const IntTerm *T) {
  auto Bin = [&](const char *Op) {
    return formatString("(%s %s %s)", printIntTerm(T->Lhs).c_str(), Op,
                        printIntTerm(T->Rhs).c_str());
  };
  switch (T->TermKind) {
  case IntTerm::Kind::Const:
    return formatString("%lld", (long long)T->ConstValue);
  case IntTerm::Kind::ValueOf:
    return printObjTerm(T->Obj);
  case IntTerm::Kind::UncheckedValueOf:
    return formatString("rawInt(%s)", printObjTerm(T->Obj).c_str());
  case IntTerm::Kind::SlotCount:
    return formatString("slotCount(%s)", printObjTerm(T->Obj).c_str());
  case IntTerm::Kind::StackSize:
    return "operand_stack_size";
  case IntTerm::Kind::ByteAt:
    return formatString("byteAt(%s, %lld)", printObjTerm(T->Obj).c_str(),
                        (long long)T->Aux);
  case IntTerm::Kind::LoadLE:
    return formatString("load%s%u(%s, %lld)", T->SignExtend ? "Int" : "UInt",
                        T->Width * 8, printObjTerm(T->Obj).c_str(),
                        (long long)T->Aux);
  case IntTerm::Kind::ClassIndexOf:
    return formatString("classIndexOf(%s)", printObjTerm(T->Obj).c_str());
  case IntTerm::Kind::IdentityHash:
    return formatString("identityHash(%s)", printObjTerm(T->Obj).c_str());
  case IntTerm::Kind::Add:
    return Bin("+");
  case IntTerm::Kind::Sub:
    return Bin("-");
  case IntTerm::Kind::Mul:
    return Bin("*");
  case IntTerm::Kind::Quo:
    return Bin("quo");
  case IntTerm::Kind::DivFloor:
    return Bin("//");
  case IntTerm::Kind::ModFloor:
    return Bin("\\\\");
  case IntTerm::Kind::Neg:
    return formatString("(- %s)", printIntTerm(T->Lhs).c_str());
  case IntTerm::Kind::BitAnd:
    return Bin("bitAnd");
  case IntTerm::Kind::BitOr:
    return Bin("bitOr");
  case IntTerm::Kind::BitXor:
    return Bin("bitXor");
  case IntTerm::Kind::Shl:
    return Bin("<<");
  case IntTerm::Kind::Asr:
    return Bin(">>");
  case IntTerm::Kind::HighBit:
    return formatString("highBit(%s)", printIntTerm(T->Lhs).c_str());
  case IntTerm::Kind::TruncF:
    return formatString("truncated(%s)",
                        printFloatTerm(T->FloatOperand).c_str());
  }
  igdt_unreachable("unhandled int term kind");
}

std::string igdt::printFloatTerm(const FloatTerm *T) {
  auto Bin = [&](const char *Op) {
    return formatString("(%s %s %s)", printFloatTerm(T->Lhs).c_str(), Op,
                        printFloatTerm(T->Rhs).c_str());
  };
  auto Un = [&](const char *Fn) {
    return formatString("%s(%s)", Fn, printFloatTerm(T->Lhs).c_str());
  };
  switch (T->TermKind) {
  case FloatTerm::Kind::Const:
    return formatString("%g", T->ConstValue);
  case FloatTerm::Kind::ValueOf:
    return formatString("floatValue(%s)", printObjTerm(T->Obj).c_str());
  case FloatTerm::Kind::UncheckedValueOf:
    return formatString("rawFloat(%s)", printObjTerm(T->Obj).c_str());
  case FloatTerm::Kind::LoadF64:
    return formatString("loadFloat64(%s, %lld)", printObjTerm(T->Obj).c_str(),
                        (long long)T->Aux);
  case FloatTerm::Kind::LoadF32:
    return formatString("loadFloat32(%s, %lld)", printObjTerm(T->Obj).c_str(),
                        (long long)T->Aux);
  case FloatTerm::Kind::OfInt:
    return formatString("asFloat(%s)", printIntTerm(T->IntOperand).c_str());
  case FloatTerm::Kind::Add:
    return Bin("+");
  case FloatTerm::Kind::Sub:
    return Bin("-");
  case FloatTerm::Kind::Mul:
    return Bin("*");
  case FloatTerm::Kind::Div:
    return Bin("/");
  case FloatTerm::Kind::Sqrt:
    return Un("sqrt");
  case FloatTerm::Kind::Sin:
    return Un("sin");
  case FloatTerm::Kind::Cos:
    return Un("cos");
  case FloatTerm::Kind::Exp:
    return Un("exp");
  case FloatTerm::Kind::Ln:
    return Un("ln");
  case FloatTerm::Kind::ArcTan:
    return Un("arcTan");
  case FloatTerm::Kind::Frac:
    return Un("fractionPart");
  }
  igdt_unreachable("unhandled float term kind");
}

std::string igdt::printBoolTerm(const BoolTerm *T) {
  switch (T->TermKind) {
  case BoolTerm::Kind::Const:
    return T->ConstValue ? "true" : "false";
  case BoolTerm::Kind::Not: {
    const BoolTerm *Inner = T->BLhs;
    // Pretty-print negated type predicates the way the paper does:
    // isNotInteger(v) instead of !(isInteger(v)).
    if (Inner->TermKind == BoolTerm::Kind::IsClass &&
        Inner->ClassIndex == SmallIntegerClass)
      return formatString("isNotInteger(%s)",
                          printObjTerm(Inner->Obj).c_str());
    if (Inner->TermKind == BoolTerm::Kind::IsClass &&
        Inner->ClassIndex == BoxedFloatClass)
      return formatString("isNotFloat(%s)", printObjTerm(Inner->Obj).c_str());
    return formatString("!(%s)", printBoolTerm(Inner).c_str());
  }
  case BoolTerm::Kind::And:
    return formatString("(%s AND %s)", printBoolTerm(T->BLhs).c_str(),
                        printBoolTerm(T->BRhs).c_str());
  case BoolTerm::Kind::Or:
    return formatString("(%s OR %s)", printBoolTerm(T->BLhs).c_str(),
                        printBoolTerm(T->BRhs).c_str());
  case BoolTerm::Kind::ICmp: {
    const char *Op = T->Pred == CmpPred::Lt   ? "<"
                     : T->Pred == CmpPred::Le ? "<="
                                              : "==";
    // Overflow range checks print as isInteger(expr).
    return formatString("%s %s %s", printIntTerm(T->ILhs).c_str(), Op,
                        printIntTerm(T->IRhs).c_str());
  }
  case BoolTerm::Kind::FCmp: {
    const char *Op = T->Pred == CmpPred::Lt   ? "<"
                     : T->Pred == CmpPred::Le ? "<="
                                              : "==";
    return formatString("%s %s %s", printFloatTerm(T->FLhs).c_str(), Op,
                        printFloatTerm(T->FRhs).c_str());
  }
  case BoolTerm::Kind::IsClass:
    if (T->ClassIndex == SmallIntegerClass)
      return formatString("isInteger(%s)", printObjTerm(T->Obj).c_str());
    if (T->ClassIndex == BoxedFloatClass)
      return formatString("isFloat(%s)", printObjTerm(T->Obj).c_str());
    if (T->ClassIndex == TrueClass)
      return formatString("isTrue(%s)", printObjTerm(T->Obj).c_str());
    if (T->ClassIndex == FalseClass)
      return formatString("isFalse(%s)", printObjTerm(T->Obj).c_str());
    if (T->ClassIndex == UndefinedObjectClass)
      return formatString("isNil(%s)", printObjTerm(T->Obj).c_str());
    return formatString("classOf(%s) == %u", printObjTerm(T->Obj).c_str(),
                        T->ClassIndex);
  case BoolTerm::Kind::HasFormat:
    return formatString("formatOf(%s) in 0x%x", printObjTerm(T->Obj).c_str(),
                        T->FormatMask);
  case BoolTerm::Kind::ObjEq:
    return formatString("%s == %s", printObjTerm(T->Obj).c_str(),
                        printObjTerm(T->ObjRhs).c_str());
  case BoolTerm::Kind::IntFormatIs:
    return formatString("formatOfClass(%s) in 0x%x",
                        printIntTerm(T->ILhs).c_str(), T->FormatMask);
  }
  igdt_unreachable("unhandled bool term kind");
}

std::string igdt::printPathCondition(
    const std::vector<const BoolTerm *> &Path) {
  std::vector<std::string> Lines;
  Lines.reserve(Path.size());
  for (const BoolTerm *T : Path)
    Lines.push_back(printBoolTerm(T));
  return joinStrings(Lines, "\n");
}
