//===- solver/Term.cpp - Hash-consing term factory -------------------------===//

#include "solver/Term.h"

#include "support/StringUtils.h"

using namespace igdt;

namespace {

// The mixing scheme below must stay bit-identical to the recursive
// walk TermHasher historically performed (solver/SolverCache.cpp):
// solver cache keys, SharedUnsatIndex entries and the RNG seed
// material folded from query signatures are all derived from these
// values, and the determinism contract keeps them stable across PRs.

std::uint64_t mix(std::uint64_t Seed, std::uint64_t Value) {
  return hashCombine64(Seed, Value);
}

std::uint64_t hashOf(const ObjTerm *T) { return T ? T->Hash : NullTermHash; }
std::uint64_t hashOf(const IntTerm *T) { return T ? T->Hash : NullTermHash; }
std::uint64_t hashOf(const FloatTerm *T) { return T ? T->Hash : NullTermHash; }
std::uint64_t hashOf(const BoolTerm *T) { return T ? T->Hash : NullTermHash; }

std::uint64_t computeHash(const ObjTerm &T) {
  std::uint64_t H = mix(0x0B57ull, std::uint64_t(T.TermKind));
  switch (T.TermKind) {
  case ObjTerm::Kind::Var:
    H = mix(H, std::uint64_t(T.Role));
    H = mix(H, std::uint64_t(std::uint32_t(T.Index)));
    H = mix(H, hashOf(T.Parent));
    break;
  case ObjTerm::Kind::Const:
    H = mix(H, T.ConstValue);
    break;
  case ObjTerm::Kind::IntObj:
    H = mix(H, hashOf(T.IntPayload));
    break;
  case ObjTerm::Kind::FloatObj:
    H = mix(H, hashOf(T.FloatPayload));
    break;
  case ObjTerm::Kind::NewObj:
    H = mix(H, T.AllocId);
    H = mix(H, T.AllocClass);
    H = mix(H, hashOf(T.AllocSize));
    H = mix(H, hashOf(T.CopyOf));
    break;
  }
  return H;
}

std::uint64_t computeHash(const IntTerm &T) {
  std::uint64_t H = mix(0x117ull, std::uint64_t(T.TermKind));
  H = mix(H, std::uint64_t(T.ConstValue));
  H = mix(H, std::uint64_t(T.Aux));
  H = mix(H, std::uint64_t(T.Width) * 2 + (T.SignExtend ? 1 : 0));
  if (T.Obj)
    H = mix(H, hashOf(T.Obj));
  if (T.Lhs)
    H = mix(H, hashOf(T.Lhs));
  if (T.Rhs)
    H = mix(H, hashOf(T.Rhs));
  if (T.FloatOperand)
    H = mix(H, hashOf(T.FloatOperand));
  return H;
}

std::uint64_t computeHash(const FloatTerm &T) {
  std::uint64_t H = mix(0xF107ull, std::uint64_t(T.TermKind));
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(T.ConstValue));
  __builtin_memcpy(&Bits, &T.ConstValue, sizeof(Bits));
  H = mix(H, Bits);
  H = mix(H, std::uint64_t(T.Aux));
  if (T.Obj)
    H = mix(H, hashOf(T.Obj));
  if (T.Lhs)
    H = mix(H, hashOf(T.Lhs));
  if (T.Rhs)
    H = mix(H, hashOf(T.Rhs));
  if (T.IntOperand)
    H = mix(H, hashOf(T.IntOperand));
  return H;
}

std::uint64_t computeHash(const BoolTerm &T) {
  std::uint64_t H = mix(0xB001ull, std::uint64_t(T.TermKind));
  H = mix(H, T.ConstValue ? 1 : 0);
  H = mix(H, std::uint64_t(T.Pred));
  H = mix(H, T.ClassIndex);
  H = mix(H, T.FormatMask);
  if (T.BLhs)
    H = mix(H, hashOf(T.BLhs));
  if (T.BRhs)
    H = mix(H, hashOf(T.BRhs));
  if (T.ILhs)
    H = mix(H, hashOf(T.ILhs));
  if (T.IRhs)
    H = mix(H, hashOf(T.IRhs));
  if (T.FLhs)
    H = mix(H, hashOf(T.FLhs));
  if (T.FRhs)
    H = mix(H, hashOf(T.FRhs));
  if (T.Obj)
    H = mix(H, hashOf(T.Obj));
  if (T.ObjRhs)
    H = mix(H, hashOf(T.ObjRhs));
  return H;
}

// Structural equality under the interning invariant: children are
// already interned, so child comparison is pointer comparison. Fields
// a kind does not use keep their defaults (only the builder populates
// nodes), so comparing the full field set is exact.

bool structurallyEqual(const ObjTerm &A, const ObjTerm &B) {
  return A.TermKind == B.TermKind && A.Role == B.Role && A.Index == B.Index &&
         A.Parent == B.Parent && A.ConstValue == B.ConstValue &&
         A.IntPayload == B.IntPayload && A.FloatPayload == B.FloatPayload &&
         A.AllocId == B.AllocId && A.AllocClass == B.AllocClass &&
         A.AllocSize == B.AllocSize && A.CopyOf == B.CopyOf;
}

bool structurallyEqual(const IntTerm &A, const IntTerm &B) {
  return A.TermKind == B.TermKind && A.ConstValue == B.ConstValue &&
         A.Obj == B.Obj && A.Aux == B.Aux && A.Width == B.Width &&
         A.SignExtend == B.SignExtend && A.Lhs == B.Lhs && A.Rhs == B.Rhs &&
         A.FloatOperand == B.FloatOperand;
}

bool bitsEqual(double A, double B) {
  std::uint64_t BA, BB;
  __builtin_memcpy(&BA, &A, sizeof(BA));
  __builtin_memcpy(&BB, &B, sizeof(BB));
  return BA == BB;
}

bool structurallyEqual(const FloatTerm &A, const FloatTerm &B) {
  // Const floats never reach the hash-bucket tables (floatConst keeps
  // its std::map<double> cache and its equivalence semantics), so a
  // bit-compare here is only ever comparing the 0.0 defaults.
  return A.TermKind == B.TermKind && bitsEqual(A.ConstValue, B.ConstValue) &&
         A.Obj == B.Obj && A.Aux == B.Aux && A.Lhs == B.Lhs && A.Rhs == B.Rhs &&
         A.IntOperand == B.IntOperand;
}

bool structurallyEqual(const BoolTerm &A, const BoolTerm &B) {
  return A.TermKind == B.TermKind && A.ConstValue == B.ConstValue &&
         A.Pred == B.Pred && A.BLhs == B.BLhs && A.BRhs == B.BRhs &&
         A.ILhs == B.ILhs && A.IRhs == B.IRhs && A.FLhs == B.FLhs &&
         A.FRhs == B.FRhs && A.Obj == B.Obj && A.ObjRhs == B.ObjRhs &&
         A.ClassIndex == B.ClassIndex && A.FormatMask == B.FormatMask;
}

template <typename T, typename Table>
const T *internInto(Table &Buckets, Arena &Mem, std::size_t &InternedNodes,
                    T Proto) {
  Proto.Hash = computeHash(Proto);
  auto &Bucket = Buckets[Proto.Hash];
  for (const T *Existing : Bucket)
    if (structurallyEqual(*Existing, Proto))
      return Existing;
  T *Node = Mem.create<T>(Proto);
  Bucket.push_back(Node);
  ++InternedNodes;
  return Node;
}

} // namespace

const ObjTerm *TermBuilder::internObj(ObjTerm Proto) {
  return internInto(ObjIntern, Mem, InternedNodes, Proto);
}
const IntTerm *TermBuilder::internInt(IntTerm Proto) {
  return internInto(IntIntern, Mem, InternedNodes, Proto);
}
const FloatTerm *TermBuilder::internFloat(FloatTerm Proto) {
  return internInto(FloatIntern, Mem, InternedNodes, Proto);
}
const BoolTerm *TermBuilder::internBool(BoolTerm Proto) {
  return internInto(BoolIntern, Mem, InternedNodes, Proto);
}

// Variables, constants and memory leaves keep their original
// field-keyed caches: their equivalence relations (e.g. std::map's
// ordering-equivalence over double keys for float constants) predate
// the generic intern tables and are part of the reproducibility
// contract. Each cache miss stamps the node's hash before publication.

const ObjTerm *TermBuilder::objVar(VarRole Role, std::int32_t Index,
                                   const ObjTerm *Parent) {
  auto Key = std::make_tuple(Role, Index, Parent);
  auto It = VarCache.find(Key);
  if (It != VarCache.end())
    return It->second;
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::Var;
  T->Role = Role;
  T->Index = Index;
  T->Parent = Parent;
  T->Hash = computeHash(*T);
  ++InternedNodes;
  VarCache.emplace(Key, T);
  return T;
}

const ObjTerm *TermBuilder::objConst(Oop Value) {
  auto It = ConstCache.find(Value);
  if (It != ConstCache.end())
    return It->second;
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::Const;
  T->ConstValue = Value;
  T->Hash = computeHash(*T);
  ++InternedNodes;
  ConstCache.emplace(Value, T);
  return T;
}

const ObjTerm *TermBuilder::intObj(const IntTerm *Payload) {
  ObjTerm Proto;
  Proto.TermKind = ObjTerm::Kind::IntObj;
  Proto.IntPayload = Payload;
  return internObj(Proto);
}

const ObjTerm *TermBuilder::floatObj(const FloatTerm *Payload) {
  ObjTerm Proto;
  Proto.TermKind = ObjTerm::Kind::FloatObj;
  Proto.FloatPayload = Payload;
  return internObj(Proto);
}

const ObjTerm *TermBuilder::newObj(std::uint32_t AllocId,
                                   std::uint32_t ClassIndex,
                                   const IntTerm *Size,
                                   const ObjTerm *CopyOf) {
  ObjTerm Proto;
  Proto.TermKind = ObjTerm::Kind::NewObj;
  Proto.AllocId = AllocId;
  Proto.AllocClass = ClassIndex;
  Proto.AllocSize = Size;
  Proto.CopyOf = CopyOf;
  return internObj(Proto);
}

const IntTerm *TermBuilder::intConst(std::int64_t Value) {
  auto It = IntConstCache.find(Value);
  if (It != IntConstCache.end())
    return It->second;
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::Const;
  T->ConstValue = Value;
  T->Hash = computeHash(*T);
  ++InternedNodes;
  IntConstCache.emplace(Value, T);
  return T;
}

const IntTerm *TermBuilder::valueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::ValueOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = internInt([&] {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::ValueOf;
    Proto.Obj = Var;
    return Proto;
  }());
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::uncheckedValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::UncheckedValueOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = internInt([&] {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::UncheckedValueOf;
    Proto.Obj = Var;
    return Proto;
  }());
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::slotCount(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::SlotCount, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = internInt([&] {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::SlotCount;
    Proto.Obj = Var;
    return Proto;
  }());
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::stackSize() {
  if (!StackSizeTerm) {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::StackSize;
    StackSizeTerm = internInt(Proto);
  }
  return StackSizeTerm;
}

const IntTerm *TermBuilder::byteAt(const ObjTerm *Var, std::int64_t Index) {
  auto Key = std::make_tuple(Var, Index, -1);
  auto It = ByteCache.find(Key);
  if (It != ByteCache.end())
    return It->second;
  IntTerm Proto;
  Proto.TermKind = IntTerm::Kind::ByteAt;
  Proto.Obj = Var;
  Proto.Aux = Index;
  const IntTerm *T = internInt(Proto);
  ByteCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::loadLE(const ObjTerm *Var, std::int64_t Offset,
                                   std::uint8_t Width, bool SignExtend) {
  auto Key = std::make_tuple(Var, Offset, int(Width) * 2 + (SignExtend ? 1 : 0));
  auto It = ByteCache.find(Key);
  if (It != ByteCache.end())
    return It->second;
  IntTerm Proto;
  Proto.TermKind = IntTerm::Kind::LoadLE;
  Proto.Obj = Var;
  Proto.Aux = Offset;
  Proto.Width = Width;
  Proto.SignExtend = SignExtend;
  const IntTerm *T = internInt(Proto);
  ByteCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::classIndexOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::ClassIndexOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = internInt([&] {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::ClassIndexOf;
    Proto.Obj = Var;
    return Proto;
  }());
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::identityHash(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::IdentityHash, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = internInt([&] {
    IntTerm Proto;
    Proto.TermKind = IntTerm::Kind::IdentityHash;
    Proto.Obj = Var;
    return Proto;
  }());
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::binInt(IntTerm::Kind Op, const IntTerm *L,
                                   const IntTerm *R) {
  IntTerm Proto;
  Proto.TermKind = Op;
  Proto.Lhs = L;
  Proto.Rhs = R;
  return internInt(Proto);
}

const IntTerm *TermBuilder::negInt(const IntTerm *Operand) {
  IntTerm Proto;
  Proto.TermKind = IntTerm::Kind::Neg;
  Proto.Lhs = Operand;
  return internInt(Proto);
}

const IntTerm *TermBuilder::highBit(const IntTerm *Operand) {
  IntTerm Proto;
  Proto.TermKind = IntTerm::Kind::HighBit;
  Proto.Lhs = Operand;
  return internInt(Proto);
}

const IntTerm *TermBuilder::truncF(const FloatTerm *Operand) {
  IntTerm Proto;
  Proto.TermKind = IntTerm::Kind::TruncF;
  Proto.FloatOperand = Operand;
  return internInt(Proto);
}

const FloatTerm *TermBuilder::floatConst(double Value) {
  auto It = FloatConstCache.find(Value);
  if (It != FloatConstCache.end())
    return It->second;
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::Const;
  T->ConstValue = Value;
  T->Hash = computeHash(*T);
  ++InternedNodes;
  FloatConstCache.emplace(Value, T);
  return T;
}

const FloatTerm *TermBuilder::floatValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(0, Var);
  auto It = FloatLeafCache.find(Key);
  if (It != FloatLeafCache.end())
    return It->second;
  FloatTerm Proto;
  Proto.TermKind = FloatTerm::Kind::ValueOf;
  Proto.Obj = Var;
  const FloatTerm *T = internFloat(Proto);
  FloatLeafCache.emplace(Key, T);
  return T;
}

const FloatTerm *TermBuilder::uncheckedFloatValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(1, Var);
  auto It = FloatLeafCache.find(Key);
  if (It != FloatLeafCache.end())
    return It->second;
  FloatTerm Proto;
  Proto.TermKind = FloatTerm::Kind::UncheckedValueOf;
  Proto.Obj = Var;
  const FloatTerm *T = internFloat(Proto);
  FloatLeafCache.emplace(Key, T);
  return T;
}

const FloatTerm *TermBuilder::loadF64(const ObjTerm *Var,
                                      std::int64_t Offset) {
  FloatTerm Proto;
  Proto.TermKind = FloatTerm::Kind::LoadF64;
  Proto.Obj = Var;
  Proto.Aux = Offset;
  return internFloat(Proto);
}

const FloatTerm *TermBuilder::loadF32(const ObjTerm *Var,
                                      std::int64_t Offset) {
  FloatTerm Proto;
  Proto.TermKind = FloatTerm::Kind::LoadF32;
  Proto.Obj = Var;
  Proto.Aux = Offset;
  return internFloat(Proto);
}

const FloatTerm *TermBuilder::ofInt(const IntTerm *Operand) {
  FloatTerm Proto;
  Proto.TermKind = FloatTerm::Kind::OfInt;
  Proto.IntOperand = Operand;
  return internFloat(Proto);
}

const FloatTerm *TermBuilder::binFloat(FloatTerm::Kind Op, const FloatTerm *L,
                                       const FloatTerm *R) {
  FloatTerm Proto;
  Proto.TermKind = Op;
  Proto.Lhs = L;
  Proto.Rhs = R;
  return internFloat(Proto);
}

const FloatTerm *TermBuilder::unFloat(FloatTerm::Kind Op,
                                      const FloatTerm *Operand) {
  FloatTerm Proto;
  Proto.TermKind = Op;
  Proto.Lhs = Operand;
  return internFloat(Proto);
}

const BoolTerm *TermBuilder::boolConst(bool Value) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::Const;
  Proto.ConstValue = Value;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::notB(const BoolTerm *Operand) {
  // Collapse double negation for readable path conditions.
  if (Operand->TermKind == BoolTerm::Kind::Not)
    return Operand->BLhs;
  // Consed so repeated negations of the same branch condition (every
  // generational re-negation of a prefix) share one node — pointer
  // identity then implies structural identity for the query cache's
  // hashing.
  auto It = NotCache.find(Operand);
  if (It != NotCache.end())
    return It->second;
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::Not;
  Proto.BLhs = Operand;
  const BoolTerm *T = internBool(Proto);
  NotCache.emplace(Operand, T);
  return T;
}

const BoolTerm *TermBuilder::andB(const BoolTerm *L, const BoolTerm *R) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::And;
  Proto.BLhs = L;
  Proto.BRhs = R;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::orB(const BoolTerm *L, const BoolTerm *R) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::Or;
  Proto.BLhs = L;
  Proto.BRhs = R;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::icmp(CmpPred Pred, const IntTerm *L,
                                  const IntTerm *R) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::ICmp;
  Proto.Pred = Pred;
  Proto.ILhs = L;
  Proto.IRhs = R;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::fcmp(CmpPred Pred, const FloatTerm *L,
                                  const FloatTerm *R) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::FCmp;
  Proto.Pred = Pred;
  Proto.FLhs = L;
  Proto.FRhs = R;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::isClass(const ObjTerm *Var,
                                     std::uint32_t ClassIndex) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::IsClass;
  Proto.Obj = Var;
  Proto.ClassIndex = ClassIndex;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::hasFormat(const ObjTerm *Var,
                                       std::uint8_t FormatMask) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::HasFormat;
  Proto.Obj = Var;
  Proto.FormatMask = FormatMask;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::objEq(const ObjTerm *L, const ObjTerm *R) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::ObjEq;
  Proto.Obj = L;
  Proto.ObjRhs = R;
  return internBool(Proto);
}

const BoolTerm *TermBuilder::intFormatIs(const IntTerm *ClassIdx,
                                         std::uint8_t FormatMask) {
  BoolTerm Proto;
  Proto.TermKind = BoolTerm::Kind::IntFormatIs;
  Proto.ILhs = ClassIdx;
  Proto.FormatMask = FormatMask;
  return internBool(Proto);
}
