//===- solver/Term.cpp - Term factory --------------------------------------===//

#include "solver/Term.h"

using namespace igdt;

const ObjTerm *TermBuilder::objVar(VarRole Role, std::int32_t Index,
                                   const ObjTerm *Parent) {
  auto Key = std::make_tuple(Role, Index, Parent);
  auto It = VarCache.find(Key);
  if (It != VarCache.end())
    return It->second;
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::Var;
  T->Role = Role;
  T->Index = Index;
  T->Parent = Parent;
  VarCache.emplace(Key, T);
  return T;
}

const ObjTerm *TermBuilder::objConst(Oop Value) {
  auto It = ConstCache.find(Value);
  if (It != ConstCache.end())
    return It->second;
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::Const;
  T->ConstValue = Value;
  ConstCache.emplace(Value, T);
  return T;
}

const ObjTerm *TermBuilder::intObj(const IntTerm *Payload) {
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::IntObj;
  T->IntPayload = Payload;
  return T;
}

const ObjTerm *TermBuilder::floatObj(const FloatTerm *Payload) {
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::FloatObj;
  T->FloatPayload = Payload;
  return T;
}

const ObjTerm *TermBuilder::newObj(std::uint32_t AllocId,
                                   std::uint32_t ClassIndex,
                                   const IntTerm *Size,
                                   const ObjTerm *CopyOf) {
  auto *T = Mem.create<ObjTerm>();
  T->TermKind = ObjTerm::Kind::NewObj;
  T->AllocId = AllocId;
  T->AllocClass = ClassIndex;
  T->AllocSize = Size;
  T->CopyOf = CopyOf;
  return T;
}

const IntTerm *TermBuilder::intConst(std::int64_t Value) {
  auto It = IntConstCache.find(Value);
  if (It != IntConstCache.end())
    return It->second;
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::Const;
  T->ConstValue = Value;
  IntConstCache.emplace(Value, T);
  return T;
}

static const IntTerm *makeIntLeaf(Arena &Mem, IntTerm::Kind Kind,
                                  const ObjTerm *Var) {
  auto *T = Mem.create<IntTerm>();
  T->TermKind = Kind;
  T->Obj = Var;
  return T;
}

const IntTerm *TermBuilder::valueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::ValueOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = makeIntLeaf(Mem, IntTerm::Kind::ValueOf, Var);
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::uncheckedValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::UncheckedValueOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = makeIntLeaf(Mem, IntTerm::Kind::UncheckedValueOf, Var);
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::slotCount(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::SlotCount, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = makeIntLeaf(Mem, IntTerm::Kind::SlotCount, Var);
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::stackSize() {
  if (!StackSizeTerm) {
    auto *T = Mem.create<IntTerm>();
    T->TermKind = IntTerm::Kind::StackSize;
    StackSizeTerm = T;
  }
  return StackSizeTerm;
}

const IntTerm *TermBuilder::byteAt(const ObjTerm *Var, std::int64_t Index) {
  auto Key = std::make_tuple(Var, Index, -1);
  auto It = ByteCache.find(Key);
  if (It != ByteCache.end())
    return It->second;
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::ByteAt;
  T->Obj = Var;
  T->Aux = Index;
  ByteCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::loadLE(const ObjTerm *Var, std::int64_t Offset,
                                   std::uint8_t Width, bool SignExtend) {
  auto Key = std::make_tuple(Var, Offset, int(Width) * 2 + (SignExtend ? 1 : 0));
  auto It = ByteCache.find(Key);
  if (It != ByteCache.end())
    return It->second;
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::LoadLE;
  T->Obj = Var;
  T->Aux = Offset;
  T->Width = Width;
  T->SignExtend = SignExtend;
  ByteCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::classIndexOf(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::ClassIndexOf, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = makeIntLeaf(Mem, IntTerm::Kind::ClassIndexOf, Var);
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::identityHash(const ObjTerm *Var) {
  auto Key = std::make_pair(IntTerm::Kind::IdentityHash, Var);
  auto It = IntLeafCache.find(Key);
  if (It != IntLeafCache.end())
    return It->second;
  const IntTerm *T = makeIntLeaf(Mem, IntTerm::Kind::IdentityHash, Var);
  IntLeafCache.emplace(Key, T);
  return T;
}

const IntTerm *TermBuilder::binInt(IntTerm::Kind Op, const IntTerm *L,
                                   const IntTerm *R) {
  auto *T = Mem.create<IntTerm>();
  T->TermKind = Op;
  T->Lhs = L;
  T->Rhs = R;
  return T;
}

const IntTerm *TermBuilder::negInt(const IntTerm *Operand) {
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::Neg;
  T->Lhs = Operand;
  return T;
}

const IntTerm *TermBuilder::highBit(const IntTerm *Operand) {
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::HighBit;
  T->Lhs = Operand;
  return T;
}

const IntTerm *TermBuilder::truncF(const FloatTerm *Operand) {
  auto *T = Mem.create<IntTerm>();
  T->TermKind = IntTerm::Kind::TruncF;
  T->FloatOperand = Operand;
  return T;
}

const FloatTerm *TermBuilder::floatConst(double Value) {
  auto It = FloatConstCache.find(Value);
  if (It != FloatConstCache.end())
    return It->second;
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::Const;
  T->ConstValue = Value;
  FloatConstCache.emplace(Value, T);
  return T;
}

const FloatTerm *TermBuilder::floatValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(0, Var);
  auto It = FloatLeafCache.find(Key);
  if (It != FloatLeafCache.end())
    return It->second;
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::ValueOf;
  T->Obj = Var;
  FloatLeafCache.emplace(Key, T);
  return T;
}

const FloatTerm *TermBuilder::uncheckedFloatValueOf(const ObjTerm *Var) {
  auto Key = std::make_pair(1, Var);
  auto It = FloatLeafCache.find(Key);
  if (It != FloatLeafCache.end())
    return It->second;
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::UncheckedValueOf;
  T->Obj = Var;
  FloatLeafCache.emplace(Key, T);
  return T;
}

const FloatTerm *TermBuilder::loadF64(const ObjTerm *Var,
                                      std::int64_t Offset) {
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::LoadF64;
  T->Obj = Var;
  T->Aux = Offset;
  return T;
}

const FloatTerm *TermBuilder::loadF32(const ObjTerm *Var,
                                      std::int64_t Offset) {
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::LoadF32;
  T->Obj = Var;
  T->Aux = Offset;
  return T;
}

const FloatTerm *TermBuilder::ofInt(const IntTerm *Operand) {
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = FloatTerm::Kind::OfInt;
  T->IntOperand = Operand;
  return T;
}

const FloatTerm *TermBuilder::binFloat(FloatTerm::Kind Op, const FloatTerm *L,
                                       const FloatTerm *R) {
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = Op;
  T->Lhs = L;
  T->Rhs = R;
  return T;
}

const FloatTerm *TermBuilder::unFloat(FloatTerm::Kind Op,
                                      const FloatTerm *Operand) {
  auto *T = Mem.create<FloatTerm>();
  T->TermKind = Op;
  T->Lhs = Operand;
  return T;
}

const BoolTerm *TermBuilder::boolConst(bool Value) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::Const;
  T->ConstValue = Value;
  return T;
}

const BoolTerm *TermBuilder::notB(const BoolTerm *Operand) {
  // Collapse double negation for readable path conditions.
  if (Operand->TermKind == BoolTerm::Kind::Not)
    return Operand->BLhs;
  // Consed so repeated negations of the same branch condition (every
  // generational re-negation of a prefix) share one node — pointer
  // identity then implies structural identity for the query cache's
  // memoized hashing.
  auto It = NotCache.find(Operand);
  if (It != NotCache.end())
    return It->second;
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::Not;
  T->BLhs = Operand;
  NotCache.emplace(Operand, T);
  return T;
}

const BoolTerm *TermBuilder::andB(const BoolTerm *L, const BoolTerm *R) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::And;
  T->BLhs = L;
  T->BRhs = R;
  return T;
}

const BoolTerm *TermBuilder::orB(const BoolTerm *L, const BoolTerm *R) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::Or;
  T->BLhs = L;
  T->BRhs = R;
  return T;
}

const BoolTerm *TermBuilder::icmp(CmpPred Pred, const IntTerm *L,
                                  const IntTerm *R) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::ICmp;
  T->Pred = Pred;
  T->ILhs = L;
  T->IRhs = R;
  return T;
}

const BoolTerm *TermBuilder::fcmp(CmpPred Pred, const FloatTerm *L,
                                  const FloatTerm *R) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::FCmp;
  T->Pred = Pred;
  T->FLhs = L;
  T->FRhs = R;
  return T;
}

const BoolTerm *TermBuilder::isClass(const ObjTerm *Var,
                                     std::uint32_t ClassIndex) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::IsClass;
  T->Obj = Var;
  T->ClassIndex = ClassIndex;
  return T;
}

const BoolTerm *TermBuilder::hasFormat(const ObjTerm *Var,
                                       std::uint8_t FormatMask) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::HasFormat;
  T->Obj = Var;
  T->FormatMask = FormatMask;
  return T;
}

const BoolTerm *TermBuilder::objEq(const ObjTerm *L, const ObjTerm *R) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::ObjEq;
  T->Obj = L;
  T->ObjRhs = R;
  return T;
}

const BoolTerm *TermBuilder::intFormatIs(const IntTerm *ClassIdx,
                                         std::uint8_t FormatMask) {
  auto *T = Mem.create<BoolTerm>();
  T->TermKind = BoolTerm::Kind::IntFormatIs;
  T->ILhs = ClassIdx;
  T->FormatMask = FormatMask;
  return T;
}
