//===- solver/SolverCache.h - Per-exploration solver query caching ----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental solving support for the concolic exploration loop,
/// organised as two tiers with different sharing scopes:
///
///  - TermHasher assigns every term a *structural* 64-bit hash,
///    memoized per pointer (terms are immutable and arena-allocated, so
///    a pointer's hash never changes). Structural hashing makes cache
///    keys independent of allocation addresses and of the order terms
///    were built in — the property that lets a cached run reproduce an
///    uncached one bit for bit, and that lets hashes computed in one
///    exploration's arena match those of another.
///
///  - SolverQueryCache (tier 1, per exploration) memoizes definite
///    answers — Sat with its model, proven Unsat — at two
///    granularities: whole queries and the individual conjunctive
///    *cases* they expand into (the level at which the degradation
///    ladder re-poses work). It also keeps proven-Unsat conjunct sets
///    as *cores*: a later key that is a superset of a known core is
///    Unsat by subsumption, with no search. Unknown results are never
///    cached so the ladder can still retry them. Models hold pointers
///    into the exploration's term arena, so this tier must die with the
///    exploration and is never shared across threads — lookups take no
///    locks.
///
///  - SharedUnsatIndex (tier 2, campaign scope) records proven-Unsat
///    cases across explorations. Catalog instructions of one family
///    pose structurally identical type-check cases, so Unsat proofs
///    recur campaign-wide even though they never recur within one
///    exploration. Only Unsat entries are shared: they carry no model
///    (nothing points into a foreign arena), and an Unsat proof is
///    derived purely from class conflicts, empty candidate sets and
///    interval propagation — never from the seeded numeric search — so
///    any worker with the same caps and class table would reprove it
///    identically. A hit is therefore transparent: results are
///    byte-identical whether or not it fires, which keeps campaign rows
///    independent of worker scheduling. Entries are keyed by a caps
///    fingerprint so ladder rungs and ablation configurations never
///    serve each other. The index takes one mutex per case lookup /
///    store — off the hot search path, which runs lock-free.
///
/// Definite answers from a cheaper ladder rung are sound at any
/// strength: caps only ever widen results toward Unknown.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_SOLVERCACHE_H
#define IGDT_SOLVER_SOLVERCACHE_H

#include "solver/Model.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace igdt {

struct BoolTerm;
enum class SolveStatus : std::uint8_t;
struct SolveResult;

/// Memoized structural hashing of solver terms. Pointer-keyed memo:
/// terms are immutable, so the first computed hash is final.
class TermHasher {
public:
  std::uint64_t hashBool(const BoolTerm *T);

  /// Signature of a conjunctive query: the sorted multiset of conjunct
  /// hashes (the cache key) plus an order-insensitive fold of them
  /// (the per-query RNG seed material).
  struct QuerySignature {
    std::vector<std::uint64_t> SortedConjuncts;
    std::uint64_t Fold = 0;
  };
  QuerySignature signQuery(const std::vector<const BoolTerm *> &Conjuncts);

private:
  std::uint64_t hashObj(const ObjTerm *T);
  std::uint64_t hashInt(const IntTerm *T);
  std::uint64_t hashFloat(const FloatTerm *T);

  std::unordered_map<const void *, std::uint64_t> Memo;
};

/// Per-exploration memo of definite solver answers. See file comment
/// for the soundness and ownership rules.
class SolverQueryCache {
public:
  using QueryKey = std::vector<std::uint64_t>;

  /// The shared hasher (shared so the pointer->hash memo is reused by
  /// every solver of the exploration).
  TermHasher &hasher() { return Hasher; }

  /// Exact-match lookup; null on miss.
  const SolveResult *lookup(const QueryKey &Key) const;

  /// True when \p Key is a superset of a known proven-Unsat core.
  bool subsumedUnsat(const QueryKey &Key) const;

  /// Stores a definite result. Unknown results are rejected (they are
  /// retryable — caching them would freeze the degradation ladder).
  void store(const QueryKey &Key, const SolveResult &Result);

  std::size_t exactEntries() const { return Exact.size(); }
  std::size_t unsatCores() const { return Cores.size(); }

private:
  TermHasher Hasher;
  std::map<QueryKey, SolveResult> Exact;
  /// Sorted conjunct-hash sets of proven-Unsat queries, capped so the
  /// subsumption scan stays O(cores * |query|).
  std::vector<QueryKey> Cores;
  static constexpr std::size_t MaxUnsatCores = 256;
};

/// Campaign-scope index of proven-Unsat cases (tier 2; see file
/// comment for why only Unsat may cross exploration and thread
/// boundaries). Thread-safe: workers of a parallel campaign consult and
/// populate one instance concurrently.
class SharedUnsatIndex {
public:
  using QueryKey = SolverQueryCache::QueryKey;

  /// The deterministic cost of the original Unsat proof. Charged to the
  /// hitting solver's statistics in place of re-running the proof, so
  /// per-instruction counters (cases, nodes) stay identical whether the
  /// hit fires or not — only the hit/miss counters themselves depend on
  /// scheduling.
  struct Proof {
    std::uint64_t CasesExplored = 0;
    std::uint64_t NodesExplored = 0;
  };

  /// Looks up a case proven Unsat under the same caps fingerprint.
  bool lookup(std::uint64_t CapsFingerprint, const QueryKey &Key,
              Proof &Out) const;

  /// Records an Unsat proof. No-op once the entry cap is reached (the
  /// index is an accelerator, not ground truth).
  void store(std::uint64_t CapsFingerprint, const QueryKey &Key,
             const Proof &P);

  std::size_t size() const;

private:
  mutable std::mutex Lock;
  std::map<std::pair<std::uint64_t, QueryKey>, Proof> Entries;
  static constexpr std::size_t MaxEntries = 1u << 16;
};

} // namespace igdt

#endif // IGDT_SOLVER_SOLVERCACHE_H
