//===- solver/SolverCache.h - Per-exploration solver query caching ----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental solving support for the concolic exploration loop,
/// organised as two tiers with different sharing scopes:
///
///  - TermHasher reads every term's *structural* 64-bit hash. Since the
///    hash-consing arena (solver/Term.h) precomputes each node's hash at
///    intern time with the identical mixing scheme, hashing is now an
///    O(1) field read rather than a full-tree walk. Structural hashing
///    makes cache keys independent of allocation addresses and of the
///    order terms were built in — the property that lets a cached run
///    reproduce an uncached one bit for bit, and that lets hashes
///    computed in one exploration's arena match those of another.
///
///  - SolverModelBank (tier 0, per exploration) keeps the most recent
///    satisfying models. Before any search, the solver evaluates the new
///    query under each banked model via TermEval (the counterexample-
///    cache trick): sibling negation queries of one path prefix are very
///    often satisfied by a model found two queries ago, and a hit skips
///    expansion and search entirely. Unlike the exact-match tiers the
///    bank is *part of the defined exploration algorithm*, not a
///    transparent accelerator: a bank hit may return a different (older)
///    model than the seeded search would find, and concolic execution is
///    deterministic in the model, so which model comes back shapes the
///    path frontier. The bank is therefore always consulted — the
///    EnableModelCache toggle only decides whether a hit *skips* the
///    search or merely *verifies* it (see SolverOptions::ModelCacheSkips)
///    — and its content is fed identically on every Sat result, keeping
///    it byte-reproducible across cache configurations, workers and
///    Jobs values.
///
///  - SolverQueryCache (tier 1, per exploration) memoizes definite
///    answers — Sat with its model, proven Unsat — at two
///    granularities: whole queries and the individual conjunctive
///    *cases* they expand into (the level at which the degradation
///    ladder re-poses work). It also keeps proven-Unsat conjunct sets
///    as *cores*: a later key that is a superset of a known core is
///    Unsat by subsumption, with no search. Unknown results are never
///    cached so the ladder can still retry them. Models hold pointers
///    into the exploration's term arena, so this tier must die with the
///    exploration and is never shared across threads — lookups take no
///    locks.
///
///  - SharedUnsatIndex (tier 2, campaign scope) records proven-Unsat
///    cases across explorations. Catalog instructions of one family
///    pose structurally identical type-check cases, so Unsat proofs
///    recur campaign-wide even though they never recur within one
///    exploration. Only Unsat entries are shared: they carry no model
///    (nothing points into a foreign arena), and an Unsat proof is
///    derived purely from class conflicts, empty candidate sets and
///    interval propagation — never from the seeded numeric search — so
///    any worker with the same caps and class table would reprove it
///    identically. A hit is therefore transparent: results are
///    byte-identical whether or not it fires, which keeps campaign rows
///    independent of worker scheduling. Entries are keyed by a caps
///    fingerprint so ladder rungs and ablation configurations never
///    serve each other. The index takes one mutex per case lookup /
///    store — off the hot search path, which runs lock-free.
///
/// Definite answers from a cheaper ladder rung are sound at any
/// strength: caps only ever widen results toward Unknown.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_SOLVERCACHE_H
#define IGDT_SOLVER_SOLVERCACHE_H

#include "solver/Model.h"
#include "solver/Term.h"

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace igdt {

class ClassTable;
enum class SolveStatus : std::uint8_t;
struct SolveResult;

/// Structural hashing of solver terms. Since every term carries its
/// hash precomputed by the interning TermBuilder, this is a plain field
/// read — the class survives as the home of query signatures and of the
/// null-term convention.
class TermHasher {
public:
  std::uint64_t hashBool(const BoolTerm *T) {
    return T ? T->Hash : NullTermHash;
  }

  /// Signature of a conjunctive query: the sorted multiset of conjunct
  /// hashes (the cache key) plus an order-insensitive fold of them
  /// (RNG seed material).
  struct QuerySignature {
    std::vector<std::uint64_t> SortedConjuncts;
    std::uint64_t Fold = 0;
  };
  QuerySignature signQuery(const std::vector<const BoolTerm *> &Conjuncts);
};

/// Tier-0 model cache: a FIFO of the most recent satisfying models of
/// one exploration. See the file comment for why this tier is part of
/// the defined algorithm rather than a transparent accelerator. Models
/// hold pointers into the exploration's term arena, so the bank is
/// strictly worker-local and dies with the exploration.
class SolverModelBank {
public:
  explicit SolverModelBank(std::size_t Capacity = 8) : Capacity(Capacity) {}

  /// Records a Sat result's model. Called for *every* Sat result —
  /// fresh searches and cache hits alike — so the bank's content is a
  /// pure function of the result sequence, which is itself identical
  /// across cache configurations. Structural duplicates of a model
  /// already banked are skipped to keep the FIFO slots diverse.
  void record(const Model &M);

  /// Scans newest-first for a banked model satisfying all \p Conjuncts
  /// under TermEval; null when none does. Deterministic: content and
  /// scan order depend only on the recorded sequence.
  const Model *findSatisfying(const std::vector<const BoolTerm *> &Conjuncts,
                              const ClassTable &Classes) const;

  std::size_t size() const { return Models.size(); }

private:
  std::deque<Model> Models; // newest at the back
  std::size_t Capacity;
};

/// Per-exploration memo of definite solver answers. See file comment
/// for the soundness and ownership rules.
class SolverQueryCache {
public:
  using QueryKey = std::vector<std::uint64_t>;

  /// Exact-match lookup; null on miss.
  const SolveResult *lookup(const QueryKey &Key) const;

  /// True when \p Key is a superset of a known proven-Unsat core.
  bool subsumedUnsat(const QueryKey &Key) const;

  /// Stores a definite result. Unknown results are rejected (they are
  /// retryable — caching them would freeze the degradation ladder).
  void store(const QueryKey &Key, const SolveResult &Result);

  std::size_t exactEntries() const { return Exact.size(); }
  std::size_t unsatCores() const { return Cores.size(); }

private:
  std::map<QueryKey, SolveResult> Exact;
  /// Sorted conjunct-hash sets of proven-Unsat queries, capped so the
  /// subsumption scan stays O(cores * |query|).
  std::vector<QueryKey> Cores;
  static constexpr std::size_t MaxUnsatCores = 256;
};

/// Campaign-scope index of proven-Unsat cases (tier 2; see file
/// comment for why only Unsat may cross exploration and thread
/// boundaries). Thread-safe: workers of a parallel campaign consult and
/// populate one instance concurrently.
class SharedUnsatIndex {
public:
  using QueryKey = SolverQueryCache::QueryKey;

  /// The deterministic cost of the original Unsat proof. Charged to the
  /// hitting solver's statistics in place of re-running the proof, so
  /// per-instruction counters (cases, nodes) stay identical whether the
  /// hit fires or not — only the hit/miss counters themselves depend on
  /// scheduling.
  struct Proof {
    std::uint64_t CasesExplored = 0;
    std::uint64_t NodesExplored = 0;
  };

  /// Looks up a case proven Unsat under the same caps fingerprint.
  bool lookup(std::uint64_t CapsFingerprint, const QueryKey &Key,
              Proof &Out) const;

  /// Records an Unsat proof. No-op once the entry cap is reached (the
  /// index is an accelerator, not ground truth).
  void store(std::uint64_t CapsFingerprint, const QueryKey &Key,
             const Proof &P);

  std::size_t size() const;

private:
  mutable std::mutex Lock;
  std::map<std::pair<std::uint64_t, QueryKey>, Proof> Entries;
  static constexpr std::size_t MaxEntries = 1u << 16;
};

} // namespace igdt

#endif // IGDT_SOLVER_SOLVERCACHE_H
