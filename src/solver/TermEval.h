//===- solver/TermEval.h - Term evaluation under a model ---------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates Int/Float/Bool terms under a Model. The solver uses this to
/// check candidate assignments; the differential tester reuses it (with a
/// LeafOracle that resolves materialisation-dependent leaves such as
/// unchecked untags and identity hashes) to predict instruction outputs.
///
/// Integer semantics are exactly those of support/IntMath.h, so the
/// evaluator, the interpreter and the machine simulator agree.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_TERMEVAL_H
#define IGDT_SOLVER_TERMEVAL_H

#include "solver/Model.h"
#include "vm/ClassTable.h"

#include <optional>

namespace igdt {

/// Resolves leaves whose value depends on the concrete materialisation
/// rather than on the model (unchecked untags, identity hashes, byte
/// contents of already-built objects).
class LeafOracle {
public:
  virtual ~LeafOracle() = default;
  virtual std::optional<std::int64_t> intLeaf(const IntTerm *Leaf) {
    (void)Leaf;
    return std::nullopt;
  }
  virtual std::optional<double> floatLeaf(const FloatTerm *Leaf) {
    (void)Leaf;
    return std::nullopt;
  }
};

/// Term evaluator over a Model (+ optional oracle + class table).
class TermEvaluator {
public:
  TermEvaluator(const Model &M, const ClassTable &Classes,
                LeafOracle *Oracle = nullptr)
      : M(M), Classes(Classes), Oracle(Oracle) {}

  /// Evaluates an integer term; nullopt when a leaf is unresolvable.
  std::optional<std::int64_t> evalInt(const IntTerm *T) const;

  /// Evaluates a float term.
  std::optional<double> evalFloat(const FloatTerm *T) const;

  /// Evaluates a boolean term (path-condition node).
  std::optional<bool> evalBool(const BoolTerm *T) const;

  /// Class index an object term denotes under the model, when decidable.
  std::optional<std::uint32_t> classOf(const ObjTerm *T) const;

private:
  const Model &M;
  const ClassTable &Classes;
  LeafOracle *Oracle;
};

} // namespace igdt

#endif // IGDT_SOLVER_TERMEVAL_H
