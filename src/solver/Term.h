//===- solver/Term.h - Symbolic terms over VM semantics --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint vocabulary of the concolic execution model. Terms are
/// deliberately *semantic* (paper §3.3): a value is "a SmallInteger" or
/// "an instance of class k with n slots" — never "a word whose low bit is
/// set" — so condition negation stays meaningful and the solver needs no
/// bit-level pointer reasoning.
///
/// Terms come in four sorts:
///  - Obj terms denote VM values (variables of the abstract frame,
///    constants, boxed results, fresh allocations);
///  - Int terms denote untagged integers (SmallInteger payloads, slot
///    counts, the operand stack size);
///  - Float terms denote untagged IEEE doubles;
///  - Bool terms denote path conditions.
///
/// All terms are immutable, arena-allocated and hash-consed by
/// TermBuilder, so pointer equality is term identity for *every* node,
/// not just leaves: two structurally equal terms built through the same
/// builder are the same pointer. Each node also carries its structural
/// hash, precomputed at intern time with the same mixing scheme
/// TermHasher used to compute recursively — solver cache keys are now
/// O(1) field reads, and hashes still agree across arenas.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_TERM_H
#define IGDT_SOLVER_TERM_H

#include "support/Arena.h"
#include "vm/ObjectFormat.h"
#include "vm/Oop.h"

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace igdt {

struct IntTerm;
struct FloatTerm;
struct BoolTerm;

/// Structural identity of an input variable in the abstract frame
/// (paper Figure 3: receiver, operand stack slots, locals, object slots).
enum class VarRole : std::uint8_t {
  Receiver,
  StackSlot, // Index counts from the *bottom* of the operand stack
  Local,
  SlotOf, // slot Index of Parent
};

/// Neutral hash of an absent child term; also the seed constant of
/// hashCombine64. Kept identical to the value the recursive TermHasher
/// historically produced for null children, so precomputed hashes equal
/// the old full-tree-walk hashes bit for bit (cache keys and RNG seed
/// material derived from them are unchanged).
constexpr std::uint64_t NullTermHash = 0x9E3779B97F4A7C15ull;

/// Object-sort term.
struct ObjTerm {
  enum class Kind : std::uint8_t {
    Var,      // abstract input value
    Const,    // concrete Oop known at exploration time
    IntObj,   // SmallInteger box of IntPayload
    FloatObj, // BoxedFloat box of FloatPayload
    NewObj,   // object allocated while executing the instruction
  };

  Kind TermKind;
  // Var
  VarRole Role = VarRole::Receiver;
  std::int32_t Index = 0;
  const ObjTerm *Parent = nullptr;
  // Const
  Oop ConstValue = InvalidOop;
  // IntObj / FloatObj
  const IntTerm *IntPayload = nullptr;
  const FloatTerm *FloatPayload = nullptr;
  // NewObj
  std::uint32_t AllocId = 0;
  std::uint32_t AllocClass = 0;
  const IntTerm *AllocSize = nullptr;
  const ObjTerm *CopyOf = nullptr; // shallowCopy source, else nullptr
  /// Structural hash, precomputed at intern time.
  std::uint64_t Hash = 0;

  bool isVar() const { return TermKind == Kind::Var; }
};

/// Integer-sort term.
struct IntTerm {
  enum class Kind : std::uint8_t {
    Const,
    ValueOf,          // SmallInteger payload of an Obj var
    UncheckedValueOf, // blind untag of an Obj var (missing-check paths)
    SlotCount,        // slot/byte count of an Obj var
    StackSize,        // operand stack depth of the input frame
    ByteAt,           // byte Index of an Obj var (pinned index)
    LoadLE,           // little-endian multi-byte load (pinned offset)
    ClassIndexOf,     // class-table index of an Obj var
    IdentityHash,     // identity hash of an Obj var
    // unary / binary operators
    Add,
    Sub,
    Mul,
    Quo,      // truncated division
    DivFloor, // floored division
    ModFloor, // floored modulo
    Neg,
    BitAnd,
    BitOr,
    BitXor,
    Shl, // saturating left shift
    Asr, // arithmetic right shift
    HighBit,
    TruncF, // double -> integer truncation of a Float term
  };

  Kind TermKind;
  std::int64_t ConstValue = 0;
  const ObjTerm *Obj = nullptr; // leaf terms referencing a variable
  std::int64_t Aux = 0;         // ByteAt index / LoadLE offset
  std::uint8_t Width = 0;       // LoadLE width in bytes
  bool SignExtend = false;      // LoadLE signedness
  const IntTerm *Lhs = nullptr;
  const IntTerm *Rhs = nullptr;
  const FloatTerm *FloatOperand = nullptr; // TruncF
  /// Structural hash, precomputed at intern time.
  std::uint64_t Hash = 0;

  bool isLeaf() const {
    switch (TermKind) {
    case Kind::ValueOf:
    case Kind::UncheckedValueOf:
    case Kind::SlotCount:
    case Kind::StackSize:
    case Kind::ByteAt:
    case Kind::LoadLE:
    case Kind::ClassIndexOf:
    case Kind::IdentityHash:
      return true;
    default:
      return false;
    }
  }
};

/// Float-sort term.
struct FloatTerm {
  enum class Kind : std::uint8_t {
    Const,
    ValueOf,          // payload of a BoxedFloat Obj var
    UncheckedValueOf, // blind unbox (missing-check paths)
    LoadF64,          // FFI double load (pinned offset)
    LoadF32,          // FFI single-precision load, widened (pinned offset)
    OfInt,            // integer -> double conversion
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
    ArcTan,
    Frac, // x - trunc(x)
  };

  Kind TermKind;
  double ConstValue = 0;
  const ObjTerm *Obj = nullptr;
  std::int64_t Aux = 0; // LoadF64 offset
  const FloatTerm *Lhs = nullptr;
  const FloatTerm *Rhs = nullptr;
  const IntTerm *IntOperand = nullptr; // OfInt
  /// Structural hash, precomputed at intern time.
  std::uint64_t Hash = 0;

  bool isLeaf() const {
    return TermKind == Kind::ValueOf || TermKind == Kind::UncheckedValueOf ||
           TermKind == Kind::LoadF64 || TermKind == Kind::LoadF32;
  }
};

/// Integer / float comparison predicates (others are built from these).
enum class CmpPred : std::uint8_t { Lt, Le, Eq };

/// Boolean-sort term (path-condition node).
struct BoolTerm {
  enum class Kind : std::uint8_t {
    Const,
    Not,
    And,
    Or,
    ICmp,        // CmpPred over two Int terms
    FCmp,        // CmpPred over two Float terms
    IsClass,     // Obj var's class-table index equals ClassIndex
    HasFormat,   // Obj var's class format is within FormatMask
    ObjEq,       // identity of two Obj terms
    IntFormatIs, // class table entry denoted by an Int term has FormatMask
  };

  Kind TermKind;
  bool ConstValue = false;
  CmpPred Pred = CmpPred::Lt;
  const BoolTerm *BLhs = nullptr;
  const BoolTerm *BRhs = nullptr;
  const IntTerm *ILhs = nullptr;
  const IntTerm *IRhs = nullptr;
  const FloatTerm *FLhs = nullptr;
  const FloatTerm *FRhs = nullptr;
  const ObjTerm *Obj = nullptr;
  const ObjTerm *ObjRhs = nullptr;
  std::uint32_t ClassIndex = 0;
  std::uint8_t FormatMask = 0; // bit per ObjectFormat value
  /// Structural hash, precomputed at intern time.
  std::uint64_t Hash = 0;
};

/// Bit for \p Format within BoolTerm::FormatMask.
inline std::uint8_t formatBit(ObjectFormat Format) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(Format));
}

/// Arena-backed factory that hash-conses *every* term, so structural
/// identity is pointer identity across the whole vocabulary and each
/// node carries its precomputed structural hash.
///
/// Arena ownership is unchanged: the builder owns the arena, terms die
/// with the builder, and nothing interned here may outlive the
/// exploration that built it. Interning happens through two kinds of
/// table. Leaves and variables keep their original field-keyed caches
/// (their equivalence semantics — e.g. std::map<double> folding of
/// float constants — predate this layer and are load-bearing for
/// reproducibility). Interior nodes go through per-sort hash-bucket
/// tables: the candidate's hash selects a bucket and a full structural
/// field compare picks the existing node, where child comparison is by
/// pointer because children are already interned.
class TermBuilder {
public:
  TermBuilder() = default;
  TermBuilder(const TermBuilder &) = delete;
  TermBuilder &operator=(const TermBuilder &) = delete;

  /// \name Obj terms
  /// @{
  const ObjTerm *objVar(VarRole Role, std::int32_t Index,
                        const ObjTerm *Parent = nullptr);
  const ObjTerm *objConst(Oop Value);
  const ObjTerm *intObj(const IntTerm *Payload);
  const ObjTerm *floatObj(const FloatTerm *Payload);
  const ObjTerm *newObj(std::uint32_t AllocId, std::uint32_t ClassIndex,
                        const IntTerm *Size, const ObjTerm *CopyOf = nullptr);
  /// @}

  /// \name Int terms
  /// @{
  const IntTerm *intConst(std::int64_t Value);
  const IntTerm *valueOf(const ObjTerm *Var);
  const IntTerm *uncheckedValueOf(const ObjTerm *Var);
  const IntTerm *slotCount(const ObjTerm *Var);
  const IntTerm *stackSize();
  const IntTerm *byteAt(const ObjTerm *Var, std::int64_t Index);
  const IntTerm *loadLE(const ObjTerm *Var, std::int64_t Offset,
                        std::uint8_t Width, bool SignExtend);
  const IntTerm *classIndexOf(const ObjTerm *Var);
  const IntTerm *identityHash(const ObjTerm *Var);
  const IntTerm *binInt(IntTerm::Kind Op, const IntTerm *L, const IntTerm *R);
  const IntTerm *negInt(const IntTerm *Operand);
  const IntTerm *highBit(const IntTerm *Operand);
  const IntTerm *truncF(const FloatTerm *Operand);
  /// @}

  /// \name Float terms
  /// @{
  const FloatTerm *floatConst(double Value);
  const FloatTerm *floatValueOf(const ObjTerm *Var);
  const FloatTerm *uncheckedFloatValueOf(const ObjTerm *Var);
  const FloatTerm *loadF64(const ObjTerm *Var, std::int64_t Offset);
  const FloatTerm *loadF32(const ObjTerm *Var, std::int64_t Offset);
  const FloatTerm *ofInt(const IntTerm *Operand);
  const FloatTerm *binFloat(FloatTerm::Kind Op, const FloatTerm *L,
                            const FloatTerm *R);
  const FloatTerm *unFloat(FloatTerm::Kind Op, const FloatTerm *Operand);
  /// @}

  /// \name Bool terms
  /// @{
  const BoolTerm *boolConst(bool Value);
  const BoolTerm *notB(const BoolTerm *Operand);
  const BoolTerm *andB(const BoolTerm *L, const BoolTerm *R);
  const BoolTerm *orB(const BoolTerm *L, const BoolTerm *R);
  const BoolTerm *icmp(CmpPred Pred, const IntTerm *L, const IntTerm *R);
  const BoolTerm *fcmp(CmpPred Pred, const FloatTerm *L, const FloatTerm *R);
  const BoolTerm *isClass(const ObjTerm *Var, std::uint32_t ClassIndex);
  const BoolTerm *hasFormat(const ObjTerm *Var, std::uint8_t FormatMask);
  const BoolTerm *objEq(const ObjTerm *L, const ObjTerm *R);
  const BoolTerm *intFormatIs(const IntTerm *ClassIdx, std::uint8_t FormatMask);
  /// @}

  Arena &arena() { return Mem; }

  /// Number of distinct interned nodes (all sorts). Exposed for tests
  /// and the explore bench: interning effectiveness is #calls - #nodes.
  std::size_t internedNodes() const { return InternedNodes; }

private:
  /// Per-sort hash-bucket intern table. Collisions chain into a small
  /// vector resolved by full structural comparison.
  template <typename T>
  using InternTable = std::unordered_map<std::uint64_t, std::vector<const T *>>;

  const ObjTerm *internObj(ObjTerm Proto);
  const IntTerm *internInt(IntTerm Proto);
  const FloatTerm *internFloat(FloatTerm Proto);
  const BoolTerm *internBool(BoolTerm Proto);

  Arena Mem;
  std::map<std::tuple<VarRole, std::int32_t, const ObjTerm *>, const ObjTerm *>
      VarCache;
  std::map<Oop, const ObjTerm *> ConstCache;
  std::map<std::int64_t, const IntTerm *> IntConstCache;
  std::map<std::pair<IntTerm::Kind, const ObjTerm *>, const IntTerm *>
      IntLeafCache;
  std::map<std::tuple<const ObjTerm *, std::int64_t, int>, const IntTerm *>
      ByteCache;
  const IntTerm *StackSizeTerm = nullptr;
  std::map<double, const FloatTerm *> FloatConstCache;
  std::map<std::pair<int, const ObjTerm *>, const FloatTerm *> FloatLeafCache;
  std::map<const BoolTerm *, const BoolTerm *> NotCache;
  InternTable<ObjTerm> ObjIntern;
  InternTable<IntTerm> IntIntern;
  InternTable<FloatTerm> FloatIntern;
  InternTable<BoolTerm> BoolIntern;
  std::size_t InternedNodes = 0;
  std::uint32_t NextAllocId = 1;
};

} // namespace igdt

#endif // IGDT_SOLVER_TERM_H
