//===- solver/Solver.h - Constraint solver over VM semantics ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint solver behind the concolic explorer. The paper used an
/// off-the-shelf solver (with 56-bit integer precision and no bit-wise
/// operations, §4.3); none is available offline, so IGDT ships its own:
///
///  - path conditions are expanded to a bounded set of conjunctive cases
///    (negations of compound checks such as overflow ranges produce
///    disjunctions, see paper Fig. 2);
///  - object variables get class-table assignments from the type
///    predicates (isInteger / isFloat / format constraints / identity);
///  - integer leaves are narrowed by HC4-style interval propagation
///    through the arithmetic terms, then searched over interval bounds
///    plus random samples;
///  - float leaves are solved by candidate/sampling search (sufficient
///    because VM float paths only compare against constants or test
///    equality, and transcendental outputs are never constrained).
///
/// The IntegerBits option reproduces the paper's solver-precision
/// limitation: with fewer than 61 bits, paths requiring larger literals
/// become Unknown and are curated out, exactly as in the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_SOLVER_H
#define IGDT_SOLVER_SOLVER_H

#include "solver/Model.h"
#include "solver/SolverCache.h"
#include "support/Budget.h"
#include "vm/ClassTable.h"

#include <cstdint>
#include <map>
#include <vector>

namespace igdt {

class TraceSink;
class MetricsRegistry;

/// Outcome of a solver query.
enum class SolveStatus : std::uint8_t {
  Sat,     ///< A model was found.
  Unsat,   ///< Proven unsatisfiable (class conflict or empty interval).
  Unknown, ///< Search budget exhausted or beyond the solver's theory.
};

const char *solveStatusName(SolveStatus Status);

/// Result of a query: a status plus the model when Sat.
struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  Model M;
};

/// Tunables.
struct SolverOptions {
  /// Usable signed integer precision. 61 covers the full SmallInteger
  /// range; smaller values reproduce the paper's 56-bit limitation.
  int IntegerBits = 61;
  /// Cap on conjunctive cases expanded from disjunctions.
  unsigned MaxCases = 64;
  /// Cap on class-assignment combinations per case.
  unsigned MaxClassCombos = 256;
  /// Cap on numeric search nodes per query.
  unsigned MaxSearchNodes = 50000;
  /// Random samples per integer/float leaf.
  unsigned RandomSamples = 12;
  /// Upper bound of the operand-stack-size variable.
  std::int64_t MaxStackSize = 12;
  /// Upper bound of object slot-count variables.
  std::int64_t MaxSlotCount = 32;
  /// RNG seed material (solving is fully deterministic). Seeded once
  /// per exploration: each expanded case's generator mixes this value
  /// with the *structural hash of the case's own literals* — not with
  /// any per-query signature — so the identical case samples the
  /// identical candidates no matter which query posed it, when, or on
  /// which worker. That bit-stability is what lets the incremental
  /// assertion stack replay a prefix's cases after push/pop without
  /// disturbing results. The explorer further mixes in a stable hash of
  /// the instruction name, making every instruction's exploration
  /// independent of catalog order and shard assignment.
  std::uint64_t Seed = 0x5EED;
  /// Cooperative budget shared across queries (non-owning, may be
  /// null). The numeric search charges one work unit per node; an
  /// exhausted budget turns the running and all later queries Unknown
  /// instead of letting a pathological instruction stall the campaign.
  Budget *SharedBudget = nullptr;
  /// Per-exploration query cache (non-owning, may be null). Memoizes
  /// definite answers and rejects supersets of known-Unsat cores
  /// without search. Must never be shared across threads; the owning
  /// explorer keeps it worker-local (see ConcolicExplorer.h).
  SolverQueryCache *Cache = nullptr;
  /// Campaign-scope index of proven-Unsat cases (non-owning, may be
  /// null). Unlike Cache it IS shared across explorations and threads:
  /// Unsat proofs are pointer-free and seed-independent, so a hit is
  /// byte-identical to re-proving (see SolverCache.h). Entries are
  /// segregated by a fingerprint of the caps that influence Unsat
  /// provability, so ladder rungs never serve full-strength queries.
  SharedUnsatIndex *Shared = nullptr;
  /// Tier-0 model cache (non-owning, may be null). When set, every
  /// query is first evaluated under the banked models via TermEval and
  /// a satisfying one answers Sat without expansion or search. The bank
  /// is consulted *before* the exact-match cache so its answers are
  /// independent of whether Cache is configured, and it is fed on every
  /// Sat result; both rules keep exploration results byte-identical
  /// across cache configurations (see SolverCache.h). Worker-local,
  /// like Cache.
  SolverModelBank *Bank = nullptr;
  /// Whether a model-bank hit skips the search (true, the perf win) or
  /// merely verifies it (false): a hit still answers with the banked
  /// model, but the full expansion + search also runs with throwaway
  /// statistics and no cache interaction. Skip and verify are therefore
  /// byte-identical in every observable output — this is the only sound
  /// on/off A/B for a counterexample cache, because a bank hit may
  /// return a *different* model than the search would, and the whole
  /// exploration frontier is deterministic in the returned model.
  bool ModelCacheSkips = true;
  /// Harness-fault injection (campaign self-tests): throw HarnessFault
  /// at query entry, simulating a solver blow-up no search cap contains.
  bool InjectSolverHang = false;
  /// Observability sink (non-owning, may be null). When set, every
  /// query emits one SolverQuery event (status + nodes/cases deltas,
  /// cost-compensated on cache hits so they are deterministic) and
  /// cache lookups emit CacheLookup diagnostics. Disabled-path cost is
  /// this one null check.
  TraceSink *Trace = nullptr;
};

/// Running counters, reported by the evaluation harness.
struct SolverStats {
  std::uint64_t Queries = 0;
  std::uint64_t SatCount = 0;
  std::uint64_t UnsatCount = 0;
  std::uint64_t UnknownCount = 0;
  std::uint64_t CasesExplored = 0;
  std::uint64_t NodesExplored = 0;
  /// Queries cut short (turned Unknown) by an exhausted shared budget.
  std::uint64_t BudgetStops = 0;
  /// Lookups answered from a cache: an exact match in the
  /// per-exploration tier or a proof in the shared Unsat index. Unlike
  /// every other counter, the three cache counters depend on worker
  /// scheduling (which exploration populated the shared index first),
  /// so they are diagnostics only: excluded from campaign checkpoints
  /// and from byte-identity guarantees.
  std::uint64_t CacheHits = 0;
  /// Lookups that consulted a cache and had to search.
  std::uint64_t CacheMisses = 0;
  /// Lookups rejected as supersets of a known proven-Unsat core.
  std::uint64_t CacheUnsatSubsumed = 0;
  /// Queries answered by the tier-0 model bank (a banked model already
  /// satisfied the query, so expansion and search were skipped). Unlike
  /// the other cache counters this one is deterministic — the bank is
  /// worker-local and always consulted — but it follows the same
  /// precedent of being excluded from campaign checkpoints: it counts
  /// reuse, not exploration work.
  std::uint64_t ModelCacheHits = 0;
  /// Queries solved through the assertion stack's cumulative case
  /// expansion: only the newly pushed conjunct was expanded, the rest
  /// of the product was reused from the prefix. The complement —
  /// Queries minus every avoided/reused tier — is the "full solve"
  /// count the explore bench guards. Deterministic (worker-local, like
  /// ModelCacheHits) but a reuse diagnostic, so also never
  /// checkpointed.
  std::uint64_t PrefixReuseSolves = 0;
  /// Queries that case-expanded their whole conjunct vector from
  /// scratch — the only kind of solve a pre-memo engine issues, and
  /// the count the explore bench's regression guard watches. Counted
  /// directly (not derived by subtraction) because tier-2 shared-proof
  /// hits are per-case and can co-occur with either solve shape.
  std::uint64_t FullSolves = 0;
  /// Times a structural cap (MaxCases burst, MaxClassCombos, or
  /// MaxSearchNodes) actually cut a search short. This is the caps
  /// *touched* counter the campaign scheduler's tiered escalation keys
  /// on: below every cap, execution is bit-independent of the cap
  /// values, so a run whose CapHits is zero under reduced caps is
  /// provably identical to the same run at full strength. Counted even
  /// when the query still answers Sat (a node-cap trip prunes subtrees,
  /// so a later candidate's Sat may differ from the un-capped Sat).
  /// Deterministic — cap trips happen only during genuine searches,
  /// which the worker-local caches replay identically — but excluded
  /// from campaign checkpoints like the other diagnostics: it describes
  /// solver internals, not exploration output.
  std::uint64_t CapHits = 0;

  /// Accumulates \p Other into this (deterministic reduction used when
  /// merging per-worker statistics).
  void add(const SolverStats &Other);
};

/// Folds \p Stats into \p Registry under "solver.*" counter names
/// (queries, sat, unsat, unknown, cases, nodes, budget_stops) and
/// "solver.cache.*" for the scheduling-dependent diagnostics (hits,
/// misses, unsat_subsumed). This is how SolverStats surfaces in the
/// metrics layer: per-shard stats fold per-record, and the campaign's
/// catalog-order merge makes the combined numbers deterministic.
void foldSolverStats(MetricsRegistry &Registry, const SolverStats &Stats);

/// Derives the reduced-caps solver options for a scheduler tier
/// \p Distance rungs below full strength (0 returns \p Base
/// unchanged). Cuts only the pure give-up thresholds — MaxCases,
/// MaxClassCombos, MaxSearchNodes — by 4x per rung (floored), because
/// execution below those caps is bit-identical regardless of their
/// value. RandomSamples (changes the candidate trajectory per node)
/// and IntegerBits (changes interval clamps) are never touched: a
/// cheap-tier run that finishes with SolverStats::CapHits == 0 must be
/// byte-identical to the full-strength run, which is the scheduler's
/// acceptance proof. Distinct from the explorer's degradation ladder
/// (ConcolicExplorer), which *recovers* Unknown negations by
/// weakening; this ladder *screens* whole instructions cheaply first.
SolverOptions solverTierCaps(const SolverOptions &Base, unsigned Distance);

/// An atom with polarity, produced by negation-normal-form expansion.
struct SolverLiteral {
  const BoolTerm *Atom;
  bool Positive;
};

/// One conjunctive case of an expanded query.
using SolverCase = std::vector<SolverLiteral>;

/// Cumulative case expansion of an assertion-stack prefix. Burst means
/// the ordered cross product exceeded MaxCases (the whole query is
/// Unknown, matching a from-scratch expansion overflow); an empty case
/// list without Burst is proven Unsat.
struct ExpandedCases {
  bool Burst = false;
  std::vector<SolverCase> Cases;
};

/// The solver. Stateless between queries except for statistics and the
/// optional assertion stack.
class ConstraintSolver {
public:
  explicit ConstraintSolver(const ClassTable &Classes,
                            SolverOptions Options = SolverOptions());

  /// Solves the conjunction of \p Conjuncts.
  SolveResult solve(const std::vector<const BoolTerm *> &Conjuncts);

  /// \name Incremental prefix interface
  /// The explorer mirrors its path stack onto the solver: push the
  /// taken condition of each branch in path order, push a negation,
  /// solveStack(), pop, push the next prefix entry. Each level caches
  /// the *cumulative case expansion* of the prefix so far (plus a
  /// per-conjunct NNF memo shared across levels), so negating the k-th
  /// branch re-expands only the one pushed negation against the cached
  /// prefix product instead of re-walking all k conjuncts. Results are
  /// bit-identical to solve() on the same conjunct sequence: expansion
  /// order, case order, case RNG seeds and every cache interaction are
  /// reproduced exactly.
  /// @{
  void pushAssertion(const BoolTerm *Conjunct);
  void popAssertion();
  void clearAssertions();
  const std::vector<const BoolTerm *> &assertions() const {
    return AssertionStack;
  }
  /// Solves the conjunction of the asserted stack.
  SolveResult solveStack();
  /// @}

  const SolverStats &stats() const { return Stats; }
  const SolverOptions &options() const { return Opts; }

private:
  /// The actual solve; the public entries wrap it with trace emission
  /// and model-bank feeding. \p Pre carries the assertion stack's
  /// precomputed cumulative expansion (null for from-scratch solves).
  SolveResult solveImpl(const std::vector<const BoolTerm *> &Conjuncts,
                        const ExpandedCases *Pre);
  SolveResult solveEntry(const std::vector<const BoolTerm *> &Conjuncts,
                         const ExpandedCases *Pre);

  const ClassTable &Classes;
  SolverOptions Opts;
  SolverStats Stats;
  /// Hasher for query signatures (a plain field read since terms carry
  /// precomputed hashes).
  TermHasher Hasher;
  /// Incremental prefix state: the asserted conjuncts, one cumulative
  /// expansion per level, and the NNF memo of individual conjuncts.
  std::vector<const BoolTerm *> AssertionStack;
  std::vector<ExpandedCases> PrefixLevels;
  std::map<const BoolTerm *, std::vector<SolverCase>> ConjunctCaseMemo;
};

} // namespace igdt

#endif // IGDT_SOLVER_SOLVER_H
