//===- solver/Solver.h - Constraint solver over VM semantics ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint solver behind the concolic explorer. The paper used an
/// off-the-shelf solver (with 56-bit integer precision and no bit-wise
/// operations, §4.3); none is available offline, so IGDT ships its own:
///
///  - path conditions are expanded to a bounded set of conjunctive cases
///    (negations of compound checks such as overflow ranges produce
///    disjunctions, see paper Fig. 2);
///  - object variables get class-table assignments from the type
///    predicates (isInteger / isFloat / format constraints / identity);
///  - integer leaves are narrowed by HC4-style interval propagation
///    through the arithmetic terms, then searched over interval bounds
///    plus random samples;
///  - float leaves are solved by candidate/sampling search (sufficient
///    because VM float paths only compare against constants or test
///    equality, and transcendental outputs are never constrained).
///
/// The IntegerBits option reproduces the paper's solver-precision
/// limitation: with fewer than 61 bits, paths requiring larger literals
/// become Unknown and are curated out, exactly as in the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_SOLVER_H
#define IGDT_SOLVER_SOLVER_H

#include "solver/Model.h"
#include "support/Budget.h"
#include "vm/ClassTable.h"

#include <cstdint>
#include <vector>

namespace igdt {

/// Outcome of a solver query.
enum class SolveStatus : std::uint8_t {
  Sat,     ///< A model was found.
  Unsat,   ///< Proven unsatisfiable (class conflict or empty interval).
  Unknown, ///< Search budget exhausted or beyond the solver's theory.
};

const char *solveStatusName(SolveStatus Status);

/// Result of a query: a status plus the model when Sat.
struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  Model M;
};

/// Tunables.
struct SolverOptions {
  /// Usable signed integer precision. 61 covers the full SmallInteger
  /// range; smaller values reproduce the paper's 56-bit limitation.
  int IntegerBits = 61;
  /// Cap on conjunctive cases expanded from disjunctions.
  unsigned MaxCases = 64;
  /// Cap on class-assignment combinations per case.
  unsigned MaxClassCombos = 256;
  /// Cap on numeric search nodes per query.
  unsigned MaxSearchNodes = 50000;
  /// Random samples per integer/float leaf.
  unsigned RandomSamples = 12;
  /// Upper bound of the operand-stack-size variable.
  std::int64_t MaxStackSize = 12;
  /// Upper bound of object slot-count variables.
  std::int64_t MaxSlotCount = 32;
  /// RNG seed (solving is fully deterministic).
  std::uint64_t Seed = 0x5EED;
  /// Cooperative budget shared across queries (non-owning, may be
  /// null). The numeric search charges one work unit per node; an
  /// exhausted budget turns the running and all later queries Unknown
  /// instead of letting a pathological instruction stall the campaign.
  Budget *SharedBudget = nullptr;
  /// Harness-fault injection (campaign self-tests): throw HarnessFault
  /// at query entry, simulating a solver blow-up no search cap contains.
  bool InjectSolverHang = false;
};

/// Running counters, reported by the evaluation harness.
struct SolverStats {
  std::uint64_t Queries = 0;
  std::uint64_t SatCount = 0;
  std::uint64_t UnsatCount = 0;
  std::uint64_t UnknownCount = 0;
  std::uint64_t CasesExplored = 0;
  std::uint64_t NodesExplored = 0;
  /// Queries cut short (turned Unknown) by an exhausted shared budget.
  std::uint64_t BudgetStops = 0;
};

/// The solver. Stateless between queries except for statistics.
class ConstraintSolver {
public:
  explicit ConstraintSolver(const ClassTable &Classes,
                            SolverOptions Options = SolverOptions());

  /// Solves the conjunction of \p Conjuncts.
  SolveResult solve(const std::vector<const BoolTerm *> &Conjuncts);

  const SolverStats &stats() const { return Stats; }
  const SolverOptions &options() const { return Opts; }

private:
  const ClassTable &Classes;
  SolverOptions Opts;
  SolverStats Stats;
};

} // namespace igdt

#endif // IGDT_SOLVER_SOLVER_H
