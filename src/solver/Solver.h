//===- solver/Solver.h - Constraint solver over VM semantics ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint solver behind the concolic explorer. The paper used an
/// off-the-shelf solver (with 56-bit integer precision and no bit-wise
/// operations, §4.3); none is available offline, so IGDT ships its own:
///
///  - path conditions are expanded to a bounded set of conjunctive cases
///    (negations of compound checks such as overflow ranges produce
///    disjunctions, see paper Fig. 2);
///  - object variables get class-table assignments from the type
///    predicates (isInteger / isFloat / format constraints / identity);
///  - integer leaves are narrowed by HC4-style interval propagation
///    through the arithmetic terms, then searched over interval bounds
///    plus random samples;
///  - float leaves are solved by candidate/sampling search (sufficient
///    because VM float paths only compare against constants or test
///    equality, and transcendental outputs are never constrained).
///
/// The IntegerBits option reproduces the paper's solver-precision
/// limitation: with fewer than 61 bits, paths requiring larger literals
/// become Unknown and are curated out, exactly as in the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_SOLVER_H
#define IGDT_SOLVER_SOLVER_H

#include "solver/Model.h"
#include "solver/SolverCache.h"
#include "support/Budget.h"
#include "vm/ClassTable.h"

#include <cstdint>
#include <vector>

namespace igdt {

class TraceSink;
class MetricsRegistry;

/// Outcome of a solver query.
enum class SolveStatus : std::uint8_t {
  Sat,     ///< A model was found.
  Unsat,   ///< Proven unsatisfiable (class conflict or empty interval).
  Unknown, ///< Search budget exhausted or beyond the solver's theory.
};

const char *solveStatusName(SolveStatus Status);

/// Result of a query: a status plus the model when Sat.
struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  Model M;
};

/// Tunables.
struct SolverOptions {
  /// Usable signed integer precision. 61 covers the full SmallInteger
  /// range; smaller values reproduce the paper's 56-bit limitation.
  int IntegerBits = 61;
  /// Cap on conjunctive cases expanded from disjunctions.
  unsigned MaxCases = 64;
  /// Cap on class-assignment combinations per case.
  unsigned MaxClassCombos = 256;
  /// Cap on numeric search nodes per query.
  unsigned MaxSearchNodes = 50000;
  /// Random samples per integer/float leaf.
  unsigned RandomSamples = 12;
  /// Upper bound of the operand-stack-size variable.
  std::int64_t MaxStackSize = 12;
  /// Upper bound of object slot-count variables.
  std::int64_t MaxSlotCount = 32;
  /// RNG seed material (solving is fully deterministic). The per-query
  /// generator is seeded from this value mixed with the *structural
  /// hash of the query's conjuncts*, so identical queries sample
  /// identically no matter when — or on which worker — they are posed.
  /// The explorer further mixes in a stable hash of the instruction
  /// name, making every instruction's exploration independent of
  /// catalog order and shard assignment.
  std::uint64_t Seed = 0x5EED;
  /// Cooperative budget shared across queries (non-owning, may be
  /// null). The numeric search charges one work unit per node; an
  /// exhausted budget turns the running and all later queries Unknown
  /// instead of letting a pathological instruction stall the campaign.
  Budget *SharedBudget = nullptr;
  /// Per-exploration query cache (non-owning, may be null). Memoizes
  /// definite answers and rejects supersets of known-Unsat cores
  /// without search. Must never be shared across threads; the owning
  /// explorer keeps it worker-local (see ConcolicExplorer.h).
  SolverQueryCache *Cache = nullptr;
  /// Campaign-scope index of proven-Unsat cases (non-owning, may be
  /// null). Unlike Cache it IS shared across explorations and threads:
  /// Unsat proofs are pointer-free and seed-independent, so a hit is
  /// byte-identical to re-proving (see SolverCache.h). Entries are
  /// segregated by a fingerprint of the caps that influence Unsat
  /// provability, so ladder rungs never serve full-strength queries.
  SharedUnsatIndex *Shared = nullptr;
  /// Harness-fault injection (campaign self-tests): throw HarnessFault
  /// at query entry, simulating a solver blow-up no search cap contains.
  bool InjectSolverHang = false;
  /// Observability sink (non-owning, may be null). When set, every
  /// query emits one SolverQuery event (status + nodes/cases deltas,
  /// cost-compensated on cache hits so they are deterministic) and
  /// cache lookups emit CacheLookup diagnostics. Disabled-path cost is
  /// this one null check.
  TraceSink *Trace = nullptr;
};

/// Running counters, reported by the evaluation harness.
struct SolverStats {
  std::uint64_t Queries = 0;
  std::uint64_t SatCount = 0;
  std::uint64_t UnsatCount = 0;
  std::uint64_t UnknownCount = 0;
  std::uint64_t CasesExplored = 0;
  std::uint64_t NodesExplored = 0;
  /// Queries cut short (turned Unknown) by an exhausted shared budget.
  std::uint64_t BudgetStops = 0;
  /// Lookups answered from a cache: an exact match in the
  /// per-exploration tier or a proof in the shared Unsat index. Unlike
  /// every other counter, the three cache counters depend on worker
  /// scheduling (which exploration populated the shared index first),
  /// so they are diagnostics only: excluded from campaign checkpoints
  /// and from byte-identity guarantees.
  std::uint64_t CacheHits = 0;
  /// Lookups that consulted a cache and had to search.
  std::uint64_t CacheMisses = 0;
  /// Lookups rejected as supersets of a known proven-Unsat core.
  std::uint64_t CacheUnsatSubsumed = 0;

  /// Accumulates \p Other into this (deterministic reduction used when
  /// merging per-worker statistics).
  void add(const SolverStats &Other);
};

/// Folds \p Stats into \p Registry under "solver.*" counter names
/// (queries, sat, unsat, unknown, cases, nodes, budget_stops) and
/// "solver.cache.*" for the scheduling-dependent diagnostics (hits,
/// misses, unsat_subsumed). This is how SolverStats surfaces in the
/// metrics layer: per-shard stats fold per-record, and the campaign's
/// catalog-order merge makes the combined numbers deterministic.
void foldSolverStats(MetricsRegistry &Registry, const SolverStats &Stats);

/// The solver. Stateless between queries except for statistics.
class ConstraintSolver {
public:
  explicit ConstraintSolver(const ClassTable &Classes,
                            SolverOptions Options = SolverOptions());

  /// Solves the conjunction of \p Conjuncts.
  SolveResult solve(const std::vector<const BoolTerm *> &Conjuncts);

  const SolverStats &stats() const { return Stats; }
  const SolverOptions &options() const { return Opts; }

private:
  /// The actual solve; the public entry wraps it with trace emission.
  SolveResult solveImpl(const std::vector<const BoolTerm *> &Conjuncts);

  const ClassTable &Classes;
  SolverOptions Opts;
  SolverStats Stats;
  /// Fallback hasher for content-seeding the per-query RNG when no
  /// cache (with its shared hasher) is configured.
  TermHasher OwnHasher;
};

} // namespace igdt

#endif // IGDT_SOLVER_SOLVER_H
