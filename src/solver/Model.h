//===- solver/Model.h - Satisfying assignments ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model maps abstract-frame variables to concrete value descriptions:
/// the "list of concrete values that explore such paths" of the paper's
/// abstract. The frame materialiser interprets a model plus the structural
/// variable roles to build a concrete VM frame (paper §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_MODEL_H
#define IGDT_SOLVER_MODEL_H

#include "solver/Term.h"
#include "vm/ObjectFormat.h"

#include <map>

namespace igdt {

/// Concrete description of one object variable.
struct ObjAssignment {
  /// Class-table index; SmallIntegerClass and BoxedFloatClass select the
  /// immediate/boxed scalar interpretations.
  std::uint32_t ClassIndex = SmallIntegerClass;
  /// Payload when ClassIndex == SmallIntegerClass.
  std::int64_t IntValue = 0;
  /// Payload when ClassIndex == BoxedFloatClass.
  double FloatValue = 0.0;
  /// Slot/byte count for heap objects.
  std::int64_t SlotCount = 0;
};

/// A satisfying assignment for one path condition.
struct Model {
  /// Per-variable assignments, keyed by the *representative* variable
  /// (see Reps for union-find aliases introduced by identity equalities).
  std::map<const ObjTerm *, ObjAssignment> Objects;

  /// Union-find result: variable -> representative. Variables that do not
  /// appear map to themselves.
  std::map<const ObjTerm *, const ObjTerm *> Reps;

  /// Assignments of non-variable integer leaves: the operand stack size,
  /// byte contents (ByteAt / LoadLE) and opaque leaves the solver chose.
  std::map<const IntTerm *, std::int64_t> IntLeaves;

  /// Assignments of float leaves other than variable payloads.
  std::map<const FloatTerm *, double> FloatLeaves;

  const ObjTerm *repOf(const ObjTerm *Var) const {
    auto It = Reps.find(Var);
    return It == Reps.end() ? Var : It->second;
  }

  /// Assignment of \p Var (through its representative), or a default
  /// SmallInteger 0 when the variable is unconstrained.
  ObjAssignment objectOrDefault(const ObjTerm *Var) const {
    auto It = Objects.find(repOf(Var));
    return It == Objects.end() ? ObjAssignment{} : It->second;
  }

  std::int64_t intLeafOrDefault(const IntTerm *Leaf,
                                std::int64_t Default = 0) const {
    auto It = IntLeaves.find(Leaf);
    return It == IntLeaves.end() ? Default : It->second;
  }

  double floatLeafOrDefault(const FloatTerm *Leaf,
                            double Default = 0.0) const {
    auto It = FloatLeaves.find(Leaf);
    return It == FloatLeaves.end() ? Default : It->second;
  }
};

} // namespace igdt

#endif // IGDT_SOLVER_MODEL_H
