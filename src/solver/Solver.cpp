//===- solver/Solver.cpp - Constraint solver over VM semantics ---------------===//

#include "solver/Solver.h"

#include "observe/MetricsRegistry.h"
#include "observe/TraceBus.h"
#include "solver/TermEval.h"
#include "support/Compiler.h"
#include "support/IntMath.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace igdt;

const char *igdt::solveStatusName(SolveStatus Status) {
  switch (Status) {
  case SolveStatus::Sat:
    return "sat";
  case SolveStatus::Unsat:
    return "unsat";
  case SolveStatus::Unknown:
    return "unknown";
  }
  igdt_unreachable("unknown solve status");
}

namespace {

// Literal/Case live in the header now (SolverLiteral/SolverCase) so the
// assertion stack can cache expansions across queries; the local names
// are kept for the search code below.
using Literal = SolverLiteral;
using Case = SolverCase;

/// Expands a boolean term into disjunctive cases of literals.
class CaseExpander {
public:
  explicit CaseExpander(unsigned MaxCases) : MaxCases(MaxCases) {}

  /// Returns the cases of \p Conjuncts or nullopt when the cap bursts.
  std::optional<std::vector<Case>>
  expand(const std::vector<const BoolTerm *> &Conjuncts) {
    std::vector<Case> Cases = {{}};
    for (const BoolTerm *C : Conjuncts) {
      std::vector<Case> Sub = casesOf(C, /*Positive=*/true);
      std::vector<Case> Next;
      for (const Case &Left : Cases)
        for (const Case &Right : Sub) {
          Case Merged = Left;
          Merged.insert(Merged.end(), Right.begin(), Right.end());
          Next.push_back(std::move(Merged));
          if (Next.size() > MaxCases)
            return std::nullopt;
        }
      Cases = std::move(Next);
      if (Cases.empty())
        return Cases; // definitely unsatisfiable (false conjunct)
    }
    return Cases;
  }

  /// NNF cases of one conjunct, as used per expand() iteration. Public
  /// for the assertion stack's per-conjunct memo.
  std::vector<Case> conjunctCases(const BoolTerm *T) {
    return casesOf(T, /*Positive=*/true);
  }

private:
  std::vector<Case> casesOf(const BoolTerm *T, bool Positive) {
    switch (T->TermKind) {
    case BoolTerm::Kind::Const:
      if (T->ConstValue == Positive)
        return {{}}; // trivially true: one empty case
      return {};     // trivially false: no cases
    case BoolTerm::Kind::Not:
      return casesOf(T->BLhs, !Positive);
    case BoolTerm::Kind::And:
    case BoolTerm::Kind::Or: {
      bool IsConjunction =
          (T->TermKind == BoolTerm::Kind::And) == Positive;
      std::vector<Case> L = casesOf(T->BLhs, Positive);
      std::vector<Case> R = casesOf(T->BRhs, Positive);
      if (IsConjunction) {
        std::vector<Case> Out;
        for (const Case &A : L)
          for (const Case &B : R) {
            Case Merged = A;
            Merged.insert(Merged.end(), B.begin(), B.end());
            Out.push_back(std::move(Merged));
          }
        return Out;
      }
      // Disjunction: union of cases.
      L.insert(L.end(), R.begin(), R.end());
      return L;
    }
    default:
      return {{Literal{T, Positive}}};
    }
  }

  unsigned MaxCases;
};

/// Closed integer interval with emptiness.
struct Interval {
  std::int64_t Lo = SatMin;
  std::int64_t Hi = SatMax;
  bool empty() const { return Lo > Hi; }
  static Interval point(std::int64_t V) { return {V, V}; }
  Interval meet(Interval Other) const {
    return {std::max(Lo, Other.Lo), std::min(Hi, Other.Hi)};
  }
};

/// Canonical identity of a numeric leaf (after union-find).
struct LeafKey {
  int Kind; // IntTerm::Kind or 1000 + FloatTerm::Kind
  const ObjTerm *Rep;
  std::int64_t Aux;
  int Extra;
  bool operator<(const LeafKey &O) const {
    return std::tie(Kind, Rep, Aux, Extra) <
           std::tie(O.Kind, O.Rep, O.Aux, O.Extra);
  }
};

/// Per-variable class constraints accumulated from type literals.
struct ClassConstraint {
  std::optional<std::uint32_t> Forced;
  std::set<std::uint32_t> Excluded;
  std::vector<std::uint8_t> PositiveMasks;
  std::vector<std::uint8_t> NegativeMasks;
};

/// Solves one conjunctive case.
class CaseSolver {
public:
  CaseSolver(const ClassTable &Classes, const SolverOptions &Opts,
             SolverStats &Stats, RNG &Rand)
      : Classes(Classes), Opts(Opts), Stats(Stats), Rand(Rand) {}

  enum class CaseStatus { Sat, ProvenUnsat, Unknown };

  CaseStatus solve(const Case &Lits, Model &Out);

  bool budgetStopped() const { return BudgetStopped; }

private:
  // --- union-find ---
  const ObjTerm *findRep(const ObjTerm *V) {
    auto It = Parent.find(V);
    if (It == Parent.end() || It->second == V)
      return V;
    const ObjTerm *Rep = findRep(It->second);
    Parent[V] = Rep;
    return Rep;
  }
  void unite(const ObjTerm *A, const ObjTerm *B) {
    const ObjTerm *RA = findRep(A);
    const ObjTerm *RB = findRep(B);
    if (RA != RB)
      Parent[RA] = RB;
  }

  // --- collection ---
  void collectBool(const BoolTerm *T);
  void collectInt(const IntTerm *T);
  void collectFloat(const FloatTerm *T);
  void collectObj(const ObjTerm *T);
  void registerIntLeaf(const IntTerm *T);
  void registerFloatLeaf(const FloatTerm *T);

  LeafKey intLeafKey(const IntTerm *T) {
    const ObjTerm *Rep = T->Obj ? findRep(T->Obj) : nullptr;
    return LeafKey{int(T->TermKind), Rep, T->Aux,
                   int(T->Width) * 2 + (T->SignExtend ? 1 : 0)};
  }
  LeafKey floatLeafKey(const FloatTerm *T) {
    const ObjTerm *Rep = T->Obj ? findRep(T->Obj) : nullptr;
    return LeafKey{1000 + int(T->TermKind), Rep, T->Aux, 0};
  }

  // --- class handling ---
  std::vector<std::uint32_t> candidateClasses(const ObjTerm *Rep);
  Interval classSlotInterval(std::uint32_t ClassIdx) const;

  // --- numeric phase ---
  CaseStatus numericSolve(Model &Out);
  Interval evalInterval(const IntTerm *T,
                        std::map<LeafKey, Interval> &LeafIv,
                        std::map<const IntTerm *, Interval> &Memo);
  void backProp(const IntTerm *T, Interval Target,
                std::map<LeafKey, Interval> &LeafIv,
                std::map<const IntTerm *, Interval> &Memo, bool &Emptied);
  bool propagate(std::map<LeafKey, Interval> &LeafIv, bool &Emptied);

  void leafDepsOfInt(const IntTerm *T, std::set<LeafKey> &IntDeps,
                     std::set<LeafKey> &FloatDeps);
  void leafDepsOfFloat(const FloatTerm *T, std::set<LeafKey> &IntDeps,
                       std::set<LeafKey> &FloatDeps);

  void assignIntLeaf(const LeafKey &Key, std::int64_t Value, Model &M);
  void assignFloatLeaf(const LeafKey &Key, double Value, Model &M);

  bool checkLiteral(const Literal &Lit, const Model &M);
  bool searchInt(std::size_t Index, Model &M,
                 const std::vector<std::pair<LeafKey, Interval>> &Order);
  bool searchFloat(std::size_t Index, Model &M,
                   const std::vector<LeafKey> &Order);
  bool finalCheck(const Model &M);

  const ClassTable &Classes;
  const SolverOptions &Opts;
  SolverStats &Stats;
  RNG &Rand;

  Case Literals;
  std::map<const ObjTerm *, const ObjTerm *> Parent;
  std::set<const ObjTerm *> Vars; // original vars
  std::map<const ObjTerm *, ClassConstraint> Constraints; // by rep
  std::map<LeafKey, std::vector<const IntTerm *>> IntLeaves;
  std::map<LeafKey, std::vector<const FloatTerm *>> FloatLeaves;
  std::vector<std::pair<const ObjTerm *, const ObjTerm *>> DistinctPairs;

  // numeric phase state
  std::map<const ObjTerm *, std::uint32_t> ClassAssignment; // by rep
  std::map<LeafKey, Interval> FinalLeafIv;
  std::set<LeafKey> AssignedInt;
  std::set<LeafKey> AssignedFloat;
  std::vector<std::pair<Literal, std::pair<std::set<LeafKey>,
                                           std::set<LeafKey>>>>
      LiteralDeps;
  std::vector<LeafKey> FloatOrder;
  unsigned Nodes = 0;
  bool PrecisionClamped = false;
  bool SawClampedEmpty = false;
  bool BudgetStopped = false;
};

void CaseSolver::collectObj(const ObjTerm *T) {
  if (!T)
    return;
  switch (T->TermKind) {
  case ObjTerm::Kind::Var:
    Vars.insert(T);
    collectObj(T->Parent);
    return;
  case ObjTerm::Kind::IntObj:
    collectInt(T->IntPayload);
    return;
  case ObjTerm::Kind::FloatObj:
    collectFloat(T->FloatPayload);
    return;
  case ObjTerm::Kind::NewObj:
    if (T->AllocSize)
      collectInt(T->AllocSize);
    return;
  case ObjTerm::Kind::Const:
    return;
  }
}

void CaseSolver::registerIntLeaf(const IntTerm *T) {
  IntLeaves[intLeafKey(T)].push_back(T);
}

void CaseSolver::registerFloatLeaf(const FloatTerm *T) {
  FloatLeaves[floatLeafKey(T)].push_back(T);
}

void CaseSolver::collectInt(const IntTerm *T) {
  if (!T)
    return;
  if (T->isLeaf()) {
    collectObj(T->Obj);
    registerIntLeaf(T);
    return;
  }
  collectInt(T->Lhs);
  collectInt(T->Rhs);
  collectFloat(T->FloatOperand);
}

void CaseSolver::collectFloat(const FloatTerm *T) {
  if (!T)
    return;
  if (T->isLeaf()) {
    collectObj(T->Obj);
    registerFloatLeaf(T);
    return;
  }
  collectFloat(T->Lhs);
  collectFloat(T->Rhs);
  collectInt(T->IntOperand);
}

void CaseSolver::collectBool(const BoolTerm *T) {
  collectObj(T->Obj);
  collectObj(T->ObjRhs);
  collectInt(T->ILhs);
  collectInt(T->IRhs);
  collectFloat(T->FLhs);
  collectFloat(T->FRhs);
}

std::vector<std::uint32_t> CaseSolver::candidateClasses(const ObjTerm *Rep) {
  static const std::uint32_t DefaultOrder[] = {
      SmallIntegerClass, PlainObjectClass,     ArrayClass,
      BoxedFloatClass,   ByteArrayClass,       UndefinedObjectClass,
      TrueClass,         FalseClass,           PointClass,
      ByteStringClass,   AssociationClass,     ExternalAddressClass};

  const ClassConstraint &C = Constraints[Rep];
  std::vector<std::uint32_t> Out;
  auto Admissible = [&](std::uint32_t K) {
    if (C.Excluded.count(K))
      return false;
    bool IsImmediate = K == SmallIntegerClass;
    for (std::uint8_t Mask : C.PositiveMasks) {
      if (IsImmediate)
        return false; // immediates never satisfy a format requirement
      if (!(formatBit(Classes.classAt(K).Format) & Mask))
        return false;
    }
    for (std::uint8_t Mask : C.NegativeMasks) {
      if (IsImmediate)
        continue; // "has not format X" holds for immediates
      if (formatBit(Classes.classAt(K).Format) & Mask)
        return false;
    }
    return true;
  };
  if (C.Forced) {
    if (Classes.isValidIndex(*C.Forced) && Admissible(*C.Forced))
      Out.push_back(*C.Forced);
    return Out;
  }
  for (std::uint32_t K : DefaultOrder)
    if (Admissible(K))
      Out.push_back(K);
  return Out;
}

Interval CaseSolver::classSlotInterval(std::uint32_t ClassIdx) const {
  switch (ClassIdx) {
  case SmallIntegerClass:
    return Interval::point(0);
  case BoxedFloatClass:
    return Interval::point(1);
  case UndefinedObjectClass:
  case TrueClass:
  case FalseClass:
    return Interval::point(0);
  default: {
    const ClassInfo &Info = Classes.classAt(ClassIdx);
    if (Info.Format == ObjectFormat::Pointers) {
      if (ClassIdx == PlainObjectClass)
        return {0, Opts.MaxSlotCount}; // synthesised per slot count
      return Interval::point(Info.FixedSlots);
    }
    return {0, Opts.MaxSlotCount};
  }
  }
}

Interval CaseSolver::evalInterval(const IntTerm *T,
                                  std::map<LeafKey, Interval> &LeafIv,
                                  std::map<const IntTerm *, Interval> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  Interval R;
  switch (T->TermKind) {
  case IntTerm::Kind::Const:
    R = Interval::point(T->ConstValue);
    break;
  case IntTerm::Kind::ValueOf:
  case IntTerm::Kind::UncheckedValueOf:
  case IntTerm::Kind::SlotCount:
  case IntTerm::Kind::StackSize:
  case IntTerm::Kind::ByteAt:
  case IntTerm::Kind::LoadLE:
  case IntTerm::Kind::ClassIndexOf:
  case IntTerm::Kind::IdentityHash: {
    auto LIt = LeafIv.find(intLeafKey(T));
    R = LIt == LeafIv.end() ? Interval{} : LIt->second;
    break;
  }
  case IntTerm::Kind::Add: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    R = {addSat(A.Lo, B.Lo), addSat(A.Hi, B.Hi)};
    break;
  }
  case IntTerm::Kind::Sub: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    R = {subSat(A.Lo, B.Hi), subSat(A.Hi, B.Lo)};
    break;
  }
  case IntTerm::Kind::Neg: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    R = {negSat(A.Hi), negSat(A.Lo)};
    break;
  }
  case IntTerm::Kind::Mul: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    std::int64_t Corners[4] = {mulSat(A.Lo, B.Lo), mulSat(A.Lo, B.Hi),
                               mulSat(A.Hi, B.Lo), mulSat(A.Hi, B.Hi)};
    R = {*std::min_element(Corners, Corners + 4),
         *std::max_element(Corners, Corners + 4)};
    break;
  }
  case IntTerm::Kind::ModFloor: {
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    if (B.Lo == B.Hi && B.Lo > 0)
      R = {0, B.Lo - 1};
    else
      R = {};
    break;
  }
  case IntTerm::Kind::Asr: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    if (A.Lo >= 0)
      R = {0, A.Hi};
    else
      R = {};
    break;
  }
  case IntTerm::Kind::HighBit:
    R = {0, 63};
    break;
  case IntTerm::Kind::BitAnd: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    if (A.Lo >= 0 && B.Lo >= 0)
      R = {0, std::min(A.Hi, B.Hi)};
    else
      R = {};
    break;
  }
  default:
    R = {};
    break;
  }
  Memo.emplace(T, R);
  return R;
}

void CaseSolver::backProp(const IntTerm *T, Interval Target,
                          std::map<LeafKey, Interval> &LeafIv,
                          std::map<const IntTerm *, Interval> &Memo,
                          bool &Emptied) {
  switch (T->TermKind) {
  case IntTerm::Kind::Const:
    if (T->ConstValue < Target.Lo || T->ConstValue > Target.Hi)
      Emptied = true;
    return;
  case IntTerm::Kind::ValueOf:
  case IntTerm::Kind::UncheckedValueOf:
  case IntTerm::Kind::SlotCount:
  case IntTerm::Kind::StackSize:
  case IntTerm::Kind::ByteAt:
  case IntTerm::Kind::LoadLE:
  case IntTerm::Kind::ClassIndexOf:
  case IntTerm::Kind::IdentityHash: {
    LeafKey Key = intLeafKey(T);
    auto It = LeafIv.find(Key);
    if (It == LeafIv.end())
      return;
    It->second = It->second.meet(Target);
    if (It->second.empty())
      Emptied = true;
    return;
  }
  case IntTerm::Kind::Add: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    backProp(T->Lhs, {subSat(Target.Lo, B.Hi), subSat(Target.Hi, B.Lo)},
             LeafIv, Memo, Emptied);
    backProp(T->Rhs, {subSat(Target.Lo, A.Hi), subSat(Target.Hi, A.Lo)},
             LeafIv, Memo, Emptied);
    return;
  }
  case IntTerm::Kind::Sub: {
    Interval A = evalInterval(T->Lhs, LeafIv, Memo);
    Interval B = evalInterval(T->Rhs, LeafIv, Memo);
    backProp(T->Lhs, {addSat(Target.Lo, B.Lo), addSat(Target.Hi, B.Hi)},
             LeafIv, Memo, Emptied);
    backProp(T->Rhs, {subSat(A.Lo, Target.Hi), subSat(A.Hi, Target.Lo)},
             LeafIv, Memo, Emptied);
    return;
  }
  case IntTerm::Kind::Neg:
    backProp(T->Lhs, {negSat(Target.Hi), negSat(Target.Lo)}, LeafIv, Memo,
             Emptied);
    return;
  case IntTerm::Kind::Mul: {
    // Narrow only through a constant factor.
    const IntTerm *ConstSide = nullptr;
    const IntTerm *VarSide = nullptr;
    if (T->Lhs->TermKind == IntTerm::Kind::Const) {
      ConstSide = T->Lhs;
      VarSide = T->Rhs;
    } else if (T->Rhs->TermKind == IntTerm::Kind::Const) {
      ConstSide = T->Rhs;
      VarSide = T->Lhs;
    }
    if (!ConstSide || ConstSide->ConstValue == 0)
      return;
    std::int64_t C = ConstSide->ConstValue;
    std::int64_t Lo = floorDiv(Target.Lo + (C > 0 ? C - 1 : 0), C);
    std::int64_t Hi = floorDiv(Target.Hi, C);
    if (C < 0)
      std::swap(Lo, Hi);
    backProp(VarSide, {Lo, Hi}, LeafIv, Memo, Emptied);
    return;
  }
  default:
    return;
  }
}

bool CaseSolver::propagate(std::map<LeafKey, Interval> &LeafIv,
                           bool &Emptied) {
  for (int Pass = 0; Pass < 3 && !Emptied; ++Pass) {
    std::map<const IntTerm *, Interval> Memo;
    for (const auto &[Lit, Deps] : LiteralDeps) {
      if (!Deps.second.empty())
        continue; // float-dependent literals skip interval propagation
      const BoolTerm *A = Lit.Atom;
      if (A->TermKind != BoolTerm::Kind::ICmp)
        continue;
      const IntTerm *L = A->ILhs;
      const IntTerm *R = A->IRhs;
      CmpPred Pred = A->Pred;
      bool Positive = Lit.Positive;
      // Canonicalise negated comparisons: !(a<b) == b<=a, !(a<=b) == b<a.
      if (!Positive && Pred == CmpPred::Lt) {
        std::swap(L, R);
        Pred = CmpPred::Le;
        Positive = true;
      } else if (!Positive && Pred == CmpPred::Le) {
        std::swap(L, R);
        Pred = CmpPred::Lt;
        Positive = true;
      }
      if (!Positive)
        continue; // disequality: no narrowing
      Interval IvL = evalInterval(L, LeafIv, Memo);
      Interval IvR = evalInterval(R, LeafIv, Memo);
      switch (Pred) {
      case CmpPred::Lt:
        backProp(L, {SatMin, subSat(IvR.Hi, 1)}, LeafIv, Memo, Emptied);
        backProp(R, {addSat(IvL.Lo, 1), SatMax}, LeafIv, Memo, Emptied);
        break;
      case CmpPred::Le:
        backProp(L, {SatMin, IvR.Hi}, LeafIv, Memo, Emptied);
        backProp(R, {IvL.Lo, SatMax}, LeafIv, Memo, Emptied);
        break;
      case CmpPred::Eq: {
        Interval Meet = IvL.meet(IvR);
        backProp(L, Meet, LeafIv, Memo, Emptied);
        backProp(R, Meet, LeafIv, Memo, Emptied);
        break;
      }
      }
      Memo.clear(); // leaf intervals changed
      if (Emptied)
        return false;
    }
  }
  return !Emptied;
}

void CaseSolver::leafDepsOfInt(const IntTerm *T, std::set<LeafKey> &IntDeps,
                               std::set<LeafKey> &FloatDeps) {
  if (!T)
    return;
  if (T->isLeaf()) {
    // ClassIndexOf is fixed by the class assignment, not searched.
    if (T->TermKind != IntTerm::Kind::ClassIndexOf)
      IntDeps.insert(intLeafKey(T));
    return;
  }
  leafDepsOfInt(T->Lhs, IntDeps, FloatDeps);
  leafDepsOfInt(T->Rhs, IntDeps, FloatDeps);
  if (T->FloatOperand)
    leafDepsOfFloat(T->FloatOperand, IntDeps, FloatDeps);
}

void CaseSolver::leafDepsOfFloat(const FloatTerm *T,
                                 std::set<LeafKey> &IntDeps,
                                 std::set<LeafKey> &FloatDeps) {
  if (!T)
    return;
  if (T->isLeaf()) {
    FloatDeps.insert(floatLeafKey(T));
    return;
  }
  leafDepsOfFloat(T->Lhs, IntDeps, FloatDeps);
  leafDepsOfFloat(T->Rhs, IntDeps, FloatDeps);
  if (T->IntOperand)
    leafDepsOfInt(T->IntOperand, IntDeps, FloatDeps);
}

void CaseSolver::assignIntLeaf(const LeafKey &Key, std::int64_t Value,
                               Model &M) {
  AssignedInt.insert(Key);
  const auto &Terms = IntLeaves[Key];
  switch (IntTerm::Kind(Key.Kind)) {
  case IntTerm::Kind::ValueOf:
    M.Objects[Key.Rep].IntValue = Value;
    break;
  case IntTerm::Kind::SlotCount:
    M.Objects[Key.Rep].SlotCount = Value;
    break;
  default:
    for (const IntTerm *T : Terms)
      M.IntLeaves[T] = Value;
    break;
  }
}

void CaseSolver::assignFloatLeaf(const LeafKey &Key, double Value, Model &M) {
  AssignedFloat.insert(Key);
  const auto &Terms = FloatLeaves[Key];
  const FloatTerm *T0 = Terms.front();
  if (T0->TermKind == FloatTerm::Kind::ValueOf) {
    M.Objects[Key.Rep].FloatValue = Value;
    return;
  }
  for (const FloatTerm *T : Terms)
    M.FloatLeaves[T] = Value;
}

bool CaseSolver::checkLiteral(const Literal &Lit, const Model &M) {
  TermEvaluator Eval(M, Classes);
  auto V = Eval.evalBool(Lit.Atom);
  if (!V)
    return false;
  return *V == Lit.Positive;
}

bool CaseSolver::searchInt(
    std::size_t Index, Model &M,
    const std::vector<std::pair<LeafKey, Interval>> &Order) {
  if (Nodes++ > Opts.MaxSearchNodes)
    return false;
  if (Opts.SharedBudget && !Opts.SharedBudget->charge()) {
    BudgetStopped = true;
    return false;
  }
  if (Index == Order.size()) {
    // All integer leaves fixed: check int-only literals then floats.
    for (const auto &[Lit, Deps] : LiteralDeps) {
      if (!Deps.second.empty())
        continue;
      if (!checkLiteral(Lit, M))
        return false;
    }
    return searchFloat(0, M, FloatOrder);
  }

  const auto &[Key, Iv] = Order[Index];
  std::vector<std::int64_t> Candidates;
  auto Push = [&](std::int64_t V) {
    if (V < Iv.Lo || V > Iv.Hi)
      return;
    if (std::find(Candidates.begin(), Candidates.end(), V) ==
        Candidates.end())
      Candidates.push_back(V);
  };
  Push(Iv.Lo);
  Push(Iv.Hi);
  Push(0);
  Push(1);
  Push(2);
  Push(-1);
  if (Iv.Lo != SatMin && Iv.Hi != SatMax)
    Push(Iv.Lo + (Iv.Hi - Iv.Lo) / 2);
  for (unsigned I = 0; I < Opts.RandomSamples; ++I)
    Push(Rand.nextInRange(std::max(Iv.Lo, -(std::int64_t(1) << 62)),
                          std::min(Iv.Hi, std::int64_t(1) << 62)));

  for (std::int64_t V : Candidates) {
    assignIntLeaf(Key, V, M);
    // Check literals that became fully int-assigned (and have no floats).
    bool Ok = true;
    for (const auto &[Lit, Deps] : LiteralDeps) {
      if (!Deps.second.empty())
        continue;
      if (!Deps.first.count(Key))
        continue;
      bool AllAssigned = true;
      for (const LeafKey &D : Deps.first)
        if (!AssignedInt.count(D)) {
          AllAssigned = false;
          break;
        }
      if (AllAssigned && !checkLiteral(Lit, M)) {
        Ok = false;
        break;
      }
    }
    if (Ok && searchInt(Index + 1, M, Order))
      return true;
    AssignedInt.erase(Key);
  }
  return false;
}

bool CaseSolver::searchFloat(std::size_t Index, Model &M,
                             const std::vector<LeafKey> &Order) {
  if (Index == Order.size())
    return finalCheck(M);
  if (Nodes++ > Opts.MaxSearchNodes)
    return false;
  if (Opts.SharedBudget && !Opts.SharedBudget->charge()) {
    BudgetStopped = true;
    return false;
  }

  // Candidate pool: structural constants from float comparisons plus
  // generic values and random samples.
  std::vector<double> Candidates = {0.0, 1.0, -1.0, 0.5,  -0.5, 2.0,
                                    -2.0, 4.0, 100.25, -100.25};
  for (const auto &[Lit, Deps] : LiteralDeps) {
    const BoolTerm *A = Lit.Atom;
    if (A->TermKind != BoolTerm::Kind::FCmp)
      continue;
    for (const FloatTerm *Side : {A->FLhs, A->FRhs}) {
      if (Side && Side->TermKind == FloatTerm::Kind::Const) {
        double C = Side->ConstValue;
        Candidates.push_back(C);
        Candidates.push_back(C + 1);
        Candidates.push_back(C - 1);
        Candidates.push_back(C + 0.5);
        Candidates.push_back(C - 0.5);
        Candidates.push_back(C * 2);
      }
    }
  }
  Candidates.push_back(1e19);
  Candidates.push_back(-1e19);
  Candidates.push_back(1e300);
  Candidates.push_back(-1e300);
  for (unsigned I = 0; I < Opts.RandomSamples; ++I)
    Candidates.push_back(Rand.nextDouble(-1000.0, 1000.0));

  const LeafKey &Key = Order[Index];
  for (double V : Candidates) {
    assignFloatLeaf(Key, V, M);
    bool Ok = true;
    for (const auto &[Lit, Deps] : LiteralDeps) {
      if (Deps.second.empty())
        continue;
      bool AllAssigned = true;
      for (const LeafKey &D : Deps.second)
        if (!AssignedFloat.count(D)) {
          AllAssigned = false;
          break;
        }
      for (const LeafKey &D : Deps.first)
        if (!AssignedInt.count(D)) {
          AllAssigned = false;
          break;
        }
      if (AllAssigned && !checkLiteral(Lit, M)) {
        Ok = false;
        break;
      }
    }
    if (Ok && searchFloat(Index + 1, M, Order))
      return true;
    AssignedFloat.erase(Key);
  }
  return false;
}

bool CaseSolver::finalCheck(const Model &M) {
  for (const auto &[Lit, Deps] : LiteralDeps)
    if (!checkLiteral(Lit, M))
      return false;
  return true;
}

CaseSolver::CaseStatus CaseSolver::solve(const Case &Lits, Model &Out) {
  Literals = Lits;
  PrecisionClamped = Opts.IntegerBits < SmallIntBits;

  // Phase 0: union-find over positive identity literals, then collect.
  for (const Literal &L : Literals)
    if (L.Atom->TermKind == BoolTerm::Kind::ObjEq && L.Positive &&
        L.Atom->Obj->isVar() && L.Atom->ObjRhs->isVar())
      unite(L.Atom->Obj, L.Atom->ObjRhs);

  for (const Literal &L : Literals)
    collectBool(L.Atom);

  // Phase 1: class constraints.
  for (const Literal &L : Literals) {
    const BoolTerm *A = L.Atom;
    if (A->TermKind == BoolTerm::Kind::IsClass && A->Obj->isVar()) {
      ClassConstraint &C = Constraints[findRep(A->Obj)];
      if (L.Positive) {
        if (C.Forced && *C.Forced != A->ClassIndex)
          return CaseStatus::ProvenUnsat;
        C.Forced = A->ClassIndex;
      } else {
        C.Excluded.insert(A->ClassIndex);
      }
    } else if (A->TermKind == BoolTerm::Kind::HasFormat && A->Obj->isVar()) {
      ClassConstraint &C = Constraints[findRep(A->Obj)];
      if (L.Positive)
        C.PositiveMasks.push_back(A->FormatMask);
      else
        C.NegativeMasks.push_back(A->FormatMask);
    } else if (A->TermKind == BoolTerm::Kind::ObjEq && !L.Positive &&
               A->Obj->isVar() && A->ObjRhs->isVar()) {
      DistinctPairs.emplace_back(A->Obj, A->ObjRhs);
      // Ensure the payloads of both sides are searchable so the solver
      // can make two immediates distinct (synthetic ValueOf leaves).
      IntLeaves[LeafKey{int(IntTerm::Kind::ValueOf), findRep(A->Obj), 0, 0}];
      IntLeaves[LeafKey{int(IntTerm::Kind::ValueOf), findRep(A->ObjRhs), 0,
                        0}];
    }
  }

  // Representatives of every variable seen.
  std::vector<const ObjTerm *> Reps;
  for (const ObjTerm *V : Vars) {
    const ObjTerm *R = findRep(V);
    if (std::find(Reps.begin(), Reps.end(), R) == Reps.end())
      Reps.push_back(R);
  }

  // Literal dependency sets.
  for (const Literal &L : Literals) {
    std::set<LeafKey> IntDeps;
    std::set<LeafKey> FloatDeps;
    const BoolTerm *A = L.Atom;
    leafDepsOfInt(A->ILhs, IntDeps, FloatDeps);
    leafDepsOfInt(A->IRhs, IntDeps, FloatDeps);
    leafDepsOfFloat(A->FLhs, IntDeps, FloatDeps);
    leafDepsOfFloat(A->FRhs, IntDeps, FloatDeps);
    if (A->TermKind == BoolTerm::Kind::ObjEq) {
      // Identity of two small integers depends on their payloads; model
      // this conservatively by depending on both ValueOf leaves if known.
      for (const ObjTerm *Side : {A->Obj, A->ObjRhs})
        if (Side->isVar())
          for (const auto &[Key, Terms] : IntLeaves)
            if (Key.Rep == findRep(Side) &&
                Key.Kind == int(IntTerm::Kind::ValueOf))
              IntDeps.insert(Key);
    }
    LiteralDeps.emplace_back(L, std::make_pair(IntDeps, FloatDeps));
  }

  // Phase 2: iterate class assignments.
  std::vector<std::vector<std::uint32_t>> Candidates;
  for (const ObjTerm *R : Reps) {
    Candidates.push_back(candidateClasses(R));
    if (Candidates.back().empty())
      return CaseStatus::ProvenUnsat;
  }

  unsigned Combos = 0;
  bool AnyUnknown = false;
  // DFS over class choices.
  std::vector<std::size_t> Choice(Reps.size(), 0);
  while (true) {
    if (Combos++ > Opts.MaxClassCombos) {
      Stats.CapHits++;
      AnyUnknown = true;
      break;
    }
    if (Opts.SharedBudget && Opts.SharedBudget->expired()) {
      BudgetStopped = true;
      AnyUnknown = true;
      break;
    }
    Stats.CasesExplored++;
    ClassAssignment.clear();
    Model M;
    for (std::size_t I = 0; I < Reps.size(); ++I) {
      ClassAssignment[Reps[I]] = Candidates[I][Choice[I]];
      M.Objects[Reps[I]].ClassIndex = Candidates[I][Choice[I]];
    }
    for (const ObjTerm *V : Vars)
      M.Reps[V] = findRep(V);

    CaseStatus S = numericSolve(M);
    if (S == CaseStatus::Sat) {
      Out = std::move(M);
      return CaseStatus::Sat;
    }
    if (S == CaseStatus::Unknown)
      AnyUnknown = true;

    // Advance mixed-radix counter; an empty Reps list runs exactly once.
    std::size_t I = 0;
    for (; I < Reps.size(); ++I) {
      if (++Choice[I] < Candidates[I].size())
        break;
      Choice[I] = 0;
    }
    if (I == Reps.size())
      break;
  }
  return AnyUnknown ? CaseStatus::Unknown : CaseStatus::ProvenUnsat;
}

CaseSolver::CaseStatus CaseSolver::numericSolve(Model &M) {
  AssignedInt.clear();
  AssignedFloat.clear();

  // Initial leaf intervals.
  std::map<LeafKey, Interval> LeafIv;
  std::int64_t Clamp =
      Opts.IntegerBits >= 63
          ? SatMax
          : (std::int64_t(1) << (Opts.IntegerBits - 1)) - 1;
  for (const auto &[Key, Terms] : IntLeaves) {
    Interval Iv;
    switch (IntTerm::Kind(Key.Kind)) {
    case IntTerm::Kind::ValueOf:
      Iv = {std::max(MinSmallInt, -Clamp - 1), std::min(MaxSmallInt, Clamp)};
      break;
    case IntTerm::Kind::SlotCount: {
      auto It = ClassAssignment.find(Key.Rep);
      Iv = It != ClassAssignment.end() ? classSlotInterval(It->second)
                                       : Interval{0, Opts.MaxSlotCount};
      break;
    }
    case IntTerm::Kind::StackSize:
      Iv = {0, Opts.MaxStackSize};
      break;
    case IntTerm::Kind::ByteAt:
      Iv = {0, 255};
      break;
    case IntTerm::Kind::LoadLE: {
      int Width = Key.Extra / 2;
      bool SignExtend = Key.Extra % 2 != 0;
      if (Width >= 8)
        Iv = {SatMin, SatMax};
      else if (SignExtend)
        Iv = {-(std::int64_t(1) << (8 * Width - 1)),
              (std::int64_t(1) << (8 * Width - 1)) - 1};
      else
        Iv = {0, (std::int64_t(1) << (8 * Width)) - 1};
      break;
    }
    case IntTerm::Kind::ClassIndexOf: {
      auto It = ClassAssignment.find(Key.Rep);
      Iv = It != ClassAssignment.end()
               ? Interval::point(It->second)
               : Interval{1, std::int64_t(Classes.size()) - 1};
      break;
    }
    default: // opaque leaves
      Iv = {-(std::int64_t(1) << 61), std::int64_t(1) << 61};
      break;
    }
    LeafIv[Key] = Iv;
  }

  bool Emptied = false;
  propagate(LeafIv, Emptied);
  if (Emptied)
    return PrecisionClamped ? CaseStatus::Unknown : CaseStatus::ProvenUnsat;

  // Fix ClassIndexOf leaves immediately (they are not searched).
  for (const auto &[Key, Terms] : IntLeaves)
    if (Key.Kind == int(IntTerm::Kind::ClassIndexOf)) {
      auto It = ClassAssignment.find(Key.Rep);
      if (It != ClassAssignment.end())
        assignIntLeaf(Key, It->second, M);
    }

  // Search order: narrow intervals first.
  std::vector<std::pair<LeafKey, Interval>> Order;
  for (const auto &[Key, Iv] : LeafIv)
    if (Key.Kind != int(IntTerm::Kind::ClassIndexOf))
      Order.emplace_back(Key, Iv);
  std::sort(Order.begin(), Order.end(), [](const auto &A, const auto &B) {
    __int128 WA = (__int128)A.second.Hi - A.second.Lo;
    __int128 WB = (__int128)B.second.Hi - B.second.Lo;
    return WA < WB;
  });
  FinalLeafIv = LeafIv;

  FloatOrder.clear();
  for (const auto &[Key, Terms] : FloatLeaves)
    FloatOrder.push_back(Key);

  unsigned StartNodes = Nodes;
  bool SatFound = searchInt(0, M, Order);
  // A node-cap trip prunes subtrees, so even a Sat answer may differ
  // from the un-capped search's Sat — count the trip on every outcome
  // (the scheduler's cheap-tier acceptance requires that no cap was
  // felt anywhere, not merely that the final status stayed definite).
  if (Nodes > Opts.MaxSearchNodes)
    Stats.CapHits++;
  if (SatFound)
    return CaseStatus::Sat;
  Stats.NodesExplored += Nodes - StartNodes;
  if (Nodes > Opts.MaxSearchNodes || BudgetStopped)
    return CaseStatus::Unknown;
  // Search exhausted its candidate pool without covering the whole space:
  // sampling incompleteness, not an unsat proof.
  bool HadSearchSpace = !Order.empty() || !FloatOrder.empty();
  return HadSearchSpace ? CaseStatus::Unknown : CaseStatus::ProvenUnsat;
}

} // namespace

void SolverStats::add(const SolverStats &Other) {
  Queries += Other.Queries;
  SatCount += Other.SatCount;
  UnsatCount += Other.UnsatCount;
  UnknownCount += Other.UnknownCount;
  CasesExplored += Other.CasesExplored;
  NodesExplored += Other.NodesExplored;
  BudgetStops += Other.BudgetStops;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  CacheUnsatSubsumed += Other.CacheUnsatSubsumed;
  ModelCacheHits += Other.ModelCacheHits;
  PrefixReuseSolves += Other.PrefixReuseSolves;
  FullSolves += Other.FullSolves;
  CapHits += Other.CapHits;
}

void igdt::foldSolverStats(MetricsRegistry &Registry,
                           const SolverStats &Stats) {
  Registry.add("solver.queries", Stats.Queries);
  Registry.add("solver.sat", Stats.SatCount);
  Registry.add("solver.unsat", Stats.UnsatCount);
  Registry.add("solver.unknown", Stats.UnknownCount);
  Registry.add("solver.cases", Stats.CasesExplored);
  Registry.add("solver.nodes", Stats.NodesExplored);
  Registry.add("solver.budget_stops", Stats.BudgetStops);
  Registry.add("solver.cache.hits", Stats.CacheHits);
  Registry.add("solver.cache.misses", Stats.CacheMisses);
  Registry.add("solver.cache.unsat_subsumed", Stats.CacheUnsatSubsumed);
  Registry.add("solver.cache.model_hits", Stats.ModelCacheHits);
  Registry.add("solver.prefix_reuse_solves", Stats.PrefixReuseSolves);
  Registry.add("solver.full_solves", Stats.FullSolves);
  Registry.add("solver.cap_hits", Stats.CapHits);
}

SolverOptions igdt::solverTierCaps(const SolverOptions &Base,
                                   unsigned Distance) {
  SolverOptions Tier = Base;
  for (unsigned I = 0; I < Distance; ++I) {
    // 4x per rung, floored so a tier never degenerates to an empty
    // search. Only give-up thresholds move: everything that shapes the
    // below-cap trajectory (RandomSamples, IntegerBits, stack/slot
    // bounds, Seed) is untouched, so CapHits == 0 at any tier proves
    // the run identical to full strength.
    Tier.MaxCases = std::max(4u, Tier.MaxCases / 4);
    Tier.MaxClassCombos = std::max(8u, Tier.MaxClassCombos / 4);
    Tier.MaxSearchNodes = std::max(256u, Tier.MaxSearchNodes / 4);
  }
  return Tier;
}

ConstraintSolver::ConstraintSolver(const ClassTable &Classes,
                                   SolverOptions Options)
    : Classes(Classes), Opts(Options) {}

SolveResult ConstraintSolver::solve(
    const std::vector<const BoolTerm *> &Conjuncts) {
  return solveEntry(Conjuncts, nullptr);
}

void ConstraintSolver::pushAssertion(const BoolTerm *Conjunct) {
  ExpandedCases Next;
  const ExpandedCases *Prev =
      PrefixLevels.empty() ? nullptr : &PrefixLevels.back();
  if (Prev && Prev->Burst) {
    // An overflowed prefix product stays overflowed: expand() returns
    // nullopt as soon as any intermediate product exceeds MaxCases,
    // regardless of later conjuncts.
    Next.Burst = true;
  } else if (Prev && Prev->Cases.empty()) {
    // A proven-unsat prefix stays empty (product with the empty set);
    // expand() likewise early-returns without visiting later conjuncts.
  } else {
    auto MIt = ConjunctCaseMemo.find(Conjunct);
    if (MIt == ConjunctCaseMemo.end()) {
      CaseExpander Expander(Opts.MaxCases);
      MIt = ConjunctCaseMemo.emplace(Conjunct,
                                     Expander.conjunctCases(Conjunct))
                .first;
    }
    const std::vector<Case> &Sub = MIt->second;
    static const std::vector<Case> Root = {Case{}};
    const std::vector<Case> &Base = Prev ? Prev->Cases : Root;
    bool Overflow = false;
    for (const Case &Left : Base) {
      for (const Case &Right : Sub) {
        Case Merged = Left;
        Merged.insert(Merged.end(), Right.begin(), Right.end());
        Next.Cases.push_back(std::move(Merged));
        if (Next.Cases.size() > Opts.MaxCases) {
          Overflow = true;
          break;
        }
      }
      if (Overflow)
        break;
    }
    if (Overflow) {
      Next.Burst = true;
      Next.Cases.clear();
    }
  }
  AssertionStack.push_back(Conjunct);
  PrefixLevels.push_back(std::move(Next));
}

void ConstraintSolver::popAssertion() {
  AssertionStack.pop_back();
  PrefixLevels.pop_back();
}

void ConstraintSolver::clearAssertions() {
  AssertionStack.clear();
  PrefixLevels.clear();
  // ConjunctCaseMemo survives: conjuncts are interned and immutable,
  // so their NNF expansion never changes within an exploration.
}

SolveResult ConstraintSolver::solveStack() {
  if (PrefixLevels.empty()) {
    ExpandedCases Root;
    Root.Cases = {Case{}};
    return solveEntry(AssertionStack, &Root);
  }
  return solveEntry(AssertionStack, &PrefixLevels.back());
}

SolveResult ConstraintSolver::solveEntry(
    const std::vector<const BoolTerm *> &Conjuncts, const ExpandedCases *Pre) {
  SolveResult Result;
  if (!Opts.Trace) {
    Result = solveImpl(Conjuncts, Pre);
  } else {
    // The nodes/cases deltas are cost-compensated on shared-index hits
    // (see below), so the emitted numbers match a cache-less run and
    // the event is safe for deterministic traces.
    std::uint64_t NodesBefore = Stats.NodesExplored;
    std::uint64_t CasesBefore = Stats.CasesExplored;
    Result = solveImpl(Conjuncts, Pre);
    TraceEvent E;
    E.Kind = TraceEventKind::SolverQuery;
    E.Detail = solveStatusName(Result.Status);
    E.Value = Stats.NodesExplored - NodesBefore;
    E.Extra = Stats.CasesExplored - CasesBefore;
    Opts.Trace->emit(std::move(E));
  }
  // Feed the model bank on *every* Sat result — fresh searches and
  // cache hits alike — so its content is a pure function of the result
  // sequence and thus identical across cache configurations.
  if (Opts.Bank && Result.Status == SolveStatus::Sat)
    Opts.Bank->record(Result.M);
  return Result;
}

SolveResult ConstraintSolver::solveImpl(
    const std::vector<const BoolTerm *> &Conjuncts, const ExpandedCases *Pre) {
  auto EmitCache = [this](const char *What) {
    if (!Opts.Trace)
      return;
    TraceEvent E;
    E.Kind = TraceEventKind::CacheLookup;
    E.Detail = What;
    Opts.Trace->emit(std::move(E));
  };
  Stats.Queries++;
  if (Opts.InjectSolverHang)
    throw HarnessFault("solve", "injected solver hang: query exceeded "
                                "every search cap without converging");
  if (Opts.SharedBudget && Opts.SharedBudget->expired()) {
    // The instruction's budget is already gone: answer Unknown without
    // burning more wall time. Deliberately before any cache lookup so
    // budget-expired campaigns behave identically with or without one.
    Stats.UnknownCount++;
    Stats.BudgetStops++;
    SolveResult Result;
    Result.Status = SolveStatus::Unknown;
    return Result;
  }

  // Content-derived signatures: all randomness below is seeded from
  // structural hashes of what is being solved, so the same query (or
  // the same expanded case) samples the same candidates whether it is
  // posed for the first time, replayed after a cache-enabled run, or
  // solved on a different worker.
  TermHasher::QuerySignature Sig = Hasher.signQuery(Conjuncts);

  // Tier 0: evaluate the query under recently found models. Consulted
  // *before* the exact-match cache, and its answers are never stored
  // there: a bank answer must depend only on bank content (which is fed
  // identically in every cache configuration), never on whether an
  // earlier run left an exact entry behind — otherwise cached and
  // uncached explorations could return different models for the same
  // query and diverge.
  if (Opts.Bank) {
    if (const Model *Banked = Opts.Bank->findSatisfying(Conjuncts, Classes)) {
      Stats.ModelCacheHits++;
      EmitCache("model-hit");
      if (!Opts.ModelCacheSkips) {
        // Layer disabled: still answer with the banked model (the
        // returned model shapes the whole deterministic exploration
        // frontier, so it must not change with the toggle) but run the
        // full expansion + search anyway, with throwaway statistics
        // and no cache, budget or trace interaction. This makes
        // enabled vs. disabled differ only in wall time.
        SolverOptions Stripped = Opts;
        Stripped.Cache = nullptr;
        Stripped.Shared = nullptr;
        Stripped.Bank = nullptr;
        Stripped.SharedBudget = nullptr;
        Stripped.Trace = nullptr;
        ConstraintSolver Shadow(Classes, Stripped);
        (void)Shadow.solve(Conjuncts);
      }
      SolveResult Result;
      Result.Status = SolveStatus::Sat;
      Result.M = *Banked;
      Stats.SatCount++;
      return Result;
    }
  }

  if (Opts.Cache) {
    // Whole-query memo: pays off when model imprecision re-executes an
    // already-seen path and re-poses its exact negation queries.
    if (const SolveResult *Hit = Opts.Cache->lookup(Sig.SortedConjuncts)) {
      Stats.CacheHits++;
      EmitCache("hit");
      if (Hit->Status == SolveStatus::Sat)
        Stats.SatCount++;
      else
        Stats.UnsatCount++;
      return *Hit;
    }
    if (Opts.Cache->subsumedUnsat(Sig.SortedConjuncts)) {
      // Superset of a proven-Unsat core: Unsat without any search.
      Stats.CacheUnsatSubsumed++;
      EmitCache("unsat-subsumed");
      Stats.UnsatCount++;
      SolveResult Result;
      Result.Status = SolveStatus::Unsat;
      return Result;
    }
  }

  // Case expansion: taken from the assertion stack's cumulative memo
  // when posed incrementally, recomputed from scratch otherwise. The
  // two are constructed to agree exactly — same case order, same
  // overflow and empty semantics — so either entry point produces the
  // same result for the same conjunct sequence.
  std::optional<std::vector<Case>> Expanded;
  const std::vector<Case> *CaseList = nullptr;
  bool Burst = false;
  if (Pre) {
    // This query is served by the assertion stack's cumulative
    // expansion: only the last-pushed conjunct was expanded against
    // the cached prefix product, so it is not a "full" solve.
    Stats.PrefixReuseSolves++;
    Burst = Pre->Burst;
    CaseList = &Pre->Cases;
  } else {
    Stats.FullSolves++;
    CaseExpander Expander(Opts.MaxCases);
    Expanded = Expander.expand(Conjuncts);
    Burst = !Expanded.has_value();
    if (Expanded)
      CaseList = &*Expanded;
  }
  SolveResult Result;
  if (Burst) {
    Stats.CapHits++;
    Result.Status = SolveStatus::Unknown;
    Stats.UnknownCount++;
    return Result;
  }
  if (CaseList->empty()) {
    Result.Status = SolveStatus::Unsat;
    Stats.UnsatCount++;
    if (Opts.Cache)
      Opts.Cache->store(Sig.SortedConjuncts, Result);
    return Result;
  }

  // Fingerprint of every cap that can influence whether a case is
  // *provably* Unsat (as opposed to Sat or Unknown): shared-index
  // entries only serve solvers whose proof would be identical.
  // RandomSamples and MaxSearchNodes are included out of caution even
  // though Unsat proofs never reach the seeded search.
  std::uint64_t CapsFp = hashCombine64(0xF1A6ull, std::uint64_t(Opts.IntegerBits));
  CapsFp = hashCombine64(CapsFp, Opts.MaxClassCombos);
  CapsFp = hashCombine64(CapsFp, Opts.MaxSearchNodes);
  CapsFp = hashCombine64(CapsFp, Opts.RandomSamples);
  CapsFp = hashCombine64(CapsFp, std::uint64_t(Opts.MaxStackSize));
  CapsFp = hashCombine64(CapsFp, std::uint64_t(Opts.MaxSlotCount));

  bool AnyUnknown = false;
  bool AnyBudgetStop = false;
  for (const Case &C : *CaseList) {
    // Per-case signature, in the literal domain (atom hash mixed with
    // polarity) so case keys can never collide with whole-query keys.
    // This is the memo level that actually repeats: a degradation-
    // ladder rung re-expands the identical case set, and every case
    // the stronger configuration already settled is definite at any
    // strength — only the genuinely Unknown cases deserve re-search.
    SolverQueryCache::QueryKey CaseKey;
    CaseKey.reserve(C.size());
    for (const Literal &L : C)
      CaseKey.push_back(hashCombine64(Hasher.hashBool(L.Atom),
                                      L.Positive ? 0xA11ull : 0xB22ull));
    std::sort(CaseKey.begin(), CaseKey.end());
    std::uint64_t CaseFold = 0xCA5Eull;
    for (std::uint64_t H : CaseKey)
      CaseFold = hashCombine64(CaseFold, H);

    CaseSolver::CaseStatus S = CaseSolver::CaseStatus::Unknown;
    Model M;
    bool FromCache = false;
    SharedUnsatIndex::Proof Proof;
    const SolveResult *Hit = Opts.Cache ? Opts.Cache->lookup(CaseKey) : nullptr;
    if (Hit) {
      Stats.CacheHits++;
      EmitCache("hit");
      FromCache = true;
      if (Hit->Status == SolveStatus::Sat) {
        S = CaseSolver::CaseStatus::Sat;
        M = Hit->M;
      } else {
        S = CaseSolver::CaseStatus::ProvenUnsat;
      }
    } else if (Opts.Cache && Opts.Cache->subsumedUnsat(CaseKey)) {
      Stats.CacheUnsatSubsumed++;
      EmitCache("unsat-subsumed");
      FromCache = true;
      S = CaseSolver::CaseStatus::ProvenUnsat;
    } else if (Opts.Shared && Opts.Shared->lookup(CapsFp, CaseKey, Proof)) {
      // Another exploration (possibly on another worker) already proved
      // this case Unsat under identical caps. Charge the proof's
      // deterministic cost so the per-instruction cases/nodes counters
      // are the same as if we had re-proved it here.
      Stats.CacheHits++;
      EmitCache("shared-hit");
      Stats.CasesExplored += Proof.CasesExplored;
      Stats.NodesExplored += Proof.NodesExplored;
      FromCache = true;
      S = CaseSolver::CaseStatus::ProvenUnsat;
    } else if (Opts.Cache || Opts.Shared) {
      Stats.CacheMisses++;
      EmitCache("miss");
    }
    if (!FromCache) {
      // The case RNG is seeded from the exploration seed and the
      // case's own content only — deliberately NOT from any per-query
      // signature: the same case posed by different queries (a prefix
      // replayed through the assertion stack, a ladder rung, a
      // subsumed superset) must sample bit-identically, and skipping a
      // cached case must not shift the samples of its neighbours.
      RNG CaseRand(hashCombine64(Opts.Seed, CaseFold));
      std::uint64_t CasesBefore = Stats.CasesExplored;
      std::uint64_t NodesBefore = Stats.NodesExplored;
      CaseSolver CS(Classes, Opts, Stats, CaseRand);
      S = CS.solve(C, M);
      if (Opts.Cache && S != CaseSolver::CaseStatus::Unknown) {
        SolveResult Entry;
        Entry.Status = S == CaseSolver::CaseStatus::Sat ? SolveStatus::Sat
                                                        : SolveStatus::Unsat;
        if (S == CaseSolver::CaseStatus::Sat)
          Entry.M = M;
        Opts.Cache->store(CaseKey, Entry);
      }
      if (Opts.Shared && S == CaseSolver::CaseStatus::ProvenUnsat &&
          !CS.budgetStopped())
        Opts.Shared->store(CapsFp, CaseKey,
                           {Stats.CasesExplored - CasesBefore,
                            Stats.NodesExplored - NodesBefore});
      if (CS.budgetStopped()) {
        AnyBudgetStop = true;
        if (S != CaseSolver::CaseStatus::Sat) {
          AnyUnknown = true;
          break; // remaining cases would stop the same way
        }
      }
    }
    if (S == CaseSolver::CaseStatus::Sat) {
      Result.Status = SolveStatus::Sat;
      Result.M = std::move(M);
      Stats.SatCount++;
      if (Opts.Cache)
        Opts.Cache->store(Sig.SortedConjuncts, Result);
      return Result;
    }
    if (S == CaseSolver::CaseStatus::Unknown)
      AnyUnknown = true;
  }
  if (AnyBudgetStop)
    Stats.BudgetStops++;
  Result.Status = AnyUnknown ? SolveStatus::Unknown : SolveStatus::Unsat;
  if (AnyUnknown)
    Stats.UnknownCount++;
  else
    Stats.UnsatCount++;
  // store() rejects Unknown, so only the proven-Unsat outcome is kept.
  if (Opts.Cache)
    Opts.Cache->store(Sig.SortedConjuncts, Result);
  return Result;
}
