//===- solver/TermPrinter.h - Human-readable term rendering -----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms in the paper's notation: variables as receiver/s0/s1/t0,
/// predicates as isInteger(s0), isNotInteger(s0 + s1), and so on
/// (paper Table 1 and Figure 2).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SOLVER_TERMPRINTER_H
#define IGDT_SOLVER_TERMPRINTER_H

#include "solver/Term.h"

#include <string>

namespace igdt {

std::string printObjTerm(const ObjTerm *T);
std::string printIntTerm(const IntTerm *T);
std::string printFloatTerm(const FloatTerm *T);
std::string printBoolTerm(const BoolTerm *T);

/// Renders a conjunction of path conditions, one per line.
std::string printPathCondition(const std::vector<const BoolTerm *> &Path);

} // namespace igdt

#endif // IGDT_SOLVER_TERMPRINTER_H
