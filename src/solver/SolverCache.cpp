//===- solver/SolverCache.cpp - Per-exploration solver query caching ---------===//

#include "solver/SolverCache.h"

#include "solver/Solver.h"
#include "solver/Term.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace igdt;

namespace {

std::uint64_t mix(std::uint64_t Seed, std::uint64_t Value) {
  return hashCombine64(Seed, Value);
}

} // namespace

std::uint64_t TermHasher::hashObj(const ObjTerm *T) {
  if (!T)
    return 0x9E3779B97F4A7C15ull;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  std::uint64_t H = mix(0x0B57ull, std::uint64_t(T->TermKind));
  switch (T->TermKind) {
  case ObjTerm::Kind::Var:
    H = mix(H, std::uint64_t(T->Role));
    H = mix(H, std::uint64_t(std::uint32_t(T->Index)));
    H = mix(H, hashObj(T->Parent));
    break;
  case ObjTerm::Kind::Const:
    H = mix(H, T->ConstValue);
    break;
  case ObjTerm::Kind::IntObj:
    H = mix(H, hashInt(T->IntPayload));
    break;
  case ObjTerm::Kind::FloatObj:
    H = mix(H, hashFloat(T->FloatPayload));
    break;
  case ObjTerm::Kind::NewObj:
    H = mix(H, T->AllocId);
    H = mix(H, T->AllocClass);
    H = mix(H, hashInt(T->AllocSize));
    H = mix(H, hashObj(T->CopyOf));
    break;
  }
  Memo.emplace(T, H);
  return H;
}

std::uint64_t TermHasher::hashInt(const IntTerm *T) {
  if (!T)
    return 0x9E3779B97F4A7C15ull;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  std::uint64_t H = mix(0x117ull, std::uint64_t(T->TermKind));
  H = mix(H, std::uint64_t(T->ConstValue));
  H = mix(H, std::uint64_t(T->Aux));
  H = mix(H, std::uint64_t(T->Width) * 2 + (T->SignExtend ? 1 : 0));
  if (T->Obj)
    H = mix(H, hashObj(T->Obj));
  if (T->Lhs)
    H = mix(H, hashInt(T->Lhs));
  if (T->Rhs)
    H = mix(H, hashInt(T->Rhs));
  if (T->FloatOperand)
    H = mix(H, hashFloat(T->FloatOperand));
  Memo.emplace(T, H);
  return H;
}

std::uint64_t TermHasher::hashFloat(const FloatTerm *T) {
  if (!T)
    return 0x9E3779B97F4A7C15ull;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  std::uint64_t H = mix(0xF107ull, std::uint64_t(T->TermKind));
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(T->ConstValue));
  __builtin_memcpy(&Bits, &T->ConstValue, sizeof(Bits));
  H = mix(H, Bits);
  H = mix(H, std::uint64_t(T->Aux));
  if (T->Obj)
    H = mix(H, hashObj(T->Obj));
  if (T->Lhs)
    H = mix(H, hashFloat(T->Lhs));
  if (T->Rhs)
    H = mix(H, hashFloat(T->Rhs));
  if (T->IntOperand)
    H = mix(H, hashInt(T->IntOperand));
  Memo.emplace(T, H);
  return H;
}

std::uint64_t TermHasher::hashBool(const BoolTerm *T) {
  if (!T)
    return 0x9E3779B97F4A7C15ull;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  std::uint64_t H = mix(0xB001ull, std::uint64_t(T->TermKind));
  H = mix(H, T->ConstValue ? 1 : 0);
  H = mix(H, std::uint64_t(T->Pred));
  H = mix(H, T->ClassIndex);
  H = mix(H, T->FormatMask);
  if (T->BLhs)
    H = mix(H, hashBool(T->BLhs));
  if (T->BRhs)
    H = mix(H, hashBool(T->BRhs));
  if (T->ILhs)
    H = mix(H, hashInt(T->ILhs));
  if (T->IRhs)
    H = mix(H, hashInt(T->IRhs));
  if (T->FLhs)
    H = mix(H, hashFloat(T->FLhs));
  if (T->FRhs)
    H = mix(H, hashFloat(T->FRhs));
  if (T->Obj)
    H = mix(H, hashObj(T->Obj));
  if (T->ObjRhs)
    H = mix(H, hashObj(T->ObjRhs));
  Memo.emplace(T, H);
  return H;
}

TermHasher::QuerySignature
TermHasher::signQuery(const std::vector<const BoolTerm *> &Conjuncts) {
  QuerySignature Sig;
  Sig.SortedConjuncts.reserve(Conjuncts.size());
  for (const BoolTerm *C : Conjuncts)
    Sig.SortedConjuncts.push_back(hashBool(C));
  std::sort(Sig.SortedConjuncts.begin(), Sig.SortedConjuncts.end());
  Sig.Fold = 0x51D;
  for (std::uint64_t H : Sig.SortedConjuncts)
    Sig.Fold = mix(Sig.Fold, H);
  return Sig;
}

const SolveResult *SolverQueryCache::lookup(const QueryKey &Key) const {
  auto It = Exact.find(Key);
  return It == Exact.end() ? nullptr : &It->second;
}

bool SolverQueryCache::subsumedUnsat(const QueryKey &Key) const {
  for (const QueryKey &Core : Cores)
    if (Core.size() <= Key.size() &&
        std::includes(Key.begin(), Key.end(), Core.begin(), Core.end()))
      return true;
  return false;
}

void SolverQueryCache::store(const QueryKey &Key, const SolveResult &Result) {
  if (Result.Status == SolveStatus::Unknown)
    return;
  Exact.emplace(Key, Result);
  if (Result.Status == SolveStatus::Unsat && Cores.size() < MaxUnsatCores &&
      !subsumedUnsat(Key))
    Cores.push_back(Key);
}

bool SharedUnsatIndex::lookup(std::uint64_t CapsFingerprint,
                              const QueryKey &Key, Proof &Out) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Entries.find({CapsFingerprint, Key});
  if (It == Entries.end())
    return false;
  Out = It->second;
  return true;
}

void SharedUnsatIndex::store(std::uint64_t CapsFingerprint,
                             const QueryKey &Key, const Proof &P) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Entries.size() >= MaxEntries)
    return;
  // A concurrent worker may have proved the same case first; both
  // proofs are identical (the proof is deterministic), so emplace's
  // keep-first semantics are fine.
  Entries.emplace(std::make_pair(CapsFingerprint, Key), P);
}

std::size_t SharedUnsatIndex::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Entries.size();
}
