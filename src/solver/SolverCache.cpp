//===- solver/SolverCache.cpp - Per-exploration solver query caching ---------===//

#include "solver/SolverCache.h"

#include "solver/Solver.h"
#include "solver/Term.h"
#include "solver/TermEval.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace igdt;

namespace {

std::uint64_t mix(std::uint64_t Seed, std::uint64_t Value) {
  return hashCombine64(Seed, Value);
}

// Structural model equality for the bank's duplicate check. Doubles are
// compared bitwise: the bank must never fold two models the evaluator
// could distinguish (e.g. 0.0 vs -0.0 boxed payloads).

bool bitsEqual(double A, double B) {
  std::uint64_t BA, BB;
  __builtin_memcpy(&BA, &A, sizeof(BA));
  __builtin_memcpy(&BB, &B, sizeof(BB));
  return BA == BB;
}

bool assignmentEquals(const ObjAssignment &A, const ObjAssignment &B) {
  return A.ClassIndex == B.ClassIndex && A.IntValue == B.IntValue &&
         bitsEqual(A.FloatValue, B.FloatValue) && A.SlotCount == B.SlotCount;
}

bool modelEquals(const Model &A, const Model &B) {
  if (A.Objects.size() != B.Objects.size() || A.Reps != B.Reps ||
      A.IntLeaves != B.IntLeaves)
    return false;
  for (auto ItA = A.Objects.begin(), ItB = B.Objects.begin();
       ItA != A.Objects.end(); ++ItA, ++ItB)
    if (ItA->first != ItB->first ||
        !assignmentEquals(ItA->second, ItB->second))
      return false;
  if (A.FloatLeaves.size() != B.FloatLeaves.size())
    return false;
  for (auto ItA = A.FloatLeaves.begin(), ItB = B.FloatLeaves.begin();
       ItA != A.FloatLeaves.end(); ++ItA, ++ItB)
    if (ItA->first != ItB->first || !bitsEqual(ItA->second, ItB->second))
      return false;
  return true;
}

} // namespace

void SolverModelBank::record(const Model &M) {
  for (const Model &Existing : Models)
    if (modelEquals(Existing, M))
      return;
  Models.push_back(M);
  if (Models.size() > Capacity)
    Models.pop_front();
}

const Model *SolverModelBank::findSatisfying(
    const std::vector<const BoolTerm *> &Conjuncts,
    const ClassTable &Classes) const {
  for (auto It = Models.rbegin(); It != Models.rend(); ++It) {
    TermEvaluator Eval(*It, Classes);
    bool All = true;
    for (const BoolTerm *C : Conjuncts) {
      auto V = Eval.evalBool(C);
      if (!V || !*V) {
        All = false;
        break;
      }
    }
    if (All)
      return &*It;
  }
  return nullptr;
}

TermHasher::QuerySignature
TermHasher::signQuery(const std::vector<const BoolTerm *> &Conjuncts) {
  QuerySignature Sig;
  Sig.SortedConjuncts.reserve(Conjuncts.size());
  for (const BoolTerm *C : Conjuncts)
    Sig.SortedConjuncts.push_back(hashBool(C));
  std::sort(Sig.SortedConjuncts.begin(), Sig.SortedConjuncts.end());
  Sig.Fold = 0x51D;
  for (std::uint64_t H : Sig.SortedConjuncts)
    Sig.Fold = mix(Sig.Fold, H);
  return Sig;
}

const SolveResult *SolverQueryCache::lookup(const QueryKey &Key) const {
  auto It = Exact.find(Key);
  return It == Exact.end() ? nullptr : &It->second;
}

bool SolverQueryCache::subsumedUnsat(const QueryKey &Key) const {
  for (const QueryKey &Core : Cores)
    if (Core.size() <= Key.size() &&
        std::includes(Key.begin(), Key.end(), Core.begin(), Core.end()))
      return true;
  return false;
}

void SolverQueryCache::store(const QueryKey &Key, const SolveResult &Result) {
  if (Result.Status == SolveStatus::Unknown)
    return;
  Exact.emplace(Key, Result);
  if (Result.Status == SolveStatus::Unsat && Cores.size() < MaxUnsatCores &&
      !subsumedUnsat(Key))
    Cores.push_back(Key);
}

bool SharedUnsatIndex::lookup(std::uint64_t CapsFingerprint,
                              const QueryKey &Key, Proof &Out) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Entries.find({CapsFingerprint, Key});
  if (It == Entries.end())
    return false;
  Out = It->second;
  return true;
}

void SharedUnsatIndex::store(std::uint64_t CapsFingerprint,
                             const QueryKey &Key, const Proof &P) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Entries.size() >= MaxEntries)
    return;
  // A concurrent worker may have proved the same case first; both
  // proofs are identical (the proof is deterministic), so emplace's
  // keep-first semantics are fine.
  Entries.emplace(std::make_pair(CapsFingerprint, Key), P);
}

std::size_t SharedUnsatIndex::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Entries.size();
}
