//===- solver/TermEval.cpp - Term evaluation under a model -------------------===//

#include "solver/TermEval.h"

#include "support/Compiler.h"
#include "support/IntMath.h"

#include <cmath>
#include <cstring>

using namespace igdt;

std::optional<std::int64_t> TermEvaluator::evalInt(const IntTerm *T) const {
  switch (T->TermKind) {
  case IntTerm::Kind::Const:
    return T->ConstValue;
  case IntTerm::Kind::ValueOf:
    return M.objectOrDefault(T->Obj).IntValue;
  case IntTerm::Kind::SlotCount:
    return M.objectOrDefault(T->Obj).SlotCount;
  case IntTerm::Kind::ClassIndexOf:
    return static_cast<std::int64_t>(M.objectOrDefault(T->Obj).ClassIndex);
  case IntTerm::Kind::StackSize:
  case IntTerm::Kind::ByteAt:
  case IntTerm::Kind::LoadLE: {
    auto It = M.IntLeaves.find(T);
    if (It != M.IntLeaves.end())
      return It->second;
    if (Oracle)
      if (auto V = Oracle->intLeaf(T))
        return V;
    return 0; // unconstrained leaves default to zero
  }
  case IntTerm::Kind::UncheckedValueOf:
  case IntTerm::Kind::IdentityHash: {
    // Materialisation-dependent: the model may carry a guess (solver
    // search), the oracle knows the truth (differential replay).
    if (Oracle)
      if (auto V = Oracle->intLeaf(T))
        return V;
    auto It = M.IntLeaves.find(T);
    if (It != M.IntLeaves.end())
      return It->second;
    return std::nullopt;
  }
  case IntTerm::Kind::Neg: {
    auto A = evalInt(T->Lhs);
    if (!A)
      return std::nullopt;
    return negSat(*A);
  }
  case IntTerm::Kind::HighBit: {
    auto A = evalInt(T->Lhs);
    if (!A || *A < 0)
      return std::nullopt;
    return highBit(*A);
  }
  case IntTerm::Kind::TruncF: {
    auto F = evalFloat(T->FloatOperand);
    if (!F)
      return std::nullopt;
    if (*F >= 9.2e18)
      return SatMax;
    if (*F <= -9.2e18)
      return SatMin;
    return static_cast<std::int64_t>(std::trunc(*F));
  }
  default:
    break;
  }

  auto A = evalInt(T->Lhs);
  auto B = evalInt(T->Rhs);
  if (!A || !B)
    return std::nullopt;
  switch (T->TermKind) {
  case IntTerm::Kind::Add:
    return addSat(*A, *B);
  case IntTerm::Kind::Sub:
    return subSat(*A, *B);
  case IntTerm::Kind::Mul:
    return mulSat(*A, *B);
  case IntTerm::Kind::Quo:
    if (*B == 0)
      return std::nullopt;
    return truncDiv(*A, *B);
  case IntTerm::Kind::DivFloor:
    if (*B == 0)
      return std::nullopt;
    return floorDiv(*A, *B);
  case IntTerm::Kind::ModFloor:
    if (*B == 0)
      return std::nullopt;
    return floorMod(*A, *B);
  case IntTerm::Kind::BitAnd:
    return *A & *B;
  case IntTerm::Kind::BitOr:
    return *A | *B;
  case IntTerm::Kind::BitXor:
    return *A ^ *B;
  case IntTerm::Kind::Shl:
    if (*B < 0)
      return std::nullopt;
    return shlSat(*A, *B);
  case IntTerm::Kind::Asr:
    if (*B < 0)
      return std::nullopt;
    return asr(*A, *B);
  default:
    igdt_unreachable("unhandled int term kind");
  }
}

std::optional<double> TermEvaluator::evalFloat(const FloatTerm *T) const {
  switch (T->TermKind) {
  case FloatTerm::Kind::Const:
    return T->ConstValue;
  case FloatTerm::Kind::ValueOf:
    return M.objectOrDefault(T->Obj).FloatValue;
  case FloatTerm::Kind::UncheckedValueOf:
  case FloatTerm::Kind::LoadF64:
  case FloatTerm::Kind::LoadF32: {
    if (Oracle)
      if (auto V = Oracle->floatLeaf(T))
        return V;
    auto It = M.FloatLeaves.find(T);
    if (It != M.FloatLeaves.end())
      return It->second;
    return T->TermKind == FloatTerm::Kind::UncheckedValueOf
               ? std::nullopt
               : std::optional<double>(0.0);
  }
  case FloatTerm::Kind::OfInt: {
    auto A = evalInt(T->IntOperand);
    if (!A)
      return std::nullopt;
    return static_cast<double>(*A);
  }
  default:
    break;
  }

  auto A = evalFloat(T->Lhs);
  if (!A)
    return std::nullopt;
  switch (T->TermKind) {
  case FloatTerm::Kind::Sqrt:
    return std::sqrt(*A);
  case FloatTerm::Kind::Sin:
    return std::sin(*A);
  case FloatTerm::Kind::Cos:
    return std::cos(*A);
  case FloatTerm::Kind::Exp:
    return std::exp(*A);
  case FloatTerm::Kind::Ln:
    return std::log(*A);
  case FloatTerm::Kind::ArcTan:
    return std::atan(*A);
  case FloatTerm::Kind::Frac:
    return *A - std::trunc(*A);
  default:
    break;
  }
  auto B = evalFloat(T->Rhs);
  if (!B)
    return std::nullopt;
  switch (T->TermKind) {
  case FloatTerm::Kind::Add:
    return *A + *B;
  case FloatTerm::Kind::Sub:
    return *A - *B;
  case FloatTerm::Kind::Mul:
    return *A * *B;
  case FloatTerm::Kind::Div:
    return *A / *B;
  default:
    igdt_unreachable("unhandled float term kind");
  }
}

std::optional<std::uint32_t> TermEvaluator::classOf(const ObjTerm *T) const {
  switch (T->TermKind) {
  case ObjTerm::Kind::Var:
    return M.objectOrDefault(T).ClassIndex;
  case ObjTerm::Kind::Const:
    if (isSmallIntOop(T->ConstValue))
      return SmallIntegerClass;
    return std::nullopt; // heap constant: class unknown to the solver
  case ObjTerm::Kind::IntObj:
    return SmallIntegerClass;
  case ObjTerm::Kind::FloatObj:
    return BoxedFloatClass;
  case ObjTerm::Kind::NewObj:
    return T->AllocClass;
  }
  igdt_unreachable("unhandled obj term kind");
}

std::optional<bool> TermEvaluator::evalBool(const BoolTerm *T) const {
  auto Compare = [](CmpPred Pred, auto A, auto B) -> bool {
    switch (Pred) {
    case CmpPred::Lt:
      return A < B;
    case CmpPred::Le:
      return A <= B;
    case CmpPred::Eq:
      return A == B;
    }
    igdt_unreachable("unhandled predicate");
  };

  switch (T->TermKind) {
  case BoolTerm::Kind::Const:
    return T->ConstValue;
  case BoolTerm::Kind::Not: {
    auto A = evalBool(T->BLhs);
    if (!A)
      return std::nullopt;
    return !*A;
  }
  case BoolTerm::Kind::And: {
    auto A = evalBool(T->BLhs);
    auto B = evalBool(T->BRhs);
    if (A && !*A)
      return false;
    if (B && !*B)
      return false;
    if (!A || !B)
      return std::nullopt;
    return true;
  }
  case BoolTerm::Kind::Or: {
    auto A = evalBool(T->BLhs);
    auto B = evalBool(T->BRhs);
    if (A && *A)
      return true;
    if (B && *B)
      return true;
    if (!A || !B)
      return std::nullopt;
    return false;
  }
  case BoolTerm::Kind::ICmp: {
    auto A = evalInt(T->ILhs);
    auto B = evalInt(T->IRhs);
    if (!A || !B)
      return std::nullopt;
    return Compare(T->Pred, *A, *B);
  }
  case BoolTerm::Kind::FCmp: {
    auto A = evalFloat(T->FLhs);
    auto B = evalFloat(T->FRhs);
    if (!A || !B)
      return std::nullopt;
    return Compare(T->Pred, *A, *B);
  }
  case BoolTerm::Kind::IsClass: {
    auto C = classOf(T->Obj);
    if (!C)
      return std::nullopt;
    return *C == T->ClassIndex;
  }
  case BoolTerm::Kind::HasFormat: {
    auto C = classOf(T->Obj);
    if (!C)
      return std::nullopt;
    if (*C == SmallIntegerClass)
      return false; // immediates have no storage format
    if (!Classes.isValidIndex(*C))
      return std::nullopt;
    return (formatBit(Classes.classAt(*C).Format) & T->FormatMask) != 0;
  }
  case BoolTerm::Kind::ObjEq: {
    const ObjTerm *L = T->Obj;
    const ObjTerm *R = T->ObjRhs;
    if (L->isVar() && R->isVar()) {
      if (M.repOf(L) == M.repOf(R))
        return true;
      // Distinct representatives: identical only if both are the same
      // immediate integer.
      ObjAssignment AL = M.objectOrDefault(L);
      ObjAssignment AR = M.objectOrDefault(R);
      if (AL.ClassIndex == SmallIntegerClass &&
          AR.ClassIndex == SmallIntegerClass)
        return AL.IntValue == AR.IntValue;
      return false; // distinct materialised objects
    }
    // Non-variable identity is decided at recording time; be conservative.
    return std::nullopt;
  }
  case BoolTerm::Kind::IntFormatIs: {
    auto C = evalInt(T->ILhs);
    if (!C)
      return std::nullopt;
    if (*C <= 0 || *C >= static_cast<std::int64_t>(Classes.size()))
      return false;
    return (formatBit(Classes.classAt(static_cast<std::uint32_t>(*C)).Format) &
            T->FormatMask) != 0;
  }
  }
  igdt_unreachable("unhandled bool term kind");
}
