//===- differential/DifferentialTester.h - Interpreter vs JIT oracle -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential tester (paper §2.4 and Fig. 1, steps 2-4): for every
/// concolic path of an instruction it
///
///   1. re-creates a concrete VM frame from the path's input constraints
///      (the frame shape is adapted to the compiler's convention:
///      registers for native methods, a frame image + operand stack for
///      byte-code fragments);
///   2. compiles the instruction with the compiler under test;
///   3. executes the machine code in the simulator;
///   4. validates the machine state against the path's output
///      constraints and exit condition, classifying any difference into
///      the paper's six defect families.
///
/// Invalid-frame and (for byte-codes) invalid-memory-access paths are
/// expected failures and are not replayed (paper §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_DIFFERENTIAL_DIFFERENTIALTESTER_H
#define IGDT_DIFFERENTIAL_DIFFERENTIALTESTER_H

#include "concolic/ConcolicExplorer.h"
#include "differential/DefectFamily.h"
#include "differential/ReplayArena.h"
#include "jit/CodeCache.h"
#include "jit/CogitOptions.h"
#include "jit/MachineSim.h"

#include <string>

namespace igdt {

/// Configuration of one differential run.
struct DiffTestConfig {
  CompilerKind Kind = CompilerKind::StackToRegister;
  /// Target back-end: arm-like when true, x64-like otherwise.
  bool UseArmBackend = false;
  CogitOptions Cogit;
  SimOptions Sim;
  /// Cooperative replay budget (non-owning, may be null): one work unit
  /// is charged per tested path, and once the budget expires remaining
  /// paths come back BudgetSkipped instead of running.
  Budget *ReplayBudget = nullptr;
  /// Cross-engine oracle: before the authoritative simulator run, each
  /// path is executed once through the native x86-64 tier on a marked
  /// heap, the heap is rolled back, and every observable (exit record,
  /// registers, operand stack, stack bytes, heap contents) is compared
  /// against the simulator's. A disagreement is reported as the
  /// CrossEngineDivergence defect family — it indicts the native code
  /// generator, not the VM under test. On hosts without the native tier
  /// the probe degrades to the simulator and trivially agrees.
  bool CrossEngineCheck = false;
  /// Campaign mode: report simulator fuel exhaustion as a harness fault
  /// (a thrown HarnessFault) rather than as a compiled-code defect.
  /// When fuel is deliberately scarce, exhaustion says nothing about
  /// the compiler under test.
  bool FuelExhaustionIsHarnessFault = false;
  /// Observability sink (non-owning, may be null). The tester emits one
  /// PathVerdict event per tested path and propagates the sink into the
  /// nested Cogit and Sim options, so one assignment wires the whole
  /// replay stage.
  TraceSink *Trace = nullptr;
  /// Compile-once code cache (non-owning, may be null). Compilation is
  /// a pure function of the cached key (see jit/CodeCache.h), so a hit
  /// replays the stored CompiledCode — and the cogit's Compile trace
  /// event — instead of re-running the front end. Bypassed while
  /// InjectFrontEndThrow is armed so the injected crash fires on every
  /// path. Not thread-safe; owners keep it worker-local.
  JitCodeCache *CodeCache = nullptr;
  /// Compile counters (non-owning, may be null): Compiles is charged on
  /// every front-end run — with or without a cache — and CodeCacheHits
  /// on cache-served replays, so "issued vs avoided" reads directly off
  /// one struct.
  JitCacheStats *JitStats = nullptr;
  /// Pooled replay state (non-owning, may be null). When set, the path's
  /// heap and simulator stack come from the arena instead of being
  /// built fresh; the arena's reset contract keeps outcomes
  /// byte-identical either way. Not thread-safe; owners keep it
  /// worker-local like the code cache.
  ReplayArena *Arena = nullptr;
  /// Arena/reset counters (non-owning, may be null). Fresh-heap builds
  /// are charged here too when no arena is wired, so an on/off A-B run
  /// reads "reset vs rebuilt" off one struct.
  ReplayStats *Replay = nullptr;
  /// Dispatch-engine counters (non-owning, may be null); the
  /// constructor propagates them into Sim.Stats the way Trace is
  /// propagated into the nested options.
  SimStats *SimCounters = nullptr;
};

/// Per-path verdict.
enum class PathTestStatus : std::uint8_t {
  Match,           ///< interpreter and compiled code agree
  Difference,      ///< a defect was detected and classified
  ExpectedFailure, ///< invalid-frame / unsafe-access path, not replayed
  NotReplayable,   ///< curated out (prototype limitation)
  BudgetSkipped,   ///< replay budget expired before this path ran
};

const char *pathTestStatusName(PathTestStatus Status);

/// The outcome of testing one path.
struct PathTestOutcome {
  PathTestStatus Status = PathTestStatus::Match;
  DefectFamily Family = DefectFamily::BehaviouralDifference;
  /// Deduplication key for Table 3 ("we count a defect only once
  /// regardless of how many execution paths it led to a failure").
  std::string CauseKey;
  std::string Details;
  ExitKind InterpreterExit = ExitKind::Success;
  MachExitKind MachineExit = MachExitKind::Breakpoint;
};

/// Replays paths against one compiler/back-end pair.
class DifferentialTester {
public:
  explicit DifferentialTester(DiffTestConfig Config) : Cfg(Config) {
    if (Cfg.Trace) {
      Cfg.Cogit.Trace = Cfg.Trace;
      Cfg.Sim.Trace = Cfg.Trace;
    }
    if (Cfg.SimCounters)
      Cfg.Sim.Stats = Cfg.SimCounters;
    if (Cfg.Arena)
      Cfg.Sim.StackPool = &Cfg.Arena->stackPool();
  }

  /// Tests path \p PathIdx of \p Exploration.
  PathTestOutcome testPath(const ExplorationResult &Exploration,
                           std::size_t PathIdx);

  const DiffTestConfig &config() const { return Cfg; }
  const MachineDesc &desc() const {
    return Cfg.UseArmBackend ? armDesc() : x64Desc();
  }

private:
  /// The actual replay; testPath wraps it with PathVerdict emission.
  PathTestOutcome testPathImpl(const ExplorationResult &Exploration,
                               std::size_t PathIdx);

  DiffTestConfig Cfg;
};

} // namespace igdt

#endif // IGDT_DIFFERENTIAL_DIFFERENTIALTESTER_H
