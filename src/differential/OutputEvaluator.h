//===- differential/OutputEvaluator.h - Predicting instruction outputs ---------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the *output constraints* of a path (paper §2.4, step 4):
/// each abstract output value becomes an expectation the machine state
/// must meet — an exact Oop, a float box compared by value, or a fresh
/// allocation compared structurally.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_DIFFERENTIAL_OUTPUTEVALUATOR_H
#define IGDT_DIFFERENTIAL_OUTPUTEVALUATOR_H

#include "differential/OutputOracle.h"
#include "symbolic/Effects.h"

#include <string>
#include <vector>

namespace igdt {

/// One predicted value.
struct ExpectedValue {
  enum class Kind : std::uint8_t {
    Exact,    ///< the observed Oop must equal Value
    FloatBox, ///< the observed Oop must be a BoxedFloat with FloatValue
    Alloc,    ///< the observed Oop must be a fresh allocation (see below)
    Unknown,  ///< unpredictable (evaluation failed)
  };
  Kind K = Kind::Unknown;
  Oop Value = InvalidOop;
  double FloatValue = 0.0;
  const ObjTerm *AllocTerm = nullptr;

  static ExpectedValue exact(Oop V) {
    ExpectedValue E;
    E.K = Kind::Exact;
    E.Value = V;
    return E;
  }
  static ExpectedValue floatBox(double V) {
    ExpectedValue E;
    E.K = Kind::FloatBox;
    E.FloatValue = V;
    return E;
  }
  static ExpectedValue alloc(const ObjTerm *T) {
    ExpectedValue E;
    E.K = Kind::Alloc;
    E.AllocTerm = T;
    return E;
  }
};

/// Evaluates output terms against a materialisation; predictions are
/// taken *before* the machine run so side effects cannot contaminate
/// them.
class OutputEvaluator {
public:
  OutputEvaluator(const Model &M,
                  const std::map<const ObjTerm *, Oop> &Bindings,
                  const ObjectMemory &Heap,
                  const std::vector<SlotStoreEffect> &SlotStores)
      : Oracle(M, Bindings, Heap), Eval(M, Heap.classTable(), &Oracle),
        Heap(Heap), SlotStores(SlotStores) {}

  /// Predicts the value an object term denotes.
  ExpectedValue evalObj(const ObjTerm *T) const;

  /// Checks the machine value \p Observed against \p Expected in
  /// \p MachineHeap (the heap after the run). \p Watermark separates
  /// input objects from machine-made allocations. On mismatch a
  /// diagnostic is appended to \p Why.
  bool matches(const ExpectedValue &Expected, Oop Observed,
               const ObjectMemory &MachineHeap, std::size_t Watermark,
               std::string &Why) const;

  const OutputOracle &oracle() const { return Oracle; }
  std::optional<std::int64_t> evalInt(const IntTerm *T) const {
    return Eval.evalInt(T);
  }
  std::optional<double> evalFloat(const FloatTerm *T) const {
    return Eval.evalFloat(T);
  }

private:
  mutable OutputOracle Oracle;
  TermEvaluator Eval;
  const ObjectMemory &Heap;
  const std::vector<SlotStoreEffect> &SlotStores;
};

} // namespace igdt

#endif // IGDT_DIFFERENTIAL_OUTPUTEVALUATOR_H
