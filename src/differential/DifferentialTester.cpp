//===- differential/DifferentialTester.cpp - Interpreter vs JIT oracle ---------===//

#include "differential/DifferentialTester.h"

#include "differential/OutputEvaluator.h"
#include "jit/BytecodeCogit.h"
#include "jit/NativeMethodCogit.h"
#include "jit/PredecodedCode.h"
#include "jit/native/NativeCode.h"
#include "observe/TraceBus.h"
#include "support/Compiler.h"
#include "support/CpuFeatures.h"
#include "support/StringUtils.h"
#include "symbolic/FrameMaterializer.h"
#include "vm/Bytecodes.h"

#include <optional>

using namespace igdt;

const char *igdt::defectFamilyName(DefectFamily Family) {
  switch (Family) {
  case DefectFamily::MissingInterpreterTypeCheck:
    return "Missing interpreter type check";
  case DefectFamily::MissingCompiledTypeCheck:
    return "Missing compiled type check";
  case DefectFamily::OptimisationDifference:
    return "Optimisation difference";
  case DefectFamily::BehaviouralDifference:
    return "Behavioural difference";
  case DefectFamily::MissingFunctionality:
    return "Missing Functionality";
  case DefectFamily::SimulationError:
    return "Simulation Error";
  case DefectFamily::CrossEngineDivergence:
    return "Cross-engine divergence";
  }
  igdt_unreachable("unknown defect family");
}

const char *igdt::pathTestStatusName(PathTestStatus Status) {
  switch (Status) {
  case PathTestStatus::Match:
    return "match";
  case PathTestStatus::Difference:
    return "difference";
  case PathTestStatus::ExpectedFailure:
    return "expected-failure";
  case PathTestStatus::NotReplayable:
    return "not-replayable";
  case PathTestStatus::BudgetSkipped:
    return "budget-skipped";
  }
  igdt_unreachable("unknown path test status");
}

namespace {

bool intTermUsesUnchecked(const IntTerm *T);

bool floatTermUsesUnchecked(const FloatTerm *T) {
  if (!T)
    return false;
  if (T->TermKind == FloatTerm::Kind::UncheckedValueOf)
    return true;
  return floatTermUsesUnchecked(T->Lhs) || floatTermUsesUnchecked(T->Rhs) ||
         intTermUsesUnchecked(T->IntOperand);
}

bool intTermUsesUnchecked(const IntTerm *T) {
  if (!T)
    return false;
  if (T->TermKind == IntTerm::Kind::UncheckedValueOf)
    return true;
  return intTermUsesUnchecked(T->Lhs) || intTermUsesUnchecked(T->Rhs) ||
         floatTermUsesUnchecked(T->FloatOperand);
}

bool objTermUsesUnchecked(const ObjTerm *T) {
  if (!T)
    return false;
  switch (T->TermKind) {
  case ObjTerm::Kind::IntObj:
    return intTermUsesUnchecked(T->IntPayload);
  case ObjTerm::Kind::FloatObj:
    return floatTermUsesUnchecked(T->FloatPayload);
  default:
    return false;
  }
}

/// True when the interpreter path computed through a blind untag: the
/// signature of a missing *interpreter* type check.
bool pathUsesUncheckedData(const PathSolution &P) {
  if (objTermUsesUnchecked(P.Result.S))
    return true;
  for (const ConcolicValue &V : P.Output.Stack)
    if (objTermUsesUnchecked(V.S))
      return true;
  return false;
}

DefectFamily classifyDifference(ExitKind InterpExit, const MachineExit &ME,
                                const PathSolution &P) {
  if (ME.Kind == MachExitKind::SimulationError)
    return DefectFamily::SimulationError;
  if (ME.Kind == MachExitKind::Segfault ||
      ME.Kind == MachExitKind::DivideFault ||
      ME.Kind == MachExitKind::FuelExhausted)
    return DefectFamily::MissingCompiledTypeCheck;
  if (ME.Kind == MachExitKind::Breakpoint &&
      ME.Marker == MarkerNotImplemented)
    return DefectFamily::MissingFunctionality;
  if ((InterpExit == ExitKind::Success ||
       InterpExit == ExitKind::MethodReturn) &&
      ME.Kind == MachExitKind::TrampolineCall)
    // The compiled code sends where the interpreter inlined (in sequence
    // mode the interpreter may have run on to a return afterwards).
    return DefectFamily::OptimisationDifference;
  if (InterpExit == ExitKind::MessageSend &&
      (ME.Kind == MachExitKind::Breakpoint ||
       ME.Kind == MachExitKind::Returned))
    return DefectFamily::BehaviouralDifference;
  if (InterpExit == ExitKind::Success &&
      ME.Kind == MachExitKind::Breakpoint &&
      ME.Marker == MarkerPrimitiveFail)
    return pathUsesUncheckedData(P)
               ? DefectFamily::MissingInterpreterTypeCheck
               : DefectFamily::BehaviouralDifference;
  return DefectFamily::BehaviouralDifference;
}

/// Reads the final operand stack through the compiler-reported layout.
std::vector<Oop> readFinalStack(const CompiledCode &Code, MachineSim &Sim) {
  std::vector<Oop> Out;
  OperandStackView Memory = Sim.operandStackView();
  if (Code.DynamicStack) {
    // Control flow flushed everything to memory.
    Out.reserve(Memory.size());
    for (std::size_t I = 0; I < Memory.size(); ++I)
      Out.push_back(Memory[I]);
    return Out;
  }
  std::size_t NextMem = 0;
  for (const ValueLoc &L : Code.FinalStack) {
    switch (L.K) {
    case ValueLoc::Kind::OperandStack:
      Out.push_back(NextMem < Memory.size() ? Memory[NextMem++] : InvalidOop);
      break;
    case ValueLoc::Kind::Register:
      Out.push_back(Sim.reg(L.Reg));
      break;
    case ValueLoc::Kind::Constant:
      Out.push_back(L.Const);
      break;
    case ValueLoc::Kind::FrameLocal:
      Out.push_back(Sim.readLocal(L.Index));
      break;
    case ValueLoc::Kind::Receiver:
      Out.push_back(Sim.readReceiver());
      break;
    case ValueLoc::Kind::SpillSlot:
      Out.push_back(Sim.stackLoad64(Sim.reg(MReg::FP) +
                                    abi::spillOffset(L.Index))
                        .value_or(InvalidOop));
      break;
    }
  }
  return Out;
}

/// Pre-computed byte expectation of one byte-store effect.
struct ExpectedBytes {
  Oop Target = InvalidOop;
  std::int64_t Offset = 0;
  std::vector<std::uint8_t> Bytes;
  bool Valid = false;
};

/// Builds the engine-specific forms of a freshly compiled unit before it
/// enters the code cache, so cache-served copies share the ready-built
/// predecode/native code (build-once per compilation unit).
void warmEngineForms(const DiffTestConfig &Cfg, const CompiledCode &Code) {
  bool WantNative = Cfg.Sim.Engine == SimEngine::Native || Cfg.CrossEngineCheck;
  if (Cfg.Sim.Engine == SimEngine::Switch && !WantNative)
    return;
  (void)predecodedFor(Code, Cfg.Sim.Stats);
  if (WantNative && nativeTierSupported())
    (void)nativeFor(Code, Cfg.Sim.Stats, Cfg.Sim.NativeMiscompileProbe);
}

} // namespace

PathTestOutcome DifferentialTester::testPath(const ExplorationResult &R,
                                             std::size_t PathIdx) {
  // HarnessFaults (fuel exhaustion in campaign mode, injected crashes)
  // unwind past this point without a verdict; the campaign's
  // Containment event covers those paths instead.
  PathTestOutcome Out = testPathImpl(R, PathIdx);
  if (Cfg.Trace) {
    TraceEvent E;
    E.Kind = TraceEventKind::PathVerdict;
    E.Detail = pathTestStatusName(Out.Status);
    E.Aux = formatString("%s/%s", compilerKindName(Cfg.Kind), desc().Name);
    E.Value = PathIdx;
    Cfg.Trace->emit(std::move(E));
  }
  return Out;
}

PathTestOutcome DifferentialTester::testPathImpl(const ExplorationResult &R,
                                                 std::size_t PathIdx) {
  const PathSolution &P = R.Paths[PathIdx];
  const InstructionSpec &Spec = *R.Spec;
  PathTestOutcome Out;
  Out.InterpreterExit = P.Exit;

  auto Skip = [&](PathTestStatus S, const char *Why) {
    Out.Status = S;
    Out.Details = Why;
    return Out;
  };

  // One work unit per path; once the shared budget expires the rest of
  // the instruction's paths are skipped rather than half-tested.
  if (Cfg.ReplayBudget && !Cfg.ReplayBudget->charge())
    return Skip(PathTestStatus::BudgetSkipped,
                "replay budget expired before this path ran");

  if (!P.Curated)
    return Skip(PathTestStatus::NotReplayable, P.CurationNote.c_str());
  if (P.Exit == ExitKind::InvalidFrame)
    return Skip(PathTestStatus::ExpectedFailure,
                "invalid-frame exits grow the input, they are not tests");
  if (P.Exit == ExitKind::InvalidMemoryAccess) {
    if (Spec.Kind == InstructionKind::Bytecode)
      return Skip(PathTestStatus::ExpectedFailure,
                  "byte-codes are unsafe by design");
    // A safe native method must never reach an invalid access.
    Out.Status = PathTestStatus::Difference;
    Out.Family = DefectFamily::MissingInterpreterTypeCheck;
    Out.CauseKey = formatString("%s|%s", defectFamilyName(Out.Family),
                                Spec.Name.c_str());
    Out.Details = "interpreter reached an invalid memory access inside a "
                  "safe native method";
    return Out;
  }

  // Step 1: re-create the concrete input frame from the constraints.
  // Pooled mode reuses the arena's heap, rolled back to pristine;
  // otherwise a throwaway heap is built — and zero-filled — for this
  // path alone.
  std::optional<ObjectMemory> FreshMem;
  ObjectMemory *MemPtr;
  if (Cfg.Arena) {
    MemPtr = &Cfg.Arena->acquireHeap(Cfg.Replay);
  } else {
    FreshMem.emplace(ReplayArena::HeapBytes);
    if (Cfg.Replay) {
      ++Cfg.Replay->HeapFreshBuilds;
      Cfg.Replay->HeapBytesRebuilt += ReplayArena::HeapBytes;
    }
    MemPtr = &*FreshMem;
  }
  ObjectMemory &Mem = *MemPtr;
  FrameMaterializer Materializer(Mem, *R.Builder);
  MaterializedFrame MF = Materializer.materialize(P.InputModel, *R.Method);

  // Step 2: compile with the compiler under test, through the
  // compile-once cache when one is wired. An armed front-end fault
  // bypasses the cache entirely so the injected throw fires on every
  // path, not only the first uncached one.
  JitCodeCache *CodeCache =
      Cfg.Cogit.InjectFrontEndThrow ? nullptr : Cfg.CodeCache;
  auto EmitCacheLookup = [&](const char *What) {
    if (!Cfg.Trace)
      return;
    TraceEvent E;
    E.Kind = TraceEventKind::CacheLookup;
    E.Detail = What;
    Cfg.Trace->emit(std::move(E));
  };
  // Replays the cogit's Compile event for a cache-served compile, with
  // identical fields, so deterministic traces cannot tell a hit from a
  // fresh compile (CacheLookup diagnostics are filtered from them).
  auto EmitCompile = [&](const char *Unit, std::size_t Bytes) {
    if (!Cfg.Trace)
      return;
    TraceEvent E;
    E.Kind = TraceEventKind::Compile;
    E.Detail = compilerKindName(Cfg.Kind);
    E.Aux = Unit;
    E.Value = Bytes;
    Cfg.Trace->emit(std::move(E));
  };

  CompiledCode Code;
  unsigned PrimNumArgs = 0;
  if (Spec.Kind == InstructionKind::NativeMethod) {
    if (Cfg.Kind != CompilerKind::NativeMethod)
      return Skip(PathTestStatus::NotReplayable,
                  "byte-code compilers do not compile native methods");
    const PrimitiveInfo *Info = primitiveInfo(Spec.PrimitiveIndex);
    PrimNumArgs = Info->NumArgs;
    if (MF.Concrete.Stack.size() < PrimNumArgs + 1u)
      return Skip(PathTestStatus::NotReplayable,
                  "input stack too shallow for the calling convention");
    JitCodeCache::Key Key;
    const CompiledCode *Hit = nullptr;
    if (CodeCache) {
      Key = codeCacheKey(Cfg.Kind, Cfg.UseArmBackend, Cfg.Cogit,
                         Spec.PrimitiveIndex);
      Hit = CodeCache->lookup(Key);
      EmitCacheLookup(Hit ? "code-hit" : "code-miss");
    }
    if (Hit) {
      if (Cfg.JitStats)
        ++Cfg.JitStats->CodeCacheHits;
      Code = *Hit;
      EmitCompile("native-method", Code.Code.size());
    } else {
      if (Cfg.JitStats)
        ++Cfg.JitStats->Compiles;
      NativeMethodCogit Cogit(Mem, desc(), Cfg.Cogit);
      Code = Cogit.compile(Spec.PrimitiveIndex);
      warmEngineForms(Cfg, Code);
      if (CodeCache)
        CodeCache->store(Key, Code);
    }
  } else {
    if (Cfg.Kind == CompilerKind::NativeMethod)
      return Skip(PathTestStatus::NotReplayable,
                  "the native-method compiler does not compile byte-codes");
    JitCodeCache::Key Key;
    const CompiledCode *Hit = nullptr;
    if (CodeCache) {
      Key = codeCacheKey(Cfg.Kind, Cfg.UseArmBackend, Cfg.Cogit, *R.Method,
                         MF.Concrete.Stack, R.IsSequence);
      Hit = CodeCache->lookup(Key);
      EmitCacheLookup(Hit ? "code-hit" : "code-miss");
    }
    if (Hit) {
      if (Cfg.JitStats)
        ++Cfg.JitStats->CodeCacheHits;
      Code = *Hit;
      EmitCompile(R.IsSequence ? "method" : "bytecode", Code.Code.size());
    } else {
      if (Cfg.JitStats)
        ++Cfg.JitStats->Compiles;
      BytecodeCogit Cogit(Cfg.Kind, Mem, desc(), Cfg.Cogit);
      auto Compiled = R.IsSequence
                          ? Cogit.compileMethod(*R.Method, MF.Concrete.Stack)
                          : Cogit.compile(*R.Method, MF.Concrete.Stack);
      if (!Compiled)
        return Skip(PathTestStatus::NotReplayable,
                    "instruction underflows the replayed operand stack");
      Code = *Compiled;
      warmEngineForms(Cfg, Code);
      if (CodeCache)
        CodeCache->store(Key, Code);
    }
  }

  // Step 3 (prep): predict the outputs BEFORE executing anything.
  OutputEvaluator Evaluator(P.InputModel, MF.Bindings, Mem, P.SlotStores);

  ExpectedValue ExpectedResult;
  if (P.Exit == ExitKind::MethodReturn ||
      (P.Exit == ExitKind::Success &&
       Spec.Kind == InstructionKind::NativeMethod))
    ExpectedResult = Evaluator.evalObj(P.Result.S);

  std::vector<ExpectedValue> ExpectedStack;
  std::vector<ExpectedValue> ExpectedLocals;
  if (P.Exit == ExitKind::Success &&
      Spec.Kind == InstructionKind::Bytecode) {
    for (const ConcolicValue &V : P.Output.Stack)
      ExpectedStack.push_back(Evaluator.evalObj(V.S));
    for (const ConcolicValue &V : P.Output.Locals)
      ExpectedLocals.push_back(Evaluator.evalObj(V.S));
  }

  std::vector<ExpectedValue> ExpectedSendOperands;
  if (P.Exit == ExitKind::MessageSend) {
    std::size_t Count = std::min<std::size_t>(P.SendNumArgs + 1u,
                                              P.Output.Stack.size());
    for (std::size_t I = P.Output.Stack.size() - Count;
         I < P.Output.Stack.size(); ++I)
      ExpectedSendOperands.push_back(Evaluator.evalObj(P.Output.Stack[I].S));
  }

  // Predicted side effects on input objects.
  struct SlotExpectation {
    Oop Target;
    std::int64_t Index;
    ExpectedValue Value;
  };
  std::vector<SlotExpectation> ExpectedSlots;
  for (const SlotStoreEffect &E : P.SlotStores) {
    if (!E.Object->isVar())
      continue; // stores into fresh allocations are matched structurally
    auto Target = Evaluator.oracle().bindingOf(E.Object);
    if (!Target)
      continue;
    ExpectedSlots.push_back({*Target, E.Index, Evaluator.evalObj(E.Value.S)});
  }

  std::vector<ExpectedBytes> ExpectedByteStores;
  for (const ByteStoreEffect &E : P.ByteStores) {
    if (!E.Object->isVar())
      continue;
    ExpectedBytes EB;
    auto Target = Evaluator.oracle().bindingOf(E.Object);
    if (!Target)
      continue;
    EB.Target = *Target;
    EB.Offset = E.Offset;
    std::uint64_t Raw = 0;
    if (E.IsFloat) {
      auto F = Evaluator.evalFloat(E.FloatValue.S);
      if (!F)
        continue;
      if (E.Width == 4) {
        auto Narrow = static_cast<float>(*F);
        std::uint32_t Bits;
        __builtin_memcpy(&Bits, &Narrow, 4);
        Raw = Bits;
      } else {
        __builtin_memcpy(&Raw, &*F, 8);
      }
    } else {
      auto V = Evaluator.evalInt(E.IntValue.S);
      if (!V)
        continue;
      Raw = static_cast<std::uint64_t>(*V);
    }
    for (unsigned I = 0; I < E.Width; ++I)
      EB.Bytes.push_back(static_cast<std::uint8_t>(Raw >> (8 * I)));
    EB.Valid = true;
    ExpectedByteStores.push_back(std::move(EB));
  }

  // Expected continuation for jump byte-codes: the taken breakpoint when
  // the interpreter's PC moved beyond the fall-through continuation.
  std::uint16_t ExpectedMarker = MarkerFragmentEnd;
  if (!R.IsSequence && Spec.Kind == InstructionKind::Bytecode &&
      P.Exit == ExitKind::Success) {
    // Single-instruction mode: a taken branch stops at its own marker.
    // In sequence mode in-method jumps are real branches and a Success
    // always means the PC fell off the end (FragmentEnd).
    auto D = decodeBytecode(R.Method->Bytecodes, 0);
    if (D && (D->Op == Operation::Jump || D->Op == Operation::JumpTrue ||
              D->Op == Operation::JumpFalse) &&
        P.Output.PC != D->Length)
      ExpectedMarker = MarkerJumpTaken;
  }

  // Step 3: execute the compiled code on the concrete frame.
  auto SetUpFrame = [&](MachineSim &S) {
    if (Spec.Kind == InstructionKind::NativeMethod) {
      S.setReg(abi::ResultReg, MF.Concrete.stackValue(PrimNumArgs));
      static const MReg ArgRegs[3] = {abi::Arg0Reg, abi::Arg1Reg,
                                      abi::Arg2Reg};
      for (unsigned I = 0; I < PrimNumArgs && I < 3; ++I)
        S.setReg(ArgRegs[I], MF.Concrete.stackValue(PrimNumArgs - 1 - I));
    } else {
      S.setUpFrame(R.Method->numLocals());
      S.writeReceiver(MF.Concrete.Receiver);
      for (std::size_t I = 0; I < MF.Concrete.Locals.size(); ++I)
        S.writeLocal(static_cast<unsigned>(I), MF.Concrete.Locals[I]);
      // The operand stack is NOT pre-filled: the compiled preamble pushes
      // the inputs itself (paper Listing 3).
    }
  };

  // Cross-engine probe: run the same code and inputs through the native
  // tier on a marked heap first, snapshot everything observable, roll
  // the heap back, then compare against the authoritative run below.
  struct ProbeObservation {
    MachineExit Exit;
    std::uint64_t Regs[16];
    std::uint64_t FRegBits[8];
    std::vector<std::uint64_t> Stack;
    std::uint64_t StackHash = 0;
    std::uint64_t HeapHash = 0;
  };
  std::optional<ProbeObservation> Probe;
  if (Cfg.CrossEngineCheck) {
    HeapMark CheckMark = Mem.mark();
    {
      SimOptions ProbeOpts = Cfg.Sim;
      ProbeOpts.Engine = SimEngine::Native;
      // Fresh zero-filled stack (identical to a pool acquire) and no
      // trace: probe runs are an oracle detail, not replay events.
      ProbeOpts.StackPool = nullptr;
      ProbeOpts.Trace = nullptr;
      MachineSim ProbeSim(Mem, ProbeOpts);
      SetUpFrame(ProbeSim);
      ProbeObservation O;
      O.Exit = ProbeSim.run(Code);
      for (unsigned I = 0; I < 16; ++I)
        O.Regs[I] = ProbeSim.reg(static_cast<MReg>(I));
      for (unsigned I = 0; I < 8; ++I) {
        double D = ProbeSim.freg(static_cast<FReg>(I));
        std::memcpy(&O.FRegBits[I], &D, 8);
      }
      O.Stack = ProbeSim.operandStack();
      O.StackHash = ProbeSim.stackHash();
      O.HeapHash = Mem.contentHash();
      Probe = std::move(O);
    }
    Mem.resetTo(CheckMark);
  }

  std::uint64_t StackResetBefore =
      Cfg.Arena ? Cfg.Arena->stackPool().bytesReset() : 0;
  MachineSim Sim(Mem, Cfg.Sim);
  if (Cfg.Arena && Cfg.Replay)
    Cfg.Replay->StackBytesReset +=
        Cfg.Arena->stackPool().bytesReset() - StackResetBefore;
  std::size_t Watermark = Sim.heapWatermark();
  SetUpFrame(Sim);

  MachineExit ME = Sim.run(Code);
  Out.MachineExit = ME.Kind;

  if (Probe) {
    const MachineExit &PE = Probe->Exit;
    std::string Divergence;
    if (PE.Kind != ME.Kind)
      Divergence = formatString("exit %s vs %s", machExitKindName(PE.Kind),
                                machExitKindName(ME.Kind));
    else if (PE.Marker != ME.Marker || PE.Selector != ME.Selector ||
             PE.NumArgs != ME.NumArgs ||
             PE.FaultAddress != ME.FaultAddress ||
             PE.FuelLeft != ME.FuelLeft || PE.Note.str() != ME.Note.str())
      Divergence = formatString("exit detail mismatch on %s",
                                machExitKindName(ME.Kind));
    for (unsigned I = 0; I < 16 && Divergence.empty(); ++I)
      if (Probe->Regs[I] != Sim.reg(static_cast<MReg>(I)))
        Divergence = formatString(
            "r%u = %llx native vs %llx simulated", I,
            (unsigned long long)Probe->Regs[I],
            (unsigned long long)Sim.reg(static_cast<MReg>(I)));
    for (unsigned I = 0; I < 8 && Divergence.empty(); ++I) {
      double D = Sim.freg(static_cast<FReg>(I));
      std::uint64_t Bits;
      std::memcpy(&Bits, &D, 8);
      if (Probe->FRegBits[I] != Bits)
        Divergence = formatString("f%u bit pattern differs", I);
    }
    if (Divergence.empty() && Probe->Stack != Sim.operandStack())
      Divergence = "operand stack differs";
    if (Divergence.empty() && Probe->StackHash != Sim.stackHash())
      Divergence = "stack bytes differ";
    if (Divergence.empty() && Probe->HeapHash != Mem.contentHash())
      Divergence = "heap contents differ";
    if (!Divergence.empty()) {
      Out.Status = PathTestStatus::Difference;
      Out.Family = DefectFamily::CrossEngineDivergence;
      Out.CauseKey = formatString("%s|%s", defectFamilyName(Out.Family),
                                  Spec.Name.c_str());
      Out.Details =
          "native tier diverged from the simulator: " + Divergence;
      return Out;
    }
  }

  if (ME.Kind == MachExitKind::FuelExhausted &&
      Cfg.FuelExhaustionIsHarnessFault)
    // Scarce fuel is a harness condition, not evidence about the
    // compiler; surface it to the campaign's containment boundary.
    throw HarnessFault("simulate",
                       "simulator fuel exhausted while replaying '" +
                           Spec.Name + "'" +
                           (ME.Note.empty() ? "" : ": " + ME.Note.str()));

  auto Difference = [&](std::string Details) {
    Out.Status = PathTestStatus::Difference;
    Out.Family = classifyDifference(P.Exit, ME, P);
    Out.CauseKey = formatString("%s|%s", defectFamilyName(Out.Family),
                                Spec.Name.c_str());
    Out.Details = std::move(Details);
    if (!ME.Note.empty())
      Out.Details += " [" + ME.Note.str() + "]";
    return Out;
  };
  auto ExitName = [](const MachineExit &E) {
    std::string N = machExitKindName(E.Kind);
    if (E.Kind == MachExitKind::Breakpoint)
      N += formatString("(marker %u)", E.Marker);
    return N;
  };

  // Step 4: validate observable behaviour.
  std::string Why;
  switch (P.Exit) {
  case ExitKind::Success: {
    if (Spec.Kind == InstructionKind::NativeMethod) {
      if (ME.Kind != MachExitKind::Returned)
        return Difference(formatString(
            "interpreter succeeded, compiled code exited %s",
            ExitName(ME).c_str()));
      if (!Evaluator.matches(ExpectedResult, Sim.reg(abi::ResultReg), Mem,
                             Watermark, Why))
        return Difference("result mismatch: " + Why);
    } else {
      if (ME.Kind != MachExitKind::Breakpoint ||
          (ME.Marker != ExpectedMarker))
        return Difference(formatString(
            "interpreter succeeded (continuation %s), compiled code "
            "exited %s",
            ExpectedMarker == MarkerJumpTaken ? "taken" : "fall-through",
            ExitName(ME).c_str()));
      std::vector<Oop> Observed = readFinalStack(Code, Sim);
      if (Observed.size() != ExpectedStack.size())
        return Difference(formatString(
            "operand stack depth %zu, expected %zu", Observed.size(),
            ExpectedStack.size()));
      for (std::size_t I = 0; I < Observed.size(); ++I)
        if (!Evaluator.matches(ExpectedStack[I], Observed[I], Mem, Watermark,
                               Why))
          return Difference(
              formatString("operand stack entry %zu mismatch: %s", I,
                           Why.c_str()));
      for (std::size_t I = 0; I < ExpectedLocals.size(); ++I)
        if (!Evaluator.matches(ExpectedLocals[I],
                               Sim.readLocal(static_cast<unsigned>(I)), Mem,
                               Watermark, Why))
          return Difference(
              formatString("local %zu mismatch: %s", I, Why.c_str()));
    }
    break;
  }
  case ExitKind::PrimitiveFailure:
    if (ME.Kind != MachExitKind::Breakpoint ||
        (ME.Marker != MarkerPrimitiveFail &&
         ME.Marker != MarkerNotImplemented))
      return Difference(formatString(
          "interpreter failed the primitive, compiled code exited %s",
          ExitName(ME).c_str()));
    break;
  case ExitKind::MessageSend: {
    if (ME.Kind != MachExitKind::TrampolineCall)
      return Difference(formatString(
          "interpreter sent #%u, compiled code exited %s", P.Selector,
          ExitName(ME).c_str()));
    if (ME.Selector != P.Selector || ME.NumArgs != P.SendNumArgs)
      return Difference(formatString(
          "send mismatch: interpreter #%u/%u, compiled #%u/%u", P.Selector,
          P.SendNumArgs, ME.Selector, ME.NumArgs));
    OperandStackView MemStack = Sim.operandStackView();
    if (MemStack.size() < ExpectedSendOperands.size())
      return Difference("trampoline operands missing from the stack");
    std::size_t Base = MemStack.size() - ExpectedSendOperands.size();
    for (std::size_t I = 0; I < ExpectedSendOperands.size(); ++I)
      if (!Evaluator.matches(ExpectedSendOperands[I], MemStack[Base + I],
                             Mem, Watermark, Why))
        return Difference(formatString("send operand %zu mismatch: %s", I,
                                       Why.c_str()));
    break;
  }
  case ExitKind::MethodReturn:
    if (ME.Kind != MachExitKind::Returned)
      return Difference(formatString(
          "interpreter returned, compiled code exited %s",
          ExitName(ME).c_str()));
    if (!Evaluator.matches(ExpectedResult, Sim.reg(abi::ResultReg), Mem,
                           Watermark, Why))
      return Difference("returned value mismatch: " + Why);
    break;
  case ExitKind::InvalidFrame:
  case ExitKind::InvalidMemoryAccess:
    igdt_unreachable("handled above");
  }

  // Side effects on input objects.
  for (const SlotExpectation &E : ExpectedSlots) {
    auto Slot = Mem.fetchPointerSlot(E.Target,
                                     static_cast<std::uint32_t>(E.Index));
    if (!Slot)
      return Difference("stored-into slot vanished");
    if (!Evaluator.matches(E.Value, *Slot, Mem, Watermark, Why))
      return Difference(formatString("slot store %lld mismatch: %s",
                                     (long long)E.Index, Why.c_str()));
  }
  for (const ExpectedBytes &E : ExpectedByteStores) {
    for (std::size_t I = 0; I < E.Bytes.size(); ++I) {
      auto Byte = Mem.fetchByte(
          E.Target, static_cast<std::uint32_t>(E.Offset + std::int64_t(I)));
      if (!Byte || *Byte != E.Bytes[I])
        return Difference(formatString(
            "byte store at offset %lld mismatch",
            (long long)(E.Offset + std::int64_t(I))));
    }
  }

  Out.Status = PathTestStatus::Match;
  return Out;
}
