//===- differential/OutputEvaluator.cpp - Predicting instruction outputs -------===//

#include "differential/OutputEvaluator.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace igdt;

ExpectedValue OutputEvaluator::evalObj(const ObjTerm *T) const {
  switch (T->TermKind) {
  case ObjTerm::Kind::Var: {
    auto Bound = Oracle.bindingOf(T);
    if (!Bound)
      return ExpectedValue();
    return ExpectedValue::exact(*Bound);
  }
  case ObjTerm::Kind::Const:
    return ExpectedValue::exact(T->ConstValue);
  case ObjTerm::Kind::IntObj: {
    auto V = Eval.evalInt(T->IntPayload);
    if (!V || !fitsSmallInt(*V))
      return ExpectedValue();
    return ExpectedValue::exact(smallIntOop(*V));
  }
  case ObjTerm::Kind::FloatObj: {
    auto V = Eval.evalFloat(T->FloatPayload);
    if (!V)
      return ExpectedValue();
    return ExpectedValue::floatBox(*V);
  }
  case ObjTerm::Kind::NewObj:
    return ExpectedValue::alloc(T);
  }
  return ExpectedValue();
}

bool OutputEvaluator::matches(const ExpectedValue &Expected, Oop Observed,
                              const ObjectMemory &MachineHeap,
                              std::size_t Watermark, std::string &Why) const {
  switch (Expected.K) {
  case ExpectedValue::Kind::Unknown:
    Why += "unpredictable expected value; ";
    return false;
  case ExpectedValue::Kind::Exact:
    if (Observed == Expected.Value)
      return true;
    Why += formatString("expected %s, got %s; ",
                        MachineHeap.describe(Expected.Value).c_str(),
                        MachineHeap.describe(Observed).c_str());
    return false;
  case ExpectedValue::Kind::FloatBox: {
    auto V = MachineHeap.floatValueOf(Observed);
    if (!V) {
      Why += formatString("expected a float box %g, got %s; ",
                          Expected.FloatValue,
                          MachineHeap.describe(Observed).c_str());
      return false;
    }
    bool Same = (*V == Expected.FloatValue) ||
                (std::isnan(*V) && std::isnan(Expected.FloatValue));
    if (!Same)
      Why += formatString("expected float %g, got %g; ", Expected.FloatValue,
                          *V);
    return Same;
  }
  case ExpectedValue::Kind::Alloc: {
    const ObjTerm *T = Expected.AllocTerm;
    if (!MachineHeap.isHeapObject(Observed)) {
      Why += "expected a fresh allocation, got a non-object; ";
      return false;
    }
    if (Observed < ObjectMemory::HeapBase + Watermark) {
      Why += "expected a fresh allocation, got a pre-existing object; ";
      return false;
    }
    if (MachineHeap.classIndexOf(Observed) != T->AllocClass) {
      Why += formatString("fresh allocation has class %u, expected %u; ",
                          MachineHeap.classIndexOf(Observed), T->AllocClass);
      return false;
    }
    if (T->AllocSize) {
      auto Size = Eval.evalInt(T->AllocSize);
      if (Size && MachineHeap.formatOf(Observed) != ObjectFormat::Pointers &&
          std::int64_t(MachineHeap.slotCountOf(Observed)) != *Size) {
        Why += formatString("fresh allocation has %u elements, expected "
                            "%lld; ",
                            MachineHeap.slotCountOf(Observed),
                            (long long)*Size);
        return false;
      }
    }
    // Slot contents: recorded stores into this allocation, nil elsewhere.
    std::uint32_t Count = MachineHeap.slotCountOf(Observed);
    if (MachineHeap.formatOf(Observed) == ObjectFormat::IndexableBytes)
      return true; // byte allocations compared through byte effects
    for (std::uint32_t I = 0; I < Count; ++I) {
      ExpectedValue SlotExpected = ExpectedValue::exact(
          MachineHeap.nilObject());
      for (const SlotStoreEffect &E : SlotStores)
        if (E.Object == T && E.Index == std::int64_t(I))
          SlotExpected = evalObj(E.Value.S);
      Oop SlotObserved = *MachineHeap.fetchPointerSlot(Observed, I);
      if (!matches(SlotExpected, SlotObserved, MachineHeap, Watermark, Why)) {
        Why += formatString("(in slot %u of a fresh allocation) ", I);
        return false;
      }
    }
    return true;
  }
  }
  return false;
}
