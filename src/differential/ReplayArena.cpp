//===- differential/ReplayArena.cpp - Pooled per-worker replay state ------===//

#include "differential/ReplayArena.h"

#include "observe/MetricsRegistry.h"

using namespace igdt;

void igdt::foldReplayStats(MetricsRegistry &Registry,
                           const ReplayStats &Stats) {
  Registry.add("replay.heap.acquires", Stats.HeapAcquires);
  Registry.add("replay.heap.resets", Stats.HeapResets);
  Registry.add("replay.heap.bytes_reset", Stats.HeapBytesReset);
  Registry.add("replay.heap.fresh_builds", Stats.HeapFreshBuilds);
  Registry.add("replay.heap.bytes_rebuilt", Stats.HeapBytesRebuilt);
  Registry.add("replay.undo_stores", Stats.UndoStoresReplayed);
  Registry.add("replay.stack.bytes_reset", Stats.StackBytesReset);
}

ObjectMemory &ReplayArena::acquireHeap(ReplayStats *Stats) {
  if (Stats)
    ++Stats->HeapAcquires;
  if (Dirty) {
    std::size_t Released = Mem.usedBytes() - Baseline.NextFree;
    std::uint64_t UndoBefore = Mem.undoStoresReplayed();
    Mem.resetTo(Baseline);
    if (Stats) {
      ++Stats->HeapResets;
      Stats->HeapBytesReset += Released;
      Stats->UndoStoresReplayed += Mem.undoStoresReplayed() - UndoBefore;
    }
  }
  Dirty = true;
  return Mem;
}
