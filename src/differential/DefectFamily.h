//===- differential/DefectFamily.h - Defect taxonomy ---------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six defect families of the paper's Table 3 (§5.3), plus one
/// harness-grown family: cross-engine divergence, where the native
/// x86-64 tier disagrees with the simulator on the same path. The
/// classifier attributes every interpreter/compiler difference to one
/// family from the exit-condition pattern and the evidence in the
/// recorded path.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_DIFFERENTIAL_DEFECTFAMILY_H
#define IGDT_DIFFERENTIAL_DEFECTFAMILY_H

#include <cstdint>

namespace igdt {

/// Root-cause families (paper Table 3).
enum class DefectFamily : std::uint8_t {
  /// The interpreter executes a path on wrong conditions that the
  /// compiled code rejects (e.g. primitiveAsFloat's compiled-out assert).
  MissingInterpreterTypeCheck,
  /// Compiled code executes on wrong conditions that the interpreter
  /// rejects — typically ending in a segmentation fault.
  MissingCompiledTypeCheck,
  /// Both are correct, but one engine optimises a path the other sends
  /// (e.g. float arithmetic inlined by the interpreter only).
  OptimisationDifference,
  /// Observable behaviour differs while both "work" (e.g. bit-wise
  /// operations on negative operands).
  BehaviouralDifference,
  /// A feature the interpreter supports was never implemented in the
  /// compiler (fails with not-yet-implemented at run time).
  MissingFunctionality,
  /// A defect of the testing/simulation environment itself (missing
  /// reflective register accessors in fault recovery).
  SimulationError,
  /// The native execution tier and the simulator disagreed on the same
  /// compiled code and inputs (--cross-engine-check): a miscompilation
  /// or semantic gap in the x86-64 code generator, not in the VM under
  /// test.
  CrossEngineDivergence,
};

inline constexpr unsigned NumDefectFamilies = 7;

const char *defectFamilyName(DefectFamily Family);

} // namespace igdt

#endif // IGDT_DIFFERENTIAL_DEFECTFAMILY_H
