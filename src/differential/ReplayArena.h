//===- differential/ReplayArena.h - Pooled per-worker replay state --------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the mutable state one replay worker reuses from path to path: a
/// VM heap rolled back between paths via high-watermark reset plus an
/// undo journal (vm/ObjectMemory.h), and a pooled simulator stack
/// re-zeroed to its dirty watermark (jit/MachineSim.h). Replaying a
/// path used to build — and zero-fill — a fresh 1 MiB heap and a fresh
/// 64 KiB stack; with an arena the per-path cost is proportional to the
/// bytes the path actually touched.
///
/// The reset contract makes a pooled heap observably identical to a
/// fresh one (allocation sequence, identity hashes, class indices,
/// singleton bytes), so test outcomes are byte-identical with or
/// without an arena; ReplayArenaTest holds both claims.
///
/// Arenas are strictly worker-local, like the code cache: one per
/// campaign Jobs slot, one per Session, one per EvaluationHarness call.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_DIFFERENTIAL_REPLAYARENA_H
#define IGDT_DIFFERENTIAL_REPLAYARENA_H

#include "jit/MachineSim.h"
#include "vm/ObjectMemory.h"

#include <cstdint>

namespace igdt {

class MetricsRegistry;

/// Arena/reset counters ("replay.*" metrics). Deterministic for a fixed
/// configuration, but they describe how the harness ran rather than
/// what the code under test did, so — like the code-cache counters —
/// they never enter campaign records or checkpoints.
struct ReplayStats {
  std::uint64_t HeapAcquires = 0;     ///< pooled-heap handouts
  std::uint64_t HeapResets = 0;       ///< handouts that rolled back state
  std::uint64_t HeapBytesReset = 0;   ///< bytes released by rollbacks
  std::uint64_t HeapFreshBuilds = 0;  ///< throwaway heaps built (arena off)
  std::uint64_t HeapBytesRebuilt = 0; ///< bytes zero-filled by those builds
  std::uint64_t UndoStoresReplayed = 0; ///< journalled stores undone
  std::uint64_t StackBytesReset = 0;  ///< pooled stack bytes re-zeroed
  void add(const ReplayStats &O) {
    HeapAcquires += O.HeapAcquires;
    HeapResets += O.HeapResets;
    HeapBytesReset += O.HeapBytesReset;
    HeapFreshBuilds += O.HeapFreshBuilds;
    HeapBytesRebuilt += O.HeapBytesRebuilt;
    UndoStoresReplayed += O.UndoStoresReplayed;
    StackBytesReset += O.StackBytesReset;
  }
};

/// Publishes \p Stats into \p Registry under "replay.*".
void foldReplayStats(MetricsRegistry &Registry, const ReplayStats &Stats);

/// Pooled replay state for one worker. Not thread-safe.
class ReplayArena {
public:
  /// Same size as the throwaway heap the tester historically built per
  /// path, so pooled and fresh replays see identical heap capacity.
  static constexpr std::size_t HeapBytes = 1024 * 1024;

  ReplayArena() : Mem(HeapBytes), Baseline(Mem.mark()) {}
  ReplayArena(const ReplayArena &) = delete;
  ReplayArena &operator=(const ReplayArena &) = delete;

  /// The pooled heap, rolled back to its pristine (fresh-construction)
  /// state. Rollback counters land in \p Stats when non-null.
  ObjectMemory &acquireHeap(ReplayStats *Stats);

  /// The pooled simulator stack, wired into SimOptions::StackPool.
  SimStackPool &stackPool() { return Stack; }

private:
  ObjectMemory Mem;
  HeapMark Baseline;
  SimStackPool Stack;
  bool Dirty = false;
};

} // namespace igdt

#endif // IGDT_DIFFERENTIAL_REPLAYARENA_H
