//===- differential/OutputOracle.h - Materialisation-backed leaf oracle --------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves the term leaves whose value depends on the concrete
/// materialisation: blind untags of pointers (missing-check paths),
/// identity hashes, and byte contents of materialised objects. Used by
/// the differential tester to predict instruction outputs *before* the
/// compiled code runs (side effects must not contaminate predictions).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_DIFFERENTIAL_OUTPUTORACLE_H
#define IGDT_DIFFERENTIAL_OUTPUTORACLE_H

#include "solver/TermEval.h"
#include "vm/ObjectMemory.h"

#include <map>

namespace igdt {

/// LeafOracle over a variable->Oop binding and the heap it lives in.
class OutputOracle : public LeafOracle {
public:
  OutputOracle(const Model &M, const std::map<const ObjTerm *, Oop> &Bindings,
               const ObjectMemory &Heap)
      : M(M), Bindings(Bindings), Heap(Heap) {}

  std::optional<Oop> bindingOf(const ObjTerm *Var) const {
    auto It = Bindings.find(M.repOf(Var));
    if (It != Bindings.end())
      return It->second;
    // Unconstrained slot variables are not materialised explicitly; their
    // value is whatever the parent object holds (nil by construction).
    // Predictions are taken before the machine run, so this read sees the
    // pristine input state.
    if (Var->isVar() && Var->Role == VarRole::SlotOf && Var->Parent) {
      auto Parent = bindingOf(Var->Parent);
      if (!Parent)
        return std::nullopt;
      auto Slot = Heap.fetchPointerSlot(
          *Parent, static_cast<std::uint32_t>(Var->Index));
      if (Slot)
        return *Slot;
    }
    return std::nullopt;
  }

  std::optional<std::int64_t> intLeaf(const IntTerm *Leaf) override {
    auto Obj = Leaf->Obj ? bindingOf(Leaf->Obj) : std::nullopt;
    switch (Leaf->TermKind) {
    case IntTerm::Kind::UncheckedValueOf:
      if (!Obj)
        return std::nullopt;
      return smallIntValueUnchecked(*Obj);
    case IntTerm::Kind::IdentityHash:
      if (!Obj)
        return std::nullopt;
      return Heap.identityHashOf(*Obj);
    case IntTerm::Kind::ByteAt: {
      if (!Obj)
        return std::nullopt;
      auto Byte =
          Heap.fetchByte(*Obj, static_cast<std::uint32_t>(Leaf->Aux));
      if (!Byte)
        return std::nullopt;
      return *Byte;
    }
    case IntTerm::Kind::LoadLE: {
      if (!Obj)
        return std::nullopt;
      std::uint64_t Raw = 0;
      for (unsigned I = 0; I < Leaf->Width; ++I) {
        auto Byte = Heap.fetchByte(
            *Obj, static_cast<std::uint32_t>(Leaf->Aux) + I);
        if (!Byte)
          return std::nullopt;
        Raw |= std::uint64_t(*Byte) << (8 * I);
      }
      if (Leaf->SignExtend && Leaf->Width < 8) {
        std::uint64_t SignBit = 1ull << (8 * Leaf->Width - 1);
        if (Raw & SignBit)
          Raw |= ~((SignBit << 1) - 1);
      }
      return static_cast<std::int64_t>(Raw);
    }
    default:
      return std::nullopt;
    }
  }

  std::optional<double> floatLeaf(const FloatTerm *Leaf) override {
    auto Obj = Leaf->Obj ? bindingOf(Leaf->Obj) : std::nullopt;
    switch (Leaf->TermKind) {
    case FloatTerm::Kind::UncheckedValueOf:
      if (!Obj)
        return std::nullopt;
      return Heap.unsafeFloatValueAt(*Obj);
    case FloatTerm::Kind::LoadF64: {
      if (!Obj)
        return std::nullopt;
      std::uint64_t Raw = 0;
      for (unsigned I = 0; I < 8; ++I) {
        auto Byte = Heap.fetchByte(
            *Obj, static_cast<std::uint32_t>(Leaf->Aux) + I);
        if (!Byte)
          return std::nullopt;
        Raw |= std::uint64_t(*Byte) << (8 * I);
      }
      double D;
      __builtin_memcpy(&D, &Raw, 8);
      return D;
    }
    case FloatTerm::Kind::LoadF32: {
      if (!Obj)
        return std::nullopt;
      std::uint32_t Raw = 0;
      for (unsigned I = 0; I < 4; ++I) {
        auto Byte = Heap.fetchByte(
            *Obj, static_cast<std::uint32_t>(Leaf->Aux) + I);
        if (!Byte)
          return std::nullopt;
        Raw |= std::uint32_t(*Byte) << (8 * I);
      }
      float Narrow;
      __builtin_memcpy(&Narrow, &Raw, 4);
      return static_cast<double>(Narrow);
    }
    case FloatTerm::Kind::ValueOf: {
      // Prefer the materialised payload over the model (the model may
      // not constrain this variable at all).
      if (!Obj)
        return std::nullopt;
      auto F = Heap.floatValueOf(*Obj);
      if (F)
        return *F;
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }

private:
  const Model &M;
  const std::map<const ObjTerm *, Oop> &Bindings;
  const ObjectMemory &Heap;
};

} // namespace igdt

#endif // IGDT_DIFFERENTIAL_OUTPUTORACLE_H
