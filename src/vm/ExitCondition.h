//===- vm/ExitCondition.h - Instruction exit conditions ---------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exit conditions tracked by the execution model (paper §3.4). An
/// instruction's exit status models how its execution finished and is the
/// first observable the differential tester compares between interpreted
/// and compiled code.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_EXITCONDITION_H
#define IGDT_VM_EXITCONDITION_H

#include "vm/SelectorTable.h"

#include <cstdint>

namespace igdt {

/// How a VM instruction execution finished (paper §3.4).
enum class ExitKind : std::uint8_t {
  /// Correct execution until the end (byte-codes) or a return to the
  /// caller (native methods).
  Success,
  /// A safe native method rejected its operands; execution falls back to
  /// the user-defined byte-code body.
  PrimitiveFailure,
  /// The instruction attempts to activate a message send (slow paths of
  /// optimised byte-codes, send byte-codes, mustBeBoolean).
  MessageSend,
  /// The instruction attempts to return to the caller.
  MethodReturn,
  /// Access to a non-existing operand-stack value. An expected failure
  /// telling the concolic engine to grow the input frame.
  InvalidFrame,
  /// Out-of-bounds or wrongly-typed object access. Expected for unsafe
  /// byte-codes; an error for safe native methods.
  InvalidMemoryAccess,
};

/// Printable name of \p Kind.
const char *exitKindName(ExitKind Kind);

/// Result of executing one VM instruction in domain \p V.
template <typename V> struct StepResult {
  ExitKind Kind = ExitKind::Success;
  /// Selector of the attempted send (MessageSend exits only).
  SelectorId Selector = 0;
  /// Argument count of the attempted send.
  std::uint8_t SendNumArgs = 0;
  /// Returned value (MethodReturn) or primitive result (Success exits of
  /// native methods).
  V Result{};

  static StepResult success() { return StepResult{}; }
  static StepResult successWith(V Value) {
    StepResult R;
    R.Result = Value;
    return R;
  }
  static StepResult failure() {
    StepResult R;
    R.Kind = ExitKind::PrimitiveFailure;
    return R;
  }
  static StepResult send(SelectorId Sel, std::uint8_t NumArgs) {
    StepResult R;
    R.Kind = ExitKind::MessageSend;
    R.Selector = Sel;
    R.SendNumArgs = NumArgs;
    return R;
  }
  static StepResult methodReturn(V Value) {
    StepResult R;
    R.Kind = ExitKind::MethodReturn;
    R.Result = Value;
    return R;
  }
  static StepResult invalidFrame() {
    StepResult R;
    R.Kind = ExitKind::InvalidFrame;
    return R;
  }
  static StepResult invalidMemoryAccess() {
    StepResult R;
    R.Kind = ExitKind::InvalidMemoryAccess;
    return R;
  }
};

} // namespace igdt

#endif // IGDT_VM_EXITCONDITION_H
