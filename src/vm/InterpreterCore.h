//===- vm/InterpreterCore.h - The QVM interpreter (executable spec) --------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QVM byte-code interpreter and native-method implementations,
/// written once against an abstract value domain \p D (see
/// vm/ConcreteDomain.h for the concept). Instantiated with ConcreteDomain
/// this is the plain interpreter; instantiated with ConcolicDomain it is
/// the concolic meta-interpreter of the paper: every domain predicate
/// records a path constraint, so executing an instruction yields both its
/// concrete effect and the symbolic path condition (paper §2.3, §3).
///
/// Semantics notes mirroring the Pharo VM the paper studies:
///  - byte-codes are unsafe: operand-stack underflow exits InvalidFrame,
///    bad object accesses exit InvalidMemoryAccess (both are *expected*
///    failures for byte-codes, paper §3.4);
///  - the sixteen arithmetic byte-codes use static type prediction and
///    fall back to a message send when the receiver/argument types do not
///    match (paper Listing 1);
///  - native methods are safe: they validate operands and exit
///    PrimitiveFailure, except where a defect seed reproduces a published
///    Pharo bug (VMConfig).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_INTERPRETERCORE_H
#define IGDT_VM_INTERPRETERCORE_H

#include "support/Compiler.h"
#include "vm/Bytecodes.h"
#include "vm/ExitCondition.h"
#include "vm/Frame.h"
#include "vm/ObjectMemory.h"
#include "vm/PrimitiveTable.h"
#include "vm/VMConfig.h"

namespace igdt {

/// Maximum element count accepted by the allocation primitives.
inline constexpr std::int64_t MaxPrimitiveAllocation = 1024;

/// The interpreter engine over domain \p D.
template <typename D> class InterpreterCore {
public:
  using Value = typename D::Value;
  using IntV = typename D::IntV;
  using FltV = typename D::FltV;
  using Frame = FrameT<Value>;
  using Result = StepResult<Value>;

  InterpreterCore(D &Domain, ObjectMemory &Memory)
      : Dom(Domain), Mem(Memory), Cfg(Domain.config()) {}

  /// Executes the single VM instruction a frame's method denotes: the
  /// native method if the method declares one, else the byte-code at PC.
  Result stepInstruction(Frame &F) {
    assert(F.Method && "frame without method");
    if (F.Method->PrimitiveIndex >= 0)
      return runPrimitive(F.Method->PrimitiveIndex, F);
    return stepBytecode(F);
  }

  /// Executes the byte-code at F.PC. On Success the PC has advanced.
  Result stepBytecode(Frame &F);

  /// Executes native method \p Index against the operand stack of \p F
  /// (receiver below the arguments). On Success, receiver and arguments
  /// have been replaced by the result; on PrimitiveFailure the stack is
  /// untouched so the byte-code fallback may run.
  Result runPrimitive(std::int32_t Index, Frame &F);

  /// Runs byte-codes until a non-Success exit (demo/test helper). Returns
  /// that exit; at most \p MaxSteps are executed (then InvalidFrame).
  Result runToReturn(Frame &F, unsigned MaxSteps = 10000) {
    for (unsigned I = 0; I < MaxSteps; ++I) {
      Result R = stepBytecode(F);
      if (R.Kind != ExitKind::Success)
        return R;
    }
    return Result::invalidFrame();
  }

  /// Executes a byte-code *sequence*: steps until a non-Success exit or
  /// until the PC falls off the end of the method (which is a Success —
  /// the fragment completed). This powers the sequence-testing extension
  /// the paper lists as future work.
  Result runFragment(Frame &F, unsigned MaxSteps = 256) {
    while (F.PC < F.Method->Bytecodes.size()) {
      if (MaxSteps-- == 0)
        return Result::invalidFrame(); // runaway loop in the fragment
      Result R = stepBytecode(F);
      if (R.Kind != ExitKind::Success)
        return R;
    }
    return Result::success();
  }

private:
  /// Records the operand-stack depth check (paper Fig. 2: the
  /// operand_stack_size constraints).
  bool ensureStackDepth(Frame &F, std::uint32_t Needed) {
    return Dom.checkStackDepth(F.Stack.size(), Needed);
  }

  Result execArithmetic(Frame &F, ArithOp Op);
  Result execJumpFalse(Frame &F, std::uint32_t Target);
  Result execJumpTrue(Frame &F, std::uint32_t Target);

  /// Sends \p Op's special selector: the slow path of the type-predicted
  /// arithmetic byte-codes.
  Result arithSend(ArithOp Op) {
    return Result::send(arithSelector(Op), 1);
  }

  // Native method families.
  Result primIntegerBinary(std::int32_t Index, Frame &F);
  Result primIntegerUnary(std::int32_t Index, Frame &F);
  Result primFloatBinary(std::int32_t Index, Frame &F);
  Result primFloatUnary(std::int32_t Index, Frame &F);
  Result primObjectFamily(std::int32_t Index, Frame &F);
  Result primFFIFamily(std::int32_t Index, Frame &F);

  D &Dom;
  ObjectMemory &Mem;
  const VMConfig &Cfg;
};

//===----------------------------------------------------------------------===//
// Byte-code execution
//===----------------------------------------------------------------------===//

template <typename D>
typename InterpreterCore<D>::Result InterpreterCore<D>::stepBytecode(Frame &F) {
  const CompiledMethod &M = *F.Method;
  auto Decoded = decodeBytecode(M.Bytecodes, F.PC);
  if (!Decoded)
    return Result::invalidFrame();
  std::uint32_t NextPC = F.PC + Decoded->Length;

  auto Advance = [&]() -> Result {
    F.PC = NextPC;
    return Result::success();
  };

  switch (Decoded->Op) {
  case Operation::PushLocal: {
    if (static_cast<std::uint32_t>(Decoded->A) >= F.Locals.size())
      return Result::invalidFrame();
    F.push(F.Locals[Decoded->A]);
    return Advance();
  }
  case Operation::PushLiteral: {
    if (static_cast<std::size_t>(Decoded->A) >= M.Literals.size())
      return Result::invalidFrame();
    F.push(Dom.literalValue(M.Literals[Decoded->A]));
    return Advance();
  }
  case Operation::PushInstVar: {
    // Unsafe by design: a wrongly-typed receiver or an out-of-bounds slot
    // is an InvalidMemoryAccess (expected failure for byte-codes).
    if (!Dom.isPointersObject(F.Receiver))
      return Result::invalidMemoryAccess();
    if (!Dom.lessI(Dom.intConst(Decoded->A), Dom.slotCountOf(F.Receiver)))
      return Result::invalidMemoryAccess();
    F.push(Dom.fetchSlot(F.Receiver, Dom.intConst(Decoded->A)));
    return Advance();
  }
  case Operation::PushConstant: {
    switch (Decoded->A) {
    case 0:
      F.push(Dom.nilValue());
      break;
    case 1:
      F.push(Dom.trueValue());
      break;
    case 2:
      F.push(Dom.falseValue());
      break;
    case 3:
      F.push(Dom.literalValue(smallIntOop(0)));
      break;
    case 4:
      F.push(Dom.literalValue(smallIntOop(1)));
      break;
    case 5:
      F.push(Dom.literalValue(smallIntOop(2)));
      break;
    case 6:
      F.push(Dom.literalValue(smallIntOop(-1)));
      break;
    default:
      return Result::invalidFrame();
    }
    return Advance();
  }
  case Operation::PushReceiver:
    F.push(F.Receiver);
    return Advance();
  case Operation::StoreLocal: {
    if (static_cast<std::uint32_t>(Decoded->A) >= F.Locals.size())
      return Result::invalidFrame();
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    F.Locals[Decoded->A] = F.pop();
    return Advance();
  }
  case Operation::StoreInstVar: {
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    if (!Dom.isPointersObject(F.Receiver))
      return Result::invalidMemoryAccess();
    if (!Dom.lessI(Dom.intConst(Decoded->A), Dom.slotCountOf(F.Receiver)))
      return Result::invalidMemoryAccess();
    Value V = F.pop();
    Dom.storeSlot(F.Receiver, Dom.intConst(Decoded->A), V);
    return Advance();
  }
  case Operation::Pop:
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    F.pop();
    return Advance();
  case Operation::Dup:
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    F.push(F.stackValue(0));
    return Advance();
  case Operation::Arithmetic: {
    Result R = execArithmetic(F, static_cast<ArithOp>(Decoded->A));
    if (R.Kind == ExitKind::Success)
      F.PC = NextPC;
    return R;
  }
  case Operation::IdentityEquals: {
    if (!ensureStackDepth(F, 2))
      return Result::invalidFrame();
    Value Arg = F.pop();
    Value Rcvr = F.pop();
    F.push(Dom.booleanValue(Dom.sameObjectAs(Rcvr, Arg)));
    return Advance();
  }
  case Operation::Jump: {
    std::int64_t Target = std::int64_t(NextPC) + Decoded->A;
    if (Target < 0 || Target > std::int64_t(M.Bytecodes.size()))
      return Result::invalidFrame();
    F.PC = static_cast<std::uint32_t>(Target);
    return Result::success();
  }
  case Operation::JumpTrue:
  case Operation::JumpFalse: {
    std::int64_t Target = std::int64_t(NextPC) + Decoded->A;
    if (Target < 0 || Target > std::int64_t(M.Bytecodes.size()))
      return Result::invalidFrame();
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    F.PC = NextPC; // conditional jumps advance first, then retarget
    if (Decoded->Op == Operation::JumpFalse)
      return execJumpFalse(F, static_cast<std::uint32_t>(Target));
    return execJumpTrue(F, static_cast<std::uint32_t>(Target));
  }
  case Operation::Send: {
    if (static_cast<std::size_t>(Decoded->A) >= M.Literals.size())
      return Result::invalidFrame();
    Oop SelectorLit = M.Literals[Decoded->A];
    if (!isSmallIntOop(SelectorLit))
      return Result::invalidFrame();
    auto NumArgs = static_cast<std::uint8_t>(Decoded->B);
    if (!ensureStackDepth(F, NumArgs + 1u))
      return Result::invalidFrame();
    return Result::send(
        static_cast<SelectorId>(smallIntValue(SelectorLit)), NumArgs);
  }
  case Operation::ReturnTop: {
    if (!ensureStackDepth(F, 1))
      return Result::invalidFrame();
    return Result::methodReturn(F.pop());
  }
  case Operation::ReturnReceiver:
    return Result::methodReturn(F.Receiver);
  case Operation::ReturnConstant:
    switch (Decoded->A) {
    case 0:
      return Result::methodReturn(Dom.nilValue());
    case 1:
      return Result::methodReturn(Dom.trueValue());
    case 2:
      return Result::methodReturn(Dom.falseValue());
    default:
      return Result::invalidFrame();
    }
  }
  igdt_unreachable("unhandled operation");
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::execJumpFalse(Frame &F, std::uint32_t Target) {
  Value Cond = F.pop();
  if (Dom.isTrueObject(Cond))
    return Result::success(); // fall through
  if (Dom.isFalseObject(Cond)) {
    F.PC = Target;
    return Result::success();
  }
  // Non-boolean condition: the Pharo interpreter re-pushes the value and
  // sends #mustBeBoolean to it.
  F.push(Cond);
  return Result::send(SelectorMustBeBoolean, 0);
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::execJumpTrue(Frame &F, std::uint32_t Target) {
  Value Cond = F.pop();
  if (Dom.isFalseObject(Cond))
    return Result::success(); // fall through
  if (Dom.isTrueObject(Cond)) {
    F.PC = Target;
    return Result::success();
  }
  F.push(Cond);
  return Result::send(SelectorMustBeBoolean, 0);
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::execArithmetic(Frame &F, ArithOp Op) {
  if (!ensureStackDepth(F, 2))
    return Result::invalidFrame();
  Value Rcvr = F.stackValue(1);
  Value Arg = F.stackValue(0);

  auto PushInt = [&](IntV V) -> Result {
    F.popN(2);
    F.push(Dom.integerObjectOf(V));
    return Result::success();
  };
  auto PushFloat = [&](FltV V) -> Result {
    F.popN(2);
    F.push(Dom.floatObjectOf(V));
    return Result::success();
  };
  auto PushBool = [&](bool B) -> Result {
    F.popN(2);
    F.push(Dom.booleanValue(B));
    return Result::success();
  };

  // Static type prediction, integer case first (paper Listing 1).
  if (Dom.isSmallInteger(Rcvr) && Dom.isSmallInteger(Arg)) {
    IntV R = Dom.integerValueOf(Rcvr);
    IntV A = Dom.integerValueOf(Arg);
    switch (Op) {
    case ArithOp::Add: {
      IntV Sum = Dom.addI(R, A);
      if (Dom.isIntegerValue(Sum))
        return PushInt(Sum);
      return arithSend(Op); // overflow: slow-path send
    }
    case ArithOp::Sub: {
      IntV Diff = Dom.subI(R, A);
      if (Dom.isIntegerValue(Diff))
        return PushInt(Diff);
      return arithSend(Op);
    }
    case ArithOp::Mul: {
      IntV Product = Dom.mulI(R, A);
      if (Dom.isIntegerValue(Product))
        return PushInt(Product);
      return arithSend(Op);
    }
    case ArithOp::Div: {
      // "/" succeeds only on exact division by a non-zero argument.
      if (Dom.equalI(A, Dom.intConst(0)))
        return arithSend(Op);
      if (!Dom.equalI(Dom.modFloorI(R, A), Dom.intConst(0)))
        return arithSend(Op);
      IntV Quotient = Dom.quoI(R, A);
      if (!Dom.isIntegerValue(Quotient))
        return arithSend(Op); // MinSmallInt / -1
      return PushInt(Quotient);
    }
    case ArithOp::FloorDiv: {
      if (Dom.equalI(A, Dom.intConst(0)))
        return arithSend(Op);
      IntV Quotient = Dom.divFloorI(R, A);
      if (!Dom.isIntegerValue(Quotient))
        return arithSend(Op);
      return PushInt(Quotient);
    }
    case ArithOp::Mod: {
      if (Dom.equalI(A, Dom.intConst(0)))
        return arithSend(Op);
      return PushInt(Dom.modFloorI(R, A));
    }
    case ArithOp::Less:
      return PushBool(Dom.lessI(R, A));
    case ArithOp::Greater:
      return PushBool(Dom.lessI(A, R));
    case ArithOp::LessEq:
      return PushBool(Dom.lessEqI(R, A));
    case ArithOp::GreaterEq:
      return PushBool(Dom.lessEqI(A, R));
    case ArithOp::Equal:
      return PushBool(Dom.equalI(R, A));
    case ArithOp::NotEqual:
      return PushBool(!Dom.equalI(R, A));
    case ArithOp::BitAnd:
    case ArithOp::BitOr:
    case ArithOp::BitXor: {
      // Defect seed (paper §5.3 "Behavioral difference"): the interpreter
      // falls back to library code on negative operands.
      if (Cfg.SeedBitOpsFailOnNegative) {
        if (Dom.lessI(R, Dom.intConst(0)) || Dom.lessI(A, Dom.intConst(0)))
          return arithSend(Op);
      }
      if (Op == ArithOp::BitAnd)
        return PushInt(Dom.bitAndI(R, A));
      if (Op == ArithOp::BitOr)
        return PushInt(Dom.bitOrI(R, A));
      return PushInt(Dom.bitXorI(R, A));
    }
    case ArithOp::BitShift: {
      if (Cfg.SeedBitOpsFailOnNegative &&
          Dom.lessI(R, Dom.intConst(0)))
        return arithSend(Op);
      if (Dom.lessEqI(Dom.intConst(0), A)) {
        if (!Dom.lessEqI(A, Dom.intConst(SmallIntBits)))
          return arithSend(Op); // absurdly large shift
        IntV Shifted = Dom.shiftLeftI(R, A);
        if (!Dom.isIntegerValue(Shifted))
          return arithSend(Op);
        return PushInt(Shifted);
      }
      return PushInt(Dom.shiftRightI(R, Dom.negI(A)));
    }
    }
    igdt_unreachable("unhandled integer arith op");
  }

  // Float case: the interpreter also inlines float arithmetic (paper
  // §5.3 "Optimization difference" — not all compilers do).
  if (Dom.isBoxedFloat(Rcvr) && Dom.isBoxedFloat(Arg)) {
    FltV R = Dom.floatValueOf(Rcvr);
    FltV A = Dom.floatValueOf(Arg);
    switch (Op) {
    case ArithOp::Add:
      return PushFloat(Dom.faddF(R, A));
    case ArithOp::Sub:
      return PushFloat(Dom.fsubF(R, A));
    case ArithOp::Mul:
      return PushFloat(Dom.fmulF(R, A));
    case ArithOp::Div:
      if (Dom.equalF(A, Dom.floatConst(0.0)))
        return arithSend(Op);
      return PushFloat(Dom.fdivF(R, A));
    case ArithOp::Less:
      return PushBool(Dom.lessF(R, A));
    case ArithOp::Greater:
      return PushBool(Dom.lessF(A, R));
    case ArithOp::LessEq:
      return PushBool(Dom.lessEqF(R, A));
    case ArithOp::GreaterEq:
      return PushBool(Dom.lessEqF(A, R));
    case ArithOp::Equal:
      return PushBool(Dom.equalF(R, A));
    case ArithOp::NotEqual:
      return PushBool(!Dom.equalF(R, A));
    default:
      return arithSend(Op); // //, \\, bit ops: no float fast path
    }
  }

  return arithSend(Op);
}

//===----------------------------------------------------------------------===//
// Native methods
//===----------------------------------------------------------------------===//

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::runPrimitive(std::int32_t Index, Frame &F) {
  const PrimitiveInfo *Info = primitiveInfo(Index);
  if (!Info)
    return Result::failure();
  if (!ensureStackDepth(F, Info->NumArgs + 1u))
    return Result::invalidFrame();

  switch (Info->Family) {
  case PrimitiveFamily::SmallInteger:
    if (Info->NumArgs == 1)
      return primIntegerBinary(Index, F);
    return primIntegerUnary(Index, F);
  case PrimitiveFamily::Float:
    if (Info->NumArgs == 1)
      return primFloatBinary(Index, F);
    return primFloatUnary(Index, F);
  case PrimitiveFamily::Object:
    return primObjectFamily(Index, F);
  case PrimitiveFamily::FFI:
    return primFFIFamily(Index, F);
  }
  igdt_unreachable("unhandled primitive family");
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primIntegerBinary(std::int32_t Index, Frame &F) {
  Value Rcvr = F.stackValue(1);
  Value Arg = F.stackValue(0);
  if (!Dom.isSmallInteger(Rcvr))
    return Result::failure();
  if (!Dom.isSmallInteger(Arg))
    return Result::failure();
  IntV R = Dom.integerValueOf(Rcvr);
  IntV A = Dom.integerValueOf(Arg);

  auto Answer = [&](Value V) -> Result {
    F.popN(2);
    F.push(V);
    return Result::successWith(V);
  };
  auto AnswerInt = [&](IntV V) -> Result {
    return Answer(Dom.integerObjectOf(V));
  };
  auto AnswerBool = [&](bool B) -> Result {
    return Answer(Dom.booleanValue(B));
  };

  switch (Index) {
  case PrimIntAdd: {
    IntV Sum = Dom.addI(R, A);
    if (!Dom.isIntegerValue(Sum))
      return Result::failure();
    return AnswerInt(Sum);
  }
  case PrimIntSub: {
    IntV Diff = Dom.subI(R, A);
    if (!Dom.isIntegerValue(Diff))
      return Result::failure();
    return AnswerInt(Diff);
  }
  case PrimIntMul: {
    IntV Product = Dom.mulI(R, A);
    if (!Dom.isIntegerValue(Product))
      return Result::failure();
    return AnswerInt(Product);
  }
  case PrimIntDiv: {
    if (Dom.equalI(A, Dom.intConst(0)))
      return Result::failure();
    if (!Dom.equalI(Dom.modFloorI(R, A), Dom.intConst(0)))
      return Result::failure();
    IntV Quotient = Dom.quoI(R, A);
    if (!Dom.isIntegerValue(Quotient))
      return Result::failure();
    return AnswerInt(Quotient);
  }
  case PrimIntFloorDiv: {
    if (Dom.equalI(A, Dom.intConst(0)))
      return Result::failure();
    IntV Quotient = Dom.divFloorI(R, A);
    if (!Dom.isIntegerValue(Quotient))
      return Result::failure();
    return AnswerInt(Quotient);
  }
  case PrimIntMod: {
    if (Dom.equalI(A, Dom.intConst(0)))
      return Result::failure();
    return AnswerInt(Dom.modFloorI(R, A));
  }
  case PrimIntQuo: {
    if (Dom.equalI(A, Dom.intConst(0)))
      return Result::failure();
    IntV Quotient = Dom.quoI(R, A);
    if (!Dom.isIntegerValue(Quotient))
      return Result::failure();
    return AnswerInt(Quotient);
  }
  case PrimIntBitAnd:
    return AnswerInt(Dom.bitAndI(R, A));
  case PrimIntBitOr:
    return AnswerInt(Dom.bitOrI(R, A));
  case PrimIntBitXor:
    return AnswerInt(Dom.bitXorI(R, A));
  case PrimIntBitShift: {
    if (Dom.lessEqI(Dom.intConst(0), A)) {
      if (!Dom.lessEqI(A, Dom.intConst(SmallIntBits)))
        return Result::failure();
      IntV Shifted = Dom.shiftLeftI(R, A);
      if (!Dom.isIntegerValue(Shifted))
        return Result::failure();
      return AnswerInt(Shifted);
    }
    return AnswerInt(Dom.shiftRightI(R, Dom.negI(A)));
  }
  case PrimIntLess:
    return AnswerBool(Dom.lessI(R, A));
  case PrimIntGreater:
    return AnswerBool(Dom.lessI(A, R));
  case PrimIntLessEq:
    return AnswerBool(Dom.lessEqI(R, A));
  case PrimIntGreaterEq:
    return AnswerBool(Dom.lessEqI(A, R));
  case PrimIntEqual:
    return AnswerBool(Dom.equalI(R, A));
  case PrimIntNotEqual:
    return AnswerBool(!Dom.equalI(R, A));
  default:
    return Result::failure();
  }
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primIntegerUnary(std::int32_t Index, Frame &F) {
  Value Rcvr = F.stackValue(0);

  auto Answer = [&](Value V) -> Result {
    F.popN(1);
    F.push(V);
    return Result::successWith(V);
  };

  switch (Index) {
  case PrimIntAsFloat: {
    // The paper's Listing 5 bug: the receiver type is only asserted, and
    // the assert is compiled out of production builds. The check still
    // executes (and forks a concolic path), but with the seed enabled a
    // non-integer receiver falls through to the blind untag, producing a
    // garbage float ("random numbers", paper §5.3).
    bool ReceiverIsInt = Dom.isSmallInteger(Rcvr);
    if (!Cfg.SeedAsFloatMissingReceiverCheck && !ReceiverIsInt)
      return Result::failure();
    IntV IV = ReceiverIsInt ? Dom.integerValueOf(Rcvr)
                            : Dom.uncheckedIntegerValueOf(Rcvr);
    return Answer(Dom.floatObjectOf(Dom.intToFloat(IV)));
  }
  case PrimIntNeg: {
    if (!Dom.isSmallInteger(Rcvr))
      return Result::failure();
    IntV Negated = Dom.negI(Dom.integerValueOf(Rcvr));
    if (!Dom.isIntegerValue(Negated))
      return Result::failure(); // -MinSmallInt
    return Answer(Dom.integerObjectOf(Negated));
  }
  case PrimIntHighBit: {
    if (!Dom.isSmallInteger(Rcvr))
      return Result::failure();
    IntV V = Dom.integerValueOf(Rcvr);
    if (Dom.lessI(V, Dom.intConst(0)))
      return Result::failure();
    return Answer(Dom.integerObjectOf(Dom.highBitI(V)));
  }
  default:
    return Result::failure();
  }
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primFloatBinary(std::int32_t Index, Frame &F) {
  Value Rcvr = F.stackValue(1);
  Value Arg = F.stackValue(0);
  // Native methods are safe: the interpreted versions check both operand
  // types (the *compiled* versions of 13 of these are seeded to skip the
  // receiver check, paper §5.3 "Missing compiled type check").
  if (!Dom.isBoxedFloat(Rcvr))
    return Result::failure();
  if (!Dom.isBoxedFloat(Arg))
    return Result::failure();
  FltV R = Dom.floatValueOf(Rcvr);
  FltV A = Dom.floatValueOf(Arg);

  auto Answer = [&](Value V) -> Result {
    F.popN(2);
    F.push(V);
    return Result::successWith(V);
  };

  switch (Index) {
  case PrimFloatAdd:
    return Answer(Dom.floatObjectOf(Dom.faddF(R, A)));
  case PrimFloatSub:
    return Answer(Dom.floatObjectOf(Dom.fsubF(R, A)));
  case PrimFloatMul:
    return Answer(Dom.floatObjectOf(Dom.fmulF(R, A)));
  case PrimFloatDiv:
    if (Dom.equalF(A, Dom.floatConst(0.0)))
      return Result::failure();
    return Answer(Dom.floatObjectOf(Dom.fdivF(R, A)));
  case PrimFloatLess:
    return Answer(Dom.booleanValue(Dom.lessF(R, A)));
  case PrimFloatGreater:
    return Answer(Dom.booleanValue(Dom.lessF(A, R)));
  case PrimFloatLessEq:
    return Answer(Dom.booleanValue(Dom.lessEqF(R, A)));
  case PrimFloatGreaterEq:
    return Answer(Dom.booleanValue(Dom.lessEqF(A, R)));
  case PrimFloatEqual:
    return Answer(Dom.booleanValue(Dom.equalF(R, A)));
  case PrimFloatNotEqual:
    return Answer(Dom.booleanValue(!Dom.equalF(R, A)));
  default:
    return Result::failure();
  }
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primFloatUnary(std::int32_t Index, Frame &F) {
  Value Rcvr = F.stackValue(0);
  if (!Dom.isBoxedFloat(Rcvr))
    return Result::failure();
  FltV R = Dom.floatValueOf(Rcvr);

  auto Answer = [&](Value V) -> Result {
    F.popN(1);
    F.push(V);
    return Result::successWith(V);
  };
  auto AnswerFloat = [&](FltV V) -> Result {
    return Answer(Dom.floatObjectOf(V));
  };

  constexpr double MaxExact = 9.0e18; // conservative truncation guard

  switch (Index) {
  case PrimFloatTruncated: {
    if (!Dom.lessF(R, Dom.floatConst(MaxExact)))
      return Result::failure();
    if (!Dom.lessF(Dom.floatConst(-MaxExact), R))
      return Result::failure();
    IntV T = Dom.truncToInt(R);
    if (!Dom.isIntegerValue(T))
      return Result::failure();
    return Answer(Dom.integerObjectOf(T));
  }
  case PrimFloatRounded: {
    if (!Dom.lessF(R, Dom.floatConst(MaxExact)))
      return Result::failure();
    if (!Dom.lessF(Dom.floatConst(-MaxExact), R))
      return Result::failure();
    // round-half-up via trunc(x + 0.5 * sign)
    FltV Adjusted = Dom.lessF(R, Dom.floatConst(0.0))
                        ? Dom.fsubF(R, Dom.floatConst(0.5))
                        : Dom.faddF(R, Dom.floatConst(0.5));
    IntV T = Dom.truncToInt(Adjusted);
    if (!Dom.isIntegerValue(T))
      return Result::failure();
    return Answer(Dom.integerObjectOf(T));
  }
  case PrimFloatFractionPart:
    return AnswerFloat(Dom.ffracF(R));
  case PrimFloatSqrt:
    return AnswerFloat(Dom.fsqrtF(R));
  case PrimFloatSin:
    return AnswerFloat(Dom.fsinF(R));
  case PrimFloatCos:
    return AnswerFloat(Dom.fcosF(R));
  case PrimFloatExp:
    return AnswerFloat(Dom.fexpF(R));
  case PrimFloatLn:
    if (!Dom.lessF(Dom.floatConst(0.0), R))
      return Result::failure();
    return AnswerFloat(Dom.flnF(R));
  case PrimFloatArcTan:
    return AnswerFloat(Dom.fatanF(R));
  default:
    return Result::failure();
  }
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primObjectFamily(std::int32_t Index, Frame &F) {
  const PrimitiveInfo *Info = primitiveInfo(Index);
  Value Rcvr = F.stackValue(Info->NumArgs);

  auto Answer = [&](Value V) -> Result {
    F.popN(Info->NumArgs + 1u);
    F.push(V);
    return Result::successWith(V);
  };

  switch (Index) {
  case PrimAt: {
    Value Arg = F.stackValue(0);
    if (!Dom.isIndexablePointers(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(Arg))
      return Result::failure();
    IntV I = Dom.integerValueOf(Arg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    return Answer(Dom.fetchSlot(Rcvr, Dom.subI(I, Dom.intConst(1))));
  }
  case PrimAtPut: {
    Value IndexArg = F.stackValue(1);
    Value NewValue = F.stackValue(0);
    if (!Dom.isIndexablePointers(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(IndexArg))
      return Result::failure();
    IntV I = Dom.integerValueOf(IndexArg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    Dom.storeSlot(Rcvr, Dom.subI(I, Dom.intConst(1)), NewValue);
    return Answer(NewValue);
  }
  case PrimSize: {
    if (Dom.isIndexablePointers(Rcvr) || Dom.isBytesObject(Rcvr))
      return Answer(Dom.integerObjectOf(Dom.slotCountOf(Rcvr)));
    return Result::failure();
  }
  case PrimBasicNew:
  case PrimBasicNewSized: {
    if (!Dom.isSmallInteger(Rcvr))
      return Result::failure();
    IntV ClassIdx = Dom.integerValueOf(Rcvr);
    if (!Dom.lessEqI(Dom.intConst(1), ClassIdx))
      return Result::failure();
    if (!Dom.lessI(ClassIdx,
                   Dom.intConst(Mem.classTable().size())))
      return Result::failure();
    if (Index == PrimBasicNew) {
      if (!Dom.classFormatIs(ClassIdx, ObjectFormat::Pointers))
        return Result::failure();
      auto Pinned = static_cast<std::uint32_t>(Dom.pinInt(ClassIdx));
      Value New = Dom.allocateInstance(Pinned, Dom.intConst(0));
      if (Dom.allocationFailed(New))
        return Result::failure();
      return Answer(New);
    }
    Value SizeArg = F.stackValue(0);
    if (!Dom.isSmallInteger(SizeArg))
      return Result::failure();
    IntV N = Dom.integerValueOf(SizeArg);
    if (!Dom.lessEqI(Dom.intConst(0), N))
      return Result::failure();
    if (!Dom.lessEqI(N, Dom.intConst(MaxPrimitiveAllocation)))
      return Result::failure();
    bool IsArray = Dom.classFormatIs(ClassIdx, ObjectFormat::IndexablePointers);
    if (!IsArray && !Dom.classFormatIs(ClassIdx, ObjectFormat::IndexableBytes))
      return Result::failure();
    auto Pinned = static_cast<std::uint32_t>(Dom.pinInt(ClassIdx));
    Value New = Dom.allocateInstance(Pinned, N);
    if (Dom.allocationFailed(New))
      return Result::failure();
    return Answer(New);
  }
  case PrimClass:
    return Answer(Dom.integerObjectOf(Dom.classIndexValueOf(Rcvr)));
  case PrimIdentityHash:
    return Answer(Dom.integerObjectOf(Dom.identityHashOf(Rcvr)));
  case PrimIdentityEquals:
    return Answer(Dom.booleanValue(Dom.sameObjectAs(Rcvr, F.stackValue(0))));
  case PrimInstVarAt: {
    Value Arg = F.stackValue(0);
    if (!Dom.isPointersObject(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(Arg))
      return Result::failure();
    IntV I = Dom.integerValueOf(Arg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    return Answer(Dom.fetchSlot(Rcvr, Dom.subI(I, Dom.intConst(1))));
  }
  case PrimInstVarAtPut: {
    Value IndexArg = F.stackValue(1);
    Value NewValue = F.stackValue(0);
    if (!Dom.isPointersObject(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(IndexArg))
      return Result::failure();
    IntV I = Dom.integerValueOf(IndexArg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    Dom.storeSlot(Rcvr, Dom.subI(I, Dom.intConst(1)), NewValue);
    return Answer(NewValue);
  }
  case PrimByteAt: {
    Value Arg = F.stackValue(0);
    if (!Dom.isBytesObject(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(Arg))
      return Result::failure();
    IntV I = Dom.integerValueOf(Arg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    return Answer(Dom.integerObjectOf(
        Dom.fetchByteAt(Rcvr, Dom.subI(I, Dom.intConst(1)))));
  }
  case PrimByteAtPut: {
    Value IndexArg = F.stackValue(1);
    Value ByteArg = F.stackValue(0);
    if (!Dom.isBytesObject(Rcvr))
      return Result::failure();
    if (!Dom.isSmallInteger(IndexArg))
      return Result::failure();
    if (!Dom.isSmallInteger(ByteArg))
      return Result::failure();
    IntV I = Dom.integerValueOf(IndexArg);
    IntV B = Dom.integerValueOf(ByteArg);
    if (!Dom.lessEqI(Dom.intConst(1), I))
      return Result::failure();
    if (!Dom.lessEqI(I, Dom.slotCountOf(Rcvr)))
      return Result::failure();
    if (!Dom.lessEqI(Dom.intConst(0), B))
      return Result::failure();
    if (!Dom.lessEqI(B, Dom.intConst(255)))
      return Result::failure();
    Dom.storeByteAt(Rcvr, Dom.subI(I, Dom.intConst(1)), B);
    return Answer(ByteArg);
  }
  case PrimShallowCopy: {
    if (!Dom.isPointersObject(Rcvr))
      return Result::failure();
    Value Copy = Dom.shallowCopyOf(Rcvr);
    if (Dom.allocationFailed(Copy))
      return Result::failure();
    return Answer(Copy);
  }
  default:
    return Result::failure();
  }
}

template <typename D>
typename InterpreterCore<D>::Result
InterpreterCore<D>::primFFIFamily(std::int32_t Index, Frame &F) {
  const PrimitiveInfo *Info = primitiveInfo(Index);
  Value Rcvr = F.stackValue(Info->NumArgs);
  Value OffsetArg = F.stackValue(Info->NumArgs - 1);

  if (!Dom.isBytesObject(Rcvr))
    return Result::failure();
  if (!Dom.isSmallInteger(OffsetArg))
    return Result::failure();
  IntV Offset = Dom.integerValueOf(OffsetArg);
  if (!Dom.lessEqI(Dom.intConst(0), Offset))
    return Result::failure();

  auto Answer = [&](Value V) -> Result {
    F.popN(Info->NumArgs + 1u);
    F.push(V);
    return Result::successWith(V);
  };

  struct Access {
    unsigned Width;
    bool SignExtend;
    bool IsStore;
    bool IsFloat;
  };
  Access A;
  switch (Index) {
  case PrimFFIStoreUInt8:
    A = {1, false, true, false};
    break;
  case PrimFFIStoreUInt16:
    A = {2, false, true, false};
    break;
  case PrimFFIStoreUInt32:
    A = {4, false, true, false};
    break;
  case PrimFFILoadFloat32:
    A = {4, false, false, true};
    break;
  case PrimFFIStoreFloat32:
    A = {4, false, true, true};
    break;
  case PrimFFILoadInt8:
    A = {1, true, false, false};
    break;
  case PrimFFILoadInt16:
    A = {2, true, false, false};
    break;
  case PrimFFILoadInt32:
    A = {4, true, false, false};
    break;
  case PrimFFILoadInt64:
    A = {8, true, false, false};
    break;
  case PrimFFIStoreInt8:
    A = {1, true, true, false};
    break;
  case PrimFFIStoreInt16:
    A = {2, true, true, false};
    break;
  case PrimFFIStoreInt32:
    A = {4, true, true, false};
    break;
  case PrimFFIStoreInt64:
    A = {8, true, true, false};
    break;
  case PrimFFILoadUInt8:
    A = {1, false, false, false};
    break;
  case PrimFFILoadUInt16:
    A = {2, false, false, false};
    break;
  case PrimFFILoadUInt32:
    A = {4, false, false, false};
    break;
  case PrimFFILoadFloat64:
    A = {8, false, false, true};
    break;
  case PrimFFIStoreFloat64:
    A = {8, false, true, true};
    break;
  default:
    return Result::failure();
  }

  // Bounds: offset + width <= byteSize.
  if (!Dom.lessEqI(Dom.addI(Offset, Dom.intConst(A.Width)),
                   Dom.slotCountOf(Rcvr)))
    return Result::failure();

  if (!A.IsStore) {
    if (A.IsFloat)
      return Answer(Dom.floatObjectOf(
          A.Width == 8 ? Dom.loadFloat64LE(Rcvr, Offset)
                       : Dom.loadFloat32LE(Rcvr, Offset)));
    IntV Loaded = Dom.loadBytesLE(Rcvr, Offset, A.Width, A.SignExtend);
    // A 64-bit signed load may not fit the SmallInteger payload.
    if (A.Width == 8 && !Dom.isIntegerValue(Loaded))
      return Result::failure();
    return Answer(Dom.integerObjectOf(Loaded));
  }

  Value ValueArg = F.stackValue(0);
  if (A.IsFloat) {
    if (!Dom.isBoxedFloat(ValueArg))
      return Result::failure();
    if (A.Width == 8)
      Dom.storeFloat64LE(Rcvr, Offset, Dom.floatValueOf(ValueArg));
    else
      Dom.storeFloat32LE(Rcvr, Offset, Dom.floatValueOf(ValueArg));
    return Answer(ValueArg);
  }
  if (!Dom.isSmallInteger(ValueArg))
    return Result::failure();
  IntV V = Dom.integerValueOf(ValueArg);
  if (A.Width < 8) {
    std::int64_t Lo =
        A.SignExtend ? -(std::int64_t(1) << (8 * A.Width - 1)) : 0;
    std::int64_t Hi = A.SignExtend
                          ? (std::int64_t(1) << (8 * A.Width - 1)) - 1
                          : (std::int64_t(1) << (8 * A.Width)) - 1;
    if (!Dom.lessEqI(Dom.intConst(Lo), V))
      return Result::failure();
    if (!Dom.lessEqI(V, Dom.intConst(Hi)))
      return Result::failure();
  }
  Dom.storeBytesLE(Rcvr, Offset, A.Width, V);
  return Answer(ValueArg);
}

} // namespace igdt

#endif // IGDT_VM_INTERPRETERCORE_H
