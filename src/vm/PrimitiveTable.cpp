//===- vm/PrimitiveTable.cpp - Native method catalog --------------------------===//

#include "vm/PrimitiveTable.h"

#include "support/Compiler.h"

using namespace igdt;

const std::vector<PrimitiveInfo> &igdt::allPrimitives() {
  static const std::vector<PrimitiveInfo> Table = {
      {PrimIntAdd, "primitiveAdd", 1, PrimitiveFamily::SmallInteger},
      {PrimIntSub, "primitiveSubtract", 1, PrimitiveFamily::SmallInteger},
      {PrimIntMul, "primitiveMultiply", 1, PrimitiveFamily::SmallInteger},
      {PrimIntDiv, "primitiveDivide", 1, PrimitiveFamily::SmallInteger},
      {PrimIntFloorDiv, "primitiveDiv", 1, PrimitiveFamily::SmallInteger},
      {PrimIntMod, "primitiveMod", 1, PrimitiveFamily::SmallInteger},
      {PrimIntQuo, "primitiveQuo", 1, PrimitiveFamily::SmallInteger},
      {PrimIntNeg, "primitiveNegate", 0, PrimitiveFamily::SmallInteger},
      {PrimIntBitAnd, "primitiveBitAnd", 1, PrimitiveFamily::SmallInteger},
      {PrimIntBitOr, "primitiveBitOr", 1, PrimitiveFamily::SmallInteger},
      {PrimIntBitXor, "primitiveBitXor", 1, PrimitiveFamily::SmallInteger},
      {PrimIntBitShift, "primitiveBitShift", 1, PrimitiveFamily::SmallInteger},
      {PrimIntLess, "primitiveLessThan", 1, PrimitiveFamily::SmallInteger},
      {PrimIntGreater, "primitiveGreaterThan", 1,
       PrimitiveFamily::SmallInteger},
      {PrimIntLessEq, "primitiveLessOrEqual", 1,
       PrimitiveFamily::SmallInteger},
      {PrimIntGreaterEq, "primitiveGreaterOrEqual", 1,
       PrimitiveFamily::SmallInteger},
      {PrimIntEqual, "primitiveEqual", 1, PrimitiveFamily::SmallInteger},
      {PrimIntNotEqual, "primitiveNotEqual", 1,
       PrimitiveFamily::SmallInteger},
      {PrimIntAsFloat, "primitiveAsFloat", 0, PrimitiveFamily::SmallInteger},
      {PrimIntHighBit, "primitiveHighBit", 0, PrimitiveFamily::SmallInteger},

      {PrimFloatAdd, "primitiveFloatAdd", 1, PrimitiveFamily::Float},
      {PrimFloatSub, "primitiveFloatSubtract", 1, PrimitiveFamily::Float},
      {PrimFloatMul, "primitiveFloatMultiply", 1, PrimitiveFamily::Float},
      {PrimFloatDiv, "primitiveFloatDivide", 1, PrimitiveFamily::Float},
      {PrimFloatLess, "primitiveFloatLessThan", 1, PrimitiveFamily::Float},
      {PrimFloatGreater, "primitiveFloatGreaterThan", 1,
       PrimitiveFamily::Float},
      {PrimFloatLessEq, "primitiveFloatLessOrEqual", 1,
       PrimitiveFamily::Float},
      {PrimFloatGreaterEq, "primitiveFloatGreaterOrEqual", 1,
       PrimitiveFamily::Float},
      {PrimFloatEqual, "primitiveFloatEqual", 1, PrimitiveFamily::Float},
      {PrimFloatNotEqual, "primitiveFloatNotEqual", 1,
       PrimitiveFamily::Float},
      {PrimFloatTruncated, "primitiveTruncated", 0, PrimitiveFamily::Float},
      {PrimFloatRounded, "primitiveRounded", 0, PrimitiveFamily::Float},
      {PrimFloatFractionPart, "primitiveFractionalPart", 0,
       PrimitiveFamily::Float},
      {PrimFloatSqrt, "primitiveSquareRoot", 0, PrimitiveFamily::Float},
      {PrimFloatSin, "primitiveSine", 0, PrimitiveFamily::Float},
      {PrimFloatCos, "primitiveCosine", 0, PrimitiveFamily::Float},
      {PrimFloatExp, "primitiveExp", 0, PrimitiveFamily::Float},
      {PrimFloatLn, "primitiveLogN", 0, PrimitiveFamily::Float},
      {PrimFloatArcTan, "primitiveArcTan", 0, PrimitiveFamily::Float},

      {PrimAt, "primitiveAt", 1, PrimitiveFamily::Object},
      {PrimAtPut, "primitiveAtPut", 2, PrimitiveFamily::Object},
      {PrimSize, "primitiveSize", 0, PrimitiveFamily::Object},
      {PrimBasicNew, "primitiveNew", 0, PrimitiveFamily::Object},
      {PrimBasicNewSized, "primitiveNewWithArg", 1, PrimitiveFamily::Object},
      {PrimClass, "primitiveClass", 0, PrimitiveFamily::Object},
      {PrimIdentityHash, "primitiveIdentityHash", 0,
       PrimitiveFamily::Object},
      {PrimIdentityEquals, "primitiveIdentical", 1, PrimitiveFamily::Object},
      {PrimInstVarAt, "primitiveInstVarAt", 1, PrimitiveFamily::Object},
      {PrimInstVarAtPut, "primitiveInstVarAtPut", 2,
       PrimitiveFamily::Object},
      {PrimByteAt, "primitiveByteAt", 1, PrimitiveFamily::Object},
      {PrimByteAtPut, "primitiveByteAtPut", 2, PrimitiveFamily::Object},
      {PrimShallowCopy, "primitiveShallowCopy", 0, PrimitiveFamily::Object},

      {PrimFFILoadInt8, "primitiveFFILoadInt8", 1, PrimitiveFamily::FFI},
      {PrimFFILoadInt16, "primitiveFFILoadInt16", 1, PrimitiveFamily::FFI},
      {PrimFFILoadInt32, "primitiveFFILoadInt32", 1, PrimitiveFamily::FFI},
      {PrimFFILoadInt64, "primitiveFFILoadInt64", 1, PrimitiveFamily::FFI},
      {PrimFFIStoreInt8, "primitiveFFIStoreInt8", 2, PrimitiveFamily::FFI},
      {PrimFFIStoreInt16, "primitiveFFIStoreInt16", 2, PrimitiveFamily::FFI},
      {PrimFFIStoreInt32, "primitiveFFIStoreInt32", 2, PrimitiveFamily::FFI},
      {PrimFFIStoreInt64, "primitiveFFIStoreInt64", 2, PrimitiveFamily::FFI},
      {PrimFFILoadUInt8, "primitiveFFILoadUInt8", 1, PrimitiveFamily::FFI},
      {PrimFFILoadUInt16, "primitiveFFILoadUInt16", 1, PrimitiveFamily::FFI},
      {PrimFFILoadUInt32, "primitiveFFILoadUInt32", 1, PrimitiveFamily::FFI},
      {PrimFFILoadFloat64, "primitiveFFILoadFloat64", 1,
       PrimitiveFamily::FFI},
      {PrimFFIStoreFloat64, "primitiveFFIStoreFloat64", 2,
       PrimitiveFamily::FFI},
      {PrimFFIStoreUInt8, "primitiveFFIStoreUInt8", 2, PrimitiveFamily::FFI},
      {PrimFFIStoreUInt16, "primitiveFFIStoreUInt16", 2,
       PrimitiveFamily::FFI},
      {PrimFFIStoreUInt32, "primitiveFFIStoreUInt32", 2,
       PrimitiveFamily::FFI},
      {PrimFFILoadFloat32, "primitiveFFILoadFloat32", 1,
       PrimitiveFamily::FFI},
      {PrimFFIStoreFloat32, "primitiveFFIStoreFloat32", 2,
       PrimitiveFamily::FFI},
  };
  return Table;
}

const PrimitiveInfo *igdt::primitiveInfo(std::int32_t Index) {
  for (const PrimitiveInfo &Info : allPrimitives())
    if (Info.Index == Index)
      return &Info;
  return nullptr;
}

const char *igdt::primitiveFamilyName(PrimitiveFamily Family) {
  switch (Family) {
  case PrimitiveFamily::SmallInteger:
    return "small-integer";
  case PrimitiveFamily::Float:
    return "float";
  case PrimitiveFamily::Object:
    return "object";
  case PrimitiveFamily::FFI:
    return "ffi";
  }
  igdt_unreachable("unknown primitive family");
}
