//===- vm/MethodBuilder.h - Byte-code assembler -----------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for CompiledMethods. Used by unit tests, examples
/// and by the instruction catalog to instantiate the one-instruction
/// methods that the concolic tester explores (paper §4.2: "our
/// compilation unit is a method").
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_METHODBUILDER_H
#define IGDT_VM_METHODBUILDER_H

#include "vm/Bytecodes.h"
#include "vm/CompiledMethod.h"

#include <string>

namespace igdt {

/// Fluent builder of CompiledMethods. Short encodings are chosen
/// automatically when the operand fits.
class MethodBuilder {
public:
  explicit MethodBuilder(std::string Name) { Method.Name = std::move(Name); }

  MethodBuilder &numArgs(std::uint16_t N) {
    Method.NumArgs = N;
    return *this;
  }
  MethodBuilder &numTemps(std::uint16_t N) {
    Method.NumTemps = N;
    return *this;
  }
  MethodBuilder &primitive(std::int32_t Index) {
    Method.PrimitiveIndex = Index;
    return *this;
  }

  /// Appends a literal and returns its index.
  std::uint8_t addLiteral(Oop Value);

  MethodBuilder &pushLocal(unsigned Index);
  MethodBuilder &pushLiteral(unsigned Index);
  MethodBuilder &pushInstVar(unsigned Index);
  /// \p Kind: 0 nil, 1 true, 2 false, 3 zero, 4 one, 5 two, 6 minus one.
  MethodBuilder &pushConstant(unsigned Kind);
  MethodBuilder &pushReceiver();
  MethodBuilder &storeLocal(unsigned Index);
  MethodBuilder &storeInstVar(unsigned Index);
  MethodBuilder &pop();
  MethodBuilder &dup();
  MethodBuilder &arith(ArithOp Op);
  MethodBuilder &identityEquals();
  MethodBuilder &jump(int Offset);
  MethodBuilder &jumpTrue(int Offset);
  MethodBuilder &jumpFalse(int Offset);
  MethodBuilder &send(unsigned LiteralIndex, unsigned NumArgs);
  MethodBuilder &returnTop();
  MethodBuilder &returnReceiver();
  MethodBuilder &returnNil();
  MethodBuilder &returnTrue();
  MethodBuilder &returnFalse();

  /// Appends a raw byte (escape hatch for malformed-input tests).
  MethodBuilder &raw(std::uint8_t Byte);

  CompiledMethod build() { return Method; }

private:
  MethodBuilder &emit(std::uint8_t Byte) {
    Method.Bytecodes.push_back(Byte);
    return *this;
  }

  CompiledMethod Method;
};

} // namespace igdt

#endif // IGDT_VM_METHODBUILDER_H
