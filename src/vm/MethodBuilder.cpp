//===- vm/MethodBuilder.cpp - Byte-code assembler ---------------------------===//

#include "vm/MethodBuilder.h"

#include <cassert>

using namespace igdt;

std::uint8_t MethodBuilder::addLiteral(Oop Value) {
  assert(Method.Literals.size() < 256 && "literal frame full");
  Method.Literals.push_back(Value);
  return static_cast<std::uint8_t>(Method.Literals.size() - 1);
}

MethodBuilder &MethodBuilder::pushLocal(unsigned Index) {
  if (Index < 12)
    return emit(static_cast<std::uint8_t>(BCPushLocalShort + Index));
  assert(Index < 256);
  return emit(BCPushLocalExt).emit(static_cast<std::uint8_t>(Index));
}

MethodBuilder &MethodBuilder::pushLiteral(unsigned Index) {
  if (Index < 12)
    return emit(static_cast<std::uint8_t>(BCPushLiteralShort + Index));
  assert(Index < 256);
  return emit(BCPushLiteralExt).emit(static_cast<std::uint8_t>(Index));
}

MethodBuilder &MethodBuilder::pushInstVar(unsigned Index) {
  if (Index < 8)
    return emit(static_cast<std::uint8_t>(BCPushInstVarShort + Index));
  assert(Index < 256);
  return emit(BCPushInstVarExt).emit(static_cast<std::uint8_t>(Index));
}

MethodBuilder &MethodBuilder::pushConstant(unsigned Kind) {
  assert(Kind < 7 && "constant kind out of range");
  return emit(static_cast<std::uint8_t>(BCPushConstant + Kind));
}

MethodBuilder &MethodBuilder::pushReceiver() { return emit(BCPushReceiver); }

MethodBuilder &MethodBuilder::storeLocal(unsigned Index) {
  if (Index < 8)
    return emit(static_cast<std::uint8_t>(BCStoreLocalShort + Index));
  assert(Index < 256);
  return emit(BCStoreLocalExt).emit(static_cast<std::uint8_t>(Index));
}

MethodBuilder &MethodBuilder::storeInstVar(unsigned Index) {
  if (Index < 8)
    return emit(static_cast<std::uint8_t>(BCStoreInstVarShort + Index));
  assert(Index < 256);
  return emit(BCStoreInstVarExt).emit(static_cast<std::uint8_t>(Index));
}

MethodBuilder &MethodBuilder::pop() { return emit(BCPop); }
MethodBuilder &MethodBuilder::dup() { return emit(BCDup); }

MethodBuilder &MethodBuilder::arith(ArithOp Op) {
  return emit(static_cast<std::uint8_t>(BCArithmetic +
                                        static_cast<std::uint8_t>(Op)));
}

MethodBuilder &MethodBuilder::identityEquals() {
  return emit(BCIdentityEquals);
}

MethodBuilder &MethodBuilder::jump(int Offset) {
  if (Offset >= 1 && Offset <= 8)
    return emit(static_cast<std::uint8_t>(BCShortJump + Offset - 1));
  assert(Offset >= -128 && Offset <= 127);
  return emit(BCLongJump).emit(static_cast<std::uint8_t>(Offset));
}

MethodBuilder &MethodBuilder::jumpTrue(int Offset) {
  assert(Offset >= -128 && Offset <= 127);
  return emit(BCLongJumpTrue).emit(static_cast<std::uint8_t>(Offset));
}

MethodBuilder &MethodBuilder::jumpFalse(int Offset) {
  if (Offset >= 1 && Offset <= 8)
    return emit(static_cast<std::uint8_t>(BCShortJumpFalse + Offset - 1));
  assert(Offset >= -128 && Offset <= 127);
  return emit(BCLongJumpFalse).emit(static_cast<std::uint8_t>(Offset));
}

MethodBuilder &MethodBuilder::send(unsigned LiteralIndex, unsigned NumArgs) {
  if (LiteralIndex < 4 && NumArgs <= 2) {
    std::uint8_t Base = NumArgs == 0   ? BCSend0Short
                        : NumArgs == 1 ? BCSend1Short
                                       : BCSend2Short;
    return emit(static_cast<std::uint8_t>(Base + LiteralIndex));
  }
  assert(LiteralIndex < 256 && NumArgs < 256);
  return emit(BCSendExt)
      .emit(static_cast<std::uint8_t>(LiteralIndex))
      .emit(static_cast<std::uint8_t>(NumArgs));
}

MethodBuilder &MethodBuilder::returnTop() { return emit(BCReturnTop); }
MethodBuilder &MethodBuilder::returnReceiver() { return emit(BCReturnReceiver); }
MethodBuilder &MethodBuilder::returnNil() { return emit(BCReturnNil); }
MethodBuilder &MethodBuilder::returnTrue() { return emit(BCReturnTrue); }
MethodBuilder &MethodBuilder::returnFalse() { return emit(BCReturnFalse); }

MethodBuilder &MethodBuilder::raw(std::uint8_t Byte) { return emit(Byte); }
