//===- vm/SelectorTable.cpp - Interned message selectors -------------------===//

#include "vm/SelectorTable.h"

#include <cassert>

using namespace igdt;

SelectorTable::SelectorTable() {
  static const char *SpecialNames[NumSpecialSelectors] = {
      "+",       "-",        "*",     "/",    "//",
      "\\\\",    "<",        ">",     "<=",   ">=",
      "=",       "~=",       "bitAnd:", "bitOr:", "bitXor:",
      "bitShift:", "==",     "at:",   "at:put:", "size",
      "value",   "doesNotUnderstand:", "mustBeBoolean"};
  for (SelectorId I = 0; I < NumSpecialSelectors; ++I) {
    Names.emplace_back(SpecialNames[I]);
    Ids.emplace(SpecialNames[I], I);
  }
}

SelectorId SelectorTable::intern(const std::string &Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  auto Id = static_cast<SelectorId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

const std::string &SelectorTable::nameOf(SelectorId Id) const {
  assert(Id < Names.size() && "unknown selector id");
  return Names[Id];
}
