//===- vm/Bytecodes.cpp - The QVM byte-code set ----------------------------===//

#include "vm/Bytecodes.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace igdt;

SelectorId igdt::arithSelector(ArithOp Op) {
  // ArithOp and SpecialSelector are aligned by construction.
  return static_cast<SelectorId>(Op);
}

StackEffect igdt::arithStackEffect() { return {2, 1}; }

std::optional<DecodedBytecode>
igdt::decodeBytecode(const std::vector<std::uint8_t> &Code, std::uint32_t PC) {
  if (PC >= Code.size())
    return std::nullopt;
  std::uint8_t Byte = Code[PC];

  auto Fetch = [&](std::uint32_t Offset) -> std::optional<std::uint8_t> {
    if (PC + Offset >= Code.size())
      return std::nullopt;
    return Code[PC + Offset];
  };
  auto OneByte = [](Operation Op, std::int32_t A = 0,
                    std::int32_t B = 0) -> std::optional<DecodedBytecode> {
    return DecodedBytecode{Op, A, B, 1};
  };
  auto TwoByte = [&](Operation Op, bool SignedOperand = false,
                     std::int32_t B = 0) -> std::optional<DecodedBytecode> {
    auto Operand = Fetch(1);
    if (!Operand)
      return std::nullopt;
    std::int32_t A = SignedOperand ? static_cast<std::int8_t>(*Operand)
                                   : static_cast<std::int32_t>(*Operand);
    return DecodedBytecode{Op, A, B, 2};
  };

  if (Byte >= BCPushLocalShort && Byte < BCPushLocalShort + 12)
    return OneByte(Operation::PushLocal, Byte - BCPushLocalShort);
  if (Byte >= BCPushLiteralShort && Byte < BCPushLiteralShort + 12)
    return OneByte(Operation::PushLiteral, Byte - BCPushLiteralShort);
  if (Byte >= BCPushInstVarShort && Byte < BCPushInstVarShort + 8)
    return OneByte(Operation::PushInstVar, Byte - BCPushInstVarShort);
  if (Byte >= BCPushConstant && Byte < BCPushConstant + 7)
    return OneByte(Operation::PushConstant, Byte - BCPushConstant);
  if (Byte == BCPushReceiver)
    return OneByte(Operation::PushReceiver);
  if (Byte >= BCStoreLocalShort && Byte < BCStoreLocalShort + 8)
    return OneByte(Operation::StoreLocal, Byte - BCStoreLocalShort);
  if (Byte >= BCStoreInstVarShort && Byte < BCStoreInstVarShort + 8)
    return OneByte(Operation::StoreInstVar, Byte - BCStoreInstVarShort);
  if (Byte == BCPop)
    return OneByte(Operation::Pop);
  if (Byte == BCDup)
    return OneByte(Operation::Dup);
  if (Byte == BCPushLocalExt)
    return TwoByte(Operation::PushLocal);
  if (Byte == BCPushLiteralExt)
    return TwoByte(Operation::PushLiteral);
  if (Byte == BCPushInstVarExt)
    return TwoByte(Operation::PushInstVar);
  if (Byte == BCStoreLocalExt)
    return TwoByte(Operation::StoreLocal);
  if (Byte == BCStoreInstVarExt)
    return TwoByte(Operation::StoreInstVar);
  if (Byte >= BCArithmetic && Byte < BCArithmetic + NumArithOps)
    return OneByte(Operation::Arithmetic, Byte - BCArithmetic);
  if (Byte == BCIdentityEquals)
    return OneByte(Operation::IdentityEquals);
  if (Byte >= BCShortJump && Byte < BCShortJump + 8)
    return OneByte(Operation::Jump, Byte - BCShortJump + 1);
  if (Byte >= BCShortJumpFalse && Byte < BCShortJumpFalse + 8)
    return OneByte(Operation::JumpFalse, Byte - BCShortJumpFalse + 1);
  if (Byte == BCLongJump)
    return TwoByte(Operation::Jump, /*SignedOperand=*/true);
  if (Byte == BCLongJumpTrue)
    return TwoByte(Operation::JumpTrue, /*SignedOperand=*/true);
  if (Byte == BCLongJumpFalse)
    return TwoByte(Operation::JumpFalse, /*SignedOperand=*/true);
  if (Byte >= BCSend0Short && Byte < BCSend0Short + 4)
    return OneByte(Operation::Send, Byte - BCSend0Short, 0);
  if (Byte >= BCSend1Short && Byte < BCSend1Short + 4)
    return OneByte(Operation::Send, Byte - BCSend1Short, 1);
  if (Byte >= BCSend2Short && Byte < BCSend2Short + 4)
    return OneByte(Operation::Send, Byte - BCSend2Short, 2);
  if (Byte == BCSendExt) {
    auto Literal = Fetch(1);
    auto NumArgs = Fetch(2);
    if (!Literal || !NumArgs)
      return std::nullopt;
    return DecodedBytecode{Operation::Send, *Literal, *NumArgs, 3};
  }
  if (Byte == BCReturnTop)
    return OneByte(Operation::ReturnTop);
  if (Byte == BCReturnReceiver)
    return OneByte(Operation::ReturnReceiver);
  if (Byte == BCReturnNil)
    return OneByte(Operation::ReturnConstant, 0);
  if (Byte == BCReturnTrue)
    return OneByte(Operation::ReturnConstant, 1);
  if (Byte == BCReturnFalse)
    return OneByte(Operation::ReturnConstant, 2);
  return std::nullopt;
}

std::string igdt::bytecodeName(std::uint8_t Byte) {
  static const char *ArithNames[NumArithOps] = {
      "add",    "sub",   "mul",   "div",      "floorDiv", "mod",
      "lt",     "gt",    "le",    "ge",       "eq",       "ne",
      "bitAnd", "bitOr", "bitXor", "bitShift"};
  static const char *ConstNames[7] = {"nil", "true", "false", "0",
                                      "1",   "2",    "-1"};

  if (Byte >= BCPushLocalShort && Byte < BCPushLocalShort + 12)
    return formatString("pushLocal%u", Byte - BCPushLocalShort);
  if (Byte >= BCPushLiteralShort && Byte < BCPushLiteralShort + 12)
    return formatString("pushLiteral%u", Byte - BCPushLiteralShort);
  if (Byte >= BCPushInstVarShort && Byte < BCPushInstVarShort + 8)
    return formatString("pushInstVar%u", Byte - BCPushInstVarShort);
  if (Byte >= BCPushConstant && Byte < BCPushConstant + 7)
    return formatString("pushConstant_%s", ConstNames[Byte - BCPushConstant]);
  if (Byte == BCPushReceiver)
    return "pushReceiver";
  if (Byte >= BCStoreLocalShort && Byte < BCStoreLocalShort + 8)
    return formatString("storeLocal%u", Byte - BCStoreLocalShort);
  if (Byte >= BCStoreInstVarShort && Byte < BCStoreInstVarShort + 8)
    return formatString("storeInstVar%u", Byte - BCStoreInstVarShort);
  if (Byte == BCPop)
    return "pop";
  if (Byte == BCDup)
    return "dup";
  if (Byte == BCPushLocalExt)
    return "pushLocalExt";
  if (Byte == BCPushLiteralExt)
    return "pushLiteralExt";
  if (Byte == BCPushInstVarExt)
    return "pushInstVarExt";
  if (Byte == BCStoreLocalExt)
    return "storeLocalExt";
  if (Byte == BCStoreInstVarExt)
    return "storeInstVarExt";
  if (Byte >= BCArithmetic && Byte < BCArithmetic + NumArithOps)
    return formatString("bytecodePrim_%s", ArithNames[Byte - BCArithmetic]);
  if (Byte == BCIdentityEquals)
    return "identityEquals";
  if (Byte >= BCShortJump && Byte < BCShortJump + 8)
    return formatString("shortJump%u", Byte - BCShortJump + 1);
  if (Byte >= BCShortJumpFalse && Byte < BCShortJumpFalse + 8)
    return formatString("shortJumpFalse%u", Byte - BCShortJumpFalse + 1);
  if (Byte == BCLongJump)
    return "longJump";
  if (Byte == BCLongJumpTrue)
    return "longJumpTrue";
  if (Byte == BCLongJumpFalse)
    return "longJumpFalse";
  if (Byte >= BCSend0Short && Byte < BCSend0Short + 4)
    return formatString("send0Lit%u", Byte - BCSend0Short);
  if (Byte >= BCSend1Short && Byte < BCSend1Short + 4)
    return formatString("send1Lit%u", Byte - BCSend1Short);
  if (Byte >= BCSend2Short && Byte < BCSend2Short + 4)
    return formatString("send2Lit%u", Byte - BCSend2Short);
  if (Byte == BCSendExt)
    return "sendExt";
  if (Byte == BCReturnTop)
    return "returnTop";
  if (Byte == BCReturnReceiver)
    return "returnReceiver";
  if (Byte == BCReturnNil)
    return "returnNil";
  if (Byte == BCReturnTrue)
    return "returnTrue";
  if (Byte == BCReturnFalse)
    return "returnFalse";
  return formatString("unknown_%02x", Byte);
}
