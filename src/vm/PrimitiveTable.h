//===- vm/PrimitiveTable.h - Native method catalog ---------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalog of QVM native methods (primitives, paper §3.1). Native
/// methods are safe by design: they validate their operands and fail with
/// PrimitiveFailure when an operand is unexpected. The table carries the
/// metadata the concolic tester and the JIT need: argument counts,
/// families and names.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_PRIMITIVETABLE_H
#define IGDT_VM_PRIMITIVETABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Primitive indices. Gaps are deliberate: each family occupies a block.
enum PrimitiveIndex : std::int32_t {
  // --- SmallInteger family (receiver and args are SmallIntegers) ---
  PrimIntAdd = 1,
  PrimIntSub,
  PrimIntMul,
  PrimIntDiv,      // exact division
  PrimIntFloorDiv, // //
  PrimIntMod,      // \\ (floored)
  PrimIntQuo,      // truncated division
  PrimIntNeg,
  PrimIntBitAnd,
  PrimIntBitOr,
  PrimIntBitXor,
  PrimIntBitShift,
  PrimIntLess,
  PrimIntGreater,
  PrimIntLessEq,
  PrimIntGreaterEq,
  PrimIntEqual,
  PrimIntNotEqual,
  PrimIntAsFloat, // the paper's missing-interpreter-check seed
  PrimIntHighBit,

  // --- BoxedFloat family (the 13 missing-compiled-check seeds are the
  // arithmetic, comparison, truncated, rounded and fractionPart ones) ---
  PrimFloatAdd = 30,
  PrimFloatSub,
  PrimFloatMul,
  PrimFloatDiv,
  PrimFloatLess,
  PrimFloatGreater,
  PrimFloatLessEq,
  PrimFloatGreaterEq,
  PrimFloatEqual,
  PrimFloatNotEqual,
  PrimFloatTruncated,
  PrimFloatRounded,
  PrimFloatFractionPart,
  PrimFloatSqrt,
  PrimFloatSin,
  PrimFloatCos,
  PrimFloatExp,
  PrimFloatLn,
  PrimFloatArcTan,

  // --- Object / array family ---
  PrimAt = 60, // 1-based indexable access
  PrimAtPut,
  PrimSize,
  PrimBasicNew,      // receiver: class index as SmallInteger
  PrimBasicNewSized, // receiver: class index, arg: element count
  PrimClass,
  PrimIdentityHash,
  PrimIdentityEquals,
  PrimInstVarAt, // 1-based fixed-slot access on any pointer object
  PrimInstVarAtPut,
  PrimByteAt, // 1-based byte access
  PrimByteAtPut,
  PrimShallowCopy,

  // --- FFI accessor family (paper §5.3 "Missing functionality": these
  // are interpreted but were never implemented in the 32-bit JIT) ---
  PrimFFILoadInt8 = 80,
  PrimFFILoadInt16,
  PrimFFILoadInt32,
  PrimFFILoadInt64,
  PrimFFIStoreInt8,
  PrimFFIStoreInt16,
  PrimFFIStoreInt32,
  PrimFFIStoreInt64,
  PrimFFILoadUInt8,
  PrimFFILoadUInt16,
  PrimFFILoadUInt32,
  PrimFFILoadFloat64,
  PrimFFIStoreFloat64,
  PrimFFIStoreUInt8,
  PrimFFIStoreUInt16,
  PrimFFIStoreUInt32,
  PrimFFILoadFloat32,
  PrimFFIStoreFloat32,

  NumPrimitiveSlots
};

/// Coarse primitive families used by the evaluation figures.
enum class PrimitiveFamily : std::uint8_t {
  SmallInteger,
  Float,
  Object,
  FFI,
};

/// Metadata of one native method.
struct PrimitiveInfo {
  std::int32_t Index = -1;
  const char *Name = "";
  std::uint8_t NumArgs = 0;
  PrimitiveFamily Family = PrimitiveFamily::SmallInteger;
};

/// Returns the metadata of every implemented native method, ordered by
/// index.
const std::vector<PrimitiveInfo> &allPrimitives();

/// Returns metadata for \p Index or nullptr when unimplemented.
const PrimitiveInfo *primitiveInfo(std::int32_t Index);

/// Printable family name.
const char *primitiveFamilyName(PrimitiveFamily Family);

} // namespace igdt

#endif // IGDT_VM_PRIMITIVETABLE_H
