//===- vm/ObjectMemory.h - Heap, headers, well-known objects ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QVM heap. Objects live in a contiguous buffer addressed through a
/// virtual base so that Oops look like real pointers: JIT-compiled code
/// running in the machine simulator performs genuine loads/stores against
/// these addresses, and dereferencing a tagged SmallInteger or an
/// out-of-bounds address faults exactly like the segmentation faults the
/// paper reports for missing type checks.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_OBJECTMEMORY_H
#define IGDT_VM_OBJECTMEMORY_H

#include "vm/ClassTable.h"
#include "vm/Oop.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace igdt {

/// Header preceding every heap object body (16 bytes).
struct ObjectHeader {
  std::uint32_t ClassIndex;
  std::uint8_t Format; // ObjectFormat
  std::uint8_t Flags;
  std::uint16_t Pad;
  std::uint32_t SlotCount; // pointer slots, bytes, or 1 for Float64
  std::uint32_t IdentityHash;
};

static_assert(sizeof(ObjectHeader) == 16, "header layout");

/// Snapshot of a heap's allocation state, taken by ObjectMemory::mark()
/// and restored by resetTo(). Cheap value type: four integers.
struct HeapMark {
  std::size_t NextFree = 0;
  std::uint32_t NextHash = 0;
  std::uint32_t ClassCount = 0;
  std::size_t JournalDepth = 0;
};

/// The QVM heap plus its class table and the nil/true/false singletons.
class ObjectMemory {
public:
  /// Virtual address of the first heap byte.
  static constexpr std::uint64_t HeapBase = 0x100000;

  explicit ObjectMemory(std::size_t HeapBytes = 4 * 1024 * 1024);

  /// \name Well-known objects
  /// @{
  Oop nilObject() const { return NilOop; }
  Oop trueObject() const { return TrueOop; }
  Oop falseObject() const { return FalseOop; }
  Oop booleanObject(bool Value) const { return Value ? TrueOop : FalseOop; }
  /// @}

  ClassTable &classTable() { return Classes; }
  const ClassTable &classTable() const { return Classes; }

  /// \name Allocation
  /// @{

  /// Allocates an instance of \p ClassIndex. For Pointers format,
  /// \p IndexableSize must be 0 and the fixed slot count comes from the
  /// class; for indexable formats it is the element count. Slots are
  /// initialised to nil (pointer formats) or zero (byte formats).
  /// Returns InvalidOop when the heap is exhausted.
  Oop allocateInstance(std::uint32_t ClassIndex,
                       std::uint32_t IndexableSize = 0);

  /// Allocates a BoxedFloat holding \p Value.
  Oop allocateFloat(double Value);

  /// Allocates a ByteString with the bytes of \p Text.
  Oop allocateString(const std::string &Text);

  /// @}

  /// \name Object inspection
  /// @{

  /// True if \p Object is a heap reference to a live object.
  bool isHeapObject(Oop Object) const;

  /// Class index of any value (SmallIntegerClass for immediates).
  std::uint32_t classIndexOf(Oop Object) const;

  ObjectFormat formatOf(Oop Object) const;

  /// Slot/byte/element count of \p Object's body.
  std::uint32_t slotCountOf(Oop Object) const;

  std::uint32_t identityHashOf(Oop Object) const;

  bool isBoxedFloat(Oop Object) const {
    return isHeapObject(Object) && classIndexOf(Object) == BoxedFloatClass;
  }

  /// True if the two values denote the same object (identity).
  static bool sameObject(Oop A, Oop B) { return A == B; }

  /// @}

  /// \name Slot access (bounds-checked)
  /// @{

  /// Returns pointer slot \p Index of \p Object, or nullopt when the
  /// access is out of bounds or \p Object is not a pointer object.
  std::optional<Oop> fetchPointerSlot(Oop Object, std::uint32_t Index) const;

  /// Stores into pointer slot \p Index; returns false on invalid access.
  bool storePointerSlot(Oop Object, std::uint32_t Index, Oop Value);

  std::optional<std::uint8_t> fetchByte(Oop Object, std::uint32_t Index) const;
  bool storeByte(Oop Object, std::uint32_t Index, std::uint8_t Value);

  /// Reads the double payload of a BoxedFloat; nullopt otherwise.
  std::optional<double> floatValueOf(Oop Object) const;

  /// Reads a double from any heap address WITHOUT checking the object's
  /// class: models what compiled code with a missing type check does.
  std::optional<double> unsafeFloatValueAt(Oop Object) const;

  /// @}

  /// \name Fault injection (campaign self-tests)
  /// @{

  /// Marks the heap as corrupted; the next integrity check throws.
  void poison(const std::string &Why);

  /// Throws HarnessFault when the heap has been poisoned. Polled on
  /// every allocation — the campaign layer's containment boundary.
  void checkIntegrity() const;

  /// @}

  /// \name Raw memory interface (used by the machine simulator)
  /// @{

  /// True if [Address, Address+Size) lies within the allocated heap.
  bool containsAddress(std::uint64_t Address, std::uint32_t Size) const;

  /// Loads a 64-bit word; nullopt on out-of-bounds or misaligned access.
  std::optional<std::uint64_t> load64(std::uint64_t Address) const;
  bool store64(std::uint64_t Address, std::uint64_t Value);
  std::optional<std::uint8_t> load8(std::uint64_t Address) const;
  bool store8(std::uint64_t Address, std::uint8_t Value);

  /// Virtual address of the body (first slot) of \p Object.
  static std::uint64_t bodyAddress(Oop Object) { return Object + sizeof(ObjectHeader); }

  /// Byte offset from an object Oop to its SlotCount header field.
  static constexpr std::uint32_t SlotCountOffset = 8;
  /// Byte offset from an object Oop to its ClassIndex header field.
  static constexpr std::uint32_t ClassIndexOffset = 0;

  /// @}

  /// \name Pooled replay support (differential/ReplayArena.h)
  /// @{

  /// Snapshots the allocation state and arms the undo journal: from now
  /// on, raw stores landing below the current watermark are journalled
  /// so resetTo() can undo them (defective compiled code can write
  /// anywhere in the live heap, singleton headers included). Until
  /// mark() is called the journal is disarmed and stores pay only one
  /// compare.
  HeapMark mark();

  /// Rolls the heap back to \p M: releases every object allocated since
  /// (their stale bytes are unreachable — allocation re-initialises
  /// header and body), undoes journalled below-mark stores in reverse,
  /// restores the identity-hash sequence (hashes are observable through
  /// raw header loads), drops classes registered since, and clears any
  /// poison. The result is observably identical to a freshly
  /// constructed heap when \p M was taken right after construction.
  void resetTo(const HeapMark &M);

  /// Journalled stores undone by resetTo() so far ("replay.*" metrics).
  std::uint64_t undoStoresReplayed() const { return UndoReplayed; }

  /// Total heap capacity in bytes.
  std::size_t capacityBytes() const { return Heap.size(); }

  /// @}

  /// Number of bytes currently allocated.
  std::size_t usedBytes() const { return NextFree; }

  /// FNV-1a hash over the allocated heap bytes plus the allocation and
  /// identity-hash cursors. Two heaps that compare equal here are
  /// observably identical through every raw load; the cross-engine
  /// oracle uses it to compare a native probe run against the simulator
  /// run without copying the heap.
  std::uint64_t contentHash() const;

  /// Renders a short description of \p Value for reports and tests.
  std::string describe(Oop Value) const;

private:
  const ObjectHeader *headerOf(Oop Object) const;
  ObjectHeader *headerOf(Oop Object);
  std::uint8_t *bodyOf(Oop Object);
  const std::uint8_t *bodyOf(Oop Object) const;

  std::size_t bodyBytes(const ObjectHeader &Header) const;

  /// One journalled raw store below the watermark.
  struct UndoEntry {
    std::size_t Offset;      ///< heap offset of the overwritten bytes
    std::uint64_t OldValue;  ///< previous contents (low byte for Width 1)
    std::uint8_t Width;      ///< 1 or 8
  };
  void journal64(std::size_t Offset);
  void journal8(std::size_t Offset);

  ClassTable Classes;
  std::vector<std::uint8_t> Heap;
  std::size_t NextFree = 0;
  std::uint32_t NextHash = 0x1000;
  /// Heap offset below which stores are journalled; 0 keeps the journal
  /// disarmed (no mark taken yet).
  std::size_t JournalLimit = 0;
  std::vector<UndoEntry> Journal;
  std::uint64_t UndoReplayed = 0;

  bool Poisoned = false;
  std::string PoisonNote;

  Oop NilOop = InvalidOop;
  Oop TrueOop = InvalidOop;
  Oop FalseOop = InvalidOop;
};

} // namespace igdt

#endif // IGDT_VM_OBJECTMEMORY_H
