//===- vm/CompiledMethod.h - Method objects --------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled method: byte-codes plus a literal frame, an argument /
/// temporary count and an optional native-method (primitive) index,
/// mirroring the Pharo hybrid method layout (paper §4.2): a method with a
/// primitive first runs the native behaviour and falls back to its
/// byte-code on failure.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_COMPILEDMETHOD_H
#define IGDT_VM_COMPILEDMETHOD_H

#include "vm/Oop.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// A QVM method. Held by the host (not on the VM heap); frames reference
/// methods by pointer.
struct CompiledMethod {
  std::string Name;
  std::uint16_t NumArgs = 0;
  std::uint16_t NumTemps = 0;
  /// Native-method index, or -1 for a pure byte-code method.
  std::int32_t PrimitiveIndex = -1;
  std::vector<std::uint8_t> Bytecodes;
  std::vector<Oop> Literals;

  /// Total addressable locals (arguments followed by temporaries).
  std::uint32_t numLocals() const {
    return std::uint32_t(NumArgs) + NumTemps;
  }
};

} // namespace igdt

#endif // IGDT_VM_COMPILEDMETHOD_H
