//===- vm/VMConfig.h - Interpreter configuration and defect seeds -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the QVM interpreter, including the seeded defects that
/// reproduce the interpreter-side findings of the paper (§5.3). Every seed
/// defaults to the buggy behaviour found in the real Pharo VM so that the
/// differential experiments detect them; tests flip them off to verify the
/// clean baseline agrees everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_VMCONFIG_H
#define IGDT_VM_VMCONFIG_H

#include <cstdint>

namespace igdt {

/// Tunables and defect seeds of the interpreter.
struct VMConfig {
  /// Maximum operand-stack depth a frame may declare. Bounds the
  /// StackSize constraint variable during concolic exploration.
  std::uint32_t MaxOperandStack = 12;

  /// Maximum slot count the solver may assign to an input object.
  std::uint32_t MaxObjectSlots = 32;

  /// Paper §5.3 "Missing interpreter type check": primitiveAsFloat checks
  /// its receiver only with an assert that production builds compile out,
  /// so a pointer receiver is untagged as if it were an integer and
  /// converted to a garbage float (Listing 5 of the paper).
  bool SeedAsFloatMissingReceiverCheck = true;

  /// Paper §5.3 "Behavioral difference": interpreter bit-wise operations
  /// fail (fall back to the slow message send) on negative operands,
  /// while compiled code handles them by treating them as unsigned.
  bool SeedBitOpsFailOnNegative = true;
};

} // namespace igdt

#endif // IGDT_VM_VMCONFIG_H
