//===- vm/ExitCondition.cpp - Instruction exit conditions -------------------===//

#include "vm/ExitCondition.h"

#include "support/Compiler.h"

using namespace igdt;

const char *igdt::exitKindName(ExitKind Kind) {
  switch (Kind) {
  case ExitKind::Success:
    return "success";
  case ExitKind::PrimitiveFailure:
    return "failure";
  case ExitKind::MessageSend:
    return "message-send";
  case ExitKind::MethodReturn:
    return "method-return";
  case ExitKind::InvalidFrame:
    return "invalid-frame";
  case ExitKind::InvalidMemoryAccess:
    return "invalid-memory-access";
  }
  igdt_unreachable("unknown exit kind");
}
