//===- vm/SelectorTable.h - Interned message selectors ---------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message selectors are interned into small integer ids so that the
/// interpreter exit condition "MessageSend #+ ..." and the JIT trampoline
/// call "send #+" can be compared cheaply by the differential tester.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_SELECTORTABLE_H
#define IGDT_VM_SELECTORTABLE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace igdt {

/// Identifier of an interned selector.
using SelectorId = std::uint16_t;

/// The special selectors with fixed ids; these back the type-predicted
/// arithmetic byte-codes (their slow path sends exactly these).
enum SpecialSelector : SelectorId {
  SelectorPlus = 0,     // +
  SelectorMinus,        // -
  SelectorTimes,        // *
  SelectorDivide,       // /
  SelectorFloorDivide,  // //
  SelectorModulo,       // "\\" (floored modulo)
  SelectorLess,         // <
  SelectorGreater,      // >
  SelectorLessEq,       // <=
  SelectorGreaterEq,    // >=
  SelectorEqual,        // =
  SelectorNotEqual,     // ~=
  SelectorBitAnd,       // bitAnd:
  SelectorBitOr,        // bitOr:
  SelectorBitXor,       // bitXor:
  SelectorBitShift,     // bitShift:
  SelectorIdentical,    // ==
  SelectorAt,           // at:
  SelectorAtPut,        // at:put:
  SelectorSize,         // size
  SelectorValue,        // value
  SelectorDoesNotUnderstand, // doesNotUnderstand:
  SelectorMustBeBoolean,     // mustBeBoolean
  NumSpecialSelectors
};

/// Bidirectional selector <-> id mapping with fixed special selectors.
class SelectorTable {
public:
  SelectorTable();

  /// Returns the id of \p Name, interning it if new.
  SelectorId intern(const std::string &Name);

  /// Returns the printable name of \p Id.
  const std::string &nameOf(SelectorId Id) const;

  /// Number of interned selectors.
  std::size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, SelectorId> Ids;
};

} // namespace igdt

#endif // IGDT_VM_SELECTORTABLE_H
