//===- vm/ClassTable.cpp - VM class descriptors ----------------------------===//

#include "vm/ClassTable.h"

#include "support/Compiler.h"

using namespace igdt;

const char *igdt::formatName(ObjectFormat Format) {
  switch (Format) {
  case ObjectFormat::Pointers:
    return "pointers";
  case ObjectFormat::IndexablePointers:
    return "indexable-pointers";
  case ObjectFormat::IndexableBytes:
    return "indexable-bytes";
  case ObjectFormat::Float64:
    return "float64";
  }
  igdt_unreachable("unknown object format");
}

ClassTable::ClassTable() {
  Classes.resize(FirstUserClassIndex);
  Classes[InvalidClassIndex] = {"<invalid>", ObjectFormat::Pointers, 0};
  Classes[UndefinedObjectClass] = {"UndefinedObject", ObjectFormat::Pointers, 0};
  Classes[TrueClass] = {"True", ObjectFormat::Pointers, 0};
  Classes[FalseClass] = {"False", ObjectFormat::Pointers, 0};
  Classes[SmallIntegerClass] = {"SmallInteger", ObjectFormat::Pointers, 0};
  Classes[BoxedFloatClass] = {"BoxedFloat", ObjectFormat::Float64, 0};
  Classes[ArrayClass] = {"Array", ObjectFormat::IndexablePointers, 0};
  Classes[ByteArrayClass] = {"ByteArray", ObjectFormat::IndexableBytes, 0};
  Classes[ByteStringClass] = {"ByteString", ObjectFormat::IndexableBytes, 0};
  Classes[PlainObjectClass] = {"Object", ObjectFormat::Pointers, 0};
  Classes[PointClass] = {"Point", ObjectFormat::Pointers, 2};
  Classes[AssociationClass] = {"Association", ObjectFormat::Pointers, 2};
  Classes[ExternalAddressClass] = {"ExternalAddress",
                                   ObjectFormat::IndexableBytes, 0};
}

std::uint32_t ClassTable::addClass(std::string Name, ObjectFormat Format,
                                   std::uint32_t FixedSlots) {
  Classes.push_back({std::move(Name), Format, FixedSlots});
  return static_cast<std::uint32_t>(Classes.size() - 1);
}

const ClassInfo &ClassTable::classAt(std::uint32_t Index) const {
  assert(isValidIndex(Index) && "invalid class index");
  return Classes[Index];
}
