//===- vm/ClassTable.h - VM class descriptors ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The class table maps class indices (stored in object headers) to class
/// descriptors. The abstract constraint model refers to classes purely by
/// class-table id (paper §3.2: "VM classes with their class table id").
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_CLASSTABLE_H
#define IGDT_VM_CLASSTABLE_H

#include "vm/ObjectFormat.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Descriptor of one VM class.
struct ClassInfo {
  std::string Name;
  ObjectFormat Format = ObjectFormat::Pointers;
  /// Number of fixed (named) slots for Pointers-format instances.
  std::uint32_t FixedSlots = 0;
};

/// The table of all classes known to a VM instance.
class ClassTable {
public:
  /// Builds a table pre-populated with the WellKnownClass entries.
  ClassTable();

  /// Registers a new class and returns its index.
  std::uint32_t addClass(std::string Name, ObjectFormat Format,
                         std::uint32_t FixedSlots);

  /// Returns the descriptor for \p Index; asserts on invalid indices.
  const ClassInfo &classAt(std::uint32_t Index) const;

  /// Returns true if \p Index denotes a registered class.
  bool isValidIndex(std::uint32_t Index) const {
    return Index > 0 && Index < Classes.size();
  }

  /// Number of registered classes (including the reserved slot 0).
  std::uint32_t size() const { return static_cast<std::uint32_t>(Classes.size()); }

  /// Drops every class registered after the table had \p Count entries
  /// (ObjectMemory::resetTo). Replay materialisation registers synthetic
  /// classes whose indices are baked into compiled code; a pooled heap
  /// must shed them between paths or indices would drift from a fresh
  /// heap's.
  void truncate(std::uint32_t Count) {
    assert(Count <= Classes.size() && "truncating to a larger table");
    Classes.resize(Count);
  }

private:
  std::vector<ClassInfo> Classes;
};

} // namespace igdt

#endif // IGDT_VM_CLASSTABLE_H
