//===- vm/ObjectMemory.cpp - Heap, headers, well-known objects -------------===//

#include "vm/ObjectMemory.h"

#include "support/Budget.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace igdt;

ObjectMemory::ObjectMemory(std::size_t HeapBytes) : Heap(HeapBytes, 0) {
  // Reserve the first 16 bytes so that no object sits exactly at HeapBase;
  // this keeps "address == HeapBase" available as a guard value.
  NextFree = 16;
  NilOop = allocateInstance(UndefinedObjectClass);
  TrueOop = allocateInstance(TrueClass);
  FalseOop = allocateInstance(FalseClass);
  assert(NilOop != InvalidOop && TrueOop != InvalidOop &&
         FalseOop != InvalidOop && "bootstrap allocation failed");
}

std::size_t ObjectMemory::bodyBytes(const ObjectHeader &Header) const {
  switch (static_cast<ObjectFormat>(Header.Format)) {
  case ObjectFormat::Pointers:
  case ObjectFormat::IndexablePointers:
    return std::size_t(Header.SlotCount) * 8;
  case ObjectFormat::IndexableBytes:
    return (std::size_t(Header.SlotCount) + 7) & ~std::size_t(7);
  case ObjectFormat::Float64:
    return 8;
  }
  igdt_unreachable("unknown object format");
}

void ObjectMemory::poison(const std::string &Why) {
  Poisoned = true;
  PoisonNote = Why;
}

void ObjectMemory::checkIntegrity() const {
  if (Poisoned)
    throw HarnessFault("heap", "heap integrity check failed: " + PoisonNote);
}

Oop ObjectMemory::allocateInstance(std::uint32_t ClassIndex,
                                   std::uint32_t IndexableSize) {
  checkIntegrity();
  assert(Classes.isValidIndex(ClassIndex) && "allocating unknown class");
  const ClassInfo &Info = Classes.classAt(ClassIndex);

  ObjectHeader Header = {};
  Header.ClassIndex = ClassIndex;
  Header.Format = static_cast<std::uint8_t>(Info.Format);
  Header.IdentityHash = NextHash;
  NextHash = NextHash * 2654435761u + 1;
  switch (Info.Format) {
  case ObjectFormat::Pointers:
    assert(IndexableSize == 0 && "fixed-slot class takes no indexable size");
    Header.SlotCount = Info.FixedSlots;
    break;
  case ObjectFormat::IndexablePointers:
  case ObjectFormat::IndexableBytes:
    Header.SlotCount = IndexableSize;
    break;
  case ObjectFormat::Float64:
    Header.SlotCount = 1;
    break;
  }

  std::size_t Bytes = sizeof(ObjectHeader) + bodyBytes(Header);
  if (NextFree + Bytes > Heap.size())
    return InvalidOop;

  Oop Object = HeapBase + NextFree;
  std::memcpy(&Heap[NextFree], &Header, sizeof(Header));
  std::uint8_t *Body = &Heap[NextFree + sizeof(Header)];
  // Pointer slots start as nil; byte bodies start zeroed. During bootstrap
  // NilOop is still InvalidOop, which is fine for the three singletons
  // because they have no slots.
  if (Info.Format == ObjectFormat::Pointers ||
      Info.Format == ObjectFormat::IndexablePointers) {
    for (std::uint32_t I = 0; I < Header.SlotCount; ++I)
      std::memcpy(Body + I * 8, &NilOop, 8);
  } else {
    std::memset(Body, 0, bodyBytes(Header));
  }
  NextFree += Bytes;
  return Object;
}

Oop ObjectMemory::allocateFloat(double Value) {
  Oop Object = allocateInstance(BoxedFloatClass);
  if (Object == InvalidOop)
    return InvalidOop;
  std::memcpy(bodyOf(Object), &Value, 8);
  return Object;
}

Oop ObjectMemory::allocateString(const std::string &Text) {
  Oop Object = allocateInstance(ByteStringClass,
                                static_cast<std::uint32_t>(Text.size()));
  if (Object == InvalidOop)
    return InvalidOop;
  std::memcpy(bodyOf(Object), Text.data(), Text.size());
  return Object;
}

bool ObjectMemory::isHeapObject(Oop Object) const {
  if (!isPointerOop(Object))
    return false;
  if (Object < HeapBase + 16 || Object >= HeapBase + NextFree)
    return false;
  return (Object & 7) == 0;
}

const ObjectHeader *ObjectMemory::headerOf(Oop Object) const {
  assert(isHeapObject(Object) && "not a heap object");
  return reinterpret_cast<const ObjectHeader *>(&Heap[Object - HeapBase]);
}

ObjectHeader *ObjectMemory::headerOf(Oop Object) {
  assert(isHeapObject(Object) && "not a heap object");
  return reinterpret_cast<ObjectHeader *>(&Heap[Object - HeapBase]);
}

std::uint8_t *ObjectMemory::bodyOf(Oop Object) {
  return &Heap[Object - HeapBase + sizeof(ObjectHeader)];
}

const std::uint8_t *ObjectMemory::bodyOf(Oop Object) const {
  return &Heap[Object - HeapBase + sizeof(ObjectHeader)];
}

std::uint32_t ObjectMemory::classIndexOf(Oop Object) const {
  if (isSmallIntOop(Object))
    return SmallIntegerClass;
  if (!isHeapObject(Object))
    return InvalidClassIndex;
  return headerOf(Object)->ClassIndex;
}

ObjectFormat ObjectMemory::formatOf(Oop Object) const {
  assert(isHeapObject(Object) && "format of a non-heap value");
  return static_cast<ObjectFormat>(headerOf(Object)->Format);
}

std::uint32_t ObjectMemory::slotCountOf(Oop Object) const {
  if (!isHeapObject(Object))
    return 0;
  return headerOf(Object)->SlotCount;
}

std::uint32_t ObjectMemory::identityHashOf(Oop Object) const {
  if (isSmallIntOop(Object))
    return static_cast<std::uint32_t>(smallIntValue(Object));
  if (!isHeapObject(Object))
    return 0;
  return headerOf(Object)->IdentityHash;
}

std::optional<Oop> ObjectMemory::fetchPointerSlot(Oop Object,
                                                  std::uint32_t Index) const {
  if (!isHeapObject(Object))
    return std::nullopt;
  const ObjectHeader *Header = headerOf(Object);
  auto Format = static_cast<ObjectFormat>(Header->Format);
  if (Format != ObjectFormat::Pointers &&
      Format != ObjectFormat::IndexablePointers)
    return std::nullopt;
  if (Index >= Header->SlotCount)
    return std::nullopt;
  Oop Value;
  std::memcpy(&Value, bodyOf(Object) + std::size_t(Index) * 8, 8);
  return Value;
}

bool ObjectMemory::storePointerSlot(Oop Object, std::uint32_t Index,
                                    Oop Value) {
  if (!isHeapObject(Object))
    return false;
  ObjectHeader *Header = headerOf(Object);
  auto Format = static_cast<ObjectFormat>(Header->Format);
  if (Format != ObjectFormat::Pointers &&
      Format != ObjectFormat::IndexablePointers)
    return false;
  if (Index >= Header->SlotCount)
    return false;
  std::size_t Off =
      Object - HeapBase + sizeof(ObjectHeader) + std::size_t(Index) * 8;
  if (IGDT_UNLIKELY(Off < JournalLimit))
    journal64(Off);
  std::memcpy(&Heap[Off], &Value, 8);
  return true;
}

std::optional<std::uint8_t> ObjectMemory::fetchByte(Oop Object,
                                                    std::uint32_t Index) const {
  if (!isHeapObject(Object))
    return std::nullopt;
  const ObjectHeader *Header = headerOf(Object);
  if (static_cast<ObjectFormat>(Header->Format) != ObjectFormat::IndexableBytes)
    return std::nullopt;
  if (Index >= Header->SlotCount)
    return std::nullopt;
  return bodyOf(Object)[Index];
}

bool ObjectMemory::storeByte(Oop Object, std::uint32_t Index,
                             std::uint8_t Value) {
  if (!isHeapObject(Object))
    return false;
  ObjectHeader *Header = headerOf(Object);
  if (static_cast<ObjectFormat>(Header->Format) != ObjectFormat::IndexableBytes)
    return false;
  if (Index >= Header->SlotCount)
    return false;
  std::size_t Off = Object - HeapBase + sizeof(ObjectHeader) + Index;
  if (IGDT_UNLIKELY(Off < JournalLimit))
    journal8(Off);
  Heap[Off] = Value;
  return true;
}

std::optional<double> ObjectMemory::floatValueOf(Oop Object) const {
  if (!isBoxedFloat(Object))
    return std::nullopt;
  double Value;
  std::memcpy(&Value, bodyOf(Object), 8);
  return Value;
}

std::optional<double> ObjectMemory::unsafeFloatValueAt(Oop Object) const {
  // No class check: reads 8 bytes from the body address if it is mapped.
  auto Raw = load64(bodyAddress(Object));
  if (!Raw)
    return std::nullopt;
  double Value;
  std::memcpy(&Value, &*Raw, 8);
  return Value;
}

bool ObjectMemory::containsAddress(std::uint64_t Address,
                                   std::uint32_t Size) const {
  return Address >= HeapBase && Address + Size <= HeapBase + NextFree &&
         Address + Size >= Address;
}

std::optional<std::uint64_t> ObjectMemory::load64(std::uint64_t Address) const {
  if ((Address & 7) != 0 || !containsAddress(Address, 8))
    return std::nullopt;
  std::uint64_t Value;
  std::memcpy(&Value, &Heap[Address - HeapBase], 8);
  return Value;
}

bool ObjectMemory::store64(std::uint64_t Address, std::uint64_t Value) {
  if ((Address & 7) != 0 || !containsAddress(Address, 8))
    return false;
  std::size_t Off = static_cast<std::size_t>(Address - HeapBase);
  if (IGDT_UNLIKELY(Off < JournalLimit))
    journal64(Off);
  std::memcpy(&Heap[Off], &Value, 8);
  return true;
}

std::optional<std::uint8_t> ObjectMemory::load8(std::uint64_t Address) const {
  if (!containsAddress(Address, 1))
    return std::nullopt;
  return Heap[Address - HeapBase];
}

bool ObjectMemory::store8(std::uint64_t Address, std::uint8_t Value) {
  if (!containsAddress(Address, 1))
    return false;
  std::size_t Off = static_cast<std::size_t>(Address - HeapBase);
  if (IGDT_UNLIKELY(Off < JournalLimit))
    journal8(Off);
  Heap[Off] = Value;
  return true;
}

void ObjectMemory::journal64(std::size_t Offset) {
  std::uint64_t Old;
  std::memcpy(&Old, &Heap[Offset], 8);
  Journal.push_back({Offset, Old, 8});
}

void ObjectMemory::journal8(std::size_t Offset) {
  Journal.push_back({Offset, Heap[Offset], 1});
}

HeapMark ObjectMemory::mark() {
  HeapMark M;
  M.NextFree = NextFree;
  M.NextHash = NextHash;
  M.ClassCount = Classes.size();
  M.JournalDepth = Journal.size();
  JournalLimit = NextFree;
  return M;
}

void ObjectMemory::resetTo(const HeapMark &M) {
  // Undo in reverse so the oldest journalled value of a repeatedly
  // clobbered byte wins.
  for (std::size_t I = Journal.size(); I > M.JournalDepth; --I) {
    const UndoEntry &U = Journal[I - 1];
    if (U.Width == 8)
      std::memcpy(&Heap[U.Offset], &U.OldValue, 8);
    else
      Heap[U.Offset] = static_cast<std::uint8_t>(U.OldValue);
    ++UndoReplayed;
  }
  Journal.resize(M.JournalDepth);
  // Objects above the mark are released without zeroing: allocation
  // re-initialises header and body, and nothing can observe bytes above
  // NextFree (containsAddress bounds every raw access against it).
  NextFree = M.NextFree;
  // The hash sequence is part of observable state — identity hashes sit
  // in headers that raw loads can read — so it rewinds too.
  NextHash = M.NextHash;
  Classes.truncate(M.ClassCount);
  Poisoned = false;
  PoisonNote.clear();
  JournalLimit = M.NextFree;
}

std::uint64_t ObjectMemory::contentHash() const {
  std::uint64_t H = 1469598103934665603ull; // FNV-1a 64
  auto Fold = [&H](std::uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  };
  for (std::size_t I = 0; I < NextFree; ++I)
    Fold(Heap[I]);
  // The cursors are observable too: NextFree bounds raw loads and
  // NextHash shows up in the next allocation's header.
  for (unsigned I = 0; I < 8; ++I)
    Fold(static_cast<std::uint8_t>(std::uint64_t(NextFree) >> (8 * I)));
  for (unsigned I = 0; I < 4; ++I)
    Fold(static_cast<std::uint8_t>(NextHash >> (8 * I)));
  return H;
}

std::string ObjectMemory::describe(Oop Value) const {
  if (Value == InvalidOop)
    return "<invalid>";
  if (isSmallIntOop(Value))
    return formatString("%lld", (long long)smallIntValue(Value));
  if (Value == NilOop)
    return "nil";
  if (Value == TrueOop)
    return "true";
  if (Value == FalseOop)
    return "false";
  if (!isHeapObject(Value))
    return formatString("<bad-oop %llx>", (unsigned long long)Value);
  std::uint32_t ClassIndex = classIndexOf(Value);
  if (ClassIndex == BoxedFloatClass) {
    std::string Text = formatString("%g", *floatValueOf(Value));
    // Keep boxed floats visually distinct from immediates.
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos &&
        Text.find("nan") == std::string::npos &&
        Text.find("inf") == std::string::npos)
      Text += ".0";
    return Text;
  }
  return formatString("a(n) %s(size %u)@%llx",
                      Classes.classAt(ClassIndex).Name.c_str(),
                      slotCountOf(Value), (unsigned long long)Value);
}
