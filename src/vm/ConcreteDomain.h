//===- vm/ConcreteDomain.h - Concrete execution domain ----------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete value domain for InterpreterCore. Values are plain Oops,
/// integers are int64, floats are double; nothing is recorded. The same
/// interpreter source instantiated with symbolic::ConcolicDomain performs
/// the concolic meta-interpretation of the paper; this instantiation is
/// the plain interpreter used by unit tests, examples and oracles.
///
/// The member set of this class *is* the Domain concept: any domain must
/// provide exactly these operations. Predicates return the concrete truth
/// of the condition; instrumented domains additionally record a path
/// constraint for every predicate call (paper §2.3).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_CONCRETEDOMAIN_H
#define IGDT_VM_CONCRETEDOMAIN_H

#include "support/IntMath.h"
#include "vm/ObjectMemory.h"
#include "vm/VMConfig.h"

#include <cmath>
#include <cstring>

namespace igdt {

/// Concrete domain: direct execution against an ObjectMemory.
class ConcreteDomain {
public:
  using Value = Oop;
  using IntV = std::int64_t;
  using FltV = double;

  ConcreteDomain(ObjectMemory &Memory, const VMConfig &Config)
      : Mem(Memory), Cfg(Config) {}

  ObjectMemory &memory() { return Mem; }
  const VMConfig &config() const { return Cfg; }

  /// \name Constants
  /// @{
  Value nilValue() { return Mem.nilObject(); }
  Value trueValue() { return Mem.trueObject(); }
  Value falseValue() { return Mem.falseObject(); }
  Value booleanValue(bool B) { return Mem.booleanObject(B); }
  Value literalValue(Oop Literal) { return Literal; }
  IntV intConst(std::int64_t V) { return V; }
  FltV floatConst(double V) { return V; }
  /// @}

  /// \name Frame-structural checks
  /// @{
  bool checkStackDepth(std::size_t ConcreteSize, std::uint32_t Needed) {
    return ConcreteSize >= Needed;
  }
  /// @}

  /// \name Type predicates
  /// @{
  bool isSmallInteger(Value V) { return isSmallIntOop(V); }
  bool isBoxedFloat(Value V) { return Mem.isBoxedFloat(V); }
  bool isPointersObject(Value V) {
    if (!Mem.isHeapObject(V))
      return false;
    ObjectFormat F = Mem.formatOf(V);
    return F == ObjectFormat::Pointers || F == ObjectFormat::IndexablePointers;
  }
  bool isIndexablePointers(Value V) {
    return Mem.isHeapObject(V) &&
           Mem.formatOf(V) == ObjectFormat::IndexablePointers;
  }
  bool isBytesObject(Value V) {
    return Mem.isHeapObject(V) &&
           Mem.formatOf(V) == ObjectFormat::IndexableBytes;
  }
  bool hasClassIndex(Value V, std::uint32_t ClassIdx) {
    return Mem.classIndexOf(V) == ClassIdx;
  }
  bool isTrueObject(Value V) { return V == Mem.trueObject(); }
  bool isFalseObject(Value V) { return V == Mem.falseObject(); }
  /// @}

  /// \name Small integers
  /// @{
  IntV integerValueOf(Value V) { return smallIntValue(V); }
  IntV uncheckedIntegerValueOf(Value V) { return smallIntValueUnchecked(V); }
  Value integerObjectOf(IntV I) { return smallIntOop(I); }
  bool isIntegerValue(IntV I) { return fitsSmallInt(I); }

  IntV addI(IntV A, IntV B) { return addSat(A, B); }
  IntV subI(IntV A, IntV B) { return subSat(A, B); }
  IntV mulI(IntV A, IntV B) { return mulSat(A, B); }
  IntV quoI(IntV A, IntV B) { return truncDiv(A, B); }
  IntV divFloorI(IntV A, IntV B) { return floorDiv(A, B); }
  IntV modFloorI(IntV A, IntV B) { return floorMod(A, B); }
  IntV negI(IntV A) { return negSat(A); }
  IntV bitAndI(IntV A, IntV B) { return A & B; }
  IntV bitOrI(IntV A, IntV B) { return A | B; }
  IntV bitXorI(IntV A, IntV B) { return A ^ B; }
  IntV shiftLeftI(IntV A, IntV Amount) { return shlSat(A, Amount); }
  IntV shiftRightI(IntV A, IntV Amount) { return asr(A, Amount); }
  IntV highBitI(IntV A) { return highBit(A); }

  bool lessI(IntV A, IntV B) { return A < B; }
  bool lessEqI(IntV A, IntV B) { return A <= B; }
  bool equalI(IntV A, IntV B) { return A == B; }

  /// Concretization point: in instrumented domains this pins the symbolic
  /// value to its concrete one; here it is the identity.
  std::int64_t pinInt(IntV I) { return I; }
  /// @}

  /// \name Floats
  /// @{
  FltV floatValueOf(Value V) { return *Mem.floatValueOf(V); }
  Value floatObjectOf(FltV F) { return Mem.allocateFloat(F); }
  FltV intToFloat(IntV I) { return static_cast<double>(I); }
  IntV truncToInt(FltV F) {
    if (F >= 9.2e18)
      return SatMax;
    if (F <= -9.2e18)
      return SatMin;
    return static_cast<std::int64_t>(std::trunc(F));
  }

  FltV faddF(FltV A, FltV B) { return A + B; }
  FltV fsubF(FltV A, FltV B) { return A - B; }
  FltV fmulF(FltV A, FltV B) { return A * B; }
  FltV fdivF(FltV A, FltV B) { return A / B; }
  FltV fsqrtF(FltV A) { return std::sqrt(A); }
  FltV fsinF(FltV A) { return std::sin(A); }
  FltV fcosF(FltV A) { return std::cos(A); }
  FltV fexpF(FltV A) { return std::exp(A); }
  FltV flnF(FltV A) { return std::log(A); }
  FltV fatanF(FltV A) { return std::atan(A); }
  FltV ffracF(FltV A) { return A - std::trunc(A); }

  bool lessF(FltV A, FltV B) { return A < B; }
  bool lessEqF(FltV A, FltV B) { return A <= B; }
  bool equalF(FltV A, FltV B) { return A == B; }
  /// @}

  /// \name Objects
  /// @{
  IntV slotCountOf(Value V) { return Mem.slotCountOf(V); }

  Value fetchSlot(Value Obj, IntV Index) {
    auto Slot = Mem.fetchPointerSlot(Obj, static_cast<std::uint32_t>(Index));
    assert(Slot && "fetchSlot after failed bounds validation");
    return *Slot;
  }
  void storeSlot(Value Obj, IntV Index, Value V) {
    bool Ok = Mem.storePointerSlot(Obj, static_cast<std::uint32_t>(Index), V);
    assert(Ok && "storeSlot after failed bounds validation");
    (void)Ok;
  }
  IntV fetchByteAt(Value Obj, IntV Index) {
    auto Byte = Mem.fetchByte(Obj, static_cast<std::uint32_t>(Index));
    assert(Byte && "fetchByteAt after failed bounds validation");
    return *Byte;
  }
  void storeByteAt(Value Obj, IntV Index, IntV Byte) {
    bool Ok = Mem.storeByte(Obj, static_cast<std::uint32_t>(Index),
                            static_cast<std::uint8_t>(Byte));
    assert(Ok && "storeByteAt after failed bounds validation");
    (void)Ok;
  }

  /// Multi-byte little-endian load from a bytes object (FFI accessors).
  IntV loadBytesLE(Value Obj, IntV Offset, unsigned Width, bool SignExtend) {
    std::uint64_t Raw = 0;
    for (unsigned I = 0; I < Width; ++I)
      Raw |= static_cast<std::uint64_t>(
                 *Mem.fetchByte(Obj, static_cast<std::uint32_t>(Offset) + I))
             << (8 * I);
    if (SignExtend && Width < 8) {
      std::uint64_t SignBit = 1ull << (8 * Width - 1);
      if (Raw & SignBit)
        Raw |= ~((SignBit << 1) - 1);
    }
    return static_cast<std::int64_t>(Raw);
  }
  void storeBytesLE(Value Obj, IntV Offset, unsigned Width, IntV V) {
    auto Raw = static_cast<std::uint64_t>(V);
    for (unsigned I = 0; I < Width; ++I)
      Mem.storeByte(Obj, static_cast<std::uint32_t>(Offset) + I,
                    static_cast<std::uint8_t>(Raw >> (8 * I)));
  }
  FltV loadFloat64LE(Value Obj, IntV Offset) {
    std::int64_t Bits = loadBytesLE(Obj, Offset, 8, false);
    double F;
    std::memcpy(&F, &Bits, 8);
    return F;
  }
  void storeFloat64LE(Value Obj, IntV Offset, FltV F) {
    std::int64_t Bits;
    std::memcpy(&Bits, &F, 8);
    storeBytesLE(Obj, Offset, 8, Bits);
  }
  FltV loadFloat32LE(Value Obj, IntV Offset) {
    auto Bits = static_cast<std::uint32_t>(loadBytesLE(Obj, Offset, 4, false));
    float F;
    std::memcpy(&F, &Bits, 4);
    return static_cast<double>(F);
  }
  void storeFloat32LE(Value Obj, IntV Offset, FltV F) {
    auto Narrow = static_cast<float>(F);
    std::uint32_t Bits;
    std::memcpy(&Bits, &Narrow, 4);
    storeBytesLE(Obj, Offset, 4, static_cast<std::int64_t>(Bits));
  }

  Value allocateInstance(std::uint32_t ClassIdx, IntV IndexableSize) {
    return Mem.allocateInstance(ClassIdx,
                                static_cast<std::uint32_t>(IndexableSize));
  }
  bool allocationFailed(Value V) { return V == InvalidOop; }

  /// True if class-table entry \p ClassIdx has storage format \p Fmt.
  /// Instrumented domains record this as a constraint on the class index.
  bool classFormatIs(IntV ClassIdx, ObjectFormat Fmt) {
    if (ClassIdx <= 0 || ClassIdx >= Mem.classTable().size())
      return false;
    return Mem.classTable()
               .classAt(static_cast<std::uint32_t>(ClassIdx))
               .Format == Fmt;
  }

  /// Allocates a same-class, same-size copy of \p Obj (pointer formats).
  Value shallowCopyOf(Value Obj) {
    std::uint32_t ClassIdx = Mem.classIndexOf(Obj);
    bool Indexable = Mem.formatOf(Obj) == ObjectFormat::IndexablePointers;
    std::uint32_t Count = Mem.slotCountOf(Obj);
    Value Copy = Mem.allocateInstance(ClassIdx, Indexable ? Count : 0);
    if (Copy == InvalidOop)
      return InvalidOop;
    for (std::uint32_t I = 0; I < Count; ++I)
      Mem.storePointerSlot(Copy, I, *Mem.fetchPointerSlot(Obj, I));
    return Copy;
  }

  bool sameObjectAs(Value A, Value B) { return A == B; }
  IntV classIndexValueOf(Value V) { return Mem.classIndexOf(V); }
  IntV identityHashOf(Value V) {
    if (isSmallIntOop(V))
      return smallIntValue(V);
    return Mem.identityHashOf(V);
  }
  /// @}

private:
  ObjectMemory &Mem;
  const VMConfig &Cfg;
};

} // namespace igdt

#endif // IGDT_VM_CONCRETEDOMAIN_H
