//===- vm/Frame.h - VM stack frames -----------------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VM stack frame parameterised on the value domain: Oop for concrete
/// execution, ConcolicValue for concolic execution. This mirrors the
/// abstract frame model of the paper (Figure 3): receiver, method,
/// arguments/locals, operand stack.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_FRAME_H
#define IGDT_VM_FRAME_H

#include "vm/CompiledMethod.h"

#include <cstdint>
#include <vector>

namespace igdt {

/// One VM frame over values of type \p V.
template <typename V> struct FrameT {
  V Receiver{};
  const CompiledMethod *Method = nullptr;
  /// Arguments followed by temporaries.
  std::vector<V> Locals;
  /// Operand stack; back() is the top.
  std::vector<V> Stack;
  std::uint32_t PC = 0;

  /// Value \p Depth entries below the top of the operand stack.
  /// Precondition: Depth < Stack.size().
  const V &stackValue(std::uint32_t Depth) const {
    return Stack[Stack.size() - 1 - Depth];
  }
  V &stackValue(std::uint32_t Depth) {
    return Stack[Stack.size() - 1 - Depth];
  }

  void push(V Value) { Stack.push_back(Value); }

  V pop() {
    V Top = Stack.back();
    Stack.pop_back();
    return Top;
  }

  void popN(std::uint32_t N) { Stack.resize(Stack.size() - N); }
};

} // namespace igdt

#endif // IGDT_VM_FRAME_H
