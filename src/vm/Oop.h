//===- vm/Oop.h - Tagged object pointers ----------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QVM value representation. An Oop (ordinary object pointer) is a
/// 64-bit word: bit 0 set marks an immediate SmallInteger whose signed
/// value lives in the upper 63 bits; bit 0 clear marks a heap reference
/// (a virtual address into ObjectMemory, always 8-byte aligned).
///
/// The usable SmallInteger range is deliberately narrower than 63 bits:
/// the paper's constraint solver supported only 56-bit integers (§4.3),
/// and the Pharo VM itself uses 61-bit SmallIntegers on 64-bit targets.
/// QVM uses a 61-bit signed payload so overflow checks are observable.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_OOP_H
#define IGDT_VM_OOP_H

#include <cassert>
#include <cstdint>

namespace igdt {

/// A tagged VM value: SmallInteger immediate or heap reference.
using Oop = std::uint64_t;

/// Number of signed bits in a SmallInteger payload.
inline constexpr int SmallIntBits = 61;

/// Largest representable SmallInteger value.
inline constexpr std::int64_t MaxSmallInt = (std::int64_t(1) << (SmallIntBits - 1)) - 1;

/// Smallest representable SmallInteger value.
inline constexpr std::int64_t MinSmallInt = -(std::int64_t(1) << (SmallIntBits - 1));

/// The null Oop; never a valid object. Distinct from the nil object.
inline constexpr Oop InvalidOop = 0;

/// Returns true if \p Value is an immediate SmallInteger.
inline bool isSmallIntOop(Oop Value) { return (Value & 1) != 0; }

/// Returns true if \p Value is a (potential) heap reference.
inline bool isPointerOop(Oop Value) { return (Value & 1) == 0 && Value != InvalidOop; }

/// Returns true if \p Value fits the SmallInteger payload.
inline bool fitsSmallInt(std::int64_t Value) {
  return Value >= MinSmallInt && Value <= MaxSmallInt;
}

/// Tags \p Value as a SmallInteger Oop. \p Value must fit.
inline Oop smallIntOop(std::int64_t Value) {
  assert(fitsSmallInt(Value) && "small integer out of range");
  return (static_cast<std::uint64_t>(Value) << 1) | 1;
}

/// Untags a SmallInteger Oop.
inline std::int64_t smallIntValue(Oop Value) {
  assert(isSmallIntOop(Value) && "not a small integer");
  return static_cast<std::int64_t>(Value) >> 1;
}

/// Untags without checking the tag; models what unsafe VM code does when
/// a type check is missing (the paper's primitiveAsFloat bug).
inline std::int64_t smallIntValueUnchecked(Oop Value) {
  return static_cast<std::int64_t>(Value) >> 1;
}

} // namespace igdt

#endif // IGDT_VM_OOP_H
