//===- vm/ObjectFormat.h - Heap object storage formats ---------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage formats of QVM heap objects and the well-known class table
/// indices. The abstract constraint model (symbolic/AbstractObject.h)
/// mirrors exactly these formats, as in Figure 3 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_OBJECTFORMAT_H
#define IGDT_VM_OBJECTFORMAT_H

#include <cstdint>

namespace igdt {

/// How the body of a heap object is laid out.
enum class ObjectFormat : std::uint8_t {
  /// Fixed number of Oop slots (regular objects).
  Pointers,
  /// Variable number of Oop slots (Array).
  IndexablePointers,
  /// Variable number of raw bytes (ByteArray, ByteString).
  IndexableBytes,
  /// One 8-byte IEEE double (BoxedFloat).
  Float64,
};

/// Class-table indices of the classes every QVM image contains.
/// Index 0 is reserved/invalid so that a zeroed header is detectable.
enum WellKnownClass : std::uint32_t {
  InvalidClassIndex = 0,
  UndefinedObjectClass = 1, // nil
  TrueClass = 2,
  FalseClass = 3,
  SmallIntegerClass = 4, // immediates; never instantiated on the heap
  BoxedFloatClass = 5,
  ArrayClass = 6,
  ByteArrayClass = 7,
  ByteStringClass = 8,
  PlainObjectClass = 9,  // generic 0..N fixed-slot object
  PointClass = 10,       // 2 fixed slots, used by examples/tests
  AssociationClass = 11, // 2 fixed slots (key, value)
  ExternalAddressClass = 12, // byte object wrapping an FFI address
  FirstUserClassIndex = 13,
};

/// Returns a printable name for \p Format.
const char *formatName(ObjectFormat Format);

} // namespace igdt

#endif // IGDT_VM_OBJECTFORMAT_H
