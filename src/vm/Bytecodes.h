//===- vm/Bytecodes.h - The QVM byte-code set ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QVM byte-code set: 117 encodings organised in Pharo-style families
/// (short forms with the operand folded into the opcode byte, plus
/// extended forms with explicit operand bytes). Byte-codes are unsafe by
/// design (paper §3.1): a pop does not validate the operand stack depth.
///
/// A raw encoding decodes to a compact (Operation, A, B) triple so that
/// the interpreter and the JIT front-ends share one semantic vocabulary
/// while every encoding remains an individually testable instruction.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_BYTECODES_H
#define IGDT_VM_BYTECODES_H

#include "vm/SelectorTable.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace igdt {

/// First byte of each encoding family. Short forms add their operand to
/// the family base.
enum BytecodeBase : std::uint8_t {
  BCPushLocalShort = 0x00,     // +0..11
  BCPushLiteralShort = 0x0C,   // +0..11
  BCPushInstVarShort = 0x18,   // +0..7
  BCPushConstant = 0x20,       // +0..6: nil,true,false,0,1,2,-1
  BCPushReceiver = 0x27,
  BCStoreLocalShort = 0x28,    // +0..7 (pops top into local)
  BCStoreInstVarShort = 0x30,  // +0..7 (pops top into inst var)
  BCPop = 0x38,
  BCDup = 0x39,
  BCPushLocalExt = 0x3A,       // operand byte
  BCPushLiteralExt = 0x3B,     // operand byte
  BCPushInstVarExt = 0x3C,     // operand byte
  BCStoreLocalExt = 0x3D,      // operand byte
  BCStoreInstVarExt = 0x3E,    // operand byte
  BCArithmetic = 0x40,         // +0..15, see ArithOp
  BCIdentityEquals = 0x50,
  BCShortJump = 0x51,          // +0..7: skip 1..8 bytes
  BCShortJumpFalse = 0x59,     // +0..7: pop; skip 1..8 if false
  BCLongJump = 0x61,           // signed offset byte
  BCLongJumpTrue = 0x62,       // signed offset byte
  BCLongJumpFalse = 0x63,      // signed offset byte
  BCSend0Short = 0x64,         // +0..3: send literal 0..3, no args
  BCSend1Short = 0x68,         // +0..3: send literal 0..3, 1 arg
  BCSend2Short = 0x6C,         // +0..3: send literal 0..3, 2 args
  BCSendExt = 0x70,            // literal byte, nargs byte
  BCReturnTop = 0x78,
  BCReturnReceiver = 0x79,
  BCReturnNil = 0x7A,
  BCReturnTrue = 0x7B,
  BCReturnFalse = 0x7C,
};

/// The sixteen type-predicted arithmetic/comparison byte-codes
/// (BCArithmetic + ArithOp). Their slow path sends the special selector
/// with the same index (see SpecialSelector).
enum class ArithOp : std::uint8_t {
  Add = 0,
  Sub,
  Mul,
  Div,      // "/": exact division only, else slow path
  FloorDiv, // "//"
  Mod,      // "\\"
  Less,
  Greater,
  LessEq,
  GreaterEq,
  Equal,
  NotEqual,
  BitAnd,
  BitOr,
  BitXor,
  BitShift,
};

inline constexpr unsigned NumArithOps = 16;

/// Semantic operation after decoding; short and extended encodings of the
/// same family decode to the same Operation.
enum class Operation : std::uint8_t {
  PushLocal,   // A = local index
  PushLiteral, // A = literal index
  PushInstVar, // A = inst var index
  PushConstant,// A = constant kind (0 nil,1 true,2 false,3..6 ints 0,1,2,-1)
  PushReceiver,
  StoreLocal,  // A = local index (pops)
  StoreInstVar,// A = inst var index (pops)
  Pop,
  Dup,
  Arithmetic,  // A = ArithOp
  IdentityEquals,
  Jump,        // A = signed byte offset from next pc
  JumpTrue,    // A = signed byte offset
  JumpFalse,   // A = signed byte offset
  Send,        // A = literal index of selector, B = num args
  ReturnTop,
  ReturnReceiver,
  ReturnConstant, // A = 0 nil, 1 true, 2 false
};

/// One decoded byte-code instruction.
struct DecodedBytecode {
  Operation Op;
  std::int32_t A = 0;
  std::int32_t B = 0;
  std::uint8_t Length = 1; // encoded bytes consumed
};

/// Decodes the instruction starting at \p PC within \p Code. Returns
/// nullopt for an unknown opcode or a truncated encoding.
std::optional<DecodedBytecode> decodeBytecode(const std::vector<std::uint8_t> &Code,
                                              std::uint32_t PC);

/// Printable mnemonic of the encoding whose first byte is \p Byte.
std::string bytecodeName(std::uint8_t Byte);

/// Returns the SpecialSelector sent by \p Op's slow path.
SelectorId arithSelector(ArithOp Op);

/// Number of values \p Op pops / pushes on its *fast* path. Used by the
/// JIT front-ends and by the instruction catalog.
struct StackEffect {
  std::uint8_t Pops;
  std::uint8_t Pushes;
};
StackEffect arithStackEffect();

} // namespace igdt

#endif // IGDT_VM_BYTECODES_H
