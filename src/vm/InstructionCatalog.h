//===- vm/InstructionCatalog.h - Testable instruction inventory ------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inventory of individually testable VM instructions: every byte-code
/// encoding plus every native method. Each entry carries the method shape
/// the instruction needs (paper §4.2: "the method will have as many
/// arguments or locals as required by the instruction") so the tester can
/// instantiate a one-instruction method around it.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_VM_INSTRUCTIONCATALOG_H
#define IGDT_VM_INSTRUCTIONCATALOG_H

#include "vm/CompiledMethod.h"
#include "vm/PrimitiveTable.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Whether an instruction is a byte-code or a native method (paper §3.1).
enum class InstructionKind : std::uint8_t { Bytecode, NativeMethod };

/// One testable VM instruction.
struct InstructionSpec {
  InstructionKind Kind = InstructionKind::Bytecode;
  std::string Name;
  std::string Family;
  /// Byte-codes: the encoded instruction.
  std::vector<std::uint8_t> Bytes;
  /// Native methods: primitive index.
  std::int32_t PrimitiveIndex = -1;
  /// Temporaries the wrapping method must declare.
  std::uint16_t NumLocals = 0;
  /// Literal frame of the wrapping method.
  std::vector<Oop> Literals;
  /// Filler bytes appended after the instruction so jump targets stay
  /// inside the method.
  std::uint32_t PaddingBytes = 0;
};

/// Returns every testable instruction: all byte-code encodings followed by
/// all native methods.
const std::vector<InstructionSpec> &allInstructions();

/// Returns only the byte-code / only the native-method entries.
std::vector<const InstructionSpec *> bytecodeInstructions();
std::vector<const InstructionSpec *> nativeMethodInstructions();

/// Finds an instruction by name; nullptr when absent.
const InstructionSpec *findInstruction(const std::string &Name);

/// Builds the one-instruction method that wraps \p Spec for testing.
CompiledMethod instantiateMethod(const InstructionSpec &Spec);

} // namespace igdt

#endif // IGDT_VM_INSTRUCTIONCATALOG_H
