//===- vm/InstructionCatalog.cpp - Testable instruction inventory ----------===//

#include "vm/InstructionCatalog.h"

#include "vm/Bytecodes.h"
#include "vm/SelectorTable.h"

#include <unordered_map>

using namespace igdt;

namespace {

/// Default literal pool for push-literal byte-codes: distinct small
/// integers so value mismatches are visible in reports.
Oop defaultLiteral(unsigned Index) { return smallIntOop(101 + Index); }

void addBytecode(std::vector<InstructionSpec> &Out, std::string Family,
                 std::vector<std::uint8_t> Bytes, std::uint16_t NumLocals = 0,
                 std::vector<Oop> Literals = {}, std::uint32_t Padding = 0) {
  InstructionSpec Spec;
  Spec.Kind = InstructionKind::Bytecode;
  Spec.Name = bytecodeName(Bytes[0]);
  Spec.Family = std::move(Family);
  Spec.Bytes = std::move(Bytes);
  Spec.NumLocals = NumLocals;
  Spec.Literals = std::move(Literals);
  Spec.PaddingBytes = Padding;
  Out.push_back(std::move(Spec));
}

std::vector<InstructionSpec> buildCatalog() {
  std::vector<InstructionSpec> Out;

  // --- push family ---
  for (std::uint8_t I = 0; I < 12; ++I)
    addBytecode(Out, "pushLocal", {std::uint8_t(BCPushLocalShort + I)},
                std::uint16_t(I + 1));
  addBytecode(Out, "pushLocal", {BCPushLocalExt, 12}, 13);

  for (std::uint8_t I = 0; I < 12; ++I) {
    std::vector<Oop> Lits;
    for (unsigned L = 0; L <= I; ++L)
      Lits.push_back(defaultLiteral(L));
    addBytecode(Out, "pushLiteral", {std::uint8_t(BCPushLiteralShort + I)}, 0,
                Lits);
  }
  {
    std::vector<Oop> Lits;
    for (unsigned L = 0; L <= 12; ++L)
      Lits.push_back(defaultLiteral(L));
    addBytecode(Out, "pushLiteral", {BCPushLiteralExt, 12}, 0, Lits);
  }

  for (std::uint8_t I = 0; I < 8; ++I)
    addBytecode(Out, "pushInstVar", {std::uint8_t(BCPushInstVarShort + I)});
  addBytecode(Out, "pushInstVar", {BCPushInstVarExt, 8});

  for (std::uint8_t I = 0; I < 7; ++I)
    addBytecode(Out, "pushConstant", {std::uint8_t(BCPushConstant + I)});
  addBytecode(Out, "pushReceiver", {BCPushReceiver});

  // --- store family ---
  for (std::uint8_t I = 0; I < 8; ++I)
    addBytecode(Out, "storeLocal", {std::uint8_t(BCStoreLocalShort + I)},
                std::uint16_t(I + 1));
  addBytecode(Out, "storeLocal", {BCStoreLocalExt, 8}, 9);

  for (std::uint8_t I = 0; I < 8; ++I)
    addBytecode(Out, "storeInstVar", {std::uint8_t(BCStoreInstVarShort + I)});
  addBytecode(Out, "storeInstVar", {BCStoreInstVarExt, 8});

  // --- stack manipulation ---
  addBytecode(Out, "pop", {BCPop});
  addBytecode(Out, "dup", {BCDup});

  // --- type-predicted arithmetic (each op is its own family, as in the
  // Pharo special-selector byte-codes) ---
  for (std::uint8_t I = 0; I < NumArithOps; ++I)
    addBytecode(Out, bytecodeName(std::uint8_t(BCArithmetic + I)),
                {std::uint8_t(BCArithmetic + I)});
  addBytecode(Out, "identityEquals", {BCIdentityEquals});

  // --- jumps (padding keeps the targets inside the method) ---
  for (std::uint8_t I = 0; I < 8; ++I)
    addBytecode(Out, "shortJump", {std::uint8_t(BCShortJump + I)}, 0, {}, 10);
  for (std::uint8_t I = 0; I < 8; ++I)
    addBytecode(Out, "shortJumpFalse", {std::uint8_t(BCShortJumpFalse + I)}, 0,
                {}, 10);
  addBytecode(Out, "longJump", {BCLongJump, 4}, 0, {}, 8);
  addBytecode(Out, "longJumpTrue", {BCLongJumpTrue, 4}, 0, {}, 8);
  addBytecode(Out, "longJumpFalse", {BCLongJumpFalse, 4}, 0, {}, 8);

  // --- sends (literal frame holds selector ids as SmallIntegers) ---
  const SelectorId ZeroArg[4] = {SelectorSize, SelectorValue,
                                 SelectorIdentical, SelectorPlus};
  const SelectorId OneArg[4] = {SelectorPlus, SelectorMinus, SelectorAt,
                                SelectorLess};
  const SelectorId TwoArg[4] = {SelectorAtPut, SelectorAtPut, SelectorAtPut,
                                SelectorAtPut};
  auto SelectorPool = [](const SelectorId (&Pool)[4]) {
    std::vector<Oop> Lits;
    for (SelectorId Sel : Pool)
      Lits.push_back(smallIntOop(Sel));
    return Lits;
  };
  for (std::uint8_t I = 0; I < 4; ++I)
    addBytecode(Out, "send", {std::uint8_t(BCSend0Short + I)}, 0,
                SelectorPool(ZeroArg));
  for (std::uint8_t I = 0; I < 4; ++I)
    addBytecode(Out, "send", {std::uint8_t(BCSend1Short + I)}, 0,
                SelectorPool(OneArg));
  for (std::uint8_t I = 0; I < 4; ++I)
    addBytecode(Out, "send", {std::uint8_t(BCSend2Short + I)}, 0,
                SelectorPool(TwoArg));
  addBytecode(Out, "send", {BCSendExt, 0, 3}, 0,
              {smallIntOop(SelectorAtPut)});

  // --- returns ---
  addBytecode(Out, "return", {BCReturnTop});
  addBytecode(Out, "return", {BCReturnReceiver});
  addBytecode(Out, "return", {BCReturnNil});
  addBytecode(Out, "return", {BCReturnTrue});
  addBytecode(Out, "return", {BCReturnFalse});

  // --- native methods ---
  for (const PrimitiveInfo &Info : allPrimitives()) {
    InstructionSpec Spec;
    Spec.Kind = InstructionKind::NativeMethod;
    Spec.Name = Info.Name;
    Spec.Family = primitiveFamilyName(Info.Family);
    Spec.PrimitiveIndex = Info.Index;
    Out.push_back(std::move(Spec));
  }

  return Out;
}

} // namespace

const std::vector<InstructionSpec> &igdt::allInstructions() {
  static const std::vector<InstructionSpec> Catalog = buildCatalog();
  return Catalog;
}

std::vector<const InstructionSpec *> igdt::bytecodeInstructions() {
  std::vector<const InstructionSpec *> Out;
  for (const InstructionSpec &Spec : allInstructions())
    if (Spec.Kind == InstructionKind::Bytecode)
      Out.push_back(&Spec);
  return Out;
}

std::vector<const InstructionSpec *> igdt::nativeMethodInstructions() {
  std::vector<const InstructionSpec *> Out;
  for (const InstructionSpec &Spec : allInstructions())
    if (Spec.Kind == InstructionKind::NativeMethod)
      Out.push_back(&Spec);
  return Out;
}

const InstructionSpec *igdt::findInstruction(const std::string &Name) {
  static const std::unordered_map<std::string, const InstructionSpec *> Index =
      [] {
        std::unordered_map<std::string, const InstructionSpec *> Map;
        for (const InstructionSpec &Spec : allInstructions())
          Map.emplace(Spec.Name, &Spec);
        return Map;
      }();
  auto It = Index.find(Name);
  return It == Index.end() ? nullptr : It->second;
}

CompiledMethod igdt::instantiateMethod(const InstructionSpec &Spec) {
  CompiledMethod Method;
  Method.Name = Spec.Name;
  Method.NumTemps = Spec.NumLocals;
  Method.Literals = Spec.Literals;
  if (Spec.Kind == InstructionKind::NativeMethod) {
    const PrimitiveInfo *Info = primitiveInfo(Spec.PrimitiveIndex);
    Method.PrimitiveIndex = Spec.PrimitiveIndex;
    Method.NumArgs = Info ? Info->NumArgs : 0;
    // Fallback body: plain return of the receiver.
    Method.Bytecodes = {BCReturnReceiver};
    return Method;
  }
  Method.Bytecodes = Spec.Bytes;
  // Pad with pushReceiver so forward jump targets stay in the method.
  for (std::uint32_t I = 0; I < Spec.PaddingBytes; ++I)
    Method.Bytecodes.push_back(BCPushReceiver);
  return Method;
}
