//===- support/Flags.h - Minimal command-line flag parser -------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny declarative flag parser shared by the bench binaries and the
/// examples, replacing the hand-rolled argv loops each of them grew.
/// Flags bind directly to caller-owned variables:
///
/// \code
///   unsigned Jobs = 1;
///   FlagParser Flags("campaign_parallel");
///   Flags.add("jobs", &Jobs, "worker threads (0 = hardware)");
///   if (!Flags.parse(Argc, Argv))
///     return Flags.helpRequested() ? 0 : 2;
/// \endcode
///
/// Supported syntax: `--name value`, `--name=value`, bare `--name` for
/// bool switches, and `--help`. Unknown flags fail the parse with a
/// diagnostic on stdout. Repeatable string flags append to a vector.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_FLAGS_H
#define IGDT_SUPPORT_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Declarative argv parser; see the file comment for the syntax.
class FlagParser {
public:
  explicit FlagParser(std::string Program, std::string Summary = "")
      : Program(std::move(Program)), Summary(std::move(Summary)) {}

  /// \name Flag registration (caller keeps ownership of the target)
  /// @{
  void add(const std::string &Name, bool *Out, const std::string &Help);
  void add(const std::string &Name, unsigned *Out, const std::string &Help);
  void add(const std::string &Name, std::uint64_t *Out,
           const std::string &Help);
  void add(const std::string &Name, double *Out, const std::string &Help);
  void add(const std::string &Name, std::string *Out, const std::string &Help);
  /// Repeatable: every occurrence appends one element.
  void add(const std::string &Name, std::vector<std::string> *Out,
           const std::string &Help);
  /// @}

  /// Marks an already-registered flag as deprecated: using it still
  /// works, but parse() prints one warning (with \p Note naming the
  /// replacement) to stderr per occurrence. Lets legacy spellings that
  /// bypass the shared request vocabulary warn before removal.
  void deprecate(const std::string &Name, const std::string &Note);

  /// Parses \p Argv. Returns false on `--help` (helpRequested() true,
  /// usage printed) or on a bad/unknown flag (diagnostic printed).
  bool parse(int Argc, char **Argv);

  /// Arguments that were not flags, in order.
  const std::vector<std::string> &positional() const { return Positional; }

  bool helpRequested() const { return HelpSeen; }

  /// The usage text `--help` prints.
  std::string usage() const;

private:
  enum class FlagKind : std::uint8_t {
    Switch,
    Unsigned,
    Uint64,
    Double,
    String,
    StringList
  };

  struct Flag {
    std::string Name;
    FlagKind Kind = FlagKind::Switch;
    void *Target = nullptr;
    std::string Help;
    /// Non-empty = deprecated; the note names the replacement.
    std::string DeprecatedNote;
  };

  void addFlag(const std::string &Name, FlagKind Kind, void *Target,
               const std::string &Help);
  const Flag *find(const std::string &Name) const;

  std::string Program;
  std::string Summary;
  std::vector<Flag> Flags;
  std::vector<std::string> Positional;
  bool HelpSeen = false;
};

} // namespace igdt

#endif // IGDT_SUPPORT_FLAGS_H
