//===- support/CpuFeatures.h - Host capability probing --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One place that answers "what can this host actually run?" for every
/// execution engine. Two kinds of answers live here:
///
///  - Compile-time toolchain capabilities (does this build carry the
///    labels-as-values threaded dispatcher?), which are constants.
///  - Runtime hardware/OS capabilities (is this an x86-64 unix host
///    whose CPU has the SSE4.1 instructions the native tier emits?),
///    which are probed once via CPUID and cached.
///
/// Both engines that need gating consult this header, so degradation
/// decisions (Native -> Threaded -> Switch) read the same facts.
/// `IGDT_NO_NATIVE` in the environment forces the native tier off,
/// mirroring `IGDT_NO_FORK` for the process pool: CI and tests use it
/// to exercise the graceful-degradation path on hosts that would
/// otherwise support native execution.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_CPUFEATURES_H
#define IGDT_SUPPORT_CPUFEATURES_H

namespace igdt {

/// True when this build carries the computed-goto threaded dispatcher
/// (labels-as-values is a GNU extension); otherwise the predecoded
/// engine transparently degrades to the reference switch loop.
/// (Declared in jit/PredecodedCode.h as well for historical reasons;
/// this is the single definition.)
bool simThreadedDispatchSupported();

/// True when the native x86-64 execution tier can run on this host:
/// an x86-64 unix build, a CPU reporting SSE4.1 (the generated code
/// uses roundsd), and no `IGDT_NO_NATIVE` environment override. The
/// probe runs once and is cached; engines that see `false` degrade to
/// the threaded dispatcher (or the switch loop) with identical
/// observable behaviour.
bool nativeTierSupported();

/// Re-probes the environment override and CPU features. Tests that
/// setenv/unsetenv `IGDT_NO_NATIVE` mid-process call this to make the
/// cached answer reflect the new environment.
void refreshCpuFeatureCacheForTesting();

} // namespace igdt

#endif // IGDT_SUPPORT_CPUFEATURES_H
