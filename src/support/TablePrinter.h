//===- support/TablePrinter.h - Aligned ASCII tables -----------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the evaluation tables (Table 1-3 of the paper) as aligned
/// ASCII. Benches and examples print through this so that the regenerated
/// rows look like the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_TABLEPRINTER_H
#define IGDT_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace igdt {

/// Accumulates rows of cells and renders them with per-column alignment.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends one data row; it may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders header, separator and rows into a single string.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace igdt

#endif // IGDT_SUPPORT_TABLEPRINTER_H
