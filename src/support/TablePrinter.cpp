//===- support/TablePrinter.cpp - Aligned ASCII tables ---------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace igdt;

TablePrinter::TablePrinter(std::vector<std::string> HeaderCells)
    : Header(std::move(HeaderCells)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> Widths(Header.size(), 0);
  auto Measure = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      if (I >= Widths.size())
        Widths.resize(I + 1, 0);
      Widths[I] = std::max(Widths[I], Cells[I].size());
    }
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (std::size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : "";
      Line += " " + Cell + std::string(Widths[I] - Cell.size(), ' ') + " |";
    }
    return Line + "\n";
  };

  std::string Out = RenderRow(Header);
  std::string Sep = "|";
  for (std::size_t W : Widths)
    Sep += std::string(W + 2, '-') + "|";
  Out += Sep + "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
