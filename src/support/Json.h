//===- support/Json.h - Minimal JSON values for reports and checkpoints -------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON reader/writer used by the campaign layer
/// for its JSONL incident reports and checkpoint files. Values keep
/// object keys in insertion order so emitted lines are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_JSON_H
#define IGDT_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace igdt {

/// Escapes \p Text for embedding inside a JSON string literal.
std::string jsonEscape(const std::string &Text);

/// A JSON value (null, bool, number, string, array, object).
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool Value);
  static JsonValue number(double Value);
  static JsonValue string(std::string Value);
  static JsonValue array();
  static JsonValue object();

  /// Appends \p Value under \p Key (object values only).
  JsonValue &set(const std::string &Key, JsonValue Value);
  /// Appends \p Value (array values only).
  JsonValue &push(JsonValue Value);

  /// Looks \p Key up in an object; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  /// \name Typed accessors with defaults (for tolerant checkpoint reads)
  /// @{
  double numberOr(const std::string &Key, double Default) const;
  std::string stringOr(const std::string &Key,
                       const std::string &Default) const;
  bool boolOr(const std::string &Key, bool Default) const;
  /// @}

  /// Serialises to compact single-line JSON.
  std::string dump() const;

  /// Parses \p Text; nullopt on malformed input.
  static std::optional<JsonValue> parse(const std::string &Text);
};

} // namespace igdt

#endif // IGDT_SUPPORT_JSON_H
