//===- support/CpuFeatures.cpp - Host capability probing ------------------===//

#include "support/CpuFeatures.h"

#include <cstdlib>

using namespace igdt;

// The threaded dispatcher uses the labels-as-values GNU extension; on
// other toolchains the predecoded engine degrades to the reference
// switch loop (same semantics, per-instruction fuel).
#if defined(__GNUC__) || defined(__clang__)
#define IGDT_SIM_THREADED 1
#else
#define IGDT_SIM_THREADED 0
#endif

// The native tier emits x86-64 machine code into an mmap'd buffer and
// is only compiled in on x86-64 unix hosts (see jit/native/).
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define IGDT_NATIVE_BUILD 1
#else
#define IGDT_NATIVE_BUILD 0
#endif

bool igdt::simThreadedDispatchSupported() { return IGDT_SIM_THREADED; }

namespace {

bool probeNativeTier() {
#if IGDT_NATIVE_BUILD
  if (std::getenv("IGDT_NO_NATIVE") != nullptr)
    return false;
  // The generated code uses roundsd (SSE4.1) for FTruncF; every other
  // emitted instruction is baseline x86-64. Probe once via cpuid.
  return __builtin_cpu_supports("sse4.1");
#else
  return false;
#endif
}

bool &nativeTierCache() {
  static bool Cached = probeNativeTier();
  return Cached;
}

} // namespace

bool igdt::nativeTierSupported() { return nativeTierCache(); }

void igdt::refreshCpuFeatureCacheForTesting() {
  nativeTierCache() = probeNativeTier();
}
