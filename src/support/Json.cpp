//===- support/Json.cpp - Minimal JSON values for reports and checkpoints -----===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>

using namespace igdt;

std::string igdt::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

JsonValue JsonValue::boolean(bool Value) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = Value;
  return V;
}

JsonValue JsonValue::number(double Value) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = Value;
  return V;
}

JsonValue JsonValue::string(std::string Value) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(Value);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue Value) {
  Obj.emplace_back(Key, std::move(Value));
  return *this;
}

JsonValue &JsonValue::push(JsonValue Value) {
  Arr.push_back(std::move(Value));
  return *this;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

double JsonValue::numberOr(const std::string &Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::Number ? V->Num : Default;
}

std::string JsonValue::stringOr(const std::string &Key,
                                const std::string &Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::String ? V->Str : Default;
}

bool JsonValue::boolOr(const std::string &Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::Bool ? V->B : Default;
}

std::string JsonValue::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Number: {
    // Integers (the common case for counters) print without a fraction.
    if (std::floor(Num) == Num && std::abs(Num) < 9e15)
      return formatString("%lld", (long long)Num);
    return formatString("%.17g", Num);
  }
  case Kind::String:
    return "\"" + jsonEscape(Str) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (std::size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ",";
      Out += Arr[I].dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (std::size_t I = 0; I < Obj.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + jsonEscape(Obj[I].first) + "\":" + Obj[I].second.dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over an in-memory string.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::optional<JsonValue> parse() {
    auto V = parseValue();
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return std::nullopt; // trailing garbage
    return V;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *Word) {
    std::size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += H - '0';
          else if (H >= 'a' && H <= 'f')
            Code += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code += H - 'A' + 10;
          else
            return std::nullopt;
        }
        // Sub-U+0080 only: our own emitter never produces more.
        Out += static_cast<char>(Code & 0x7F);
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // unterminated
  }

  std::optional<JsonValue> parseValue() {
    skipSpace();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      JsonValue Obj = JsonValue::object();
      skipSpace();
      if (consume('}'))
        return Obj;
      while (true) {
        auto Key = parseString();
        if (!Key || !consume(':'))
          return std::nullopt;
        auto Value = parseValue();
        if (!Value)
          return std::nullopt;
        Obj.set(*Key, std::move(*Value));
        if (consume(','))
          continue;
        if (consume('}'))
          return Obj;
        return std::nullopt;
      }
    }
    if (C == '[') {
      ++Pos;
      JsonValue Arr = JsonValue::array();
      skipSpace();
      if (consume(']'))
        return Arr;
      while (true) {
        auto Value = parseValue();
        if (!Value)
          return std::nullopt;
        Arr.push(std::move(*Value));
        if (consume(','))
          continue;
        if (consume(']'))
          return Arr;
        return std::nullopt;
      }
    }
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return std::nullopt;
      return JsonValue::string(std::move(*S));
    }
    if (consumeWord("true"))
      return JsonValue::boolean(true);
    if (consumeWord("false"))
      return JsonValue::boolean(false);
    if (consumeWord("null"))
      return JsonValue::null();
    // Number.
    std::size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      return std::nullopt;
    try {
      double Num = std::stod(Text.substr(Pos, End - Pos));
      Pos = End;
      return JsonValue::number(Num);
    } catch (...) {
      return std::nullopt;
    }
  }

  const std::string &Text;
  std::size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text) {
  return Parser(Text).parse();
}
