//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a few joining helpers,
/// used by term printers, reports and the table renderers.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_STRINGUTILS_H
#define IGDT_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Renders \p Value as 0x-prefixed hexadecimal.
std::string toHex(std::uint64_t Value);

/// Renders a percentage with two decimals, e.g. "28.95%".
std::string formatPercent(double Fraction);

/// FNV-1a over the bytes of \p Text. Stable across processes and
/// platforms (unlike std::hash), so it can derive reproducible solver
/// seeds from instruction names.
std::uint64_t stableHash64(const std::string &Text);

/// Boost-style order-sensitive 64-bit hash combiner.
inline std::uint64_t hashCombine64(std::uint64_t Seed, std::uint64_t Value) {
  return Seed ^ (Value + 0x9E3779B97F4A7C15ull + (Seed << 6) + (Seed >> 2));
}

} // namespace igdt

#endif // IGDT_SUPPORT_STRINGUTILS_H
