//===- support/Compiler.h - Portability and diagnostics macros -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros shared by every IGDT library. The project
/// follows the LLVM convention of not using exceptions or RTTI; fatal
/// invariant violations abort through igdt_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_COMPILER_H
#define IGDT_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace igdt {

/// Aborts the process after printing \p Msg. Used to mark control flow
/// that is unconditionally a bug if reached, mirroring llvm_unreachable.
[[noreturn]] inline void igdt_unreachable(const char *Msg) {
  std::fprintf(stderr, "igdt fatal: %s\n", Msg);
  std::abort();
}

} // namespace igdt

#if defined(__GNUC__) || defined(__clang__)
#define IGDT_LIKELY(X) __builtin_expect(!!(X), 1)
#define IGDT_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define IGDT_LIKELY(X) (X)
#define IGDT_UNLIKELY(X) (X)
#endif

#endif // IGDT_SUPPORT_COMPILER_H
