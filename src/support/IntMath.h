//===- support/IntMath.h - Shared integer semantics ------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer helpers shared by the interpreter domains, the JIT machine
/// simulator and the constraint-term evaluator. All three must agree on
/// arithmetic semantics bit-for-bit, so the definitions live here once.
///
/// Products and shifts of 61-bit SmallInteger payloads can exceed 64-bit
/// range; those operations saturate. Saturation only matters for branch
/// outcomes of the overflow range check, which it preserves.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_INTMATH_H
#define IGDT_SUPPORT_INTMATH_H

#include <cstdint>
#include <limits>

namespace igdt {

inline constexpr std::int64_t SatMax = std::numeric_limits<std::int64_t>::max();
inline constexpr std::int64_t SatMin = std::numeric_limits<std::int64_t>::min();

inline std::int64_t clampI128(__int128 Value) {
  if (Value > SatMax)
    return SatMax;
  if (Value < SatMin)
    return SatMin;
  return static_cast<std::int64_t>(Value);
}

inline std::int64_t addSat(std::int64_t A, std::int64_t B) {
  return clampI128(static_cast<__int128>(A) + B);
}

inline std::int64_t subSat(std::int64_t A, std::int64_t B) {
  return clampI128(static_cast<__int128>(A) - B);
}

inline std::int64_t mulSat(std::int64_t A, std::int64_t B) {
  return clampI128(static_cast<__int128>(A) * B);
}

inline std::int64_t negSat(std::int64_t A) {
  return A == SatMin ? SatMax : -A;
}

/// Truncated division (C semantics). Caller guarantees B != 0.
inline std::int64_t truncDiv(std::int64_t A, std::int64_t B) {
  if (A == SatMin && B == -1)
    return SatMax; // saturate instead of UB
  return A / B;
}

/// Floored division (Smalltalk // semantics). Caller guarantees B != 0.
inline std::int64_t floorDiv(std::int64_t A, std::int64_t B) {
  std::int64_t Quotient = truncDiv(A, B);
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Quotient;
  return Quotient;
}

/// Floored modulo (Smalltalk \\ semantics); result has B's sign.
inline std::int64_t floorMod(std::int64_t A, std::int64_t B) {
  std::int64_t Remainder = A % B;
  if (Remainder != 0 && ((A < 0) != (B < 0)))
    Remainder += B;
  return Remainder;
}

/// Left shift with saturation; \p Amount >= 0.
inline std::int64_t shlSat(std::int64_t A, std::int64_t Amount) {
  if (A == 0)
    return 0;
  if (Amount >= 63)
    return A > 0 ? SatMax : SatMin;
  return clampI128(static_cast<__int128>(A) << Amount);
}

/// Arithmetic right shift; \p Amount >= 0.
inline std::int64_t asr(std::int64_t A, std::int64_t Amount) {
  if (Amount >= 63)
    return A < 0 ? -1 : 0;
  return A >> Amount;
}

/// Index (1-based) of the highest set bit of \p A; 0 when A == 0.
/// Caller guarantees A >= 0.
inline std::int64_t highBit(std::int64_t A) {
  std::int64_t Bit = 0;
  while (A != 0) {
    ++Bit;
    A >>= 1;
  }
  return Bit;
}

} // namespace igdt

#endif // IGDT_SUPPORT_INTMATH_H
