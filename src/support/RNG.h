//===- support/RNG.h - Deterministic pseudo random numbers ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic xorshift128+ generator. The constraint solver uses it
/// for sampling-based search; every run of the test suite must be
/// reproducible, so no std::random_device anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_RNG_H
#define IGDT_SUPPORT_RNG_H

#include <cstdint>

namespace igdt {

/// xorshift128+ pseudo random generator with a fixed default seed.
class RNG {
public:
  explicit RNG(std::uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    State0 = Seed ? Seed : 1;
    State1 = splitMix(State0);
    State0 = splitMix(State1);
  }

  /// Returns the next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t X = State0;
    std::uint64_t Y = State1;
    State0 = Y;
    X ^= X << 23;
    State1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State1 + Y;
  }

  /// Returns a value uniformly in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    auto Span = static_cast<std::uint64_t>(Hi - Lo);
    if (Span == ~0ull)
      return static_cast<std::int64_t>(next());
    return Lo + static_cast<std::int64_t>(next() % (Span + 1));
  }

  /// Returns a double uniformly in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    double Unit = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return Lo + Unit * (Hi - Lo);
  }

  /// Returns true with probability Num/Den.
  bool chance(unsigned Num, unsigned Den) { return next() % Den < Num; }

private:
  static std::uint64_t splitMix(std::uint64_t X) {
    X += 0x9E3779B97F4A7C15ull;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    return X ^ (X >> 31);
  }

  std::uint64_t State0;
  std::uint64_t State1;
};

} // namespace igdt

#endif // IGDT_SUPPORT_RNG_H
