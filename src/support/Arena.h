//===- support/Arena.h - Bump-pointer allocator ---------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena. Symbolic terms (see solver/Term.h) are
/// immutable and live for the duration of one instruction exploration, so
/// they are allocated here and freed wholesale when the arena dies.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_ARENA_H
#define IGDT_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace igdt {

/// Bump-pointer allocator. Objects allocated here must be trivially
/// destructible: the arena never runs destructors.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(std::size_t Size, std::size_t Align);

  /// Allocates and constructs a T from \p Args.
  template <typename T, typename... Args> T *create(Args &&...ArgValues) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(ArgValues)...);
  }

  /// Returns the total number of bytes handed out so far.
  std::size_t bytesAllocated() const { return BytesAllocated; }

  /// Releases every slab; all objects created from this arena die.
  void reset();

private:
  static constexpr std::size_t SlabSize = 64 * 1024;

  void newSlab(std::size_t MinSize);

  std::vector<std::unique_ptr<std::uint8_t[]>> Slabs;
  std::uint8_t *Cursor = nullptr;
  std::uint8_t *SlabEnd = nullptr;
  std::size_t BytesAllocated = 0;
};

} // namespace igdt

#endif // IGDT_SUPPORT_ARENA_H
