//===- support/Socket.h - Unix-domain socket helpers ------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX Unix-domain stream socket helpers for the campaign
/// daemon and its client: listen/accept/connect plus EINTR-safe whole-
/// buffer writes and chunk reads. Deliberately minimal — framing,
/// integrity and schema live in evalkit/WireProtocol and api/Requests;
/// this layer only moves bytes. On platforms without AF_UNIX support
/// every call fails cleanly and unixSocketsAvailable() returns false,
/// so callers can gate features instead of failing to build.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_SOCKET_H
#define IGDT_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>

namespace igdt {

/// True when this build can create AF_UNIX stream sockets.
bool unixSocketsAvailable();

/// Binds and listens on \p Path (unlinking a stale socket file first).
/// Returns the listening descriptor, or -1 with \p Error set.
int unixListen(const std::string &Path, std::string *Error = nullptr);

/// Waits up to \p TimeoutMillis for a pending connection on \p ListenFd
/// and accepts it. Returns the connection descriptor, or -1 on timeout
/// or error (callers poll in a loop, so the two need no distinction).
int unixAccept(int ListenFd, int TimeoutMillis);

/// Connects to the daemon socket at \p Path. Returns the descriptor,
/// or -1 with \p Error set.
int unixConnect(const std::string &Path, std::string *Error = nullptr);

/// True when \p Fd has bytes (or EOF) to read within \p TimeoutMillis.
/// Lets a serving loop block in bounded slices so it can notice a stop
/// flag between them.
bool waitReadable(int Fd, int TimeoutMillis);

/// Writes all \p Size bytes (restarting on EINTR / partial writes).
bool writeAll(int Fd, const void *Data, std::size_t Size);

/// Reads up to \p Size bytes; returns the count, 0 on orderly EOF, or
/// -1 on error. Restarts on EINTR.
long readSome(int Fd, void *Buf, std::size_t Size);

/// Closes \p Fd if non-negative (EINTR-tolerant).
void closeFd(int Fd);

} // namespace igdt

#endif // IGDT_SUPPORT_SOCKET_H
