//===- support/Flags.cpp - Minimal command-line flag parser -----------------===//

#include "support/Flags.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace igdt;

void FlagParser::addFlag(const std::string &Name, FlagKind Kind, void *Target,
                         const std::string &Help) {
  Flags.push_back({Name, Kind, Target, Help, /*DeprecatedNote=*/""});
}

void FlagParser::deprecate(const std::string &Name, const std::string &Note) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      F.DeprecatedNote = Note;
}

void FlagParser::add(const std::string &Name, bool *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::Switch, Out, Help);
}

void FlagParser::add(const std::string &Name, unsigned *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::Unsigned, Out, Help);
}

void FlagParser::add(const std::string &Name, std::uint64_t *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::Uint64, Out, Help);
}

void FlagParser::add(const std::string &Name, double *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::Double, Out, Help);
}

void FlagParser::add(const std::string &Name, std::string *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::String, Out, Help);
}

void FlagParser::add(const std::string &Name, std::vector<std::string> *Out,
                     const std::string &Help) {
  addFlag(Name, FlagKind::StringList, Out, Help);
}

const FlagParser::Flag *FlagParser::find(const std::string &Name) const {
  for (const Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string FlagParser::usage() const {
  std::string Out = formatString("usage: %s [flags]\n", Program.c_str());
  if (!Summary.empty())
    Out += Summary + "\n";
  for (const Flag &F : Flags) {
    const char *Value = F.Kind == FlagKind::Switch ? "" : " VALUE";
    Out += formatString("  --%s%s\n      %s\n", F.Name.c_str(), Value,
                        F.Help.c_str());
    if (!F.DeprecatedNote.empty())
      Out += formatString("      [deprecated: %s]\n", F.DeprecatedNote.c_str());
  }
  Out += "  --help\n      show this text\n";
  return Out;
}

bool FlagParser::parse(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      HelpSeen = true;
      std::printf("%s", usage().c_str());
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(std::move(Arg));
      continue;
    }

    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    std::size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }

    const Flag *F = find(Name);
    if (!F) {
      std::printf("%s: unknown flag --%s (try --help)\n", Program.c_str(),
                  Name.c_str());
      return false;
    }
    if (!F->DeprecatedNote.empty())
      std::fprintf(stderr, "%s: warning: --%s is deprecated (%s)\n",
                   Program.c_str(), Name.c_str(), F->DeprecatedNote.c_str());

    if (F->Kind == FlagKind::Switch) {
      if (HasValue) {
        std::printf("%s: --%s takes no value\n", Program.c_str(),
                    Name.c_str());
        return false;
      }
      *static_cast<bool *>(F->Target) = true;
      continue;
    }

    if (!HasValue) {
      if (I + 1 >= Argc) {
        std::printf("%s: --%s needs a value\n", Program.c_str(), Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }

    char *End = nullptr;
    errno = 0;
    switch (F->Kind) {
    case FlagKind::Unsigned: {
      unsigned long V = std::strtoul(Value.c_str(), &End, 10);
      if (errno || End == Value.c_str() || *End) {
        std::printf("%s: --%s expects an unsigned integer, got '%s'\n",
                    Program.c_str(), Name.c_str(), Value.c_str());
        return false;
      }
      *static_cast<unsigned *>(F->Target) = static_cast<unsigned>(V);
      break;
    }
    case FlagKind::Uint64: {
      unsigned long long V = std::strtoull(Value.c_str(), &End, 10);
      if (errno || End == Value.c_str() || *End) {
        std::printf("%s: --%s expects an unsigned integer, got '%s'\n",
                    Program.c_str(), Name.c_str(), Value.c_str());
        return false;
      }
      *static_cast<std::uint64_t *>(F->Target) = V;
      break;
    }
    case FlagKind::Double: {
      double V = std::strtod(Value.c_str(), &End);
      if (errno || End == Value.c_str() || *End) {
        std::printf("%s: --%s expects a number, got '%s'\n", Program.c_str(),
                    Name.c_str(), Value.c_str());
        return false;
      }
      *static_cast<double *>(F->Target) = V;
      break;
    }
    case FlagKind::String:
      *static_cast<std::string *>(F->Target) = std::move(Value);
      break;
    case FlagKind::StringList:
      static_cast<std::vector<std::string> *>(F->Target)
          ->push_back(std::move(Value));
      break;
    case FlagKind::Switch:
      break; // handled above
    }
  }
  return true;
}
