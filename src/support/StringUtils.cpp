//===- support/StringUtils.cpp - Small string helpers ---------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace igdt;

std::string igdt::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<std::size_t>(Needed));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}

std::string igdt::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Result;
  for (std::size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string igdt::toHex(std::uint64_t Value) {
  return formatString("0x%llx", static_cast<unsigned long long>(Value));
}

std::string igdt::formatPercent(double Fraction) {
  return formatString("%.2f%%", Fraction * 100.0);
}

std::uint64_t igdt::stableHash64(const std::string &Text) {
  std::uint64_t H = 0xCBF29CE484222325ull; // FNV offset basis
  for (unsigned char C : Text) {
    H ^= C;
    H *= 0x100000001B3ull; // FNV prime
  }
  return H;
}
