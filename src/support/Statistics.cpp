//===- support/Statistics.cpp - Descriptive statistics helpers ------------===//

#include "support/Statistics.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace igdt;

SampleStats igdt::computeStats(std::vector<double> Values) {
  SampleStats Stats;
  if (Values.empty())
    return Stats;
  std::sort(Values.begin(), Values.end());
  Stats.Count = Values.size();
  Stats.Min = Values.front();
  Stats.Max = Values.back();
  for (double V : Values)
    Stats.Total += V;
  Stats.Mean = Stats.Total / static_cast<double>(Stats.Count);
  Stats.Median = Values[Stats.Count / 2];
  Stats.P90 = Values[(Stats.Count * 9) / 10 == Stats.Count
                         ? Stats.Count - 1
                         : (Stats.Count * 9) / 10];
  double Var = 0;
  for (double V : Values)
    Var += (V - Stats.Mean) * (V - Stats.Mean);
  Stats.StdDev = std::sqrt(Var / static_cast<double>(Stats.Count));
  return Stats;
}

std::string igdt::describeStats(const SampleStats &Stats, const char *Unit) {
  return formatString(
      "n=%zu mean=%.2f%s median=%.2f%s p90=%.2f%s min=%.2f%s max=%.2f%s "
      "total=%.2f%s",
      Stats.Count, Stats.Mean, Unit, Stats.Median, Unit, Stats.P90, Unit,
      Stats.Min, Unit, Stats.Max, Unit, Stats.Total, Unit);
}

std::string igdt::renderHistogram(const std::vector<double> &Values,
                                  unsigned Buckets, const char *Unit) {
  if (Values.empty() || Buckets == 0)
    return "(empty sample)\n";
  double Lo = *std::min_element(Values.begin(), Values.end());
  double Hi = *std::max_element(Values.begin(), Values.end());
  // Log-scale buckets; shift so that the smallest value maps to >= 1.
  double Shift = Lo <= 0 ? 1.0 - Lo : 0.0;
  double LogLo = std::log10(Lo + Shift);
  double LogHi = std::log10(Hi + Shift);
  if (LogHi <= LogLo)
    LogHi = LogLo + 1;
  std::vector<unsigned> Counts(Buckets, 0);
  for (double V : Values) {
    double Pos = (std::log10(V + Shift) - LogLo) / (LogHi - LogLo);
    auto Idx = static_cast<unsigned>(Pos * Buckets);
    if (Idx >= Buckets)
      Idx = Buckets - 1;
    ++Counts[Idx];
  }
  unsigned MaxCount = *std::max_element(Counts.begin(), Counts.end());
  std::string Out;
  for (unsigned I = 0; I < Buckets; ++I) {
    double BucketLo =
        std::pow(10.0, LogLo + (LogHi - LogLo) * I / Buckets) - Shift;
    double BucketHi =
        std::pow(10.0, LogLo + (LogHi - LogLo) * (I + 1) / Buckets) - Shift;
    unsigned BarLen =
        MaxCount == 0 ? 0 : (Counts[I] * 50 + MaxCount - 1) / MaxCount;
    Out += formatString("%10.2f-%-10.2f %s |%s %u\n", BucketLo, BucketHi,
                        Unit, std::string(BarLen, '#').c_str(), Counts[I]);
  }
  return Out;
}
