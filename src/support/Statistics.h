//===- support/Statistics.h - Descriptive statistics helpers --------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / median / percentile / geomean over a sample, used by the figure
/// benches (paths per instruction, timing distributions).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_STATISTICS_H
#define IGDT_SUPPORT_STATISTICS_H

#include <string>
#include <vector>

namespace igdt {

/// Descriptive statistics of one numeric sample.
struct SampleStats {
  std::size_t Count = 0;
  double Min = 0;
  double Max = 0;
  double Mean = 0;
  double Median = 0;
  double P90 = 0;
  double StdDev = 0;
  double Total = 0;
};

/// Computes stats over \p Values (the input is copied and sorted).
SampleStats computeStats(std::vector<double> Values);

/// Renders \p Stats as a single human-readable line.
std::string describeStats(const SampleStats &Stats, const char *Unit);

/// Renders a log-scale ASCII histogram of \p Values with \p Buckets bars,
/// used to echo the paper's box plots (Figures 5-7) in terminal output.
std::string renderHistogram(const std::vector<double> &Values,
                            unsigned Buckets, const char *Unit);

} // namespace igdt

#endif // IGDT_SUPPORT_STATISTICS_H
