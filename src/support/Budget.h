//===- support/Budget.h - Wall-clock/work budgets and harness faults ----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative budgets for the long-running campaign stages. A Budget
/// combines a wall-clock deadline with a work-unit allowance (solver
/// search nodes, replayed paths); the stage under budget polls charge()
/// or expired() at its loop heads instead of running open-loop, so a
/// pathological instruction degrades into a partial result rather than
/// stalling the whole campaign.
///
/// HarnessFault is the exception class thrown by harness-fault injection
/// sites (and by genuine harness malfunctions such as a poisoned heap):
/// it marks a failure of the *testing machinery*, which the campaign
/// layer contains and quarantines, as opposed to a differential defect
/// in the system under test.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_SUPPORT_BUDGET_H
#define IGDT_SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace igdt {

/// A harness malfunction: solver blow-up, runaway simulator, compiler
/// front-end crash, heap corruption. Carries the stage that failed.
class HarnessFault : public std::runtime_error {
public:
  HarnessFault(std::string StageName, const std::string &What)
      : std::runtime_error(What), Stage(std::move(StageName)) {}

  /// The harness stage that malfunctioned ("solve", "materialize",
  /// "compile", "simulate", ...).
  const std::string &stage() const { return Stage; }

private:
  std::string Stage;
};

/// Budget limits. A zero field means unlimited.
struct BudgetOptions {
  /// Wall-clock allowance in milliseconds.
  double WallMillis = 0;
  /// Work-unit allowance; the meaning of one unit is the charging
  /// stage's (solver search nodes, replayed paths, ...).
  std::uint64_t WorkUnits = 0;
};

/// Why a budget stopped being Active.
enum class BudgetState : std::uint8_t {
  Active,
  WallExpired,
  WorkExpired,
  Cancelled,
};

const char *budgetStateName(BudgetState State);

/// A running budget. Not thread-safe; one budget per campaign stage.
class Budget {
public:
  /// An unlimited budget.
  Budget() : Budget(BudgetOptions{}) {}
  explicit Budget(BudgetOptions Options);

  /// Charges \p Units of work and polls the deadline. Returns true while
  /// the budget is still active; callers stop (cooperatively) on false.
  bool charge(std::uint64_t Units = 1);

  /// Polls the deadline without charging work.
  bool expired();

  BudgetState state() const { return State; }

  /// External cancellation (operator interrupt, campaign shutdown).
  void cancel() { State = BudgetState::Cancelled; }

  /// Expires the budget immediately (tests, fault injection).
  void forceExpire(BudgetState Why = BudgetState::WallExpired);

  double spentMillis() const;
  std::uint64_t spentUnits() const { return Spent; }
  const BudgetOptions &options() const { return Opts; }

  /// One-line state description for incident reports, e.g.
  /// "state=work-expired units=1201/1200 wall=3.2ms/unlimited".
  std::string describe() const;

private:
  void checkWall();

  BudgetOptions Opts;
  std::chrono::steady_clock::time_point Start;
  std::uint64_t Spent = 0;
  std::uint64_t PollTick = 0;
  BudgetState State = BudgetState::Active;
};

} // namespace igdt

#endif // IGDT_SUPPORT_BUDGET_H
