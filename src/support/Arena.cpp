//===- support/Arena.cpp - Bump-pointer allocator -------------------------===//

#include "support/Arena.h"

#include <algorithm>
#include <cstring>

using namespace igdt;

void Arena::newSlab(std::size_t MinSize) {
  std::size_t Size = std::max(SlabSize, MinSize);
  Slabs.push_back(std::make_unique<std::uint8_t[]>(Size));
  Cursor = Slabs.back().get();
  SlabEnd = Cursor + Size;
}

void *Arena::allocate(std::size_t Size, std::size_t Align) {
  auto Addr = reinterpret_cast<std::uintptr_t>(Cursor);
  std::uintptr_t Aligned = (Addr + Align - 1) & ~(std::uintptr_t(Align) - 1);
  std::uint8_t *Start = Cursor + (Aligned - Addr);
  if (Start + Size > SlabEnd) {
    newSlab(Size + Align);
    return allocate(Size, Align);
  }
  Cursor = Start + Size;
  BytesAllocated += Size;
  return Start;
}

void Arena::reset() {
  Slabs.clear();
  Cursor = nullptr;
  SlabEnd = nullptr;
  BytesAllocated = 0;
}
