//===- support/Budget.cpp - Wall-clock/work budgets and harness faults --------===//

#include "support/Budget.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace igdt;

const char *igdt::budgetStateName(BudgetState State) {
  switch (State) {
  case BudgetState::Active:
    return "active";
  case BudgetState::WallExpired:
    return "wall-expired";
  case BudgetState::WorkExpired:
    return "work-expired";
  case BudgetState::Cancelled:
    return "cancelled";
  }
  igdt_unreachable("unknown budget state");
}

Budget::Budget(BudgetOptions Options)
    : Opts(Options), Start(std::chrono::steady_clock::now()) {}

void Budget::checkWall() {
  if (State != BudgetState::Active || Opts.WallMillis <= 0)
    return;
  if (spentMillis() > Opts.WallMillis)
    State = BudgetState::WallExpired;
}

bool Budget::charge(std::uint64_t Units) {
  Spent += Units;
  if (State != BudgetState::Active)
    return false;
  if (Opts.WorkUnits && Spent > Opts.WorkUnits) {
    State = BudgetState::WorkExpired;
    return false;
  }
  // Wall polls are amortised: clock reads are ~20ns but charge() sits on
  // the solver's per-node hot path.
  if ((++PollTick & 0xFF) == 0)
    checkWall();
  return State == BudgetState::Active;
}

bool Budget::expired() {
  checkWall();
  return State != BudgetState::Active;
}

void Budget::forceExpire(BudgetState Why) {
  if (State == BudgetState::Active)
    State = Why;
}

double Budget::spentMillis() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

std::string Budget::describe() const {
  std::string Units =
      Opts.WorkUnits
          ? formatString("%llu/%llu", (unsigned long long)Spent,
                         (unsigned long long)Opts.WorkUnits)
          : formatString("%llu/unlimited", (unsigned long long)Spent);
  std::string Wall = Opts.WallMillis > 0
                         ? formatString("%.1fms/%.1fms", spentMillis(),
                                        Opts.WallMillis)
                         : formatString("%.1fms/unlimited", spentMillis());
  return formatString("state=%s units=%s wall=%s", budgetStateName(State),
                      Units.c_str(), Wall.c_str());
}
