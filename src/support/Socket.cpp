//===- support/Socket.cpp - Unix-domain socket helpers ----------------------===//

#include "support/Socket.h"

#if !defined(_WIN32)
#define IGDT_HAVE_UNIX_SOCKETS 1
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace igdt;

#if IGDT_HAVE_UNIX_SOCKETS

namespace {

/// Fills \p Addr from \p Path; false when the path does not fit in
/// sun_path (a hard AF_UNIX limit, ~107 bytes).
bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string *Error) {
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

void setError(std::string *Error, const char *What, const std::string &Path) {
  if (Error)
    *Error = std::string(What) + " " + Path + ": " + std::strerror(errno);
}

} // namespace

bool igdt::unixSocketsAvailable() { return true; }

int igdt::unixListen(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Error, "socket", Path);
    return -1;
  }
  // A previous daemon that died uncleanly leaves its socket file behind;
  // binding over it needs the unlink (connectors already get ECONNREFUSED
  // from the dead socket, so nothing live is lost).
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    setError(Error, "bind", Path);
    closeFd(Fd);
    return -1;
  }
  if (::listen(Fd, 16) < 0) {
    setError(Error, "listen", Path);
    closeFd(Fd);
    return -1;
  }
  return Fd;
}

int igdt::unixAccept(int ListenFd, int TimeoutMillis) {
  pollfd P;
  P.fd = ListenFd;
  P.events = POLLIN;
  P.revents = 0;
  int Ready = ::poll(&P, 1, TimeoutMillis);
  if (Ready <= 0)
    return -1;
  int Fd;
  do
    Fd = ::accept(ListenFd, nullptr, nullptr);
  while (Fd < 0 && errno == EINTR);
  return Fd;
}

bool igdt::waitReadable(int Fd, int TimeoutMillis) {
  pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  return ::poll(&P, 1, TimeoutMillis) > 0;
}

int igdt::unixConnect(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Error, "socket", Path);
    return -1;
  }
  int Rc;
  do
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    setError(Error, "connect", Path);
    closeFd(Fd);
    return -1;
  }
  return Fd;
}

bool igdt::writeAll(int Fd, const void *Data, std::size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply should surface as an
    // EPIPE error on this call, not kill the daemon with SIGPIPE.
    long N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Size -= std::size_t(N);
  }
  return true;
}

long igdt::readSome(int Fd, void *Buf, std::size_t Size) {
  long N;
  do
    N = ::read(Fd, Buf, Size);
  while (N < 0 && errno == EINTR);
  return N;
}

void igdt::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

#else // !IGDT_HAVE_UNIX_SOCKETS

bool igdt::unixSocketsAvailable() { return false; }

int igdt::unixListen(const std::string &, std::string *Error) {
  if (Error)
    *Error = "unix sockets unavailable on this platform";
  return -1;
}

int igdt::unixAccept(int, int) { return -1; }

bool igdt::waitReadable(int, int) { return false; }

int igdt::unixConnect(const std::string &, std::string *Error) {
  if (Error)
    *Error = "unix sockets unavailable on this platform";
  return -1;
}

bool igdt::writeAll(int, const void *, std::size_t) { return false; }

long igdt::readSome(int, void *, std::size_t) { return -1; }

void igdt::closeFd(int) {}

#endif // IGDT_HAVE_UNIX_SOCKETS
