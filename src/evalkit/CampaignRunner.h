//===- evalkit/CampaignRunner.h - Resilient evaluation campaigns ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilient campaign runner: wraps the per-instruction pipeline
/// (explore -> compile -> simulate -> validate) of the evaluation
/// harness in fault containment so a full-catalog run survives harness
/// malfunctions.
///
///  - Every stage runs under a cooperative Budget (wall clock + work
///    units), so a pathological instruction degrades into a partial
///    result instead of stalling the campaign.
///  - A HarnessFault (or any std::exception) thrown while processing an
///    instruction is contained: the instruction is retried once with a
///    fresh heap, and quarantined — never fatal — if it fails again.
///  - Every containment event is appended to a JSONL incident report
///    (instruction, stage, error class, budget state).
///  - The campaign checkpoints each finished instruction to a JSONL
///    file and can resume from it, reproducing the same Table 2 counts
///    as an uninterrupted run (exploration is deterministic).
///  - The exit code reports genuine differential defects only; harness
///    faults never fail the run.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_CAMPAIGNRUNNER_H
#define IGDT_EVALKIT_CAMPAIGNRUNNER_H

#include "evalkit/CampaignScheduler.h"
#include "evalkit/Experiments.h"
#include "faults/HarnessFaults.h"
#include "observe/MetricsRegistry.h"
#include "observe/Profile.h"
#include "support/Budget.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace igdt {

class VerdictStore;

/// Campaign configuration.
struct CampaignOptions {
  /// Exploration / compiler configuration, shared with the plain
  /// evaluation harness so campaign counts are comparable.
  HarnessOptions Harness;
  /// Per-instruction exploration budget (solver nodes + wall clock).
  BudgetOptions ExploreBudget;
  /// Per-instruction replay budget (tested paths + wall clock).
  BudgetOptions ReplayBudget;
  /// Campaign-level explore budget in work units, shared by every
  /// instruction; 0 is unlimited. Each dispatch draws up to its
  /// per-instruction allowance (ExploreBudget.WorkUnits, or a
  /// scheduler grant; 0 takes everything left) from this ledger and
  /// refunds what the run did not spend. When the ledger runs dry the
  /// remaining instructions produce zero-path budget-exhausted records
  /// without exploring — so fixed order spends the budget
  /// first-come-first-served down the catalog, while the adaptive
  /// scheduler spreads it across the highest-yield instructions first
  /// and re-grants proven refunds. Deterministic at Jobs 1; with
  /// concurrent workers the draw order (and therefore which
  /// instructions starve) depends on scheduling.
  std::uint64_t TotalExploreUnits = 0;
  /// Attempts per instruction: 1 initial + (MaxAttempts-1) fresh-heap
  /// retries before quarantine.
  unsigned MaxAttempts = 2;
  /// Restrict the campaign to these catalog instructions (empty = all,
  /// subject to the harness Max* limits). Unknown names are ignored.
  std::vector<std::string> OnlyInstructions;
  /// JSONL checkpoint file: one record per finished instruction,
  /// appended as the campaign progresses and loaded on start to resume.
  /// Empty disables checkpointing.
  std::string CheckpointPath;
  /// JSONL incident report. Empty keeps incidents in memory only.
  std::string IncidentLogPath;
  /// Harness faults to inject (self-tests).
  HarnessFaultPlan Faults;
  /// Stop (checkpointing as usual) after processing this many NEW
  /// instructions; 0 runs to completion. Simulates a killed campaign
  /// for resume tests.
  unsigned StopAfter = 0;
  /// Worker threads exploring instructions concurrently. 1 runs the
  /// classic serial loop on the calling thread; 0 asks the hardware
  /// (std::thread::hardware_concurrency). Any value produces the same
  /// Table 2 rows, checkpoint bytes, incident records and exit code:
  /// work is sharded, but results are merged in catalog order and each
  /// instruction's exploration is independent of its worker (see the
  /// ownership comment in ConcolicExplorer.h).
  unsigned Jobs = 1;
  /// Worker *processes* exploring instructions (the out-of-process
  /// generalisation of Jobs; see ProcessPool.h). 0 keeps everything in
  /// this process; N > 0 forks N workers and drives them over pipes,
  /// so a worker segfault, OOM kill or hard hang becomes an incident
  /// + quarantine instead of a lost campaign. Records, checkpoints,
  /// incidents and traces are byte-identical to in-process runs at any
  /// topology (same merge discipline, nondeterministic fields
  /// blanked). When fork is unavailable the campaign degrades to the
  /// in-process pool with max(Jobs, WorkerProcesses) threads.
  unsigned WorkerProcesses = 0;
  /// Per-assignment watchdog deadline for worker processes, in
  /// milliseconds; a worker that blows it is SIGKILLed and the
  /// instruction charged a worker-timeout incident. 0 disables (a hung
  /// worker then hangs the campaign — only safe without WorkerHang-
  /// style faults in play).
  double WorkerDeadlineMillis = 60000;
  /// Base of the exponential respawn backoff after a worker failure
  /// (base * 2^(failures-1), capped); 0 respawns immediately.
  double WorkerBackoffMillis = 25;
  /// Campaign-wide wall-clock ceiling in milliseconds, shared by all
  /// workers; 0 is unlimited. When it expires the campaign stops
  /// accepting new instructions (checkpointing what finished, like
  /// StopAfter), so a stuck fleet degrades into a resumable partial
  /// run. Inherently non-deterministic — leave it 0 when comparing
  /// runs byte-for-byte.
  double CampaignWallMillis = 0;
  /// Record per-compiler wall-clock timings in checkpoint records.
  /// Disable to make checkpoint files byte-comparable across runs
  /// (timings are the one nondeterministic field; with it off, trace
  /// files are byte-comparable too because TraceScope zeroes Millis).
  bool RecordTimings = true;
  /// JSONL trace file, truncated at campaign start and written by the
  /// merge thread in catalog order (checkpoint discipline), so the file
  /// is byte-identical at any Jobs value when RecordTimings is off.
  /// Scheduling-dependent events (CacheLookup) are filtered out; they
  /// surface in CampaignSummary::Metrics instead. Empty disables.
  std::string TracePath;
  /// Extra in-process sink receiving the merged event stream in the
  /// same deterministic order (non-owning; tests and Session use it).
  TraceSink *ExtraTraceSink = nullptr;
  /// Fold trace events into CampaignSummary::Metrics even without a
  /// trace file or extra sink (what --profile turns on).
  bool CollectMetrics = false;
  /// Scheduling policy (see CampaignScheduler.h). "fixed" keeps the
  /// catalog-order cursor; "adaptive" runs priority-ordered waves with
  /// tiered solver escalation and the provable-early-exit budget pool.
  /// With unlimited budgets the adaptive record/incident/trace files
  /// are byte-identical to fixed order (the merge stays catalog-order
  /// and only provably-identical cheap-tier runs are accepted).
  ScheduleOptions Schedule;
  /// Content-addressed verdict store (non-owning, may be null; see
  /// VerdictStore.h). Instructions whose (body, config) key hits are
  /// served by appending the stored checkpoint line *verbatim* — byte-
  /// identical to a fresh run — and never explored; clean fresh records
  /// are stored on merge. Ignored (with a "store.ineligible_config"
  /// metric) when storeEligible() says the configuration's records are
  /// not pure functions of the key: wall budgets, the campaign ledger,
  /// or an adaptive budget pool. Records with incidents and quarantines
  /// are never stored, so faulted instructions re-run — and reproduce
  /// their incidents — on every campaign.
  VerdictStore *Store = nullptr;
};

/// One contained failure.
struct CampaignIncident {
  std::string Instruction;
  /// Harness stage that failed ("solve", "compile", "simulate", "heap",
  /// "explore" for faults without a finer stage, "worker" for worker-
  /// process failures).
  std::string Stage;
  /// "harness-fault" for HarnessFault, "exception" otherwise; worker
  /// failures carry the coordinator's decoding ("worker-crash",
  /// "worker-timeout", "protocol-corruption").
  std::string ErrorClass;
  std::string Error;
  /// Budget state of the failing attempt, from Budget::describe();
  /// worker-level failures use the fixed out-of-band marker (the
  /// budgets died with the worker).
  std::string ExploreBudget;
  std::string ReplayBudget;
  /// 1-based attempt the failure happened on.
  unsigned Attempt = 1;
  /// Final disposition of the instruction after all attempts.
  bool Quarantined = false;
  /// Worker index / pid the failure happened on (out-of-process runs
  /// only). Diagnostics: the merge loop blanks both before recording
  /// so incident files stay byte-comparable across topologies.
  int Worker = -1;
  long Pid = 0;

  std::string toJson() const;
  static bool fromJson(const std::string &Line, CampaignIncident &Out);
};

/// Per-compiler outcome of one instruction (both back-ends unioned,
/// mirroring EvaluationHarness::evaluateCompiler).
struct CompilerOutcome {
  CompilerKind Kind = CompilerKind::NativeMethod;
  unsigned DifferingPaths = 0;
  /// Paths skipped because the replay budget expired.
  unsigned BudgetSkipped = 0;
  double TestMillis = 0;
  std::map<std::string, DefectFamily> Causes;
};

/// Checkpoint unit: everything the campaign keeps about one instruction.
struct InstructionRecord {
  std::string Instruction;
  InstructionKind Kind = InstructionKind::Bytecode;
  bool Quarantined = false;
  unsigned Attempts = 1;
  unsigned Paths = 0;
  unsigned CuratedPaths = 0;
  unsigned UnknownNegations = 0;
  unsigned LadderRetries = 0;
  unsigned LadderRescues = 0;
  bool BudgetExhausted = false;
  /// The explorer drained its frontier with every negation settled —
  /// the path set is provably complete (ExplorationResult docs). The
  /// scheduler's early-exit/budget-pool policy keys on this.
  bool FrontierExhausted = false;
  /// Explore work units the successful attempt spent
  /// (Budget::spentUnits) — the deterministic cost figure yield stats
  /// and the budget pool are denominated in.
  std::uint64_t ExploreUnits = 0;
  /// Exploration wall time of the successful attempt; 0 when
  /// CampaignOptions::RecordTimings is off (the same contract as
  /// CompilerOutcome::TestMillis). Feeds the --profile per-stage table.
  double ExploreMillis = 0;
  /// Solver activity of the successful attempt. Everything but the
  /// cache hit/miss counters is deterministic at any Jobs value; the
  /// cache counters depend on worker scheduling (which exploration
  /// populated the shared Unsat index first) and are therefore kept
  /// in memory only — never checkpointed.
  SolverStats Solver;
  /// Compile-once activity of the successful attempt. Deterministic at
  /// any Jobs value (the code cache is attempt-local), but kept out of
  /// checkpoints like the solver reuse counters: a resumed campaign
  /// skips the compiles a fresh one performs.
  JitCacheStats Jit;
  /// Dispatch-engine and arena counters of the successful attempt.
  /// Deterministic for a fixed configuration but config-dependent (they
  /// say which replay engine ran, not what the code under test did), so
  /// like JitCacheStats they never enter toJson()/checkpoints.
  SimStats Sim;
  ReplayStats Replay;
  std::vector<CompilerOutcome> Compilers;
  /// Per-instruction yield statistics, serialised as the optional
  /// "yield" checkpoint object when ScheduleOptions::PersistYield is on
  /// (HasYield). Derived from the deterministic fields above at record
  /// time, so persisting them never breaks byte-identity between
  /// scheduled and fixed campaigns run with the same toggle. Loaders
  /// tolerate records without the object (old checkpoints).
  YieldStats Yield;
  bool HasYield = false;

  std::string toJson() const;
  static bool fromJson(const std::string &Line, InstructionRecord &Out);
};

/// The campaign result.
struct CampaignSummary {
  /// Table 2 rows aggregated over all non-quarantined instructions,
  /// comparable with EvaluationHarness::evaluateAllCompilers().
  std::vector<CompilerEvaluation> Rows;
  std::vector<InstructionRecord> Records;
  std::vector<CampaignIncident> Incidents;
  /// Instructions quarantined after exhausting their attempts.
  std::vector<std::string> Quarantined;
  /// Instructions processed by this run (quarantined ones included).
  unsigned CompletedInstructions = 0;
  /// Instructions restored from the checkpoint instead of re-run.
  unsigned ResumedInstructions = 0;
  /// Instructions served verbatim from the content-addressed store
  /// (counted inside CompletedInstructions, like fresh ones).
  unsigned StoreServed = 0;
  /// True when a store was configured and the configuration was
  /// cache-eligible (VerdictStore.h's storeEligible).
  bool StoreActive = false;
  /// Store activity of this run: planning lookups that hit / missed,
  /// and fresh clean records written back.
  std::uint64_t StoreHits = 0;
  std::uint64_t StoreMisses = 0;
  std::uint64_t StoreStores = 0;
  /// Solver work this run actually performed: aggregated over freshly
  /// computed records only (store-served and resumed ones excluded).
  /// Equals Solver on a cold run; Queries == 0 on a fully warm one —
  /// the acceptance gate for incremental re-exploration.
  SolverStats LiveSolver;
  /// True when StopAfter or the campaign wall clock ended the run
  /// before the worklist emptied.
  bool Stopped = false;
  /// Solver counters aggregated over all records in catalog order (a
  /// deterministic reduction). Identical at any Jobs value except for
  /// the cache hit/miss counters, which depend on worker scheduling
  /// and are reported as diagnostics only.
  SolverStats Solver;
  /// Compile-once counters aggregated over all records in catalog
  /// order; surfaces in Metrics as "jit.*" and in the profile's
  /// cache-effectiveness table.
  JitCacheStats Jit;
  /// Replay-engine counters aggregated the same way; surface in Metrics
  /// as "sim.*" and "replay.*".
  SimStats Sim;
  ReplayStats Replay;
  /// Merged campaign metrics: solver counters folded under "solver.*"
  /// (always, in catalog order — the deterministic per-shard/merged
  /// routing of SolverStats), trace-event counters under "events.*"
  /// (only when tracing/CollectMetrics is on; the "events.solver.cache.*"
  /// subtree is scheduling-dependent, like the SolverStats cache
  /// counters it mirrors).
  MetricsRegistry Metrics;
  /// Adaptive-scheduling activity ("schedule.*" metrics and the
  /// --profile "Scheduling" table). ScheduleActive is false (and the
  /// stats all zero) for fixed-order campaigns.
  bool ScheduleActive = false;
  ScheduleStats Schedule;

  /// Nonzero only for genuine differential defects — never for harness
  /// faults, quarantines, or the structural optimisation differences
  /// that exist even in a fully fixed configuration.
  int exitCode() const;
};

/// Runs resilient evaluation campaigns.
class CampaignRunner {
public:
  explicit CampaignRunner(CampaignOptions Options);

  CampaignSummary run();

  const CampaignOptions &options() const { return Opts; }

private:
  /// Processes one instruction with retry + containment. Collects any
  /// incidents into \p Incidents and returns the (possibly quarantined)
  /// record. Const and worker-local by construction: safe to call from
  /// several worker threads at once. \p Trace (may be null) receives
  /// the attempt's events through a stamping TraceScope; workers pass a
  /// worker-local TraceBuffer the merge thread later drains in catalog
  /// order. \p Arena is the caller's worker-local replay arena; its
  /// reset contract keeps faulted attempts from leaking state into the
  /// retry, the same guarantee the historical fresh-heap-per-path
  /// construction gave. \p StartAttempt lets the out-of-process
  /// coordinator resume the attempt count after worker-level failures
  /// already consumed earlier attempts. \p TierDistance selects the
  /// scheduler's reduced solver caps (0 = full strength) and
  /// \p ExploreUnitsOverride replaces the configured explore work-unit
  /// budget (0 = configured); both stay 0 in fixed-order campaigns.
  InstructionRecord testInstruction(const InstructionSpec &Spec,
                                    std::vector<CampaignIncident> &Incidents,
                                    TraceSink *Trace, ReplayArena &Arena,
                                    unsigned StartAttempt = 1,
                                    unsigned TierDistance = 0,
                                    std::uint64_t ExploreUnitsOverride = 0) const;

  /// One attempt of the full pipeline; throws on harness faults.
  InstructionRecord attemptInstruction(const InstructionSpec &Spec,
                                       unsigned Attempt, Budget &ExploreBud,
                                       Budget &ReplayBud, TraceSink *Trace,
                                       ReplayArena &Arena,
                                       unsigned TierDistance = 0) const;

  void appendLine(const std::string &Path, const std::string &Line) const;

  CampaignOptions Opts;
  /// Serialises JSONL appends. The merge loop is the only writer today,
  /// but the guarantee is cheap and keeps appendLine safe to call from
  /// any thread.
  mutable std::mutex IoMutex;
  /// Campaign-scope solver index of proven-Unsat cases, shared by every
  /// worker's explorations (thread-safe; see SolverCache.h). Catalog
  /// instructions of one family pose structurally identical type-check
  /// cases, so Unsat proofs recur campaign-wide. Valid for the lifetime
  /// of this runner because the harness configuration — which the
  /// entries' caps fingerprint covers — is fixed at construction.
  mutable SharedUnsatIndex SolverIndex;
};

/// Aggregates per-instruction records into Table 2 rows (exposed for
/// tests that compare checkpointed and uninterrupted campaigns).
std::vector<CompilerEvaluation>
aggregateCampaignRows(const std::vector<InstructionRecord> &Records);

/// Builds the --profile report from a finished campaign: per-stage wall
/// time (explore + one test stage per compiler), the \p TopN most
/// expensive instructions, solver-cache effectiveness and the merged
/// metrics. Stage times are all zero when the campaign ran with
/// RecordTimings off.
ProfileReport buildCampaignProfile(const CampaignSummary &Summary,
                                   unsigned TopN = 10);

} // namespace igdt

#endif // IGDT_EVALKIT_CAMPAIGNRUNNER_H
