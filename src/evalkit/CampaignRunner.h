//===- evalkit/CampaignRunner.h - Resilient evaluation campaigns ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilient campaign runner: wraps the per-instruction pipeline
/// (explore -> compile -> simulate -> validate) of the evaluation
/// harness in fault containment so a full-catalog run survives harness
/// malfunctions.
///
///  - Every stage runs under a cooperative Budget (wall clock + work
///    units), so a pathological instruction degrades into a partial
///    result instead of stalling the campaign.
///  - A HarnessFault (or any std::exception) thrown while processing an
///    instruction is contained: the instruction is retried once with a
///    fresh heap, and quarantined — never fatal — if it fails again.
///  - Every containment event is appended to a JSONL incident report
///    (instruction, stage, error class, budget state).
///  - The campaign checkpoints each finished instruction to a JSONL
///    file and can resume from it, reproducing the same Table 2 counts
///    as an uninterrupted run (exploration is deterministic).
///  - The exit code reports genuine differential defects only; harness
///    faults never fail the run.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_CAMPAIGNRUNNER_H
#define IGDT_EVALKIT_CAMPAIGNRUNNER_H

#include "evalkit/Experiments.h"
#include "faults/HarnessFaults.h"
#include "support/Budget.h"

#include <map>
#include <string>
#include <vector>

namespace igdt {

/// Campaign configuration.
struct CampaignOptions {
  /// Exploration / compiler configuration, shared with the plain
  /// evaluation harness so campaign counts are comparable.
  HarnessOptions Harness;
  /// Per-instruction exploration budget (solver nodes + wall clock).
  BudgetOptions ExploreBudget;
  /// Per-instruction replay budget (tested paths + wall clock).
  BudgetOptions ReplayBudget;
  /// Attempts per instruction: 1 initial + (MaxAttempts-1) fresh-heap
  /// retries before quarantine.
  unsigned MaxAttempts = 2;
  /// Restrict the campaign to these catalog instructions (empty = all,
  /// subject to the harness Max* limits). Unknown names are ignored.
  std::vector<std::string> OnlyInstructions;
  /// JSONL checkpoint file: one record per finished instruction,
  /// appended as the campaign progresses and loaded on start to resume.
  /// Empty disables checkpointing.
  std::string CheckpointPath;
  /// JSONL incident report. Empty keeps incidents in memory only.
  std::string IncidentLogPath;
  /// Harness faults to inject (self-tests).
  HarnessFaultPlan Faults;
  /// Stop (checkpointing as usual) after processing this many NEW
  /// instructions; 0 runs to completion. Simulates a killed campaign
  /// for resume tests.
  unsigned StopAfter = 0;
};

/// One contained failure.
struct CampaignIncident {
  std::string Instruction;
  /// Harness stage that failed ("solve", "compile", "simulate", "heap",
  /// "explore" for faults without a finer stage).
  std::string Stage;
  /// "harness-fault" for HarnessFault, "exception" otherwise.
  std::string ErrorClass;
  std::string Error;
  /// Budget state of the failing attempt, from Budget::describe().
  std::string ExploreBudget;
  std::string ReplayBudget;
  /// 1-based attempt the failure happened on.
  unsigned Attempt = 1;
  /// Final disposition of the instruction after all attempts.
  bool Quarantined = false;

  std::string toJson() const;
};

/// Per-compiler outcome of one instruction (both back-ends unioned,
/// mirroring EvaluationHarness::evaluateCompiler).
struct CompilerOutcome {
  CompilerKind Kind = CompilerKind::NativeMethod;
  unsigned DifferingPaths = 0;
  /// Paths skipped because the replay budget expired.
  unsigned BudgetSkipped = 0;
  double TestMillis = 0;
  std::map<std::string, DefectFamily> Causes;
};

/// Checkpoint unit: everything the campaign keeps about one instruction.
struct InstructionRecord {
  std::string Instruction;
  InstructionKind Kind = InstructionKind::Bytecode;
  bool Quarantined = false;
  unsigned Attempts = 1;
  unsigned Paths = 0;
  unsigned CuratedPaths = 0;
  unsigned UnknownNegations = 0;
  unsigned LadderRetries = 0;
  unsigned LadderRescues = 0;
  bool BudgetExhausted = false;
  std::vector<CompilerOutcome> Compilers;

  std::string toJson() const;
  static bool fromJson(const std::string &Line, InstructionRecord &Out);
};

/// The campaign result.
struct CampaignSummary {
  /// Table 2 rows aggregated over all non-quarantined instructions,
  /// comparable with EvaluationHarness::evaluateAllCompilers().
  std::vector<CompilerEvaluation> Rows;
  std::vector<InstructionRecord> Records;
  std::vector<CampaignIncident> Incidents;
  /// Instructions quarantined after exhausting their attempts.
  std::vector<std::string> Quarantined;
  /// Instructions processed by this run (quarantined ones included).
  unsigned CompletedInstructions = 0;
  /// Instructions restored from the checkpoint instead of re-run.
  unsigned ResumedInstructions = 0;
  /// True when StopAfter ended the run before the worklist emptied.
  bool Stopped = false;

  /// Nonzero only for genuine differential defects — never for harness
  /// faults, quarantines, or the structural optimisation differences
  /// that exist even in a fully fixed configuration.
  int exitCode() const;
};

/// Runs resilient evaluation campaigns.
class CampaignRunner {
public:
  explicit CampaignRunner(CampaignOptions Options);

  CampaignSummary run();

  const CampaignOptions &options() const { return Opts; }

private:
  /// Processes one instruction with retry + containment. Appends any
  /// incidents to \p Summary and returns the (possibly quarantined)
  /// record.
  InstructionRecord testInstruction(const InstructionSpec &Spec,
                                    CampaignSummary &Summary);

  /// One attempt of the full pipeline; throws on harness faults.
  InstructionRecord attemptInstruction(const InstructionSpec &Spec,
                                       unsigned Attempt, Budget &ExploreBud,
                                       Budget &ReplayBud);

  void appendLine(const std::string &Path, const std::string &Line) const;

  CampaignOptions Opts;
};

/// Aggregates per-instruction records into Table 2 rows (exposed for
/// tests that compare checkpointed and uninterrupted campaigns).
std::vector<CompilerEvaluation>
aggregateCampaignRows(const std::vector<InstructionRecord> &Records);

} // namespace igdt

#endif // IGDT_EVALKIT_CAMPAIGNRUNNER_H
