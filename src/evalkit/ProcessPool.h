//===- evalkit/ProcessPool.h - Forked campaign worker processes ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-process generalisation of the campaign's Jobs thread
/// pool: a coordinator forks N worker processes and hands out work
/// items one at a time over pipes, speaking the WireProtocol framing.
/// A worker that segfaults, gets OOM-killed, hangs past the watchdog
/// deadline or answers with a corrupt frame costs exactly one incident
/// — never the campaign:
///
///  - Crash containment: the coordinator decodes the wait status
///    (WIFSIGNALED / unexpected exit) into a canonical error text and
///    reassigns the unacknowledged item to a fresh worker, up to the
///    campaign's attempt limit, with exponential respawn backoff.
///  - Watchdog: each assignment carries a wall deadline; a worker that
///    blows it is SIGKILLed and surfaced as a worker-timeout failure.
///  - Protocol hygiene: frames failing magic/length/CRC checks poison
///    the stream; the worker is recycled, its answer discarded.
///  - Work stealing falls out of the pull model: items are assigned
///    singly on demand, so a skewed instruction occupies one worker
///    while the others drain the queue, and an item whose worker died
///    unacknowledged is simply re-queued (front, retaining catalog
///    priority) for the next free worker.
///
/// The coordinator is deliberately single-threaded (one poll loop on
/// the calling thread): fork() therefore always happens from a
/// single-threaded process, which keeps the child's post-fork state
/// trivially sound (no locks mid-acquisition) and the design clean
/// under TSan. Determinism is the caller's business — the campaign
/// merge loop consumes results slot-by-slot in catalog order, so
/// assignment order never shows in any output file.
///
/// On platforms without fork/pipe/poll, available() is false and the
/// campaign degrades to the in-process thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_PROCESSPOOL_H
#define IGDT_EVALKIT_PROCESSPOOL_H

#include "evalkit/WireProtocol.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace igdt {

/// How an assignment failed (names double as incident error classes,
/// matching the in-process WorkerFault classes).
enum class WorkerFailureKind : std::uint8_t {
  /// Worker died by signal or exited without answering.
  Crash,
  /// Worker blew the watchdog deadline and was SIGKILLed.
  Timeout,
  /// Worker answered with a frame failing protocol validation.
  Corruption,
};

const char *workerFailureKindName(WorkerFailureKind Kind);

struct ProcessPoolOptions {
  /// Worker processes to fork.
  unsigned Workers = 1;
  /// Per-assignment watchdog deadline in milliseconds; 0 disables.
  double DeadlineMillis = 0;
  /// Base of the exponential respawn backoff after a failure
  /// (base * 2^(attempt-1), capped); 0 respawns immediately.
  double BackoffMillis = 0;
  /// Assignment attempts per item before OnExhausted.
  unsigned MaxAttempts = 2;
};

/// One assignment: an opaque index into the caller's worklist plus the
/// 1-based attempt the next execution should start from (retries after
/// a worker failure resume counting, like the in-process retry loop).
/// Tier and GrantUnits are opaque scheduling context the adaptive
/// campaign scheduler threads through to the worker (solver-caps
/// distance below full strength, and a per-run explore work-unit
/// override; both 0 in fixed-order campaigns). Worker failures retry
/// with them intact — a re-dispatched item must re-run under the same
/// policy it was assigned with.
struct PoolWorkItem {
  std::size_t Index = 0;
  unsigned StartAttempt = 1;
  unsigned Tier = 0;
  std::uint64_t GrantUnits = 0;
};

/// What a worker computed for one item. CorruptFrame asks the send
/// path to damage the encoded response (the PipeMessageCorruption
/// harness fault lives at exactly this seam).
struct PoolItemResult {
  std::string Payload;
  bool CorruptFrame = false;
};

/// Runs inside the forked worker for each assignment. Must not touch
/// coordinator state (it executes in a copy-on-write address space).
using PoolItemFn = std::function<PoolItemResult(const PoolWorkItem &Item)>;

/// Coordinator-side callbacks, all invoked on the calling thread.
struct ProcessPoolHooks {
  /// A worker answered \p Index. Return false to distrust the payload
  /// (decode failure): the worker is recycled and the item retried,
  /// exactly like frame-level corruption.
  std::function<bool(std::size_t Index, unsigned Attempt,
                     const std::string &Payload)>
      OnResult;
  /// An assignment failed; \p Worker / \p Pid identify the culprit (for
  /// diagnostics only — the campaign blanks them before any record).
  std::function<void(std::size_t Index, unsigned Attempt,
                     WorkerFailureKind Kind, const std::string &Error,
                     unsigned Worker, long Pid)>
      OnFailure;
  /// \p Index failed on every allowed attempt (quarantine signal).
  std::function<void(std::size_t Index, unsigned Attempts)> OnExhausted;
  /// Polled before each assignment; true stops handing out new work
  /// (in-flight items still complete).
  std::function<bool()> ShouldStop;
  /// Increment a named "worker.*" diagnostic counter.
  std::function<void(const char *Counter)> OnCounter;
};

/// The coordinator. start() forks the workers; run() drives the
/// assign/collect loop; shutdown() reaps. Not copyable.
class ProcessPool {
public:
  /// True when the platform can fork worker processes (POSIX, and the
  /// IGDT_NO_FORK escape hatch is unset — tests use it to exercise the
  /// in-process fallback deterministically).
  static bool available();

  ProcessPool(ProcessPoolOptions Options, PoolItemFn Item);
  ~ProcessPool();
  ProcessPool(const ProcessPool &) = delete;
  ProcessPool &operator=(const ProcessPool &) = delete;

  /// Forks the workers. False when none could be spawned (caller should
  /// fall back in-process).
  bool start();

  /// Processes \p Items to completion (or stop/exhaustion). Returns the
  /// items left unprocessed — non-empty only when ShouldStop() ended
  /// the run early or every worker died and respawning kept failing;
  /// the caller finishes those in-process (graceful degradation).
  std::vector<PoolWorkItem> run(std::deque<PoolWorkItem> Items,
                                const ProcessPoolHooks &Hooks);

  /// Kills and reaps every worker; idempotent (the destructor calls it).
  void shutdown();

private:
  struct Worker;

  bool spawnWorker(Worker &W);
  void destroyWorker(Worker &W);
  [[noreturn]] void workerMain(int RequestFd, int ResponseFd);

  ProcessPoolOptions Opts;
  PoolItemFn Item;
  std::vector<Worker> Workers;
  bool Started = false;
  bool SigPipeSaved = false;
  void (*PrevSigPipe)(int) = nullptr;
};

} // namespace igdt

#endif // IGDT_EVALKIT_PROCESSPOOL_H
