//===- evalkit/CampaignScheduler.h - Adaptive campaign scheduling -------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign scheduling policy object (ROADMAP item 5). Fixed-order
/// campaigns walk the catalog with an atomic cursor (in-process) or a
/// pull queue (ProcessPool) and give every instruction the same
/// budget. The scheduler replaces that cursor as the source of "next
/// instruction" with three cooperating policies:
///
///  1. **Priority ordering** — instructions run in descending
///     historical yield (paths per budget unit, boosted by divergence
///     rate), warm-started from the per-instruction yield stats a
///     previous campaign persisted into its checkpoint JSONL.
///     Instructions without history run first (optimistically), in
///     catalog order.
///  2. **Tiered solver escalation** — every instruction first runs
///     under reduced solver caps (solverTierCaps), and is re-run at
///     escalating strength only when the cheap pass provably diverged
///     from full strength: any Unknown negation, ladder retry, budget
///     stop, contained incident, or SolverStats::CapHits > 0. A
///     cheap-tier run clean on all of those is *bit-identical* to the
///     full-strength run (caps are pure give-up thresholds), so
///     accepting it preserves the fixed-order record bytes.
///  3. **Provable early exit + budget pool** — a run whose explorer
///     reports FrontierExhausted (frontier drained, no Unknowns, no
///     budget expiry) provably owns its complete path set; its unspent
///     work units are refunded to a campaign-level pool. Once every
///     instruction has either been accepted or starved (top-strength
///     run ended budget-exhausted), the pool is redistributed in one
///     deterministic round to the highest-yield starved instructions,
///     which re-run with their base budget plus the grant.
///
/// The scheduler is deliberately execution-agnostic: it emits *waves*
/// of assignments (instruction index + tier distance + budget
/// override) and consumes per-run feedback, while CampaignRunner owns
/// threads, processes and the catalog-order merge. Determinism
/// contract: with unlimited budgets the accepted record set is
/// byte-identical to fixed order at any Jobs/WorkerProcesses topology
/// (escalated runs restart from attempt 1, so fault arming and attempt
/// counts replay exactly); with a constrained budget the grant round
/// is a deterministic function of the record set, so records are still
/// topology-independent, and path coverage is >= fixed order by budget
/// monotonicity (a larger work-unit budget explores a superset).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_CAMPAIGNSCHEDULER_H
#define IGDT_EVALKIT_CAMPAIGNSCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Scheduling policy configuration (CampaignOptions::Schedule).
struct ScheduleOptions {
  /// "fixed" (default): the byte-identical-reproduction mode — catalog
  /// order, uniform budgets, scheduler not instantiated. "adaptive":
  /// the three policies above.
  std::string Policy = "fixed";
  /// Cheap solver tiers below full strength (adaptive mode only): each
  /// rung divides the structural caps by 4x (see solverTierCaps). 0
  /// runs everything at full strength; 1 is the classic
  /// cheap-pass-then-escalate split.
  unsigned SolverTiers = 1;
  /// Redistribute provably unspent budget to starved instructions
  /// (adaptive mode with a work-unit explore budget only).
  bool BudgetPool = false;
  /// Ceiling on one instruction's total budget after a grant, as a
  /// multiple of the base per-instruction budget.
  double BudgetPoolCapFactor = 8.0;
  /// Checkpoint JSONL from a previous campaign whose per-record yield
  /// stats seed the priority order. Empty starts cold.
  std::string WarmStartPath;
  /// Write per-record yield stats ("yield" object) into this
  /// campaign's checkpoint records so later campaigns can warm-start.
  bool PersistYield = false;

  bool adaptive() const { return Policy == "adaptive"; }
};

/// Per-instruction yield statistics, persisted as the optional "yield"
/// object of a checkpoint record and consumed by the warm-start
/// loader. Everything except PathsPerSec is derived from deterministic
/// counters; PathsPerSec is 0 whenever the campaign ran untimed
/// (RecordTimings off), and the scheduler deliberately scores with the
/// deterministic PathsPerKiloUnit so priority order never depends on
/// wall clocks.
struct YieldStats {
  double PathsPerKiloUnit = 0;
  double PathsPerSec = 0;
  double DivergenceRate = 0;
  double UnknownRate = 0;
};

/// schedule.* counters (surfaced in MetricsRegistry and the --profile
/// "Scheduling" table).
struct ScheduleStats {
  std::uint64_t Waves = 0;
  std::uint64_t TierEscalations = 0;
  std::uint64_t EarlyExits = 0;
  std::uint64_t PoolRefunds = 0;
  std::uint64_t PoolRefundUnits = 0;
  std::uint64_t PoolGrants = 0;
  std::uint64_t PoolGrantUnits = 0;
  /// Pairs of instructions the priority order runs in reverse catalog
  /// order — a measure of how far the schedule deviates from fixed.
  std::uint64_t PriorityInversions = 0;
  std::uint64_t WarmStartEntries = 0;
  /// Runs discarded by escalation or a regrant (their records never
  /// merge), and the work units those runs consumed. The honest
  /// overhead figure of the tiering policy.
  std::uint64_t DiscardedRuns = 0;
  std::uint64_t DiscardedUnits = 0;
};

/// One scheduled run: worklist index, caps distance below full
/// strength (0 = full), and the per-run explore work-unit budget (0 =
/// the configured base budget).
struct ScheduleAssignment {
  std::size_t Index = 0;
  unsigned TierDistance = 0;
  std::uint64_t ExploreUnits = 0;
};

/// What the runner observed about one finished run; everything here is
/// deterministic for a fixed configuration (the scheduler's decisions
/// must be topology-independent).
struct ScheduleFeedback {
  bool Quarantined = false;
  bool BudgetExhausted = false;
  bool FrontierExhausted = false;
  /// Any contained incident during the run, including worker-level
  /// failures. Incidents mean a fault was armed for some attempt; the
  /// cheap tier cannot prove the faulted attempts matched full
  /// strength, so it escalates.
  bool HadIncidents = false;
  unsigned UnknownNegations = 0;
  unsigned LadderRetries = 0;
  unsigned Paths = 0;
  std::uint64_t CapHits = 0;
  /// Explore work units the run actually spent (Budget::spentUnits of
  /// the successful attempt).
  std::uint64_t SpentUnits = 0;
};

/// The scheduler's disposition of a reported run.
enum class ScheduleVerdict {
  /// Final: merge the record in catalog order.
  Accept,
  /// Discard everything (record, incidents, buffered trace events);
  /// the instruction reappears in a later wave at higher strength or
  /// with a grant.
  Retry,
  /// Keep the result aside: the instruction starved at full strength
  /// and may be re-run with a pool grant. If the grant round leaves it
  /// empty-handed the held result is finalised via takeFinalized().
  Hold,
};

/// Wave-emitting campaign scheduler. Single-threaded by design: the
/// runner calls nextWave()/report() from its coordinating thread only
/// (workers never touch the scheduler), which keeps every decision a
/// deterministic function of the deterministic feedback.
class CampaignScheduler {
public:
  /// \p BaseExploreUnits is the per-instruction explore work-unit
  /// budget (BudgetOptions::WorkUnits; 0 = unlimited, which disables
  /// starvation and the pool).
  CampaignScheduler(ScheduleOptions Opts, std::uint64_t BaseExploreUnits);

  /// Registers a worklist entry (catalog order == registration order).
  void addItem(std::size_t Index, std::string Name);

  /// Loads yield stats from a previous campaign's checkpoint JSONL;
  /// returns the number of entries matched against registered items.
  /// Malformed lines and records without yield data are skipped, so
  /// old-schema checkpoints warm-start as far as they can.
  std::size_t loadWarmStart(const std::string &Path);

  /// Freezes the priority order (call after addItem/loadWarmStart).
  void finalize();

  bool done() const;

  /// The next wave of assignments, highest priority first. An empty
  /// wave with done() == false never happens (the grant round either
  /// re-queues or finalises every starved item). Every assignment must
  /// be report()ed before the next nextWave() call.
  std::vector<ScheduleAssignment> nextWave();

  /// Items finalised without a fresh run since the last call (starved
  /// items the grant round left empty-handed): the runner publishes
  /// their held results. Call after every nextWave().
  std::vector<std::size_t> takeFinalized();

  ScheduleVerdict report(const ScheduleAssignment &Assignment,
                         const ScheduleFeedback &Feedback);

  const ScheduleStats &stats() const { return Stats; }
  /// The frozen priority order (worklist indices; tests).
  const std::vector<std::size_t> &plannedOrder() const { return Planned; }
  /// Current pool balance in work units (tests).
  std::uint64_t poolUnits() const { return PoolUnits; }

private:
  enum class ItemState : std::uint8_t {
    Pending,
    InFlight,
    Starved,
    Accepted,
  };

  struct Item {
    std::size_t Index = 0;
    std::string Name;
    /// Warm-start priority score; +infinity when unknown.
    double Score = 0;
    ItemState State = ItemState::Pending;
    unsigned TierDistance = 0;
    /// Nonzero after a grant: base + granted units.
    std::uint64_t GrantUnits = 0;
    bool Regranted = false;
    /// Observed yield of the starved full-strength run, for the grant
    /// order (exact integers so ranking needs no float ties).
    unsigned StarvedPaths = 0;
    std::uint64_t StarvedSpent = 0;
  };

  bool poolActive() const;
  void runGrantRound();

  ScheduleOptions Opts;
  std::uint64_t BaseUnits;
  std::vector<Item> Items;
  /// Worklist index -> Items position.
  std::vector<std::size_t> Planned;
  std::vector<std::size_t> Finalized;
  ScheduleStats Stats;
  std::uint64_t PoolUnits = 0;
  bool Finalized_ = false;
  bool GrantRoundDone = false;
};

} // namespace igdt

#endif // IGDT_EVALKIT_CAMPAIGNSCHEDULER_H
