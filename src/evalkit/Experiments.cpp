//===- evalkit/Experiments.cpp - Evaluation drivers ------------------------------===//

#include "evalkit/Experiments.h"

#include "solver/TermPrinter.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <chrono>

using namespace igdt;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

EvaluationHarness::EvaluationHarness(HarnessOptions Options)
    : Opts(std::move(Options)) {}

DiffTestConfig EvaluationHarness::diffConfig(CompilerKind Kind,
                                             bool Arm) const {
  DiffTestConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.UseArmBackend = Arm;
  Cfg.Cogit = Opts.Cogit;
  Cfg.Sim = Opts.Sim;
  Cfg.CrossEngineCheck = Opts.CrossEngineCheck;
  if (Opts.SeedSimulationErrors && Arm)
    Cfg.Sim.MissingFPAccessors.insert(std::uint8_t(FReg::F5));
  return Cfg;
}

void EvaluationHarness::exploreAll() {
  if (ExplorationDone)
    return;
  unsigned Bytecodes = 0;
  unsigned Natives = 0;
  for (const InstructionSpec &Spec : allInstructions()) {
    if (Spec.Kind == InstructionKind::Bytecode) {
      if (Opts.MaxBytecodes && Bytecodes >= Opts.MaxBytecodes)
        continue;
      ++Bytecodes;
    } else {
      if (Opts.MaxNativeMethods && Natives >= Opts.MaxNativeMethods)
        continue;
      ++Natives;
    }
    ConcolicExplorer Explorer(Opts.VM, Opts.Explorer);
    // Warm-up run first: Figure 6 reports steady-state exploration time,
    // not first-touch page faults of a fresh heap.
    (void)Explorer.explore(Spec);
    auto Start = std::chrono::steady_clock::now();
    ExploredInstruction E;
    E.Result =
        std::make_unique<ExplorationResult>(Explorer.explore(Spec));
    E.ExploreMillis = millisSince(Start);
    Explored.push_back(std::move(E));
  }
  ExplorationDone = true;
}

CompilerEvaluation EvaluationHarness::evaluateCompiler(CompilerKind Kind) {
  exploreAll();
  CompilerEvaluation Eval;
  Eval.Kind = Kind;

  InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                               ? InstructionKind::NativeMethod
                               : InstructionKind::Bytecode;

  // One compile-once cache for both back-ends (keys carry the back-end,
  // so the arms never serve each other), and one replay arena shared
  // the same way — this call runs both arms serially, so worker-local
  // means call-local here.
  JitCodeCache CodeCache;
  JitCacheStats JStats;
  ReplayArena Arena;
  DiffTestConfig CfgX64 = diffConfig(Kind, /*Arm=*/false);
  DiffTestConfig CfgArm = diffConfig(Kind, /*Arm=*/true);
  CfgX64.JitStats = CfgArm.JitStats = &JStats;
  if (Opts.EnableCodeCache)
    CfgX64.CodeCache = CfgArm.CodeCache = &CodeCache;
  if (Opts.EnableReplayArena)
    CfgX64.Arena = CfgArm.Arena = &Arena;
  DifferentialTester X64(CfgX64);
  DifferentialTester Arm(CfgArm);

  for (const ExploredInstruction &E : Explored) {
    const ExplorationResult &R = *E.Result;
    if (R.Spec->Kind != Wanted)
      continue;
    ++Eval.TestedInstructions;
    Eval.InterpreterPaths += static_cast<unsigned>(R.Paths.size());
    Eval.CuratedPaths += R.curatedCount();

    auto Start = std::chrono::steady_clock::now();
    for (std::size_t I = 0; I < R.Paths.size(); ++I) {
      PathTestOutcome A = X64.testPath(R, I);
      PathTestOutcome B = Arm.testPath(R, I);
      bool Differs = A.Status == PathTestStatus::Difference ||
                     B.Status == PathTestStatus::Difference;
      if (!Differs)
        continue;
      ++Eval.DifferingPaths;
      if (A.Status == PathTestStatus::Difference)
        Eval.Causes.emplace(A.CauseKey, A.Family);
      if (B.Status == PathTestStatus::Difference)
        Eval.Causes.emplace(B.CauseKey, B.Family);
    }
    Eval.TestMillisPerInstruction.push_back(millisSince(Start));
  }
  return Eval;
}

std::vector<CompilerEvaluation> EvaluationHarness::evaluateAllCompilers() {
  exploreAll();
  return {evaluateCompiler(CompilerKind::NativeMethod),
          evaluateCompiler(CompilerKind::SimpleStack),
          evaluateCompiler(CompilerKind::StackToRegister),
          evaluateCompiler(CompilerKind::RegisterAllocating)};
}

std::vector<double>
EvaluationHarness::pathsPerInstruction(InstructionKind Kind) const {
  std::vector<double> Out;
  for (const ExploredInstruction &E : Explored)
    if (E.Result->Spec->Kind == Kind)
      Out.push_back(static_cast<double>(E.Result->Paths.size()));
  return Out;
}

std::vector<double>
EvaluationHarness::exploreMillisPerInstruction(InstructionKind Kind) const {
  std::vector<double> Out;
  for (const ExploredInstruction &E : Explored)
    if (E.Result->Spec->Kind == Kind)
      Out.push_back(E.ExploreMillis);
  return Out;
}

std::string EvaluationHarness::renderTable1() {
  ConcolicExplorer Explorer(Opts.VM, Opts.Explorer);
  ExplorationResult R =
      Explorer.explore(*findInstruction("bytecodePrim_add"));

  TablePrinter T({"Argument 0 (top)", "Argument 1", "Exit", "Path"});
  for (const PathSolution &P : R.Paths) {
    std::string Arg0 = P.Input.Stack.size() > 1
                           ? R.Memory->describe(P.Input.Stack[1].C)
                           : "-";
    std::string Arg1 = !P.Input.Stack.empty()
                           ? R.Memory->describe(P.Input.Stack[0].C)
                           : "-";
    std::vector<std::string> Conds;
    for (const BoolTerm *C : P.Constraints)
      Conds.push_back(printBoolTerm(C));
    T.addRow({Arg1, Arg0, exitKindName(P.Exit),
              joinStrings(Conds, ", ")});
  }
  return "Table 1: concolic execution paths of bytecodePrimAdd\n" +
         T.render();
}

std::string EvaluationHarness::renderFigure2Trace() {
  ConcolicExplorer Explorer(Opts.VM, Opts.Explorer);
  ExplorationResult R =
      Explorer.explore(*findInstruction("bytecodePrim_add"));
  std::string Out =
      "Figure 2: constraint tracking across concolic executions of the "
      "add byte-code\n\n";
  unsigned Col = 1;
  for (const PathSolution &P : R.Paths) {
    Out += formatString("== Concolic Execution #%u ==\n", Col++);
    Out += "input operand stack:";
    if (P.Input.Stack.empty())
      Out += " (empty)";
    for (const ConcolicValue &V : P.Input.Stack)
      Out += " " + R.Memory->describe(V.C);
    Out += formatString("\nexit: %s\n", exitKindName(P.Exit));
    Out += "recorded constraint path:\n";
    for (const BoolTerm *C : P.Constraints)
      Out += "  " + printBoolTerm(C) + "\n";
    Out += "output operand stack:";
    if (P.Output.Stack.empty())
      Out += " (empty)";
    for (const ConcolicValue &V : P.Output.Stack)
      Out += " " + printObjTerm(V.S);
    Out += "\n\n";
  }
  return Out;
}

std::string
EvaluationHarness::renderTable2(const std::vector<CompilerEvaluation> &Rows) {
  TablePrinter T({"Compiler", "# Tested Instructions", "# Interpreter Paths",
                  "# Curated Paths", "# Differences (%)"});
  unsigned TotalInstr = 0;
  unsigned TotalPaths = 0;
  unsigned TotalCurated = 0;
  unsigned TotalDiffs = 0;
  for (const CompilerEvaluation &Row : Rows) {
    double Pct = Row.CuratedPaths
                     ? double(Row.DifferingPaths) / Row.CuratedPaths
                     : 0;
    T.addRow({compilerKindName(Row.Kind),
              formatString("%u", Row.TestedInstructions),
              formatString("%u", Row.InterpreterPaths),
              formatString("%u", Row.CuratedPaths),
              formatString("%u (%s)", Row.DifferingPaths,
                           formatPercent(Pct).c_str())});
    TotalInstr += Row.TestedInstructions;
    TotalPaths += Row.InterpreterPaths;
    TotalCurated += Row.CuratedPaths;
    TotalDiffs += Row.DifferingPaths;
  }
  double TotalPct = TotalCurated ? double(TotalDiffs) / TotalCurated : 0;
  T.addRow({"Total", formatString("%u", TotalInstr),
            formatString("%u", TotalPaths), formatString("%u", TotalCurated),
            formatString("%u (%s)", TotalDiffs,
                         formatPercent(TotalPct).c_str())});
  return "Table 2: results of running the approach on four compilers\n" +
         T.render();
}

std::string
EvaluationHarness::renderTable3(const std::vector<CompilerEvaluation> &Rows) {
  // Deduplicate causes across compilers and count per family.
  std::map<std::string, DefectFamily> AllCauses;
  for (const CompilerEvaluation &Row : Rows)
    for (const auto &[Key, Family] : Row.Causes)
      AllCauses.emplace(Key, Family);

  std::map<DefectFamily, unsigned> PerFamily;
  for (const auto &[Key, Family] : AllCauses)
    ++PerFamily[Family];

  TablePrinter T({"Family", "# Cases"});
  unsigned Total = 0;
  static const DefectFamily Order[] = {
      DefectFamily::MissingInterpreterTypeCheck,
      DefectFamily::MissingCompiledTypeCheck,
      DefectFamily::OptimisationDifference,
      DefectFamily::BehaviouralDifference,
      DefectFamily::MissingFunctionality,
      DefectFamily::SimulationError,
  };
  for (DefectFamily F : Order) {
    unsigned N = PerFamily.count(F) ? PerFamily[F] : 0;
    T.addRow({defectFamilyName(F), formatString("%u", N)});
    Total += N;
  }
  T.addRow({"Total", formatString("%u", Total)});
  return "Table 3: summary of found defects (causes, deduplicated)\n" +
         T.render();
}

std::string EvaluationHarness::renderFigure5() {
  exploreAll();
  std::vector<double> BC = pathsPerInstruction(InstructionKind::Bytecode);
  std::vector<double> NM =
      pathsPerInstruction(InstructionKind::NativeMethod);
  std::string Out = "Figure 5: paths per instruction (log scale)\n\n";
  Out += "Byte-codes:      " + describeStats(computeStats(BC), "") + "\n";
  Out += renderHistogram(BC, 6, "paths");
  Out += "\nNative methods:  " + describeStats(computeStats(NM), "") + "\n";
  Out += renderHistogram(NM, 6, "paths");
  return Out;
}

std::string EvaluationHarness::renderFigure6() {
  exploreAll();
  std::vector<double> BC =
      exploreMillisPerInstruction(InstructionKind::Bytecode);
  std::vector<double> NM =
      exploreMillisPerInstruction(InstructionKind::NativeMethod);
  std::string Out =
      "Figure 6: concolic execution time per kind of instruction\n\n";
  Out += "Byte-codes:      " + describeStats(computeStats(BC), "ms") + "\n";
  Out += "Native methods:  " + describeStats(computeStats(NM), "ms") + "\n";
  Out += renderHistogram(NM, 6, "ms");
  return Out;
}

std::string
EvaluationHarness::renderFigure7(const std::vector<CompilerEvaluation> &Rows) {
  std::string Out =
      "Figure 7: differential test execution time per compiler\n\n";
  for (const CompilerEvaluation &Row : Rows) {
    SampleStats Stats = computeStats(Row.TestMillisPerInstruction);
    Out += formatString("%-35s %s\n", compilerKindName(Row.Kind),
                        describeStats(Stats, "ms").c_str());
  }
  return Out;
}
