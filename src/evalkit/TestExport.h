//===- evalkit/TestExport.h - Rendering paths as unit tests -----------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders explored paths as self-contained, human-readable unit-test
/// descriptions — the "more than 4.5K tests" the paper's abstract counts.
/// Each test names the instruction, the concrete input frame to build,
/// and the expected observable outcome, so a developer can re-run or port
/// a single failing scenario without the concolic machinery.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_TESTEXPORT_H
#define IGDT_EVALKIT_TESTEXPORT_H

#include "concolic/ConcolicExplorer.h"

#include <string>

namespace igdt {

/// Renders path \p PathIdx of \p R as one test description.
std::string renderPathAsTest(const ExplorationResult &R,
                             std::size_t PathIdx);

/// Renders every replayable path of \p R as a test suite.
std::string renderInstructionTestSuite(const ExplorationResult &R);

/// Number of generated tests (replayable paths) in \p R.
unsigned generatedTestCount(const ExplorationResult &R);

} // namespace igdt

#endif // IGDT_EVALKIT_TESTEXPORT_H
