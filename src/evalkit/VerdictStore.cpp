//===- evalkit/VerdictStore.cpp - Content-addressed verdict cache -------------===//

#include "evalkit/VerdictStore.h"

#include "evalkit/CampaignRunner.h"
#include "support/StringUtils.h"
#include "vm/InstructionCatalog.h"

#include <cstring>

using namespace igdt;

namespace {

std::uint64_t bitsOf(double Value) {
  std::uint64_t Bits = 0;
  std::memcpy(&Bits, &Value, sizeof Bits);
  return Bits;
}

} // namespace

std::uint64_t igdt::instructionBodyHash(const InstructionSpec &Spec) {
  std::uint64_t H = hashCombine64(0xB0D7ull, VerdictSchemaVersion);
  H = hashCombine64(H, stableHash64(Spec.Name));
  H = hashCombine64(H, std::uint64_t(Spec.Kind));
  H = hashCombine64(H, Spec.Bytes.size());
  for (std::uint8_t Byte : Spec.Bytes)
    H = hashCombine64(H, Byte);
  H = hashCombine64(H, std::uint64_t(std::int64_t(Spec.PrimitiveIndex)));
  H = hashCombine64(H, Spec.NumLocals);
  H = hashCombine64(H, Spec.Literals.size());
  for (Oop Literal : Spec.Literals)
    H = hashCombine64(H, Literal);
  H = hashCombine64(H, Spec.PaddingBytes);
  return H;
}

std::uint64_t igdt::campaignConfigFingerprint(const CampaignOptions &Opts) {
  // Same chained-combine idiom as the solver's caps fingerprint: every
  // field that can change a record's bytes, in a fixed order. Jobs /
  // WorkerProcesses / deadlines / the identity-gated replay toggles are
  // deliberately absent (see the header's exclusion argument).
  std::uint64_t H = hashCombine64(0xCF16ull, VerdictSchemaVersion);

  const VMConfig &VM = Opts.Harness.VM;
  H = hashCombine64(H, VM.MaxOperandStack);
  H = hashCombine64(H, VM.MaxObjectSlots);
  H = hashCombine64(H, VM.SeedAsFloatMissingReceiverCheck);
  H = hashCombine64(H, VM.SeedBitOpsFailOnNegative);

  const ExplorerOptions &E = Opts.Harness.Explorer;
  H = hashCombine64(H, E.MaxPaths);
  H = hashCombine64(H, E.MaxIterations);
  H = hashCombine64(H, std::uint64_t(E.MaxReplayStackDepth));
  H = hashCombine64(H, E.LadderRungs);
  // The model bank is part of the defined exploration algorithm (which
  // model answers a query shapes the frontier), so its capacity is
  // config; the Enable* memo toggles are proven byte-identical and stay
  // out.
  H = hashCombine64(H, E.ModelBankCapacity);

  const SolverOptions &S = E.Solver;
  H = hashCombine64(H, std::uint64_t(std::int64_t(S.IntegerBits)));
  H = hashCombine64(H, S.MaxCases);
  H = hashCombine64(H, S.MaxClassCombos);
  H = hashCombine64(H, S.MaxSearchNodes);
  H = hashCombine64(H, S.RandomSamples);
  H = hashCombine64(H, std::uint64_t(S.MaxStackSize));
  H = hashCombine64(H, std::uint64_t(S.MaxSlotCount));
  H = hashCombine64(H, S.Seed);

  const CogitOptions &C = Opts.Harness.Cogit;
  H = hashCombine64(H, C.SeedFloatReceiverCheckMissing);
  H = hashCombine64(H, C.SeedFFINotImplemented);
  H = hashCombine64(H, C.SeedBitOpsAcceptNegatives);
  H = hashCombine64(H, C.InjectFrontEndThrow);

  const SimOptions &Sim = Opts.Harness.Sim;
  H = hashCombine64(H, Sim.Fuel);
  H = hashCombine64(H, Sim.MissingGPAccessors.size());
  for (std::uint8_t Reg : Sim.MissingGPAccessors)
    H = hashCombine64(H, Reg);
  H = hashCombine64(H, Sim.MissingFPAccessors.size());
  for (std::uint8_t Reg : Sim.MissingFPAccessors)
    H = hashCombine64(H, Reg);
  // Sim.Engine is deliberately absent: the three engines are proven
  // byte-identical (the tier-identity gate), so a record computed under
  // one may serve any other — the same argument that keeps the replay
  // toggles out. The probe and the cross-engine oracle DO shape record
  // bytes (extra defect family rows), so they are config.
  H = hashCombine64(H, Sim.NativeMiscompileProbe);
  H = hashCombine64(H, Opts.Harness.CrossEngineCheck);

  H = hashCombine64(H, Opts.Harness.SeedSimulationErrors);
  H = hashCombine64(H, Opts.ExploreBudget.WorkUnits);
  H = hashCombine64(H, Opts.ReplayBudget.WorkUnits);
  H = hashCombine64(H, Opts.TotalExploreUnits);
  H = hashCombine64(H, Opts.MaxAttempts);
  H = hashCombine64(H, Opts.RecordTimings);

  const ScheduleOptions &Sched = Opts.Schedule;
  H = hashCombine64(H, stableHash64(Sched.Policy));
  H = hashCombine64(H, Sched.SolverTiers);
  H = hashCombine64(H, Sched.BudgetPool);
  H = hashCombine64(H, bitsOf(Sched.BudgetPoolCapFactor));
  H = hashCombine64(H, Sched.PersistYield);

  H = hashCombine64(H, Opts.Faults.Faults.size());
  for (const ArmedFault &F : Opts.Faults.Faults) {
    H = hashCombine64(H, std::uint64_t(F.Kind));
    H = hashCombine64(H, stableHash64(F.Instruction));
    H = hashCombine64(H, F.Transient);
  }
  return H;
}

std::uint64_t igdt::resultStoreKey(const InstructionSpec &Spec,
                                   std::uint64_t ConfigFingerprint) {
  return hashCombine64(instructionBodyHash(Spec), ConfigFingerprint);
}

bool igdt::storeEligible(const CampaignOptions &Opts) {
  // Wall clocks make record content timing-dependent; the campaign
  // ledger (and an adaptive pool drawing on it) makes *which*
  // instruction starves a scheduling fact. Neither may be cached.
  if (Opts.ExploreBudget.WallMillis > 0 || Opts.ReplayBudget.WallMillis > 0 ||
      Opts.CampaignWallMillis > 0)
    return false;
  if (Opts.TotalExploreUnits > 0)
    return false;
  if (Opts.Schedule.adaptive() && Opts.Schedule.BudgetPool)
    return false;
  return true;
}
