//===- evalkit/VerdictStore.h - Content-addressed verdict cache ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed verdict cache behind incremental campaigns: a
/// re-run after an interpreter/compiler edit re-explores only the
/// instructions whose inputs actually changed.
///
/// The key is a stable 64-bit hash over everything a record is a pure
/// function of:
///
///   key = h(schema version
///           ++ instruction body          (bytes, literals, locals, ...)
///           ++ compiler fingerprint      (CogitOptions defect seeds)
///           ++ solver caps fingerprint   (SolverOptions + ladder)
///           ++ the remaining record-shaping config)
///
/// and the value is the *exact checkpoint JSONL line* the fresh run
/// appended — never a re-serialisation — so a cache-served record is
/// byte-identical to a freshly computed one. That is the same
/// identity-gate pattern SimOptions::Engine and EnableReplayArena use:
/// the store is purely an optimisation, provable by diffing checkpoint
/// files from cold and warm runs.
///
/// Deliberately EXCLUDED from the key: Jobs, WorkerProcesses, worker
/// deadlines/backoff, the EnableCodeCache / EnableReplayArena toggles
/// and SimOptions::Engine (switch/threaded/native) — the campaign
/// already proves records byte-identical across all of them, so a
/// record computed at one topology or execution tier may serve any
/// other. SimOptions::NativeMiscompileProbe and
/// HarnessOptions::CrossEngineCheck ARE keyed: both change which
/// defects a record reports. Wall-clock budgets are excluded too,
/// but by *refusal* rather than omission: storeEligible() disables the
/// store entirely when a wall budget or campaign-level ledger could
/// make the record content timing- or scheduling-dependent.
///
/// This header owns the abstract interface plus the key derivation (so
/// evalkit never depends on src/service); the persistent JSONL-backed
/// ResultStore lives in service/ResultStore.h.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_VERDICTSTORE_H
#define IGDT_EVALKIT_VERDICTSTORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace igdt {

struct CampaignOptions;
struct InstructionSpec;

/// Bumped whenever InstructionRecord::toJson changes shape, so stores
/// written by older binaries self-invalidate instead of serving records
/// a new reader would mis-parse.
constexpr std::uint64_t VerdictSchemaVersion = 1;

/// Stable hash of one catalog instruction's *body*: name, kind, encoded
/// bytes, primitive index, locals, literal frame and padding. Editing
/// any byte of the instruction changes the key; editing a different
/// instruction does not.
std::uint64_t instructionBodyHash(const InstructionSpec &Spec);

/// Stable fingerprint of every CampaignOptions field a record's bytes
/// depend on (see the file comment for the exclusion argument).
std::uint64_t campaignConfigFingerprint(const CampaignOptions &Opts);

/// The content address: body hash x config fingerprint x schema version.
std::uint64_t resultStoreKey(const InstructionSpec &Spec,
                             std::uint64_t ConfigFingerprint);

/// Whether a campaign's records are pure functions of (body, config) at
/// all. False when a wall-clock budget or the campaign-level explore
/// ledger (or an adaptive budget pool drawing on it) makes record
/// content depend on clocks or cross-instruction scheduling — the
/// runner then ignores any configured store rather than cache unstable
/// bytes.
bool storeEligible(const CampaignOptions &Opts);

/// A content-addressed map from key to checkpoint line. Implementations
/// must be safe to share across concurrent campaigns (the service
/// daemon points every session at one store).
class VerdictStore {
public:
  virtual ~VerdictStore() = default;

  /// Fetches the stored checkpoint line for \p Key. True on hit.
  virtual bool lookup(std::uint64_t Key, std::string &RecordLine) = 0;

  /// Stores \p RecordLine (the exact appended checkpoint bytes) under
  /// \p Key. \p Instruction names the record for invalidation.
  virtual void put(std::uint64_t Key, const std::string &Instruction,
                   const std::string &RecordLine) = 0;
};

/// In-memory store for tests and single-process warm re-runs.
class MemoryVerdictStore : public VerdictStore {
public:
  bool lookup(std::uint64_t Key, std::string &RecordLine) override {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It == Entries.end())
      return false;
    RecordLine = It->second.Line;
    return true;
  }

  void put(std::uint64_t Key, const std::string &Instruction,
           const std::string &RecordLine) override {
    std::lock_guard<std::mutex> Lock(Mu);
    Entries[Key] = {Instruction, RecordLine};
  }

  /// Drops entries recorded for \p Instruction (all entries when
  /// empty). Returns how many were dropped.
  std::size_t invalidate(const std::string &Instruction) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Instruction.empty()) {
      std::size_t N = Entries.size();
      Entries.clear();
      return N;
    }
    std::size_t N = 0;
    for (auto It = Entries.begin(); It != Entries.end();)
      if (It->second.Instruction == Instruction) {
        It = Entries.erase(It);
        ++N;
      } else {
        ++It;
      }
    return N;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Entries.size();
  }

private:
  struct Entry {
    std::string Instruction;
    std::string Line;
  };
  mutable std::mutex Mu;
  std::map<std::uint64_t, Entry> Entries;
};

} // namespace igdt

#endif // IGDT_EVALKIT_VERDICTSTORE_H
