//===- evalkit/CampaignRunner.cpp - Resilient evaluation campaigns -------------===//

#include "evalkit/CampaignRunner.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <fstream>

using namespace igdt;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

const char *instructionKindLabel(InstructionKind Kind) {
  return Kind == InstructionKind::Bytecode ? "bytecode" : "native-method";
}

constexpr CompilerKind AllCompilers[] = {
    CompilerKind::NativeMethod, CompilerKind::SimpleStack,
    CompilerKind::StackToRegister, CompilerKind::RegisterAllocating};

constexpr DefectFamily AllFamilies[] = {
    DefectFamily::MissingInterpreterTypeCheck,
    DefectFamily::MissingCompiledTypeCheck,
    DefectFamily::OptimisationDifference,
    DefectFamily::BehaviouralDifference,
    DefectFamily::MissingFunctionality,
    DefectFamily::SimulationError};

bool parseCompilerKind(const std::string &Name, CompilerKind &Out) {
  for (CompilerKind Kind : AllCompilers)
    if (Name == compilerKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

bool parseDefectFamily(const std::string &Name, DefectFamily &Out) {
  for (DefectFamily Family : AllFamilies)
    if (Name == defectFamilyName(Family)) {
      Out = Family;
      return true;
    }
  return false;
}

} // namespace

std::string CampaignIncident::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("stage", JsonValue::string(Stage))
      .set("error_class", JsonValue::string(ErrorClass))
      .set("error", JsonValue::string(Error))
      .set("attempt", JsonValue::number(Attempt))
      .set("explore_budget", JsonValue::string(ExploreBudget))
      .set("replay_budget", JsonValue::string(ReplayBudget))
      .set("quarantined", JsonValue::boolean(Quarantined));
  return V.dump();
}

std::string InstructionRecord::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("kind", JsonValue::string(instructionKindLabel(Kind)))
      .set("quarantined", JsonValue::boolean(Quarantined))
      .set("attempts", JsonValue::number(Attempts))
      .set("paths", JsonValue::number(Paths))
      .set("curated", JsonValue::number(CuratedPaths))
      .set("unknown_negations", JsonValue::number(UnknownNegations))
      .set("ladder_retries", JsonValue::number(LadderRetries))
      .set("ladder_rescues", JsonValue::number(LadderRescues))
      .set("budget_exhausted", JsonValue::boolean(BudgetExhausted));
  JsonValue Comps = JsonValue::array();
  for (const CompilerOutcome &C : Compilers) {
    JsonValue O = JsonValue::object();
    O.set("kind", JsonValue::string(compilerKindName(C.Kind)))
        .set("differing", JsonValue::number(C.DifferingPaths))
        .set("budget_skipped", JsonValue::number(C.BudgetSkipped))
        .set("millis", JsonValue::number(C.TestMillis));
    JsonValue Causes = JsonValue::array();
    for (const auto &[Key, Family] : C.Causes) {
      JsonValue Cause = JsonValue::object();
      Cause.set("key", JsonValue::string(Key))
          .set("family", JsonValue::string(defectFamilyName(Family)));
      Causes.push(std::move(Cause));
    }
    O.set("causes", std::move(Causes));
    Comps.push(std::move(O));
  }
  V.set("compilers", std::move(Comps));
  return V.dump();
}

bool InstructionRecord::fromJson(const std::string &Line,
                                 InstructionRecord &Out) {
  auto V = JsonValue::parse(Line);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  Out = InstructionRecord();
  Out.Instruction = V->stringOr("instruction", "");
  if (Out.Instruction.empty())
    return false;
  Out.Kind = V->stringOr("kind", "bytecode") == "native-method"
                 ? InstructionKind::NativeMethod
                 : InstructionKind::Bytecode;
  Out.Quarantined = V->boolOr("quarantined", false);
  Out.Attempts = static_cast<unsigned>(V->numberOr("attempts", 1));
  Out.Paths = static_cast<unsigned>(V->numberOr("paths", 0));
  Out.CuratedPaths = static_cast<unsigned>(V->numberOr("curated", 0));
  Out.UnknownNegations =
      static_cast<unsigned>(V->numberOr("unknown_negations", 0));
  Out.LadderRetries = static_cast<unsigned>(V->numberOr("ladder_retries", 0));
  Out.LadderRescues = static_cast<unsigned>(V->numberOr("ladder_rescues", 0));
  Out.BudgetExhausted = V->boolOr("budget_exhausted", false);
  if (const JsonValue *Comps = V->find("compilers")) {
    for (const JsonValue &O : Comps->Arr) {
      CompilerOutcome C;
      if (!parseCompilerKind(O.stringOr("kind", ""), C.Kind))
        return false;
      C.DifferingPaths = static_cast<unsigned>(O.numberOr("differing", 0));
      C.BudgetSkipped = static_cast<unsigned>(O.numberOr("budget_skipped", 0));
      C.TestMillis = O.numberOr("millis", 0);
      if (const JsonValue *Causes = O.find("causes")) {
        for (const JsonValue &Cause : Causes->Arr) {
          DefectFamily Family;
          if (!parseDefectFamily(Cause.stringOr("family", ""), Family))
            return false;
          C.Causes.emplace(Cause.stringOr("key", ""), Family);
        }
      }
      Out.Compilers.push_back(std::move(C));
    }
  }
  return true;
}

int CampaignSummary::exitCode() const {
  // Optimisation differences are the one family the paper classifies
  // as "arguably correct in both" — they are structural (the simple
  // compiler never inlines) and present even with every defect seed
  // disabled, so they must not fail a campaign.
  for (const CompilerEvaluation &Row : Rows)
    for (const auto &[Key, Family] : Row.Causes) {
      (void)Key;
      if (Family != DefectFamily::OptimisationDifference)
        return 1;
    }
  return 0;
}

std::vector<CompilerEvaluation>
igdt::aggregateCampaignRows(const std::vector<InstructionRecord> &Records) {
  std::vector<CompilerEvaluation> Rows;
  for (CompilerKind Kind : AllCompilers) {
    CompilerEvaluation Row;
    Row.Kind = Kind;
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    for (const InstructionRecord &Rec : Records) {
      if (Rec.Quarantined || Rec.Kind != Wanted)
        continue;
      ++Row.TestedInstructions;
      Row.InterpreterPaths += Rec.Paths;
      Row.CuratedPaths += Rec.CuratedPaths;
      for (const CompilerOutcome &C : Rec.Compilers) {
        if (C.Kind != Kind)
          continue;
        Row.DifferingPaths += C.DifferingPaths;
        for (const auto &[Key, Family] : C.Causes)
          Row.Causes.emplace(Key, Family);
        Row.TestMillisPerInstruction.push_back(C.TestMillis);
      }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

CampaignRunner::CampaignRunner(CampaignOptions Options)
    : Opts(std::move(Options)) {}

void CampaignRunner::appendLine(const std::string &Path,
                                const std::string &Line) const {
  if (Path.empty())
    return;
  std::ofstream Out(Path, std::ios::app);
  Out << Line << '\n';
}

InstructionRecord
CampaignRunner::attemptInstruction(const InstructionSpec &Spec,
                                   unsigned Attempt, Budget &ExploreBud,
                                   Budget &ReplayBud) {
  InstructionRecord Rec;
  Rec.Instruction = Spec.Name;
  Rec.Kind = Spec.Kind;
  Rec.Attempts = Attempt;

  ExplorerOptions EOpts = Opts.Harness.Explorer;
  EOpts.ExternalBudget = &ExploreBud;
  if (Opts.Faults.armedFor(HarnessFaultKind::SolverHang, Spec.Name, Attempt))
    EOpts.Solver.InjectSolverHang = true;
  if (Opts.Faults.armedFor(HarnessFaultKind::HeapCorruption, Spec.Name,
                           Attempt))
    EOpts.InjectHeapCorruption = true;

  ConcolicExplorer Explorer(Opts.Harness.VM, EOpts);
  ExplorationResult R = Explorer.explore(Spec);
  Rec.Paths = static_cast<unsigned>(R.Paths.size());
  Rec.CuratedPaths = R.curatedCount();
  Rec.UnknownNegations = R.UnknownNegations;
  Rec.LadderRetries = R.LadderRetries;
  Rec.LadderRescues = R.LadderRescues;
  Rec.BudgetExhausted = R.BudgetExhausted;

  for (CompilerKind Kind : AllCompilers) {
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    if (Spec.Kind != Wanted)
      continue;

    auto MakeConfig = [&](bool Arm) {
      DiffTestConfig Cfg;
      Cfg.Kind = Kind;
      Cfg.UseArmBackend = Arm;
      Cfg.Cogit = Opts.Harness.Cogit;
      if (Opts.Harness.SeedSimulationErrors && Arm)
        Cfg.Sim.MissingFPAccessors.insert(std::uint8_t(FReg::F5));
      Cfg.ReplayBudget = &ReplayBud;
      if (Opts.Faults.armedFor(HarnessFaultKind::FrontEndThrow, Spec.Name,
                               Attempt))
        Cfg.Cogit.InjectFrontEndThrow = true;
      if (Opts.Faults.armedFor(HarnessFaultKind::SimFuelExhaustion, Spec.Name,
                               Attempt)) {
        Cfg.Sim.Fuel = 1;
        Cfg.FuelExhaustionIsHarnessFault = true;
      }
      return Cfg;
    };

    CompilerOutcome Outcome;
    Outcome.Kind = Kind;
    DifferentialTester X64(MakeConfig(/*Arm=*/false));
    DifferentialTester Arm(MakeConfig(/*Arm=*/true));

    auto Start = std::chrono::steady_clock::now();
    for (std::size_t I = 0; I < R.Paths.size(); ++I) {
      PathTestOutcome A = X64.testPath(R, I);
      PathTestOutcome B = Arm.testPath(R, I);
      if (A.Status == PathTestStatus::BudgetSkipped ||
          B.Status == PathTestStatus::BudgetSkipped)
        ++Outcome.BudgetSkipped;
      bool Differs = A.Status == PathTestStatus::Difference ||
                     B.Status == PathTestStatus::Difference;
      if (!Differs)
        continue;
      ++Outcome.DifferingPaths;
      if (A.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(A.CauseKey, A.Family);
      if (B.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(B.CauseKey, B.Family);
    }
    Outcome.TestMillis = millisSince(Start);
    Rec.Compilers.push_back(std::move(Outcome));
  }
  return Rec;
}

InstructionRecord CampaignRunner::testInstruction(const InstructionSpec &Spec,
                                                  CampaignSummary &Summary) {
  unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  std::vector<CampaignIncident> Local;
  InstructionRecord Rec;
  bool Succeeded = false;

  for (unsigned Attempt = 1; Attempt <= MaxAttempts && !Succeeded; ++Attempt) {
    // Fresh budgets AND a fresh exploration heap per attempt: a fault
    // must not leak state into the retry.
    Budget ExploreBud(Opts.ExploreBudget);
    Budget ReplayBud(Opts.ReplayBudget);
    try {
      Rec = attemptInstruction(Spec, Attempt, ExploreBud, ReplayBud);
      Succeeded = true;
    } catch (const HarnessFault &F) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = F.stage();
      I.ErrorClass = "harness-fault";
      I.Error = F.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    } catch (const std::exception &E) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = "explore";
      I.ErrorClass = "exception";
      I.Error = E.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    }
  }

  if (!Succeeded) {
    Rec = InstructionRecord();
    Rec.Instruction = Spec.Name;
    Rec.Kind = Spec.Kind;
    Rec.Attempts = MaxAttempts;
    Rec.Quarantined = true;
  }

  for (CampaignIncident &I : Local) {
    I.Quarantined = Rec.Quarantined;
    appendLine(Opts.IncidentLogPath, I.toJson());
    Summary.Incidents.push_back(std::move(I));
  }
  return Rec;
}

CampaignSummary CampaignRunner::run() {
  CampaignSummary Summary;

  // Resume: later checkpoint lines win, so a record rewritten after a
  // retry supersedes the earlier one.
  std::map<std::string, InstructionRecord> Done;
  if (!Opts.CheckpointPath.empty()) {
    std::ifstream In(Opts.CheckpointPath);
    std::string Line;
    while (std::getline(In, Line)) {
      InstructionRecord Rec;
      if (InstructionRecord::fromJson(Line, Rec))
        Done[Rec.Instruction] = std::move(Rec);
    }
  }

  unsigned Bytecodes = 0;
  unsigned Natives = 0;
  unsigned NewProcessed = 0;
  for (const InstructionSpec &Spec : allInstructions()) {
    if (!Opts.OnlyInstructions.empty() &&
        std::find(Opts.OnlyInstructions.begin(), Opts.OnlyInstructions.end(),
                  Spec.Name) == Opts.OnlyInstructions.end())
      continue;
    if (Spec.Kind == InstructionKind::Bytecode) {
      if (Opts.Harness.MaxBytecodes && Bytecodes >= Opts.Harness.MaxBytecodes)
        continue;
      ++Bytecodes;
    } else {
      if (Opts.Harness.MaxNativeMethods &&
          Natives >= Opts.Harness.MaxNativeMethods)
        continue;
      ++Natives;
    }

    auto It = Done.find(Spec.Name);
    if (It != Done.end()) {
      if (It->second.Quarantined)
        Summary.Quarantined.push_back(Spec.Name);
      Summary.Records.push_back(It->second);
      ++Summary.ResumedInstructions;
      continue;
    }

    if (Opts.StopAfter && NewProcessed >= Opts.StopAfter) {
      Summary.Stopped = true;
      break;
    }

    InstructionRecord Rec = testInstruction(Spec, Summary);
    ++NewProcessed;
    ++Summary.CompletedInstructions;
    if (Rec.Quarantined)
      Summary.Quarantined.push_back(Spec.Name);
    appendLine(Opts.CheckpointPath, Rec.toJson());
    Summary.Records.push_back(std::move(Rec));
  }

  Summary.Rows = aggregateCampaignRows(Summary.Records);
  return Summary;
}
