//===- evalkit/CampaignRunner.cpp - Resilient evaluation campaigns -------------===//

#include "evalkit/CampaignRunner.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <thread>

using namespace igdt;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

const char *instructionKindLabel(InstructionKind Kind) {
  return Kind == InstructionKind::Bytecode ? "bytecode" : "native-method";
}

constexpr CompilerKind AllCompilers[] = {
    CompilerKind::NativeMethod, CompilerKind::SimpleStack,
    CompilerKind::StackToRegister, CompilerKind::RegisterAllocating};

constexpr DefectFamily AllFamilies[] = {
    DefectFamily::MissingInterpreterTypeCheck,
    DefectFamily::MissingCompiledTypeCheck,
    DefectFamily::OptimisationDifference,
    DefectFamily::BehaviouralDifference,
    DefectFamily::MissingFunctionality,
    DefectFamily::SimulationError};

bool parseCompilerKind(const std::string &Name, CompilerKind &Out) {
  for (CompilerKind Kind : AllCompilers)
    if (Name == compilerKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

bool parseDefectFamily(const std::string &Name, DefectFamily &Out) {
  for (DefectFamily Family : AllFamilies)
    if (Name == defectFamilyName(Family)) {
      Out = Family;
      return true;
    }
  return false;
}

} // namespace

std::string CampaignIncident::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("stage", JsonValue::string(Stage))
      .set("error_class", JsonValue::string(ErrorClass))
      .set("error", JsonValue::string(Error))
      .set("attempt", JsonValue::number(Attempt))
      .set("explore_budget", JsonValue::string(ExploreBudget))
      .set("replay_budget", JsonValue::string(ReplayBudget))
      .set("quarantined", JsonValue::boolean(Quarantined));
  return V.dump();
}

std::string InstructionRecord::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("kind", JsonValue::string(instructionKindLabel(Kind)))
      .set("quarantined", JsonValue::boolean(Quarantined))
      .set("attempts", JsonValue::number(Attempts))
      .set("paths", JsonValue::number(Paths))
      .set("curated", JsonValue::number(CuratedPaths))
      .set("unknown_negations", JsonValue::number(UnknownNegations))
      .set("ladder_retries", JsonValue::number(LadderRetries))
      .set("ladder_rescues", JsonValue::number(LadderRescues))
      .set("budget_exhausted", JsonValue::boolean(BudgetExhausted))
      .set("explore_millis", JsonValue::number(ExploreMillis));
  JsonValue Sol = JsonValue::object();
  // Cache hit/miss counters are deliberately absent: they depend on
  // worker scheduling, and checkpoint files must be byte-identical at
  // any Jobs value.
  Sol.set("queries", JsonValue::number(Solver.Queries))
      .set("sat", JsonValue::number(Solver.SatCount))
      .set("unsat", JsonValue::number(Solver.UnsatCount))
      .set("unknown", JsonValue::number(Solver.UnknownCount))
      .set("cases", JsonValue::number(Solver.CasesExplored))
      .set("nodes", JsonValue::number(Solver.NodesExplored))
      .set("budget_stops", JsonValue::number(Solver.BudgetStops));
  V.set("solver", std::move(Sol));
  JsonValue Comps = JsonValue::array();
  for (const CompilerOutcome &C : Compilers) {
    JsonValue O = JsonValue::object();
    O.set("kind", JsonValue::string(compilerKindName(C.Kind)))
        .set("differing", JsonValue::number(C.DifferingPaths))
        .set("budget_skipped", JsonValue::number(C.BudgetSkipped))
        .set("millis", JsonValue::number(C.TestMillis));
    JsonValue Causes = JsonValue::array();
    for (const auto &[Key, Family] : C.Causes) {
      JsonValue Cause = JsonValue::object();
      Cause.set("key", JsonValue::string(Key))
          .set("family", JsonValue::string(defectFamilyName(Family)));
      Causes.push(std::move(Cause));
    }
    O.set("causes", std::move(Causes));
    Comps.push(std::move(O));
  }
  V.set("compilers", std::move(Comps));
  return V.dump();
}

bool InstructionRecord::fromJson(const std::string &Line,
                                 InstructionRecord &Out) {
  auto V = JsonValue::parse(Line);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  Out = InstructionRecord();
  Out.Instruction = V->stringOr("instruction", "");
  if (Out.Instruction.empty())
    return false;
  Out.Kind = V->stringOr("kind", "bytecode") == "native-method"
                 ? InstructionKind::NativeMethod
                 : InstructionKind::Bytecode;
  Out.Quarantined = V->boolOr("quarantined", false);
  Out.Attempts = static_cast<unsigned>(V->numberOr("attempts", 1));
  Out.Paths = static_cast<unsigned>(V->numberOr("paths", 0));
  Out.CuratedPaths = static_cast<unsigned>(V->numberOr("curated", 0));
  Out.UnknownNegations =
      static_cast<unsigned>(V->numberOr("unknown_negations", 0));
  Out.LadderRetries = static_cast<unsigned>(V->numberOr("ladder_retries", 0));
  Out.LadderRescues = static_cast<unsigned>(V->numberOr("ladder_rescues", 0));
  Out.BudgetExhausted = V->boolOr("budget_exhausted", false);
  Out.ExploreMillis = V->numberOr("explore_millis", 0);
  if (const JsonValue *Sol = V->find("solver")) {
    Out.Solver.Queries = static_cast<std::uint64_t>(Sol->numberOr("queries", 0));
    Out.Solver.SatCount = static_cast<std::uint64_t>(Sol->numberOr("sat", 0));
    Out.Solver.UnsatCount =
        static_cast<std::uint64_t>(Sol->numberOr("unsat", 0));
    Out.Solver.UnknownCount =
        static_cast<std::uint64_t>(Sol->numberOr("unknown", 0));
    Out.Solver.CasesExplored =
        static_cast<std::uint64_t>(Sol->numberOr("cases", 0));
    Out.Solver.NodesExplored =
        static_cast<std::uint64_t>(Sol->numberOr("nodes", 0));
    Out.Solver.BudgetStops =
        static_cast<std::uint64_t>(Sol->numberOr("budget_stops", 0));
  }
  if (const JsonValue *Comps = V->find("compilers")) {
    for (const JsonValue &O : Comps->Arr) {
      CompilerOutcome C;
      if (!parseCompilerKind(O.stringOr("kind", ""), C.Kind))
        return false;
      C.DifferingPaths = static_cast<unsigned>(O.numberOr("differing", 0));
      C.BudgetSkipped = static_cast<unsigned>(O.numberOr("budget_skipped", 0));
      C.TestMillis = O.numberOr("millis", 0);
      if (const JsonValue *Causes = O.find("causes")) {
        for (const JsonValue &Cause : Causes->Arr) {
          DefectFamily Family;
          if (!parseDefectFamily(Cause.stringOr("family", ""), Family))
            return false;
          C.Causes.emplace(Cause.stringOr("key", ""), Family);
        }
      }
      Out.Compilers.push_back(std::move(C));
    }
  }
  return true;
}

int CampaignSummary::exitCode() const {
  // Optimisation differences are the one family the paper classifies
  // as "arguably correct in both" — they are structural (the simple
  // compiler never inlines) and present even with every defect seed
  // disabled, so they must not fail a campaign.
  for (const CompilerEvaluation &Row : Rows)
    for (const auto &[Key, Family] : Row.Causes) {
      (void)Key;
      if (Family != DefectFamily::OptimisationDifference)
        return 1;
    }
  return 0;
}

std::vector<CompilerEvaluation>
igdt::aggregateCampaignRows(const std::vector<InstructionRecord> &Records) {
  std::vector<CompilerEvaluation> Rows;
  for (CompilerKind Kind : AllCompilers) {
    CompilerEvaluation Row;
    Row.Kind = Kind;
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    for (const InstructionRecord &Rec : Records) {
      if (Rec.Quarantined || Rec.Kind != Wanted)
        continue;
      ++Row.TestedInstructions;
      Row.InterpreterPaths += Rec.Paths;
      Row.CuratedPaths += Rec.CuratedPaths;
      for (const CompilerOutcome &C : Rec.Compilers) {
        if (C.Kind != Kind)
          continue;
        Row.DifferingPaths += C.DifferingPaths;
        for (const auto &[Key, Family] : C.Causes)
          Row.Causes.emplace(Key, Family);
        Row.TestMillisPerInstruction.push_back(C.TestMillis);
      }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

CampaignRunner::CampaignRunner(CampaignOptions Options)
    : Opts(std::move(Options)) {}

void CampaignRunner::appendLine(const std::string &Path,
                                const std::string &Line) const {
  if (Path.empty())
    return;
  std::lock_guard<std::mutex> Lock(IoMutex);
  std::ofstream Out(Path, std::ios::app);
  Out << Line << '\n';
}

InstructionRecord
CampaignRunner::attemptInstruction(const InstructionSpec &Spec,
                                   unsigned Attempt, Budget &ExploreBud,
                                   Budget &ReplayBud, TraceSink *Trace,
                                   ReplayArena &Arena) const {
  InstructionRecord Rec;
  Rec.Instruction = Spec.Name;
  Rec.Kind = Spec.Kind;
  Rec.Attempts = Attempt;

  ExplorerOptions EOpts = Opts.Harness.Explorer;
  EOpts.ExternalBudget = &ExploreBud;
  EOpts.SharedUnsat = &SolverIndex;
  EOpts.Trace = Trace;
  if (Opts.Faults.armedFor(HarnessFaultKind::SolverHang, Spec.Name, Attempt))
    EOpts.Solver.InjectSolverHang = true;
  if (Opts.Faults.armedFor(HarnessFaultKind::HeapCorruption, Spec.Name,
                           Attempt))
    EOpts.InjectHeapCorruption = true;

  auto ExploreStart = std::chrono::steady_clock::now();
  ConcolicExplorer Explorer(Opts.Harness.VM, EOpts);
  ExplorationResult R = Explorer.explore(Spec);
  Rec.ExploreMillis = Opts.RecordTimings ? millisSince(ExploreStart) : 0;
  Rec.Paths = static_cast<unsigned>(R.Paths.size());
  Rec.CuratedPaths = R.curatedCount();
  Rec.UnknownNegations = R.UnknownNegations;
  Rec.LadderRetries = R.LadderRetries;
  Rec.LadderRescues = R.LadderRescues;
  Rec.BudgetExhausted = R.BudgetExhausted;
  Rec.Solver = R.Solver;

  // One compile-once cache per attempt, shared by every compiler kind
  // and both back-ends (keys carry both); worker-local by construction.
  JitCodeCache CodeCache;
  for (CompilerKind Kind : AllCompilers) {
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    if (Spec.Kind != Wanted)
      continue;

    auto MakeConfig = [&](bool Arm) {
      DiffTestConfig Cfg;
      Cfg.Kind = Kind;
      Cfg.UseArmBackend = Arm;
      Cfg.Cogit = Opts.Harness.Cogit;
      Cfg.Sim = Opts.Harness.Sim;
      Cfg.Trace = Trace;
      if (Opts.Harness.SeedSimulationErrors && Arm)
        Cfg.Sim.MissingFPAccessors.insert(std::uint8_t(FReg::F5));
      Cfg.ReplayBudget = &ReplayBud;
      Cfg.JitStats = &Rec.Jit;
      Cfg.SimCounters = &Rec.Sim;
      Cfg.Replay = &Rec.Replay;
      if (Opts.Harness.EnableCodeCache)
        Cfg.CodeCache = &CodeCache;
      if (Opts.Harness.EnableReplayArena)
        Cfg.Arena = &Arena;
      if (Opts.Faults.armedFor(HarnessFaultKind::FrontEndThrow, Spec.Name,
                               Attempt))
        Cfg.Cogit.InjectFrontEndThrow = true;
      if (Opts.Faults.armedFor(HarnessFaultKind::SimFuelExhaustion, Spec.Name,
                               Attempt)) {
        Cfg.Sim.Fuel = 1;
        Cfg.FuelExhaustionIsHarnessFault = true;
      }
      return Cfg;
    };

    CompilerOutcome Outcome;
    Outcome.Kind = Kind;
    DifferentialTester X64(MakeConfig(/*Arm=*/false));
    DifferentialTester Arm(MakeConfig(/*Arm=*/true));

    auto Start = std::chrono::steady_clock::now();
    for (std::size_t I = 0; I < R.Paths.size(); ++I) {
      PathTestOutcome A = X64.testPath(R, I);
      PathTestOutcome B = Arm.testPath(R, I);
      if (A.Status == PathTestStatus::BudgetSkipped ||
          B.Status == PathTestStatus::BudgetSkipped)
        ++Outcome.BudgetSkipped;
      bool Differs = A.Status == PathTestStatus::Difference ||
                     B.Status == PathTestStatus::Difference;
      if (!Differs)
        continue;
      ++Outcome.DifferingPaths;
      if (A.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(A.CauseKey, A.Family);
      if (B.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(B.CauseKey, B.Family);
    }
    Outcome.TestMillis = Opts.RecordTimings ? millisSince(Start) : 0;
    Rec.Compilers.push_back(std::move(Outcome));
  }
  return Rec;
}

InstructionRecord CampaignRunner::testInstruction(
    const InstructionSpec &Spec, std::vector<CampaignIncident> &Incidents,
    TraceSink *Trace, ReplayArena &Arena) const {
  unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  std::vector<CampaignIncident> Local;
  InstructionRecord Rec;
  bool Succeeded = false;

  for (unsigned Attempt = 1; Attempt <= MaxAttempts && !Succeeded; ++Attempt) {
    // Fresh budgets AND a fresh exploration heap per attempt: a fault
    // must not leak state into the retry. The replay arena is reused,
    // but its reset contract makes the next acquire observably fresh
    // (poison included), so the guarantee carries over.
    Budget ExploreBud(Opts.ExploreBudget);
    Budget ReplayBud(Opts.ReplayBudget);
    // Events of a failed attempt stay in the buffer: fault injection is
    // deterministic, so the partial prefix is too, and the attempt
    // stamp tells it apart from the retry.
    TraceScope Scope(Trace, Spec.Name, Attempt, Opts.RecordTimings);
    try {
      Rec = attemptInstruction(Spec, Attempt, ExploreBud, ReplayBud,
                               Trace ? &Scope : nullptr, Arena);
      Succeeded = true;
    } catch (const HarnessFault &F) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = F.stage();
      I.ErrorClass = "harness-fault";
      I.Error = F.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    } catch (const std::exception &E) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = "explore";
      I.ErrorClass = "exception";
      I.Error = E.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    }
  }

  if (!Succeeded) {
    Rec = InstructionRecord();
    Rec.Instruction = Spec.Name;
    Rec.Kind = Spec.Kind;
    Rec.Attempts = MaxAttempts;
    Rec.Quarantined = true;
  }

  for (CampaignIncident &I : Local) {
    I.Quarantined = Rec.Quarantined;
    Incidents.push_back(std::move(I));
  }
  return Rec;
}

CampaignSummary CampaignRunner::run() {
  CampaignSummary Summary;

  // Resume: later checkpoint lines win, so a record rewritten after a
  // retry supersedes the earlier one.
  std::map<std::string, InstructionRecord> Done;
  if (!Opts.CheckpointPath.empty()) {
    std::ifstream In(Opts.CheckpointPath);
    std::string Line;
    while (std::getline(In, Line)) {
      InstructionRecord Rec;
      if (InstructionRecord::fromJson(Line, Rec))
        Done[Rec.Instruction] = std::move(Rec);
    }
  }

  // Phase 1: plan the whole worklist up-front, in catalog order,
  // reproducing the serial loop's quota counting (Max* limits count
  // resumed instructions too) and StopAfter truncation (which drops
  // everything after the limit, resumed records included). Sharding
  // then cannot change *what* runs, only *where*.
  struct WorkItem {
    const InstructionSpec *Spec = nullptr;
    const InstructionRecord *Resumed = nullptr;
  };
  std::vector<WorkItem> Work;
  unsigned Bytecodes = 0;
  unsigned Natives = 0;
  unsigned NewPlanned = 0;
  for (const InstructionSpec &Spec : allInstructions()) {
    if (!Opts.OnlyInstructions.empty() &&
        std::find(Opts.OnlyInstructions.begin(), Opts.OnlyInstructions.end(),
                  Spec.Name) == Opts.OnlyInstructions.end())
      continue;
    if (Spec.Kind == InstructionKind::Bytecode) {
      if (Opts.Harness.MaxBytecodes && Bytecodes >= Opts.Harness.MaxBytecodes)
        continue;
      ++Bytecodes;
    } else {
      if (Opts.Harness.MaxNativeMethods &&
          Natives >= Opts.Harness.MaxNativeMethods)
        continue;
      ++Natives;
    }

    auto It = Done.find(Spec.Name);
    if (It != Done.end()) {
      Work.push_back({&Spec, &It->second});
      continue;
    }
    if (Opts.StopAfter && NewPlanned >= Opts.StopAfter) {
      Summary.Stopped = true;
      break;
    }
    Work.push_back({&Spec, nullptr});
    ++NewPlanned;
  }

  // Phase 2: execute. Workers claim unprocessed items from an atomic
  // cursor and fill per-item slots; every exploration runs on a
  // worker-local heap/arena/solver (see ConcolicExplorer.h), so
  // workers share nothing mutable but the slot handoff below.
  struct Slot {
    InstructionRecord Rec;
    std::vector<CampaignIncident> Incidents;
    std::vector<TraceEvent> Events;
    bool Skipped = false; // wall clock expired before this item ran
    bool Ready = false;
  };
  std::vector<Slot> Slots(Work.size());

  const bool Observing = !Opts.TracePath.empty() || Opts.ExtraTraceSink ||
                         Opts.CollectMetrics;

  unsigned Jobs = Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
  if (Jobs == 0)
    Jobs = 1;

  const bool HasDeadline = Opts.CampaignWallMillis > 0;
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              HasDeadline ? Opts.CampaignWallMillis : 0));
  // Stateless check on purpose: Budget mutates state in expired() and
  // is not safe to share across threads.
  auto WallExpired = [&] {
    return HasDeadline && std::chrono::steady_clock::now() >= Deadline;
  };

  std::atomic<std::size_t> Next{0};
  std::atomic<bool> Cancelled{false};
  std::mutex SlotMutex;
  std::condition_variable SlotReady;

  auto RunOne = [&](std::size_t I, ReplayArena &Arena) {
    Slot S;
    if (Cancelled.load(std::memory_order_relaxed) || WallExpired()) {
      S.Skipped = true;
    } else {
      // Per-worker buffering: events never cross threads until the
      // merge loop drains the slot in catalog order.
      TraceBuffer Buffer;
      S.Rec = testInstruction(*Work[I].Spec, S.Incidents,
                              Observing ? &Buffer : nullptr, Arena);
      S.Events = Buffer.take();
    }
    {
      std::lock_guard<std::mutex> Lock(SlotMutex);
      Slots[I] = std::move(S);
      Slots[I].Ready = true;
    }
    SlotReady.notify_all();
  };

  auto NextUnresumed = [&]() -> std::size_t {
    for (;;) {
      std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Work.size())
        return Work.size();
      if (!Work[I].Resumed)
        return I;
    }
  };

  std::vector<std::thread> Pool;
  if (Jobs > 1) {
    std::size_t Workers = std::min<std::size_t>(Jobs, Work.size());
    Pool.reserve(Workers);
    for (std::size_t W = 0; W < Workers; ++W)
      Pool.emplace_back([&] {
        // One replay arena per worker thread, like the per-attempt code
        // cache: strictly worker-local mutable state.
        ReplayArena Arena;
        for (std::size_t I = NextUnresumed(); I < Work.size();
             I = NextUnresumed())
          RunOne(I, Arena);
      });
  }

  // Phase 3: merge in catalog order on this thread. All file appends
  // happen here, in exactly the serial order; workers only hand over
  // finished slots. The trace follows the checkpoint discipline: one
  // writer, catalog order, so the JSONL bytes are Jobs-independent.
  std::ofstream TraceOut;
  std::unique_ptr<JsonlTraceSink> TraceWriter;
  if (!Opts.TracePath.empty()) {
    TraceOut.open(Opts.TracePath, std::ios::trunc);
    TraceWriter = std::make_unique<JsonlTraceSink>(TraceOut);
  }
  MetricsSink EventMetrics(Summary.Metrics);
  auto Publish = [&](TraceEvent Event) {
    // SimRun diagnostics (Aux = dispatch engine, Extra = predecode
    // cache hit) describe how the harness replayed, not what the code
    // under test did, and they change with the predecode/arena toggles.
    // Blank them here so campaign trace files and metrics stay
    // byte-identical across configurations; Session-level traces keep
    // the fields.
    if (Event.Kind == TraceEventKind::SimRun) {
      Event.Aux.clear();
      Event.Extra = 0;
    }
    if (Opts.ExtraTraceSink)
      Opts.ExtraTraceSink->emit(Event);
    if (Observing)
      EventMetrics.emit(Event);
    if (TraceWriter)
      TraceWriter->emit(std::move(Event));
  };

  // Serial path: the merge thread doubles as the single worker and
  // keeps one arena for the whole campaign.
  ReplayArena SerialArena;
  for (std::size_t I = 0; I < Work.size(); ++I) {
    if (const InstructionRecord *Resumed = Work[I].Resumed) {
      if (Resumed->Quarantined)
        Summary.Quarantined.push_back(Resumed->Instruction);
      Summary.Records.push_back(*Resumed);
      ++Summary.ResumedInstructions;
      continue;
    }

    if (Pool.empty()) {
      RunOne(I, SerialArena);
    } else {
      std::unique_lock<std::mutex> Lock(SlotMutex);
      SlotReady.wait(Lock, [&] { return Slots[I].Ready; });
    }
    Slot &S = Slots[I];
    if (S.Skipped) {
      // The shared wall clock ran out: stop merging, drop the tail
      // (mirroring the serial StopAfter break) and let the workers
      // wind down.
      Summary.Stopped = true;
      Cancelled.store(true, std::memory_order_relaxed);
      break;
    }
    // Publish the slot's event stream before its containment summary
    // events so a reader sees attempt events, then incidents, then the
    // quarantine verdict — the order the serial run experienced them.
    for (TraceEvent &Event : S.Events)
      Publish(std::move(Event));
    for (CampaignIncident &Inc : S.Incidents) {
      if (Observing) {
        TraceEvent Event;
        Event.Kind = TraceEventKind::Containment;
        Event.Instruction = Inc.Instruction;
        Event.Attempt = Inc.Attempt;
        Event.Detail = Inc.Stage;
        Event.Aux = Inc.ErrorClass;
        Event.Value = Inc.Attempt;
        Publish(std::move(Event));
      }
      appendLine(Opts.IncidentLogPath, Inc.toJson());
      Summary.Incidents.push_back(std::move(Inc));
    }
    if (S.Rec.Quarantined && Observing) {
      TraceEvent Event;
      Event.Kind = TraceEventKind::Quarantine;
      Event.Instruction = S.Rec.Instruction;
      Event.Attempt = S.Rec.Attempts;
      Event.Value = S.Rec.Attempts;
      Publish(std::move(Event));
    }
    ++Summary.CompletedInstructions;
    if (S.Rec.Quarantined)
      Summary.Quarantined.push_back(S.Rec.Instruction);
    appendLine(Opts.CheckpointPath, S.Rec.toJson());
    Summary.Records.push_back(std::move(S.Rec));
  }

  Cancelled.store(true, std::memory_order_relaxed);
  for (std::thread &T : Pool)
    T.join();

  // Deterministic reduction: catalog order, independent of which
  // worker produced which record.
  for (const InstructionRecord &Rec : Summary.Records) {
    Summary.Solver.add(Rec.Solver);
    Summary.Jit.add(Rec.Jit);
    Summary.Sim.add(Rec.Sim);
    Summary.Replay.add(Rec.Replay);
  }
  Summary.Rows = aggregateCampaignRows(Summary.Records);
  foldSolverStats(Summary.Metrics, Summary.Solver);
  foldJitStats(Summary.Metrics, Summary.Jit);
  foldSimStats(Summary.Metrics, Summary.Sim);
  foldReplayStats(Summary.Metrics, Summary.Replay);
  Summary.Metrics.add("campaign.instructions", Summary.CompletedInstructions);
  Summary.Metrics.add("campaign.resumed", Summary.ResumedInstructions);
  Summary.Metrics.add("campaign.quarantined", Summary.Quarantined.size());
  Summary.Metrics.add("campaign.incidents", Summary.Incidents.size());
  return Summary;
}

ProfileReport igdt::buildCampaignProfile(const CampaignSummary &Summary,
                                         unsigned TopN) {
  ProfileReport Report;

  // Stage wall times come straight from the records (not the metrics
  // histograms, which only fill when tracing is on): explore, then one
  // replay stage per compiler in the fixed AllCompilers order.
  ProfileReport::Stage Explore;
  Explore.Name = "explore";
  std::map<std::string, double> PerInstruction;
  for (const InstructionRecord &Rec : Summary.Records) {
    if (Rec.Quarantined)
      continue;
    Explore.TotalMillis += Rec.ExploreMillis;
    Explore.Count += 1;
    PerInstruction[Rec.Instruction] += Rec.ExploreMillis;
  }
  Report.Stages.push_back(Explore);
  for (CompilerKind Kind : AllCompilers) {
    ProfileReport::Stage Test;
    Test.Name = formatString("test.%s", compilerKindName(Kind));
    for (const InstructionRecord &Rec : Summary.Records)
      for (const CompilerOutcome &Out : Rec.Compilers)
        if (Out.Kind == Kind) {
          Test.TotalMillis += Out.TestMillis;
          Test.Count += 1;
          PerInstruction[Rec.Instruction] += Out.TestMillis;
        }
    Report.Stages.push_back(Test);
  }

  // Top-N most expensive instructions, name-tie-broken so the report is
  // stable when timings are off (everything ties at zero).
  std::vector<ProfileReport::Item> Costs;
  Costs.reserve(PerInstruction.size());
  for (const auto &Entry : PerInstruction)
    Costs.push_back({Entry.first, Entry.second});
  std::sort(Costs.begin(), Costs.end(),
            [](const ProfileReport::Item &A, const ProfileReport::Item &B) {
              if (A.Millis != B.Millis)
                return A.Millis > B.Millis;
              return A.Name < B.Name;
            });
  if (Costs.size() > TopN)
    Costs.resize(TopN);
  Report.TopInstructions = std::move(Costs);

  Report.SolverQueries = Summary.Solver.Queries;
  Report.CacheHits = Summary.Solver.CacheHits;
  Report.CacheMisses = Summary.Solver.CacheMisses;
  Report.CacheUnsatSubsumed = Summary.Solver.CacheUnsatSubsumed;
  Report.ModelCacheHits = Summary.Solver.ModelCacheHits;
  Report.PrefixReuseSolves = Summary.Solver.PrefixReuseSolves;
  Report.FullSolves = Summary.Solver.FullSolves;
  Report.JitCompiles = Summary.Jit.Compiles;
  Report.JitCodeCacheHits = Summary.Jit.CodeCacheHits;
  Report.Metrics = Summary.Metrics;
  return Report;
}
