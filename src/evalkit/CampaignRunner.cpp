//===- evalkit/CampaignRunner.cpp - Resilient evaluation campaigns -------------===//

#include "evalkit/CampaignRunner.h"

#include "evalkit/ProcessPool.h"
#include "evalkit/VerdictStore.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <memory>
#include <thread>

using namespace igdt;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

const char *instructionKindLabel(InstructionKind Kind) {
  return Kind == InstructionKind::Bytecode ? "bytecode" : "native-method";
}

constexpr CompilerKind AllCompilers[] = {
    CompilerKind::NativeMethod, CompilerKind::SimpleStack,
    CompilerKind::StackToRegister, CompilerKind::RegisterAllocating};

constexpr DefectFamily AllFamilies[] = {
    DefectFamily::MissingInterpreterTypeCheck,
    DefectFamily::MissingCompiledTypeCheck,
    DefectFamily::OptimisationDifference,
    DefectFamily::BehaviouralDifference,
    DefectFamily::MissingFunctionality,
    DefectFamily::SimulationError};

bool parseCompilerKind(const std::string &Name, CompilerKind &Out) {
  for (CompilerKind Kind : AllCompilers)
    if (Name == compilerKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

bool parseDefectFamily(const std::string &Name, DefectFamily &Out) {
  for (DefectFamily Family : AllFamilies)
    if (Name == defectFamilyName(Family)) {
      Out = Family;
      return true;
    }
  return false;
}

} // namespace

std::string CampaignIncident::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("stage", JsonValue::string(Stage))
      .set("error_class", JsonValue::string(ErrorClass))
      .set("error", JsonValue::string(Error))
      .set("attempt", JsonValue::number(Attempt))
      .set("explore_budget", JsonValue::string(ExploreBudget))
      .set("replay_budget", JsonValue::string(ReplayBudget))
      .set("quarantined", JsonValue::boolean(Quarantined));
  // Worker/Pid are deliberately absent: they are in-memory diagnostics
  // the merge loop blanks before any incident is recorded, so the
  // JSONL schema stays identical across topologies.
  return V.dump();
}

bool CampaignIncident::fromJson(const std::string &Line,
                                CampaignIncident &Out) {
  auto V = JsonValue::parse(Line);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  Out = CampaignIncident();
  Out.Instruction = V->stringOr("instruction", "");
  if (Out.Instruction.empty())
    return false;
  Out.Stage = V->stringOr("stage", "");
  Out.ErrorClass = V->stringOr("error_class", "");
  Out.Error = V->stringOr("error", "");
  Out.Attempt = static_cast<unsigned>(V->numberOr("attempt", 1));
  Out.ExploreBudget = V->stringOr("explore_budget", "");
  Out.ReplayBudget = V->stringOr("replay_budget", "");
  Out.Quarantined = V->boolOr("quarantined", false);
  return true;
}

namespace {

/// Replaces the spent-milliseconds number in a Budget::describe()
/// string ("wall=12.3ms/unlimited" -> "wall=0.0ms/unlimited") so
/// incident files are byte-comparable when timings are off. The limit
/// side is configuration, hence deterministic, and is kept.
std::string scrubBudgetWall(std::string Text) {
  std::size_t Pos = Text.find("wall=");
  if (Pos == std::string::npos)
    return Text;
  std::size_t Start = Pos + 5;
  std::size_t End = Start;
  while (End < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[End])) ||
          Text[End] == '.'))
    ++End;
  if (End > Start)
    Text.replace(Start, End - Start, "0.0");
  return Text;
}

/// \name Worker result payload
/// What one worker process ships back per instruction: the checkpoint
/// record (as its canonical JSONL line, so coordinator-side re-emission
/// is byte-exact), the in-memory-only stats that never enter toJson()
/// (solver cache diagnostics, jit/sim/replay counters), the attempt's
/// incidents and its buffered trace events.
/// @{
JsonValue countersToJson(std::initializer_list<
                         std::pair<const char *, std::uint64_t>>
                             Fields) {
  JsonValue V = JsonValue::object();
  for (const auto &[Name, Value] : Fields)
    V.set(Name, JsonValue::number(static_cast<double>(Value)));
  return V;
}

std::uint64_t counterOr(const JsonValue *V, const char *Name) {
  return V ? static_cast<std::uint64_t>(V->numberOr(Name, 0)) : 0;
}

std::string encodeWorkerPayload(const InstructionRecord &Rec,
                                const std::vector<CampaignIncident> &Incidents,
                                const std::vector<TraceEvent> &Events) {
  JsonValue V = JsonValue::object();
  V.set("record", JsonValue::string(Rec.toJson()));
  V.set("solver_diag",
        countersToJson({{"cache_hits", Rec.Solver.CacheHits},
                        {"cache_misses", Rec.Solver.CacheMisses},
                        {"unsat_subsumed", Rec.Solver.CacheUnsatSubsumed},
                        {"model_hits", Rec.Solver.ModelCacheHits},
                        {"prefix_reuse", Rec.Solver.PrefixReuseSolves},
                        {"full_solves", Rec.Solver.FullSolves},
                        {"cap_hits", Rec.Solver.CapHits}}));
  V.set("jit", countersToJson({{"compiles", Rec.Jit.Compiles},
                               {"code_cache_hits", Rec.Jit.CodeCacheHits}}));
  V.set("sim", countersToJson({{"runs", Rec.Sim.Runs},
                               {"predecoded", Rec.Sim.PredecodedRuns},
                               {"reference", Rec.Sim.ReferenceRuns},
                               {"builds", Rec.Sim.PredecodeBuilds},
                               {"hits", Rec.Sim.PredecodeHits}}));
  V.set("replay",
        countersToJson({{"acquires", Rec.Replay.HeapAcquires},
                        {"resets", Rec.Replay.HeapResets},
                        {"bytes_reset", Rec.Replay.HeapBytesReset},
                        {"fresh", Rec.Replay.HeapFreshBuilds},
                        {"bytes_rebuilt", Rec.Replay.HeapBytesRebuilt},
                        {"undo", Rec.Replay.UndoStoresReplayed},
                        {"stack_bytes", Rec.Replay.StackBytesReset}}));
  JsonValue Inc = JsonValue::array();
  for (const CampaignIncident &I : Incidents)
    Inc.push(JsonValue::string(I.toJson()));
  V.set("incidents", std::move(Inc));
  JsonValue Ev = JsonValue::array();
  for (const TraceEvent &E : Events)
    Ev.push(JsonValue::string(E.toJson()));
  V.set("events", std::move(Ev));
  return V.dump();
}

bool decodeWorkerPayload(const std::string &Payload, InstructionRecord &Rec,
                         std::vector<CampaignIncident> &Incidents,
                         std::vector<TraceEvent> &Events) {
  auto V = JsonValue::parse(Payload);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  if (!InstructionRecord::fromJson(V->stringOr("record", ""), Rec))
    return false;
  const JsonValue *Diag = V->find("solver_diag");
  Rec.Solver.CacheHits = counterOr(Diag, "cache_hits");
  Rec.Solver.CacheMisses = counterOr(Diag, "cache_misses");
  Rec.Solver.CacheUnsatSubsumed = counterOr(Diag, "unsat_subsumed");
  Rec.Solver.ModelCacheHits = counterOr(Diag, "model_hits");
  Rec.Solver.PrefixReuseSolves = counterOr(Diag, "prefix_reuse");
  Rec.Solver.FullSolves = counterOr(Diag, "full_solves");
  Rec.Solver.CapHits = counterOr(Diag, "cap_hits");
  const JsonValue *Jit = V->find("jit");
  Rec.Jit.Compiles = counterOr(Jit, "compiles");
  Rec.Jit.CodeCacheHits = counterOr(Jit, "code_cache_hits");
  const JsonValue *Sim = V->find("sim");
  Rec.Sim.Runs = counterOr(Sim, "runs");
  Rec.Sim.PredecodedRuns = counterOr(Sim, "predecoded");
  Rec.Sim.ReferenceRuns = counterOr(Sim, "reference");
  Rec.Sim.PredecodeBuilds = counterOr(Sim, "builds");
  Rec.Sim.PredecodeHits = counterOr(Sim, "hits");
  const JsonValue *Replay = V->find("replay");
  Rec.Replay.HeapAcquires = counterOr(Replay, "acquires");
  Rec.Replay.HeapResets = counterOr(Replay, "resets");
  Rec.Replay.HeapBytesReset = counterOr(Replay, "bytes_reset");
  Rec.Replay.HeapFreshBuilds = counterOr(Replay, "fresh");
  Rec.Replay.HeapBytesRebuilt = counterOr(Replay, "bytes_rebuilt");
  Rec.Replay.UndoStoresReplayed = counterOr(Replay, "undo");
  Rec.Replay.StackBytesReset = counterOr(Replay, "stack_bytes");
  if (const JsonValue *Inc = V->find("incidents"))
    for (const JsonValue &Line : Inc->Arr) {
      CampaignIncident I;
      if (!CampaignIncident::fromJson(Line.Str, I))
        return false;
      Incidents.push_back(std::move(I));
    }
  if (const JsonValue *Ev = V->find("events"))
    for (const JsonValue &Line : Ev->Arr) {
      TraceEvent E;
      if (!TraceEvent::fromJson(Line.Str, E))
        return false;
      Events.push_back(std::move(E));
    }
  return true;
}
/// @}

/// Derives the persisted yield statistics from a finished record's
/// deterministic counters (ScheduleOptions::PersistYield). Everything
/// except PathsPerSec is a pure function of checkpoint-stable fields,
/// so stamping never perturbs byte-identity across topologies — and
/// PathsPerSec is exactly zero whenever timings are off.
void stampYield(InstructionRecord &Rec) {
  Rec.HasYield = true;
  Rec.Yield.PathsPerKiloUnit =
      1000.0 * Rec.Paths /
      double(std::max<std::uint64_t>(1, Rec.ExploreUnits));
  Rec.Yield.PathsPerSec =
      Rec.ExploreMillis > 0 ? Rec.Paths * 1000.0 / Rec.ExploreMillis : 0;
  unsigned Differing = 0;
  for (const CompilerOutcome &C : Rec.Compilers)
    Differing += C.DifferingPaths;
  Rec.Yield.DivergenceRate = double(Differing) / std::max(1u, Rec.Paths);
  Rec.Yield.UnknownRate =
      Rec.Solver.Queries
          ? double(Rec.Solver.UnknownCount) / double(Rec.Solver.Queries)
          : 0;
}

} // namespace

std::string InstructionRecord::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("instruction", JsonValue::string(Instruction))
      .set("kind", JsonValue::string(instructionKindLabel(Kind)))
      .set("quarantined", JsonValue::boolean(Quarantined))
      .set("attempts", JsonValue::number(Attempts))
      .set("paths", JsonValue::number(Paths))
      .set("curated", JsonValue::number(CuratedPaths))
      .set("unknown_negations", JsonValue::number(UnknownNegations))
      .set("ladder_retries", JsonValue::number(LadderRetries))
      .set("ladder_rescues", JsonValue::number(LadderRescues))
      .set("budget_exhausted", JsonValue::boolean(BudgetExhausted))
      .set("frontier_exhausted", JsonValue::boolean(FrontierExhausted))
      .set("explore_units", JsonValue::number(double(ExploreUnits)))
      .set("explore_millis", JsonValue::number(ExploreMillis));
  JsonValue Sol = JsonValue::object();
  // Cache hit/miss counters are deliberately absent: they depend on
  // worker scheduling, and checkpoint files must be byte-identical at
  // any Jobs value.
  Sol.set("queries", JsonValue::number(Solver.Queries))
      .set("sat", JsonValue::number(Solver.SatCount))
      .set("unsat", JsonValue::number(Solver.UnsatCount))
      .set("unknown", JsonValue::number(Solver.UnknownCount))
      .set("cases", JsonValue::number(Solver.CasesExplored))
      .set("nodes", JsonValue::number(Solver.NodesExplored))
      .set("budget_stops", JsonValue::number(Solver.BudgetStops));
  V.set("solver", std::move(Sol));
  if (HasYield) {
    JsonValue Y = JsonValue::object();
    Y.set("paths_per_kunit", JsonValue::number(Yield.PathsPerKiloUnit))
        .set("paths_per_sec", JsonValue::number(Yield.PathsPerSec))
        .set("divergence_rate", JsonValue::number(Yield.DivergenceRate))
        .set("unknown_rate", JsonValue::number(Yield.UnknownRate));
    V.set("yield", std::move(Y));
  }
  JsonValue Comps = JsonValue::array();
  for (const CompilerOutcome &C : Compilers) {
    JsonValue O = JsonValue::object();
    O.set("kind", JsonValue::string(compilerKindName(C.Kind)))
        .set("differing", JsonValue::number(C.DifferingPaths))
        .set("budget_skipped", JsonValue::number(C.BudgetSkipped))
        .set("millis", JsonValue::number(C.TestMillis));
    JsonValue Causes = JsonValue::array();
    for (const auto &[Key, Family] : C.Causes) {
      JsonValue Cause = JsonValue::object();
      Cause.set("key", JsonValue::string(Key))
          .set("family", JsonValue::string(defectFamilyName(Family)));
      Causes.push(std::move(Cause));
    }
    O.set("causes", std::move(Causes));
    Comps.push(std::move(O));
  }
  V.set("compilers", std::move(Comps));
  return V.dump();
}

bool InstructionRecord::fromJson(const std::string &Line,
                                 InstructionRecord &Out) {
  auto V = JsonValue::parse(Line);
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  Out = InstructionRecord();
  Out.Instruction = V->stringOr("instruction", "");
  if (Out.Instruction.empty())
    return false;
  Out.Kind = V->stringOr("kind", "bytecode") == "native-method"
                 ? InstructionKind::NativeMethod
                 : InstructionKind::Bytecode;
  Out.Quarantined = V->boolOr("quarantined", false);
  Out.Attempts = static_cast<unsigned>(V->numberOr("attempts", 1));
  Out.Paths = static_cast<unsigned>(V->numberOr("paths", 0));
  Out.CuratedPaths = static_cast<unsigned>(V->numberOr("curated", 0));
  Out.UnknownNegations =
      static_cast<unsigned>(V->numberOr("unknown_negations", 0));
  Out.LadderRetries = static_cast<unsigned>(V->numberOr("ladder_retries", 0));
  Out.LadderRescues = static_cast<unsigned>(V->numberOr("ladder_rescues", 0));
  Out.BudgetExhausted = V->boolOr("budget_exhausted", false);
  // Absent in pre-scheduler checkpoints; the defaults below keep those
  // loading (satellite contract: old schemas resume fine).
  Out.FrontierExhausted = V->boolOr("frontier_exhausted", false);
  Out.ExploreUnits =
      static_cast<std::uint64_t>(V->numberOr("explore_units", 0));
  Out.ExploreMillis = V->numberOr("explore_millis", 0);
  if (const JsonValue *Sol = V->find("solver")) {
    Out.Solver.Queries = static_cast<std::uint64_t>(Sol->numberOr("queries", 0));
    Out.Solver.SatCount = static_cast<std::uint64_t>(Sol->numberOr("sat", 0));
    Out.Solver.UnsatCount =
        static_cast<std::uint64_t>(Sol->numberOr("unsat", 0));
    Out.Solver.UnknownCount =
        static_cast<std::uint64_t>(Sol->numberOr("unknown", 0));
    Out.Solver.CasesExplored =
        static_cast<std::uint64_t>(Sol->numberOr("cases", 0));
    Out.Solver.NodesExplored =
        static_cast<std::uint64_t>(Sol->numberOr("nodes", 0));
    Out.Solver.BudgetStops =
        static_cast<std::uint64_t>(Sol->numberOr("budget_stops", 0));
  }
  if (const JsonValue *Y = V->find("yield")) {
    Out.HasYield = true;
    Out.Yield.PathsPerKiloUnit = Y->numberOr("paths_per_kunit", 0);
    Out.Yield.PathsPerSec = Y->numberOr("paths_per_sec", 0);
    Out.Yield.DivergenceRate = Y->numberOr("divergence_rate", 0);
    Out.Yield.UnknownRate = Y->numberOr("unknown_rate", 0);
  }
  if (const JsonValue *Comps = V->find("compilers")) {
    for (const JsonValue &O : Comps->Arr) {
      CompilerOutcome C;
      if (!parseCompilerKind(O.stringOr("kind", ""), C.Kind))
        return false;
      C.DifferingPaths = static_cast<unsigned>(O.numberOr("differing", 0));
      C.BudgetSkipped = static_cast<unsigned>(O.numberOr("budget_skipped", 0));
      C.TestMillis = O.numberOr("millis", 0);
      if (const JsonValue *Causes = O.find("causes")) {
        for (const JsonValue &Cause : Causes->Arr) {
          DefectFamily Family;
          if (!parseDefectFamily(Cause.stringOr("family", ""), Family))
            return false;
          C.Causes.emplace(Cause.stringOr("key", ""), Family);
        }
      }
      Out.Compilers.push_back(std::move(C));
    }
  }
  return true;
}

int CampaignSummary::exitCode() const {
  // Optimisation differences are the one family the paper classifies
  // as "arguably correct in both" — they are structural (the simple
  // compiler never inlines) and present even with every defect seed
  // disabled, so they must not fail a campaign.
  for (const CompilerEvaluation &Row : Rows)
    for (const auto &[Key, Family] : Row.Causes) {
      (void)Key;
      if (Family != DefectFamily::OptimisationDifference)
        return 1;
    }
  return 0;
}

std::vector<CompilerEvaluation>
igdt::aggregateCampaignRows(const std::vector<InstructionRecord> &Records) {
  std::vector<CompilerEvaluation> Rows;
  for (CompilerKind Kind : AllCompilers) {
    CompilerEvaluation Row;
    Row.Kind = Kind;
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    for (const InstructionRecord &Rec : Records) {
      if (Rec.Quarantined || Rec.Kind != Wanted)
        continue;
      ++Row.TestedInstructions;
      Row.InterpreterPaths += Rec.Paths;
      Row.CuratedPaths += Rec.CuratedPaths;
      for (const CompilerOutcome &C : Rec.Compilers) {
        if (C.Kind != Kind)
          continue;
        Row.DifferingPaths += C.DifferingPaths;
        for (const auto &[Key, Family] : C.Causes)
          Row.Causes.emplace(Key, Family);
        Row.TestMillisPerInstruction.push_back(C.TestMillis);
      }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

CampaignRunner::CampaignRunner(CampaignOptions Options)
    : Opts(std::move(Options)) {}

void CampaignRunner::appendLine(const std::string &Path,
                                const std::string &Line) const {
  if (Path.empty())
    return;
  std::lock_guard<std::mutex> Lock(IoMutex);
  std::ofstream Out(Path, std::ios::app);
  Out << Line << '\n';
}

InstructionRecord
CampaignRunner::attemptInstruction(const InstructionSpec &Spec,
                                   unsigned Attempt, Budget &ExploreBud,
                                   Budget &ReplayBud, TraceSink *Trace,
                                   ReplayArena &Arena,
                                   unsigned TierDistance) const {
  InstructionRecord Rec;
  Rec.Instruction = Spec.Name;
  Rec.Kind = Spec.Kind;
  Rec.Attempts = Attempt;

  ExplorerOptions EOpts = Opts.Harness.Explorer;
  // Cheap scheduler tier: structural caps only (solverTierCaps), so a
  // run that never trips one (CapHits == 0) is bit-identical to full
  // strength. Applied before fault arming so injected solver faults
  // fire identically at every tier.
  if (TierDistance > 0)
    EOpts.Solver = solverTierCaps(EOpts.Solver, TierDistance);
  EOpts.ExternalBudget = &ExploreBud;
  EOpts.SharedUnsat = &SolverIndex;
  EOpts.Trace = Trace;
  if (Opts.Faults.armedFor(HarnessFaultKind::SolverHang, Spec.Name, Attempt))
    EOpts.Solver.InjectSolverHang = true;
  if (Opts.Faults.armedFor(HarnessFaultKind::HeapCorruption, Spec.Name,
                           Attempt))
    EOpts.InjectHeapCorruption = true;

  auto ExploreStart = std::chrono::steady_clock::now();
  ConcolicExplorer Explorer(Opts.Harness.VM, EOpts);
  ExplorationResult R = Explorer.explore(Spec);
  Rec.ExploreMillis = Opts.RecordTimings ? millisSince(ExploreStart) : 0;
  Rec.Paths = static_cast<unsigned>(R.Paths.size());
  Rec.CuratedPaths = R.curatedCount();
  Rec.UnknownNegations = R.UnknownNegations;
  Rec.LadderRetries = R.LadderRetries;
  Rec.LadderRescues = R.LadderRescues;
  Rec.BudgetExhausted = R.BudgetExhausted;
  Rec.FrontierExhausted = R.FrontierExhausted;
  Rec.ExploreUnits = ExploreBud.spentUnits();
  Rec.Solver = R.Solver;

  // One compile-once cache per attempt, shared by every compiler kind
  // and both back-ends (keys carry both); worker-local by construction.
  JitCodeCache CodeCache;
  for (CompilerKind Kind : AllCompilers) {
    InstructionKind Wanted = Kind == CompilerKind::NativeMethod
                                 ? InstructionKind::NativeMethod
                                 : InstructionKind::Bytecode;
    if (Spec.Kind != Wanted)
      continue;

    // Worker-class faults fire as replay of the instruction's first
    // compiler begins: a real signal/hang inside a forked worker, a
    // synchronous WorkerFault in-process (see HarnessFaults.h).
    if (Opts.Faults.armedFor(HarnessFaultKind::WorkerSegfault, Spec.Name,
                             Attempt))
      triggerWorkerSegfault();
    if (Opts.Faults.armedFor(HarnessFaultKind::WorkerHang, Spec.Name, Attempt))
      triggerWorkerHang();

    auto MakeConfig = [&](bool Arm) {
      DiffTestConfig Cfg;
      Cfg.Kind = Kind;
      Cfg.UseArmBackend = Arm;
      Cfg.Cogit = Opts.Harness.Cogit;
      Cfg.Sim = Opts.Harness.Sim;
      Cfg.CrossEngineCheck = Opts.Harness.CrossEngineCheck;
      Cfg.Trace = Trace;
      if (Opts.Harness.SeedSimulationErrors && Arm)
        Cfg.Sim.MissingFPAccessors.insert(std::uint8_t(FReg::F5));
      Cfg.ReplayBudget = &ReplayBud;
      Cfg.JitStats = &Rec.Jit;
      Cfg.SimCounters = &Rec.Sim;
      Cfg.Replay = &Rec.Replay;
      if (Opts.Harness.EnableCodeCache)
        Cfg.CodeCache = &CodeCache;
      if (Opts.Harness.EnableReplayArena)
        Cfg.Arena = &Arena;
      if (Opts.Faults.armedFor(HarnessFaultKind::FrontEndThrow, Spec.Name,
                               Attempt))
        Cfg.Cogit.InjectFrontEndThrow = true;
      if (Opts.Faults.armedFor(HarnessFaultKind::SimFuelExhaustion, Spec.Name,
                               Attempt)) {
        Cfg.Sim.Fuel = 1;
        Cfg.FuelExhaustionIsHarnessFault = true;
      }
      return Cfg;
    };

    CompilerOutcome Outcome;
    Outcome.Kind = Kind;
    DifferentialTester X64(MakeConfig(/*Arm=*/false));
    DifferentialTester Arm(MakeConfig(/*Arm=*/true));

    auto Start = std::chrono::steady_clock::now();
    for (std::size_t I = 0; I < R.Paths.size(); ++I) {
      PathTestOutcome A = X64.testPath(R, I);
      PathTestOutcome B = Arm.testPath(R, I);
      if (A.Status == PathTestStatus::BudgetSkipped ||
          B.Status == PathTestStatus::BudgetSkipped)
        ++Outcome.BudgetSkipped;
      bool Differs = A.Status == PathTestStatus::Difference ||
                     B.Status == PathTestStatus::Difference;
      if (!Differs)
        continue;
      ++Outcome.DifferingPaths;
      if (A.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(A.CauseKey, A.Family);
      if (B.Status == PathTestStatus::Difference)
        Outcome.Causes.emplace(B.CauseKey, B.Family);
    }
    Outcome.TestMillis = Opts.RecordTimings ? millisSince(Start) : 0;
    Rec.Compilers.push_back(std::move(Outcome));
  }
  return Rec;
}

InstructionRecord CampaignRunner::testInstruction(
    const InstructionSpec &Spec, std::vector<CampaignIncident> &Incidents,
    TraceSink *Trace, ReplayArena &Arena, unsigned StartAttempt,
    unsigned TierDistance, std::uint64_t ExploreUnitsOverride) const {
  unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  std::vector<CampaignIncident> Local;
  InstructionRecord Rec;
  bool Succeeded = false;

  for (unsigned Attempt = std::max(1u, StartAttempt);
       Attempt <= MaxAttempts && !Succeeded; ++Attempt) {
    // Fresh budgets AND a fresh exploration heap per attempt: a fault
    // must not leak state into the retry. The replay arena is reused,
    // but its reset contract makes the next acquire observably fresh
    // (poison included), so the guarantee carries over.
    BudgetOptions ExploreCfg = Opts.ExploreBudget;
    // A budget-pool grant raises this run's work-unit allowance; the
    // wall/memory sides stay configuration.
    if (ExploreUnitsOverride)
      ExploreCfg.WorkUnits = ExploreUnitsOverride;
    Budget ExploreBud(ExploreCfg);
    Budget ReplayBud(Opts.ReplayBudget);
    // Events of a failed attempt stay in the stream: fault injection
    // is deterministic, so the partial prefix is too, and the attempt
    // stamp tells it apart from the retry. The exception is a
    // worker-class fault: its attempt's events can never be delivered
    // out-of-process (they died with the worker, or travelled in a
    // frame the coordinator refused), so the attempt is staged into
    // its own buffer and dropped on WorkerFault — in-process
    // topologies lose exactly the same events.
    TraceBuffer AttemptEvents;
    TraceScope Scope(Trace ? &AttemptEvents : nullptr, Spec.Name, Attempt,
                     Opts.RecordTimings);
    bool WorkerFaulted = false;
    try {
      Rec = attemptInstruction(Spec, Attempt, ExploreBud, ReplayBud,
                               Trace ? &Scope : nullptr, Arena, TierDistance);
      // The in-process equivalent of a damaged response frame: the
      // result was computed but cannot be trusted/delivered. Worker
      // processes damage the real encoded frame instead (the send path
      // in run() checks the same arming), so the fault exercises the
      // actual CRC machinery there.
      if (!inWorkerProcess() &&
          Opts.Faults.armedFor(HarnessFaultKind::PipeMessageCorruption,
                               Spec.Name, Attempt))
        triggerPipeCorruption();
      Succeeded = true;
    } catch (const WorkerFault &F) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = F.stage();
      I.ErrorClass = F.errorClass();
      I.Error = F.what();
      // The out-of-process coordinator never sees the failing
      // attempt's budgets (they died with the worker); the in-process
      // equivalent uses the same fixed marker so incidents match.
      I.ExploreBudget = workerOutOfBandBudgetNote();
      I.ReplayBudget = workerOutOfBandBudgetNote();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
      WorkerFaulted = true;
    } catch (const HarnessFault &F) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = F.stage();
      I.ErrorClass = "harness-fault";
      I.Error = F.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    } catch (const std::exception &E) {
      CampaignIncident I;
      I.Instruction = Spec.Name;
      I.Stage = "explore";
      I.ErrorClass = "exception";
      I.Error = E.what();
      I.ExploreBudget = ExploreBud.describe();
      I.ReplayBudget = ReplayBud.describe();
      I.Attempt = Attempt;
      Local.push_back(std::move(I));
    }
    if (Trace && !WorkerFaulted)
      for (TraceEvent &Event : AttemptEvents.take())
        Trace->emit(std::move(Event));
  }

  if (!Succeeded) {
    Rec = InstructionRecord();
    Rec.Instruction = Spec.Name;
    Rec.Kind = Spec.Kind;
    Rec.Attempts = MaxAttempts;
    Rec.Quarantined = true;
  }

  if (Opts.Schedule.PersistYield)
    stampYield(Rec);

  for (CampaignIncident &I : Local) {
    I.Quarantined = Rec.Quarantined;
    Incidents.push_back(std::move(I));
  }
  return Rec;
}

CampaignSummary CampaignRunner::run() {
  CampaignSummary Summary;

  // Resume: later checkpoint lines win, so a record rewritten after a
  // retry supersedes the earlier one.
  std::map<std::string, InstructionRecord> Done;
  if (!Opts.CheckpointPath.empty()) {
    std::ifstream In(Opts.CheckpointPath);
    // Seal a torn final line (a coordinator SIGKILLed mid-append) with
    // a newline before any fresh append, so the first new record
    // starts its own line instead of gluing onto the fragment and
    // being lost with it.
    bool SealTornTail = false;
    if (In.seekg(0, std::ios::end) && In.tellg() > 0) {
      In.seekg(-1, std::ios::end);
      SealTornTail = In.get() != '\n';
    }
    In.clear();
    In.seekg(0);
    std::string Line;
    while (std::getline(In, Line)) {
      InstructionRecord Rec;
      if (InstructionRecord::fromJson(Line, Rec))
        Done[Rec.Instruction] = std::move(Rec);
    }
    In.close();
    if (SealTornTail)
      appendLine(Opts.CheckpointPath, "");
  }

  // Content-addressed store: consulted during planning so sharding and
  // scheduling see served items exactly like resumed ones (they count
  // toward quotas and StopAfter, and never reach a worker). The
  // eligibility gate refuses configurations whose records are not pure
  // functions of the key (VerdictStore.h).
  VerdictStore *Store =
      Opts.Store && storeEligible(Opts) ? Opts.Store : nullptr;
  if (Opts.Store)
    Summary.Metrics.add(Store ? "store.enabled" : "store.ineligible_config");
  Summary.StoreActive = Store != nullptr;
  const std::uint64_t ConfigFp = Store ? campaignConfigFingerprint(Opts) : 0;

  // Phase 1: plan the whole worklist up-front, in catalog order,
  // reproducing the serial loop's quota counting (Max* limits count
  // resumed instructions too) and StopAfter truncation (which drops
  // everything after the limit, resumed records included). Sharding
  // then cannot change *what* runs, only *where*.
  struct WorkItem {
    const InstructionSpec *Spec = nullptr;
    const InstructionRecord *Resumed = nullptr;
    /// The exact stored checkpoint line when the store key hit; the
    /// merge cursor appends it verbatim instead of dispatching.
    std::string StoreLine;
    bool FromStore = false;
  };
  std::vector<WorkItem> Work;
  unsigned Bytecodes = 0;
  unsigned Natives = 0;
  unsigned NewPlanned = 0;
  for (const InstructionSpec &Spec : allInstructions()) {
    if (!Opts.OnlyInstructions.empty() &&
        std::find(Opts.OnlyInstructions.begin(), Opts.OnlyInstructions.end(),
                  Spec.Name) == Opts.OnlyInstructions.end())
      continue;
    if (Spec.Kind == InstructionKind::Bytecode) {
      if (Opts.Harness.MaxBytecodes && Bytecodes >= Opts.Harness.MaxBytecodes)
        continue;
      ++Bytecodes;
    } else {
      if (Opts.Harness.MaxNativeMethods &&
          Natives >= Opts.Harness.MaxNativeMethods)
        continue;
      ++Natives;
    }

    auto It = Done.find(Spec.Name);
    if (It != Done.end()) {
      WorkItem Resumed;
      Resumed.Spec = &Spec;
      Resumed.Resumed = &It->second;
      Work.push_back(std::move(Resumed));
      continue;
    }
    if (Opts.StopAfter && NewPlanned >= Opts.StopAfter) {
      Summary.Stopped = true;
      break;
    }
    WorkItem Item;
    Item.Spec = &Spec;
    if (Store) {
      // A hit must parse back to this instruction's record before it is
      // trusted; anything else (corruption, a colliding key) is a miss
      // and the instruction runs fresh.
      std::string Line;
      InstructionRecord Cached;
      if (Store->lookup(resultStoreKey(Spec, ConfigFp), Line) &&
          InstructionRecord::fromJson(Line, Cached) &&
          Cached.Instruction == Spec.Name) {
        ++Summary.StoreHits;
        Item.StoreLine = std::move(Line);
        Item.FromStore = true;
      } else {
        ++Summary.StoreMisses;
      }
    }
    Work.push_back(std::move(Item));
    // Served items still count as NEW work: a warm --stop-after N run
    // covers exactly the N instructions the cold run covered.
    ++NewPlanned;
  }

  // Adaptive scheduling: the policy object replaces the atomic cursor /
  // pull queue as the source of "next instruction" (CampaignScheduler.h
  // has the determinism contract). Built over the planned worklist so
  // quota/StopAfter truncation is identical to fixed order.
  const bool Adaptive = Opts.Schedule.adaptive();
  std::unique_ptr<CampaignScheduler> Sched;
  if (Adaptive) {
    Sched = std::make_unique<CampaignScheduler>(Opts.Schedule,
                                                Opts.ExploreBudget.WorkUnits);
    for (std::size_t I = 0; I < Work.size(); ++I)
      if (!Work[I].Resumed && !Work[I].FromStore)
        Sched->addItem(I, Work[I].Spec->Name);
    if (!Opts.Schedule.WarmStartPath.empty())
      Sched->loadWarmStart(Opts.Schedule.WarmStartPath);
    Sched->finalize();
  }

  // Phase 2: execute. Workers claim unprocessed items from an atomic
  // cursor and fill per-item slots; every exploration runs on a
  // worker-local heap/arena/solver (see ConcolicExplorer.h), so
  // workers share nothing mutable but the slot handoff below.
  struct Slot {
    InstructionRecord Rec;
    std::vector<CampaignIncident> Incidents;
    std::vector<TraceEvent> Events;
    bool Skipped = false; // wall clock expired before this item ran
    bool Ready = false;
  };
  std::vector<Slot> Slots(Work.size());

  const bool Observing = !Opts.TracePath.empty() || Opts.ExtraTraceSink ||
                         Opts.CollectMetrics;

  unsigned Jobs = Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
  if (Jobs == 0)
    Jobs = 1;

  std::size_t NewItems = 0;
  for (const WorkItem &W : Work)
    if (!W.Resumed && !W.FromStore)
      ++NewItems;

  // Topology: out-of-process workers when requested and fork works.
  // The pool forks here, while this process is still single-threaded —
  // the coordinator stays single-threaded for its whole life (its poll
  // loop shares the merge thread), so workers never inherit locks,
  // threads or partially-written state. A campaign-level budget forces
  // in-process execution: the pool's pull queue claims items before
  // the ledger can price them, so draws could not follow completion
  // order; the degradation below swaps in worker threads instead.
  bool UseProcs = Opts.WorkerProcesses > 0 && NewItems > 0 &&
                  Opts.TotalExploreUnits == 0 && ProcessPool::available();
  std::unique_ptr<ProcessPool> Forked;
  if (UseProcs) {
    ProcessPoolOptions POpts;
    POpts.Workers =
        unsigned(std::min<std::size_t>(Opts.WorkerProcesses, NewItems));
    POpts.DeadlineMillis = Opts.WorkerDeadlineMillis;
    POpts.BackoffMillis = Opts.WorkerBackoffMillis;
    POpts.MaxAttempts = std::max(1u, Opts.MaxAttempts);
    // One arena per worker process: constructed pre-fork, copied into
    // each child, reused across that child's items — the same reuse
    // the in-process pool gets from its per-thread arenas.
    auto WorkerArena = std::make_shared<ReplayArena>();
    Forked = std::make_unique<ProcessPool>(
        POpts, [this, &Work, Observing, WorkerArena](const PoolWorkItem &It) {
          PoolItemResult R;
          std::vector<CampaignIncident> Incidents;
          TraceBuffer Buffer;
          InstructionRecord Rec = testInstruction(
              *Work[It.Index].Spec, Incidents, Observing ? &Buffer : nullptr,
              *WorkerArena, It.StartAttempt, It.Tier, It.GrantUnits);
          // The armed pipe-corruption fault damages the real encoded
          // frame (post-CRC), exercising the coordinator's protocol
          // validation rather than simulating it.
          R.CorruptFrame =
              !Rec.Quarantined &&
              Opts.Faults.armedFor(HarnessFaultKind::PipeMessageCorruption,
                                   Work[It.Index].Spec->Name, Rec.Attempts);
          R.Payload = encodeWorkerPayload(Rec, Incidents, Buffer.take());
          return R;
        });
    if (Forked->start()) {
      Summary.Metrics.add("worker.processes", POpts.Workers);
    } else {
      Forked.reset();
      UseProcs = false;
    }
  }
  if (Opts.WorkerProcesses > 0 && NewItems > 0 && !UseProcs) {
    // Graceful degradation: fork unavailable (or refused) — match the
    // requested parallelism with in-process worker threads instead.
    Jobs = std::max(Jobs, Opts.WorkerProcesses);
    Summary.Metrics.add("worker.fallback_inprocess");
  }
  // Worker-level failure context the coordinator accumulates until the
  // item completes; merged ahead of the slot's own incidents/events.
  std::vector<std::vector<CampaignIncident>> PendingWorkerIncidents(
      UseProcs ? Work.size() : 0);
  std::vector<std::vector<TraceEvent>> PendingWorkerEvents(
      UseProcs ? Work.size() : 0);

  const bool HasDeadline = Opts.CampaignWallMillis > 0;
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              HasDeadline ? Opts.CampaignWallMillis : 0));
  // Stateless check on purpose: Budget mutates state in expired() and
  // is not safe to share across threads.
  auto WallExpired = [&] {
    return HasDeadline && std::chrono::steady_clock::now() >= Deadline;
  };

  std::atomic<std::size_t> Next{0};
  std::atomic<bool> Cancelled{false};
  std::mutex SlotMutex;
  std::condition_variable SlotReady;

  // Campaign-level explore ledger (TotalExploreUnits): every dispatch
  // draws its per-instruction allowance here and refunds what the run
  // left unspent, so later dispatches see exactly the units earlier
  // ones proved they did not need. Draw 0 means the ledger is dry.
  // The ledger has the same reservation semantics as every other
  // cooperative budget (charge-then-check): a run granted N units may
  // spend N+1, and that final batch is outside the ledger — exactly as
  // a WorkUnits=1200 exploration may report 1201 spent. Billing the
  // overshoot back would tax many-small-runs schedules by one unit per
  // dispatch and skew fixed-vs-adaptive comparisons under equal
  // grants.
  const bool TotalBudget = Opts.TotalExploreUnits > 0;
  std::atomic<std::uint64_t> UnitsLeft{Opts.TotalExploreUnits};
  auto ReserveUnits = [&](std::uint64_t Want) -> std::uint64_t {
    std::uint64_t Cur = UnitsLeft.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t Draw = Want ? std::min(Want, Cur) : Cur;
      if (Draw == 0)
        return 0;
      if (UnitsLeft.compare_exchange_weak(Cur, Cur - Draw,
                                          std::memory_order_relaxed))
        return Draw;
    }
  };
  auto RefundUnits = [&](std::uint64_t Draw, std::uint64_t Spent) {
    if (Draw > Spent)
      UnitsLeft.fetch_add(Draw - Spent, std::memory_order_relaxed);
  };

  auto RunOne = [&](std::size_t I, ReplayArena &Arena,
                    unsigned StartAttempt = 1, unsigned Tier = 0,
                    std::uint64_t GrantUnits = 0) {
    Slot S;
    if (Cancelled.load(std::memory_order_relaxed) || WallExpired()) {
      S.Skipped = true;
    } else {
      std::uint64_t Draw = 0;
      if (TotalBudget)
        Draw = ReserveUnits(GrantUnits ? GrantUnits
                                       : Opts.ExploreBudget.WorkUnits);
      if (TotalBudget && Draw == 0) {
        // Ledger dry: an honest zero-path record instead of a run. The
        // scheduler sees BudgetExhausted and can re-grant refunds; in
        // fixed order the instruction simply went unfunded.
        S.Rec.Instruction = Work[I].Spec->Name;
        S.Rec.Kind = Work[I].Spec->Kind;
        S.Rec.Attempts = 0;
        S.Rec.BudgetExhausted = true;
        if (Opts.Schedule.PersistYield)
          stampYield(S.Rec);
      } else {
        // Per-worker buffering: events never cross threads until the
        // merge loop drains the slot in catalog order.
        TraceBuffer Buffer;
        S.Rec = testInstruction(*Work[I].Spec, S.Incidents,
                                Observing ? &Buffer : nullptr, Arena,
                                StartAttempt, Tier,
                                TotalBudget ? Draw : GrantUnits);
        S.Events = Buffer.take();
        if (TotalBudget)
          RefundUnits(Draw, S.Rec.ExploreUnits);
      }
    }
    {
      std::lock_guard<std::mutex> Lock(SlotMutex);
      Slots[I] = std::move(S);
      Slots[I].Ready = true;
    }
    SlotReady.notify_all();
  };

  auto NextUnresumed = [&]() -> std::size_t {
    for (;;) {
      std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Work.size())
        return Work.size();
      if (!Work[I].Resumed && !Work[I].FromStore)
        return I;
    }
  };

  std::vector<std::thread> Pool;
  // Adaptive campaigns drive their own per-wave execution below; the
  // free-running fixed-order pool would race the scheduler's waves.
  if (!UseProcs && !Adaptive && Jobs > 1) {
    std::size_t Workers = std::min<std::size_t>(Jobs, Work.size());
    Pool.reserve(Workers);
    for (std::size_t W = 0; W < Workers; ++W)
      Pool.emplace_back([&] {
        // One replay arena per worker thread, like the per-attempt code
        // cache: strictly worker-local mutable state.
        ReplayArena Arena;
        for (std::size_t I = NextUnresumed(); I < Work.size();
             I = NextUnresumed())
          RunOne(I, Arena);
      });
  }

  // Phase 3: merge in catalog order on this thread. All file appends
  // happen here, in exactly the serial order; workers only hand over
  // finished slots. The trace follows the checkpoint discipline: one
  // writer, catalog order, so the JSONL bytes are Jobs-independent.
  std::ofstream TraceOut;
  std::unique_ptr<JsonlTraceSink> TraceWriter;
  if (!Opts.TracePath.empty()) {
    TraceOut.open(Opts.TracePath, std::ios::trunc);
    TraceWriter = std::make_unique<JsonlTraceSink>(TraceOut);
  }
  MetricsSink EventMetrics(Summary.Metrics);
  auto Publish = [&](TraceEvent Event) {
    // SimRun diagnostics (Aux = dispatch engine, Extra = predecode
    // cache hit) describe how the harness replayed, not what the code
    // under test did, and they change with the predecode/arena toggles.
    // Blank them here so campaign trace files and metrics stay
    // byte-identical across configurations; Session-level traces keep
    // the fields.
    if (Event.Kind == TraceEventKind::SimRun) {
      Event.Aux.clear();
      Event.Extra = 0;
    }
    // Worker lifecycle events carry which worker index / pid failed
    // (Value / Extra): pure scheduling facts. Blank them so metrics
    // and diagnostic sinks see identical streams across topologies;
    // the deterministic trace file filters the kind out entirely.
    if (Event.Kind == TraceEventKind::WorkerEvent) {
      Event.Value = 0;
      Event.Extra = 0;
    }
    if (Opts.ExtraTraceSink)
      Opts.ExtraTraceSink->emit(Event);
    if (Observing)
      EventMetrics.emit(Event);
    if (TraceWriter)
      TraceWriter->emit(std::move(Event));
  };

  auto MergeResumed = [&](const InstructionRecord &Resumed) {
    if (Resumed.Quarantined)
      Summary.Quarantined.push_back(Resumed.Instruction);
    Summary.Records.push_back(Resumed);
    ++Summary.ResumedInstructions;
  };

  // Serves one store hit: the stored line is appended to the checkpoint
  // *verbatim* (the byte-identity contract — never re-serialised), and
  // the parsed record joins the summary like a fresh one. Served items
  // emit no trace events: nothing ran, and only clean incident-free
  // records are ever stored.
  auto MergeStored = [&](WorkItem &W) {
    InstructionRecord Rec;
    InstructionRecord::fromJson(W.StoreLine, Rec); // validated at planning
    ++Summary.CompletedInstructions;
    ++Summary.StoreServed;
    if (Rec.Quarantined) // defensive: put() refuses quarantined records
      Summary.Quarantined.push_back(Rec.Instruction);
    appendLine(Opts.CheckpointPath, W.StoreLine);
    Summary.Records.push_back(std::move(Rec));
  };

  // Merges one finished slot; false when the shared wall clock marked
  // it skipped — stop merging, drop the tail (mirroring the serial
  // StopAfter break) and let the workers wind down.
  auto MergeSlot = [&](std::size_t I) -> bool {
    Slot &S = Slots[I];
    if (S.Skipped) {
      Summary.Stopped = true;
      Cancelled.store(true, std::memory_order_relaxed);
      return false;
    }
    if (UseProcs) {
      // Worker-level failures happened before the slot's own events:
      // merge them in front, stamped with the item's final disposition.
      auto &PendInc = PendingWorkerIncidents[I];
      for (CampaignIncident &Inc : PendInc)
        Inc.Quarantined = S.Rec.Quarantined;
      S.Incidents.insert(S.Incidents.begin(),
                         std::make_move_iterator(PendInc.begin()),
                         std::make_move_iterator(PendInc.end()));
      PendInc.clear();
      auto &PendEv = PendingWorkerEvents[I];
      S.Events.insert(S.Events.begin(),
                      std::make_move_iterator(PendEv.begin()),
                      std::make_move_iterator(PendEv.end()));
      PendEv.clear();
    }
    // Publish the slot's event stream before its containment summary
    // events so a reader sees attempt events, then incidents, then the
    // quarantine verdict — the order the serial run experienced them.
    for (TraceEvent &Event : S.Events)
      Publish(std::move(Event));
    for (CampaignIncident &Inc : S.Incidents) {
      // Blank the nondeterministic provenance before anything records
      // the incident: worker index and pid are scheduling/OS facts, and
      // the spent-wall figure in the budget strings is clock noise.
      // With timings off this keeps incident files (and in-memory
      // incidents) byte-comparable across topologies, mirroring the
      // SimRun Aux/Extra blanking above.
      Inc.Worker = -1;
      Inc.Pid = 0;
      if (!Opts.RecordTimings) {
        Inc.ExploreBudget = scrubBudgetWall(std::move(Inc.ExploreBudget));
        Inc.ReplayBudget = scrubBudgetWall(std::move(Inc.ReplayBudget));
      }
      if (Observing) {
        TraceEvent Event;
        Event.Kind = TraceEventKind::Containment;
        Event.Instruction = Inc.Instruction;
        Event.Attempt = Inc.Attempt;
        Event.Detail = Inc.Stage;
        Event.Aux = Inc.ErrorClass;
        Event.Value = Inc.Attempt;
        Publish(std::move(Event));
      }
      appendLine(Opts.IncidentLogPath, Inc.toJson());
      Summary.Incidents.push_back(std::move(Inc));
    }
    if (S.Rec.Quarantined && Observing) {
      TraceEvent Event;
      Event.Kind = TraceEventKind::Quarantine;
      Event.Instruction = S.Rec.Instruction;
      Event.Attempt = S.Rec.Attempts;
      Event.Value = S.Rec.Attempts;
      Publish(std::move(Event));
    }
    ++Summary.CompletedInstructions;
    if (S.Rec.Quarantined)
      Summary.Quarantined.push_back(S.Rec.Instruction);
    Summary.LiveSolver.add(S.Rec.Solver);
    std::string Line = S.Rec.toJson();
    // Only clean records enter the store: a record that needed
    // containment (or was quarantined) must re-run on the next campaign
    // so its incidents are reproduced alongside it — serving the record
    // without the incidents would break incident-file identity.
    if (Store && !S.Rec.Quarantined && S.Incidents.empty()) {
      Store->put(resultStoreKey(*Work[I].Spec, ConfigFp), S.Rec.Instruction,
                 Line);
      ++Summary.StoreStores;
    }
    appendLine(Opts.CheckpointPath, std::move(Line));
    Summary.Records.push_back(std::move(S.Rec));
    return true;
  };

  // Worker-level failure accounting shared by the fixed and adaptive
  // out-of-process coordinators: stash the incident/event so the merge
  // loop emits them ahead of the item's own stream.
  auto OnWorkerFailure = [&](std::size_t I, unsigned Attempt,
                             WorkerFailureKind Kind, const std::string &Error,
                             unsigned WorkerIdx, long Pid) {
    CampaignIncident Inc;
    Inc.Instruction = Work[I].Spec->Name;
    Inc.Stage = "worker";
    Inc.ErrorClass = workerFailureKindName(Kind);
    Inc.Error = Error;
    Inc.ExploreBudget = workerOutOfBandBudgetNote();
    Inc.ReplayBudget = workerOutOfBandBudgetNote();
    Inc.Attempt = Attempt;
    Inc.Worker = int(WorkerIdx);
    Inc.Pid = Pid;
    PendingWorkerIncidents[I].push_back(std::move(Inc));
    if (Observing) {
      TraceEvent Event;
      Event.Kind = TraceEventKind::WorkerEvent;
      Event.Instruction = Work[I].Spec->Name;
      Event.Attempt = Attempt;
      Event.Detail = workerFailureKindName(Kind);
      Event.Aux = Error;
      Event.Value = WorkerIdx;
      Event.Extra = std::uint64_t(Pid > 0 ? Pid : 0);
      PendingWorkerEvents[I].push_back(std::move(Event));
    }
  };

  // Synthesise the quarantine record the in-process retry loop would
  // have produced after the same number of failed attempts.
  auto SynthesiseQuarantine = [&](std::size_t I, unsigned Attempts) {
    Slot S;
    S.Rec.Instruction = Work[I].Spec->Name;
    S.Rec.Kind = Work[I].Spec->Kind;
    S.Rec.Attempts = Attempts;
    S.Rec.Quarantined = true;
    if (Opts.Schedule.PersistYield)
      stampYield(S.Rec);
    S.Ready = true;
    Slots[I] = std::move(S);
  };

  // Serial path: the merge thread doubles as the single worker and
  // keeps one arena for the whole campaign.
  ReplayArena SerialArena;
  if (Adaptive) {
    // Adaptive wave loop. The catalog-order merge cursor is the same
    // one the fixed coordinator uses — scheduling changes *when* an
    // instruction runs, never where its record lands, so checkpoint,
    // incident and trace bytes keep their catalog order and land
    // incrementally as the cursor reaches them.
    std::size_t Cursor = 0;
    bool Halted = false;
    auto Advance = [&] {
      while (!Halted && Cursor < Work.size()) {
        if (const InstructionRecord *Resumed = Work[Cursor].Resumed) {
          MergeResumed(*Resumed);
          ++Cursor;
          continue;
        }
        if (Work[Cursor].FromStore) {
          MergeStored(Work[Cursor]);
          ++Cursor;
          continue;
        }
        if (!Slots[Cursor].Ready)
          break;
        if (!MergeSlot(Cursor)) {
          Halted = true;
          break;
        }
        ++Cursor;
      }
    };

    // A superseded run (escalation or regrant) vanishes entirely:
    // record, incidents and buffered events are all regenerated by the
    // re-run, which restarts attempt counting so deterministic fault
    // arming and the event stream replay exactly as fixed order saw
    // them.
    auto DiscardRun = [&](std::size_t I) {
      Slots[I] = Slot();
      if (UseProcs) {
        PendingWorkerIncidents[I].clear();
        PendingWorkerEvents[I].clear();
      }
    };

    auto FeedbackOf = [&](std::size_t I) {
      const Slot &S = Slots[I];
      ScheduleFeedback F;
      F.Quarantined = S.Rec.Quarantined;
      F.BudgetExhausted = S.Rec.BudgetExhausted;
      F.FrontierExhausted = S.Rec.FrontierExhausted;
      F.HadIncidents = !S.Incidents.empty() ||
                       (UseProcs && !PendingWorkerIncidents[I].empty());
      F.UnknownNegations = S.Rec.UnknownNegations;
      F.LadderRetries = S.Rec.LadderRetries;
      F.Paths = S.Rec.Paths;
      F.CapHits = S.Rec.Solver.CapHits;
      F.SpentUnits = S.Rec.ExploreUnits;
      return F;
    };

    // Verdicts run on this (coordinating) thread only. Accept exposes
    // the slot to the merge cursor; Retry/Hold keep it invisible.
    auto ApplyVerdict = [&](const ScheduleAssignment &A) {
      std::size_t I = A.Index;
      if (Slots[I].Skipped)
        return; // wall expired: the merge will see it and halt
      switch (Sched->report(A, FeedbackOf(I))) {
      case ScheduleVerdict::Accept:
        Slots[I].Ready = true;
        break;
      case ScheduleVerdict::Retry:
        DiscardRun(I);
        break;
      case ScheduleVerdict::Hold:
        Slots[I].Ready = false;
        break;
      }
    };

    // Starved items the grant round left empty-handed: their held
    // base-budget results become final without a re-run.
    auto PublishFinalized = [&] {
      for (std::size_t I : Sched->takeFinalized())
        Slots[I].Ready = true;
    };

    while (!Halted && !Sched->done()) {
      std::vector<ScheduleAssignment> Wave = Sched->nextWave();
      PublishFinalized();
      if (Wave.empty())
        break;
      for (const ScheduleAssignment &A : Wave)
        DiscardRun(A.Index); // drop any held run this re-run supersedes

      if (UseProcs) {
        std::map<std::size_t, ScheduleAssignment> ByIndex;
        std::deque<PoolWorkItem> Items;
        for (const ScheduleAssignment &A : Wave) {
          ByIndex[A.Index] = A;
          Items.push_back({A.Index, 1, A.TierDistance, A.ExploreUnits});
        }
        ProcessPoolHooks Hooks;
        Hooks.OnResult = [&](std::size_t I, unsigned Attempt,
                             const std::string &Payload) {
          (void)Attempt;
          Slot S;
          if (!decodeWorkerPayload(Payload, S.Rec, S.Incidents, S.Events))
            return false; // undecodable == corrupt: recycle, retry
          S.Ready = true;
          Slots[I] = std::move(S);
          // The coordinator is single-threaded, so verdict + merge run
          // inline: accepted records checkpoint incrementally exactly
          // like the fixed-order coordinator's.
          ApplyVerdict(ByIndex[I]);
          Advance();
          return true;
        };
        Hooks.OnFailure = OnWorkerFailure;
        Hooks.OnExhausted = [&](std::size_t I, unsigned Attempts) {
          SynthesiseQuarantine(I, Attempts);
          ApplyVerdict(ByIndex[I]);
          Advance();
        };
        Hooks.ShouldStop = [&] { return Halted || WallExpired(); };
        Hooks.OnCounter = [&](const char *Name) { Summary.Metrics.add(Name); };

        std::vector<PoolWorkItem> Leftover =
            Forked->run(std::move(Items), Hooks);
        if (!Leftover.empty())
          Summary.Metrics.add("worker.leftover_inprocess", Leftover.size());
        for (const PoolWorkItem &It : Leftover) {
          if (Halted)
            break;
          RunOne(It.Index, SerialArena, It.StartAttempt, It.Tier,
                 It.GrantUnits);
          ApplyVerdict(ByIndex[It.Index]);
          Advance();
        }
      } else if (std::min<std::size_t>(Jobs, Wave.size()) > 1) {
        // Per-wave thread pool over an atomic wave cursor; verdicts
        // stay on this thread, consumed in wave order as slots land.
        std::atomic<std::size_t> WaveNext{0};
        std::size_t Threads = std::min<std::size_t>(Jobs, Wave.size());
        std::vector<std::thread> WavePool;
        WavePool.reserve(Threads);
        for (std::size_t W = 0; W < Threads; ++W)
          WavePool.emplace_back([&] {
            ReplayArena Arena;
            for (;;) {
              std::size_t K = WaveNext.fetch_add(1, std::memory_order_relaxed);
              if (K >= Wave.size())
                break;
              RunOne(Wave[K].Index, Arena, 1, Wave[K].TierDistance,
                     Wave[K].ExploreUnits);
            }
          });
        for (const ScheduleAssignment &A : Wave) {
          {
            std::unique_lock<std::mutex> Lock(SlotMutex);
            SlotReady.wait(Lock, [&] { return Slots[A.Index].Ready; });
          }
          ApplyVerdict(A);
          Advance();
        }
        for (std::thread &T : WavePool)
          T.join();
      } else {
        for (const ScheduleAssignment &A : Wave) {
          if (Halted)
            break;
          RunOne(A.Index, SerialArena, 1, A.TierDistance, A.ExploreUnits);
          ApplyVerdict(A);
          Advance();
        }
      }
    }
    if (Forked) {
      Forked->shutdown();
      Forked.reset();
    }
    PublishFinalized();
    Advance();
    if (WallExpired() && Cursor < Work.size())
      Summary.Stopped = true;
  } else if (!UseProcs) {
    for (std::size_t I = 0; I < Work.size(); ++I) {
      if (const InstructionRecord *Resumed = Work[I].Resumed) {
        MergeResumed(*Resumed);
        continue;
      }
      if (Work[I].FromStore) {
        MergeStored(Work[I]);
        continue;
      }
      if (Pool.empty()) {
        RunOne(I, SerialArena);
      } else {
        std::unique_lock<std::mutex> Lock(SlotMutex);
        SlotReady.wait(Lock, [&] { return Slots[I].Ready; });
      }
      if (!MergeSlot(I))
        break;
    }
  } else {
    // Out-of-process path: the coordinator poll loop and the merge
    // cursor share this thread. Results merge (and checkpoint lines
    // land) as soon as the catalog-order cursor reaches them — not
    // when the campaign ends — so a killed coordinator resumes from
    // everything already merged.
    std::size_t Cursor = 0;
    bool Halted = false;
    auto Advance = [&] {
      while (!Halted && Cursor < Work.size()) {
        if (const InstructionRecord *Resumed = Work[Cursor].Resumed) {
          MergeResumed(*Resumed);
          ++Cursor;
          continue;
        }
        if (Work[Cursor].FromStore) {
          MergeStored(Work[Cursor]);
          ++Cursor;
          continue;
        }
        if (!Slots[Cursor].Ready)
          break;
        if (!MergeSlot(Cursor)) {
          Halted = true;
          break;
        }
        ++Cursor;
      }
    };

    std::deque<PoolWorkItem> Items;
    for (std::size_t I = 0; I < Work.size(); ++I)
      if (!Work[I].Resumed && !Work[I].FromStore)
        Items.push_back({I, 1});

    ProcessPoolHooks Hooks;
    Hooks.OnResult = [&](std::size_t I, unsigned Attempt,
                         const std::string &Payload) {
      (void)Attempt;
      Slot S;
      if (!decodeWorkerPayload(Payload, S.Rec, S.Incidents, S.Events))
        return false; // undecodable == corrupt: recycle worker, retry
      S.Ready = true;
      Slots[I] = std::move(S);
      Advance();
      return true;
    };
    Hooks.OnFailure = OnWorkerFailure;
    Hooks.OnExhausted = [&](std::size_t I, unsigned Attempts) {
      SynthesiseQuarantine(I, Attempts);
      Advance();
    };
    Hooks.ShouldStop = [&] { return Halted || WallExpired(); };
    Hooks.OnCounter = [&](const char *Name) { Summary.Metrics.add(Name); };

    std::vector<PoolWorkItem> Leftover = Forked->run(std::move(Items), Hooks);
    Forked->shutdown();
    // Graceful degradation: whatever the pool could not finish (early
    // stop, or every worker dead with respawns failing) runs in this
    // process; StartAttempt carries over the attempts workers consumed.
    if (!Leftover.empty())
      Summary.Metrics.add("worker.leftover_inprocess", Leftover.size());
    for (const PoolWorkItem &It : Leftover)
      RunOne(It.Index, SerialArena, It.StartAttempt);
    Advance();
    if (WallExpired() && Cursor < Work.size())
      Summary.Stopped = true;
  }

  Cancelled.store(true, std::memory_order_relaxed);
  for (std::thread &T : Pool)
    T.join();

  // Deterministic reduction: catalog order, independent of which
  // worker produced which record.
  for (const InstructionRecord &Rec : Summary.Records) {
    Summary.Solver.add(Rec.Solver);
    Summary.Jit.add(Rec.Jit);
    Summary.Sim.add(Rec.Sim);
    Summary.Replay.add(Rec.Replay);
  }
  Summary.Rows = aggregateCampaignRows(Summary.Records);
  foldSolverStats(Summary.Metrics, Summary.Solver);
  foldJitStats(Summary.Metrics, Summary.Jit);
  foldSimStats(Summary.Metrics, Summary.Sim);
  foldReplayStats(Summary.Metrics, Summary.Replay);
  Summary.Metrics.add("campaign.instructions", Summary.CompletedInstructions);
  Summary.Metrics.add("campaign.resumed", Summary.ResumedInstructions);
  if (Opts.Store) {
    Summary.Metrics.add("store.hits", Summary.StoreHits);
    Summary.Metrics.add("store.misses", Summary.StoreMisses);
    Summary.Metrics.add("store.served", Summary.StoreServed);
    Summary.Metrics.add("store.stores", Summary.StoreStores);
    Summary.Metrics.add("store.live_solver_queries",
                        Summary.LiveSolver.Queries);
  }
  Summary.Metrics.add("campaign.quarantined", Summary.Quarantined.size());
  Summary.Metrics.add("campaign.incidents", Summary.Incidents.size());
  if (Sched) {
    Summary.ScheduleActive = true;
    Summary.Schedule = Sched->stats();
    const ScheduleStats &S = Summary.Schedule;
    Summary.Metrics.add("schedule.waves", S.Waves);
    Summary.Metrics.add("schedule.tier_escalations", S.TierEscalations);
    Summary.Metrics.add("schedule.early_exits", S.EarlyExits);
    Summary.Metrics.add("schedule.budget_pool.refunds", S.PoolRefunds);
    Summary.Metrics.add("schedule.budget_pool.refund_units",
                        S.PoolRefundUnits);
    Summary.Metrics.add("schedule.budget_pool.transfers", S.PoolGrants);
    Summary.Metrics.add("schedule.budget_pool.grant_units", S.PoolGrantUnits);
    Summary.Metrics.add("schedule.priority_inversions", S.PriorityInversions);
    Summary.Metrics.add("schedule.warm_start_entries", S.WarmStartEntries);
    Summary.Metrics.add("schedule.discarded_runs", S.DiscardedRuns);
    Summary.Metrics.add("schedule.discarded_units", S.DiscardedUnits);
  }
  return Summary;
}

ProfileReport igdt::buildCampaignProfile(const CampaignSummary &Summary,
                                         unsigned TopN) {
  ProfileReport Report;

  // Stage wall times come straight from the records (not the metrics
  // histograms, which only fill when tracing is on): explore, then one
  // replay stage per compiler in the fixed AllCompilers order.
  ProfileReport::Stage Explore;
  Explore.Name = "explore";
  std::map<std::string, double> PerInstruction;
  for (const InstructionRecord &Rec : Summary.Records) {
    if (Rec.Quarantined)
      continue;
    Explore.TotalMillis += Rec.ExploreMillis;
    Explore.Count += 1;
    PerInstruction[Rec.Instruction] += Rec.ExploreMillis;
  }
  Report.Stages.push_back(Explore);
  for (CompilerKind Kind : AllCompilers) {
    ProfileReport::Stage Test;
    Test.Name = formatString("test.%s", compilerKindName(Kind));
    for (const InstructionRecord &Rec : Summary.Records)
      for (const CompilerOutcome &Out : Rec.Compilers)
        if (Out.Kind == Kind) {
          Test.TotalMillis += Out.TestMillis;
          Test.Count += 1;
          PerInstruction[Rec.Instruction] += Out.TestMillis;
        }
    Report.Stages.push_back(Test);
  }

  // Top-N most expensive instructions, name-tie-broken so the report is
  // stable when timings are off (everything ties at zero).
  std::vector<ProfileReport::Item> Costs;
  Costs.reserve(PerInstruction.size());
  for (const auto &Entry : PerInstruction)
    Costs.push_back({Entry.first, Entry.second});
  std::sort(Costs.begin(), Costs.end(),
            [](const ProfileReport::Item &A, const ProfileReport::Item &B) {
              if (A.Millis != B.Millis)
                return A.Millis > B.Millis;
              return A.Name < B.Name;
            });
  if (Costs.size() > TopN)
    Costs.resize(TopN);
  Report.TopInstructions = std::move(Costs);

  Report.SolverQueries = Summary.Solver.Queries;
  Report.CacheHits = Summary.Solver.CacheHits;
  Report.CacheMisses = Summary.Solver.CacheMisses;
  Report.CacheUnsatSubsumed = Summary.Solver.CacheUnsatSubsumed;
  Report.ModelCacheHits = Summary.Solver.ModelCacheHits;
  Report.PrefixReuseSolves = Summary.Solver.PrefixReuseSolves;
  Report.FullSolves = Summary.Solver.FullSolves;
  Report.JitCompiles = Summary.Jit.Compiles;
  Report.JitCodeCacheHits = Summary.Jit.CodeCacheHits;
  if (Summary.StoreActive) {
    // Store-served (zero-work) runs keep full profiles: stage times and
    // solver totals come from the served records — the cold run's cost
    // figures — while LiveSolverQueries says what THIS run paid.
    Report.HasStore = true;
    Report.StoreServed = Summary.StoreServed;
    Report.StoreHits = Summary.StoreHits;
    Report.StoreMisses = Summary.StoreMisses;
    Report.StoreStores = Summary.StoreStores;
    Report.LiveSolverQueries = Summary.LiveSolver.Queries;
  }
  if (Summary.ScheduleActive) {
    Report.HasSchedule = true;
    Report.ScheduleWaves = Summary.Schedule.Waves;
    Report.ScheduleTierEscalations = Summary.Schedule.TierEscalations;
    Report.ScheduleEarlyExits = Summary.Schedule.EarlyExits;
    Report.SchedulePoolRefunds = Summary.Schedule.PoolRefunds;
    Report.SchedulePoolRefundUnits = Summary.Schedule.PoolRefundUnits;
    Report.SchedulePoolGrants = Summary.Schedule.PoolGrants;
    Report.SchedulePoolGrantUnits = Summary.Schedule.PoolGrantUnits;
    Report.SchedulePriorityInversions = Summary.Schedule.PriorityInversions;
    Report.ScheduleWarmStartEntries = Summary.Schedule.WarmStartEntries;
    Report.ScheduleDiscardedRuns = Summary.Schedule.DiscardedRuns;
    Report.ScheduleDiscardedUnits = Summary.Schedule.DiscardedUnits;
  }
  Report.Metrics = Summary.Metrics;
  return Report;
}
