//===- evalkit/WireProtocol.h - Coordinator/worker frame protocol --------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small length-prefixed binary protocol the campaign coordinator
/// speaks to its worker processes over pipes (see ProcessPool.h). One
/// frame is:
///
///   magic  u32le  'IGDT' (0x49474454)
///   type   u8     FrameType
///   length u32le  payload byte count
///   crc    u32le  CRC-32 of the payload
///   payload      length bytes
///
/// Pipes deliver bytes reliably, so the CRC and the bounds checks are
/// not there for line noise: they catch a *worker* that scribbled over
/// its own output buffer before dying (heap corruption in the system
/// under test is exactly what the process pool exists to contain). A
/// frame that fails any check marks the decoder Corrupt and the
/// coordinator recycles the worker instead of trusting anything else it
/// sent. The codec is pure (no file descriptors), so the corruption
/// paths are unit-testable without forking.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_WIREPROTOCOL_H
#define IGDT_EVALKIT_WIREPROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace igdt {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of \p Size bytes.
std::uint32_t crc32(const void *Data, std::size_t Size);

/// Frame discriminator.
enum class FrameType : std::uint8_t {
  /// Coordinator -> worker: one work assignment.
  Assign = 1,
  /// Worker -> coordinator: the assignment's result payload.
  Result = 2,
  /// Coordinator -> worker: exit cleanly.
  Shutdown = 3,
  /// Client -> daemon: one JSON service request (api/Requests.h).
  Request = 4,
  /// Daemon -> client: the request's JSON reply.
  Reply = 5,
};

/// 'IGDT' — rejects a stream that lost framing entirely.
constexpr std::uint32_t WireMagic = 0x49474454u;
/// Upper bound on one payload; anything larger is corruption, not data.
constexpr std::uint32_t WireMaxPayload = 64u << 20;

/// One decoded frame.
struct WireFrame {
  FrameType Type = FrameType::Assign;
  std::string Payload;
};

/// Encodes one frame. With \p CorruptPayload the encoded bytes are
/// deliberately damaged *after* the CRC is computed (the pipe-corruption
/// harness fault), so a conforming decoder must reject the frame.
std::string encodeFrame(FrameType Type, const std::string &Payload,
                        bool CorruptPayload = false);

/// Incremental frame parser over a byte stream. Corruption is sticky:
/// once a frame fails validation nothing later in the stream can be
/// trusted (framing may be lost), so the owner must discard the stream
/// — for the coordinator, that means recycling the worker.
class FrameDecoder {
public:
  enum class Status : std::uint8_t {
    /// No complete frame buffered yet.
    NeedMore,
    /// \p Out holds the next frame.
    Frame,
    /// Validation failed; the stream is poisoned.
    Corrupt,
  };

  /// Appends \p Size raw bytes from the stream.
  void feed(const char *Data, std::size_t Size);

  /// Extracts the next frame if one is fully buffered and valid.
  Status next(WireFrame &Out);

  /// Forgets buffered bytes and the poison flag (fresh stream).
  void reset();

private:
  std::string Buffer;
  bool Poisoned = false;
};

} // namespace igdt

#endif // IGDT_EVALKIT_WIREPROTOCOL_H
