//===- evalkit/Experiments.h - Evaluation drivers -------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable drivers that regenerate every table and figure of the
/// paper's evaluation (§5). The bench binaries and the integration tests
/// are thin wrappers over this harness.
///
///  - Table 1 / Figure 2: concolic paths of the add byte-code;
///  - Table 2: instructions / paths / curated paths / differences per
///    compiler (both back-ends, differences unioned);
///  - Table 3: defect causes by family (deduplicated);
///  - Figure 5: paths per instruction, byte-codes vs native methods;
///  - Figure 6: concolic exploration time per instruction kind;
///  - Figure 7: differential test execution time per compiler.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_EVALKIT_EXPERIMENTS_H
#define IGDT_EVALKIT_EXPERIMENTS_H

#include "differential/DifferentialTester.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace igdt {

/// Exploration record of one instruction.
struct ExploredInstruction {
  std::unique_ptr<ExplorationResult> Result;
  double ExploreMillis = 0;
};

/// Table 2 row.
struct CompilerEvaluation {
  CompilerKind Kind = CompilerKind::NativeMethod;
  unsigned TestedInstructions = 0;
  unsigned InterpreterPaths = 0;
  unsigned CuratedPaths = 0;
  unsigned DifferingPaths = 0; // union over both back-ends
  /// Cause key -> family (Table 3 deduplication).
  std::map<std::string, DefectFamily> Causes;
  /// Per-instruction differential test time (both back-ends), ms.
  std::vector<double> TestMillisPerInstruction;
  double totalTestMillis() const {
    double T = 0;
    for (double V : TestMillisPerInstruction)
      T += V;
    return T;
  }
};

/// Configuration of a full evaluation run.
struct HarnessOptions {
  VMConfig VM;
  ExplorerOptions Explorer;
  CogitOptions Cogit;
  /// Base simulator knobs for every replay. diffConfig (and the
  /// campaign runner) start from this instead of a default-constructed
  /// SimOptions, so fuel/trace settings need only one assignment — the
  /// per-arm F5 seeding still layers on top.
  SimOptions Sim;
  /// Run every path through the native x86-64 tier as well and report
  /// any disagreement with the simulator as a CrossEngineDivergence
  /// defect (see DiffTestConfig::CrossEngineCheck).
  bool CrossEngineCheck = false;
  /// Arm the two simulation-error seeds (missing F5 accessor).
  bool SeedSimulationErrors = true;
  /// Compile each distinct compilation unit once per instruction and
  /// replay the cached code for the remaining paths (jit/CodeCache.h).
  /// Purely an optimisation: compilation is a pure function of the
  /// cache key, and a hit replays the Compile trace event, so every
  /// output is byte-identical with the cache on or off.
  bool EnableCodeCache = true;
  /// Reuse one pooled heap + simulator stack per worker instead of
  /// building fresh ones per path (differential/ReplayArena.h). Like
  /// the code cache this is purely an optimisation: the arena's reset
  /// contract keeps every outcome byte-identical on or off.
  bool EnableReplayArena = true;
  /// Limit instructions per kind (0 = all); used by quick tests.
  unsigned MaxBytecodes = 0;
  unsigned MaxNativeMethods = 0;
};

/// The evaluation harness: explores the catalog once (the paper notes
/// exploration results can be cached and reused), then replays against
/// any compiler.
class EvaluationHarness {
public:
  explicit EvaluationHarness(HarnessOptions Options = HarnessOptions());

  /// Concolically explores every catalog instruction (idempotent).
  void exploreAll();

  /// Differentially tests \p Kind on both back-ends.
  CompilerEvaluation evaluateCompiler(CompilerKind Kind);

  /// Runs all four compilers (exploring first if needed).
  std::vector<CompilerEvaluation> evaluateAllCompilers();

  /// \name Rendered artifacts
  /// @{
  std::string renderTable1();
  std::string renderFigure2Trace();
  std::string renderTable2(const std::vector<CompilerEvaluation> &Rows);
  std::string renderTable3(const std::vector<CompilerEvaluation> &Rows);
  std::string renderFigure5();
  std::string renderFigure6();
  std::string renderFigure7(const std::vector<CompilerEvaluation> &Rows);
  /// @}

  /// \name Raw samples for the figures
  /// @{
  std::vector<double> pathsPerInstruction(InstructionKind Kind) const;
  std::vector<double> exploreMillisPerInstruction(InstructionKind Kind) const;
  /// @}

  const std::vector<ExploredInstruction> &explored() const {
    return Explored;
  }
  const HarnessOptions &options() const { return Opts; }

  /// Builds the differential configuration for one compiler/back-end.
  DiffTestConfig diffConfig(CompilerKind Kind, bool Arm) const;

private:
  HarnessOptions Opts;
  std::vector<ExploredInstruction> Explored;
  bool ExplorationDone = false;
};

} // namespace igdt

#endif // IGDT_EVALKIT_EXPERIMENTS_H
