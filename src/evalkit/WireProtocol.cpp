//===- evalkit/WireProtocol.cpp - Coordinator/worker frame protocol ------------===//

#include "evalkit/WireProtocol.h"

#include <array>

using namespace igdt;

namespace {

constexpr std::size_t HeaderSize = 4 + 1 + 4 + 4;

std::array<std::uint32_t, 256> buildCrcTable() {
  std::array<std::uint32_t, 256> Table{};
  for (std::uint32_t I = 0; I < 256; ++I) {
    std::uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

void putU32(std::string &Out, std::uint32_t Value) {
  Out.push_back(char(Value & 0xFF));
  Out.push_back(char((Value >> 8) & 0xFF));
  Out.push_back(char((Value >> 16) & 0xFF));
  Out.push_back(char((Value >> 24) & 0xFF));
}

std::uint32_t getU32(const char *Data) {
  const unsigned char *B = reinterpret_cast<const unsigned char *>(Data);
  return std::uint32_t(B[0]) | (std::uint32_t(B[1]) << 8) |
         (std::uint32_t(B[2]) << 16) | (std::uint32_t(B[3]) << 24);
}

bool validFrameType(std::uint8_t Type) {
  return Type >= std::uint8_t(FrameType::Assign) &&
         Type <= std::uint8_t(FrameType::Reply);
}

} // namespace

std::uint32_t igdt::crc32(const void *Data, std::size_t Size) {
  static const std::array<std::uint32_t, 256> Table = buildCrcTable();
  std::uint32_t C = 0xFFFFFFFFu;
  const unsigned char *B = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Size; ++I)
    C = Table[(C ^ B[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string igdt::encodeFrame(FrameType Type, const std::string &Payload,
                              bool CorruptPayload) {
  std::string Out;
  Out.reserve(HeaderSize + Payload.size());
  putU32(Out, WireMagic);
  Out.push_back(char(Type));
  putU32(Out, std::uint32_t(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
  if (CorruptPayload) {
    // Damage after the CRC was computed so the receiver must notice.
    // An empty payload gets its CRC flipped instead.
    Out[Out.size() > HeaderSize ? Out.size() - 1 : HeaderSize - 1] ^= 0x5A;
  }
  return Out;
}

void FrameDecoder::feed(const char *Data, std::size_t Size) {
  if (!Poisoned)
    Buffer.append(Data, Size);
}

FrameDecoder::Status FrameDecoder::next(WireFrame &Out) {
  if (Poisoned)
    return Status::Corrupt;
  if (Buffer.size() < HeaderSize)
    return Status::NeedMore;
  if (getU32(Buffer.data()) != WireMagic) {
    Poisoned = true;
    return Status::Corrupt;
  }
  std::uint8_t Type = std::uint8_t(Buffer[4]);
  std::uint32_t Length = getU32(Buffer.data() + 5);
  if (!validFrameType(Type) || Length > WireMaxPayload) {
    Poisoned = true;
    return Status::Corrupt;
  }
  if (Buffer.size() < HeaderSize + Length)
    return Status::NeedMore;
  std::uint32_t Crc = getU32(Buffer.data() + 9);
  if (crc32(Buffer.data() + HeaderSize, Length) != Crc) {
    Poisoned = true;
    return Status::Corrupt;
  }
  Out.Type = FrameType(Type);
  Out.Payload.assign(Buffer.data() + HeaderSize, Length);
  Buffer.erase(0, HeaderSize + Length);
  return Status::Frame;
}

void FrameDecoder::reset() {
  Buffer.clear();
  Poisoned = false;
}
