//===- evalkit/CampaignScheduler.cpp - Adaptive campaign scheduling -----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//

#include "evalkit/CampaignScheduler.h"

#include "support/Json.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>

using namespace igdt;

CampaignScheduler::CampaignScheduler(ScheduleOptions Options,
                                     std::uint64_t BaseExploreUnits)
    : Opts(std::move(Options)), BaseUnits(BaseExploreUnits) {}

bool CampaignScheduler::poolActive() const {
  return Opts.BudgetPool && BaseUnits > 0;
}

void CampaignScheduler::addItem(std::size_t Index, std::string Name) {
  Item It;
  It.Index = Index;
  It.Name = std::move(Name);
  // No history: explore first, optimistically. Ties resolve to catalog
  // order, so a cold start reproduces the fixed processing order.
  It.Score = std::numeric_limits<double>::infinity();
  It.TierDistance = Opts.SolverTiers;
  Items.push_back(std::move(It));
}

std::size_t CampaignScheduler::loadWarmStart(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  std::map<std::string, std::size_t> ByName;
  for (std::size_t I = 0; I < Items.size(); ++I)
    ByName[Items[I].Name] = I;
  std::size_t Matched = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    if (!V)
      continue;
    const JsonValue *Yield = V->find("yield");
    if (!Yield)
      continue; // pre-scheduler checkpoint schema: no yield, no score
    auto It = ByName.find(V->stringOr("instruction", ""));
    if (It == ByName.end())
      continue;
    // Deterministic score only: paths per kilo-unit boosted by the
    // divergence rate. PathsPerSec is for humans (and zero whenever
    // the source campaign ran untimed), never for ordering.
    Items[It->second].Score =
        Yield->numberOr("paths_per_kunit", 0) *
        (1.0 + Yield->numberOr("divergence_rate", 0));
    ++Matched;
  }
  Stats.WarmStartEntries += Matched;
  return Matched;
}

void CampaignScheduler::finalize() {
  Planned.clear();
  Planned.reserve(Items.size());
  std::vector<std::size_t> Order(Items.size());
  for (std::size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](std::size_t A, std::size_t B) {
                     if (Items[A].Score != Items[B].Score)
                       return Items[A].Score > Items[B].Score;
                     return Items[A].Index < Items[B].Index;
                   });
  for (std::size_t I : Order)
    Planned.push_back(Items[I].Index);
  // Inversion count: pairs the priority order runs in reverse catalog
  // order. Quadratic, but the worklist is catalog-sized.
  for (std::size_t I = 0; I < Planned.size(); ++I)
    for (std::size_t J = I + 1; J < Planned.size(); ++J)
      if (Planned[I] > Planned[J])
        Stats.PriorityInversions++;
  Finalized_ = true;
}

bool CampaignScheduler::done() const {
  for (const Item &It : Items)
    if (It.State != ItemState::Accepted)
      return false;
  return true;
}

std::vector<ScheduleAssignment> CampaignScheduler::nextWave() {
  auto Collect = [&] {
    std::vector<std::size_t> Pending;
    for (std::size_t I = 0; I < Items.size(); ++I)
      if (Items[I].State == ItemState::Pending)
        Pending.push_back(I);
    std::stable_sort(Pending.begin(), Pending.end(),
                     [&](std::size_t A, std::size_t B) {
                       if (Items[A].Score != Items[B].Score)
                         return Items[A].Score > Items[B].Score;
                       return Items[A].Index < Items[B].Index;
                     });
    return Pending;
  };

  std::vector<std::size_t> Pending = Collect();
  if (Pending.empty()) {
    bool AnyStarved = false;
    for (const Item &It : Items)
      AnyStarved |= It.State == ItemState::Starved;
    if (AnyStarved) {
      runGrantRound();
      Pending = Collect();
    }
  }
  std::vector<ScheduleAssignment> Wave;
  Wave.reserve(Pending.size());
  for (std::size_t I : Pending) {
    Items[I].State = ItemState::InFlight;
    ScheduleAssignment A;
    A.Index = Items[I].Index;
    A.TierDistance = Items[I].TierDistance;
    A.ExploreUnits = Items[I].GrantUnits;
    Wave.push_back(A);
  }
  if (!Wave.empty())
    Stats.Waves++;
  return Wave;
}

std::vector<std::size_t> CampaignScheduler::takeFinalized() {
  std::vector<std::size_t> Out;
  Out.swap(Finalized);
  return Out;
}

ScheduleVerdict CampaignScheduler::report(const ScheduleAssignment &Assignment,
                                          const ScheduleFeedback &F) {
  Item *It = nullptr;
  for (Item &Candidate : Items)
    if (Candidate.Index == Assignment.Index) {
      It = &Candidate;
      break;
    }
  if (!It || It->State != ItemState::InFlight)
    return ScheduleVerdict::Accept; // defensive: unknown report is final

  // The cheap-tier acceptance proof: a run is bit-identical to full
  // strength iff nothing below gave up or went wrong. CapHits covers
  // the subtle case of a structural cap pruning a search that still
  // answered Sat (with a possibly different model than full strength).
  const bool Dirty = F.Quarantined || F.HadIncidents || F.BudgetExhausted ||
                     F.UnknownNegations > 0 || F.LadderRetries > 0 ||
                     F.CapHits > 0;
  if (It->TierDistance > 0 && Dirty) {
    It->TierDistance--;
    It->State = ItemState::Pending;
    Stats.TierEscalations++;
    Stats.DiscardedRuns++;
    Stats.DiscardedUnits += F.SpentUnits;
    return ScheduleVerdict::Retry;
  }

  if (poolActive() && !GrantRoundDone && !It->Regranted &&
      F.BudgetExhausted && !F.Quarantined) {
    It->State = ItemState::Starved;
    It->StarvedPaths = F.Paths;
    It->StarvedSpent = F.SpentUnits;
    return ScheduleVerdict::Hold;
  }

  It->State = ItemState::Accepted;
  if (F.FrontierExhausted && BaseUnits > 0 && F.SpentUnits < BaseUnits) {
    Stats.EarlyExits++;
    if (poolActive() && !GrantRoundDone && !It->Regranted) {
      std::uint64_t Refund = BaseUnits - F.SpentUnits;
      PoolUnits += Refund;
      Stats.PoolRefunds++;
      Stats.PoolRefundUnits += Refund;
    }
  }
  return ScheduleVerdict::Accept;
}

void CampaignScheduler::runGrantRound() {
  // Single deterministic round: by now every item is Accepted or
  // Starved, so the pool balance is a pure function of the record set
  // (refunds commute) and the grant order below is total.
  GrantRoundDone = true;
  std::vector<std::size_t> Starved;
  for (std::size_t I = 0; I < Items.size(); ++I)
    if (Items[I].State == ItemState::Starved)
      Starved.push_back(I);
  std::stable_sort(
      Starved.begin(), Starved.end(), [&](std::size_t A, std::size_t B) {
        // Observed yield (paths per spent unit) descending, compared
        // by cross-multiplication so ranking is exact.
        unsigned __int128 YA = (unsigned __int128)Items[A].StarvedPaths *
                               (Items[B].StarvedSpent ? Items[B].StarvedSpent : 1);
        unsigned __int128 YB = (unsigned __int128)Items[B].StarvedPaths *
                               (Items[A].StarvedSpent ? Items[A].StarvedSpent : 1);
        if (YA != YB)
          return YA > YB;
        return Items[A].Index < Items[B].Index;
      });
  std::uint64_t CapTotal =
      std::uint64_t(Opts.BudgetPoolCapFactor * double(BaseUnits));
  std::uint64_t MaxExtra = CapTotal > BaseUnits ? CapTotal - BaseUnits : 0;
  for (std::size_t I : Starved) {
    std::uint64_t Extra = std::min(PoolUnits, MaxExtra);
    if (Extra == 0) {
      // Pool drained (or capped out): the held base-budget result is
      // the final record.
      Items[I].State = ItemState::Accepted;
      Finalized.push_back(Items[I].Index);
      continue;
    }
    PoolUnits -= Extra;
    Stats.PoolGrants++;
    Stats.PoolGrantUnits += Extra;
    // The held run is superseded by the granted re-run.
    Stats.DiscardedRuns++;
    Stats.DiscardedUnits += Items[I].StarvedSpent;
    Items[I].State = ItemState::Pending;
    Items[I].Regranted = true;
    Items[I].TierDistance = 0;
    Items[I].GrantUnits = BaseUnits + Extra;
  }
}
