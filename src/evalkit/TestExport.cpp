//===- evalkit/TestExport.cpp - Rendering paths as unit tests ---------------------===//

#include "evalkit/TestExport.h"

#include "solver/TermPrinter.h"
#include "support/StringUtils.h"

using namespace igdt;

namespace {

bool pathIsReplayable(const InstructionSpec &Spec, const PathSolution &P) {
  if (!P.Curated)
    return false;
  if (P.Exit == ExitKind::InvalidFrame)
    return false;
  if (P.Exit == ExitKind::InvalidMemoryAccess &&
      Spec.Kind == InstructionKind::Bytecode)
    return false;
  return true;
}

} // namespace

std::string igdt::renderPathAsTest(const ExplorationResult &R,
                                   std::size_t PathIdx) {
  const PathSolution &P = R.Paths[PathIdx];
  const InstructionSpec &Spec = *R.Spec;
  std::string Out;

  Out += formatString("test \"%s path %zu\"\n", Spec.Name.c_str(), PathIdx);

  Out += "  given:\n";
  Out += formatString("    receiver = %s\n",
                      R.Memory->describe(P.Input.Receiver.C).c_str());
  for (std::size_t I = 0; I < P.Input.Locals.size(); ++I)
    Out += formatString("    local%zu   = %s\n", I,
                        R.Memory->describe(P.Input.Locals[I].C).c_str());
  if (P.Input.Stack.empty()) {
    Out += "    operand stack = (empty)\n";
  } else {
    Out += "    operand stack (bottom to top) =";
    for (const ConcolicValue &V : P.Input.Stack)
      Out += " " + R.Memory->describe(V.C);
    Out += "\n";
  }

  Out += "  covering path:\n";
  if (P.Constraints.empty())
    Out += "    (unconditional)\n";
  for (const BoolTerm *C : P.Constraints)
    Out += "    " + printBoolTerm(C) + "\n";

  Out += "  expect:\n";
  Out += formatString("    exit = %s", exitKindName(P.Exit));
  if (P.Exit == ExitKind::MessageSend)
    Out += formatString(" (selector #%u, %u args)", P.Selector,
                        P.SendNumArgs);
  Out += "\n";
  if ((P.Exit == ExitKind::MethodReturn || P.Exit == ExitKind::Success) &&
      P.Result.S)
    Out += formatString("    result = %s\n",
                        printObjTerm(P.Result.S).c_str());
  if (P.Exit == ExitKind::Success &&
      Spec.Kind == InstructionKind::Bytecode) {
    Out += "    operand stack =";
    if (P.Output.Stack.empty())
      Out += " (empty)";
    for (const ConcolicValue &V : P.Output.Stack)
      Out += " " + printObjTerm(V.S);
    Out += "\n";
  }
  for (const SlotStoreEffect &E : P.SlotStores)
    if (E.Object->isVar())
      Out += formatString("    %s.slot%lld = %s\n",
                          printObjTerm(E.Object).c_str(),
                          (long long)E.Index,
                          printObjTerm(E.Value.S).c_str());
  for (const ByteStoreEffect &E : P.ByteStores)
    if (E.Object->isVar())
      Out += formatString("    %s bytes[%lld..%lld) written\n",
                          printObjTerm(E.Object).c_str(),
                          (long long)E.Offset,
                          (long long)(E.Offset + E.Width));
  if (!pathIsReplayable(Spec, P))
    Out += "    (expected failure: not replayed against compilers)\n";
  return Out;
}

std::string igdt::renderInstructionTestSuite(const ExplorationResult &R) {
  std::string Out = formatString("suite \"%s\" (%zu paths, %u tests)\n\n",
                                 R.Spec->Name.c_str(), R.Paths.size(),
                                 generatedTestCount(R));
  for (std::size_t I = 0; I < R.Paths.size(); ++I) {
    Out += renderPathAsTest(R, I);
    Out += "\n";
  }
  return Out;
}

unsigned igdt::generatedTestCount(const ExplorationResult &R) {
  unsigned N = 0;
  for (const PathSolution &P : R.Paths)
    N += pathIsReplayable(*R.Spec, P) ? 1 : 0;
  return N;
}
