//===- evalkit/ProcessPool.cpp - Forked campaign worker processes --------------===//

#include "evalkit/ProcessPool.h"

#include "faults/HarnessFaults.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define IGDT_HAS_FORK 1
#include <cerrno>
#include <csignal>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define IGDT_HAS_FORK 0
#endif

using namespace igdt;

const char *igdt::workerFailureKindName(WorkerFailureKind Kind) {
  switch (Kind) {
  case WorkerFailureKind::Crash:
    return "worker-crash";
  case WorkerFailureKind::Timeout:
    return "worker-timeout";
  case WorkerFailureKind::Corruption:
    return "protocol-corruption";
  }
  return "unknown";
}

/// Coordinator-side view of one forked worker.
struct ProcessPool::Worker {
  long Pid = -1;
  /// Coordinator writes Assign/Shutdown frames here.
  int RequestFd = -1;
  /// Coordinator reads Result frames here.
  int ResponseFd = -1;
  bool Alive = false;
  bool Busy = false;
  PoolWorkItem Item;
  double AssignedAt = 0;
  /// Earliest respawn time (exponential backoff after failures).
  double RespawnAt = 0;
  /// Consecutive failures; resets on a delivered result.
  unsigned FailStreak = 0;
  FrameDecoder Decoder;
};

namespace {

double nowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if IGDT_HAS_FORK

bool writeAll(int Fd, const std::string &Bytes) {
  std::size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += std::size_t(N);
  }
  return true;
}

void reapBlocking(long Pid, int &Status) {
  while (::waitpid(pid_t(Pid), &Status, 0) < 0 && errno == EINTR) {
  }
}

#endif // IGDT_HAS_FORK

} // namespace

bool ProcessPool::available() {
#if IGDT_HAS_FORK
  // The escape hatch lets tests (and constrained deployments) force
  // the graceful in-process degradation path deterministically.
  return std::getenv("IGDT_NO_FORK") == nullptr;
#else
  return false;
#endif
}

ProcessPool::ProcessPool(ProcessPoolOptions Options, PoolItemFn ItemFn)
    : Opts(Options), Item(std::move(ItemFn)) {
  Opts.Workers = std::max(1u, Opts.Workers);
  Opts.MaxAttempts = std::max(1u, Opts.MaxAttempts);
}

ProcessPool::~ProcessPool() { shutdown(); }

#if IGDT_HAS_FORK

void ProcessPool::workerMain(int RequestFd, int ResponseFd) {
  // Single-threaded request loop; the process dies with _exit (or a
  // fault) and never returns into the forked campaign state.
  FrameDecoder Decoder;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(RequestFd, Buf, sizeof Buf);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::_exit(0);
    }
    if (N == 0)
      ::_exit(0); // coordinator is gone (shutdown or killed)
    Decoder.feed(Buf, std::size_t(N));
    for (;;) {
      WireFrame Frame;
      FrameDecoder::Status St = Decoder.next(Frame);
      if (St == FrameDecoder::Status::NeedMore)
        break;
      if (St == FrameDecoder::Status::Corrupt)
        ::_exit(83);
      if (Frame.Type == FrameType::Shutdown)
        ::_exit(0);
      if (Frame.Type != FrameType::Assign)
        ::_exit(82);
      unsigned long long Index = 0;
      unsigned StartAttempt = 1;
      unsigned Tier = 0;
      unsigned long long GrantUnits = 0;
      if (std::sscanf(Frame.Payload.c_str(), "%llu %u %u %llu", &Index,
                      &StartAttempt, &Tier, &GrantUnits) != 4)
        ::_exit(82);
      PoolWorkItem Assigned;
      Assigned.Index = std::size_t(Index);
      Assigned.StartAttempt = StartAttempt;
      Assigned.Tier = Tier;
      Assigned.GrantUnits = GrantUnits;
      PoolItemResult R;
      try {
        R = Item(Assigned);
      } catch (...) {
        // Unexpected escape from the item function; the coordinator
        // decodes the nonzero status as a worker crash.
        ::_exit(81);
      }
      if (!writeAll(ResponseFd,
                    encodeFrame(FrameType::Result, R.Payload, R.CorruptFrame)))
        ::_exit(0);
    }
  }
}

bool ProcessPool::spawnWorker(Worker &W) {
  int Req[2];
  int Resp[2];
  if (::pipe(Req) != 0)
    return false;
  if (::pipe(Resp) != 0) {
    ::close(Req[0]);
    ::close(Req[1]);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Req[0]);
    ::close(Req[1]);
    ::close(Resp[0]);
    ::close(Resp[1]);
    return false;
  }
  if (Pid == 0) {
    // Child. Close every coordinator-side descriptor — the siblings'
    // too, so no worker can keep another's pipe artificially open.
    for (Worker &Other : Workers) {
      if (Other.RequestFd >= 0)
        ::close(Other.RequestFd);
      if (Other.ResponseFd >= 0)
        ::close(Other.ResponseFd);
    }
    ::close(Req[1]);
    ::close(Resp[0]);
    setInWorkerProcess();
    workerMain(Req[0], Resp[1]);
  }
  ::close(Req[0]);
  ::close(Resp[1]);
  W.Pid = Pid;
  W.RequestFd = Req[1];
  W.ResponseFd = Resp[0];
  W.Alive = true;
  W.Busy = false;
  W.RespawnAt = 0;
  W.Decoder.reset();
  return true;
}

void ProcessPool::destroyWorker(Worker &W) {
  if (W.RequestFd >= 0)
    ::close(W.RequestFd);
  if (W.ResponseFd >= 0)
    ::close(W.ResponseFd);
  W.RequestFd = W.ResponseFd = -1;
  if (W.Alive && W.Pid > 0) {
    ::kill(pid_t(W.Pid), SIGKILL);
    int Status = 0;
    reapBlocking(W.Pid, Status);
  }
  W.Alive = false;
  W.Busy = false;
  W.Pid = -1;
}

bool ProcessPool::start() {
  if (Started)
    return true;
  if (!available())
    return false;
  // The coordinator must survive a worker dying mid-write; SIGPIPE's
  // default would kill it. Restored in shutdown().
  PrevSigPipe = std::signal(SIGPIPE, SIG_IGN);
  SigPipeSaved = PrevSigPipe != SIG_ERR;
  Started = true;
  Workers.resize(Opts.Workers);
  unsigned Alive = 0;
  for (Worker &W : Workers)
    if (spawnWorker(W))
      ++Alive;
  if (Alive == 0) {
    shutdown();
    return false;
  }
  return true;
}

std::vector<PoolWorkItem> ProcessPool::run(std::deque<PoolWorkItem> Items,
                                           const ProcessPoolHooks &Hooks) {
  auto Counter = [&](const char *Name) {
    if (Hooks.OnCounter)
      Hooks.OnCounter(Name);
  };
  auto ShouldStop = [&] { return Hooks.ShouldStop && Hooks.ShouldStop(); };

  for (Worker &W : Workers)
    if (W.Alive)
      Counter("worker.spawned");

  // Contains a failed worker: reap + decode the wait status, schedule
  // the respawn backoff, and charge the in-flight item (retry on a
  // fresh worker, or OnExhausted past the attempt limit).
  auto FailWorker = [&](Worker &W, WorkerFailureKind Kind) {
    long Pid = W.Pid;
    if (Kind != WorkerFailureKind::Crash && Pid > 0)
      ::kill(pid_t(Pid), SIGKILL);
    int Status = 0;
    if (Pid > 0)
      reapBlocking(Pid, Status);
    std::string Error;
    switch (Kind) {
    case WorkerFailureKind::Timeout:
      Error = workerTimeoutErrorText();
      break;
    case WorkerFailureKind::Corruption:
      Error = protocolCorruptionErrorText();
      break;
    case WorkerFailureKind::Crash:
      // An unsolicited SIGKILL (OOM killer) lands here too — it is a
      // crash; only the watchdog's own kill reports as a timeout.
      Error = WIFSIGNALED(Status)
                  ? workerSignalErrorText(WTERMSIG(Status))
                  : workerExitErrorText(WIFEXITED(Status)
                                            ? WEXITSTATUS(Status)
                                            : 0);
      break;
    }
    if (W.RequestFd >= 0)
      ::close(W.RequestFd);
    if (W.ResponseFd >= 0)
      ::close(W.ResponseFd);
    W.RequestFd = W.ResponseFd = -1;
    W.Alive = false;
    W.Pid = -1;
    W.Decoder.reset();
    ++W.FailStreak;
    double Backoff =
        Opts.BackoffMillis > 0
            ? Opts.BackoffMillis *
                  double(1u << std::min(W.FailStreak - 1, 6u))
            : 0;
    W.RespawnAt = nowMillis() + Backoff;
    if (!W.Busy) {
      Counter("worker.idle_deaths");
      return;
    }
    W.Busy = false;
    PoolWorkItem It = W.Item;
    unsigned Idx = unsigned(&W - Workers.data());
    if (Hooks.OnFailure)
      Hooks.OnFailure(It.Index, It.StartAttempt, Kind, Error, Idx, Pid);
    Counter(Kind == WorkerFailureKind::Crash     ? "worker.crashes"
            : Kind == WorkerFailureKind::Timeout ? "worker.timeouts"
                                                 : "worker.corrupt_frames");
    if (It.StartAttempt >= Opts.MaxAttempts) {
      Counter("worker.exhausted");
      if (Hooks.OnExhausted)
        Hooks.OnExhausted(It.Index, Opts.MaxAttempts);
    } else {
      Counter("worker.retries");
      Items.push_front({It.Index, It.StartAttempt + 1, It.Tier, It.GrantUnits});
    }
  };

  for (;;) {
    double Now = nowMillis();

    // Respawn due workers (only while there is work to justify them).
    if (!Items.empty() && !ShouldStop())
      for (Worker &W : Workers)
        if (!W.Alive && Now >= W.RespawnAt && spawnWorker(W))
          Counter("worker.respawns");

    // Assign: pull model, one item per free worker. Re-queued failures
    // sit at the front, so a stolen shard is re-dispatched first.
    for (Worker &W : Workers) {
      if (Items.empty() || ShouldStop())
        break;
      if (!W.Alive || W.Busy)
        continue;
      PoolWorkItem It = Items.front();
      std::string Req =
          formatString("%llu %u %u %llu", (unsigned long long)It.Index,
                       It.StartAttempt, It.Tier,
                       (unsigned long long)It.GrantUnits);
      if (!writeAll(W.RequestFd, encodeFrame(FrameType::Assign, Req))) {
        // Died before seeing the item: no attempt consumed.
        FailWorker(W, WorkerFailureKind::Crash);
        continue;
      }
      Items.pop_front();
      W.Busy = true;
      W.Item = It;
      W.AssignedAt = nowMillis();
      Counter("worker.assignments");
    }

    bool AnyBusy = false;
    bool AnyAlive = false;
    for (const Worker &W : Workers) {
      AnyBusy = AnyBusy || W.Busy;
      AnyAlive = AnyAlive || W.Alive;
    }
    if (!AnyBusy) {
      if (Items.empty())
        break; // drained
      if (ShouldStop())
        break; // leftover goes back to the caller
      if (!AnyAlive) {
        // Everything is dead. Workers whose backoff already elapsed
        // were respawn candidates above; if none came up and no
        // backoff is still pending, forking is refusing outright —
        // give up and let the caller degrade in-process.
        double NextRespawn = -1;
        for (const Worker &W : Workers)
          if (W.RespawnAt > Now &&
              (NextRespawn < 0 || W.RespawnAt < NextRespawn))
            NextRespawn = W.RespawnAt;
        if (NextRespawn < 0)
          break;
        ::poll(nullptr, 0,
               int(std::clamp(NextRespawn - Now, 1.0, 100.0)));
        continue;
      }
    }

    // Wait for results, deaths, watchdog deadlines or respawn times.
    std::vector<pollfd> Fds;
    std::vector<Worker *> FdOwner;
    for (Worker &W : Workers)
      if (W.Alive) {
        Fds.push_back({W.ResponseFd, POLLIN, 0});
        FdOwner.push_back(&W);
      }
    double TimeoutMs = 100; // re-check stop/watchdog at least this often
    if (Opts.DeadlineMillis > 0)
      for (const Worker &W : Workers)
        if (W.Busy)
          TimeoutMs = std::min(
              TimeoutMs, Opts.DeadlineMillis - (Now - W.AssignedAt));
    int Polled = ::poll(Fds.data(), nfds_t(Fds.size()),
                        int(std::clamp(TimeoutMs, 0.0, 100.0)));
    if (Polled > 0) {
      for (std::size_t I = 0; I < Fds.size(); ++I) {
        if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        Worker &W = *FdOwner[I];
        if (!W.Alive)
          continue; // recycled earlier in this sweep
        char Buf[65536];
        ssize_t N = ::read(W.ResponseFd, Buf, sizeof Buf);
        if (N < 0) {
          if (errno == EINTR || errno == EAGAIN)
            continue;
          FailWorker(W, WorkerFailureKind::Crash);
          continue;
        }
        if (N == 0) {
          FailWorker(W, WorkerFailureKind::Crash);
          continue;
        }
        W.Decoder.feed(Buf, std::size_t(N));
        for (;;) {
          WireFrame Frame;
          FrameDecoder::Status St = W.Decoder.next(Frame);
          if (St == FrameDecoder::Status::NeedMore)
            break;
          if (St == FrameDecoder::Status::Corrupt) {
            FailWorker(W, WorkerFailureKind::Corruption);
            break;
          }
          if (Frame.Type != FrameType::Result || !W.Busy) {
            // A response we never asked for is protocol corruption.
            FailWorker(W, WorkerFailureKind::Corruption);
            break;
          }
          PoolWorkItem It = W.Item;
          W.Busy = false;
          W.FailStreak = 0;
          Counter("worker.results");
          if (Hooks.OnResult &&
              !Hooks.OnResult(It.Index, It.StartAttempt, Frame.Payload)) {
            // Frame-valid but payload-invalid: same distrust as a CRC
            // failure. Restore the in-flight item so the failure
            // charges it, then recycle.
            W.Busy = true;
            W.Item = It;
            FailWorker(W, WorkerFailureKind::Corruption);
            break;
          }
        }
      }
    }

    // Watchdog sweep.
    if (Opts.DeadlineMillis > 0) {
      double After = nowMillis();
      for (Worker &W : Workers)
        if (W.Alive && W.Busy && After - W.AssignedAt > Opts.DeadlineMillis)
          FailWorker(W, WorkerFailureKind::Timeout);
    }
  }

  return std::vector<PoolWorkItem>(Items.begin(), Items.end());
}

void ProcessPool::shutdown() {
  for (Worker &W : Workers)
    destroyWorker(W);
  Workers.clear();
  if (SigPipeSaved) {
    std::signal(SIGPIPE, PrevSigPipe);
    SigPipeSaved = false;
  }
  Started = false;
}

#else // !IGDT_HAS_FORK

void ProcessPool::workerMain(int, int) { std::abort(); }
bool ProcessPool::spawnWorker(Worker &) { return false; }
void ProcessPool::destroyWorker(Worker &) {}
bool ProcessPool::start() { return false; }

std::vector<PoolWorkItem> ProcessPool::run(std::deque<PoolWorkItem> Items,
                                           const ProcessPoolHooks &) {
  return std::vector<PoolWorkItem>(Items.begin(), Items.end());
}

void ProcessPool::shutdown() {}

#endif // IGDT_HAS_FORK
