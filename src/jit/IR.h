//===- jit/IR.h - Cogit intermediate representation ----------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear IR shared by all four front-ends (paper Listing 2: the
/// "sequence of intermediate representation instructions" the Cogit
/// creates while abstractly interpreting byte-code). IR instructions
/// mirror the machine ISA but operate on virtual registers and symbolic
/// labels; lowering assigns machine registers (identity, pool-based or
/// linear-scan depending on the front-end) and resolves branch targets.
///
/// Virtual registers below FirstVirtualReg are *precolored*: vreg i is
/// machine register i. The RegisterAllocatingCogit emits registers from
/// FirstVirtualReg upward and runs the linear-scan allocator.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_IR_H
#define IGDT_JIT_IR_H

#include "jit/MachineCode.h"
#include "jit/Trampolines.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// Virtual register id. Values < FirstVirtualReg are precolored.
using VReg = std::uint16_t;

inline constexpr VReg FirstVirtualReg = 32;
inline constexpr VReg NoVReg = 0xFFFF;

/// Precolored vreg for machine register \p R.
inline VReg preg(MReg R) { return static_cast<VReg>(R); }

/// IR opcodes: the machine ops plus a Label pseudo-instruction.
enum class IROp : std::uint8_t {
  Label, // Target = label id
  MovRR,
  MovRI,
  Load,
  Store,
  Load8,
  Store8,
  Add,
  AddI,
  Sub,
  SubI,
  Mul,
  And,
  AndI,
  Or,
  OrI,
  Xor,
  Shl,
  ShlI,
  Sar,
  SarI,
  Quo,
  Rem,
  Cmp,
  CmpI,
  Jmp, // Target = label id
  Jcc, // Target = label id
  CallRT,
  CallTramp,
  Ret,
  Brk,
  FLoad,
  FMovI,
  FMovFF,
  FAdd,
  FSub,
  FMul,
  FDiv,
  FSqrt,
  FTruncF,
  FCvtIF,
  FTrunc,
  FCmp,
  FBitsToF,
  FBitsFromF,
  FBits32ToF,
  FBitsFromF32,
};

/// One IR instruction.
struct IRInstr {
  IROp Op;
  MCond Cond = MCond::Always;
  VReg A = NoVReg;
  VReg B = NoVReg;
  FReg FA = FReg::NoFReg;
  FReg FB = FReg::NoFReg;
  std::int64_t Imm = 0;
  std::int32_t Target = -1; // label id for Label/Jmp/Jcc
  std::uint16_t Aux = 0;
};

/// A linear IR fragment under construction.
class IRFunction {
public:
  /// Creates a new label id (attach with placeLabel).
  std::int32_t makeLabel() { return NumLabels++; }

  /// Emits a Label pseudo-instruction for \p Id at the current position.
  void placeLabel(std::int32_t Id) {
    IRInstr I;
    I.Op = IROp::Label;
    I.Target = Id;
    Code.push_back(I);
  }

  /// Allocates a fresh virtual register.
  VReg newVReg() { return NextVReg++; }

  void push(IRInstr I) { Code.push_back(I); }

  std::vector<IRInstr> Code;
  std::int32_t NumLabels = 0;
  VReg NextVReg = FirstVirtualReg;
};

/// Convenience emission helpers over an IRFunction.
class IRBuilder {
public:
  explicit IRBuilder(IRFunction &F) : F(F) {}

  std::int32_t makeLabel() { return F.makeLabel(); }
  void placeLabel(std::int32_t L) { F.placeLabel(L); }
  VReg newVReg() { return F.newVReg(); }

  void movRR(VReg A, VReg B) { emitRR(IROp::MovRR, A, B); }
  void movRI(VReg A, std::int64_t Imm) { emitRI(IROp::MovRI, A, Imm); }
  void load(VReg A, VReg Base, std::int64_t Off) {
    IRInstr I;
    I.Op = IROp::Load;
    I.A = A;
    I.B = Base;
    I.Imm = Off;
    F.push(I);
  }
  void store(VReg A, VReg Base, std::int64_t Off) {
    IRInstr I;
    I.Op = IROp::Store;
    I.A = A;
    I.B = Base;
    I.Imm = Off;
    F.push(I);
  }
  void load8(VReg A, VReg Base, std::int64_t Off) {
    IRInstr I;
    I.Op = IROp::Load8;
    I.A = A;
    I.B = Base;
    I.Imm = Off;
    F.push(I);
  }
  void store8(VReg A, VReg Base, std::int64_t Off) {
    IRInstr I;
    I.Op = IROp::Store8;
    I.A = A;
    I.B = Base;
    I.Imm = Off;
    F.push(I);
  }
  void add(VReg A, VReg B) { emitRR(IROp::Add, A, B); }
  void addI(VReg A, std::int64_t Imm) { emitRI(IROp::AddI, A, Imm); }
  void sub(VReg A, VReg B) { emitRR(IROp::Sub, A, B); }
  void subI(VReg A, std::int64_t Imm) { emitRI(IROp::SubI, A, Imm); }
  void mul(VReg A, VReg B) { emitRR(IROp::Mul, A, B); }
  void andRR(VReg A, VReg B) { emitRR(IROp::And, A, B); }
  void andI(VReg A, std::int64_t Imm) { emitRI(IROp::AndI, A, Imm); }
  void orRR(VReg A, VReg B) { emitRR(IROp::Or, A, B); }
  void orI(VReg A, std::int64_t Imm) { emitRI(IROp::OrI, A, Imm); }
  void xorRR(VReg A, VReg B) { emitRR(IROp::Xor, A, B); }
  void shl(VReg A, VReg B) { emitRR(IROp::Shl, A, B); }
  void shlI(VReg A, std::int64_t Imm) { emitRI(IROp::ShlI, A, Imm); }
  void sar(VReg A, VReg B) { emitRR(IROp::Sar, A, B); }
  void sarI(VReg A, std::int64_t Imm) { emitRI(IROp::SarI, A, Imm); }
  void quo(VReg A, VReg B) { emitRR(IROp::Quo, A, B); }
  void rem(VReg A, VReg B) { emitRR(IROp::Rem, A, B); }
  void cmp(VReg A, VReg B) { emitRR(IROp::Cmp, A, B); }
  void cmpI(VReg A, std::int64_t Imm) { emitRI(IROp::CmpI, A, Imm); }
  void jmp(std::int32_t Label) {
    IRInstr I;
    I.Op = IROp::Jmp;
    I.Target = Label;
    F.push(I);
  }
  void jcc(MCond Cond, std::int32_t Label) {
    IRInstr I;
    I.Op = IROp::Jcc;
    I.Cond = Cond;
    I.Target = Label;
    F.push(I);
  }
  void callRT(RTFunc Func) {
    IRInstr I;
    I.Op = IROp::CallRT;
    I.Aux = static_cast<std::uint16_t>(Func);
    F.push(I);
  }
  void callTramp(SelectorId Selector, unsigned NumArgs) {
    IRInstr I;
    I.Op = IROp::CallTramp;
    I.Aux = Selector;
    I.Imm = NumArgs;
    F.push(I);
  }
  void ret() {
    IRInstr I;
    I.Op = IROp::Ret;
    F.push(I);
  }
  void brk(std::uint16_t Marker) {
    IRInstr I;
    I.Op = IROp::Brk;
    I.Aux = Marker;
    F.push(I);
  }
  void fload(FReg FA, VReg Base, std::int64_t Off) {
    IRInstr I;
    I.Op = IROp::FLoad;
    I.FA = FA;
    I.B = Base;
    I.Imm = Off;
    F.push(I);
  }
  void fmovI(FReg FA, double Value) {
    IRInstr I;
    I.Op = IROp::FMovI;
    I.FA = FA;
    std::int64_t Bits;
    __builtin_memcpy(&Bits, &Value, 8);
    I.Imm = Bits;
    F.push(I);
  }
  void fmov(FReg FA, FReg FB) { emitFF(IROp::FMovFF, FA, FB); }
  void fadd(FReg FA, FReg FB) { emitFF(IROp::FAdd, FA, FB); }
  void fsub(FReg FA, FReg FB) { emitFF(IROp::FSub, FA, FB); }
  void fmul(FReg FA, FReg FB) { emitFF(IROp::FMul, FA, FB); }
  void fdiv(FReg FA, FReg FB) { emitFF(IROp::FDiv, FA, FB); }
  void fsqrt(FReg FA) { emitFF(IROp::FSqrt, FA, FReg::NoFReg); }
  void ftruncF(FReg FA) { emitFF(IROp::FTruncF, FA, FReg::NoFReg); }
  void fcvtIF(FReg FA, VReg A) {
    IRInstr I;
    I.Op = IROp::FCvtIF;
    I.FA = FA;
    I.A = A;
    F.push(I);
  }
  void ftrunc(VReg A, FReg FA) {
    IRInstr I;
    I.Op = IROp::FTrunc;
    I.A = A;
    I.FA = FA;
    F.push(I);
  }
  void fcmp(FReg FA, FReg FB) { emitFF(IROp::FCmp, FA, FB); }
  void fbitsToF(FReg FA, VReg A) {
    IRInstr I;
    I.Op = IROp::FBitsToF;
    I.FA = FA;
    I.A = A;
    F.push(I);
  }
  void fbitsFromF(VReg A, FReg FA) {
    IRInstr I;
    I.Op = IROp::FBitsFromF;
    I.A = A;
    I.FA = FA;
    F.push(I);
  }
  void fbits32ToF(FReg FA, VReg A) {
    IRInstr I;
    I.Op = IROp::FBits32ToF;
    I.FA = FA;
    I.A = A;
    F.push(I);
  }
  void fbitsFromF32(VReg A, FReg FA) {
    IRInstr I;
    I.Op = IROp::FBitsFromF32;
    I.A = A;
    I.FA = FA;
    F.push(I);
  }

private:
  void emitRR(IROp Op, VReg A, VReg B) {
    IRInstr I;
    I.Op = Op;
    I.A = A;
    I.B = B;
    F.push(I);
  }
  void emitRI(IROp Op, VReg A, std::int64_t Imm) {
    IRInstr I;
    I.Op = Op;
    I.A = A;
    I.Imm = Imm;
    F.push(I);
  }
  void emitFF(IROp Op, FReg FA, FReg FB) {
    IRInstr I;
    I.Op = Op;
    I.FA = FA;
    I.FB = FB;
    F.push(I);
  }

  IRFunction &F;
};

/// Renders the IR for debugging.
std::string printIR(const IRFunction &F);

} // namespace igdt

#endif // IGDT_JIT_IR_H
