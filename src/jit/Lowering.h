//===- jit/Lowering.h - IR to machine code --------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an IR fragment to machine code for a target description:
/// resolves labels to instruction indices, maps virtual registers to
/// machine registers (the caller provides the assignment; precolored
/// vregs map to themselves) and legalises immediates the target cannot
/// encode through the scratch register — the visible difference between
/// the x64-like and arm-like back-ends.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_LOWERING_H
#define IGDT_JIT_LOWERING_H

#include "jit/IR.h"

#include <map>

namespace igdt {

/// Lowers \p F for \p Desc. \p Assignment maps virtual registers (ids >=
/// FirstVirtualReg) to machine registers; precolored ids map implicitly.
std::vector<MInstr> lowerIR(const IRFunction &F, const MachineDesc &Desc,
                            const std::map<VReg, MReg> &Assignment = {});

} // namespace igdt

#endif // IGDT_JIT_LOWERING_H
