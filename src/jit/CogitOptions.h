//===- jit/CogitOptions.h - Compiler kinds and defect seeds --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four compilers of the evaluation (paper §4.1) and the compiled-
/// side defect seeds reproducing the paper's findings (§5.3). All seeds
/// default to the buggy behaviour the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_COGITOPTIONS_H
#define IGDT_JIT_COGITOPTIONS_H

#include <cstdint>

namespace igdt {

class TraceSink;

/// The compilers under differential test.
enum class CompilerKind : std::uint8_t {
  /// Template-based native-method (primitive) compiler.
  NativeMethod,
  /// Push/pop byte-codes map 1:1 onto machine stack operations; no
  /// static type prediction (its arithmetic is a plain send).
  SimpleStack,
  /// Production compiler: parse-time simulation stack, integers inlined
  /// (floats are not — the interpreter inlines both).
  StackToRegister,
  /// StackToRegister plus a linear-scan register allocator.
  RegisterAllocating,
};

const char *compilerKindName(CompilerKind Kind);

/// Compiled-side defect seeds.
struct CogitOptions {
  /// Paper §5.3 "Missing compiled type check": the 13 float arithmetic /
  /// comparison / truncation native methods do not check the receiver
  /// before unboxing it, so a SmallInteger receiver dereferences an
  /// unaligned address — a segmentation fault at run time.
  bool SeedFloatReceiverCheckMissing = true;

  /// Paper §5.3 "Missing functionality": the FFI accessor family was
  /// never implemented in the JIT; compiled versions are fail-stubs.
  bool SeedFFINotImplemented = true;

  /// Paper §5.3 "Behavioral difference": compiled bit-wise operations
  /// accept negative operands (treating them as unsigned words) while
  /// the interpreter falls back to a send.
  bool SeedBitOpsAcceptNegatives = true;

  /// Harness-fault injection (campaign self-tests): throw HarnessFault
  /// at compile entry, simulating a front-end crash on pathological
  /// input. Unlike the defect seeds above this is not a finding — it is
  /// a malfunction the campaign layer must contain.
  bool InjectFrontEndThrow = false;

  /// Observability sink (non-owning, may be null). Each successful
  /// compile emits one Compile event (compiler kind, unit, code bytes).
  TraceSink *Trace = nullptr;
};

} // namespace igdt

#endif // IGDT_JIT_COGITOPTIONS_H
