//===- jit/BytecodeCogit.cpp - Byte-code to machine-code front-ends ------------===//

#include "jit/BytecodeCogit.h"

#include "jit/CodeGenUtil.h"
#include "jit/LinearScan.h"
#include "jit/Lowering.h"
#include "jit/Trampolines.h"
#include "observe/TraceBus.h"
#include "support/Budget.h"
#include "support/Compiler.h"
#include "vm/Bytecodes.h"

#include <functional>
#include <map>

using namespace igdt;

const char *igdt::compilerKindName(CompilerKind Kind) {
  switch (Kind) {
  case CompilerKind::NativeMethod:
    return "Native Methods (primitives)";
  case CompilerKind::SimpleStack:
    return "Simple Stack BC Compiler";
  case CompilerKind::StackToRegister:
    return "Stack-to-Register BC Compiler";
  case CompilerKind::RegisterAllocating:
    return "Linear-Scan Allocator BC Compiler";
  }
  igdt_unreachable("unknown compiler kind");
}

namespace {

const VReg FP = preg(MReg::FP);
const VReg SP = preg(MReg::SP);
const VReg R0 = preg(MReg::R0);

/// Labels for jump-target PCs in whole-method (sequence) compilation;
/// null in single-instruction mode, where taken branches end at a
/// dedicated breakpoint instead.
using PCLabelMap = std::map<std::uint32_t, std::int32_t>;

/// How many operand-stack values the byte-code consumes.
unsigned popsOf(const DecodedBytecode &D) {
  switch (D.Op) {
  case Operation::Arithmetic:
  case Operation::IdentityEquals:
    return 2;
  case Operation::StoreLocal:
  case Operation::StoreInstVar:
  case Operation::Pop:
  case Operation::Dup:
  case Operation::JumpTrue:
  case Operation::JumpFalse:
  case Operation::ReturnTop:
    return 1;
  case Operation::Send:
    return unsigned(D.B) + 1;
  default:
    return 0;
  }
}

/// Collects the in-method jump targets of \p Method.
std::optional<PCLabelMap> jumpTargetsOf(const CompiledMethod &Method,
                                        IRFunction &F) {
  PCLabelMap Targets;
  std::uint32_t PC = 0;
  while (PC < Method.Bytecodes.size()) {
    auto D = decodeBytecode(Method.Bytecodes, PC);
    if (!D)
      return std::nullopt;
    if (D->Op == Operation::Jump || D->Op == Operation::JumpTrue ||
        D->Op == Operation::JumpFalse) {
      std::int64_t Target = std::int64_t(PC) + D->Length + D->A;
      if (Target < 0 || Target > std::int64_t(Method.Bytecodes.size()))
        return std::nullopt;
      Targets.emplace(static_cast<std::uint32_t>(Target), -1);
    }
    PC += D->Length;
  }
  for (auto &[TargetPC, Label] : Targets)
    Label = F.makeLabel();
  return Targets;
}

//===----------------------------------------------------------------------===//
// SimpleStackCogit: memory-stack code, no type prediction.
//===----------------------------------------------------------------------===//

class SimpleEmitter {
public:
  SimpleEmitter(ObjectMemory &Mem, IRFunction &F)
      : Mem(Mem), F(F), B(F), U(B) {}

  CompiledCode emit(const CompiledMethod &Method,
                    const std::vector<Oop> &InputStack);
  std::optional<CompiledCode>
  emitMethod(const CompiledMethod &Method,
             const std::vector<Oop> &InputStack);

private:
  void genOne(const CompiledMethod &Method, const DecodedBytecode &D,
              const PCLabelMap *PCLabels, std::uint32_t NextPC);
  void genPreamble(const std::vector<Oop> &InputStack) {
    const VReg T0 = preg(MReg::R4);
    for (Oop V : InputStack) {
      B.movRI(T0, static_cast<std::int64_t>(V));
      pushReg(T0);
    }
  }
  void pushReg(VReg V) {
    B.store(V, SP, 0);
    B.addI(SP, 8);
    ++MemCount;
  }
  void popReg(VReg V) {
    B.subI(SP, 8);
    B.load(V, SP, 0);
    --MemCount;
  }
  /// Branch target for a jump to byte-code \p TargetPC.
  std::int32_t takenLabel(const PCLabelMap *PCLabels,
                          std::uint32_t TargetPC) {
    if (PCLabels)
      return PCLabels->at(TargetPC);
    std::int32_t Taken = B.makeLabel();
    Deferred.push_back([this, Taken] {
      B.placeLabel(Taken);
      B.brk(MarkerJumpTaken);
    });
    return Taken;
  }

  ObjectMemory &Mem;
  IRFunction &F;
  IRBuilder B;
  CodeGenUtil U;
  int MemCount = 0;
  std::vector<std::function<void()>> Deferred;
};

void SimpleEmitter::genOne(const CompiledMethod &Method,
                           const DecodedBytecode &D,
                           const PCLabelMap *PCLabels,
                           std::uint32_t NextPC) {
  const VReg T0 = preg(MReg::R4);
  const VReg T1 = preg(MReg::R5);

  switch (D.Op) {
  case Operation::PushLocal:
    B.load(T0, FP, abi::localOffset(unsigned(D.A)));
    pushReg(T0);
    break;
  case Operation::PushLiteral:
    B.movRI(T0, static_cast<std::int64_t>(Method.Literals[D.A]));
    pushReg(T0);
    break;
  case Operation::PushInstVar:
    // Unsafe by design: no type or bounds check (paper §3.1).
    B.load(T0, FP, abi::ReceiverOffset);
    B.load(T0, T0, abi::BodyOffset + 8 * std::int64_t(D.A));
    pushReg(T0);
    break;
  case Operation::PushConstant: {
    static const int ConstInts[] = {0, 0, 0, 0, 1, 2, -1};
    Oop C = D.A == 0   ? Mem.nilObject()
            : D.A == 1 ? Mem.trueObject()
            : D.A == 2 ? Mem.falseObject()
                       : smallIntOop(ConstInts[D.A]);
    B.movRI(T0, static_cast<std::int64_t>(C));
    pushReg(T0);
    break;
  }
  case Operation::PushReceiver:
    B.load(T0, FP, abi::ReceiverOffset);
    pushReg(T0);
    break;
  case Operation::StoreLocal:
    popReg(T0);
    B.store(T0, FP, abi::localOffset(unsigned(D.A)));
    break;
  case Operation::StoreInstVar:
    popReg(T0);
    B.load(T1, FP, abi::ReceiverOffset);
    B.store(T0, T1, abi::BodyOffset + 8 * std::int64_t(D.A));
    break;
  case Operation::Pop:
    B.subI(SP, 8);
    --MemCount;
    break;
  case Operation::Dup:
    B.load(T0, SP, -8);
    pushReg(T0);
    break;
  case Operation::Arithmetic:
    // No static type prediction (paper §4.1): plain message send.
    B.callTramp(arithSelector(static_cast<ArithOp>(D.A)), 1);
    MemCount -= 1; // conceptually: two operands replaced by one result
    break;
  case Operation::IdentityEquals: {
    popReg(T1);
    popReg(T0);
    B.cmp(T0, T1);
    U.boolResult(T0, MCond::Eq, Mem.trueObject(), Mem.falseObject());
    pushReg(T0);
    break;
  }
  case Operation::Jump:
    B.jmp(takenLabel(PCLabels,
                     static_cast<std::uint32_t>(NextPC + D.A)));
    break;
  case Operation::JumpTrue:
  case Operation::JumpFalse: {
    bool OnTrue = D.Op == Operation::JumpTrue;
    std::int32_t Taken =
        takenLabel(PCLabels, static_cast<std::uint32_t>(NextPC + D.A));
    std::int32_t MustBeBool = B.makeLabel();
    popReg(T0);
    B.movRI(T1, static_cast<std::int64_t>(OnTrue ? Mem.trueObject()
                                                 : Mem.falseObject()));
    B.cmp(T0, T1);
    B.jcc(MCond::Eq, Taken);
    B.movRI(T1, static_cast<std::int64_t>(OnTrue ? Mem.falseObject()
                                                 : Mem.trueObject()));
    B.cmp(T0, T1);
    B.jcc(MCond::Ne, MustBeBool);
    // fall through to the continuation
    Deferred.push_back([this, MustBeBool, T0] {
      B.placeLabel(MustBeBool);
      // The interpreter re-pushes the value and sends #mustBeBoolean.
      B.store(T0, SP, 0);
      B.addI(SP, 8);
      B.callTramp(SelectorMustBeBoolean, 0);
    });
    break;
  }
  case Operation::Send: {
    Oop SelectorLit = Method.Literals[D.A];
    B.callTramp(static_cast<SelectorId>(smallIntValue(SelectorLit)),
                unsigned(D.B));
    MemCount -= int(D.B); // receiver+args replaced by the send result
    break;
  }
  case Operation::ReturnTop:
    popReg(R0);
    B.ret();
    break;
  case Operation::ReturnReceiver:
    B.load(R0, FP, abi::ReceiverOffset);
    B.ret();
    break;
  case Operation::ReturnConstant: {
    Oop C = D.A == 0   ? Mem.nilObject()
            : D.A == 1 ? Mem.trueObject()
                       : Mem.falseObject();
    B.movRI(R0, static_cast<std::int64_t>(C));
    B.ret();
    break;
  }
  }
}

CompiledCode SimpleEmitter::emit(const CompiledMethod &Method,
                                 const std::vector<Oop> &InputStack) {
  genPreamble(InputStack);
  auto D = decodeBytecode(Method.Bytecodes, 0);
  genOne(Method, *D, /*PCLabels=*/nullptr, D->Length);
  B.brk(MarkerFragmentEnd);
  for (auto &Emit : Deferred)
    Emit();

  CompiledCode Out;
  for (int I = 0; I < MemCount; ++I)
    Out.FinalStack.push_back(ValueLoc::onStack());
  return Out;
}

std::optional<CompiledCode>
SimpleEmitter::emitMethod(const CompiledMethod &Method,
                          const std::vector<Oop> &InputStack) {
  auto PCLabels = jumpTargetsOf(Method, F);
  if (!PCLabels)
    return std::nullopt;
  genPreamble(InputStack);
  std::uint32_t PC = 0;
  while (PC < Method.Bytecodes.size()) {
    auto It = PCLabels->find(PC);
    if (It != PCLabels->end())
      B.placeLabel(It->second);
    auto D = decodeBytecode(Method.Bytecodes, PC);
    if (!D)
      return std::nullopt;
    genOne(Method, *D, &*PCLabels, PC + D->Length);
    PC += D->Length;
  }
  auto End = PCLabels->find(PC);
  if (End != PCLabels->end())
    B.placeLabel(End->second); // jumps to the method end fall through
  B.brk(MarkerFragmentEnd);
  for (auto &Emit : Deferred)
    Emit();

  CompiledCode Out;
  // Control flow makes the static count unreliable; the tester reads the
  // live operand stack.
  Out.DynamicStack = !PCLabels->empty();
  if (!Out.DynamicStack)
    for (int I = 0; I < MemCount; ++I)
      Out.FinalStack.push_back(ValueLoc::onStack());
  return Out;
}

//===----------------------------------------------------------------------===//
// StackToRegisterCogit / RegisterAllocatingCogit: parse-time sim stack.
//===----------------------------------------------------------------------===//

/// A parse-time stack entry.
struct SimVal {
  enum class K : std::uint8_t { Const, Reg, Local, Rcvr, Mem };
  K Kind = K::Const;
  Oop C = InvalidOop;
  VReg R = NoVReg;
  std::uint32_t Index = 0;

  static SimVal constant(Oop V) { return {K::Const, V, NoVReg, 0}; }
  static SimVal inReg(VReg R) { return {K::Reg, InvalidOop, R, 0}; }
  static SimVal local(std::uint32_t I) {
    return {K::Local, InvalidOop, NoVReg, I};
  }
  static SimVal receiver() { return {K::Rcvr, InvalidOop, NoVReg, 0}; }
  static SimVal inMemory() { return {K::Mem, InvalidOop, NoVReg, 0}; }
};

class SimStackEmitter {
public:
  SimStackEmitter(ObjectMemory &Mem, IRFunction &F, bool UseVirtualRegs)
      : Mem(Mem), F(F), B(F), U(B), Virtual(UseVirtualRegs) {}

  CompiledCode emit(const CompiledMethod &Method,
                    const std::vector<Oop> &InputStack);
  std::optional<CompiledCode>
  emitMethod(const CompiledMethod &Method,
             const std::vector<Oop> &InputStack);

  /// Defect seeds threaded in by BytecodeCogit::compile.
  CogitOptions CompileOpts;

private:
  /// Allocates a value register: a fresh virtual register for the
  /// register-allocating compiler, the next parse-time pool register
  /// (R4..R8) for the stack-to-register compiler.
  VReg allocReg() {
    if (Virtual)
      return F.newVReg();
    assert(NextPool <= unsigned(MReg::R8) &&
           "parse-time pool exhausted (emitMethod flushes to prevent "
           "this)");
    return preg(static_cast<MReg>(NextPool++));
  }
  /// Transient temp for tag tests and flushes (never live across a
  /// value allocation).
  VReg tmpReg() { return Virtual ? F.newVReg() : preg(MReg::R9); }

  /// Materialises \p V into a freshly allocated register (safe to
  /// mutate). Memory entries are popped — they are only materialised in
  /// top-first order, which every caller observes.
  VReg materialize(const SimVal &V) {
    VReg R = allocReg();
    switch (V.Kind) {
    case SimVal::K::Const:
      B.movRI(R, static_cast<std::int64_t>(V.C));
      break;
    case SimVal::K::Reg:
      B.movRR(R, V.R);
      break;
    case SimVal::K::Local:
      B.load(R, FP, abi::localOffset(V.Index));
      break;
    case SimVal::K::Rcvr:
      B.load(R, FP, abi::ReceiverOffset);
      break;
    case SimVal::K::Mem:
      B.subI(SP, 8);
      B.load(R, SP, 0);
      break;
    }
    return R;
  }

  /// Emits a push of \p V onto the in-memory operand stack. Memory
  /// entries are already there.
  void flushValue(const SimVal &V) {
    if (V.Kind == SimVal::K::Mem)
      return;
    VReg T = tmpReg();
    switch (V.Kind) {
    case SimVal::K::Const:
      B.movRI(T, static_cast<std::int64_t>(V.C));
      break;
    case SimVal::K::Reg:
      T = V.R;
      break;
    case SimVal::K::Local:
      B.load(T, FP, abi::localOffset(V.Index));
      break;
    case SimVal::K::Rcvr:
      B.load(T, FP, abi::ReceiverOffset);
      break;
    case SimVal::K::Mem:
      return;
    }
    B.store(T, SP, 0);
    B.addI(SP, 8);
  }

  /// Flushes the whole parse-time stack to memory: the invariant at
  /// control-flow merge points ("ssFlush" in the real Cogit).
  void flushAll() {
    for (SimVal &V : Sim) {
      flushValue(V);
      V = SimVal::inMemory();
    }
  }

  void genOne(const CompiledMethod &Method, const DecodedBytecode &D,
              const PCLabelMap *PCLabels, std::uint32_t NextPC);
  void genArithmetic(ArithOp Op);
  void genConditionalJump(bool OnTrue, std::int32_t Taken);
  std::int32_t takenLabel(const PCLabelMap *PCLabels,
                          std::uint32_t TargetPC) {
    if (PCLabels)
      return PCLabels->at(TargetPC);
    std::int32_t Taken = B.makeLabel();
    Deferred.push_back([this, Taken] {
      B.placeLabel(Taken);
      B.brk(MarkerJumpTaken);
    });
    return Taken;
  }

  CompiledCode finish(bool Dynamic);

  ObjectMemory &Mem;
  IRFunction &F;
  IRBuilder B;
  CodeGenUtil U;
  bool Virtual;
  unsigned NextPool = unsigned(MReg::R4);
  std::vector<SimVal> Sim;
  std::vector<std::function<void()>> Deferred;
};

void SimStackEmitter::genArithmetic(ArithOp Op) {
  SimVal VA = Sim.back();
  Sim.pop_back();
  SimVal VR = Sim.back();
  Sim.pop_back();

  // Memory operands must be materialised top-first.
  VReg RA = materialize(VA);
  VReg RR = materialize(VR);

  std::int32_t Slow = B.makeLabel();
  // The fast path mutates RA/RR in place; the slow path must push the
  // *original* operand values. Non-memory operands re-materialise from
  // their source; memory operands need a pristine register copy.
  SimVal FlushR = VR;
  SimVal FlushA = VA;
  if (VR.Kind == SimVal::K::Mem) {
    VReg P = allocReg();
    B.movRR(P, RR);
    FlushR = SimVal::inReg(P);
  }
  if (VA.Kind == SimVal::K::Mem) {
    VReg P = allocReg();
    B.movRR(P, RA);
    FlushA = SimVal::inReg(P);
  }
  Deferred.push_back([this, FlushR, FlushA, Op, Slow] {
    // Slow path: flush the original operands and send (paper Listing 2's
    // "slow case first send"). Memory operands were consumed during
    // materialisation, so their pristine register copies are pushed.
    B.placeLabel(Slow);
    flushValue(FlushR);
    flushValue(FlushA);
    B.callTramp(arithSelector(Op), 1);
  });

  VReg T = tmpReg();

  // checkSmallInteger / jumpzero of the paper's Listing 2. Integer
  // arithmetic only: floats take the slow path (the optimisation
  // difference against the interpreter).
  U.checkSmallInt(RR, T, Slow);
  U.checkSmallInt(RA, T, Slow);

  auto PushBool = [&](MCond Cond) {
    VReg RD = allocReg();
    U.boolResult(RD, Cond, Mem.trueObject(), Mem.falseObject());
    Sim.push_back(SimVal::inReg(RD));
  };

  switch (Op) {
  case ArithOp::Add:
    U.untag(RR);
    U.untag(RA);
    B.add(RR, RA);
    B.jcc(MCond::Ov, Slow);
    U.checkSmallIntRange(RR, Slow);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  case ArithOp::Sub:
    U.untag(RR);
    U.untag(RA);
    B.sub(RR, RA);
    B.jcc(MCond::Ov, Slow);
    U.checkSmallIntRange(RR, Slow);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  case ArithOp::Mul:
    U.untag(RR);
    U.untag(RA);
    B.mul(RR, RA);
    B.jcc(MCond::Ov, Slow);
    U.checkSmallIntRange(RR, Slow);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  case ArithOp::Div: {
    U.untag(RR);
    U.untag(RA);
    B.cmpI(RA, 0);
    B.jcc(MCond::Eq, Slow);
    VReg T2 = allocReg();
    B.movRR(T2, RR);
    B.rem(T2, RA);
    B.cmpI(T2, 0);
    B.jcc(MCond::Ne, Slow);
    B.quo(RR, RA);
    U.checkSmallIntRange(RR, Slow);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  }
  case ArithOp::FloorDiv: {
    U.untag(RR);
    U.untag(RA);
    B.cmpI(RA, 0);
    B.jcc(MCond::Eq, Slow);
    VReg Quot = allocReg();
    // T1 dies before T2 is written inside floorDiv, so the transient
    // register serves both (keeps the parse-time pool within bounds).
    VReg T1 = tmpReg();
    VReg T2 = tmpReg();
    U.floorDiv(RR, RA, Quot, T1, T2);
    U.checkSmallIntRange(Quot, Slow);
    U.tag(Quot);
    Sim.push_back(SimVal::inReg(Quot));
    return;
  }
  case ArithOp::Mod: {
    U.untag(RR);
    U.untag(RA);
    B.cmpI(RA, 0);
    B.jcc(MCond::Eq, Slow);
    VReg Rem = allocReg();
    VReg T1 = tmpReg();
    U.floorMod(RR, RA, Rem, T1);
    U.tag(Rem);
    Sim.push_back(SimVal::inReg(Rem));
    return;
  }
  case ArithOp::Less:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Lt);
  case ArithOp::Greater:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Gt);
  case ArithOp::LessEq:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Le);
  case ArithOp::GreaterEq:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Ge);
  case ArithOp::Equal:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Eq);
  case ArithOp::NotEqual:
    U.untag(RR);
    U.untag(RA);
    B.cmp(RR, RA);
    return PushBool(MCond::Ne);
  case ArithOp::BitAnd:
  case ArithOp::BitOr:
  case ArithOp::BitXor: {
    if (!CompileOpts.SeedBitOpsAcceptNegatives) {
      // Match the fixed interpreter's negative fallback.
      B.cmpI(RR, 0);
      B.jcc(MCond::Lt, Slow);
      B.cmpI(RA, 0);
      B.jcc(MCond::Lt, Slow);
    }
    // Seeded behaviour (paper §5.3): compiled code treats operands as
    // plain words and also handles negatives, unlike the interpreter.
    U.untag(RR);
    U.untag(RA);
    if (Op == ArithOp::BitAnd)
      B.andRR(RR, RA);
    else if (Op == ArithOp::BitOr)
      B.orRR(RR, RA);
    else
      B.xorRR(RR, RA);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  }
  case ArithOp::BitShift: {
    if (!CompileOpts.SeedBitOpsAcceptNegatives) {
      B.cmpI(RR, 0);
      B.jcc(MCond::Lt, Slow);
    }
    U.untag(RR);
    U.untag(RA);
    std::int32_t RShift = B.makeLabel();
    std::int32_t Done = B.makeLabel();
    B.cmpI(RA, 0);
    B.jcc(MCond::Lt, RShift);
    B.cmpI(RA, SmallIntBits);
    B.jcc(MCond::Gt, Slow);
    B.shl(RR, RA);
    B.jcc(MCond::Ov, Slow);
    U.checkSmallIntRange(RR, Slow);
    B.jmp(Done);
    B.placeLabel(RShift);
    {
      VReg T2 = allocReg();
      B.movRI(T2, 0);
      B.sub(T2, RA);
      B.sar(RR, T2);
    }
    B.placeLabel(Done);
    U.tag(RR);
    Sim.push_back(SimVal::inReg(RR));
    return;
  }
  }
  igdt_unreachable("unhandled arithmetic op");
}

void SimStackEmitter::genConditionalJump(bool OnTrue, std::int32_t Taken) {
  SimVal V = Sim.back();
  Sim.pop_back();
  VReg R = materialize(V);
  std::int32_t MustBeBool = B.makeLabel();
  B.cmpI(R, static_cast<std::int64_t>(OnTrue ? Mem.trueObject()
                                             : Mem.falseObject()));
  B.jcc(MCond::Eq, Taken);
  B.cmpI(R, static_cast<std::int64_t>(OnTrue ? Mem.falseObject()
                                             : Mem.trueObject()));
  B.jcc(MCond::Ne, MustBeBool);
  Deferred.push_back([this, MustBeBool, R] {
    B.placeLabel(MustBeBool);
    B.store(R, SP, 0);
    B.addI(SP, 8);
    B.callTramp(SelectorMustBeBoolean, 0);
  });
}

void SimStackEmitter::genOne(const CompiledMethod &Method,
                             const DecodedBytecode &D,
                             const PCLabelMap *PCLabels,
                             std::uint32_t NextPC) {
  switch (D.Op) {
  case Operation::PushLocal:
    Sim.push_back(SimVal::local(unsigned(D.A)));
    break;
  case Operation::PushLiteral:
    Sim.push_back(SimVal::constant(Method.Literals[D.A]));
    break;
  case Operation::PushInstVar: {
    VReg R = allocReg();
    B.load(R, FP, abi::ReceiverOffset);
    B.load(R, R, abi::BodyOffset + 8 * std::int64_t(D.A)); // unsafe
    Sim.push_back(SimVal::inReg(R));
    break;
  }
  case Operation::PushConstant: {
    static const int ConstInts[] = {0, 0, 0, 0, 1, 2, -1};
    Oop C = D.A == 0   ? Mem.nilObject()
            : D.A == 1 ? Mem.trueObject()
            : D.A == 2 ? Mem.falseObject()
                       : smallIntOop(ConstInts[D.A]);
    Sim.push_back(SimVal::constant(C));
    break;
  }
  case Operation::PushReceiver:
    Sim.push_back(SimVal::receiver());
    break;
  case Operation::StoreLocal: {
    SimVal V = Sim.back();
    Sim.pop_back();
    VReg R = materialize(V);
    B.store(R, FP, abi::localOffset(unsigned(D.A)));
    break;
  }
  case Operation::StoreInstVar: {
    SimVal V = Sim.back();
    Sim.pop_back();
    VReg RV = materialize(V);
    VReg RR = allocReg();
    B.load(RR, FP, abi::ReceiverOffset);
    B.store(RV, RR, abi::BodyOffset + 8 * std::int64_t(D.A)); // unsafe
    break;
  }
  case Operation::Pop:
    // The parse-time stack absorbs the pop (paper §4.2) unless the value
    // already lives in memory.
    if (Sim.back().Kind == SimVal::K::Mem)
      B.subI(SP, 8);
    Sim.pop_back();
    break;
  case Operation::Dup:
    if (Sim.back().Kind == SimVal::K::Mem) {
      VReg R = allocReg();
      B.load(R, SP, -8);
      Sim.push_back(SimVal::inReg(R));
    } else {
      Sim.push_back(Sim.back());
    }
    break;
  case Operation::Arithmetic:
    genArithmetic(static_cast<ArithOp>(D.A));
    break;
  case Operation::IdentityEquals: {
    SimVal VA = Sim.back();
    Sim.pop_back();
    SimVal VR = Sim.back();
    Sim.pop_back();
    VReg RA = materialize(VA); // top-first for memory operands
    VReg RR = materialize(VR);
    VReg RD = allocReg();
    B.cmp(RR, RA);
    U.boolResult(RD, MCond::Eq, Mem.trueObject(), Mem.falseObject());
    Sim.push_back(SimVal::inReg(RD));
    break;
  }
  case Operation::Jump: {
    if (PCLabels)
      flushAll(); // merge-point invariant
    B.jmp(takenLabel(PCLabels, static_cast<std::uint32_t>(NextPC + D.A)));
    break;
  }
  case Operation::JumpTrue:
  case Operation::JumpFalse: {
    SimVal Cond = Sim.back();
    if (PCLabels) {
      // Flush below the condition so both successors agree on memory.
      Sim.pop_back();
      flushAll();
      Sim.push_back(Cond);
    }
    genConditionalJump(D.Op == Operation::JumpTrue,
                       takenLabel(PCLabels,
                                  static_cast<std::uint32_t>(NextPC + D.A)));
    break;
  }
  case Operation::Send: {
    // Flush the parse-time stack for the send trampoline.
    unsigned NumArgs = unsigned(D.B);
    std::size_t First = Sim.size() - NumArgs - 1;
    for (std::size_t I = First; I < Sim.size(); ++I)
      flushValue(Sim[I]);
    Sim.resize(First);
    Oop SelectorLit = Method.Literals[D.A];
    B.callTramp(static_cast<SelectorId>(smallIntValue(SelectorLit)),
                NumArgs);
    // In sequence mode execution never resumes past a send; the sim
    // stack state is irrelevant afterwards.
    break;
  }
  case Operation::ReturnTop: {
    SimVal V = Sim.back();
    Sim.pop_back();
    switch (V.Kind) {
    case SimVal::K::Const:
      B.movRI(R0, static_cast<std::int64_t>(V.C));
      break;
    case SimVal::K::Reg:
      B.movRR(R0, V.R);
      break;
    case SimVal::K::Local:
      B.load(R0, FP, abi::localOffset(V.Index));
      break;
    case SimVal::K::Rcvr:
      B.load(R0, FP, abi::ReceiverOffset);
      break;
    case SimVal::K::Mem:
      B.subI(SP, 8);
      B.load(R0, SP, 0);
      break;
    }
    B.ret();
    break;
  }
  case Operation::ReturnReceiver:
    B.load(R0, FP, abi::ReceiverOffset);
    B.ret();
    break;
  case Operation::ReturnConstant: {
    Oop C = D.A == 0   ? Mem.nilObject()
            : D.A == 1 ? Mem.trueObject()
                       : Mem.falseObject();
    B.movRI(R0, static_cast<std::int64_t>(C));
    B.ret();
    break;
  }
  }
}

CompiledCode SimStackEmitter::finish(bool Dynamic) {
  CompiledCode Out;
  Out.DynamicStack = Dynamic;
  if (Dynamic) {
    flushAll();
    B.brk(MarkerFragmentEnd);
  } else {
    B.brk(MarkerFragmentEnd);
    for (const SimVal &V : Sim) {
      switch (V.Kind) {
      case SimVal::K::Const:
        Out.FinalStack.push_back(ValueLoc::constant(V.C));
        break;
      case SimVal::K::Reg:
        Out.FinalStack.push_back(
            ValueLoc::inReg(static_cast<MReg>(V.R)));
        break;
      case SimVal::K::Local:
        Out.FinalStack.push_back(ValueLoc::local(V.Index));
        break;
      case SimVal::K::Rcvr:
        Out.FinalStack.push_back(ValueLoc::receiver());
        break;
      case SimVal::K::Mem:
        Out.FinalStack.push_back(ValueLoc::onStack());
        break;
      }
    }
  }
  for (auto &Emit : Deferred)
    Emit();
  return Out;
}

CompiledCode SimStackEmitter::emit(const CompiledMethod &Method,
                                   const std::vector<Oop> &InputStack) {
  // genPushLiteral: input values become parse-time constants — no code.
  for (Oop V : InputStack)
    Sim.push_back(SimVal::constant(V));
  auto D = decodeBytecode(Method.Bytecodes, 0);
  genOne(Method, *D, /*PCLabels=*/nullptr, D->Length);
  return finish(/*Dynamic=*/false);
}

std::optional<CompiledCode>
SimStackEmitter::emitMethod(const CompiledMethod &Method,
                            const std::vector<Oop> &InputStack) {
  auto PCLabels = jumpTargetsOf(Method, F);
  if (!PCLabels)
    return std::nullopt;
  for (Oop V : InputStack)
    Sim.push_back(SimVal::constant(V));
  std::uint32_t PC = 0;
  while (PC < Method.Bytecodes.size()) {
    auto It = PCLabels->find(PC);
    if (It != PCLabels->end()) {
      flushAll(); // merge-point invariant
      B.placeLabel(It->second);
    }
    auto D = decodeBytecode(Method.Bytecodes, PC);
    if (!D)
      return std::nullopt;
    // A statically-underflowing instruction can still be compiled: the
    // missing operands would live on the in-memory stack below the
    // compiled window (and if they do not exist at run time, this arm is
    // dynamically unreachable for the given inputs).
    while (popsOf(*D) > Sim.size())
      Sim.insert(Sim.begin(), SimVal::inMemory());
    // Register pressure across the sequence: spill the parse-time stack
    // to memory when the pool runs low (the real Cogit's ssFlush).
    if (!Virtual && NextPool + 5 > unsigned(MReg::R8) + 1) {
      flushAll();
      NextPool = unsigned(MReg::R4);
    }
    genOne(Method, *D, &*PCLabels, PC + D->Length);
    PC += D->Length;
  }
  auto End = PCLabels->find(PC);
  bool Dynamic = !PCLabels->empty();
  if (End != PCLabels->end()) {
    flushAll();
    B.placeLabel(End->second);
  }
  return finish(Dynamic);
}

} // namespace

std::optional<CompiledCode>
BytecodeCogit::compile(const CompiledMethod &Method,
                       const std::vector<Oop> &InputStack) {
  std::optional<CompiledCode> Out = compileImpl(Method, InputStack);
  if (Opts.Trace && Out) {
    TraceEvent E;
    E.Kind = TraceEventKind::Compile;
    E.Detail = compilerKindName(Kind);
    E.Aux = "bytecode";
    E.Value = Out->Code.size();
    Opts.Trace->emit(std::move(E));
  }
  return Out;
}

std::optional<CompiledCode>
BytecodeCogit::compileMethod(const CompiledMethod &Method,
                             const std::vector<Oop> &InputStack) {
  std::optional<CompiledCode> Out = compileMethodImpl(Method, InputStack);
  if (Opts.Trace && Out) {
    TraceEvent E;
    E.Kind = TraceEventKind::Compile;
    E.Detail = compilerKindName(Kind);
    E.Aux = "method";
    E.Value = Out->Code.size();
    Opts.Trace->emit(std::move(E));
  }
  return Out;
}

std::optional<CompiledCode>
BytecodeCogit::compileImpl(const CompiledMethod &Method,
                           const std::vector<Oop> &InputStack) {
  if (Opts.InjectFrontEndThrow)
    throw HarnessFault("compile",
                       "injected front-end crash while decoding bytecode");
  auto D = decodeBytecode(Method.Bytecodes, 0);
  if (!D)
    return std::nullopt;
  if (popsOf(*D) > InputStack.size())
    return std::nullopt; // invalid-frame paths are not replayed

  IRFunction F;
  CompiledCode Out;

  if (Kind == CompilerKind::SimpleStack) {
    SimpleEmitter E(Mem, F);
    Out = E.emit(Method, InputStack);
    Out.IRLength = static_cast<unsigned>(F.Code.size());
    Out.Code = lowerIR(F, Desc);
    return Out;
  }

  bool Virtual = Kind == CompilerKind::RegisterAllocating;
  SimStackEmitter E(Mem, F, Virtual);
  E.CompileOpts = Opts;
  Out = E.emit(Method, InputStack);
  Out.IRLength = static_cast<unsigned>(F.Code.size());

  if (!Virtual) {
    Out.Code = lowerIR(F, Desc);
    return Out;
  }

  AllocationResult Alloc = allocateRegistersLinearScan(F, Desc);
  Out.SpillCount = Alloc.SpillCount;
  Out.Code = lowerIR(F, Desc, Alloc.Assignment);
  // Remap virtual registers in the final-stack layout.
  for (ValueLoc &L : Out.FinalStack) {
    if (L.K != ValueLoc::Kind::Register)
      continue;
    auto V = static_cast<VReg>(L.Reg);
    if (V < FirstVirtualReg)
      continue;
    auto It = Alloc.Assignment.find(V);
    if (It != Alloc.Assignment.end()) {
      L.Reg = It->second;
    } else {
      auto SpillIt = Alloc.Spilled.find(V);
      assert(SpillIt != Alloc.Spilled.end() && "value lost in allocation");
      L = ValueLoc::spill(SpillIt->second);
    }
  }
  return Out;
}

std::optional<CompiledCode>
BytecodeCogit::compileMethodImpl(const CompiledMethod &Method,
                                 const std::vector<Oop> &InputStack) {
  if (Opts.InjectFrontEndThrow)
    throw HarnessFault("compile",
                       "injected front-end crash while decoding bytecode");
  IRFunction F;
  std::optional<CompiledCode> Out;

  if (Kind == CompilerKind::SimpleStack) {
    SimpleEmitter E(Mem, F);
    Out = E.emitMethod(Method, InputStack);
    if (!Out)
      return std::nullopt;
    Out->IRLength = static_cast<unsigned>(F.Code.size());
    Out->Code = lowerIR(F, Desc);
    return Out;
  }

  bool Virtual = Kind == CompilerKind::RegisterAllocating;
  SimStackEmitter E(Mem, F, Virtual);
  E.CompileOpts = Opts;
  Out = E.emitMethod(Method, InputStack);
  if (!Out)
    return std::nullopt;
  Out->IRLength = static_cast<unsigned>(F.Code.size());

  if (!Virtual) {
    Out->Code = lowerIR(F, Desc);
    return Out;
  }

  AllocationResult Alloc = allocateRegistersLinearScan(F, Desc);
  Out->SpillCount = Alloc.SpillCount;
  Out->Code = lowerIR(F, Desc, Alloc.Assignment);
  for (ValueLoc &L : Out->FinalStack) {
    if (L.K != ValueLoc::Kind::Register)
      continue;
    auto V = static_cast<VReg>(L.Reg);
    if (V < FirstVirtualReg)
      continue;
    auto It = Alloc.Assignment.find(V);
    if (It != Alloc.Assignment.end()) {
      L.Reg = It->second;
    } else {
      auto SpillIt = Alloc.Spilled.find(V);
      assert(SpillIt != Alloc.Spilled.end() && "value lost in allocation");
      L = ValueLoc::spill(SpillIt->second);
    }
  }
  return Out;
}
