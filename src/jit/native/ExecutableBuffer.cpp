//===- jit/native/ExecutableBuffer.cpp - W^X code memory ------------------===//

#include "jit/native/ExecutableBuffer.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define IGDT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define IGDT_HAVE_MMAP 0
#endif

using namespace igdt;

ExecutableBuffer ExecutableBuffer::make(const std::vector<std::uint8_t> &Code) {
  ExecutableBuffer B;
#if IGDT_HAVE_MMAP
  if (Code.empty())
    return B;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  std::size_t Mapped =
      (Code.size() + std::size_t(Page) - 1) & ~(std::size_t(Page) - 1);
  void *Mem = ::mmap(nullptr, Mapped, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return B;
  std::memcpy(Mem, Code.data(), Code.size());
  if (::mprotect(Mem, Mapped, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(Mem, Mapped);
    return B;
  }
  B.Base = static_cast<std::uint8_t *>(Mem);
  B.MappedSize = Mapped;
  B.CodeSize = Code.size();
#else
  (void)Code;
#endif
  return B;
}

void ExecutableBuffer::release() {
#if IGDT_HAVE_MMAP
  if (Base)
    ::munmap(Base, MappedSize);
#endif
  Base = nullptr;
  MappedSize = 0;
  CodeSize = 0;
}
