//===- jit/native/NativeEngine.cpp - Trampoline + helpers -----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
//
// The host side of the native tier: copies guest state between the
// MachineSim and a NativeContext, enters generated code, and maps the
// NativeExit back onto the simulator's MachineExit vocabulary — reusing
// the simulator's own faultExit/runtimeCall/runLoop so the subtle rules
// (missing-accessor recovery, heap allocation, fuel fallback) have
// exactly one definition.
//
// Helpers never let a C++ exception unwind through the generated frame:
// anything thrown is captured into PendingExc (status 2) and rethrown
// by the wrapper after guest state is synced back.
//
//===----------------------------------------------------------------------===//

#include "jit/native/NativeEngine.h"

#include "jit/ABI.h"
#include "jit/CompiledCode.h"
#include "jit/MachineSim.h"
#include "jit/native/NativeCode.h"
#include "jit/native/NativeContext.h"
#include "support/IntMath.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace igdt {

/// Friend of MachineSim: the only door through which the native tier
/// reaches the simulator's private state and semantics.
struct NativeEngineAccess {
  // The generated code encodes the Relation byte directly; pin the
  // correspondence with the simulator's private enum.
  static_assert(std::uint8_t(MachineSim::Rel::Less) == 0 &&
                    std::uint8_t(MachineSim::Rel::Equal) == 1 &&
                    std::uint8_t(MachineSim::Rel::Greater) == 2 &&
                    std::uint8_t(MachineSim::Rel::Unordered) == 3,
                "NativeContext::Relation encoding must match MachineSim::Rel");
  // offsetof() in NativeCodegen requires a standard-layout context.
  static_assert(std::is_standard_layout_v<NativeContext>,
                "generated code bakes in NativeContext field offsets");
  static_assert(offsetof(NativeContext, Regs) == 0 &&
                    offsetof(NativeContext, FRegs) == 128,
                "register-file bases are wired into the prologue");
  static_assert(sizeof(double) == sizeof(std::uint64_t),
                "FP registers are moved as 64-bit payloads");

  static std::optional<std::uint64_t> load64(MachineSim &Sim,
                                             std::uint64_t Addr) {
    return Sim.load64(Addr);
  }
  static bool store64(MachineSim &Sim, std::uint64_t Addr,
                      std::uint64_t Value) {
    return Sim.store64(Addr, Value);
  }
  static std::optional<std::uint8_t> load8(MachineSim &Sim,
                                           std::uint64_t Addr) {
    return Sim.load8(Addr);
  }
  static bool store8(MachineSim &Sim, std::uint64_t Addr,
                     std::uint8_t Value) {
    return Sim.store8(Addr, Value);
  }

  /// runtimeCall reads and writes the simulator's register files, so the
  /// context registers are synced in before and back out after.
  static bool runtimeCall(NativeContext &C, RTFunc Func) {
    MachineSim &Sim = *C.Sim;
    std::memcpy(Sim.Regs, C.Regs, sizeof(Sim.Regs));
    std::memcpy(Sim.FRegs, C.FRegs, sizeof(Sim.FRegs));
    bool Ok = Sim.runtimeCall(Func);
    std::memcpy(C.Regs, Sim.Regs, sizeof(Sim.Regs));
    std::memcpy(C.FRegs, Sim.FRegs, sizeof(Sim.FRegs));
    return Ok;
  }

  static MachineExit run(MachineSim &Sim, const CompiledCode &Code);
};

MachineExit NativeEngineAccess::run(MachineSim &Sim,
                                    const CompiledCode &Code) {
  SimOptions &Opts = Sim.Opts;
  bool Hit = Code.Native != nullptr &&
             Code.Native->MiscompileProbe == Opts.NativeMiscompileProbe;
  const NativeCode &N =
      nativeFor(Code, Opts.Stats, Opts.NativeMiscompileProbe);

  if (!N.valid()) {
    // Defensive: executable memory was unavailable even though the
    // capability probe passed. The authoritative loop is always there.
    if (Opts.Stats) {
      ++Opts.Stats->Runs;
      ++Opts.Stats->ReferenceRuns;
    }
    Sim.FuelRemaining = Opts.Fuel;
    MachineExit E = Sim.runLoop(Code.Code, 0);
    Sim.finishRun(E, "reference", 0);
    return E;
  }

  if (Opts.Stats) {
    ++Opts.Stats->Runs;
    ++Opts.Stats->NativeRuns;
  }

  NativeContext Ctx{};
  std::memcpy(Ctx.Regs, Sim.Regs, sizeof(Ctx.Regs));
  std::memcpy(Ctx.FRegs, Sim.FRegs, sizeof(Ctx.FRegs));
  Ctx.StackHost = Sim.Stack;
  Ctx.StackLimit8 = Sim.StackSize - 8;
  Ctx.StackLimit1 = Sim.StackSize - 1;
  Ctx.FuelRemaining = Opts.Fuel;
  Ctx.Relation = std::uint8_t(Sim.Relation);
  Ctx.OverflowFlag = Sim.Overflow ? 1 : 0;
  Ctx.Sim = &Sim;
  std::exception_ptr Pending;
  Ctx.PendingExc = &Pending;

  bool Timing = Opts.TimeRuns && Opts.Stats;
  std::chrono::steady_clock::time_point Start;
  if (Timing)
    Start = std::chrono::steady_clock::now();
  auto StopTimer = [&] {
    if (!Timing)
      return;
    Opts.Stats->RunNanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count();
    Timing = false;
  };

  N.Entry(&Ctx);

  // Guest state back into the simulator before anything can throw or
  // return: fallback and fault recovery both read it from there.
  std::memcpy(Sim.Regs, Ctx.Regs, sizeof(Ctx.Regs));
  std::memcpy(Sim.FRegs, Ctx.FRegs, sizeof(Ctx.FRegs));
  Sim.Relation = static_cast<MachineSim::Rel>(Ctx.Relation);
  Sim.Overflow = Ctx.OverflowFlag != 0;
  Sim.FuelRemaining = Ctx.FuelRemaining;
  if (Sim.Pool && Ctx.StackDirtyHigh)
    Sim.Pool->noteTouched(static_cast<std::size_t>(Ctx.StackDirtyHigh));

  if (Pending) {
    // Same observable behaviour as the simulator engines, where the
    // exception (e.g. a heap invariant failure inside a runtime call)
    // propagates out of run() with guest state current.
    StopTimer();
    std::rethrow_exception(Pending);
  }

  MachineExit E;
  switch (static_cast<NativeExit>(Ctx.ExitKind)) {
  case NativeExit::Returned:
    E.Kind = MachExitKind::Returned;
    break;
  case NativeExit::Breakpoint:
    E.Kind = MachExitKind::Breakpoint;
    E.Marker = Ctx.Marker;
    break;
  case NativeExit::TrampolineCall:
    E.Kind = MachExitKind::TrampolineCall;
    E.Selector = Ctx.Selector;
    E.NumArgs = Ctx.NumArgs;
    break;
  case NativeExit::DivideFault:
    E.Kind = MachExitKind::DivideFault;
    break;
  case NativeExit::MemoryFault:
    E = Sim.faultExit(Ctx.FaultIsFloat != 0, Ctx.FaultGP, Ctx.FaultFP,
                      Ctx.FaultAddress);
    break;
  case NativeExit::UnknownRT:
    E.Kind = MachExitKind::SimulationError;
    E.Note.format("unknown runtime function %u", Ctx.AuxInfo);
    break;
  case NativeExit::RanOffEnd:
    E.Kind = MachExitKind::SimulationError;
    E.Note = "execution ran past the end of the generated code";
    break;
  case NativeExit::FuelFallback:
    // The leader could not afford its block; finish in the reference
    // loop at the same PC with the uncharged fuel, exactly like
    // runThreaded's mid-run delegation.
    if (Opts.Stats)
      ++Opts.Stats->NativeFallbacks;
    E = Sim.runLoop(Code.Code, static_cast<std::size_t>(Ctx.FallbackPC));
    break;
  case NativeExit::HelperException:
    // Unreachable: a HelperException exit always sets PendingExc, which
    // rethrew above. Kept for exhaustiveness.
    E.Kind = MachExitKind::SimulationError;
    E.Note = "helper exception lost its exception object";
    break;
  }
  StopTimer();
  Sim.finishRun(E, "native", Hit ? 1 : 0);
  return E;
}

MachineExit runNativeTier(MachineSim &Sim, const CompiledCode &Code) {
  return NativeEngineAccess::run(Sim, Code);
}

namespace {

void setHelperFlags(NativeContext *C, std::int64_t Result, bool Ovf) {
  C->Relation = Result < 0 ? 0 : Result == 0 ? 1 : 2;
  C->OverflowFlag = Ovf ? 1 : 0;
}

} // namespace
} // namespace igdt

using igdt::NativeContext;
using igdt::NativeEngineAccess;

extern "C" int igdt_nh_load64(NativeContext *C, std::uint64_t Addr,
                              std::uint64_t *Out) {
  try {
    auto V = NativeEngineAccess::load64(*C->Sim, Addr);
    if (!V)
      return 0;
    *Out = *V;
    return 1;
  } catch (...) {
    *C->PendingExc = std::current_exception();
    return 2;
  }
}

extern "C" int igdt_nh_store64(NativeContext *C, std::uint64_t Addr,
                               std::uint64_t Value) {
  try {
    return NativeEngineAccess::store64(*C->Sim, Addr, Value) ? 1 : 0;
  } catch (...) {
    *C->PendingExc = std::current_exception();
    return 2;
  }
}

extern "C" int igdt_nh_load8(NativeContext *C, std::uint64_t Addr,
                             std::uint64_t *Out) {
  try {
    auto V = NativeEngineAccess::load8(*C->Sim, Addr);
    if (!V)
      return 0;
    *Out = *V; // zero-extended, like the simulator's Load8
    return 1;
  } catch (...) {
    *C->PendingExc = std::current_exception();
    return 2;
  }
}

extern "C" int igdt_nh_store8(NativeContext *C, std::uint64_t Addr,
                              std::uint64_t Value) {
  try {
    return NativeEngineAccess::store8(*C->Sim, Addr,
                                      static_cast<std::uint8_t>(Value))
               ? 1
               : 0;
  } catch (...) {
    *C->PendingExc = std::current_exception();
    return 2;
  }
}

extern "C" void igdt_nh_shl(NativeContext *C, std::uint32_t A,
                            std::uint32_t B) {
  auto Av = static_cast<std::int64_t>(C->Regs[A]);
  auto Amount = static_cast<std::int64_t>(C->Regs[B]);
  std::int64_t R = Amount >= 0 && Amount < 64
                       ? static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(Av) << Amount)
                       : 0;
  bool Ovf =
      Amount >= 0 && (Amount >= 64 || igdt::asr(R, Amount) != Av);
  C->Regs[A] = static_cast<std::uint64_t>(R);
  igdt::setHelperFlags(C, R, Ovf);
}

extern "C" void igdt_nh_sar(NativeContext *C, std::uint32_t A,
                            std::uint32_t B) {
  auto Av = static_cast<std::int64_t>(C->Regs[A]);
  auto Amount = static_cast<std::int64_t>(C->Regs[B]);
  std::int64_t R = igdt::asr(Av, std::max<std::int64_t>(Amount, 0));
  C->Regs[A] = static_cast<std::uint64_t>(R);
  igdt::setHelperFlags(C, R, false);
}

extern "C" int igdt_nh_quo(NativeContext *C, std::uint32_t A,
                           std::uint32_t B) {
  auto Av = static_cast<std::int64_t>(C->Regs[A]);
  auto Bv = static_cast<std::int64_t>(C->Regs[B]);
  if (Bv == 0)
    return 0;
  std::int64_t R = igdt::truncDiv(Av, Bv);
  C->Regs[A] = static_cast<std::uint64_t>(R);
  igdt::setHelperFlags(C, R, false);
  return 1;
}

extern "C" int igdt_nh_rem(NativeContext *C, std::uint32_t A,
                           std::uint32_t B) {
  auto Av = static_cast<std::int64_t>(C->Regs[A]);
  auto Bv = static_cast<std::int64_t>(C->Regs[B]);
  if (Bv == 0)
    return 0;
  std::int64_t R = Av == igdt::SatMin && Bv == -1 ? 0 : Av % Bv;
  C->Regs[A] = static_cast<std::uint64_t>(R);
  igdt::setHelperFlags(C, R, false);
  return 1;
}

extern "C" void igdt_nh_ftrunc(NativeContext *C, std::uint32_t A,
                               std::uint32_t FA) {
  double F = C->FRegs[FA];
  bool Ovf = !(F > -9.3e18 && F < 9.3e18); // NaN also overflows
  std::int64_t R = Ovf ? 0 : static_cast<std::int64_t>(std::trunc(F));
  C->Regs[A] = static_cast<std::uint64_t>(R);
  igdt::setHelperFlags(C, R, Ovf);
}

extern "C" int igdt_nh_callrt(NativeContext *C, std::uint32_t Func) {
  try {
    return NativeEngineAccess::runtimeCall(*C,
                                           static_cast<igdt::RTFunc>(Func))
               ? 1
               : 0;
  } catch (...) {
    *C->PendingExc = std::current_exception();
    return 2;
  }
}
