//===- jit/native/NativeEngine.h - Native-tier entry point ----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MachineSim-facing door into the native tier: runNativeTier
/// executes one compilation unit on real hardware and returns the same
/// MachineExit (and heap/stack/register effects) the simulator engines
/// produce. Callers must have checked nativeTierSupported() — that is
/// what MachineSim::run's degradation ladder does.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVE_NATIVEENGINE_H
#define IGDT_JIT_NATIVE_NATIVEENGINE_H

namespace igdt {

class MachineSim;
struct CompiledCode;
struct MachineExit;

/// Runs \p Code through the native x86-64 tier on behalf of \p Sim:
/// copies guest state into a NativeContext, enters the generated code
/// through the trampoline, and maps the exit back — falling back to
/// the reference switch loop mid-run when a block's fuel cannot be
/// charged, exactly as the threaded engine does.
MachineExit runNativeTier(MachineSim &Sim, const CompiledCode &Code);

} // namespace igdt

#endif // IGDT_JIT_NATIVE_NATIVEENGINE_H
