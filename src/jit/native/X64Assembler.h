//===- jit/native/X64Assembler.h - Minimal x86-64 emitter -----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough of an x86-64 assembler for the native tier's code
/// generator: straight byte emission into a vector, covering exactly
/// the instruction forms NativeCodegen uses. Memory operands are always
/// encoded as [base + disp32] (mod=10) — a few bytes larger than
/// minimal encodings, but uniform across every base register including
/// the rsp/r12 SIB and rbp/r13 disp special cases.
///
/// Register numbers are raw x86 encodings (rax=0 ... r15=15); condition
/// codes are raw tttn values for Jcc/SETcc.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVE_X64ASSEMBLER_H
#define IGDT_JIT_NATIVE_X64ASSEMBLER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace igdt {

/// Host GPR encodings.
enum HostReg : std::uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Host XMM encodings (only the scratch pair is used).
enum HostXmm : std::uint8_t { XMM0 = 0, XMM1 = 1 };

/// x86 condition codes (the tttn field of 0F 8x / 0F 9x).
enum HostCC : std::uint8_t {
  CC_O = 0x0,
  CC_NO = 0x1,
  CC_B = 0x2,  ///< unsigned <
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_S = 0x8,
  CC_NS = 0x9,
  CC_P = 0xa,
  CC_NP = 0xb,
  CC_L = 0xc, ///< signed <
  CC_GE = 0xd,
  CC_LE = 0xe,
  CC_G = 0xf, ///< signed >
};

class X64Assembler {
public:
  const std::vector<std::uint8_t> &bytes() const { return Buf; }
  std::size_t size() const { return Buf.size(); }

  /// \name Prologue/epilogue
  /// @{
  void push(std::uint8_t R);
  void pop(std::uint8_t R);
  void ret();
  /// @}

  /// \name 64-bit moves
  /// @{
  void movImm64(std::uint8_t Dst, std::uint64_t Imm); ///< movabs
  void movRR(std::uint8_t Dst, std::uint8_t Src);
  void movLoad(std::uint8_t Dst, std::uint8_t Base, std::int32_t Disp);
  void movStore(std::uint8_t Base, std::int32_t Disp, std::uint8_t Src);
  /// mov Dst, [Base + Index] (scale 1, disp32 0).
  void movLoadBI(std::uint8_t Dst, std::uint8_t Base, std::uint8_t Index);
  /// mov [Base + Index], Src.
  void movStoreBI(std::uint8_t Base, std::uint8_t Index, std::uint8_t Src);
  /// movzx Dst64, byte [Base + Index].
  void movzxByteBI(std::uint8_t Dst, std::uint8_t Base, std::uint8_t Index);
  /// mov byte [Base + Index], Src8.
  void movStoreByteBI(std::uint8_t Base, std::uint8_t Index,
                      std::uint8_t Src);
  /// mov Dst32, dword [Base + disp32] (zero-extends to 64 bits).
  void movLoad32(std::uint8_t Dst, std::uint8_t Base, std::int32_t Disp);
  /// mov byte [Base + disp32], imm8.
  void movStoreByteImm(std::uint8_t Base, std::int32_t Disp,
                       std::uint8_t Imm);
  /// mov word [Base + disp32], imm16.
  void movStoreWordImm(std::uint8_t Base, std::int32_t Disp,
                       std::uint16_t Imm);
  /// mov dword [Base + disp32], imm32.
  void movStoreDwordImm(std::uint8_t Base, std::int32_t Disp,
                        std::uint32_t Imm);
  /// mov qword [Base + disp32], imm32 (sign-extended).
  void movStoreQwordImm32(std::uint8_t Base, std::int32_t Disp,
                          std::int32_t Imm);
  /// mov r8 Dst, byte [Base + disp32].
  void movLoadByte(std::uint8_t Dst, std::uint8_t Base, std::int32_t Disp);
  /// mov byte [Base + disp32], Src8.
  void movStoreByte(std::uint8_t Base, std::int32_t Disp, std::uint8_t Src);
  /// mov Dst32, imm32 (zero-extends to 64 bits).
  void movImm32(std::uint8_t Dst, std::uint32_t Imm);
  void lea(std::uint8_t Dst, std::uint8_t Base, std::int32_t Disp);
  /// @}

  /// \name 64-bit ALU
  /// @{
  void addRR(std::uint8_t Dst, std::uint8_t Src);
  void subRR(std::uint8_t Dst, std::uint8_t Src);
  void andRR(std::uint8_t Dst, std::uint8_t Src);
  void orRR(std::uint8_t Dst, std::uint8_t Src);
  void xorRR(std::uint8_t Dst, std::uint8_t Src);
  void cmpRR(std::uint8_t Dst, std::uint8_t Src);
  void addImm32(std::uint8_t Dst, std::int32_t Imm);
  void subImm32(std::uint8_t Dst, std::int32_t Imm);
  void cmpImm32(std::uint8_t Dst, std::int32_t Imm);
  /// cmp Dst, qword [Base + disp32].
  void cmpMem(std::uint8_t Dst, std::uint8_t Base, std::int32_t Disp);
  void imulRR(std::uint8_t Dst, std::uint8_t Src);
  void testRR(std::uint8_t A, std::uint8_t B);
  /// test A32, B32 (helper-status checks: only eax's low 32 bits are
  /// defined by the C ABI).
  void test32RR(std::uint8_t A, std::uint8_t B);
  /// cmp Dst32, imm8 (sign-extended 32-bit compare).
  void cmp32Imm8(std::uint8_t Dst, std::uint8_t Imm);
  void testAlImm8(std::uint8_t Imm);
  void shlImm(std::uint8_t Dst, std::uint8_t Amount);
  void sarImm(std::uint8_t Dst, std::uint8_t Amount);
  /// cmp byte [Base + disp32], imm8.
  void cmpByteImm(std::uint8_t Base, std::int32_t Disp, std::uint8_t Imm);
  /// ALU on 8-bit registers (Relation arithmetic).
  void subRR8(std::uint8_t Dst, std::uint8_t Src);
  void addImm8(std::uint8_t Dst, std::uint8_t Imm);
  void subImm8(std::uint8_t Dst, std::uint8_t Imm);
  void cmpImm8(std::uint8_t Dst, std::uint8_t Imm);
  void movImm8(std::uint8_t Dst, std::uint8_t Imm);
  /// @}

  /// \name Flags and control flow
  /// @{
  void setcc(std::uint8_t CC, std::uint8_t Dst8);
  /// Emits jcc rel32 with a zero displacement; returns the offset of
  /// the 4-byte displacement for later patching.
  std::size_t jcc(std::uint8_t CC);
  /// Emits jmp rel32 with a zero displacement; returns the offset of
  /// the displacement.
  std::size_t jmp();
  void callReg(std::uint8_t R);
  /// Patches the rel32 at \p FixupPos to reach \p Target (both are
  /// buffer offsets; the displacement is relative to FixupPos + 4).
  void patchRel32(std::size_t FixupPos, std::size_t Target);
  /// @}

  /// \name SSE scalar double
  /// @{
  void movsdLoad(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void movsdStore(std::uint8_t Base, std::int32_t Disp, std::uint8_t Xmm);
  void addsdMem(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void subsdMem(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void mulsdMem(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void divsdMem(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void sqrtsdXX(std::uint8_t Dst, std::uint8_t Src);
  void ucomisdMem(std::uint8_t Xmm, std::uint8_t Base, std::int32_t Disp);
  void cvtsi2sd(std::uint8_t Xmm, std::uint8_t Src64);
  void cvtsd2ss(std::uint8_t Dst, std::uint8_t Src);
  void cvtss2sd(std::uint8_t Dst, std::uint8_t Src);
  void roundsd(std::uint8_t Dst, std::uint8_t Src, std::uint8_t Mode);
  void movdXmmR32(std::uint8_t Xmm, std::uint8_t Src32);
  void movdR32Xmm(std::uint8_t Dst32, std::uint8_t Xmm);
  /// @}

private:
  void byte(std::uint8_t B) { Buf.push_back(B); }
  void imm16(std::uint16_t V);
  void imm32(std::uint32_t V);
  void imm64(std::uint64_t V);
  /// REX prefix; emitted when W is set or any extended register is
  /// referenced (always emitted for W=1).
  void rex(bool W, std::uint8_t R, std::uint8_t X, std::uint8_t B);
  /// REX for 8-bit register ops: also forced for spl/bpl/sil/dil.
  void rex8(std::uint8_t R, std::uint8_t B);
  /// ModRM mod=11 register form.
  void modrmReg(std::uint8_t Reg, std::uint8_t Rm);
  /// ModRM mod=10 [base + disp32] form, with SIB when base needs one.
  void modrmMem(std::uint8_t Reg, std::uint8_t Base, std::int32_t Disp);
  /// ModRM [base + index*1] form (disp32 0).
  void modrmMemBI(std::uint8_t Reg, std::uint8_t Base, std::uint8_t Index);
  void aluRR(std::uint8_t Opcode, std::uint8_t Dst, std::uint8_t Src);
  void aluImm32(std::uint8_t Ext, std::uint8_t Dst, std::int32_t Imm);

  std::vector<std::uint8_t> Buf;
};

} // namespace igdt

#endif // IGDT_JIT_NATIVE_X64ASSEMBLER_H
