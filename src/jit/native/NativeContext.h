//===- jit/native/NativeContext.h - Guest state block for native runs -----===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one block of host memory generated code reads and writes. Guest
/// registers are memory-resident: the trampoline wrapper copies the
/// simulator's register file in before entry and back out after exit,
/// and every generated instruction addresses registers as
/// [r14 + 8*reg] / [r13 + 8*freg]. That keeps the register mapping
/// trivial (no allocator for guest->host registers) while still
/// removing all dispatch overhead — the profitable part on this ISA.
///
/// The layout is ABI between NativeCodegen (which bakes offsetof()
/// displacements into code) and NativeEngine (which owns the struct),
/// so it must stay standard-layout; static_asserts in NativeEngine.cpp
/// pin the invariants the generated code depends on.
///
/// Helper functions (extern "C", SysV) implement the operations not
/// worth inlining: heap memory accesses, register-amount shifts,
/// division, float->int truncation, and runtime calls. Status contract:
/// 1 = success, 0 = the operation's failure exit (memory fault, divide
/// fault, unknown runtime function), 2 = a C++ exception was captured
/// into PendingExc (the wrapper rethrows after syncing state — an
/// exception must never unwind through the JIT frame).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVE_NATIVECONTEXT_H
#define IGDT_JIT_NATIVE_NATIVECONTEXT_H

#include <cstdint>
#include <exception>

namespace igdt {

class MachineSim;

/// ExitKind values generated code stores before jumping to the
/// epilogue. The wrapper maps them onto MachineExit.
enum class NativeExit : std::uint32_t {
  Returned = 0,
  Breakpoint = 1,
  TrampolineCall = 2,
  DivideFault = 3,
  /// Memory fault: FaultAddress/FaultIsFloat/FaultGP/FaultFP describe
  /// the failing access; the wrapper runs the accessor-recovery logic.
  MemoryFault = 4,
  /// CallRT with an id runtimeCall does not know; AuxInfo = the id.
  UnknownRT = 5,
  /// Control ran past the end of the generated code.
  RanOffEnd = 6,
  /// A block leader could not afford its fuel charge; FallbackPC is the
  /// leader's instruction index and the wrapper finishes the run in the
  /// reference switch loop (the same mid-run fallback runThreaded
  /// performs).
  FuelFallback = 7,
  /// A helper captured a C++ exception into PendingExc.
  HelperException = 8,
};

/// Guest state block. Field order is load-bearing (see file comment).
struct NativeContext {
  std::uint64_t Regs[16];  ///< guest GP registers (r14 points here)
  double FRegs[8];         ///< guest FP registers (r13 points here)
  std::uint8_t *StackHost; ///< host base of the simulated stack (r12)
  std::uint64_t StackLimit8; ///< StackSize - 8: max offset of a 64-bit access
  std::uint64_t StackLimit1; ///< StackSize - 1: max offset of a byte access
  std::uint64_t FuelRemaining; ///< cached in rbx while native code runs
  std::uint64_t FaultAddress;  ///< stashed before every memory access
  std::uint64_t StackDirtyHigh; ///< high watermark of stack store offsets
  std::uint64_t FallbackPC;     ///< FuelFallback: leader instruction index
  std::uint32_t ExitKind;       ///< NativeExit value
  std::uint32_t AuxInfo;        ///< UnknownRT: the runtime-function id
  std::uint16_t Marker;         ///< Breakpoint marker
  std::uint16_t Selector;       ///< TrampolineCall selector
  std::uint8_t NumArgs;         ///< TrampolineCall argument count
  std::uint8_t Relation;        ///< 0 Less, 1 Equal, 2 Greater, 3 Unordered
  std::uint8_t OverflowFlag;    ///< 0 / 1
  std::uint8_t FaultIsFloat;    ///< failing access targeted an FP register
  std::uint8_t FaultGP;         ///< GP destination of the failing access
  std::uint8_t FaultFP;         ///< FP destination of the failing access
  MachineSim *Sim;              ///< for helpers that need heap/runtime
  std::exception_ptr *PendingExc; ///< helper-captured exception, if any
};

using NativeEntry = void (*)(NativeContext *);

} // namespace igdt

/// Helper entry points the generated code calls (SysV C ABI). Defined
/// in NativeEngine.cpp; NativeCodegen embeds their addresses.
extern "C" {
/// Heap-path loads/stores (the address is already known to miss the
/// stack window). Return 1/0/2 per the status contract.
int igdt_nh_load64(igdt::NativeContext *C, std::uint64_t Addr,
                   std::uint64_t *Out);
int igdt_nh_store64(igdt::NativeContext *C, std::uint64_t Addr,
                    std::uint64_t Value);
int igdt_nh_load8(igdt::NativeContext *C, std::uint64_t Addr,
                  std::uint64_t *Out);
int igdt_nh_store8(igdt::NativeContext *C, std::uint64_t Addr,
                   std::uint64_t Value);
/// Register-amount shifts (subtle overflow/clamp semantics).
void igdt_nh_shl(igdt::NativeContext *C, std::uint32_t A, std::uint32_t B);
void igdt_nh_sar(igdt::NativeContext *C, std::uint32_t A, std::uint32_t B);
/// Division; 0 = divide fault.
int igdt_nh_quo(igdt::NativeContext *C, std::uint32_t A, std::uint32_t B);
int igdt_nh_rem(igdt::NativeContext *C, std::uint32_t A, std::uint32_t B);
/// FTrunc: saturating double -> int64 with the simulator's overflow rule.
void igdt_nh_ftrunc(igdt::NativeContext *C, std::uint32_t A,
                    std::uint32_t FA);
/// CallRT: 1 ok, 0 unknown function, 2 exception captured.
int igdt_nh_callrt(igdt::NativeContext *C, std::uint32_t Func);
}

#endif // IGDT_JIT_NATIVE_NATIVECONTEXT_H
