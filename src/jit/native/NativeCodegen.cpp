//===- jit/native/NativeCodegen.cpp - MInstr -> x86-64 --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
//
// Translates one compilation unit's MInstr vector into x86-64, byte-
// equivalent in observable behaviour to the simulator engines:
//
//  - Guest registers live in the NativeContext (r14 -> GP file,
//    r13 -> FP file); rbx caches fuel, r12 the host stack base, r15 the
//    context. rax/rcx/rdx/rsi/rdi and xmm0/xmm1 are scratch.
//  - Fuel is charged per basic block at each leader, reusing the
//    PredecodedCode leader/length analysis. A leader that cannot afford
//    its block exits with FuelFallback and NO charge — the wrapper
//    finishes in the reference switch loop exactly like runThreaded.
//    Early exits (faults, terminators) refund the statically-known
//    unexecuted remainder of the block charge.
//  - Memory accesses stash the guest address, take an inline fast path
//    when it lands in the simulated stack window (bounds + alignment
//    compiled inline; no guest address ever reaches host memory
//    unchecked), and call a C++ helper for the heap path. Stack stores
//    maintain the dirty-high watermark the pooled-stack arena relies
//    on.
//  - Subtle-semantics operations (register-amount shifts, division,
//    FTrunc, CallRT) call helpers that share the simulator's C++
//    implementations, so there is exactly one definition of each
//    tricky rule.
//
//===----------------------------------------------------------------------===//

#include "jit/ABI.h"
#include "jit/CompiledCode.h"
#include "jit/MachineSim.h"
#include "jit/PredecodedCode.h"
#include "jit/native/NativeCode.h"
#include "jit/native/X64Assembler.h"

#include <cstddef>
#include <limits>

using namespace igdt;

namespace {

constexpr std::int32_t off(std::size_t O) { return std::int32_t(O); }

#define CTX_OFF(Field) off(offsetof(NativeContext, Field))

constexpr std::int32_t regDisp(MReg R) { return 8 * std::int32_t(unsigned(R)); }
constexpr std::int32_t regDisp(std::uint8_t R) { return 8 * std::int32_t(R); }
constexpr std::int32_t fregDisp(FReg R) {
  return 8 * std::int32_t(unsigned(R));
}

bool fitsInt32(std::int64_t V) {
  return V >= std::numeric_limits<std::int32_t>::min() &&
         V <= std::numeric_limits<std::int32_t>::max();
}

/// Relation byte values (must match MachineSim's private Rel enum; the
/// engine wrapper static_asserts the correspondence).
constexpr std::uint8_t RelLess = 0;
constexpr std::uint8_t RelEqual = 1;
constexpr std::uint8_t RelGreater = 2;

class Codegen {
public:
  Codegen(const CompiledCode &Unit, const PredecodedCode &P, bool Probe)
      : Code(Unit.Code), P(P), Probe(Probe) {}

  std::vector<std::uint8_t> run();

private:
  // One out-of-line cold exit. Jumps collect rel32 fixup positions.
  struct Stub {
    NativeExit Kind;
    std::uint32_t Refund = 0;
    std::uint32_t Aux = 0; // UnknownRT id / FuelFallback leader PC
    std::uint8_t IsFloat = 0, GP = 0, FP = 0;
    std::vector<std::size_t> Jumps;
  };

  std::size_t stubFor(NativeExit Kind, std::uint32_t Refund,
                      std::uint32_t Aux = 0, std::uint8_t IsFloat = 0,
                      std::uint8_t GP = 0, std::uint8_t FP = 0) {
    for (std::size_t I = 0; I < Stubs.size(); ++I) {
      const Stub &S = Stubs[I];
      if (S.Kind == Kind && S.Refund == Refund && S.Aux == Aux &&
          S.IsFloat == IsFloat && S.GP == GP && S.FP == FP)
        return I;
    }
    Stub S;
    S.Kind = Kind;
    S.Refund = Refund;
    S.Aux = Aux;
    S.IsFloat = IsFloat;
    S.GP = GP;
    S.FP = FP;
    Stubs.push_back(std::move(S));
    return Stubs.size() - 1;
  }

  std::uint32_t refundAt(std::size_t I) const {
    return BlockLen - std::uint32_t(I - BlockStart + 1);
  }

  void loadGuestReg(std::uint8_t Host, MReg R) {
    A.movLoad(Host, R14, regDisp(R));
  }
  void storeGuestReg(MReg R, std::uint8_t Host) {
    A.movStore(R14, regDisp(R), Host);
  }

  /// Relation := sign of the value in rax; clobbers rcx, rdx.
  void flagsFromResult() {
    A.testRR(RAX, RAX);
    A.setcc(CC_G, RCX);
    A.setcc(CC_S, RDX);
    A.subRR8(RCX, RDX);
    A.addImm8(RCX, 1);
    A.movStoreByte(R15, CTX_OFF(Relation), RCX);
  }

  /// OverflowFlag := OF (must run directly after the flag-setting op).
  void captureOverflow() {
    A.setcc(CC_O, RDX);
    A.movStoreByte(R15, CTX_OFF(OverflowFlag), RDX);
  }

  void clearOverflow() { A.movStoreByteImm(R15, CTX_OFF(OverflowFlag), 0); }

  /// rdi=ctx, esi=X, edx=Y, call *Helper. Returns with status in eax.
  void helperCall(const void *Helper, std::uint32_t X, std::uint32_t Y) {
    A.movRR(RDI, R15);
    A.movImm32(RSI, X);
    A.movImm32(RDX, Y);
    A.movImm64(RAX, std::uint64_t(reinterpret_cast<std::uintptr_t>(Helper)));
    A.callReg(RAX);
  }

  /// Guest address of I into rax and ctx.FaultAddress.
  void emitAddress(const MInstr &I) {
    loadGuestReg(RAX, I.B);
    if (I.Imm != 0) {
      if (fitsInt32(I.Imm)) {
        A.addImm32(RAX, std::int32_t(I.Imm));
      } else {
        A.movImm64(RCX, std::uint64_t(I.Imm));
        A.addRR(RAX, RCX);
      }
    }
    A.movStore(R15, CTX_OFF(FaultAddress), RAX);
  }

  /// Shared 3-status epilogue after a helper call: 1 falls through to
  /// the patched continuation, 0 jumps to \p FaultStub, 2 to the
  /// exception stub. Returns the fixup to patch to the continuation.
  std::size_t helperStatus(std::size_t FaultStub) {
    A.cmp32Imm8(RAX, 1);
    std::size_t Ok = A.jcc(CC_E);
    A.test32RR(RAX, RAX);
    Stubs[FaultStub].Jumps.push_back(A.jcc(CC_E));
    ExceptionJumps.push_back(A.jmp());
    return Ok;
  }

  void emitInstr(std::size_t Idx, const MInstr &I);
  void emitMemAccess(std::size_t Idx, const MInstr &I);
  void emitJcc(const MInstr &I, std::size_t Idx);
  void branchTo(std::size_t FixupPos, std::uint32_t Target);
  void emitInlineExit(std::size_t Idx, NativeExit Kind, const MInstr &I);

  X64Assembler A;
  const std::vector<MInstr> &Code;
  const PredecodedCode &P;
  bool Probe;

  std::vector<std::size_t> InstrOff;
  struct BranchFixup {
    std::size_t Pos;
    std::uint32_t Target;
  };
  std::vector<BranchFixup> Branches;
  std::vector<Stub> Stubs;
  std::vector<std::size_t> ExceptionJumps;
  std::vector<std::size_t> RanOffEndJumps;
  std::vector<std::size_t> EpilogueJumps;
  std::size_t BlockStart = 0;
  std::uint32_t BlockLen = 1;
};

void Codegen::branchTo(std::size_t FixupPos, std::uint32_t Target) {
  if (Target < Code.size())
    Branches.push_back({FixupPos, Target});
  else
    RanOffEndJumps.push_back(FixupPos);
}

void Codegen::emitInlineExit(std::size_t Idx, NativeExit Kind,
                             const MInstr &I) {
  std::uint32_t Refund = refundAt(Idx);
  if (Refund)
    A.addImm32(RBX, std::int32_t(Refund));
  A.movStoreDwordImm(R15, CTX_OFF(ExitKind), std::uint32_t(Kind));
  switch (Kind) {
  case NativeExit::Breakpoint:
    A.movStoreWordImm(R15, CTX_OFF(Marker), I.Aux);
    break;
  case NativeExit::TrampolineCall:
    A.movStoreWordImm(R15, CTX_OFF(Selector), I.Aux);
    A.movStoreByteImm(R15, CTX_OFF(NumArgs), std::uint8_t(I.Imm));
    break;
  default:
    break;
  }
  EpilogueJumps.push_back(A.jmp());
}

void Codegen::emitJcc(const MInstr &I, std::size_t Idx) {
  (void)Idx;
  if (I.Cond == MCond::Always) {
    branchTo(A.jmp(), I.Target);
    return;
  }
  std::size_t Fix = 0;
  switch (I.Cond) {
  case MCond::Eq:
    A.cmpByteImm(R15, CTX_OFF(Relation), RelEqual);
    Fix = A.jcc(CC_E);
    break;
  case MCond::Ne:
    // Unordered compares not-equal, matching condHolds.
    A.cmpByteImm(R15, CTX_OFF(Relation), RelEqual);
    Fix = A.jcc(CC_NE);
    break;
  case MCond::Lt:
    A.cmpByteImm(R15, CTX_OFF(Relation), RelLess);
    Fix = A.jcc(CC_E);
    break;
  case MCond::Le:
    // Less(0) or Equal(1); Greater(2)/Unordered(3) fall through.
    A.cmpByteImm(R15, CTX_OFF(Relation), RelEqual);
    Fix = A.jcc(CC_BE);
    break;
  case MCond::Gt:
    A.cmpByteImm(R15, CTX_OFF(Relation), RelGreater);
    Fix = A.jcc(CC_E);
    break;
  case MCond::Ge:
    // Equal(1) or Greater(2): (Relation - 1) <= 1 unsigned.
    A.movLoadByte(RAX, R15, CTX_OFF(Relation));
    A.subImm8(RAX, 1);
    A.cmpImm8(RAX, 1);
    Fix = A.jcc(CC_BE);
    break;
  case MCond::Ov:
    A.cmpByteImm(R15, CTX_OFF(OverflowFlag), 0);
    Fix = A.jcc(CC_NE);
    break;
  case MCond::NoOv:
    A.cmpByteImm(R15, CTX_OFF(OverflowFlag), 0);
    Fix = A.jcc(CC_E);
    break;
  case MCond::Always:
    return; // handled above
  }
  branchTo(Fix, I.Target);
}

void Codegen::emitMemAccess(std::size_t Idx, const MInstr &I) {
  bool IsFLoad = I.Op == MOp::FLoad;
  bool Is64 = I.Op == MOp::Load || I.Op == MOp::Store || IsFLoad;
  bool IsStore = I.Op == MOp::Store || I.Op == MOp::Store8;
  std::size_t FaultStub =
      stubFor(NativeExit::MemoryFault, refundAt(Idx), 0, IsFLoad,
              std::uint8_t(unsigned(I.A)), std::uint8_t(unsigned(I.FA)));

  emitAddress(I); // rax = guest address, stashed
  A.movRR(RCX, RAX);
  A.subImm32(RCX, std::int32_t(abi::StackBase));
  A.cmpMem(RCX, R15,
           Is64 ? CTX_OFF(StackLimit8) : CTX_OFF(StackLimit1));
  std::size_t ToHeap = A.jcc(CC_A);

  // -- stack fast path: rcx = in-window offset.
  if (Is64) {
    A.testAlImm8(7);
    Stubs[FaultStub].Jumps.push_back(A.jcc(CC_NE)); // misaligned
  }
  std::vector<std::size_t> Done;
  switch (I.Op) {
  case MOp::Load:
    A.movLoadBI(RDX, R12, RCX);
    storeGuestReg(I.A, RDX);
    break;
  case MOp::FLoad:
    A.movLoadBI(RDX, R12, RCX);
    A.movStore(R13, fregDisp(I.FA), RDX);
    break;
  case MOp::Load8:
    A.movzxByteBI(RDX, R12, RCX);
    storeGuestReg(I.A, RDX);
    break;
  case MOp::Store:
  case MOp::Store8: {
    loadGuestReg(RDX, I.A);
    if (Is64)
      A.movStoreBI(R12, RCX, RDX);
    else
      A.movStoreByteBI(R12, RCX, RDX);
    // Dirty-high watermark: end offset of this store.
    A.lea(RDX, RCX, Is64 ? 8 : 1);
    A.cmpMem(RDX, R15, CTX_OFF(StackDirtyHigh));
    std::size_t Skip = A.jcc(CC_BE);
    A.movStore(R15, CTX_OFF(StackDirtyHigh), RDX);
    A.patchRel32(Skip, A.size());
    break;
  }
  default:
    break;
  }
  Done.push_back(A.jmp());

  // -- heap path: helper carries the simulator's heap semantics.
  A.patchRel32(ToHeap, A.size());
  const void *Helper = nullptr;
  if (IsStore) {
    A.movRR(RDI, R15);
    A.movRR(RSI, RAX);
    loadGuestReg(RDX, I.A);
    Helper = Is64 ? reinterpret_cast<const void *>(&igdt_nh_store64)
                  : reinterpret_cast<const void *>(&igdt_nh_store8);
  } else {
    A.movRR(RDI, R15);
    A.movRR(RSI, RAX);
    if (IsFLoad)
      A.lea(RDX, R13, fregDisp(I.FA));
    else
      A.lea(RDX, R14, regDisp(I.A));
    Helper = Is64 ? reinterpret_cast<const void *>(&igdt_nh_load64)
                  : reinterpret_cast<const void *>(&igdt_nh_load8);
  }
  A.movImm64(RAX, std::uint64_t(reinterpret_cast<std::uintptr_t>(Helper)));
  A.callReg(RAX);
  Done.push_back(helperStatus(FaultStub));

  for (std::size_t Fix : Done)
    A.patchRel32(Fix, A.size());
}

void Codegen::emitInstr(std::size_t Idx, const MInstr &I) {
  switch (I.Op) {
  case MOp::MovRR:
    loadGuestReg(RAX, I.B);
    storeGuestReg(I.A, RAX);
    break;
  case MOp::MovRI:
    if (fitsInt32(I.Imm)) {
      A.movStoreQwordImm32(R14, regDisp(I.A), std::int32_t(I.Imm));
    } else {
      A.movImm64(RAX, std::uint64_t(I.Imm));
      storeGuestReg(I.A, RAX);
    }
    break;

  case MOp::Load:
  case MOp::Store:
  case MOp::Load8:
  case MOp::Store8:
  case MOp::FLoad:
    emitMemAccess(Idx, I);
    break;

  case MOp::Add:
  case MOp::AddI: {
    loadGuestReg(RAX, I.A);
    if (I.Op == MOp::Add) {
      loadGuestReg(RCX, I.B);
      A.addRR(RAX, RCX);
    } else {
      // The deliberate miscompilation probe: AddI adds Imm+1. Detected
      // by --cross-engine-check, never shipped in real configurations.
      std::int64_t Imm =
          Probe ? std::int64_t(std::uint64_t(I.Imm) + 1) : I.Imm;
      if (fitsInt32(Imm)) {
        A.addImm32(RAX, std::int32_t(Imm));
      } else {
        A.movImm64(RCX, std::uint64_t(Imm));
        A.addRR(RAX, RCX);
      }
    }
    captureOverflow();
    storeGuestReg(I.A, RAX);
    flagsFromResult();
    break;
  }
  case MOp::Sub:
  case MOp::SubI: {
    loadGuestReg(RAX, I.A);
    if (I.Op == MOp::Sub) {
      loadGuestReg(RCX, I.B);
      A.subRR(RAX, RCX);
    } else if (fitsInt32(I.Imm)) {
      A.subImm32(RAX, std::int32_t(I.Imm));
    } else {
      A.movImm64(RCX, std::uint64_t(I.Imm));
      A.subRR(RAX, RCX);
    }
    captureOverflow();
    storeGuestReg(I.A, RAX);
    flagsFromResult();
    break;
  }
  case MOp::Mul:
    loadGuestReg(RAX, I.A);
    loadGuestReg(RCX, I.B);
    A.imulRR(RAX, RCX);
    captureOverflow();
    storeGuestReg(I.A, RAX);
    flagsFromResult();
    break;

  case MOp::And:
  case MOp::AndI:
  case MOp::Or:
  case MOp::OrI:
  case MOp::Xor: {
    loadGuestReg(RAX, I.A);
    bool IsImm = I.Op == MOp::AndI || I.Op == MOp::OrI;
    if (IsImm)
      A.movImm64(RCX, std::uint64_t(I.Imm));
    else
      loadGuestReg(RCX, I.B);
    if (I.Op == MOp::And || I.Op == MOp::AndI)
      A.andRR(RAX, RCX);
    else if (I.Op == MOp::Or || I.Op == MOp::OrI)
      A.orRR(RAX, RCX);
    else
      A.xorRR(RAX, RCX);
    storeGuestReg(I.A, RAX);
    clearOverflow();
    flagsFromResult();
    break;
  }

  case MOp::Shl:
    helperCall(reinterpret_cast<const void *>(&igdt_nh_shl),
               unsigned(I.A), unsigned(I.B));
    break;
  case MOp::Sar:
    helperCall(reinterpret_cast<const void *>(&igdt_nh_sar),
               unsigned(I.A), unsigned(I.B));
    break;

  case MOp::ShlI: {
    std::int64_t Amt = I.Imm;
    if (Amt < 0) {
      // R = 0, Ovf = false, Relation = Equal.
      A.movStoreQwordImm32(R14, regDisp(I.A), 0);
      clearOverflow();
      A.movStoreByteImm(R15, CTX_OFF(Relation), RelEqual);
    } else if (Amt >= 64) {
      A.movStoreQwordImm32(R14, regDisp(I.A), 0);
      A.movStoreByteImm(R15, CTX_OFF(OverflowFlag), 1);
      A.movStoreByteImm(R15, CTX_OFF(Relation), RelEqual);
    } else if (Amt == 0) {
      loadGuestReg(RAX, I.A);
      clearOverflow();
      flagsFromResult();
    } else {
      loadGuestReg(RAX, I.A);
      A.movRR(RSI, RAX);
      A.shlImm(RAX, std::uint8_t(Amt));
      // Overflow when shifting back does not round-trip.
      A.movRR(RDX, RAX);
      A.sarImm(RDX, std::uint8_t(Amt));
      A.cmpRR(RDX, RSI);
      A.setcc(CC_NE, RDX);
      A.movStoreByte(R15, CTX_OFF(OverflowFlag), RDX);
      storeGuestReg(I.A, RAX);
      flagsFromResult();
    }
    break;
  }
  case MOp::SarI: {
    std::int64_t Amt = I.Imm < 0 ? 0 : I.Imm;
    std::uint8_t K = Amt >= 63 ? 63 : std::uint8_t(Amt);
    loadGuestReg(RAX, I.A);
    if (K)
      A.sarImm(RAX, K);
    storeGuestReg(I.A, RAX);
    clearOverflow();
    flagsFromResult();
    break;
  }

  case MOp::Quo:
  case MOp::Rem: {
    std::size_t DivStub = stubFor(NativeExit::DivideFault, refundAt(Idx));
    helperCall(I.Op == MOp::Quo
                   ? reinterpret_cast<const void *>(&igdt_nh_quo)
                   : reinterpret_cast<const void *>(&igdt_nh_rem),
               unsigned(I.A), unsigned(I.B));
    A.test32RR(RAX, RAX);
    Stubs[DivStub].Jumps.push_back(A.jcc(CC_E));
    break;
  }

  case MOp::Cmp:
  case MOp::CmpI: {
    loadGuestReg(RAX, I.A);
    if (I.Op == MOp::Cmp) {
      loadGuestReg(RCX, I.B);
      A.cmpRR(RAX, RCX);
    } else if (fitsInt32(I.Imm)) {
      A.cmpImm32(RAX, std::int32_t(I.Imm));
    } else {
      A.movImm64(RCX, std::uint64_t(I.Imm));
      A.cmpRR(RAX, RCX);
    }
    A.setcc(CC_G, RCX);
    A.setcc(CC_L, RDX);
    A.subRR8(RCX, RDX);
    A.addImm8(RCX, 1);
    A.movStoreByte(R15, CTX_OFF(Relation), RCX);
    clearOverflow();
    break;
  }

  case MOp::Jmp:
    branchTo(A.jmp(), I.Target);
    break;
  case MOp::Jcc:
    emitJcc(I, Idx);
    break;

  case MOp::CallRT: {
    std::size_t UnknownStub =
        stubFor(NativeExit::UnknownRT, refundAt(Idx), I.Aux);
    A.movRR(RDI, R15);
    A.movImm32(RSI, I.Aux);
    A.movImm64(RAX, std::uint64_t(reinterpret_cast<std::uintptr_t>(
                        &igdt_nh_callrt)));
    A.callReg(RAX);
    std::size_t Ok = helperStatus(UnknownStub);
    A.patchRel32(Ok, A.size());
    break;
  }

  case MOp::CallTramp:
    emitInlineExit(Idx, NativeExit::TrampolineCall, I);
    break;
  case MOp::Ret:
    emitInlineExit(Idx, NativeExit::Returned, I);
    break;
  case MOp::Brk:
    emitInlineExit(Idx, NativeExit::Breakpoint, I);
    break;

  case MOp::FMovI:
    A.movImm64(RAX, std::uint64_t(I.Imm)); // double bits
    A.movStore(R13, fregDisp(I.FA), RAX);
    break;
  case MOp::FMovFF:
    A.movLoad(RAX, R13, fregDisp(I.FB));
    A.movStore(R13, fregDisp(I.FA), RAX);
    break;
  case MOp::FAdd:
  case MOp::FSub:
  case MOp::FMul:
  case MOp::FDiv:
    A.movsdLoad(XMM0, R13, fregDisp(I.FA));
    if (I.Op == MOp::FAdd)
      A.addsdMem(XMM0, R13, fregDisp(I.FB));
    else if (I.Op == MOp::FSub)
      A.subsdMem(XMM0, R13, fregDisp(I.FB));
    else if (I.Op == MOp::FMul)
      A.mulsdMem(XMM0, R13, fregDisp(I.FB));
    else
      A.divsdMem(XMM0, R13, fregDisp(I.FB));
    A.movsdStore(R13, fregDisp(I.FA), XMM0);
    break;
  case MOp::FSqrt:
    A.movsdLoad(XMM0, R13, fregDisp(I.FA));
    A.sqrtsdXX(XMM0, XMM0);
    A.movsdStore(R13, fregDisp(I.FA), XMM0);
    break;
  case MOp::FTruncF:
    A.movsdLoad(XMM0, R13, fregDisp(I.FA));
    A.roundsd(XMM0, XMM0, 0x0B); // trunc, suppress precision exceptions
    A.movsdStore(R13, fregDisp(I.FA), XMM0);
    break;
  case MOp::FCvtIF:
    loadGuestReg(RAX, I.A);
    A.cvtsi2sd(XMM0, RAX);
    A.movsdStore(R13, fregDisp(I.FA), XMM0);
    break;
  case MOp::FTrunc:
    helperCall(reinterpret_cast<const void *>(&igdt_nh_ftrunc),
               unsigned(I.A), unsigned(I.FA));
    break;
  case MOp::FCmp: {
    A.movsdLoad(XMM0, R13, fregDisp(I.FA));
    A.ucomisdMem(XMM0, R13, fregDisp(I.FB));
    // PF -> Unordered, A -> Greater, B -> Less, else Equal.
    std::vector<std::size_t> Ends;
    A.movImm8(RCX, 3);
    Ends.push_back(A.jcc(CC_P));
    A.movImm8(RCX, RelGreater);
    Ends.push_back(A.jcc(CC_A));
    A.movImm8(RCX, RelLess);
    Ends.push_back(A.jcc(CC_B));
    A.movImm8(RCX, RelEqual);
    for (std::size_t Fix : Ends)
      A.patchRel32(Fix, A.size());
    A.movStoreByte(R15, CTX_OFF(Relation), RCX);
    clearOverflow();
    break;
  }
  case MOp::FBitsToF:
    loadGuestReg(RAX, I.A);
    A.movStore(R13, fregDisp(I.FA), RAX);
    break;
  case MOp::FBitsFromF:
    A.movLoad(RAX, R13, fregDisp(I.FA));
    storeGuestReg(I.A, RAX);
    break;
  case MOp::FBits32ToF:
    A.movLoad32(RAX, R14, regDisp(I.A));
    A.movdXmmR32(XMM0, RAX);
    A.cvtss2sd(XMM0, XMM0);
    A.movsdStore(R13, fregDisp(I.FA), XMM0);
    break;
  case MOp::FBitsFromF32:
    A.movsdLoad(XMM0, R13, fregDisp(I.FA));
    A.cvtsd2ss(XMM1, XMM0);
    A.movdR32Xmm(RAX, XMM1); // zero-extends into rax
    storeGuestReg(I.A, RAX);
    break;
  }
}

std::vector<std::uint8_t> Codegen::run() {
  const std::size_t N = Code.size();
  InstrOff.resize(N, 0);

  // Prologue: save callee-saved hosts, bind the context registers.
  // After the five pushes rsp is 16-byte aligned, so every helper call
  // site in the body is correctly aligned for the SysV ABI.
  A.push(RBX);
  A.push(R12);
  A.push(R13);
  A.push(R14);
  A.push(R15);
  A.movRR(R15, RDI);
  A.lea(R14, R15, CTX_OFF(Regs));
  A.lea(R13, R15, CTX_OFF(FRegs));
  A.movLoad(R12, R15, CTX_OFF(StackHost));
  A.movLoad(RBX, R15, CTX_OFF(FuelRemaining));

  for (std::size_t Idx = 0; Idx < N; ++Idx) {
    InstrOff[Idx] = A.size();
    const MInstr &I = Code[Idx];
    if (std::uint32_t BL = P.Instrs[Idx].BlockLen) {
      BlockStart = Idx;
      BlockLen = BL;
      // A leader that cannot afford its whole block exits without
      // charging; the wrapper hands the tail to the reference loop.
      std::size_t FuelStub =
          stubFor(NativeExit::FuelFallback, 0, std::uint32_t(Idx));
      A.cmpImm32(RBX, std::int32_t(BL));
      Stubs[FuelStub].Jumps.push_back(A.jcc(CC_B));
      A.subImm32(RBX, std::int32_t(BL));
    }
    emitInstr(Idx, I);
  }
  // Falling past the last instruction is a code-generation bug, same
  // as the reference loop's while-condition failure.
  RanOffEndJumps.push_back(A.jmp());

  // Cold exits.
  for (Stub &S : Stubs) {
    std::size_t Here = A.size();
    for (std::size_t Fix : S.Jumps)
      A.patchRel32(Fix, Here);
    if (S.Refund)
      A.addImm32(RBX, std::int32_t(S.Refund));
    A.movStoreDwordImm(R15, CTX_OFF(ExitKind), std::uint32_t(S.Kind));
    switch (S.Kind) {
    case NativeExit::MemoryFault:
      A.movStoreByteImm(R15, CTX_OFF(FaultIsFloat), S.IsFloat);
      A.movStoreByteImm(R15, CTX_OFF(FaultGP), S.GP);
      A.movStoreByteImm(R15, CTX_OFF(FaultFP), S.FP);
      break;
    case NativeExit::UnknownRT:
      A.movStoreDwordImm(R15, CTX_OFF(AuxInfo), S.Aux);
      break;
    case NativeExit::FuelFallback:
      // Wrapper zero-initialises FallbackPC; a dword store suffices.
      A.movStoreDwordImm(R15, CTX_OFF(FallbackPC), S.Aux);
      break;
    default:
      break;
    }
    EpilogueJumps.push_back(A.jmp());
  }

  {
    std::size_t Here = A.size();
    for (std::size_t Fix : RanOffEndJumps)
      A.patchRel32(Fix, Here);
    A.movStoreDwordImm(R15, CTX_OFF(ExitKind),
                       std::uint32_t(NativeExit::RanOffEnd));
    EpilogueJumps.push_back(A.jmp());
  }
  {
    std::size_t Here = A.size();
    for (std::size_t Fix : ExceptionJumps)
      A.patchRel32(Fix, Here);
    A.movStoreDwordImm(R15, CTX_OFF(ExitKind),
                       std::uint32_t(NativeExit::HelperException));
    // fall through to the epilogue
  }

  // Epilogue: publish fuel, restore hosts.
  std::size_t Epilogue = A.size();
  for (std::size_t Fix : EpilogueJumps)
    A.patchRel32(Fix, Epilogue);
  A.movStore(R15, CTX_OFF(FuelRemaining), RBX);
  A.pop(R15);
  A.pop(R14);
  A.pop(R13);
  A.pop(R12);
  A.pop(RBX);
  A.ret();

  // Branch targets are instruction leaders emitted above.
  for (const BranchFixup &B : Branches)
    A.patchRel32(B.Pos, InstrOff[B.Target]);

  return A.bytes();
}

} // namespace

NativeCode igdt::compileNative(const CompiledCode &Code,
                               const PredecodedCode &P,
                               bool MiscompileProbe) {
  NativeCode N;
  N.MiscompileProbe = MiscompileProbe;
  Codegen CG(Code, P, MiscompileProbe);
  N.Buffer = ExecutableBuffer::make(CG.run());
  if (N.Buffer.valid())
    N.Entry = N.Buffer.entry<NativeEntry>();
  return N;
}

const NativeCode &igdt::nativeFor(const CompiledCode &Code, SimStats *Stats,
                                  bool MiscompileProbe) {
  if (Code.Native && Code.Native->MiscompileProbe == MiscompileProbe) {
    if (Stats)
      ++Stats->NativeHits;
    return *Code.Native;
  }
  const PredecodedCode &P = predecodedFor(Code, Stats);
  auto Built =
      std::make_shared<NativeCode>(compileNative(Code, P, MiscompileProbe));
  if (Stats)
    ++Stats->NativeBuilds;
  Code.Native = std::move(Built);
  return *Code.Native;
}
