//===- jit/native/NativeCode.h - Compiled native form of one unit ---------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native x86-64 form of one compilation unit, cached on the
/// CompiledCode the same way PredecodedCode is: built at most once per
/// unit (per probe setting), shared by every copy the code cache
/// serves.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVE_NATIVECODE_H
#define IGDT_JIT_NATIVE_NATIVECODE_H

#include "jit/native/ExecutableBuffer.h"
#include "jit/native/NativeContext.h"

#include <memory>

namespace igdt {

struct CompiledCode;
struct PredecodedCode;
struct SimStats;

/// One unit's generated machine code plus its entry point.
struct NativeCode {
  ExecutableBuffer Buffer;
  NativeEntry Entry = nullptr;
  /// Whether the deliberate AddI miscompilation was baked in (see
  /// SimOptions::NativeMiscompileProbe); a cached build is only reused
  /// when the probe setting matches.
  bool MiscompileProbe = false;

  bool valid() const { return Entry != nullptr; }
};

/// Translates \p Code into x86-64 using \p P for basic-block/fuel
/// structure. Returns an invalid NativeCode when the platform cannot
/// map executable memory (callers gate on nativeTierSupported() first,
/// so this is defensive). When \p MiscompileProbe is set, AddI adds
/// Imm+1 — the deliberate defect the cross-engine oracle must catch.
NativeCode compileNative(const CompiledCode &Code, const PredecodedCode &P,
                         bool MiscompileProbe);

/// The native form of \p Code, building and caching it on the
/// CompiledCode on first use (NativeBuilds/NativeHits land in \p Stats
/// when non-null). Rebuilds when the cached probe flag differs from
/// \p MiscompileProbe. Same thread-safety contract as predecodedFor:
/// compiled code stays worker-local.
const NativeCode &nativeFor(const CompiledCode &Code, SimStats *Stats,
                            bool MiscompileProbe);

} // namespace igdt

#endif // IGDT_JIT_NATIVE_NATIVECODE_H
