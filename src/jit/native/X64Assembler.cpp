//===- jit/native/X64Assembler.cpp - Minimal x86-64 emitter ---------------===//

#include "jit/native/X64Assembler.h"

using namespace igdt;

void X64Assembler::imm16(std::uint16_t V) {
  byte(std::uint8_t(V));
  byte(std::uint8_t(V >> 8));
}

void X64Assembler::imm32(std::uint32_t V) {
  byte(std::uint8_t(V));
  byte(std::uint8_t(V >> 8));
  byte(std::uint8_t(V >> 16));
  byte(std::uint8_t(V >> 24));
}

void X64Assembler::imm64(std::uint64_t V) {
  imm32(std::uint32_t(V));
  imm32(std::uint32_t(V >> 32));
}

void X64Assembler::rex(bool W, std::uint8_t R, std::uint8_t X,
                       std::uint8_t B) {
  std::uint8_t P = 0x40 | (std::uint8_t(W) << 3) | (((R >> 3) & 1) << 2) |
                   (((X >> 3) & 1) << 1) | ((B >> 3) & 1);
  if (P != 0x40)
    byte(P);
}

void X64Assembler::rex8(std::uint8_t R, std::uint8_t B) {
  if (R > 3 || B > 3)
    byte(0x40 | (((R >> 3) & 1) << 2) | ((B >> 3) & 1));
}

void X64Assembler::modrmReg(std::uint8_t Reg, std::uint8_t Rm) {
  byte(0xC0 | ((Reg & 7) << 3) | (Rm & 7));
}

void X64Assembler::modrmMem(std::uint8_t Reg, std::uint8_t Base,
                            std::int32_t Disp) {
  // mod=10 [base + disp32]; rsp/r12 bases require a SIB byte.
  if ((Base & 7) == 4) {
    byte(0x80 | ((Reg & 7) << 3) | 4);
    byte(0x24); // scale=1, no index, base=rsp/r12
  } else {
    byte(0x80 | ((Reg & 7) << 3) | (Base & 7));
  }
  imm32(std::uint32_t(Disp));
}

void X64Assembler::modrmMemBI(std::uint8_t Reg, std::uint8_t Base,
                              std::uint8_t Index) {
  // mod=10 [base + index*1 + disp32(0)] via SIB.
  byte(0x80 | ((Reg & 7) << 3) | 4);
  byte(((Index & 7) << 3) | (Base & 7));
  imm32(0);
}

void X64Assembler::push(std::uint8_t R) {
  if (R >= 8)
    byte(0x41);
  byte(0x50 + (R & 7));
}

void X64Assembler::pop(std::uint8_t R) {
  if (R >= 8)
    byte(0x41);
  byte(0x58 + (R & 7));
}

void X64Assembler::ret() { byte(0xC3); }

void X64Assembler::movImm64(std::uint8_t Dst, std::uint64_t Imm) {
  rex(true, 0, 0, Dst);
  byte(0xB8 + (Dst & 7));
  imm64(Imm);
}

void X64Assembler::aluRR(std::uint8_t Opcode, std::uint8_t Dst,
                         std::uint8_t Src) {
  rex(true, Src, 0, Dst);
  byte(Opcode);
  modrmReg(Src, Dst);
}

void X64Assembler::movRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x89, Dst, Src);
}

void X64Assembler::movLoad(std::uint8_t Dst, std::uint8_t Base,
                           std::int32_t Disp) {
  rex(true, Dst, 0, Base);
  byte(0x8B);
  modrmMem(Dst, Base, Disp);
}

void X64Assembler::movStore(std::uint8_t Base, std::int32_t Disp,
                            std::uint8_t Src) {
  rex(true, Src, 0, Base);
  byte(0x89);
  modrmMem(Src, Base, Disp);
}

void X64Assembler::movLoadBI(std::uint8_t Dst, std::uint8_t Base,
                             std::uint8_t Index) {
  rex(true, Dst, Index, Base);
  byte(0x8B);
  modrmMemBI(Dst, Base, Index);
}

void X64Assembler::movStoreBI(std::uint8_t Base, std::uint8_t Index,
                              std::uint8_t Src) {
  rex(true, Src, Index, Base);
  byte(0x89);
  modrmMemBI(Src, Base, Index);
}

void X64Assembler::movzxByteBI(std::uint8_t Dst, std::uint8_t Base,
                               std::uint8_t Index) {
  rex(true, Dst, Index, Base);
  byte(0x0F);
  byte(0xB6);
  modrmMemBI(Dst, Base, Index);
}

void X64Assembler::movStoreByteBI(std::uint8_t Base, std::uint8_t Index,
                                  std::uint8_t Src) {
  // 8-bit store; REX needed for extended base/index or sil..dil sources.
  std::uint8_t P = 0x40 | (((Src >> 3) & 1) << 2) | (((Index >> 3) & 1) << 1) |
                   ((Base >> 3) & 1);
  if (P != 0x40 || Src > 3)
    byte(P);
  byte(0x88);
  modrmMemBI(Src, Base, Index);
}

void X64Assembler::movLoad32(std::uint8_t Dst, std::uint8_t Base,
                             std::int32_t Disp) {
  std::uint8_t P = 0x40 | (((Dst >> 3) & 1) << 2) | ((Base >> 3) & 1);
  if (P != 0x40)
    byte(P);
  byte(0x8B);
  modrmMem(Dst, Base, Disp);
}

void X64Assembler::movStoreByteImm(std::uint8_t Base, std::int32_t Disp,
                                   std::uint8_t Imm) {
  if (Base >= 8)
    byte(0x41);
  byte(0xC6);
  modrmMem(0, Base, Disp);
  byte(Imm);
}

void X64Assembler::movStoreWordImm(std::uint8_t Base, std::int32_t Disp,
                                   std::uint16_t Imm) {
  byte(0x66);
  if (Base >= 8)
    byte(0x41);
  byte(0xC7);
  modrmMem(0, Base, Disp);
  imm16(Imm);
}

void X64Assembler::movStoreDwordImm(std::uint8_t Base, std::int32_t Disp,
                                    std::uint32_t Imm) {
  if (Base >= 8)
    byte(0x41);
  byte(0xC7);
  modrmMem(0, Base, Disp);
  imm32(Imm);
}

void X64Assembler::movStoreQwordImm32(std::uint8_t Base, std::int32_t Disp,
                                      std::int32_t Imm) {
  rex(true, 0, 0, Base);
  byte(0xC7);
  modrmMem(0, Base, Disp);
  imm32(std::uint32_t(Imm));
}

void X64Assembler::movLoadByte(std::uint8_t Dst, std::uint8_t Base,
                               std::int32_t Disp) {
  std::uint8_t P = 0x40 | (((Dst >> 3) & 1) << 2) | ((Base >> 3) & 1);
  if (P != 0x40 || Dst > 3)
    byte(P);
  byte(0x8A);
  modrmMem(Dst, Base, Disp);
}

void X64Assembler::movStoreByte(std::uint8_t Base, std::int32_t Disp,
                                std::uint8_t Src) {
  std::uint8_t P = 0x40 | (((Src >> 3) & 1) << 2) | ((Base >> 3) & 1);
  if (P != 0x40 || Src > 3)
    byte(P);
  byte(0x88);
  modrmMem(Src, Base, Disp);
}

void X64Assembler::movImm32(std::uint8_t Dst, std::uint32_t Imm) {
  if (Dst >= 8)
    byte(0x41);
  byte(0xB8 + (Dst & 7));
  imm32(Imm);
}

void X64Assembler::test32RR(std::uint8_t A, std::uint8_t B) {
  std::uint8_t P = 0x40 | (((B >> 3) & 1) << 2) | ((A >> 3) & 1);
  if (P != 0x40)
    byte(P);
  byte(0x85);
  modrmReg(B, A);
}

void X64Assembler::cmp32Imm8(std::uint8_t Dst, std::uint8_t Imm) {
  if (Dst >= 8)
    byte(0x41);
  byte(0x83);
  modrmReg(7, Dst);
  byte(Imm);
}

void X64Assembler::lea(std::uint8_t Dst, std::uint8_t Base,
                       std::int32_t Disp) {
  rex(true, Dst, 0, Base);
  byte(0x8D);
  modrmMem(Dst, Base, Disp);
}

void X64Assembler::addRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x01, Dst, Src);
}
void X64Assembler::subRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x29, Dst, Src);
}
void X64Assembler::andRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x21, Dst, Src);
}
void X64Assembler::orRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x09, Dst, Src);
}
void X64Assembler::xorRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x31, Dst, Src);
}
void X64Assembler::cmpRR(std::uint8_t Dst, std::uint8_t Src) {
  aluRR(0x39, Dst, Src);
}
void X64Assembler::testRR(std::uint8_t A, std::uint8_t B) {
  aluRR(0x85, A, B);
}

void X64Assembler::aluImm32(std::uint8_t Ext, std::uint8_t Dst,
                            std::int32_t Imm) {
  rex(true, 0, 0, Dst);
  byte(0x81);
  modrmReg(Ext, Dst);
  imm32(std::uint32_t(Imm));
}

void X64Assembler::addImm32(std::uint8_t Dst, std::int32_t Imm) {
  aluImm32(0, Dst, Imm);
}
void X64Assembler::subImm32(std::uint8_t Dst, std::int32_t Imm) {
  aluImm32(5, Dst, Imm);
}
void X64Assembler::cmpImm32(std::uint8_t Dst, std::int32_t Imm) {
  aluImm32(7, Dst, Imm);
}

void X64Assembler::cmpMem(std::uint8_t Dst, std::uint8_t Base,
                          std::int32_t Disp) {
  rex(true, Dst, 0, Base);
  byte(0x3B);
  modrmMem(Dst, Base, Disp);
}

void X64Assembler::imulRR(std::uint8_t Dst, std::uint8_t Src) {
  rex(true, Dst, 0, Src);
  byte(0x0F);
  byte(0xAF);
  modrmReg(Dst, Src);
}

void X64Assembler::testAlImm8(std::uint8_t Imm) {
  byte(0xA8);
  byte(Imm);
}

void X64Assembler::shlImm(std::uint8_t Dst, std::uint8_t Amount) {
  rex(true, 0, 0, Dst);
  byte(0xC1);
  modrmReg(4, Dst);
  byte(Amount);
}

void X64Assembler::sarImm(std::uint8_t Dst, std::uint8_t Amount) {
  rex(true, 0, 0, Dst);
  byte(0xC1);
  modrmReg(7, Dst);
  byte(Amount);
}

void X64Assembler::cmpByteImm(std::uint8_t Base, std::int32_t Disp,
                              std::uint8_t Imm) {
  if (Base >= 8)
    byte(0x41);
  byte(0x80);
  modrmMem(7, Base, Disp);
  byte(Imm);
}

void X64Assembler::subRR8(std::uint8_t Dst, std::uint8_t Src) {
  rex8(Src, Dst);
  byte(0x28);
  modrmReg(Src, Dst);
}

void X64Assembler::addImm8(std::uint8_t Dst, std::uint8_t Imm) {
  rex8(0, Dst);
  byte(0x80);
  modrmReg(0, Dst);
  byte(Imm);
}

void X64Assembler::subImm8(std::uint8_t Dst, std::uint8_t Imm) {
  rex8(0, Dst);
  byte(0x80);
  modrmReg(5, Dst);
  byte(Imm);
}

void X64Assembler::cmpImm8(std::uint8_t Dst, std::uint8_t Imm) {
  rex8(0, Dst);
  byte(0x80);
  modrmReg(7, Dst);
  byte(Imm);
}

void X64Assembler::movImm8(std::uint8_t Dst, std::uint8_t Imm) {
  rex8(0, Dst);
  byte(0xB0 + (Dst & 7));
  byte(Imm);
}

void X64Assembler::setcc(std::uint8_t CC, std::uint8_t Dst8) {
  rex8(0, Dst8);
  byte(0x0F);
  byte(0x90 + CC);
  modrmReg(0, Dst8);
}

std::size_t X64Assembler::jcc(std::uint8_t CC) {
  byte(0x0F);
  byte(0x80 + CC);
  std::size_t Pos = Buf.size();
  imm32(0);
  return Pos;
}

std::size_t X64Assembler::jmp() {
  byte(0xE9);
  std::size_t Pos = Buf.size();
  imm32(0);
  return Pos;
}

void X64Assembler::callReg(std::uint8_t R) {
  if (R >= 8)
    byte(0x41);
  byte(0xFF);
  modrmReg(2, R);
}

void X64Assembler::patchRel32(std::size_t FixupPos, std::size_t Target) {
  std::int64_t Rel = std::int64_t(Target) - std::int64_t(FixupPos + 4);
  auto V = std::uint32_t(std::int32_t(Rel));
  Buf[FixupPos] = std::uint8_t(V);
  Buf[FixupPos + 1] = std::uint8_t(V >> 8);
  Buf[FixupPos + 2] = std::uint8_t(V >> 16);
  Buf[FixupPos + 3] = std::uint8_t(V >> 24);
}

void X64Assembler::movsdLoad(std::uint8_t Xmm, std::uint8_t Base,
                             std::int32_t Disp) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x10);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::movsdStore(std::uint8_t Base, std::int32_t Disp,
                              std::uint8_t Xmm) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x11);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::addsdMem(std::uint8_t Xmm, std::uint8_t Base,
                            std::int32_t Disp) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x58);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::subsdMem(std::uint8_t Xmm, std::uint8_t Base,
                            std::int32_t Disp) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x5C);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::mulsdMem(std::uint8_t Xmm, std::uint8_t Base,
                            std::int32_t Disp) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x59);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::divsdMem(std::uint8_t Xmm, std::uint8_t Base,
                            std::int32_t Disp) {
  byte(0xF2);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x5E);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::sqrtsdXX(std::uint8_t Dst, std::uint8_t Src) {
  byte(0xF2);
  byte(0x0F);
  byte(0x51);
  modrmReg(Dst, Src);
}

void X64Assembler::ucomisdMem(std::uint8_t Xmm, std::uint8_t Base,
                              std::int32_t Disp) {
  byte(0x66);
  rex(false, Xmm, 0, Base);
  byte(0x0F);
  byte(0x2E);
  modrmMem(Xmm, Base, Disp);
}

void X64Assembler::cvtsi2sd(std::uint8_t Xmm, std::uint8_t Src64) {
  byte(0xF2);
  rex(true, Xmm, 0, Src64);
  byte(0x0F);
  byte(0x2A);
  modrmReg(Xmm, Src64);
}

void X64Assembler::cvtsd2ss(std::uint8_t Dst, std::uint8_t Src) {
  byte(0xF2);
  byte(0x0F);
  byte(0x5A);
  modrmReg(Dst, Src);
}

void X64Assembler::cvtss2sd(std::uint8_t Dst, std::uint8_t Src) {
  byte(0xF3);
  byte(0x0F);
  byte(0x5A);
  modrmReg(Dst, Src);
}

void X64Assembler::roundsd(std::uint8_t Dst, std::uint8_t Src,
                           std::uint8_t Mode) {
  byte(0x66);
  byte(0x0F);
  byte(0x3A);
  byte(0x0B);
  modrmReg(Dst, Src);
  byte(Mode);
}

void X64Assembler::movdXmmR32(std::uint8_t Xmm, std::uint8_t Src32) {
  byte(0x66);
  if (Src32 >= 8)
    byte(0x41);
  byte(0x0F);
  byte(0x6E);
  modrmReg(Xmm, Src32);
}

void X64Assembler::movdR32Xmm(std::uint8_t Dst32, std::uint8_t Xmm) {
  byte(0x66);
  if (Dst32 >= 8)
    byte(0x41);
  byte(0x0F);
  byte(0x7E);
  modrmReg(Xmm, Dst32);
}
