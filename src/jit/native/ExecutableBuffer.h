//===- jit/native/ExecutableBuffer.h - W^X code memory --------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Page-aligned executable memory for the native tier, following W^X
/// discipline: the buffer is mmap'd writable, filled once with the
/// generated code, then flipped to read+execute and never written
/// again. The mapping is owned move-only; destruction unmaps.
///
/// Only functional on x86-64 unix builds (the only hosts where the
/// native tier compiles code); elsewhere make() always fails and the
/// engine never asks for a buffer because nativeTierSupported() is
/// false.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVE_EXECUTABLEBUFFER_H
#define IGDT_JIT_NATIVE_EXECUTABLEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace igdt {

class ExecutableBuffer {
public:
  ExecutableBuffer() = default;
  ExecutableBuffer(ExecutableBuffer &&O) noexcept
      : Base(O.Base), MappedSize(O.MappedSize), CodeSize(O.CodeSize) {
    O.Base = nullptr;
    O.MappedSize = 0;
    O.CodeSize = 0;
  }
  ExecutableBuffer &operator=(ExecutableBuffer &&O) noexcept {
    if (this != &O) {
      release();
      Base = O.Base;
      MappedSize = O.MappedSize;
      CodeSize = O.CodeSize;
      O.Base = nullptr;
      O.MappedSize = 0;
      O.CodeSize = 0;
    }
    return *this;
  }
  ExecutableBuffer(const ExecutableBuffer &) = delete;
  ExecutableBuffer &operator=(const ExecutableBuffer &) = delete;
  ~ExecutableBuffer() { release(); }

  /// Maps writable pages, copies \p Code into them, and remaps them
  /// read+execute. Returns an invalid buffer on any failure (mmap or
  /// mprotect denied, empty input, unsupported platform).
  static ExecutableBuffer make(const std::vector<std::uint8_t> &Code);

  bool valid() const { return Base != nullptr; }
  const std::uint8_t *code() const { return Base; }
  std::size_t size() const { return CodeSize; }

  /// The entry point as a callable of type \p Fn.
  template <typename Fn> Fn entry() const {
    return reinterpret_cast<Fn>(const_cast<std::uint8_t *>(Base));
  }

private:
  void release();

  std::uint8_t *Base = nullptr;
  std::size_t MappedSize = 0;
  std::size_t CodeSize = 0;
};

} // namespace igdt

#endif // IGDT_JIT_NATIVE_EXECUTABLEBUFFER_H
