//===- jit/CodeCache.cpp - Compile-once code caching ----------------------===//

#include "jit/CodeCache.h"

#include "observe/MetricsRegistry.h"

using namespace igdt;

void igdt::foldJitStats(MetricsRegistry &Registry,
                        const JitCacheStats &Stats) {
  Registry.add("jit.compiles", Stats.Compiles);
  Registry.add("jit.code_cache.hits", Stats.CodeCacheHits);
}

namespace {

/// The CogitOptions fields a compile's output depends on. Trace is
/// excluded (pure observation) and InjectFrontEndThrow never reaches a
/// key (the tester bypasses the cache while it is armed).
std::uint64_t optionBits(const CogitOptions &Opts) {
  return (Opts.SeedFloatReceiverCheckMissing ? 1u : 0u) |
         (Opts.SeedFFINotImplemented ? 2u : 0u) |
         (Opts.SeedBitOpsAcceptNegatives ? 4u : 0u);
}

/// Shared prefix of both key shapes. The leading tag keeps the two
/// shapes disjoint regardless of what follows.
JitCodeCache::Key keyPrefix(std::uint64_t Tag, CompilerKind Kind,
                            bool ArmBackend, const CogitOptions &Opts) {
  return {Tag, static_cast<std::uint64_t>(Kind), ArmBackend ? 1u : 0u,
          optionBits(Opts)};
}

} // namespace

const CompiledCode *JitCodeCache::lookup(const Key &K) const {
  auto It = Entries.find(K);
  return It == Entries.end() ? nullptr : &It->second;
}

void JitCodeCache::store(const Key &K, const CompiledCode &Code) {
  Entries.emplace(K, Code);
}

JitCodeCache::Key igdt::codeCacheKey(CompilerKind Kind, bool ArmBackend,
                                     const CogitOptions &Opts,
                                     std::int32_t PrimitiveIndex) {
  JitCodeCache::Key K = keyPrefix(0, Kind, ArmBackend, Opts);
  K.push_back(static_cast<std::uint64_t>(PrimitiveIndex));
  return K;
}

JitCodeCache::Key igdt::codeCacheKey(CompilerKind Kind, bool ArmBackend,
                                     const CogitOptions &Opts,
                                     const CompiledMethod &Method,
                                     const std::vector<Oop> &InputStack,
                                     bool IsSequence) {
  JitCodeCache::Key K = keyPrefix(1, Kind, ArmBackend, Opts);
  K.push_back(IsSequence ? 1u : 0u);
  K.push_back(Method.NumArgs);
  K.push_back(Method.NumTemps);
  // Each variable-length section is preceded by its length, keeping the
  // whole encoding injective.
  K.push_back(Method.Bytecodes.size());
  for (std::uint8_t B : Method.Bytecodes)
    K.push_back(B);
  K.push_back(Method.Literals.size());
  for (Oop L : Method.Literals)
    K.push_back(L);
  K.push_back(InputStack.size());
  for (Oop V : InputStack)
    K.push_back(V);
  return K;
}
