//===- jit/MachineSim.cpp - Machine-code simulator -----------------------------===//

#include "jit/MachineSim.h"

#include "observe/TraceBus.h"
#include "support/Compiler.h"
#include "support/IntMath.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstring>

using namespace igdt;

const char *igdt::machExitKindName(MachExitKind Kind) {
  switch (Kind) {
  case MachExitKind::Breakpoint:
    return "breakpoint";
  case MachExitKind::Returned:
    return "returned";
  case MachExitKind::TrampolineCall:
    return "trampoline-call";
  case MachExitKind::Segfault:
    return "segfault";
  case MachExitKind::SimulationError:
    return "simulation-error";
  case MachExitKind::FuelExhausted:
    return "fuel-exhausted";
  case MachExitKind::DivideFault:
    return "divide-fault";
  }
  igdt_unreachable("unknown machine exit kind");
}

MachineSim::MachineSim(ObjectMemory &Heap, SimOptions Options)
    : Heap(Heap), Opts(std::move(Options)), StackMem(abi::StackBytes, 0),
      Watermark(Heap.usedBytes()) {
  setReg(MReg::SP, abi::StackBase + 8 * abi::NumSpillSlots + 16);
  setReg(MReg::FP, reg(MReg::SP));
}

std::optional<std::uint64_t> MachineSim::load64(std::uint64_t Address) const {
  if (Address >= abi::StackBase &&
      Address + 8 <= abi::StackBase + StackMem.size()) {
    if ((Address & 7) != 0)
      return std::nullopt;
    std::uint64_t V;
    std::memcpy(&V, &StackMem[Address - abi::StackBase], 8);
    return V;
  }
  return Heap.load64(Address);
}

bool MachineSim::store64(std::uint64_t Address, std::uint64_t Value) {
  if (Address >= abi::StackBase &&
      Address + 8 <= abi::StackBase + StackMem.size()) {
    if ((Address & 7) != 0)
      return false;
    std::memcpy(&StackMem[Address - abi::StackBase], &Value, 8);
    return true;
  }
  return Heap.store64(Address, Value);
}

std::optional<std::uint8_t> MachineSim::load8(std::uint64_t Address) const {
  if (Address >= abi::StackBase &&
      Address + 1 <= abi::StackBase + StackMem.size())
    return StackMem[Address - abi::StackBase];
  return Heap.load8(Address);
}

bool MachineSim::store8(std::uint64_t Address, std::uint8_t Value) {
  if (Address >= abi::StackBase &&
      Address + 1 <= abi::StackBase + StackMem.size()) {
    StackMem[Address - abi::StackBase] = Value;
    return true;
  }
  return Heap.store8(Address, Value);
}

bool MachineSim::stackStore64(std::uint64_t Address, std::uint64_t Value) {
  return store64(Address, Value);
}

std::optional<std::uint64_t>
MachineSim::stackLoad64(std::uint64_t Address) const {
  return load64(Address);
}

std::uint64_t MachineSim::setUpFrame(unsigned NumLocals) {
  FrameBase = abi::StackBase + 8 * abi::NumSpillSlots + 16;
  FrameLocals = NumLocals;
  setReg(MReg::FP, FrameBase);
  std::uint64_t OperandBase = FrameBase + abi::operandBaseOffset(NumLocals);
  setReg(MReg::SP, OperandBase);
  return OperandBase;
}

void MachineSim::writeReceiver(std::uint64_t Value) {
  store64(FrameBase + abi::ReceiverOffset, Value);
}

void MachineSim::writeLocal(unsigned I, std::uint64_t Value) {
  store64(FrameBase + abi::localOffset(I), Value);
}

std::uint64_t MachineSim::readLocal(unsigned I) const {
  return load64(FrameBase + abi::localOffset(I)).value_or(0);
}

std::uint64_t MachineSim::readReceiver() const {
  return load64(FrameBase + abi::ReceiverOffset).value_or(0);
}

void MachineSim::pushOperand(std::uint64_t Value) {
  std::uint64_t SP = reg(MReg::SP);
  store64(SP, Value);
  setReg(MReg::SP, SP + 8);
}

std::vector<std::uint64_t> MachineSim::operandStack() const {
  std::vector<std::uint64_t> Out;
  std::uint64_t Base = FrameBase + abi::operandBaseOffset(FrameLocals);
  for (std::uint64_t A = Base; A < reg(MReg::SP); A += 8)
    Out.push_back(load64(A).value_or(0));
  return Out;
}

bool MachineSim::condHolds(MCond C) const {
  switch (C) {
  case MCond::Always:
    return true;
  case MCond::Eq:
    return Relation == Rel::Equal;
  case MCond::Ne:
    return Relation != Rel::Equal; // NaN compares not-equal
  case MCond::Lt:
    return Relation == Rel::Less;
  case MCond::Le:
    return Relation == Rel::Less || Relation == Rel::Equal;
  case MCond::Gt:
    return Relation == Rel::Greater;
  case MCond::Ge:
    return Relation == Rel::Greater || Relation == Rel::Equal;
  case MCond::Ov:
    return Overflow;
  case MCond::NoOv:
    return !Overflow;
  }
  igdt_unreachable("unknown condition");
}

MachineExit MachineSim::fault(const MInstr &I, std::uint64_t Address) {
  // Fault recovery mirrors the paper's simulation runtime: the simulator
  // "disassembles the failing instruction and performs a read/write
  // operation using reflection to call the corresponding register
  // setter/getters" (§5.3). When an accessor is missing, the recovery
  // itself errors out — a Simulation Error, not a VM defect.
  bool IsFloat = I.Op == MOp::FLoad;
  if (IsFloat) {
    if (Opts.MissingFPAccessors.count(std::uint8_t(I.FA))) {
      MachineExit E;
      E.Kind = MachExitKind::SimulationError;
      E.Note = formatString("missing simulation accessor for f%u",
                            unsigned(I.FA));
      return E;
    }
  } else if (Opts.MissingGPAccessors.count(std::uint8_t(I.A))) {
    MachineExit E;
    E.Kind = MachExitKind::SimulationError;
    E.Note =
        formatString("missing simulation accessor for r%u", unsigned(I.A));
    return E;
  }
  MachineExit E;
  E.Kind = MachExitKind::Segfault;
  E.FaultAddress = Address;
  return E;
}

bool MachineSim::runtimeCall(RTFunc Func) {
  switch (Func) {
  case RTFunc::BoxFloat: {
    Oop Box = Heap.allocateFloat(freg(FReg::F0));
    setReg(abi::ResultReg, Box);
    return true;
  }
  case RTFunc::AllocPointers: {
    auto ClassIdx = static_cast<std::uint32_t>(reg(abi::Arg0Reg));
    Oop Obj = InvalidOop;
    if (Heap.classTable().isValidIndex(ClassIdx) &&
        Heap.classTable().classAt(ClassIdx).Format == ObjectFormat::Pointers)
      Obj = Heap.allocateInstance(ClassIdx);
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::AllocIndexable: {
    auto ClassIdx = static_cast<std::uint32_t>(reg(abi::Arg0Reg));
    auto Count = static_cast<std::int64_t>(reg(abi::Arg1Reg));
    Oop Obj = InvalidOop;
    if (Heap.classTable().isValidIndex(ClassIdx) && Count >= 0 &&
        Count <= 1024) {
      ObjectFormat F = Heap.classTable().classAt(ClassIdx).Format;
      if (F == ObjectFormat::IndexablePointers ||
          F == ObjectFormat::IndexableBytes)
        Obj = Heap.allocateInstance(ClassIdx,
                                    static_cast<std::uint32_t>(Count));
    }
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::AllocLike: {
    Oop Src = reg(abi::Arg0Reg);
    Oop Obj = InvalidOop;
    if (Heap.isHeapObject(Src)) {
      std::uint32_t ClassIdx = Heap.classIndexOf(Src);
      bool Indexable =
          Heap.formatOf(Src) == ObjectFormat::IndexablePointers;
      Obj = Heap.allocateInstance(ClassIdx,
                                  Indexable ? Heap.slotCountOf(Src) : 0);
    }
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::Sin:
    setFReg(FReg::F0, std::sin(freg(FReg::F0)));
    return true;
  case RTFunc::Cos:
    setFReg(FReg::F0, std::cos(freg(FReg::F0)));
    return true;
  case RTFunc::Exp:
    setFReg(FReg::F0, std::exp(freg(FReg::F0)));
    return true;
  case RTFunc::Ln:
    setFReg(FReg::F0, std::log(freg(FReg::F0)));
    return true;
  case RTFunc::ArcTan:
    setFReg(FReg::F0, std::atan(freg(FReg::F0)));
    return true;
  }
  return false;
}

MachineExit MachineSim::run(const std::vector<MInstr> &Code) {
  FuelRemaining = Opts.Fuel;
  MachineExit E = runLoop(Code);
  // Stamp the fuel state onto every exit so callers can report it; a
  // FuelExhausted exit additionally explains itself.
  E.FuelLeft = FuelRemaining;
  if (E.Kind == MachExitKind::FuelExhausted && E.Note.empty())
    E.Note = formatString("fuel exhausted after %llu instructions",
                          (unsigned long long)Opts.Fuel);
  if (Opts.Trace) {
    TraceEvent T;
    T.Kind = TraceEventKind::SimRun;
    T.Detail = machExitKindName(E.Kind);
    T.Value = Opts.Fuel - FuelRemaining;
    Opts.Trace->emit(std::move(T));
  }
  return E;
}

MachineExit MachineSim::runLoop(const std::vector<MInstr> &Code) {
  std::size_t PC = 0;

  auto SetIntFlags = [&](std::int64_t Result, bool Overflowed) {
    Relation = Result < 0 ? Rel::Less : Result == 0 ? Rel::Equal : Rel::Greater;
    Overflow = Overflowed;
  };

  while (PC < Code.size()) {
    if (FuelRemaining == 0) {
      MachineExit E;
      E.Kind = MachExitKind::FuelExhausted;
      return E;
    }
    --FuelRemaining;
    const MInstr &I = Code[PC];
    std::size_t Next = PC + 1;

    switch (I.Op) {
    case MOp::MovRR:
      setReg(I.A, reg(I.B));
      break;
    case MOp::MovRI:
      setReg(I.A, static_cast<std::uint64_t>(I.Imm));
      break;
    case MOp::Load: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load64(Address);
      if (!V)
        return fault(I, Address);
      setReg(I.A, *V);
      break;
    }
    case MOp::Store: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      if (!store64(Address, reg(I.A)))
        return fault(I, Address);
      break;
    }
    case MOp::Load8: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load8(Address);
      if (!V)
        return fault(I, Address);
      setReg(I.A, *V);
      break;
    }
    case MOp::Store8: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      if (!store8(Address, static_cast<std::uint8_t>(reg(I.A))))
        return fault(I, Address);
      break;
    }
    case MOp::Add:
    case MOp::AddI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Add ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      std::int64_t R;
      bool Ovf = __builtin_add_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Sub:
    case MOp::SubI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Sub ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      std::int64_t R;
      bool Ovf = __builtin_sub_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Mul: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      auto B = static_cast<std::int64_t>(reg(I.B));
      std::int64_t R;
      bool Ovf = __builtin_mul_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::And:
    case MOp::AndI: {
      std::uint64_t B = I.Op == MOp::And ? reg(I.B)
                                         : static_cast<std::uint64_t>(I.Imm);
      std::uint64_t R = reg(I.A) & B;
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Or:
    case MOp::OrI: {
      std::uint64_t B = I.Op == MOp::Or ? reg(I.B)
                                        : static_cast<std::uint64_t>(I.Imm);
      std::uint64_t R = reg(I.A) | B;
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Xor: {
      std::uint64_t R = reg(I.A) ^ reg(I.B);
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Shl:
    case MOp::ShlI: {
      std::int64_t Amount =
          I.Op == MOp::Shl ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t R = Amount >= 0 && Amount < 64
                           ? static_cast<std::int64_t>(
                                 static_cast<std::uint64_t>(A) << Amount)
                           : 0;
      // Overflow when shifting back does not round-trip.
      bool Ovf = Amount >= 0 && (Amount >= 64 || asr(R, Amount) != A);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Sar:
    case MOp::SarI: {
      std::int64_t Amount =
          I.Op == MOp::Sar ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t R = asr(A, std::max<std::int64_t>(Amount, 0));
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, false);
      break;
    }
    case MOp::Quo:
    case MOp::Rem: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      auto B = static_cast<std::int64_t>(reg(I.B));
      if (B == 0) {
        MachineExit E;
        E.Kind = MachExitKind::DivideFault;
        return E;
      }
      std::int64_t R = I.Op == MOp::Quo ? truncDiv(A, B)
                                        : (A == SatMin && B == -1 ? 0 : A % B);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, false);
      break;
    }
    case MOp::Cmp:
    case MOp::CmpI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Cmp ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
      Overflow = false;
      break;
    }
    case MOp::Jmp:
      Next = static_cast<std::size_t>(I.Target);
      break;
    case MOp::Jcc:
      if (condHolds(I.Cond))
        Next = static_cast<std::size_t>(I.Target);
      break;
    case MOp::CallRT:
      if (!runtimeCall(static_cast<RTFunc>(I.Aux))) {
        MachineExit E;
        E.Kind = MachExitKind::SimulationError;
        E.Note = formatString("unknown runtime function %u", I.Aux);
        return E;
      }
      break;
    case MOp::CallTramp: {
      MachineExit E;
      E.Kind = MachExitKind::TrampolineCall;
      E.Selector = I.Aux;
      E.NumArgs = static_cast<std::uint8_t>(I.Imm);
      return E;
    }
    case MOp::Ret: {
      MachineExit E;
      E.Kind = MachExitKind::Returned;
      return E;
    }
    case MOp::Brk: {
      MachineExit E;
      E.Kind = MachExitKind::Breakpoint;
      E.Marker = I.Aux;
      return E;
    }
    case MOp::FLoad: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load64(Address);
      if (!V)
        return fault(I, Address);
      double D;
      std::memcpy(&D, &*V, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FMovI: {
      double D;
      std::memcpy(&D, &I.Imm, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FMovFF:
      setFReg(I.FA, freg(I.FB));
      break;
    case MOp::FAdd:
      setFReg(I.FA, freg(I.FA) + freg(I.FB));
      break;
    case MOp::FSub:
      setFReg(I.FA, freg(I.FA) - freg(I.FB));
      break;
    case MOp::FMul:
      setFReg(I.FA, freg(I.FA) * freg(I.FB));
      break;
    case MOp::FDiv:
      setFReg(I.FA, freg(I.FA) / freg(I.FB));
      break;
    case MOp::FSqrt:
      setFReg(I.FA, std::sqrt(freg(I.FA)));
      break;
    case MOp::FTruncF:
      setFReg(I.FA, std::trunc(freg(I.FA)));
      break;
    case MOp::FCvtIF:
      setFReg(I.FA, static_cast<double>(static_cast<std::int64_t>(reg(I.A))));
      break;
    case MOp::FTrunc: {
      double F = freg(I.FA);
      bool Ovf = !(F > -9.3e18 && F < 9.3e18); // NaN also overflows
      std::int64_t R = Ovf ? 0 : static_cast<std::int64_t>(std::trunc(F));
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::FBitsToF: {
      double D;
      std::uint64_t Bits = reg(I.A);
      std::memcpy(&D, &Bits, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FBitsFromF: {
      double D = freg(I.FA);
      std::uint64_t Bits;
      std::memcpy(&Bits, &D, 8);
      setReg(I.A, Bits);
      break;
    }
    case MOp::FBits32ToF: {
      auto Bits = static_cast<std::uint32_t>(reg(I.A));
      float Narrow;
      std::memcpy(&Narrow, &Bits, 4);
      setFReg(I.FA, static_cast<double>(Narrow));
      break;
    }
    case MOp::FBitsFromF32: {
      auto Narrow = static_cast<float>(freg(I.FA));
      std::uint32_t Bits;
      std::memcpy(&Bits, &Narrow, 4);
      setReg(I.A, Bits);
      break;
    }
    case MOp::FCmp: {
      double A = freg(I.FA);
      double B = freg(I.FB);
      if (std::isnan(A) || std::isnan(B))
        Relation = Rel::Unordered;
      else
        Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
      Overflow = false;
      break;
    }
    }
    PC = Next;
  }
  // Running off the end is a code-generation bug.
  MachineExit E;
  E.Kind = MachExitKind::SimulationError;
  E.Note = "execution ran past the end of the generated code";
  return E;
}
