//===- jit/MachineSim.cpp - Machine-code simulator -----------------------------===//

#include "jit/MachineSim.h"

#include "jit/CompiledCode.h"
#include "jit/PredecodedCode.h"
#include "jit/native/NativeEngine.h"
#include "observe/MetricsRegistry.h"
#include "observe/TraceBus.h"
#include "support/Compiler.h"
#include "support/CpuFeatures.h"
#include "support/IntMath.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstring>

using namespace igdt;

// The threaded dispatcher uses the labels-as-values GNU extension; on
// other toolchains the predecoded engine degrades to the reference
// switch loop (same semantics, per-instruction fuel). The runtime
// answer lives in support/CpuFeatures.cpp (simThreadedDispatchSupported).
#if defined(__GNUC__) || defined(__clang__)
#define IGDT_SIM_THREADED 1
#else
#define IGDT_SIM_THREADED 0
#endif

const char *igdt::simEngineName(SimEngine E) {
  switch (E) {
  case SimEngine::Switch:
    return "switch";
  case SimEngine::Threaded:
    return "threaded";
  case SimEngine::Native:
    return "native";
  }
  igdt_unreachable("unknown sim engine");
}

bool igdt::simEngineFromName(const std::string &Name, SimEngine &Out) {
  if (Name == "switch")
    Out = SimEngine::Switch;
  else if (Name == "threaded")
    Out = SimEngine::Threaded;
  else if (Name == "native")
    Out = SimEngine::Native;
  else
    return false;
  return true;
}

void ExitNote::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Text, sizeof(Text), Fmt, Args);
  va_end(Args);
}

void igdt::foldSimStats(MetricsRegistry &Registry, const SimStats &Stats) {
  Registry.add("sim.runs", Stats.Runs);
  Registry.add("sim.runs.predecoded", Stats.PredecodedRuns);
  Registry.add("sim.runs.reference", Stats.ReferenceRuns);
  Registry.add("sim.predecode.builds", Stats.PredecodeBuilds);
  Registry.add("sim.predecode.hits", Stats.PredecodeHits);
  Registry.add("sim.runs.native", Stats.NativeRuns);
  Registry.add("sim.native.builds", Stats.NativeBuilds);
  Registry.add("sim.native.hits", Stats.NativeHits);
  Registry.add("sim.native.fallbacks", Stats.NativeFallbacks);
  Registry.add("sim.run.nanos", Stats.RunNanos);
}

const char *igdt::machExitKindName(MachExitKind Kind) {
  switch (Kind) {
  case MachExitKind::Breakpoint:
    return "breakpoint";
  case MachExitKind::Returned:
    return "returned";
  case MachExitKind::TrampolineCall:
    return "trampoline-call";
  case MachExitKind::Segfault:
    return "segfault";
  case MachExitKind::SimulationError:
    return "simulation-error";
  case MachExitKind::FuelExhausted:
    return "fuel-exhausted";
  case MachExitKind::DivideFault:
    return "divide-fault";
  }
  igdt_unreachable("unknown machine exit kind");
}

MachineSim::MachineSim(ObjectMemory &Heap, SimOptions Options)
    : Heap(Heap), Opts(std::move(Options)), Watermark(Heap.usedBytes()) {
  if (Opts.StackPool) {
    Pool = Opts.StackPool;
    Stack = Pool->acquire();
    StackSize = Pool->size();
  } else {
    OwnedStack.assign(abi::StackBytes, 0);
    Stack = OwnedStack.data();
    StackSize = OwnedStack.size();
  }
  setReg(MReg::SP, abi::StackBase + 8 * abi::NumSpillSlots + 16);
  setReg(MReg::FP, reg(MReg::SP));
}

// Stack bounds tests subtract first and compare offsets so an Address
// near UINT64_MAX cannot wrap `Address + N` back into range (the
// unsigned offset is huge when Address < StackBase, failing the test).
// The native tier compiles the same offset form inline.

std::optional<std::uint64_t> MachineSim::load64(std::uint64_t Address) const {
  std::uint64_t Off = Address - abi::StackBase;
  if (Off <= StackSize - 8) {
    if ((Address & 7) != 0)
      return std::nullopt;
    std::uint64_t V;
    std::memcpy(&V, Stack + Off, 8);
    return V;
  }
  return Heap.load64(Address);
}

bool MachineSim::store64(std::uint64_t Address, std::uint64_t Value) {
  std::uint64_t Off = Address - abi::StackBase;
  if (Off <= StackSize - 8) {
    if ((Address & 7) != 0)
      return false;
    std::memcpy(Stack + Off, &Value, 8);
    if (Pool)
      Pool->noteTouched(static_cast<std::size_t>(Off) + 8);
    return true;
  }
  return Heap.store64(Address, Value);
}

std::optional<std::uint8_t> MachineSim::load8(std::uint64_t Address) const {
  std::uint64_t Off = Address - abi::StackBase;
  if (Off <= StackSize - 1)
    return Stack[Off];
  return Heap.load8(Address);
}

bool MachineSim::store8(std::uint64_t Address, std::uint8_t Value) {
  std::uint64_t Off = Address - abi::StackBase;
  if (Off <= StackSize - 1) {
    Stack[Off] = Value;
    if (Pool)
      Pool->noteTouched(static_cast<std::size_t>(Off) + 1);
    return true;
  }
  return Heap.store8(Address, Value);
}

bool MachineSim::stackStore64(std::uint64_t Address, std::uint64_t Value) {
  return store64(Address, Value);
}

std::optional<std::uint64_t>
MachineSim::stackLoad64(std::uint64_t Address) const {
  return load64(Address);
}

std::uint64_t MachineSim::setUpFrame(unsigned NumLocals) {
  FrameBase = abi::StackBase + 8 * abi::NumSpillSlots + 16;
  FrameLocals = NumLocals;
  setReg(MReg::FP, FrameBase);
  std::uint64_t OperandBase = FrameBase + abi::operandBaseOffset(NumLocals);
  setReg(MReg::SP, OperandBase);
  return OperandBase;
}

void MachineSim::writeReceiver(std::uint64_t Value) {
  store64(FrameBase + abi::ReceiverOffset, Value);
}

void MachineSim::writeLocal(unsigned I, std::uint64_t Value) {
  store64(FrameBase + abi::localOffset(I), Value);
}

std::uint64_t MachineSim::readLocal(unsigned I) const {
  return load64(FrameBase + abi::localOffset(I)).value_or(0);
}

std::uint64_t MachineSim::readReceiver() const {
  return load64(FrameBase + abi::ReceiverOffset).value_or(0);
}

void MachineSim::pushOperand(std::uint64_t Value) {
  std::uint64_t SP = reg(MReg::SP);
  store64(SP, Value);
  setReg(MReg::SP, SP + 8);
}

OperandStackView MachineSim::operandStackView() const {
  OperandStackView V;
  std::uint64_t Base = FrameBase + abi::operandBaseOffset(FrameLocals);
  std::uint64_t SP = reg(MReg::SP);
  if (SP <= Base)
    return V;
  std::uint64_t Count = (SP - Base + 7) / 8;
  std::uint64_t BaseOff = Base - abi::StackBase;
  if (BaseOff <= StackSize && (Base & 7) == 0 &&
      Count <= (StackSize - BaseOff) / 8) {
    V.Borrowed = Stack + BaseOff;
    V.Count = static_cast<std::size_t>(Count);
    return V;
  }
  // SP or the frame base escaped the stack region (defective code):
  // reproduce the legacy per-address bounds-checked copy exactly.
  V.Owned.reserve(static_cast<std::size_t>(Count));
  for (std::uint64_t A = Base; A < SP; A += 8)
    V.Owned.push_back(load64(A).value_or(0));
  V.Count = V.Owned.size();
  return V;
}

std::vector<std::uint64_t> MachineSim::operandStack() const {
  OperandStackView View = operandStackView();
  std::vector<std::uint64_t> Out;
  Out.reserve(View.size());
  for (std::size_t I = 0; I < View.size(); ++I)
    Out.push_back(View[I]);
  return Out;
}

bool MachineSim::condHolds(MCond C) const {
  switch (C) {
  case MCond::Always:
    return true;
  case MCond::Eq:
    return Relation == Rel::Equal;
  case MCond::Ne:
    return Relation != Rel::Equal; // NaN compares not-equal
  case MCond::Lt:
    return Relation == Rel::Less;
  case MCond::Le:
    return Relation == Rel::Less || Relation == Rel::Equal;
  case MCond::Gt:
    return Relation == Rel::Greater;
  case MCond::Ge:
    return Relation == Rel::Greater || Relation == Rel::Equal;
  case MCond::Ov:
    return Overflow;
  case MCond::NoOv:
    return !Overflow;
  }
  igdt_unreachable("unknown condition");
}

MachineExit MachineSim::faultExit(bool IsFloat, unsigned GpReg,
                                  unsigned FpReg, std::uint64_t Address) {
  // Fault recovery mirrors the paper's simulation runtime: the simulator
  // "disassembles the failing instruction and performs a read/write
  // operation using reflection to call the corresponding register
  // setter/getters" (§5.3). When an accessor is missing, the recovery
  // itself errors out — a Simulation Error, not a VM defect.
  if (IsFloat) {
    if (Opts.MissingFPAccessors.count(std::uint8_t(FpReg))) {
      MachineExit E;
      E.Kind = MachExitKind::SimulationError;
      E.Note.format("missing simulation accessor for f%u", FpReg);
      return E;
    }
  } else if (Opts.MissingGPAccessors.count(std::uint8_t(GpReg))) {
    MachineExit E;
    E.Kind = MachExitKind::SimulationError;
    E.Note.format("missing simulation accessor for r%u", GpReg);
    return E;
  }
  MachineExit E;
  E.Kind = MachExitKind::Segfault;
  E.FaultAddress = Address;
  return E;
}

MachineExit MachineSim::fault(const MInstr &I, std::uint64_t Address) {
  return faultExit(I.Op == MOp::FLoad, unsigned(I.A), unsigned(I.FA), Address);
}

bool MachineSim::runtimeCall(RTFunc Func) {
  switch (Func) {
  case RTFunc::BoxFloat: {
    Oop Box = Heap.allocateFloat(freg(FReg::F0));
    setReg(abi::ResultReg, Box);
    return true;
  }
  case RTFunc::AllocPointers: {
    auto ClassIdx = static_cast<std::uint32_t>(reg(abi::Arg0Reg));
    Oop Obj = InvalidOop;
    if (Heap.classTable().isValidIndex(ClassIdx) &&
        Heap.classTable().classAt(ClassIdx).Format == ObjectFormat::Pointers)
      Obj = Heap.allocateInstance(ClassIdx);
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::AllocIndexable: {
    auto ClassIdx = static_cast<std::uint32_t>(reg(abi::Arg0Reg));
    auto Count = static_cast<std::int64_t>(reg(abi::Arg1Reg));
    Oop Obj = InvalidOop;
    if (Heap.classTable().isValidIndex(ClassIdx) && Count >= 0 &&
        Count <= 1024) {
      ObjectFormat F = Heap.classTable().classAt(ClassIdx).Format;
      if (F == ObjectFormat::IndexablePointers ||
          F == ObjectFormat::IndexableBytes)
        Obj = Heap.allocateInstance(ClassIdx,
                                    static_cast<std::uint32_t>(Count));
    }
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::AllocLike: {
    Oop Src = reg(abi::Arg0Reg);
    Oop Obj = InvalidOop;
    if (Heap.isHeapObject(Src)) {
      std::uint32_t ClassIdx = Heap.classIndexOf(Src);
      bool Indexable =
          Heap.formatOf(Src) == ObjectFormat::IndexablePointers;
      Obj = Heap.allocateInstance(ClassIdx,
                                  Indexable ? Heap.slotCountOf(Src) : 0);
    }
    setReg(abi::ResultReg, Obj);
    return true;
  }
  case RTFunc::Sin:
    setFReg(FReg::F0, std::sin(freg(FReg::F0)));
    return true;
  case RTFunc::Cos:
    setFReg(FReg::F0, std::cos(freg(FReg::F0)));
    return true;
  case RTFunc::Exp:
    setFReg(FReg::F0, std::exp(freg(FReg::F0)));
    return true;
  case RTFunc::Ln:
    setFReg(FReg::F0, std::log(freg(FReg::F0)));
    return true;
  case RTFunc::ArcTan:
    setFReg(FReg::F0, std::atan(freg(FReg::F0)));
    return true;
  }
  return false;
}

void MachineSim::finishRun(MachineExit &E, const char *Engine,
                           std::uint64_t PredecodeHit) {
  // Stamp the fuel state onto every exit so callers can report it; a
  // FuelExhausted exit additionally explains itself.
  E.FuelLeft = FuelRemaining;
  if (E.Kind == MachExitKind::FuelExhausted && E.Note.empty())
    E.Note.format("fuel exhausted after %llu instructions",
                  (unsigned long long)Opts.Fuel);
  if (Opts.Trace) {
    TraceEvent T;
    T.Kind = TraceEventKind::SimRun;
    T.Detail = machExitKindName(E.Kind);
    T.Aux = Engine;
    T.Value = Opts.Fuel - FuelRemaining;
    T.Extra = PredecodeHit;
    Opts.Trace->emit(std::move(T));
  }
}

MachineExit MachineSim::run(const std::vector<MInstr> &Code) {
  if (Opts.Stats) {
    ++Opts.Stats->Runs;
    ++Opts.Stats->ReferenceRuns;
  }
  FuelRemaining = Opts.Fuel;
  MachineExit E = runLoop(Code, 0);
  finishRun(E, "reference", 0);
  return E;
}

MachineExit MachineSim::run(const CompiledCode &Code) {
  // Degradation ladder: an unsupported selection silently steps down to
  // the next engine, so a campaign configured --engine native on a
  // non-x86-64 host (or under IGDT_NO_NATIVE) still runs — identically,
  // since the engines are proven byte-equal.
  SimEngine Engine = Opts.Engine;
  if (Engine == SimEngine::Native && !nativeTierSupported())
    Engine = SimEngine::Threaded;
  if (Engine == SimEngine::Threaded && !simThreadedDispatchSupported())
    Engine = SimEngine::Switch;

  if (Engine == SimEngine::Native)
    return runNativeTier(*this, Code);

  auto Timed = [&](auto &&Body) {
    if (!Opts.TimeRuns || !Opts.Stats)
      return Body();
    auto Start = std::chrono::steady_clock::now();
    MachineExit E = Body();
    Opts.Stats->RunNanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count();
    return E;
  };

  if (Engine == SimEngine::Switch) {
    if (Opts.Stats) {
      ++Opts.Stats->Runs;
      ++Opts.Stats->ReferenceRuns;
    }
    FuelRemaining = Opts.Fuel;
    MachineExit E = Timed([&] { return runLoop(Code.Code, 0); });
    finishRun(E, "reference", 0);
    return E;
  }

  bool Hit = Code.Predecoded != nullptr;
  const PredecodedCode &P = predecodedFor(Code, Opts.Stats);
  if (Opts.Stats) {
    ++Opts.Stats->Runs;
    ++Opts.Stats->PredecodedRuns;
  }
  FuelRemaining = Opts.Fuel;
  MachineExit E = Timed([&] { return runThreaded(P, Code.Code); });
  finishRun(E, "predecoded", Hit ? 1 : 0);
  return E;
}

std::uint64_t MachineSim::stackHash() const {
  std::uint64_t SP = reg(MReg::SP);
  std::uint64_t Off = SP - abi::StackBase;
  std::size_t End = Off <= StackSize ? static_cast<std::size_t>(Off) : StackSize;
  std::uint64_t H = 1469598103934665603ull; // FNV-1a 64
  for (std::size_t I = 0; I < End; ++I) {
    H ^= Stack[I];
    H *= 1099511628211ull;
  }
  // Fold SP itself in so an out-of-region SP still perturbs the hash.
  for (unsigned I = 0; I < 8; ++I) {
    H ^= (SP >> (8 * I)) & 0xff;
    H *= 1099511628211ull;
  }
  return H;
}

MachineExit MachineSim::runPredecoded(const PredecodedCode &P,
                                      const std::vector<MInstr> &Reference) {
  if (Opts.Stats) {
    ++Opts.Stats->Runs;
    ++Opts.Stats->PredecodedRuns;
  }
  FuelRemaining = Opts.Fuel;
  MachineExit E = runThreaded(P, Reference);
  finishRun(E, "predecoded", 0);
  return E;
}

MachineExit MachineSim::runLoop(const std::vector<MInstr> &Code,
                                std::size_t PC) {
  auto SetIntFlags = [&](std::int64_t Result, bool Overflowed) {
    Relation = Result < 0 ? Rel::Less : Result == 0 ? Rel::Equal : Rel::Greater;
    Overflow = Overflowed;
  };

  while (PC < Code.size()) {
    if (FuelRemaining == 0) {
      MachineExit E;
      E.Kind = MachExitKind::FuelExhausted;
      return E;
    }
    --FuelRemaining;
    const MInstr &I = Code[PC];
    std::size_t Next = PC + 1;

    switch (I.Op) {
    case MOp::MovRR:
      setReg(I.A, reg(I.B));
      break;
    case MOp::MovRI:
      setReg(I.A, static_cast<std::uint64_t>(I.Imm));
      break;
    case MOp::Load: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load64(Address);
      if (!V)
        return fault(I, Address);
      setReg(I.A, *V);
      break;
    }
    case MOp::Store: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      if (!store64(Address, reg(I.A)))
        return fault(I, Address);
      break;
    }
    case MOp::Load8: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load8(Address);
      if (!V)
        return fault(I, Address);
      setReg(I.A, *V);
      break;
    }
    case MOp::Store8: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      if (!store8(Address, static_cast<std::uint8_t>(reg(I.A))))
        return fault(I, Address);
      break;
    }
    case MOp::Add:
    case MOp::AddI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Add ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      std::int64_t R;
      bool Ovf = __builtin_add_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Sub:
    case MOp::SubI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Sub ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      std::int64_t R;
      bool Ovf = __builtin_sub_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Mul: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      auto B = static_cast<std::int64_t>(reg(I.B));
      std::int64_t R;
      bool Ovf = __builtin_mul_overflow(A, B, &R);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::And:
    case MOp::AndI: {
      std::uint64_t B = I.Op == MOp::And ? reg(I.B)
                                         : static_cast<std::uint64_t>(I.Imm);
      std::uint64_t R = reg(I.A) & B;
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Or:
    case MOp::OrI: {
      std::uint64_t B = I.Op == MOp::Or ? reg(I.B)
                                        : static_cast<std::uint64_t>(I.Imm);
      std::uint64_t R = reg(I.A) | B;
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Xor: {
      std::uint64_t R = reg(I.A) ^ reg(I.B);
      setReg(I.A, R);
      SetIntFlags(static_cast<std::int64_t>(R), false);
      break;
    }
    case MOp::Shl:
    case MOp::ShlI: {
      std::int64_t Amount =
          I.Op == MOp::Shl ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t R = Amount >= 0 && Amount < 64
                           ? static_cast<std::int64_t>(
                                 static_cast<std::uint64_t>(A) << Amount)
                           : 0;
      // Overflow when shifting back does not round-trip.
      bool Ovf = Amount >= 0 && (Amount >= 64 || asr(R, Amount) != A);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::Sar:
    case MOp::SarI: {
      std::int64_t Amount =
          I.Op == MOp::Sar ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t R = asr(A, std::max<std::int64_t>(Amount, 0));
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, false);
      break;
    }
    case MOp::Quo:
    case MOp::Rem: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      auto B = static_cast<std::int64_t>(reg(I.B));
      if (B == 0) {
        MachineExit E;
        E.Kind = MachExitKind::DivideFault;
        return E;
      }
      std::int64_t R = I.Op == MOp::Quo ? truncDiv(A, B)
                                        : (A == SatMin && B == -1 ? 0 : A % B);
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, false);
      break;
    }
    case MOp::Cmp:
    case MOp::CmpI: {
      auto A = static_cast<std::int64_t>(reg(I.A));
      std::int64_t B =
          I.Op == MOp::Cmp ? static_cast<std::int64_t>(reg(I.B)) : I.Imm;
      Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
      Overflow = false;
      break;
    }
    case MOp::Jmp:
      Next = static_cast<std::size_t>(I.Target);
      break;
    case MOp::Jcc:
      if (condHolds(I.Cond))
        Next = static_cast<std::size_t>(I.Target);
      break;
    case MOp::CallRT:
      if (!runtimeCall(static_cast<RTFunc>(I.Aux))) {
        MachineExit E;
        E.Kind = MachExitKind::SimulationError;
        E.Note.format("unknown runtime function %u", I.Aux);
        return E;
      }
      break;
    case MOp::CallTramp: {
      MachineExit E;
      E.Kind = MachExitKind::TrampolineCall;
      E.Selector = I.Aux;
      E.NumArgs = static_cast<std::uint8_t>(I.Imm);
      return E;
    }
    case MOp::Ret: {
      MachineExit E;
      E.Kind = MachExitKind::Returned;
      return E;
    }
    case MOp::Brk: {
      MachineExit E;
      E.Kind = MachExitKind::Breakpoint;
      E.Marker = I.Aux;
      return E;
    }
    case MOp::FLoad: {
      std::uint64_t Address = reg(I.B) + static_cast<std::uint64_t>(I.Imm);
      auto V = load64(Address);
      if (!V)
        return fault(I, Address);
      double D;
      std::memcpy(&D, &*V, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FMovI: {
      double D;
      std::memcpy(&D, &I.Imm, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FMovFF:
      setFReg(I.FA, freg(I.FB));
      break;
    case MOp::FAdd:
      setFReg(I.FA, freg(I.FA) + freg(I.FB));
      break;
    case MOp::FSub:
      setFReg(I.FA, freg(I.FA) - freg(I.FB));
      break;
    case MOp::FMul:
      setFReg(I.FA, freg(I.FA) * freg(I.FB));
      break;
    case MOp::FDiv:
      setFReg(I.FA, freg(I.FA) / freg(I.FB));
      break;
    case MOp::FSqrt:
      setFReg(I.FA, std::sqrt(freg(I.FA)));
      break;
    case MOp::FTruncF:
      setFReg(I.FA, std::trunc(freg(I.FA)));
      break;
    case MOp::FCvtIF:
      setFReg(I.FA, static_cast<double>(static_cast<std::int64_t>(reg(I.A))));
      break;
    case MOp::FTrunc: {
      double F = freg(I.FA);
      bool Ovf = !(F > -9.3e18 && F < 9.3e18); // NaN also overflows
      std::int64_t R = Ovf ? 0 : static_cast<std::int64_t>(std::trunc(F));
      setReg(I.A, static_cast<std::uint64_t>(R));
      SetIntFlags(R, Ovf);
      break;
    }
    case MOp::FBitsToF: {
      double D;
      std::uint64_t Bits = reg(I.A);
      std::memcpy(&D, &Bits, 8);
      setFReg(I.FA, D);
      break;
    }
    case MOp::FBitsFromF: {
      double D = freg(I.FA);
      std::uint64_t Bits;
      std::memcpy(&Bits, &D, 8);
      setReg(I.A, Bits);
      break;
    }
    case MOp::FBits32ToF: {
      auto Bits = static_cast<std::uint32_t>(reg(I.A));
      float Narrow;
      std::memcpy(&Narrow, &Bits, 4);
      setFReg(I.FA, static_cast<double>(Narrow));
      break;
    }
    case MOp::FBitsFromF32: {
      auto Narrow = static_cast<float>(freg(I.FA));
      std::uint32_t Bits;
      std::memcpy(&Bits, &Narrow, 4);
      setReg(I.A, Bits);
      break;
    }
    case MOp::FCmp: {
      double A = freg(I.FA);
      double B = freg(I.FB);
      if (std::isnan(A) || std::isnan(B))
        Relation = Rel::Unordered;
      else
        Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
      Overflow = false;
      break;
    }
    }
    PC = Next;
  }
  // Running off the end is a code-generation bug.
  MachineExit E;
  E.Kind = MachExitKind::SimulationError;
  E.Note = "execution ran past the end of the generated code";
  return E;
}

MachineExit MachineSim::runThreaded(const PredecodedCode &P,
                                    const std::vector<MInstr> &Reference) {
#if !IGDT_SIM_THREADED
  (void)P;
  return runLoop(Reference, 0);
#else
  // Fuel contract (bit-equal to the reference loop's per-instruction
  // accounting):
  //  - At a block leader with FuelRemaining >= BlockLen, the whole
  //    block is charged up front. Control only leaves a block at its
  //    terminator (terminators are block-final by construction), so a
  //    fully executed block consumes exactly BlockLen — what the
  //    reference loop would have decremented one by one.
  //  - At a leader with FuelRemaining < BlockLen, the remaining fuel
  //    cannot reach the terminator; the tail is delegated to the
  //    reference loop at the same PC, which burns the rest one
  //    instruction at a time and produces the exhaustion (or earlier
  //    fault) with identical state. Exhaustion exactly at a block
  //    boundary lands here with FuelRemaining == 0 < BlockLen.
  //  - A mid-block early exit (fault) refunds the unexecuted remainder
  //    of the charge: Charged - (PC - BlockStart + 1).
  const PInstr *const Ops = P.Instrs.data();
  const std::size_t N = P.Instrs.size();
  std::size_t PC = 0;
  std::size_t BlockStart = 0;
  std::uint32_t Charged = 0;
  const PInstr *I = nullptr;

  // Handler table indexed by PInstr::Handler (the MOp value space);
  // order must match the MOp enum exactly.
  static const void *const Table[] = {
      &&H_MovRR,  &&H_MovRI,  &&H_Load,       &&H_Store,   &&H_Load8,
      &&H_Store8, &&H_Add,    &&H_AddI,       &&H_Sub,     &&H_SubI,
      &&H_Mul,    &&H_And,    &&H_AndI,       &&H_Or,      &&H_OrI,
      &&H_Xor,    &&H_Shl,    &&H_ShlI,       &&H_Sar,     &&H_SarI,
      &&H_Quo,    &&H_Rem,    &&H_Cmp,        &&H_CmpI,    &&H_Jmp,
      &&H_Jcc,    &&H_CallRT, &&H_CallTramp,  &&H_Ret,     &&H_Brk,
      &&H_FLoad,  &&H_FMovI,  &&H_FMovFF,     &&H_FAdd,    &&H_FSub,
      &&H_FMul,   &&H_FDiv,   &&H_FSqrt,      &&H_FTruncF, &&H_FCvtIF,
      &&H_FTrunc, &&H_FCmp,   &&H_FBitsToF,   &&H_FBitsFromF,
      &&H_FBits32ToF, &&H_FBitsFromF32,
  };
  static_assert(sizeof(Table) / sizeof(Table[0]) ==
                    std::size_t(MOp::FBitsFromF32) + 1,
                "dispatch table must cover every MOp");

  auto SetIntFlags = [&](std::int64_t Result, bool Overflowed) {
    Relation = Result < 0 ? Rel::Less : Result == 0 ? Rel::Equal : Rel::Greater;
    Overflow = Overflowed;
  };
  auto RefundUnexecuted = [&] {
    FuelRemaining += Charged - std::uint32_t(PC - BlockStart + 1);
  };

#define IGDT_SIM_DISPATCH()                                                    \
  do {                                                                         \
    if (IGDT_UNLIKELY(PC >= N))                                                \
      goto ran_off_end;                                                        \
    I = &Ops[PC];                                                              \
    if (std::uint32_t BL = I->BlockLen) {                                      \
      if (IGDT_UNLIKELY(FuelRemaining < BL))                                   \
        return runLoop(Reference, PC);                                         \
      FuelRemaining -= BL;                                                     \
      Charged = BL;                                                            \
      BlockStart = PC;                                                         \
    }                                                                          \
    goto *Table[I->Handler];                                                   \
  } while (0)

#define IGDT_SIM_NEXT()                                                        \
  do {                                                                         \
    ++PC;                                                                      \
    IGDT_SIM_DISPATCH();                                                       \
  } while (0)

  IGDT_SIM_DISPATCH();

H_MovRR:
  Regs[I->A] = Regs[I->B];
  IGDT_SIM_NEXT();
H_MovRI:
  Regs[I->A] = static_cast<std::uint64_t>(I->Imm);
  IGDT_SIM_NEXT();
H_Load: {
  std::uint64_t Address = Regs[I->B] + static_cast<std::uint64_t>(I->Imm);
  auto V = load64(Address);
  if (IGDT_UNLIKELY(!V)) {
    RefundUnexecuted();
    return faultExit(false, I->A, I->FA, Address);
  }
  Regs[I->A] = *V;
  IGDT_SIM_NEXT();
}
H_Store: {
  std::uint64_t Address = Regs[I->B] + static_cast<std::uint64_t>(I->Imm);
  if (IGDT_UNLIKELY(!store64(Address, Regs[I->A]))) {
    RefundUnexecuted();
    return faultExit(false, I->A, I->FA, Address);
  }
  IGDT_SIM_NEXT();
}
H_Load8: {
  std::uint64_t Address = Regs[I->B] + static_cast<std::uint64_t>(I->Imm);
  auto V = load8(Address);
  if (IGDT_UNLIKELY(!V)) {
    RefundUnexecuted();
    return faultExit(false, I->A, I->FA, Address);
  }
  Regs[I->A] = *V;
  IGDT_SIM_NEXT();
}
H_Store8: {
  std::uint64_t Address = Regs[I->B] + static_cast<std::uint64_t>(I->Imm);
  if (IGDT_UNLIKELY(
          !store8(Address, static_cast<std::uint8_t>(Regs[I->A])))) {
    RefundUnexecuted();
    return faultExit(false, I->A, I->FA, Address);
  }
  IGDT_SIM_NEXT();
}
H_Add: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  std::int64_t R;
  bool Ovf = __builtin_add_overflow(A, B, &R);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_AddI: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R;
  bool Ovf = __builtin_add_overflow(A, I->Imm, &R);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_Sub: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  std::int64_t R;
  bool Ovf = __builtin_sub_overflow(A, B, &R);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_SubI: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R;
  bool Ovf = __builtin_sub_overflow(A, I->Imm, &R);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_Mul: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  std::int64_t R;
  bool Ovf = __builtin_mul_overflow(A, B, &R);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_And: {
  std::uint64_t R = Regs[I->A] & Regs[I->B];
  Regs[I->A] = R;
  SetIntFlags(static_cast<std::int64_t>(R), false);
  IGDT_SIM_NEXT();
}
H_AndI: {
  std::uint64_t R = Regs[I->A] & static_cast<std::uint64_t>(I->Imm);
  Regs[I->A] = R;
  SetIntFlags(static_cast<std::int64_t>(R), false);
  IGDT_SIM_NEXT();
}
H_Or: {
  std::uint64_t R = Regs[I->A] | Regs[I->B];
  Regs[I->A] = R;
  SetIntFlags(static_cast<std::int64_t>(R), false);
  IGDT_SIM_NEXT();
}
H_OrI: {
  std::uint64_t R = Regs[I->A] | static_cast<std::uint64_t>(I->Imm);
  Regs[I->A] = R;
  SetIntFlags(static_cast<std::int64_t>(R), false);
  IGDT_SIM_NEXT();
}
H_Xor: {
  std::uint64_t R = Regs[I->A] ^ Regs[I->B];
  Regs[I->A] = R;
  SetIntFlags(static_cast<std::int64_t>(R), false);
  IGDT_SIM_NEXT();
}
H_Shl: {
  auto Amount = static_cast<std::int64_t>(Regs[I->B]);
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R = Amount >= 0 && Amount < 64
                       ? static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(A) << Amount)
                       : 0;
  bool Ovf = Amount >= 0 && (Amount >= 64 || asr(R, Amount) != A);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_ShlI: {
  std::int64_t Amount = I->Imm;
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R = Amount >= 0 && Amount < 64
                       ? static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(A) << Amount)
                       : 0;
  bool Ovf = Amount >= 0 && (Amount >= 64 || asr(R, Amount) != A);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_Sar: {
  auto Amount = static_cast<std::int64_t>(Regs[I->B]);
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R = asr(A, std::max<std::int64_t>(Amount, 0));
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, false);
  IGDT_SIM_NEXT();
}
H_SarI: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  std::int64_t R = asr(A, std::max<std::int64_t>(I->Imm, 0));
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, false);
  IGDT_SIM_NEXT();
}
H_Quo: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  if (IGDT_UNLIKELY(B == 0)) {
    RefundUnexecuted();
    MachineExit E;
    E.Kind = MachExitKind::DivideFault;
    return E;
  }
  std::int64_t R = truncDiv(A, B);
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, false);
  IGDT_SIM_NEXT();
}
H_Rem: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  if (IGDT_UNLIKELY(B == 0)) {
    RefundUnexecuted();
    MachineExit E;
    E.Kind = MachExitKind::DivideFault;
    return E;
  }
  std::int64_t R = A == SatMin && B == -1 ? 0 : A % B;
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, false);
  IGDT_SIM_NEXT();
}
H_Cmp: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  auto B = static_cast<std::int64_t>(Regs[I->B]);
  Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
  Overflow = false;
  IGDT_SIM_NEXT();
}
H_CmpI: {
  auto A = static_cast<std::int64_t>(Regs[I->A]);
  Relation = A < I->Imm ? Rel::Less : A == I->Imm ? Rel::Equal : Rel::Greater;
  Overflow = false;
  IGDT_SIM_NEXT();
}
H_Jmp:
  PC = I->Target;
  IGDT_SIM_DISPATCH();
H_Jcc:
  if (condHolds(static_cast<MCond>(I->Cond))) {
    PC = I->Target;
    IGDT_SIM_DISPATCH();
  }
  IGDT_SIM_NEXT();
H_CallRT:
  if (IGDT_UNLIKELY(!runtimeCall(static_cast<RTFunc>(I->Aux)))) {
    RefundUnexecuted();
    MachineExit E;
    E.Kind = MachExitKind::SimulationError;
    E.Note.format("unknown runtime function %u", unsigned(I->Aux));
    return E;
  }
  IGDT_SIM_NEXT();
H_CallTramp: {
  RefundUnexecuted();
  MachineExit E;
  E.Kind = MachExitKind::TrampolineCall;
  E.Selector = I->Aux;
  E.NumArgs = static_cast<std::uint8_t>(I->Imm);
  return E;
}
H_Ret: {
  RefundUnexecuted();
  MachineExit E;
  E.Kind = MachExitKind::Returned;
  return E;
}
H_Brk: {
  RefundUnexecuted();
  MachineExit E;
  E.Kind = MachExitKind::Breakpoint;
  E.Marker = I->Aux;
  return E;
}
H_FLoad: {
  std::uint64_t Address = Regs[I->B] + static_cast<std::uint64_t>(I->Imm);
  auto V = load64(Address);
  if (IGDT_UNLIKELY(!V)) {
    RefundUnexecuted();
    return faultExit(true, I->A, I->FA, Address);
  }
  double D;
  std::memcpy(&D, &*V, 8);
  FRegs[I->FA] = D;
  IGDT_SIM_NEXT();
}
H_FMovI: {
  double D;
  std::memcpy(&D, &I->Imm, 8);
  FRegs[I->FA] = D;
  IGDT_SIM_NEXT();
}
H_FMovFF:
  FRegs[I->FA] = FRegs[I->FB];
  IGDT_SIM_NEXT();
H_FAdd:
  FRegs[I->FA] = FRegs[I->FA] + FRegs[I->FB];
  IGDT_SIM_NEXT();
H_FSub:
  FRegs[I->FA] = FRegs[I->FA] - FRegs[I->FB];
  IGDT_SIM_NEXT();
H_FMul:
  FRegs[I->FA] = FRegs[I->FA] * FRegs[I->FB];
  IGDT_SIM_NEXT();
H_FDiv:
  FRegs[I->FA] = FRegs[I->FA] / FRegs[I->FB];
  IGDT_SIM_NEXT();
H_FSqrt:
  FRegs[I->FA] = std::sqrt(FRegs[I->FA]);
  IGDT_SIM_NEXT();
H_FTruncF:
  FRegs[I->FA] = std::trunc(FRegs[I->FA]);
  IGDT_SIM_NEXT();
H_FCvtIF:
  FRegs[I->FA] =
      static_cast<double>(static_cast<std::int64_t>(Regs[I->A]));
  IGDT_SIM_NEXT();
H_FTrunc: {
  double F = FRegs[I->FA];
  bool Ovf = !(F > -9.3e18 && F < 9.3e18); // NaN also overflows
  std::int64_t R = Ovf ? 0 : static_cast<std::int64_t>(std::trunc(F));
  Regs[I->A] = static_cast<std::uint64_t>(R);
  SetIntFlags(R, Ovf);
  IGDT_SIM_NEXT();
}
H_FCmp: {
  double A = FRegs[I->FA];
  double B = FRegs[I->FB];
  if (std::isnan(A) || std::isnan(B))
    Relation = Rel::Unordered;
  else
    Relation = A < B ? Rel::Less : A == B ? Rel::Equal : Rel::Greater;
  Overflow = false;
  IGDT_SIM_NEXT();
}
H_FBitsToF: {
  double D;
  std::uint64_t Bits = Regs[I->A];
  std::memcpy(&D, &Bits, 8);
  FRegs[I->FA] = D;
  IGDT_SIM_NEXT();
}
H_FBitsFromF: {
  double D = FRegs[I->FA];
  std::uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  Regs[I->A] = Bits;
  IGDT_SIM_NEXT();
}
H_FBits32ToF: {
  auto Bits = static_cast<std::uint32_t>(Regs[I->A]);
  float Narrow;
  std::memcpy(&Narrow, &Bits, 4);
  FRegs[I->FA] = static_cast<double>(Narrow);
  IGDT_SIM_NEXT();
}
H_FBitsFromF32: {
  auto Narrow = static_cast<float>(FRegs[I->FA]);
  std::uint32_t Bits;
  std::memcpy(&Bits, &Narrow, 4);
  Regs[I->A] = Bits;
  IGDT_SIM_NEXT();
}

ran_off_end: {
  // Running off the end is a code-generation bug (same exit as the
  // reference loop's while-condition failure).
  MachineExit E;
  E.Kind = MachExitKind::SimulationError;
  E.Note = "execution ran past the end of the generated code";
  return E;
}

#undef IGDT_SIM_DISPATCH
#undef IGDT_SIM_NEXT
#endif // IGDT_SIM_THREADED
}
