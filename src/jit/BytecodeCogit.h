//===- jit/BytecodeCogit.h - Byte-code to machine-code front-ends ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three byte-code compilers of the evaluation (paper §4.1):
///
///  - SimpleStackCogit maps push/pop byte-codes 1:1 onto machine
///    push/pop against the in-memory operand stack and performs no
///    static type prediction (arithmetic compiles to a send);
///  - StackToRegisterCogit simulates pushes on a parse-time stack and
///    only emits stack accesses when a pop consumes an operand; integer
///    arithmetic is inlined (floats are not — the interpreter inlines
///    both: the optimisation-difference seeds);
///  - RegisterAllocatingCogit extends StackToRegister with a linear-scan
///    register allocator over virtual registers.
///
/// Following the paper's §4.2 compilation schema, the unit of
/// compilation is a one-instruction method: the generated fragment
/// starts with a preamble pushing the concrete input operand stack
/// (genPushLiteral), then the instruction, then a fragment-end
/// breakpoint; branch byte-codes get distinct taken/fall-through
/// breakpoints.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_BYTECODECOGIT_H
#define IGDT_JIT_BYTECODECOGIT_H

#include "jit/CogitOptions.h"
#include "jit/CompiledCode.h"
#include "vm/CompiledMethod.h"
#include "vm/ObjectMemory.h"
#include "vm/VMConfig.h"

namespace igdt {

/// Compiles single byte-code instructions for one of the three byte-code
/// compiler kinds.
class BytecodeCogit {
public:
  BytecodeCogit(CompilerKind Kind, ObjectMemory &Memory,
                const MachineDesc &Desc, CogitOptions Options = CogitOptions())
      : Kind(Kind), Mem(Memory), Desc(Desc), Opts(Options) {}

  /// Compiles the byte-code at PC 0 of \p Method with the given concrete
  /// input operand stack (bottom first). Returns nullopt when the input
  /// stack underflows the instruction (such paths are expected failures
  /// and are not replayed).
  std::optional<CompiledCode> compile(const CompiledMethod &Method,
                                      const std::vector<Oop> &InputStack);

  /// Compiles the *whole* method as one fragment (the sequence-testing
  /// extension): in-method jumps become real branches, the parse-time
  /// stack is flushed at control-flow merge points, and execution falls
  /// through to the fragment-end breakpoint after the last byte-code.
  std::optional<CompiledCode>
  compileMethod(const CompiledMethod &Method,
                const std::vector<Oop> &InputStack);

  CompilerKind kind() const { return Kind; }

private:
  /// The actual front-ends; the public entries wrap them with Compile
  /// trace emission.
  std::optional<CompiledCode> compileImpl(const CompiledMethod &Method,
                                          const std::vector<Oop> &InputStack);
  std::optional<CompiledCode>
  compileMethodImpl(const CompiledMethod &Method,
                    const std::vector<Oop> &InputStack);

  CompilerKind Kind;
  ObjectMemory &Mem;
  const MachineDesc &Desc;
  CogitOptions Opts;
};

} // namespace igdt

#endif // IGDT_JIT_BYTECODECOGIT_H
