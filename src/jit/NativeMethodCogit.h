//===- jit/NativeMethodCogit.h - Template-based primitive compiler -------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native-method compiler: primitives are translated to machine code
/// through hand-written templates (paper §4.1: "native methods
/// implementing primitive operations are translated to IR using a
/// hand-written template-based approach"). Only the native behaviour is
/// compiled; a breakpoint after the template detects fall-through
/// (failure) cases (paper §4.2, Listing 4).
///
/// Calling convention: receiver in R0, arguments in R1..R3, result in R0
/// on a successful Ret; failure falls through to Brk(MarkerPrimitiveFail).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_NATIVEMETHODCOGIT_H
#define IGDT_JIT_NATIVEMETHODCOGIT_H

#include "jit/CogitOptions.h"
#include "jit/CompiledCode.h"
#include "vm/ObjectMemory.h"

namespace igdt {

/// Compiles native methods (primitives) to machine code.
class NativeMethodCogit {
public:
  NativeMethodCogit(ObjectMemory &Memory, const MachineDesc &Desc,
                    CogitOptions Options = CogitOptions())
      : Mem(Memory), Desc(Desc), Opts(Options) {}

  /// Compiles primitive \p PrimIndex; NotImplemented stubs are produced
  /// for the seeded FFI family.
  CompiledCode compile(std::int32_t PrimIndex);

private:
  /// The actual template selection; compile() wraps it with Compile
  /// trace emission.
  CompiledCode compileImpl(std::int32_t PrimIndex);

  ObjectMemory &Mem;
  const MachineDesc &Desc;
  CogitOptions Opts;
};

} // namespace igdt

#endif // IGDT_JIT_NATIVEMETHODCOGIT_H
