//===- jit/ABI.h - Calling convention and frame layout ------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The calling convention shared by all back-ends and the machine
/// simulator.
///
///  - Native methods: receiver in R0, arguments in R1..R3, result in R0,
///    success returns (Ret), failure falls through to Brk.
///  - Byte-code fragments: FP points at the VM frame image in machine
///    memory; [FP+0] holds the receiver, [FP+8+8*i] local i; the operand
///    stack area starts after the locals and grows upward through SP
///    (SP points one past the top).
///  - Spill slots live below FP at [FP - 8*(i+1)].
///  - Send trampolines take receiver and arguments on the operand stack
///    (receiver deepest) with the selector in the instruction.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_ABI_H
#define IGDT_JIT_ABI_H

#include "jit/MachineCode.h"

namespace igdt {

namespace abi {

/// Result / native-method receiver register.
inline constexpr MReg ResultReg = MReg::R0;
/// Native-method argument registers.
inline constexpr MReg Arg0Reg = MReg::R1;
inline constexpr MReg Arg1Reg = MReg::R2;
inline constexpr MReg Arg2Reg = MReg::R3;

/// Virtual base address of the machine stack region.
inline constexpr std::uint64_t StackBase = 0x8000000;
/// Machine stack bytes.
inline constexpr std::uint32_t StackBytes = 64 * 1024;
/// Spill slots reserved below FP.
inline constexpr std::uint32_t NumSpillSlots = 32;

/// Offset of the receiver inside the frame image.
inline constexpr std::int64_t ReceiverOffset = 0;
/// Offset of local \p I.
inline std::int64_t localOffset(unsigned I) { return 8 + 8 * std::int64_t(I); }
/// Offset of the operand-stack base for a method with \p NumLocals.
inline std::int64_t operandBaseOffset(unsigned NumLocals) {
  return 8 + 8 * std::int64_t(NumLocals);
}
/// Address of spill slot \p I relative to FP.
inline std::int64_t spillOffset(unsigned I) {
  return -8 * (std::int64_t(I) + 1);
}

/// Byte offset from an Oop to its body (first slot / float payload).
inline constexpr std::int64_t BodyOffset = 16;
/// Byte offset from an Oop to the 64-bit word holding ClassIndex/format.
inline constexpr std::int64_t Header0Offset = 0;
/// Byte offset from an Oop to the word holding SlotCount/identity hash.
inline constexpr std::int64_t Header1Offset = 8;

} // namespace abi

} // namespace igdt

#endif // IGDT_JIT_ABI_H
