//===- jit/Trampolines.h - Runtime calls and breakpoint markers ---------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifiers of the runtime helpers compiled code may call (boxing,
/// allocation, libm) and of the breakpoint markers the differential
/// tester interprets (paper §4.2: a break instruction after a native
/// method detects fall-through failure cases).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_TRAMPOLINES_H
#define IGDT_JIT_TRAMPOLINES_H

#include <cstdint>

namespace igdt {

/// Runtime helper functions reachable via CallRT.
enum class RTFunc : std::uint16_t {
  /// F0 -> new BoxedFloat in R0.
  BoxFloat,
  /// R1 = class index -> new fixed-slot instance in R0, or 0 on failure.
  AllocPointers,
  /// R1 = class index, R2 = element count -> new indexable instance in
  /// R0, or 0 on failure.
  AllocIndexable,
  /// R1 = source object -> fresh instance of the same class and size
  /// (slots nil) in R0, or 0 on failure.
  AllocLike,
  /// F0 -> libm result in F0.
  Sin,
  Cos,
  Exp,
  Ln,
  ArcTan,
};

/// Breakpoint markers (Brk Aux operands).
enum BrkMarker : std::uint16_t {
  /// End of a compiled byte-code fragment (fall-through continuation).
  MarkerFragmentEnd = 1,
  /// A native method's failure path (fall-through after the native
  /// behaviour, where the compiled byte-code body would start).
  MarkerPrimitiveFail = 2,
  /// A branch byte-code's taken continuation.
  MarkerJumpTaken = 3,
  /// "Not yet implemented" stub (the missing-functionality seeds).
  MarkerNotImplemented = 4,
};

} // namespace igdt

#endif // IGDT_JIT_TRAMPOLINES_H
