//===- jit/MachineCode.h - The simulated target ISA --------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-machine ISA the JIT back-ends emit. The paper's Cogit
/// generates x86/ARM machine code and executes it under Unicorn inside
/// the simulation environment (paper Fig. 4); IGDT's machine simulator
/// plays Unicorn's role, so this ISA is "machine code" for all testing
/// purposes: compiled code performs real loads/stores against the heap,
/// can segfault, calls send trampolines and runtime helpers, and returns
/// through a register-based calling convention.
///
/// Two machine descriptions (x64-like and arm-like) differ in register
/// count and immediate encoding, exercising the lowering paths the way
/// the paper's two back-ends (x86, ARMv5-7) do.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_MACHINECODE_H
#define IGDT_JIT_MACHINECODE_H

#include "vm/SelectorTable.h"

#include <cstdint>
#include <string>
#include <vector>

namespace igdt {

/// General-purpose registers. FP/SP are architectural and never
/// allocated. NoReg marks an unused operand slot.
enum class MReg : std::uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  R11,
  FP = 12,
  SP = 13,
  NoReg = 15,
};

/// Float registers.
enum class FReg : std::uint8_t { F0 = 0, F1, F2, F3, F4, F5, F6, F7, NoFReg = 15 };

/// Branch conditions over the last comparison relation / overflow flag.
enum class MCond : std::uint8_t {
  Always,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Ov,   // last arithmetic overflowed
  NoOv,
};

/// Opcodes. Binary register forms compute A = A op B; immediate forms
/// compute A = A op Imm. Loads/stores address [B + Imm].
enum class MOp : std::uint8_t {
  MovRR, // A = B
  MovRI, // A = Imm
  Load,  // A = mem64[B + Imm]
  Store, // mem64[B + Imm] = A
  Load8, // A = zext mem8[B + Imm]
  Store8,
  Add, // sets overflow flag
  AddI,
  Sub, // sets overflow flag
  SubI,
  Mul, // sets overflow flag
  And,
  AndI,
  Or,
  OrI,
  Xor,
  Shl,
  ShlI,
  Sar,
  SarI,
  Quo, // A = A / B (truncated; B != 0 or machine fault)
  Rem, // A = A % B (C semantics)
  Cmp, // relation(A, B)
  CmpI,
  Jmp, // Target
  Jcc, // Cond, Target
  CallRT,    // Aux = RTFunc
  CallTramp, // Aux = selector id, Imm = arg count
  Ret,
  Brk, // Aux = marker
  // Float operations.
  FLoad,  // FA = double mem[B + Imm]
  FMovI,  // FA = double with bit pattern Imm
  FMovFF, // FA = FB
  FAdd,   // FA = FA op FB
  FSub,
  FMul,
  FDiv,
  FSqrt,   // FA = sqrt(FA)
  FTruncF, // FA = trunc(FA) as double
  FCvtIF,  // FA = (double)A
  FTrunc,  // A = (int64)trunc(FA); overflow flag on out-of-range
  FCmp,    // relation(FA, FB); NaN compares unordered
  FBitsToF,     // FA = bitcast(A)
  FBitsFromF,   // A = bitcast(FA)
  FBits32ToF,   // FA = (double)bitcast<float>(low32(A))
  FBitsFromF32, // A = zext(bitcast<u32>((float)FA))
};

/// One machine instruction.
struct MInstr {
  MOp Op;
  MCond Cond = MCond::Always;
  MReg A = MReg::NoReg;
  MReg B = MReg::NoReg;
  FReg FA = FReg::NoFReg;
  FReg FB = FReg::NoFReg;
  std::int64_t Imm = 0;
  std::int32_t Target = -1; // resolved instruction index
  std::uint16_t Aux = 0;
};

/// Description of one simulated target.
struct MachineDesc {
  const char *Name;
  /// Registers the compilers may allocate (R0..N-1 minus reserved ones).
  unsigned NumAllocatableRegs;
  /// Largest immediate reg-op immediates may carry; bigger values are
  /// legalised through the scratch register.
  std::int64_t MaxOperandImmediate;
  /// Scratch register reserved for immediate legalisation.
  MReg ScratchReg;
  /// Float registers available.
  unsigned NumFloatRegs;
};

/// The x86-64-like target: many registers, 64-bit immediates everywhere.
const MachineDesc &x64Desc();

/// The ARM32-like target: fewer registers, 16-bit operand immediates.
const MachineDesc &armDesc();

/// Renders one instruction for debugging and tests.
std::string printMInstr(const MInstr &I);

/// Renders a code vector with indices.
std::string printMachineCode(const std::vector<MInstr> &Code);

} // namespace igdt

#endif // IGDT_JIT_MACHINECODE_H
