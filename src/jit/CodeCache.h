//===- jit/CodeCache.h - Compile-once code caching ------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-once caching of front-end output. Compilation in IGDT is a
/// pure function: the cogits read nothing from the heap except the
/// nil/true/false singletons (identical in every fresh ObjectMemory)
/// and embed the input-stack Oops as immediates, so CompiledCode is
/// fully determined by (compiler kind, back-end, CogitOptions seeds,
/// compilation unit, input-stack values). The differential tester
/// re-compiles that same unit for every replayed path; with the paths
/// of one instruction differing only in their models, most replays
/// share the key and the cache turns O(paths) compiles into O(distinct
/// input shapes).
///
/// Keys are exact (an injective encoding, not a hash), so a hit can
/// never alias two different compilation units. Only *successful*
/// compiles are stored: a std::nullopt from the byte-code cogit
/// (operand-stack underflow) is cheap to re-derive, and the armed
/// InjectFrontEndThrow fault throws before anything reaches the cache
/// — the tester additionally bypasses lookups while that fault is
/// armed so injected crashes fire deterministically on every path.
///
/// On a hit the tester replays the cogit's Compile trace event with
/// identical fields, so deterministic traces are byte-identical with
/// the cache on or off; only filtered CacheLookup diagnostics
/// ("code-hit"/"code-miss") tell the difference.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_CODECACHE_H
#define IGDT_JIT_CODECACHE_H

#include "jit/CogitOptions.h"
#include "jit/CompiledCode.h"
#include "vm/CompiledMethod.h"

#include <cstdint>
#include <map>
#include <vector>

namespace igdt {

class MetricsRegistry;

/// Compile-once counters, reported next to SolverStats by the
/// evaluation harness. Like the solver's reuse counters these are
/// diagnostics: never serialised into campaign checkpoints (a resumed
/// campaign skips the compiles a fresh one performs).
struct JitCacheStats {
  /// Front-end invocations that actually ran (cache misses + runs with
  /// no cache configured count alike: a compile is a compile).
  std::uint64_t Compiles = 0;
  /// Replays served from the cache instead of re-compiling.
  std::uint64_t CodeCacheHits = 0;

  void add(const JitCacheStats &Other) {
    Compiles += Other.Compiles;
    CodeCacheHits += Other.CodeCacheHits;
  }
};

/// Compile-once cache of CompiledCode per compilation unit. Holds no
/// counters itself — the tester charges a JitCacheStats it is handed,
/// so compiles are counted identically with the cache on or off. Not
/// thread-safe: owners keep it worker-local (the campaign runner holds
/// one per instruction attempt, Session one per session).
class JitCodeCache {
public:
  /// An injective encoding of everything a compile depends on.
  using Key = std::vector<std::uint64_t>;

  /// Null on miss.
  const CompiledCode *lookup(const Key &K) const;

  /// Stores a successful compile.
  void store(const Key &K, const CompiledCode &Code);

  std::size_t size() const { return Entries.size(); }

private:
  std::map<Key, CompiledCode> Entries;
};

/// Folds \p Stats into \p Registry as "jit.compiles" and
/// "jit.code_cache.hits" — the compile-side mirror of foldSolverStats.
void foldJitStats(MetricsRegistry &Registry, const JitCacheStats &Stats);

/// Key for a native-method (primitive) compile.
JitCodeCache::Key codeCacheKey(CompilerKind Kind, bool ArmBackend,
                               const CogitOptions &Opts,
                               std::int32_t PrimitiveIndex);

/// Key for a byte-code compile: the method body, literals, temps, the
/// input-stack Oops the preamble embeds, and whether the whole method
/// ran as one fragment (sequence mode) or a single instruction.
JitCodeCache::Key codeCacheKey(CompilerKind Kind, bool ArmBackend,
                               const CogitOptions &Opts,
                               const CompiledMethod &Method,
                               const std::vector<Oop> &InputStack,
                               bool IsSequence);

} // namespace igdt

#endif // IGDT_JIT_CODECACHE_H
