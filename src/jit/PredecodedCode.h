//===- jit/PredecodedCode.h - Pre-decoded threaded dispatch form ----------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pre-decoded execution form for simulated machine code, built once
/// per compilation unit and executed by the threaded fast path in
/// MachineSim (emulator practice: resolve operands and densify handler
/// ids ahead of time, then dispatch with computed goto instead of a
/// branchy switch). Instructions map 1:1 onto the originating MInstr
/// vector — PInstr index == MInstr index — so the fast path can hand
/// any program point to the reference switch loop and continue with
/// byte-identical semantics.
///
/// Basic-block leaders additionally carry the block's instruction
/// count, letting the fast path charge fuel once per block instead of
/// once per instruction (see MachineSim::runPredecoded for the
/// accounting contract that keeps FuelLeft bit-equal to the reference
/// loop's).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_PREDECODEDCODE_H
#define IGDT_JIT_PREDECODEDCODE_H

#include "jit/MachineCode.h"

#include <cstdint>
#include <vector>

namespace igdt {

struct CompiledCode;
struct SimStats;

/// One pre-decoded instruction. Fields are flattened to raw integers so
/// a handler reads exactly what it needs with no enum re-decoding; the
/// handler id is the MOp value except where forms are densified at
/// build time (an unconditional Jcc becomes a Jmp, dropping the flag
/// test from the hot loop).
struct PInstr {
  std::uint8_t Handler = 0; ///< Dispatch-table index (MOp value space).
  std::uint8_t Cond = 0;    ///< MCond value (Jcc only).
  std::uint8_t A = 0;       ///< GP destination/source register number.
  std::uint8_t B = 0;       ///< GP source register number.
  std::uint8_t FA = 0;      ///< FP destination/source register number.
  std::uint8_t FB = 0;      ///< FP source register number.
  std::uint16_t Aux = 0;    ///< Selector / marker / runtime function id.
  /// Basic-block leaders: number of instructions in the block this
  /// instruction starts; 0 for instructions inside a block.
  std::uint32_t BlockLen = 0;
  std::uint32_t Target = 0; ///< Jump target (huge value when absent).
  std::int64_t Imm = 0;     ///< Immediate operand.
};

/// The pre-decoded form of one compilation unit.
struct PredecodedCode {
  std::vector<PInstr> Instrs; ///< 1:1 with the originating MInstr vector.
  std::uint32_t BlockCount = 0;
};

/// Builds the pre-decoded form of \p Code: computes basic-block leaders
/// ({0} ∪ branch targets ∪ successors of control transfers), stamps
/// each leader with its block length, and flattens operands.
PredecodedCode predecode(const std::vector<MInstr> &Code);

/// The pre-decoded form of \p Code, building and caching it on first
/// use. The cache lives on the CompiledCode itself (a shared_ptr shared
/// by every copy the code cache serves), so a compilation unit is
/// predecoded at most once no matter how many paths replay it.
/// Build/hit counters land in \p Stats when non-null. Not thread-safe
/// against concurrent calls on copies sharing the pointer; owners keep
/// compiled code worker-local like the code cache itself.
const PredecodedCode &predecodedFor(const CompiledCode &Code,
                                    SimStats *Stats);

/// True when this build carries the computed-goto threaded dispatcher
/// (labels-as-values is a GNU extension); otherwise the predecoded
/// engine transparently degrades to the reference switch loop.
/// Defined in support/CpuFeatures.cpp alongside the native-tier probe.
bool simThreadedDispatchSupported();

} // namespace igdt

#endif // IGDT_JIT_PREDECODEDCODE_H
