//===- jit/Lowering.cpp - IR to machine code ---------------------------------===//

#include "jit/Lowering.h"

#include "support/Compiler.h"

using namespace igdt;

namespace {

MOp machineOpFor(IROp Op) {
  switch (Op) {
  case IROp::MovRR:
    return MOp::MovRR;
  case IROp::MovRI:
    return MOp::MovRI;
  case IROp::Load:
    return MOp::Load;
  case IROp::Store:
    return MOp::Store;
  case IROp::Load8:
    return MOp::Load8;
  case IROp::Store8:
    return MOp::Store8;
  case IROp::Add:
    return MOp::Add;
  case IROp::AddI:
    return MOp::AddI;
  case IROp::Sub:
    return MOp::Sub;
  case IROp::SubI:
    return MOp::SubI;
  case IROp::Mul:
    return MOp::Mul;
  case IROp::And:
    return MOp::And;
  case IROp::AndI:
    return MOp::AndI;
  case IROp::Or:
    return MOp::Or;
  case IROp::OrI:
    return MOp::OrI;
  case IROp::Xor:
    return MOp::Xor;
  case IROp::Shl:
    return MOp::Shl;
  case IROp::ShlI:
    return MOp::ShlI;
  case IROp::Sar:
    return MOp::Sar;
  case IROp::SarI:
    return MOp::SarI;
  case IROp::Quo:
    return MOp::Quo;
  case IROp::Rem:
    return MOp::Rem;
  case IROp::Cmp:
    return MOp::Cmp;
  case IROp::CmpI:
    return MOp::CmpI;
  case IROp::Jmp:
    return MOp::Jmp;
  case IROp::Jcc:
    return MOp::Jcc;
  case IROp::CallRT:
    return MOp::CallRT;
  case IROp::CallTramp:
    return MOp::CallTramp;
  case IROp::Ret:
    return MOp::Ret;
  case IROp::Brk:
    return MOp::Brk;
  case IROp::FLoad:
    return MOp::FLoad;
  case IROp::FMovI:
    return MOp::FMovI;
  case IROp::FMovFF:
    return MOp::FMovFF;
  case IROp::FAdd:
    return MOp::FAdd;
  case IROp::FSub:
    return MOp::FSub;
  case IROp::FMul:
    return MOp::FMul;
  case IROp::FDiv:
    return MOp::FDiv;
  case IROp::FSqrt:
    return MOp::FSqrt;
  case IROp::FTruncF:
    return MOp::FTruncF;
  case IROp::FCvtIF:
    return MOp::FCvtIF;
  case IROp::FTrunc:
    return MOp::FTrunc;
  case IROp::FCmp:
    return MOp::FCmp;
  case IROp::FBitsToF:
    return MOp::FBitsToF;
  case IROp::FBitsFromF:
    return MOp::FBitsFromF;
  case IROp::FBits32ToF:
    return MOp::FBits32ToF;
  case IROp::FBitsFromF32:
    return MOp::FBitsFromF32;
  case IROp::Label:
    igdt_unreachable("labels are not machine instructions");
  }
  igdt_unreachable("unhandled IR op");
}

/// Reg-immediate opcodes whose immediates the arm-like target restricts,
/// paired with their reg-reg form.
bool immediateForm(IROp Op, MOp &RegForm) {
  switch (Op) {
  case IROp::AddI:
    RegForm = MOp::Add;
    return true;
  case IROp::SubI:
    RegForm = MOp::Sub;
    return true;
  case IROp::AndI:
    RegForm = MOp::And;
    return true;
  case IROp::OrI:
    RegForm = MOp::Or;
    return true;
  case IROp::CmpI:
    RegForm = MOp::Cmp;
    return true;
  default:
    return false;
  }
}

} // namespace

std::vector<MInstr> igdt::lowerIR(const IRFunction &F,
                                  const MachineDesc &Desc,
                                  const std::map<VReg, MReg> &Assignment) {
  auto MapReg = [&](VReg V) -> MReg {
    if (V == NoVReg)
      return MReg::NoReg;
    if (V < FirstVirtualReg)
      return static_cast<MReg>(V);
    auto It = Assignment.find(V);
    assert(It != Assignment.end() && "unassigned virtual register");
    return It->second;
  };

  // Pass 1: emit instructions, remembering label positions and which
  // emitted branches need their label id translated.
  std::vector<MInstr> Code;
  std::map<std::int32_t, std::int32_t> LabelPos;
  std::vector<std::size_t> Fixups;

  for (const IRInstr &I : F.Code) {
    if (I.Op == IROp::Label) {
      LabelPos[I.Target] = static_cast<std::int32_t>(Code.size());
      continue;
    }

    MOp RegForm;
    bool NeedsLegalise =
        immediateForm(I.Op, RegForm) &&
        (I.Imm > Desc.MaxOperandImmediate || I.Imm < -Desc.MaxOperandImmediate);
    if (NeedsLegalise) {
      // mov scratch, #imm ; op A, scratch
      MInstr Mov;
      Mov.Op = MOp::MovRI;
      Mov.A = Desc.ScratchReg;
      Mov.Imm = I.Imm;
      Code.push_back(Mov);

      MInstr Op;
      Op.Op = RegForm;
      Op.A = MapReg(I.A);
      Op.B = Desc.ScratchReg;
      Code.push_back(Op);
      continue;
    }

    MInstr M;
    M.Op = machineOpFor(I.Op);
    M.Cond = I.Cond;
    M.A = MapReg(I.A);
    M.B = MapReg(I.B);
    M.FA = I.FA;
    M.FB = I.FB;
    M.Imm = I.Imm;
    M.Aux = I.Aux;
    if (I.Op == IROp::Jmp || I.Op == IROp::Jcc) {
      M.Target = I.Target; // label id, fixed up below
      Fixups.push_back(Code.size());
    }
    Code.push_back(M);
  }

  // Pass 2: resolve branch targets.
  for (std::size_t Idx : Fixups) {
    auto It = LabelPos.find(Code[Idx].Target);
    assert(It != LabelPos.end() && "branch to unplaced label");
    Code[Idx].Target = It->second;
  }
  return Code;
}
