//===- jit/CompiledCode.h - Front-end output -----------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What a front-end produces for one instruction under test, and the
/// metadata the differential tester needs to interpret the machine state
/// afterwards: where each final operand-stack entry lives (interpreter
/// and compiler frames need not have the same shape — paper §2.4 — so
/// the tester reads the layout the compiler reports).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_COMPILEDCODE_H
#define IGDT_JIT_COMPILEDCODE_H

#include "jit/MachineCode.h"
#include "vm/Oop.h"

#include <memory>
#include <vector>

namespace igdt {

struct PredecodedCode;
struct NativeCode;

/// Where one operand-stack entry lives when the fragment finishes.
struct ValueLoc {
  enum class Kind : std::uint8_t {
    OperandStack, ///< in the in-memory operand stack (in order)
    Register,     ///< in machine register Reg
    Constant,     ///< a compile-time constant (parse-time stack)
    FrameLocal,   ///< still aliased to frame local Index
    Receiver,     ///< still aliased to the frame receiver
    SpillSlot,    ///< in FP-relative spill slot Index
  };
  Kind K = Kind::OperandStack;
  MReg Reg = MReg::NoReg;
  Oop Const = InvalidOop;
  std::uint32_t Index = 0;

  static ValueLoc onStack() { return {}; }
  static ValueLoc inReg(MReg R) {
    ValueLoc L;
    L.K = Kind::Register;
    L.Reg = R;
    return L;
  }
  static ValueLoc constant(Oop V) {
    ValueLoc L;
    L.K = Kind::Constant;
    L.Const = V;
    return L;
  }
  static ValueLoc local(std::uint32_t I) {
    ValueLoc L;
    L.K = Kind::FrameLocal;
    L.Index = I;
    return L;
  }
  static ValueLoc receiver() {
    ValueLoc L;
    L.K = Kind::Receiver;
    return L;
  }
  static ValueLoc spill(std::uint32_t I) {
    ValueLoc L;
    L.K = Kind::SpillSlot;
    L.Index = I;
    return L;
  }
};

/// A compiled instruction plus its observation metadata.
struct CompiledCode {
  std::vector<MInstr> Code;
  /// Final operand-stack layout (bottom to top) at the fragment-end
  /// breakpoint. Entries of kind OperandStack are consumed from the
  /// in-memory stack in order.
  std::vector<ValueLoc> FinalStack;
  /// True when the compiler only emitted a not-implemented stub.
  bool NotImplemented = false;
  /// True when control flow makes the final layout dynamic: the tester
  /// reads the whole in-memory operand stack instead of FinalStack.
  bool DynamicStack = false;
  /// Statistics for the evaluation harness.
  unsigned IRLength = 0;
  unsigned SpillCount = 0;
  /// Threaded-dispatch form (jit/PredecodedCode.h), built lazily by
  /// predecodedFor(). Shared across copies: the code cache stores one
  /// entry per compilation unit and serves value copies per path, so
  /// the pointer makes the predecode a build-once property of the unit
  /// rather than of any copy. Mutable because building it observes the
  /// code without changing it.
  mutable std::shared_ptr<const PredecodedCode> Predecoded;
  /// Native x86-64 form (jit/native/NativeCode.h), built lazily by
  /// nativeFor() under the same build-once-per-unit contract. Rebuilt
  /// only when the miscompile-probe setting changes.
  mutable std::shared_ptr<const NativeCode> Native;
};

} // namespace igdt

#endif // IGDT_JIT_COMPILEDCODE_H
