//===- jit/IRPrinter.cpp - IR debugging output ---------------------------------===//

#include "jit/IR.h"

#include "support/StringUtils.h"

using namespace igdt;

std::string igdt::printIR(const IRFunction &F) {
  auto RegName = [](VReg V) -> std::string {
    if (V == NoVReg)
      return "_";
    if (V < FirstVirtualReg)
      return formatString("r%u", unsigned(V));
    return formatString("v%u", unsigned(V));
  };
  std::string Out;
  for (std::size_t Pos = 0; Pos < F.Code.size(); ++Pos) {
    const IRInstr &I = F.Code[Pos];
    if (I.Op == IROp::Label) {
      Out += formatString("L%d:\n", I.Target);
      continue;
    }
    Out += formatString("  %3zu: op=%u cond=%u A=%s B=%s imm=%lld tgt=%d "
                        "aux=%u\n",
                        Pos, unsigned(I.Op), unsigned(I.Cond),
                        RegName(I.A).c_str(), RegName(I.B).c_str(),
                        (long long)I.Imm, I.Target, I.Aux);
  }
  return Out;
}
