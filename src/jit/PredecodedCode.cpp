//===- jit/PredecodedCode.cpp - Pre-decoded threaded dispatch form --------===//

#include "jit/PredecodedCode.h"

#include "jit/CompiledCode.h"
#include "jit/MachineSim.h"

#include <memory>

using namespace igdt;

PredecodedCode igdt::predecode(const std::vector<MInstr> &Code) {
  PredecodedCode P;
  const std::size_t N = Code.size();
  P.Instrs.resize(N);
  if (N == 0)
    return P;

  // Leaders: entry, every branch target, and every successor of an
  // instruction that can transfer or end control. Terminators are thus
  // always block-final, which is what lets the fast path charge a whole
  // block's fuel at its leader (a terminator at offset L-1 is only
  // reached when the block had fuel for all L instructions).
  std::vector<std::uint8_t> Leader(N, 0);
  Leader[0] = 1;
  auto MarkTarget = [&](std::int32_t T) {
    if (T >= 0 && static_cast<std::size_t>(T) < N)
      Leader[static_cast<std::size_t>(T)] = 1;
  };
  for (std::size_t I = 0; I < N; ++I) {
    switch (Code[I].Op) {
    case MOp::Jmp:
    case MOp::Jcc:
      MarkTarget(Code[I].Target);
      if (I + 1 < N)
        Leader[I + 1] = 1;
      break;
    case MOp::Ret:
    case MOp::Brk:
    case MOp::CallTramp:
      if (I + 1 < N)
        Leader[I + 1] = 1;
      break;
    default:
      break;
    }
  }

  for (std::size_t I = 0; I < N; ++I) {
    const MInstr &M = Code[I];
    PInstr &D = P.Instrs[I];
    MOp Op = M.Op;
    if (Op == MOp::Jcc && M.Cond == MCond::Always)
      Op = MOp::Jmp; // densify: an unconditional Jcc needs no flag test
    D.Handler = static_cast<std::uint8_t>(Op);
    D.Cond = static_cast<std::uint8_t>(M.Cond);
    D.A = static_cast<std::uint8_t>(M.A);
    D.B = static_cast<std::uint8_t>(M.B);
    D.FA = static_cast<std::uint8_t>(M.FA);
    D.FB = static_cast<std::uint8_t>(M.FB);
    D.Aux = M.Aux;
    D.Imm = M.Imm;
    // An absent target (-1) wraps to a huge index; the dispatcher's
    // bounds check turns it into the same ran-past-the-end exit the
    // reference loop produces for size_t(-1).
    D.Target = static_cast<std::uint32_t>(M.Target);
  }

  for (std::size_t I = 0; I < N;) {
    std::size_t End = I + 1;
    while (End < N && !Leader[End])
      ++End;
    P.Instrs[I].BlockLen = static_cast<std::uint32_t>(End - I);
    ++P.BlockCount;
    I = End;
  }
  return P;
}

const PredecodedCode &igdt::predecodedFor(const CompiledCode &Code,
                                          SimStats *Stats) {
  if (!Code.Predecoded) {
    Code.Predecoded =
        std::make_shared<const PredecodedCode>(predecode(Code.Code));
    if (Stats)
      ++Stats->PredecodeBuilds;
  } else if (Stats) {
    ++Stats->PredecodeHits;
  }
  return *Code.Predecoded;
}
