//===- jit/LinearScan.h - Linear-scan register allocation ----------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-scan register allocator behind the experimental
/// RegisterAllocatingCogit (paper §4.1): live intervals over the linear
/// IR, allocation over the target's allocatable registers, and spilling
/// into the FP-relative spill area when pressure exceeds the register
/// file. Spilled uses/defs are rewritten through reserved scratch
/// registers so that lowering only ever sees machine registers.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_LINEARSCAN_H
#define IGDT_JIT_LINEARSCAN_H

#include "jit/IR.h"

#include <map>

namespace igdt {

/// Allocation outcome.
struct AllocationResult {
  /// Virtual register -> machine register (spilled vregs are rewritten
  /// away and do not appear here).
  std::map<VReg, MReg> Assignment;
  /// Virtual register -> FP-relative spill slot for spilled vregs.
  std::map<VReg, unsigned> Spilled;
  unsigned SpillCount = 0;
  unsigned IntervalCount = 0;
};

/// Runs linear scan over \p F for \p Desc. May rewrite \p F to insert
/// spill code. Returns the final assignment for lowerIR.
AllocationResult allocateRegistersLinearScan(IRFunction &F,
                                             const MachineDesc &Desc);

} // namespace igdt

#endif // IGDT_JIT_LINEARSCAN_H
