//===- jit/MachineCode.cpp - The simulated target ISA -------------------------===//

#include "jit/MachineCode.h"

#include "support/StringUtils.h"

using namespace igdt;

const MachineDesc &igdt::x64Desc() {
  static const MachineDesc Desc = {
      /*Name=*/"x64",
      /*NumAllocatableRegs=*/10, // R0..R9 (R10/R11 reserved, FP/SP arch)
      /*MaxOperandImmediate=*/std::int64_t(1) << 62,
      /*ScratchReg=*/MReg::R11,
      /*NumFloatRegs=*/8,
  };
  return Desc;
}

const MachineDesc &igdt::armDesc() {
  static const MachineDesc Desc = {
      /*Name=*/"arm",
      /*NumAllocatableRegs=*/6, // R0..R5
      /*MaxOperandImmediate=*/0x7FFF, // 16-bit operand immediates
      /*ScratchReg=*/MReg::R11,
      /*NumFloatRegs=*/8,
  };
  return Desc;
}

static std::string regName(MReg R) {
  if (R == MReg::FP)
    return "fp";
  if (R == MReg::SP)
    return "sp";
  if (R == MReg::NoReg)
    return "_";
  return formatString("r%u", unsigned(R));
}

static std::string fregName(FReg R) {
  if (R == FReg::NoFReg)
    return "_";
  return formatString("f%u", unsigned(R));
}

static const char *condName(MCond C) {
  switch (C) {
  case MCond::Always:
    return "";
  case MCond::Eq:
    return "eq";
  case MCond::Ne:
    return "ne";
  case MCond::Lt:
    return "lt";
  case MCond::Le:
    return "le";
  case MCond::Gt:
    return "gt";
  case MCond::Ge:
    return "ge";
  case MCond::Ov:
    return "ov";
  case MCond::NoOv:
    return "noov";
  }
  return "?";
}

std::string igdt::printMInstr(const MInstr &I) {
  auto R = [&](MReg X) { return regName(X); };
  auto F = [&](FReg X) { return fregName(X); };
  switch (I.Op) {
  case MOp::MovRR:
    return formatString("mov %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::MovRI:
    return formatString("mov %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Load:
    return formatString("ldr %s, [%s + %lld]", R(I.A).c_str(),
                        R(I.B).c_str(), (long long)I.Imm);
  case MOp::Store:
    return formatString("str %s, [%s + %lld]", R(I.A).c_str(),
                        R(I.B).c_str(), (long long)I.Imm);
  case MOp::Load8:
    return formatString("ldrb %s, [%s + %lld]", R(I.A).c_str(),
                        R(I.B).c_str(), (long long)I.Imm);
  case MOp::Store8:
    return formatString("strb %s, [%s + %lld]", R(I.A).c_str(),
                        R(I.B).c_str(), (long long)I.Imm);
  case MOp::Add:
    return formatString("add %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::AddI:
    return formatString("add %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Sub:
    return formatString("sub %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::SubI:
    return formatString("sub %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Mul:
    return formatString("mul %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::And:
    return formatString("and %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::AndI:
    return formatString("and %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Or:
    return formatString("orr %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::OrI:
    return formatString("orr %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Xor:
    return formatString("eor %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::Shl:
    return formatString("lsl %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::ShlI:
    return formatString("lsl %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Sar:
    return formatString("asr %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::SarI:
    return formatString("asr %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Quo:
    return formatString("sdiv %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::Rem:
    return formatString("srem %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::Cmp:
    return formatString("cmp %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case MOp::CmpI:
    return formatString("cmp %s, #%lld", R(I.A).c_str(), (long long)I.Imm);
  case MOp::Jmp:
    return formatString("b %d", I.Target);
  case MOp::Jcc:
    return formatString("b.%s %d", condName(I.Cond), I.Target);
  case MOp::CallRT:
    return formatString("call rt#%u", I.Aux);
  case MOp::CallTramp:
    return formatString("call send#%u nargs=%lld", I.Aux, (long long)I.Imm);
  case MOp::Ret:
    return "ret";
  case MOp::Brk:
    return formatString("brk #%u", I.Aux);
  case MOp::FLoad:
    return formatString("fldr %s, [%s + %lld]", F(I.FA).c_str(),
                        R(I.B).c_str(), (long long)I.Imm);
  case MOp::FMovI:
    return formatString("fmov %s, bits:%llx", F(I.FA).c_str(),
                        (unsigned long long)I.Imm);
  case MOp::FMovFF:
    return formatString("fmov %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FAdd:
    return formatString("fadd %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FSub:
    return formatString("fsub %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FMul:
    return formatString("fmul %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FDiv:
    return formatString("fdiv %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FSqrt:
    return formatString("fsqrt %s", F(I.FA).c_str());
  case MOp::FTruncF:
    return formatString("ftruncf %s", F(I.FA).c_str());
  case MOp::FCvtIF:
    return formatString("fcvt %s, %s", F(I.FA).c_str(), R(I.A).c_str());
  case MOp::FTrunc:
    return formatString("ftrunc %s, %s", R(I.A).c_str(), F(I.FA).c_str());
  case MOp::FCmp:
    return formatString("fcmp %s, %s", F(I.FA).c_str(), F(I.FB).c_str());
  case MOp::FBitsToF:
    return formatString("fbits %s, %s", F(I.FA).c_str(), R(I.A).c_str());
  case MOp::FBitsFromF:
    return formatString("fbits %s, %s", R(I.A).c_str(), F(I.FA).c_str());
  case MOp::FBits32ToF:
    return formatString("fbits32 %s, %s", F(I.FA).c_str(), R(I.A).c_str());
  case MOp::FBitsFromF32:
    return formatString("fbits32 %s, %s", R(I.A).c_str(), F(I.FA).c_str());
  }
  return "?";
}

std::string igdt::printMachineCode(const std::vector<MInstr> &Code) {
  std::string Out;
  for (std::size_t I = 0; I < Code.size(); ++I)
    Out += formatString("%4zu: %s\n", I, printMInstr(Code[I]).c_str());
  return Out;
}
