//===- jit/LinearScan.cpp - Linear-scan register allocation --------------------===//

#include "jit/LinearScan.h"

#include "jit/ABI.h"
#include "support/Compiler.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace igdt;

namespace {

bool readsA(IROp Op) {
  switch (Op) {
  case IROp::MovRI:
  case IROp::Load:
  case IROp::Load8:
  case IROp::FTrunc:
  case IROp::FBitsFromF:
  case IROp::FBitsFromF32:
    return false; // A is written only
  default:
    return true;
  }
}

bool writesA(IROp Op) {
  switch (Op) {
  case IROp::Store:
  case IROp::Store8:
  case IROp::Cmp:
  case IROp::CmpI:
  case IROp::FCvtIF:
  case IROp::FBitsToF:
  case IROp::FBits32ToF:
    return false; // A is read only
  default:
    return true;
  }
}

bool usesB(IROp Op) {
  switch (Op) {
  case IROp::Load:
  case IROp::Store:
  case IROp::Load8:
  case IROp::Store8:
  case IROp::FLoad:
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Sar:
  case IROp::Quo:
  case IROp::Rem:
  case IROp::Cmp:
  case IROp::MovRR:
    return true;
  default:
    return false;
  }
}

struct Interval {
  VReg Reg;
  std::size_t Start;
  std::size_t End;
};

} // namespace

AllocationResult igdt::allocateRegistersLinearScan(IRFunction &F,
                                                   const MachineDesc &Desc) {
  AllocationResult Result;

  // Live intervals: first position touching the vreg to the last.
  std::map<VReg, Interval> Intervals;
  auto Touch = [&](VReg V, std::size_t Pos) {
    if (V == NoVReg || V < FirstVirtualReg)
      return;
    auto It = Intervals.find(V);
    if (It == Intervals.end())
      Intervals.emplace(V, Interval{V, Pos, Pos});
    else
      It->second.End = Pos;
  };

  std::map<std::int32_t, std::size_t> LabelPos;
  for (std::size_t Pos = 0; Pos < F.Code.size(); ++Pos)
    if (F.Code[Pos].Op == IROp::Label)
      LabelPos[F.Code[Pos].Target] = Pos;

  for (std::size_t Pos = 0; Pos < F.Code.size(); ++Pos) {
    const IRInstr &I = F.Code[Pos];
    Touch(I.A, Pos);
    if (usesB(I.Op))
      Touch(I.B, Pos);
  }

  // Backward branches: any interval overlapping [target, branch] must
  // survive the whole loop body.
  for (std::size_t Pos = 0; Pos < F.Code.size(); ++Pos) {
    const IRInstr &I = F.Code[Pos];
    if (I.Op != IROp::Jmp && I.Op != IROp::Jcc)
      continue;
    auto It = LabelPos.find(I.Target);
    if (It == LabelPos.end() || It->second >= Pos)
      continue;
    for (auto &[V, Iv] : Intervals)
      if (Iv.Start <= Pos && Iv.End >= It->second && Iv.End < Pos)
        Iv.End = Pos;
  }
  Result.IntervalCount = static_cast<unsigned>(Intervals.size());

  // Registers the allocator may hand out: allocatable minus any machine
  // register the fragment already uses explicitly (precolored operands).
  std::set<MReg> Reserved;
  for (const IRInstr &I : F.Code) {
    if (I.A != NoVReg && I.A < FirstVirtualReg)
      Reserved.insert(static_cast<MReg>(I.A));
    if (I.B != NoVReg && I.B < FirstVirtualReg)
      Reserved.insert(static_cast<MReg>(I.B));
  }
  std::vector<MReg> Pool;
  for (unsigned R = 0; R < Desc.NumAllocatableRegs; ++R)
    if (!Reserved.count(static_cast<MReg>(R)))
      Pool.push_back(static_cast<MReg>(R));

  // Classic linear scan.
  std::vector<Interval> Sorted;
  for (const auto &[V, Iv] : Intervals)
    Sorted.push_back(Iv);
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.Start < B.Start;
  });

  struct Active {
    Interval Iv;
    MReg Reg;
  };
  std::vector<Active> ActiveList;
  std::vector<MReg> Free = Pool;
  std::map<VReg, unsigned> SpillSlots;

  for (const Interval &Iv : Sorted) {
    // Expire finished intervals.
    for (auto It = ActiveList.begin(); It != ActiveList.end();) {
      if (It->Iv.End < Iv.Start) {
        Free.push_back(It->Reg);
        It = ActiveList.erase(It);
      } else {
        ++It;
      }
    }
    if (!Free.empty()) {
      MReg R = Free.back();
      Free.pop_back();
      Result.Assignment[Iv.Reg] = R;
      ActiveList.push_back({Iv, R});
      continue;
    }
    // Spill the active interval that ends last (or this one).
    auto Furthest = std::max_element(
        ActiveList.begin(), ActiveList.end(),
        [](const Active &A, const Active &B) { return A.Iv.End < B.Iv.End; });
    if (Furthest != ActiveList.end() && Furthest->Iv.End > Iv.End) {
      Result.Assignment[Iv.Reg] = Furthest->Reg;
      SpillSlots[Furthest->Iv.Reg] =
          static_cast<unsigned>(SpillSlots.size());
      Result.Assignment.erase(Furthest->Iv.Reg);
      ActiveList.erase(Furthest);
      ActiveList.push_back({Iv, Result.Assignment[Iv.Reg]});
    } else {
      SpillSlots[Iv.Reg] = static_cast<unsigned>(SpillSlots.size());
    }
  }
  Result.SpillCount = static_cast<unsigned>(SpillSlots.size());
  Result.Spilled = SpillSlots;

  if (SpillSlots.empty())
    return Result;

  // Rewrite spilled uses/defs through the scratch registers. R10 carries
  // operand A, the target scratch register carries operand B.
  assert(SpillSlots.size() <= abi::NumSpillSlots && "spill area overflow");
  IRFunction Rewritten;
  Rewritten.NumLabels = F.NumLabels;
  Rewritten.NextVReg = F.NextVReg;
  IRBuilder RB(Rewritten);

  const VReg ScratchA = preg(MReg::R10);
  const VReg ScratchB = preg(Desc.ScratchReg);

  for (const IRInstr &I : F.Code) {
    IRInstr New = I;
    bool ASpilled = I.A != NoVReg && I.A >= FirstVirtualReg &&
                    SpillSlots.count(I.A);
    bool BSpilled = usesB(I.Op) && I.B != NoVReg &&
                    I.B >= FirstVirtualReg && SpillSlots.count(I.B);
    if (ASpilled) {
      if (readsA(I.Op))
        RB.load(ScratchA, preg(MReg::FP),
                abi::spillOffset(SpillSlots[I.A]));
      New.A = ScratchA;
    }
    if (BSpilled) {
      RB.load(ScratchB, preg(MReg::FP), abi::spillOffset(SpillSlots[I.B]));
      New.B = ScratchB;
    }
    Rewritten.push(New);
    if (ASpilled && writesA(I.Op))
      RB.store(ScratchA, preg(MReg::FP), abi::spillOffset(SpillSlots[I.A]));
  }
  F = std::move(Rewritten);
  return Result;
}
