//===- jit/MachineSim.h - Machine-code simulator ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes generated machine code against the VM heap, playing the role
/// Unicorn plays in the Pharo simulation environment (paper Fig. 4). The
/// simulator observes exactly the events the differential oracle needs:
/// breakpoints, returns, trampoline calls, memory faults.
///
/// Faults go through a "recovery" table of per-register accessors,
/// mirroring the reflective register accessors of the paper's simulation
/// runtime; entries can be deliberately removed to reproduce the paper's
/// two *simulation error* findings (§5.3).
///
/// Three execution engines share these semantics: the reference switch
/// loop (authoritative, per-instruction fuel), a pre-decoded threaded
/// fast path (jit/PredecodedCode.h, block-level fuel), and a native
/// x86-64 tier that runs generated machine code on real hardware
/// (jit/native/, block-level fuel with mid-run fallback to the switch
/// loop). They produce byte-identical MachineExit and heap/stack
/// effects; SimOptions::Engine selects between them per run, degrading
/// gracefully when a tier is unsupported on the host.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_MACHINESIM_H
#define IGDT_JIT_MACHINESIM_H

#include "jit/ABI.h"
#include "jit/MachineCode.h"
#include "jit/Trampolines.h"
#include "vm/ObjectMemory.h"

#include <cstdio>
#include <cstring>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace igdt {

class TraceSink;
class MetricsRegistry;
struct CompiledCode;
struct PredecodedCode;

/// Why machine execution stopped.
enum class MachExitKind : std::uint8_t {
  Breakpoint,
  Returned,
  TrampolineCall,
  Segfault,
  SimulationError,
  FuelExhausted,
  DivideFault,
};

const char *machExitKindName(MachExitKind Kind);

/// Fixed-capacity exit annotation. MachineExit used to carry a
/// std::string here, which put an allocation on every run() return —
/// clean exits included — and the replay hot path constructs millions
/// of exits. The capacity covers every note the simulator formats;
/// anything longer is truncated, never overrun.
class ExitNote {
public:
  ExitNote() { Text[0] = '\0'; }
  ExitNote(const char *S) { assign(S); }

  bool empty() const { return Text[0] == '\0'; }
  const char *c_str() const { return Text; }
  std::string str() const { return Text; }
  /// std::string::find-compatible: offset of \p Needle or
  /// std::string::npos.
  std::size_t find(const char *Needle) const {
    const char *P = std::strstr(Text, Needle);
    return P ? static_cast<std::size_t>(P - Text) : std::string::npos;
  }

  ExitNote &operator=(const char *S) {
    assign(S);
    return *this;
  }
  /// printf-style assignment, truncating at capacity.
  void format(const char *Fmt, ...);

private:
  void assign(const char *S) {
    std::snprintf(Text, sizeof(Text), "%s", S);
  }
  char Text[120];
};

inline std::ostream &operator<<(std::ostream &Os, const ExitNote &N) {
  return Os << N.c_str();
}

/// Terminal state of a simulation run.
struct MachineExit {
  MachExitKind Kind = MachExitKind::FuelExhausted;
  std::uint16_t Marker = 0;      // Breakpoint
  SelectorId Selector = 0;       // TrampolineCall
  std::uint8_t NumArgs = 0;      // TrampolineCall
  std::uint64_t FaultAddress = 0; // Segfault
  ExitNote Note;                 // SimulationError / FuelExhausted detail
  /// Fuel remaining when execution stopped (0 on FuelExhausted);
  /// incident reports use it to tell a genuine runaway from a run that
  /// stopped one instruction short of its allowance.
  std::uint64_t FuelLeft = 0;
};

/// Dispatch-engine counters ("sim.*" metrics). Deterministic for a
/// fixed configuration, but — like the code-cache counters — they
/// describe how the harness executed, not what the code under test did,
/// so they never enter campaign records or checkpoints.
struct SimStats {
  std::uint64_t Runs = 0;            ///< total run() invocations
  std::uint64_t PredecodedRuns = 0;  ///< served by the threaded fast path
  std::uint64_t ReferenceRuns = 0;   ///< served by the reference loop
  std::uint64_t PredecodeBuilds = 0; ///< PredecodedCode built from scratch
  std::uint64_t PredecodeHits = 0;   ///< runs reusing a cached predecode
  std::uint64_t NativeRuns = 0;      ///< served by the native x86-64 tier
  std::uint64_t NativeBuilds = 0;    ///< NativeCode compiled from scratch
  std::uint64_t NativeHits = 0;      ///< runs reusing cached native code
  std::uint64_t NativeFallbacks = 0; ///< native runs that fell back mid-run
  /// Nanoseconds spent inside engine execution, accumulated only when
  /// SimOptions::TimeRuns is set (benches); zero otherwise so campaign
  /// runs stay free of clock reads.
  std::uint64_t RunNanos = 0;
  void add(const SimStats &O) {
    Runs += O.Runs;
    PredecodedRuns += O.PredecodedRuns;
    ReferenceRuns += O.ReferenceRuns;
    PredecodeBuilds += O.PredecodeBuilds;
    PredecodeHits += O.PredecodeHits;
    NativeRuns += O.NativeRuns;
    NativeBuilds += O.NativeBuilds;
    NativeHits += O.NativeHits;
    NativeFallbacks += O.NativeFallbacks;
    RunNanos += O.RunNanos;
  }
};

/// Publishes \p Stats into \p Registry under "sim.*".
void foldSimStats(MetricsRegistry &Registry, const SimStats &Stats);

/// Pooled simulator stack memory (one per replay worker, owned by
/// differential/ReplayArena.h). A fresh MachineSim zero-fills all
/// abi::StackBytes of stack; pooled construction borrows this buffer
/// and re-zeroes only the bytes the previous run dirtied (tracked as a
/// high watermark of store offsets), so per-path stack cost tracks
/// bytes touched rather than stack size.
class SimStackPool {
public:
  SimStackPool() : Mem(abi::StackBytes, 0) {}

  /// The buffer, with every byte a previous borrower dirtied re-zeroed.
  std::uint8_t *acquire() {
    if (DirtyHigh) {
      std::memset(Mem.data(), 0, DirtyHigh);
      TotalBytesReset += DirtyHigh;
      DirtyHigh = 0;
    }
    return Mem.data();
  }
  std::size_t size() const { return Mem.size(); }

  /// Called by the simulator after writing up to stack offset \p End.
  void noteTouched(std::size_t End) {
    if (End > DirtyHigh)
      DirtyHigh = End;
  }

  /// Cumulative bytes re-zeroed by acquire() ("replay.stack.*").
  std::uint64_t bytesReset() const { return TotalBytesReset; }

private:
  std::vector<std::uint8_t> Mem;
  std::size_t DirtyHigh = 0;
  std::uint64_t TotalBytesReset = 0;
};

/// Which engine executes run(const CompiledCode&). All three produce
/// byte-identical exits and heap/stack effects (verified by
/// PredecodeTest and NativeEngineTest); the switch loop remains the
/// authoritative semantics. Unsupported selections degrade silently:
/// Native falls back to Threaded when the host lacks the native tier
/// (non-x86-64, missing SSE4.1, or IGDT_NO_NATIVE set), and Threaded
/// falls back to Switch on toolchains without computed goto.
enum class SimEngine : std::uint8_t {
  Switch,   ///< reference switch loop (authoritative)
  Threaded, ///< pre-decoded computed-goto dispatch (PR 5)
  Native,   ///< x86-64 code run on real hardware (jit/native/)
};

const char *simEngineName(SimEngine E);
/// Parses "switch" / "threaded" / "native" into \p Out; false (with
/// \p Out untouched) on anything else.
bool simEngineFromName(const std::string &Name, SimEngine &Out);

/// Simulator configuration, including the simulation-error seeds.
struct SimOptions {
  /// Registers whose fault-recovery accessor is "missing" (paper §5.3,
  /// Simulation Error family). A fault whose destination register is in
  /// this set raises SimulationError instead of a clean Segfault report.
  std::set<std::uint8_t> MissingGPAccessors;
  std::set<std::uint8_t> MissingFPAccessors;
  std::uint64_t Fuel = 100000;
  /// Execution engine for run(const CompiledCode&); see SimEngine for
  /// the degradation ladder.
  SimEngine Engine = SimEngine::Threaded;
  /// Deliberately miscompile AddI in the native tier (off-by-one on the
  /// immediate). Exists solely so tests and benches can prove the
  /// cross-engine oracle detects a genuinely divergent code generator;
  /// never set in production configurations.
  bool NativeMiscompileProbe = false;
  /// Accumulate SimStats::RunNanos around engine execution. Off by
  /// default: campaign records must not depend on clock reads.
  bool TimeRuns = false;
  /// Pooled stack memory (non-owning, may be null). When set, the
  /// simulator borrows the pool's buffer instead of owning a fresh
  /// zero-filled stack; at most one live MachineSim may borrow a pool.
  SimStackPool *StackPool = nullptr;
  /// Dispatch-engine counters (non-owning, may be null).
  SimStats *Stats = nullptr;
  /// Observability sink (non-owning, may be null). Each run emits one
  /// SimRun event (exit kind, fuel consumed, engine).
  TraceSink *Trace = nullptr;
};

/// Read-only view of the in-memory operand stack, bottom to top. The
/// oracle used to copy the whole stack into a vector per comparison;
/// this view aliases the simulator's stack bytes directly. When
/// defective code drove SP outside the stack region, the view falls
/// back to owned storage filled through the same bounds-checked loads
/// the copy used, so observable behaviour is unchanged.
class OperandStackView {
public:
  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  std::uint64_t operator[](std::size_t I) const {
    if (!Owned.empty())
      return Owned[I];
    std::uint64_t V;
    std::memcpy(&V, Borrowed + I * 8, 8);
    return V;
  }

private:
  friend class MachineSim;
  const std::uint8_t *Borrowed = nullptr;
  std::size_t Count = 0;
  std::vector<std::uint64_t> Owned; // fallback storage, else borrowed
};

/// Machine register file + stack memory, bound to a VM heap.
class MachineSim {
public:
  MachineSim(ObjectMemory &Heap, SimOptions Options = SimOptions());

  /// \name Register access
  /// @{
  std::uint64_t reg(MReg R) const { return Regs[unsigned(R)]; }
  void setReg(MReg R, std::uint64_t V) { Regs[unsigned(R)] = V; }
  double freg(FReg R) const { return FRegs[unsigned(R)]; }
  void setFReg(FReg R, double V) { FRegs[unsigned(R)] = V; }
  /// @}

  /// \name Machine stack memory
  /// @{
  bool stackStore64(std::uint64_t Address, std::uint64_t Value);
  std::optional<std::uint64_t> stackLoad64(std::uint64_t Address) const;
  /// @}

  /// Initialises FP/SP for a byte-code fragment frame with \p NumLocals
  /// locals, returning the operand-stack base address.
  std::uint64_t setUpFrame(unsigned NumLocals);

  /// Writes \p Value as receiver ([FP+0]) of the current frame.
  void writeReceiver(std::uint64_t Value);
  /// Writes local \p I of the current frame.
  void writeLocal(unsigned I, std::uint64_t Value);
  std::uint64_t readLocal(unsigned I) const;
  std::uint64_t readReceiver() const;

  /// Pushes \p Value onto the machine operand stack (adjusts SP).
  void pushOperand(std::uint64_t Value);
  /// Operand-stack contents, bottom to top, of the current frame.
  std::vector<std::uint64_t> operandStack() const;
  /// Copy-free equivalent of operandStack() for the oracle's
  /// comparisons; valid until the simulator runs or is destroyed.
  OperandStackView operandStackView() const;

  /// Executes \p Code from instruction 0 until a terminal event,
  /// through the reference switch loop.
  MachineExit run(const std::vector<MInstr> &Code);
  /// Executes a compilation unit through the engine Opts.Engine selects
  /// (building or reusing Code.Predecoded / Code.Native), degrading to
  /// a supported engine when the host lacks the requested tier.
  MachineExit run(const CompiledCode &Code);
  /// Runs an already-built predecode with block-level fuel accounting.
  /// \p Reference is the originating MInstr vector (index-compatible by
  /// construction); the dispatcher delegates to it when a block's fuel
  /// cannot be charged up front. Exposed for the equivalence tests.
  MachineExit runPredecoded(const PredecodedCode &P,
                            const std::vector<MInstr> &Reference);

  /// Heap watermark when the simulator was constructed — objects above
  /// it were allocated by compiled code.
  std::size_t heapWatermark() const { return Watermark; }

  ObjectMemory &heap() { return Heap; }

  /// FNV-1a hash over the live stack bytes ([StackBase, SP) clamped to
  /// the stack region). The cross-engine oracle compares it between a
  /// native probe run and the simulator run; any stack byte the engines
  /// disagree on changes the hash.
  std::uint64_t stackHash() const;

private:
  friend struct NativeEngineAccess;

  enum class Rel : std::uint8_t { Less, Equal, Greater, Unordered };

  std::optional<std::uint64_t> load64(std::uint64_t Address) const;
  bool store64(std::uint64_t Address, std::uint64_t Value);
  std::optional<std::uint8_t> load8(std::uint64_t Address) const;
  bool store8(std::uint64_t Address, std::uint8_t Value);

  bool condHolds(MCond C) const;
  MachineExit fault(const MInstr &I, std::uint64_t Address);
  MachineExit faultExit(bool IsFloat, unsigned GpReg, unsigned FpReg,
                        std::uint64_t Address);
  bool runtimeCall(RTFunc Func);
  MachineExit runLoop(const std::vector<MInstr> &Code, std::size_t PC);
  MachineExit runThreaded(const PredecodedCode &P,
                          const std::vector<MInstr> &Reference);
  void finishRun(MachineExit &E, const char *Engine,
                 std::uint64_t PredecodeHit);

  ObjectMemory &Heap;
  SimOptions Opts;
  std::uint64_t FuelRemaining = 0;
  std::uint64_t Regs[16] = {};
  double FRegs[8] = {};
  Rel Relation = Rel::Equal;
  bool Overflow = false;
  /// Stack storage: borrowed from Opts.StackPool when pooled, else
  /// OwnedStack. All accesses go through Stack/StackSize.
  std::vector<std::uint8_t> OwnedStack;
  std::uint8_t *Stack = nullptr;
  std::size_t StackSize = 0;
  SimStackPool *Pool = nullptr;
  std::uint64_t FrameBase = 0;
  unsigned FrameLocals = 0;
  std::size_t Watermark;
};

} // namespace igdt

#endif // IGDT_JIT_MACHINESIM_H
