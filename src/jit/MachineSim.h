//===- jit/MachineSim.h - Machine-code simulator ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes generated machine code against the VM heap, playing the role
/// Unicorn plays in the Pharo simulation environment (paper Fig. 4). The
/// simulator observes exactly the events the differential oracle needs:
/// breakpoints, returns, trampoline calls, memory faults.
///
/// Faults go through a "recovery" table of per-register accessors,
/// mirroring the reflective register accessors of the paper's simulation
/// runtime; entries can be deliberately removed to reproduce the paper's
/// two *simulation error* findings (§5.3).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_MACHINESIM_H
#define IGDT_JIT_MACHINESIM_H

#include "jit/ABI.h"
#include "jit/MachineCode.h"
#include "jit/Trampolines.h"
#include "vm/ObjectMemory.h"

#include <set>
#include <string>
#include <vector>

namespace igdt {

class TraceSink;

/// Why machine execution stopped.
enum class MachExitKind : std::uint8_t {
  Breakpoint,
  Returned,
  TrampolineCall,
  Segfault,
  SimulationError,
  FuelExhausted,
  DivideFault,
};

const char *machExitKindName(MachExitKind Kind);

/// Terminal state of a simulation run.
struct MachineExit {
  MachExitKind Kind = MachExitKind::FuelExhausted;
  std::uint16_t Marker = 0;      // Breakpoint
  SelectorId Selector = 0;       // TrampolineCall
  std::uint8_t NumArgs = 0;      // TrampolineCall
  std::uint64_t FaultAddress = 0; // Segfault
  std::string Note;              // SimulationError / FuelExhausted detail
  /// Fuel remaining when execution stopped (0 on FuelExhausted);
  /// incident reports use it to tell a genuine runaway from a run that
  /// stopped one instruction short of its allowance.
  std::uint64_t FuelLeft = 0;
};

/// Simulator configuration, including the simulation-error seeds.
struct SimOptions {
  /// Registers whose fault-recovery accessor is "missing" (paper §5.3,
  /// Simulation Error family). A fault whose destination register is in
  /// this set raises SimulationError instead of a clean Segfault report.
  std::set<std::uint8_t> MissingGPAccessors;
  std::set<std::uint8_t> MissingFPAccessors;
  std::uint64_t Fuel = 100000;
  /// Observability sink (non-owning, may be null). Each run emits one
  /// SimRun event (exit kind, fuel consumed).
  TraceSink *Trace = nullptr;
};

/// Machine register file + stack memory, bound to a VM heap.
class MachineSim {
public:
  MachineSim(ObjectMemory &Heap, SimOptions Options = SimOptions());

  /// \name Register access
  /// @{
  std::uint64_t reg(MReg R) const { return Regs[unsigned(R)]; }
  void setReg(MReg R, std::uint64_t V) { Regs[unsigned(R)] = V; }
  double freg(FReg R) const { return FRegs[unsigned(R)]; }
  void setFReg(FReg R, double V) { FRegs[unsigned(R)] = V; }
  /// @}

  /// \name Machine stack memory
  /// @{
  bool stackStore64(std::uint64_t Address, std::uint64_t Value);
  std::optional<std::uint64_t> stackLoad64(std::uint64_t Address) const;
  /// @}

  /// Initialises FP/SP for a byte-code fragment frame with \p NumLocals
  /// locals, returning the operand-stack base address.
  std::uint64_t setUpFrame(unsigned NumLocals);

  /// Writes \p Value as receiver ([FP+0]) of the current frame.
  void writeReceiver(std::uint64_t Value);
  /// Writes local \p I of the current frame.
  void writeLocal(unsigned I, std::uint64_t Value);
  std::uint64_t readLocal(unsigned I) const;
  std::uint64_t readReceiver() const;

  /// Pushes \p Value onto the machine operand stack (adjusts SP).
  void pushOperand(std::uint64_t Value);
  /// Operand-stack contents, bottom to top, of the current frame.
  std::vector<std::uint64_t> operandStack() const;

  /// Executes \p Code from instruction 0 until a terminal event.
  MachineExit run(const std::vector<MInstr> &Code);

  /// Heap watermark when the simulator was constructed — objects above
  /// it were allocated by compiled code.
  std::size_t heapWatermark() const { return Watermark; }

  ObjectMemory &heap() { return Heap; }

private:
  enum class Rel : std::uint8_t { Less, Equal, Greater, Unordered };

  std::optional<std::uint64_t> load64(std::uint64_t Address) const;
  bool store64(std::uint64_t Address, std::uint64_t Value);
  std::optional<std::uint8_t> load8(std::uint64_t Address) const;
  bool store8(std::uint64_t Address, std::uint8_t Value);

  bool condHolds(MCond C) const;
  MachineExit fault(const MInstr &I, std::uint64_t Address);
  bool runtimeCall(RTFunc Func);
  MachineExit runLoop(const std::vector<MInstr> &Code);

  ObjectMemory &Heap;
  SimOptions Opts;
  std::uint64_t FuelRemaining = 0;
  std::uint64_t Regs[16] = {};
  double FRegs[8] = {};
  Rel Relation = Rel::Equal;
  bool Overflow = false;
  std::vector<std::uint8_t> StackMem;
  std::uint64_t FrameBase = 0;
  unsigned FrameLocals = 0;
  std::size_t Watermark;
};

} // namespace igdt

#endif // IGDT_JIT_MACHINESIM_H
