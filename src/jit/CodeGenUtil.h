//===- jit/CodeGenUtil.h - Shared emission helpers ------------------------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagging, boxing, type-check and boolean-materialisation emitters
/// shared by the native-method templates and the byte-code front-ends.
/// These produce the IR shapes of the paper's Listing 2 (checkSmallInteger,
/// jumpzero, jumpIfNotOverflow, ...).
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_JIT_CODEGENUTIL_H
#define IGDT_JIT_CODEGENUTIL_H

#include "jit/ABI.h"
#include "jit/IR.h"
#include "vm/ObjectFormat.h"
#include "vm/Oop.h"

namespace igdt {

/// Emission helpers over an IRBuilder. Temp registers are caller-chosen
/// so templates keep explicit control of their register usage.
class CodeGenUtil {
public:
  explicit CodeGenUtil(IRBuilder &B) : B(B) {}

  /// Branches to \p Fail unless \p V holds a tagged SmallInteger.
  /// Clobbers \p Tmp.
  void checkSmallInt(VReg V, VReg Tmp, std::int32_t Fail) {
    B.movRR(Tmp, V);
    B.andI(Tmp, 1);
    B.cmpI(Tmp, 1);
    B.jcc(MCond::Ne, Fail);
  }

  /// Branches to \p Fail when \p V *is* a tagged SmallInteger.
  void checkNotSmallInt(VReg V, VReg Tmp, std::int32_t Fail) {
    B.movRR(Tmp, V);
    B.andI(Tmp, 1);
    B.cmpI(Tmp, 1);
    B.jcc(MCond::Eq, Fail);
  }

  /// Branches to \p Fail unless the heap object \p V has class
  /// \p ClassIdx. \p V must already be known to be a heap pointer.
  void checkClass(VReg V, std::uint32_t ClassIdx, VReg Tmp,
                  std::int32_t Fail) {
    B.load(Tmp, V, abi::Header0Offset);
    B.andI(Tmp, 0xFFFFFFFFll);
    B.cmpI(Tmp, ClassIdx);
    B.jcc(MCond::Ne, Fail);
  }

  /// Branches to \p Fail unless the heap object \p V has storage format
  /// \p Fmt.
  void checkFormat(VReg V, ObjectFormat Fmt, VReg Tmp, std::int32_t Fail) {
    loadFormat(V, Tmp);
    B.cmpI(Tmp, std::int64_t(Fmt));
    B.jcc(MCond::Ne, Fail);
  }

  /// Branches to \p Fail unless the object's format is \p A or \p FmtB.
  void checkFormat2(VReg V, ObjectFormat FmtA, ObjectFormat FmtB, VReg Tmp,
                    std::int32_t Fail) {
    std::int32_t Ok = B.makeLabel();
    loadFormat(V, Tmp);
    B.cmpI(Tmp, std::int64_t(FmtA));
    B.jcc(MCond::Eq, Ok);
    B.cmpI(Tmp, std::int64_t(FmtB));
    B.jcc(MCond::Ne, Fail);
    B.placeLabel(Ok);
  }

  /// Loads the format byte of heap object \p V into \p Dst.
  void loadFormat(VReg V, VReg Dst) {
    B.load(Dst, V, abi::Header0Offset);
    B.sarI(Dst, 32);
    B.andI(Dst, 0xFF);
  }

  /// Loads the slot/byte count of heap object \p V into \p Dst.
  void loadSlotCount(VReg V, VReg Dst) {
    B.load(Dst, V, abi::Header1Offset);
    B.andI(Dst, 0xFFFFFFFFll);
  }

  /// Untags a SmallInteger in place.
  void untag(VReg V) { B.sarI(V, 1); }

  /// Tags an integer in place (no range check — callers check first).
  void tag(VReg V) {
    B.shlI(V, 1);
    B.orI(V, 1);
  }

  /// Branches to \p Fail when \p V is outside the SmallInteger payload
  /// range — the jumpIfNotOverflow of the paper's Listing 2.
  void checkSmallIntRange(VReg V, std::int32_t Fail) {
    B.cmpI(V, MaxSmallInt);
    B.jcc(MCond::Gt, Fail);
    B.cmpI(V, MinSmallInt);
    B.jcc(MCond::Lt, Fail);
  }

  /// Materialises true/false into \p Dst from the current flags.
  void boolResult(VReg Dst, MCond Cond, Oop TrueOop, Oop FalseOop) {
    std::int32_t LTrue = B.makeLabel();
    std::int32_t LDone = B.makeLabel();
    B.jcc(Cond, LTrue);
    B.movRI(Dst, static_cast<std::int64_t>(FalseOop));
    B.jmp(LDone);
    B.placeLabel(LTrue);
    B.movRI(Dst, static_cast<std::int64_t>(TrueOop));
    B.placeLabel(LDone);
  }

  /// Emits floored division A//B into \p Quot. Inputs untagged; \p B2
  /// must be non-zero (checked by the caller). Clobbers T1, T2.
  void floorDiv(VReg A, VReg B2, VReg Quot, VReg T1, VReg T2) {
    std::int32_t Done = B.makeLabel();
    B.movRR(Quot, A);
    B.quo(Quot, B2);
    B.movRR(T1, A);
    B.rem(T1, B2);
    B.cmpI(T1, 0);
    B.jcc(MCond::Eq, Done);
    B.movRR(T2, A);
    B.xorRR(T2, B2);
    B.cmpI(T2, 0);
    B.jcc(MCond::Ge, Done);
    B.subI(Quot, 1);
    B.placeLabel(Done);
  }

  /// Emits floored modulo A\\B into \p Rem. Inputs untagged, B2 != 0.
  /// Clobbers T1.
  void floorMod(VReg A, VReg B2, VReg Rem, VReg T1) {
    std::int32_t Done = B.makeLabel();
    B.movRR(Rem, A);
    B.rem(Rem, B2);
    B.cmpI(Rem, 0);
    B.jcc(MCond::Eq, Done);
    B.movRR(T1, A);
    B.xorRR(T1, B2);
    B.cmpI(T1, 0);
    B.jcc(MCond::Ge, Done);
    B.add(Rem, B2);
    B.placeLabel(Done);
  }

private:
  IRBuilder &B;
};

} // namespace igdt

#endif // IGDT_JIT_CODEGENUTIL_H
