//===- jit/NativeMethodCogit.cpp - Template-based primitive compiler -----------===//

#include "jit/NativeMethodCogit.h"

#include "jit/CodeGenUtil.h"
#include "jit/LinearScan.h"
#include "jit/Lowering.h"
#include "jit/Trampolines.h"
#include "observe/TraceBus.h"
#include "support/Budget.h"
#include "vm/PrimitiveTable.h"

#include <cstring>

using namespace igdt;

namespace {

/// Fixed template registers.
const VReg Rcvr = preg(MReg::R0);
const VReg Arg0 = preg(MReg::R1);
const VReg Arg1 = preg(MReg::R2);
const VReg T0 = preg(MReg::R4);
const VReg T1 = preg(MReg::R5);
const VReg T2 = preg(MReg::R6);
const VReg T3 = preg(MReg::R7);
const VReg T4 = preg(MReg::R8);
const VReg T5 = preg(MReg::R9);

struct TemplateEmitter {
  TemplateEmitter(ObjectMemory &Mem, const MachineDesc &Desc,
                  const CogitOptions &Opts, IRFunction &F)
      : Mem(Mem), Desc(Desc), Opts(Opts), B(F), U(B),
        Fail(B.makeLabel()) {}

  ObjectMemory &Mem;
  const MachineDesc &Desc;
  const CogitOptions &Opts;
  IRBuilder B;
  CodeGenUtil U;
  std::int32_t Fail;

  Oop trueOop() const { return Mem.trueObject(); }
  Oop falseOop() const { return Mem.falseObject(); }

  /// Boxes the untagged integer in \p V into R0 and returns.
  void answerTaggedInt(VReg V) {
    U.tag(V);
    B.movRR(Rcvr, V);
    B.ret();
  }

  /// Boxes F0 through the runtime and returns.
  void answerBoxedFloat() {
    B.callRT(RTFunc::BoxFloat);
    B.ret();
  }

  void answerBool(MCond Cond) {
    U.boolResult(Rcvr, Cond, trueOop(), falseOop());
    B.ret();
  }

  /// Places the shared failure epilogue.
  void placeFailBlock() {
    B.placeLabel(Fail);
    B.brk(MarkerPrimitiveFail);
  }

  // ---- integer templates ----

  void intBinary(std::int32_t Index) {
    U.checkSmallInt(Rcvr, T0, Fail);
    U.checkSmallInt(Arg0, T0, Fail);
    B.movRR(T0, Rcvr);
    U.untag(T0);
    B.movRR(T1, Arg0);
    U.untag(T1);

    switch (Index) {
    case PrimIntAdd:
      B.add(T0, T1);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    case PrimIntSub:
      B.sub(T0, T1);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    case PrimIntMul:
      B.mul(T0, T1);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    case PrimIntDiv: {
      B.cmpI(T1, 0);
      B.jcc(MCond::Eq, Fail);
      // Exact division only: remainder must be zero.
      B.movRR(T2, T0);
      B.rem(T2, T1);
      B.cmpI(T2, 0);
      B.jcc(MCond::Ne, Fail);
      B.quo(T0, T1);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    }
    case PrimIntFloorDiv: {
      B.cmpI(T1, 0);
      B.jcc(MCond::Eq, Fail);
      U.floorDiv(T0, T1, T2, T3, T4);
      U.checkSmallIntRange(T2, Fail);
      return answerTaggedInt(T2);
    }
    case PrimIntMod: {
      B.cmpI(T1, 0);
      B.jcc(MCond::Eq, Fail);
      U.floorMod(T0, T1, T2, T3);
      return answerTaggedInt(T2);
    }
    case PrimIntQuo: {
      B.cmpI(T1, 0);
      B.jcc(MCond::Eq, Fail);
      B.quo(T0, T1);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    }
    case PrimIntBitAnd:
      B.andRR(T0, T1);
      return answerTaggedInt(T0);
    case PrimIntBitOr:
      B.orRR(T0, T1);
      return answerTaggedInt(T0);
    case PrimIntBitXor:
      B.xorRR(T0, T1);
      return answerTaggedInt(T0);
    case PrimIntBitShift: {
      std::int32_t RShift = B.makeLabel();
      B.cmpI(T1, 0);
      B.jcc(MCond::Lt, RShift);
      B.cmpI(T1, SmallIntBits);
      B.jcc(MCond::Gt, Fail);
      B.shl(T0, T1);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      answerTaggedInt(T0);
      B.placeLabel(RShift);
      B.movRI(T2, 0);
      B.sub(T2, T1); // T2 = -amount
      B.sar(T0, T2);
      return answerTaggedInt(T0);
    }
    case PrimIntLess:
      B.cmp(T0, T1);
      return answerBool(MCond::Lt);
    case PrimIntGreater:
      B.cmp(T0, T1);
      return answerBool(MCond::Gt);
    case PrimIntLessEq:
      B.cmp(T0, T1);
      return answerBool(MCond::Le);
    case PrimIntGreaterEq:
      B.cmp(T0, T1);
      return answerBool(MCond::Ge);
    case PrimIntEqual:
      B.cmp(T0, T1);
      return answerBool(MCond::Eq);
    case PrimIntNotEqual:
      B.cmp(T0, T1);
      return answerBool(MCond::Ne);
    default:
      B.jmp(Fail);
      return;
    }
  }

  void intUnary(std::int32_t Index) {
    switch (Index) {
    case PrimIntAsFloat:
      // Unlike the seeded interpreter (paper Listing 5), the compiled
      // template checks its receiver.
      U.checkSmallInt(Rcvr, T0, Fail);
      B.movRR(T0, Rcvr);
      U.untag(T0);
      B.fcvtIF(FReg::F0, T0);
      return answerBoxedFloat();
    case PrimIntNeg:
      U.checkSmallInt(Rcvr, T0, Fail);
      B.movRR(T1, Rcvr);
      U.untag(T1);
      B.movRI(T0, 0);
      B.sub(T0, T1);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    case PrimIntHighBit: {
      U.checkSmallInt(Rcvr, T0, Fail);
      B.movRR(T0, Rcvr);
      U.untag(T0);
      B.cmpI(T0, 0);
      B.jcc(MCond::Lt, Fail);
      B.movRI(T1, 0); // bit count
      std::int32_t Loop = B.makeLabel();
      std::int32_t Done = B.makeLabel();
      B.placeLabel(Loop);
      B.cmpI(T0, 0);
      B.jcc(MCond::Eq, Done);
      B.sarI(T0, 1);
      B.addI(T1, 1);
      B.jmp(Loop);
      B.placeLabel(Done);
      return answerTaggedInt(T1);
    }
    default:
      B.jmp(Fail);
      return;
    }
  }

  // ---- float templates ----

  bool receiverCheckSeeded(std::int32_t Index) const {
    if (!Opts.SeedFloatReceiverCheckMissing)
      return false;
    switch (Index) {
    case PrimFloatAdd:
    case PrimFloatSub:
    case PrimFloatMul:
    case PrimFloatDiv:
    case PrimFloatLess:
    case PrimFloatGreater:
    case PrimFloatLessEq:
    case PrimFloatGreaterEq:
    case PrimFloatEqual:
    case PrimFloatNotEqual:
    case PrimFloatTruncated:
    case PrimFloatRounded:
    case PrimFloatFractionPart:
      return true; // the paper's 13 missing compiled type checks
    default:
      return false;
    }
  }

  /// Receiver-unbox register. On the arm-like back-end two templates
  /// deliberately route through F5, whose simulation fault-recovery
  /// accessor is missing — the paper's two Simulation Error findings.
  FReg receiverFloatReg(std::int32_t Index) const {
    if (std::strcmp(Desc.Name, "arm") == 0 &&
        (Index == PrimFloatRounded || Index == PrimFloatFractionPart))
      return FReg::F5;
    return FReg::F0;
  }

  void unboxReceiverFloat(std::int32_t Index, FReg Dst) {
    if (!receiverCheckSeeded(Index)) {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkClass(Rcvr, BoxedFloatClass, T0, Fail);
    }
    // With the seed, a SmallInteger receiver computes an unaligned body
    // address here: a segmentation fault at run time (paper §5.3).
    B.fload(Dst, Rcvr, abi::BodyOffset);
  }

  void unboxArgFloat(FReg Dst) {
    U.checkNotSmallInt(Arg0, T0, Fail);
    U.checkClass(Arg0, BoxedFloatClass, T0, Fail);
    B.fload(Dst, Arg0, abi::BodyOffset);
  }

  void floatBinary(std::int32_t Index) {
    FReg RF = receiverFloatReg(Index);
    unboxReceiverFloat(Index, RF);
    unboxArgFloat(FReg::F1);

    switch (Index) {
    case PrimFloatAdd:
      B.fadd(RF, FReg::F1);
      break;
    case PrimFloatSub:
      B.fsub(RF, FReg::F1);
      break;
    case PrimFloatMul:
      B.fmul(RF, FReg::F1);
      break;
    case PrimFloatDiv:
      B.fmovI(FReg::F2, 0.0);
      B.fcmp(FReg::F1, FReg::F2);
      B.jcc(MCond::Eq, Fail);
      B.fdiv(RF, FReg::F1);
      break;
    case PrimFloatLess:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Lt);
    case PrimFloatGreater:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Gt);
    case PrimFloatLessEq:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Le);
    case PrimFloatGreaterEq:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Ge);
    case PrimFloatEqual:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Eq);
    case PrimFloatNotEqual:
      B.fcmp(RF, FReg::F1);
      return answerBool(MCond::Ne);
    default:
      B.jmp(Fail);
      return;
    }
    if (RF != FReg::F0)
      B.fmov(FReg::F0, RF);
    answerBoxedFloat();
  }

  void floatUnary(std::int32_t Index) {
    FReg RF = receiverFloatReg(Index);
    unboxReceiverFloat(Index, RF);

    switch (Index) {
    case PrimFloatTruncated:
      B.ftrunc(T0, RF);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    case PrimFloatRounded: {
      std::int32_t Neg = B.makeLabel();
      std::int32_t Conv = B.makeLabel();
      B.fmovI(FReg::F1, 0.0);
      B.fcmp(RF, FReg::F1);
      B.jcc(MCond::Lt, Neg);
      B.fmovI(FReg::F1, 0.5);
      B.fadd(RF, FReg::F1);
      B.jmp(Conv);
      B.placeLabel(Neg);
      B.fmovI(FReg::F1, 0.5);
      B.fsub(RF, FReg::F1);
      B.placeLabel(Conv);
      B.ftrunc(T0, RF);
      B.jcc(MCond::Ov, Fail);
      U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    }
    case PrimFloatFractionPart:
      B.fmov(FReg::F1, RF);
      B.ftruncF(FReg::F1);
      B.fsub(RF, FReg::F1);
      if (RF != FReg::F0)
        B.fmov(FReg::F0, RF);
      return answerBoxedFloat();
    case PrimFloatSqrt:
      B.fsqrt(RF);
      return answerBoxedFloat();
    case PrimFloatSin:
      B.callRT(RTFunc::Sin);
      return answerBoxedFloat();
    case PrimFloatCos:
      B.callRT(RTFunc::Cos);
      return answerBoxedFloat();
    case PrimFloatExp:
      B.callRT(RTFunc::Exp);
      return answerBoxedFloat();
    case PrimFloatLn:
      B.fmovI(FReg::F1, 0.0);
      B.fcmp(RF, FReg::F1);
      B.jcc(MCond::Le, Fail);
      B.callRT(RTFunc::Ln);
      return answerBoxedFloat();
    case PrimFloatArcTan:
      B.callRT(RTFunc::ArcTan);
      return answerBoxedFloat();
    default:
      B.jmp(Fail);
      return;
    }
  }

  // ---- object templates ----

  /// Checks a 1-based index in Arg0 against the receiver's slot count;
  /// leaves the untagged 0-based index in \p IdxOut. Clobbers T2.
  void checkIndexArg(VReg IdxOut, std::int32_t FailLbl) {
    U.checkSmallInt(Arg0, T2, FailLbl);
    B.movRR(IdxOut, Arg0);
    U.untag(IdxOut);
    B.cmpI(IdxOut, 1);
    B.jcc(MCond::Lt, FailLbl);
    U.loadSlotCount(Rcvr, T2);
    B.cmp(IdxOut, T2);
    B.jcc(MCond::Gt, FailLbl);
    B.subI(IdxOut, 1);
  }

  void objectFamily(std::int32_t Index) {
    switch (Index) {
    case PrimAt: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat(Rcvr, ObjectFormat::IndexablePointers, T0, Fail);
      checkIndexArg(T1, Fail);
      B.shlI(T1, 3);
      B.add(T1, Rcvr);
      B.load(Rcvr, T1, abi::BodyOffset);
      B.ret();
      return;
    }
    case PrimAtPut: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat(Rcvr, ObjectFormat::IndexablePointers, T0, Fail);
      checkIndexArg(T1, Fail);
      B.shlI(T1, 3);
      B.add(T1, Rcvr);
      B.store(Arg1, T1, abi::BodyOffset);
      B.movRR(Rcvr, Arg1);
      B.ret();
      return;
    }
    case PrimSize: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat2(Rcvr, ObjectFormat::IndexablePointers,
                     ObjectFormat::IndexableBytes, T0, Fail);
      U.loadSlotCount(Rcvr, T0);
      return answerTaggedInt(T0);
    }
    case PrimClass: {
      std::int32_t HeapCase = B.makeLabel();
      U.checkSmallInt(Rcvr, T0, HeapCase); // non-immediates take HeapCase
      B.movRI(Rcvr,
              static_cast<std::int64_t>(smallIntOop(SmallIntegerClass)));
      B.ret();
      B.placeLabel(HeapCase);
      B.load(T0, Rcvr, abi::Header0Offset);
      B.andI(T0, 0xFFFFFFFFll);
      return answerTaggedInt(T0);
    }
    case PrimIdentityHash: {
      std::int32_t HeapCase = B.makeLabel();
      U.checkSmallInt(Rcvr, T0, HeapCase); // non-immediates take HeapCase
      B.ret(); // a SmallInteger's identity hash is its own value
      B.placeLabel(HeapCase);
      B.load(T0, Rcvr, abi::Header1Offset);
      B.sarI(T0, 32);
      B.andI(T0, 0xFFFFFFFFll);
      return answerTaggedInt(T0);
    }
    case PrimIdentityEquals:
      B.cmp(Rcvr, Arg0);
      return answerBool(MCond::Eq);
    case PrimInstVarAt: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat2(Rcvr, ObjectFormat::Pointers,
                     ObjectFormat::IndexablePointers, T0, Fail);
      checkIndexArg(T1, Fail);
      B.shlI(T1, 3);
      B.add(T1, Rcvr);
      B.load(Rcvr, T1, abi::BodyOffset);
      B.ret();
      return;
    }
    case PrimInstVarAtPut: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat2(Rcvr, ObjectFormat::Pointers,
                     ObjectFormat::IndexablePointers, T0, Fail);
      checkIndexArg(T1, Fail);
      B.shlI(T1, 3);
      B.add(T1, Rcvr);
      B.store(Arg1, T1, abi::BodyOffset);
      B.movRR(Rcvr, Arg1);
      B.ret();
      return;
    }
    case PrimByteAt: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat(Rcvr, ObjectFormat::IndexableBytes, T0, Fail);
      checkIndexArg(T1, Fail);
      B.add(T1, Rcvr);
      B.load8(T0, T1, abi::BodyOffset);
      return answerTaggedInt(T0);
    }
    case PrimByteAtPut: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat(Rcvr, ObjectFormat::IndexableBytes, T0, Fail);
      checkIndexArg(T1, Fail);
      U.checkSmallInt(Arg1, T2, Fail);
      B.movRR(T3, Arg1);
      U.untag(T3);
      B.cmpI(T3, 0);
      B.jcc(MCond::Lt, Fail);
      B.cmpI(T3, 255);
      B.jcc(MCond::Gt, Fail);
      B.add(T1, Rcvr);
      B.store8(T3, T1, abi::BodyOffset);
      B.movRR(Rcvr, Arg1);
      B.ret();
      return;
    }
    case PrimBasicNew: {
      U.checkSmallInt(Rcvr, T0, Fail);
      B.movRR(Arg0, Rcvr);
      U.untag(Arg0);
      B.callRT(RTFunc::AllocPointers);
      B.cmpI(Rcvr, 0);
      B.jcc(MCond::Eq, Fail);
      B.ret();
      return;
    }
    case PrimBasicNewSized: {
      U.checkSmallInt(Rcvr, T0, Fail);
      U.checkSmallInt(Arg0, T0, Fail);
      B.movRR(Arg1, Arg0);
      U.untag(Arg1);
      B.movRR(Arg0, Rcvr);
      U.untag(Arg0);
      B.callRT(RTFunc::AllocIndexable);
      B.cmpI(Rcvr, 0);
      B.jcc(MCond::Eq, Fail);
      B.ret();
      return;
    }
    case PrimShallowCopy: {
      U.checkNotSmallInt(Rcvr, T0, Fail);
      U.checkFormat2(Rcvr, ObjectFormat::Pointers,
                     ObjectFormat::IndexablePointers, T0, Fail);
      B.movRR(Arg0, Rcvr); // source for AllocLike (and the copy loop)
      B.callRT(RTFunc::AllocLike);
      B.cmpI(Rcvr, 0);
      B.jcc(MCond::Eq, Fail);
      // Copy loop: T0 = slot count, T1 = index.
      U.loadSlotCount(Arg0, T0);
      B.movRI(T1, 0);
      std::int32_t Loop = B.makeLabel();
      std::int32_t Done = B.makeLabel();
      B.placeLabel(Loop);
      B.cmp(T1, T0);
      B.jcc(MCond::Ge, Done);
      B.movRR(T2, T1);
      B.shlI(T2, 3);
      B.movRR(T3, Arg0);
      B.add(T3, T2);
      B.load(T4, T3, abi::BodyOffset);
      B.movRR(T3, Rcvr);
      B.add(T3, T2);
      B.store(T4, T3, abi::BodyOffset);
      B.addI(T1, 1);
      B.jmp(Loop);
      B.placeLabel(Done);
      B.ret();
      return;
    }
    default:
      B.jmp(Fail);
      return;
    }
  }

  // ---- FFI templates (compiled only when the seed is disabled) ----

  void ffiFamily(std::int32_t Index) {
    struct Access {
      unsigned Width;
      bool SignExtend;
      bool IsStore;
      bool IsFloat;
    };
    Access A;
    switch (Index) {
    case PrimFFILoadInt8:
      A = {1, true, false, false};
      break;
    case PrimFFILoadInt16:
      A = {2, true, false, false};
      break;
    case PrimFFILoadInt32:
      A = {4, true, false, false};
      break;
    case PrimFFILoadInt64:
      A = {8, true, false, false};
      break;
    case PrimFFIStoreInt8:
      A = {1, true, true, false};
      break;
    case PrimFFIStoreInt16:
      A = {2, true, true, false};
      break;
    case PrimFFIStoreInt32:
      A = {4, true, true, false};
      break;
    case PrimFFIStoreInt64:
      A = {8, true, true, false};
      break;
    case PrimFFILoadUInt8:
      A = {1, false, false, false};
      break;
    case PrimFFILoadUInt16:
      A = {2, false, false, false};
      break;
    case PrimFFILoadUInt32:
      A = {4, false, false, false};
      break;
    case PrimFFILoadFloat64:
      A = {8, false, false, true};
      break;
    case PrimFFIStoreFloat64:
      A = {8, false, true, true};
      break;
    case PrimFFIStoreUInt8:
      A = {1, false, true, false};
      break;
    case PrimFFIStoreUInt16:
      A = {2, false, true, false};
      break;
    case PrimFFIStoreUInt32:
      A = {4, false, true, false};
      break;
    case PrimFFILoadFloat32:
      A = {4, false, false, true};
      break;
    case PrimFFIStoreFloat32:
      A = {4, false, true, true};
      break;
    default:
      B.jmp(Fail);
      return;
    }

    U.checkNotSmallInt(Rcvr, T0, Fail);
    U.checkFormat(Rcvr, ObjectFormat::IndexableBytes, T0, Fail);
    U.checkSmallInt(Arg0, T0, Fail);
    B.movRR(T1, Arg0); // untagged offset
    U.untag(T1);
    B.cmpI(T1, 0);
    B.jcc(MCond::Lt, Fail);
    U.loadSlotCount(Rcvr, T2);
    B.movRR(T3, T1);
    B.addI(T3, A.Width);
    B.cmp(T3, T2);
    B.jcc(MCond::Gt, Fail);
    // T1 = base address of the access.
    B.add(T1, Rcvr);

    if (!A.IsStore) {
      // Assemble the value byte-by-byte (little endian) into T0.
      B.movRI(T0, 0);
      for (unsigned I = 0; I < A.Width; ++I) {
        B.load8(T4, T1, abi::BodyOffset + I);
        if (I > 0)
          B.shlI(T4, 8 * I);
        B.orRR(T0, T4);
      }
      if (A.IsFloat) {
        if (A.Width == 8)
          B.fbitsToF(FReg::F0, T0);
        else
          B.fbits32ToF(FReg::F0, T0);
        return answerBoxedFloat();
      }
      if (A.SignExtend && A.Width < 8) {
        B.shlI(T0, 64 - 8 * A.Width);
        B.sarI(T0, 64 - 8 * A.Width);
      }
      if (A.Width == 8)
        U.checkSmallIntRange(T0, Fail);
      return answerTaggedInt(T0);
    }

    // Stores: value in Arg1.
    if (A.IsFloat) {
      U.checkNotSmallInt(Arg1, T0, Fail);
      U.checkClass(Arg1, BoxedFloatClass, T0, Fail);
      B.fload(FReg::F1, Arg1, abi::BodyOffset);
      if (A.Width == 8)
        B.fbitsFromF(T0, FReg::F1);
      else
        B.fbitsFromF32(T0, FReg::F1);
    } else {
      U.checkSmallInt(Arg1, T0, Fail);
      B.movRR(T0, Arg1);
      U.untag(T0);
      if (A.Width < 8) {
        std::int64_t Lo =
            A.SignExtend ? -(std::int64_t(1) << (8 * A.Width - 1)) : 0;
        std::int64_t Hi = A.SignExtend
                              ? (std::int64_t(1) << (8 * A.Width - 1)) - 1
                              : (std::int64_t(1) << (8 * A.Width)) - 1;
        B.cmpI(T0, Lo);
        B.jcc(MCond::Lt, Fail);
        B.cmpI(T0, Hi);
        B.jcc(MCond::Gt, Fail);
      }
    }
    for (unsigned I = 0; I < A.Width; ++I) {
      B.movRR(T4, T0);
      if (I > 0)
        B.sarI(T4, 8 * I);
      B.store8(T4, T1, abi::BodyOffset + I);
    }
    B.movRR(Rcvr, Arg1);
    B.ret();
  }
};

} // namespace

CompiledCode NativeMethodCogit::compile(std::int32_t PrimIndex) {
  CompiledCode Out = compileImpl(PrimIndex);
  if (Opts.Trace) {
    TraceEvent E;
    E.Kind = TraceEventKind::Compile;
    E.Detail = compilerKindName(CompilerKind::NativeMethod);
    E.Aux = "native-method";
    E.Value = Out.Code.size();
    Opts.Trace->emit(std::move(E));
  }
  return Out;
}

CompiledCode NativeMethodCogit::compileImpl(std::int32_t PrimIndex) {
  if (Opts.InjectFrontEndThrow)
    throw HarnessFault("compile",
                       "injected front-end crash while selecting the "
                       "primitive template");
  CompiledCode Out;
  const PrimitiveInfo *Info = primitiveInfo(PrimIndex);
  if (!Info) {
    Out.Code = {MInstr{MOp::Brk, MCond::Always, MReg::NoReg, MReg::NoReg,
                       FReg::NoFReg, FReg::NoFReg, 0, -1,
                       MarkerPrimitiveFail}};
    return Out;
  }

  // The missing-functionality seed: the FFI accessor family was never
  // implemented in the JIT (paper §5.3); the template is a fail-stub
  // flagged "not implemented".
  if (Info->Family == PrimitiveFamily::FFI && Opts.SeedFFINotImplemented) {
    Out.NotImplemented = true;
    Out.Code = {MInstr{MOp::Brk, MCond::Always, MReg::NoReg, MReg::NoReg,
                       FReg::NoFReg, FReg::NoFReg, 0, -1,
                       MarkerNotImplemented}};
    return Out;
  }

  IRFunction F;
  TemplateEmitter E(Mem, Desc, Opts, F);
  switch (Info->Family) {
  case PrimitiveFamily::SmallInteger:
    if (Info->NumArgs == 1)
      E.intBinary(PrimIndex);
    else
      E.intUnary(PrimIndex);
    break;
  case PrimitiveFamily::Float:
    if (Info->NumArgs == 1)
      E.floatBinary(PrimIndex);
    else
      E.floatUnary(PrimIndex);
    break;
  case PrimitiveFamily::Object:
    E.objectFamily(PrimIndex);
    break;
  case PrimitiveFamily::FFI:
    E.ffiFamily(PrimIndex);
    break;
  }
  E.placeFailBlock();

  Out.IRLength = static_cast<unsigned>(F.Code.size());
  Out.Code = lowerIR(F, Desc);
  return Out;
}
