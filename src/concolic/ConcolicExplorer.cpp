//===- concolic/ConcolicExplorer.cpp - Interpreter path exploration ----------===//

#include "concolic/ConcolicExplorer.h"

#include "solver/TermEval.h"
#include "solver/TermPrinter.h"
#include "symbolic/ConcolicDomain.h"
#include "symbolic/FrameMaterializer.h"
#include "vm/InterpreterCore.h"

#include <deque>
#include <set>

using namespace igdt;

namespace {

FrameSnapshot snapshotFrame(const FrameT<ConcolicValue> &F) {
  FrameSnapshot S;
  S.Receiver = F.Receiver;
  S.Locals = F.Locals;
  S.Stack = F.Stack;
  S.PC = F.PC;
  return S;
}

/// Stable signature of a path: rendered conditions plus polarities.
std::string pathSignature(const std::vector<PathEntry> &Entries) {
  std::string Sig;
  for (const PathEntry &E : Entries) {
    Sig += E.Taken ? '+' : '-';
    Sig += printBoolTerm(E.Condition);
    Sig += ';';
  }
  return Sig;
}

/// True if \p T (an int term) contains a materialisation-dependent leaf,
/// which the model-based verifier cannot evaluate.
bool intTermIsOpaque(const IntTerm *T) {
  if (!T)
    return false;
  if (T->TermKind == IntTerm::Kind::UncheckedValueOf ||
      T->TermKind == IntTerm::Kind::IdentityHash)
    return true;
  if (T->FloatOperand &&
      T->FloatOperand->TermKind == FloatTerm::Kind::UncheckedValueOf)
    return true;
  return intTermIsOpaque(T->Lhs) || intTermIsOpaque(T->Rhs);
}

bool boolTermIsOpaque(const BoolTerm *T) {
  switch (T->TermKind) {
  case BoolTerm::Kind::Not:
    return boolTermIsOpaque(T->BLhs);
  case BoolTerm::Kind::And:
  case BoolTerm::Kind::Or:
    return boolTermIsOpaque(T->BLhs) || boolTermIsOpaque(T->BRhs);
  case BoolTerm::Kind::ICmp:
    return intTermIsOpaque(T->ILhs) || intTermIsOpaque(T->IRhs);
  default:
    return false;
  }
}

} // namespace

ExplorationResult ConcolicExplorer::explore(const InstructionSpec &Spec) {
  ExplorationResult Seed;
  Seed.Spec = &Spec;
  Seed.Method = std::make_unique<CompiledMethod>(instantiateMethod(Spec));
  return run(std::move(Seed));
}

ExplorationResult ConcolicExplorer::exploreMethod(const CompiledMethod &M,
                                                  const std::string &Name) {
  ExplorationResult Seed;
  Seed.OwnedSpec = std::make_unique<InstructionSpec>();
  Seed.OwnedSpec->Kind = InstructionKind::Bytecode;
  Seed.OwnedSpec->Name = Name;
  Seed.OwnedSpec->Family = "sequence";
  Seed.OwnedSpec->Bytes = M.Bytecodes;
  Seed.OwnedSpec->NumLocals = M.NumTemps;
  Seed.OwnedSpec->Literals = M.Literals;
  Seed.Spec = Seed.OwnedSpec.get();
  Seed.IsSequence = true;
  Seed.Method = std::make_unique<CompiledMethod>(M);
  return run(std::move(Seed));
}

ExplorationResult ConcolicExplorer::run(ExplorationResult Seed) {
  ExplorationResult Result = std::move(Seed);
  Result.Builder = std::make_unique<TermBuilder>();
  // A quarter-megabyte heap comfortably fits every materialisation of an
  // exploration (objects are bounded by MaxObjectSlots) while keeping
  // per-instruction setup cost low (Figure 6 measures this).
  Result.Memory = std::make_unique<ObjectMemory>(256 * 1024);

  ConstraintSolver Solver(Result.Memory->classTable(), Opts.Solver);
  FrameMaterializer Materializer(*Result.Memory, *Result.Builder);
  TermBuilder &B = *Result.Builder;

  struct Pending {
    Model M;
    std::size_t Depth;
  };
  std::deque<Pending> Queue;
  Queue.push_back({Model{}, 0});
  std::set<std::string> Seen;

  while (!Queue.empty() && Result.Iterations < Opts.MaxIterations &&
         Result.Paths.size() < Opts.MaxPaths) {
    Pending Item = std::move(Queue.front());
    Queue.pop_front();
    ++Result.Iterations;

    // One concolic execution (a column of the paper's Figure 2).
    PathRecorder Recorder;
    ConcolicDomain Domain(*Result.Memory, Cfg, B, Recorder);
    InterpreterCore<ConcolicDomain> Interp(Domain, *Result.Memory);
    MaterializedFrame MF = Materializer.materialize(Item.M, *Result.Method);
    Domain.InputStackDepth = MF.StackDepth;
    FrameT<ConcolicValue> Frame = MF.Concolic;
    FrameSnapshot InputSnapshot = snapshotFrame(Frame);

    StepResult<ConcolicValue> Step = Result.IsSequence
                                         ? Interp.runFragment(Frame)
                                         : Interp.stepInstruction(Frame);

    const std::vector<PathEntry> &Entries = Recorder.entries();
    std::string Signature = pathSignature(Entries);
    if (Seen.insert(Signature).second) {
      PathSolution Sol;
      Sol.Constraints = Recorder.conjunction(B);
      Sol.Entries = Entries;
      Sol.Exit = Step.Kind;
      Sol.Selector = Step.Selector;
      Sol.SendNumArgs = Step.SendNumArgs;
      Sol.Result = Step.Result;
      Sol.InputModel = Item.M;
      Sol.Input = InputSnapshot;
      Sol.Output = snapshotFrame(Frame);
      Sol.SlotStores = Domain.SlotStores;
      Sol.ByteStores = Domain.ByteStores;
      Sol.Allocations = Domain.Allocations;

      // Curation (paper §5.2): keep only paths the prototype supports.
      if (MF.StackDepth > Opts.MaxReplayStackDepth) {
        Sol.Curated = false;
        Sol.CurationNote = "operand stack deeper than the replay harness "
                           "frame area";
      } else {
        // Re-verify the path condition under its own model; paths with
        // materialisation-dependent constraints cannot be verified.
        TermEvaluator Eval(Sol.InputModel, Result.Memory->classTable());
        for (const BoolTerm *C : Sol.Constraints) {
          if (boolTermIsOpaque(C)) {
            Sol.Curated = false;
            Sol.CurationNote =
                "path condition depends on raw memory contents";
            break;
          }
          auto V = Eval.evalBool(C);
          if (!V || !*V) {
            Sol.Curated = false;
            Sol.CurationNote = "model does not verify against the recorded "
                               "path condition";
            break;
          }
        }
      }
      Result.Paths.push_back(std::move(Sol));
    }

    // Generational negation: flip each not-yet-negated branch after the
    // inherited prefix depth.
    for (std::size_t I = Item.Depth; I < Entries.size(); ++I) {
      if (!Entries[I].Negatable)
        continue;
      std::vector<const BoolTerm *> Prefix;
      Prefix.reserve(I + 1);
      for (std::size_t J = 0; J < I; ++J)
        Prefix.push_back(Entries[J].Taken
                             ? Entries[J].Condition
                             : B.notB(Entries[J].Condition));
      Prefix.push_back(Entries[I].Taken ? B.notB(Entries[I].Condition)
                                        : Entries[I].Condition);
      SolveResult SR = Solver.solve(Prefix);
      if (SR.Status == SolveStatus::Sat)
        Queue.push_back({std::move(SR.M), I + 1});
      else if (SR.Status == SolveStatus::Unknown)
        ++Result.UnknownNegations;
      else
        ++Result.UnsatNegations;
    }
  }

  Result.Solver = Solver.stats();
  return Result;
}
