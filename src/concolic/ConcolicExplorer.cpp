//===- concolic/ConcolicExplorer.cpp - Interpreter path exploration ----------===//

#include "concolic/ConcolicExplorer.h"

#include "observe/TraceBus.h"
#include "solver/TermEval.h"
#include "solver/TermPrinter.h"
#include "support/StringUtils.h"
#include "symbolic/ConcolicDomain.h"
#include "symbolic/FrameMaterializer.h"
#include "vm/InterpreterCore.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>

using namespace igdt;

namespace {

FrameSnapshot snapshotFrame(const FrameT<ConcolicValue> &F) {
  FrameSnapshot S;
  S.Receiver = F.Receiver;
  S.Locals = F.Locals;
  S.Stack = F.Stack;
  S.PC = F.PC;
  return S;
}

/// Stable signature of a path: rendered conditions plus polarities.
std::string pathSignature(const std::vector<PathEntry> &Entries) {
  std::string Sig;
  for (const PathEntry &E : Entries) {
    Sig += E.Taken ? '+' : '-';
    Sig += printBoolTerm(E.Condition);
    Sig += ';';
  }
  return Sig;
}

/// True if \p T (an int term) contains a materialisation-dependent leaf,
/// which the model-based verifier cannot evaluate.
bool intTermIsOpaque(const IntTerm *T) {
  if (!T)
    return false;
  if (T->TermKind == IntTerm::Kind::UncheckedValueOf ||
      T->TermKind == IntTerm::Kind::IdentityHash)
    return true;
  if (T->FloatOperand &&
      T->FloatOperand->TermKind == FloatTerm::Kind::UncheckedValueOf)
    return true;
  return intTermIsOpaque(T->Lhs) || intTermIsOpaque(T->Rhs);
}

bool boolTermIsOpaque(const BoolTerm *T) {
  switch (T->TermKind) {
  case BoolTerm::Kind::Not:
    return boolTermIsOpaque(T->BLhs);
  case BoolTerm::Kind::And:
  case BoolTerm::Kind::Or:
    return boolTermIsOpaque(T->BLhs) || boolTermIsOpaque(T->BRhs);
  case BoolTerm::Kind::ICmp:
    return intTermIsOpaque(T->ILhs) || intTermIsOpaque(T->IRhs);
  default:
    return false;
  }
}

/// Rung \p Level of the degradation ladder: the same query with the
/// branching caps (cases, class combos, random samples) cut to a
/// quarter per rung, trading model coverage for the ability to answer
/// at all. Floors keep the cheapest rung meaningful; the min() keeps a
/// rung from exceeding an already-small base configuration. The node
/// cap is the one knob a rung may *raise*: it is floored at a small
/// constant so the narrowed tree can be visited at least once even
/// when the base search was node-starved — with the branching caps
/// cut, that floor still bounds the rung far below the cost of a
/// full-width search.
SolverOptions ladderRung(const SolverOptions &Base, unsigned Level) {
  SolverOptions Rung = Base;
  unsigned Shift = 2 * Level;
  auto Cut = [Shift](unsigned Value, unsigned Floor) {
    return std::min(Value, std::max(Floor, Value >> Shift));
  };
  Rung.MaxCases = Cut(Base.MaxCases, 4);
  Rung.MaxClassCombos = Cut(Base.MaxClassCombos, 8);
  Rung.RandomSamples = Cut(Base.RandomSamples, 1);
  Rung.MaxSearchNodes = std::max<unsigned>(Base.MaxSearchNodes, 256);
  return Rung;
}

} // namespace

ExplorationResult ConcolicExplorer::explore(const InstructionSpec &Spec) {
  ExplorationResult Seed;
  Seed.Spec = &Spec;
  Seed.Method = std::make_unique<CompiledMethod>(instantiateMethod(Spec));
  return run(std::move(Seed));
}

ExplorationResult ConcolicExplorer::exploreMethod(const CompiledMethod &M,
                                                  const std::string &Name) {
  ExplorationResult Seed;
  Seed.OwnedSpec = std::make_unique<InstructionSpec>();
  Seed.OwnedSpec->Kind = InstructionKind::Bytecode;
  Seed.OwnedSpec->Name = Name;
  Seed.OwnedSpec->Family = "sequence";
  Seed.OwnedSpec->Bytes = M.Bytecodes;
  Seed.OwnedSpec->NumLocals = M.NumTemps;
  Seed.OwnedSpec->Literals = M.Literals;
  Seed.Spec = Seed.OwnedSpec.get();
  Seed.IsSequence = true;
  Seed.Method = std::make_unique<CompiledMethod>(M);
  return run(std::move(Seed));
}

ExplorationResult ConcolicExplorer::run(ExplorationResult Seed) {
  ExplorationResult Result = std::move(Seed);
  Result.Builder = std::make_unique<TermBuilder>();
  // A quarter-megabyte heap comfortably fits every materialisation of an
  // exploration (objects are bounded by MaxObjectSlots) while keeping
  // per-instruction setup cost low (Figure 6 measures this).
  Result.Memory = std::make_unique<ObjectMemory>(256 * 1024);

  if (Opts.InjectHeapCorruption)
    Result.Memory->poison("injected corruption before exploration");

  Budget LocalBudget(Opts.InstructionBudget);
  Budget &Bud = Opts.ExternalBudget ? *Opts.ExternalBudget : LocalBudget;

  auto ExploreStart = std::chrono::steady_clock::now();

  SolverOptions PrimaryOpts = Opts.Solver;
  PrimaryOpts.SharedBudget = &Bud;
  // Ladder rungs copy PrimaryOpts, so they inherit the sink too.
  PrimaryOpts.Trace = Opts.Trace;
  // Mix a stable hash of the instruction name into the seed so each
  // instruction's exploration is a pure function of (name, base seed) —
  // independent of catalog position or worker assignment (see the
  // ownership comment in ConcolicExplorer.h).
  PrimaryOpts.Seed =
      hashCombine64(Opts.Solver.Seed, stableHash64(Result.Spec->Name));
  // One query cache per exploration, worker-local by construction; the
  // primary solver and every ladder rung share it (definite answers
  // from a cheaper rung are sound at any strength).
  SolverQueryCache Cache;
  if (Opts.EnableSolverCache) {
    PrimaryOpts.Cache = &Cache;
    PrimaryOpts.Shared = Opts.SharedUnsat;
  }
  // Tier-0 model bank, worker-local like the query cache but — unlike
  // it — always wired: the bank is part of the defined algorithm, and
  // EnableModelCache only chooses skip-vs-verify on a hit (see
  // ExplorerOptions). Ladder rungs copy PrimaryOpts and so share it;
  // their Sat answers feed it like any other.
  SolverModelBank Bank(Opts.ModelBankCapacity);
  PrimaryOpts.Bank = &Bank;
  PrimaryOpts.ModelCacheSkips = Opts.EnableModelCache;
  ConstraintSolver Solver(Result.Memory->classTable(), PrimaryOpts);
  SolverStats LadderStats;
  FrameMaterializer Materializer(*Result.Memory, *Result.Builder);
  TermBuilder &B = *Result.Builder;

  struct Pending {
    Model M;
    std::size_t Depth;
  };
  std::deque<Pending> Queue;
  Queue.push_back({Model{}, 0});
  std::set<std::string> Seen;

  while (!Queue.empty() && Result.Iterations < Opts.MaxIterations &&
         Result.Paths.size() < Opts.MaxPaths) {
    // One work unit per concolic execution. The charge also polls the
    // wall clock, so an expired deadline stops the frontier between
    // solver calls; the paths retained so far stay valid.
    if (!Bud.charge()) {
      Result.BudgetExhausted = true;
      break;
    }

    Pending Item = std::move(Queue.front());
    Queue.pop_front();
    ++Result.Iterations;

    // One concolic execution (a column of the paper's Figure 2).
    PathRecorder Recorder;
    ConcolicDomain Domain(*Result.Memory, Cfg, B, Recorder);
    InterpreterCore<ConcolicDomain> Interp(Domain, *Result.Memory);
    MaterializedFrame MF = Materializer.materialize(Item.M, *Result.Method);
    Domain.InputStackDepth = MF.StackDepth;
    FrameT<ConcolicValue> Frame = MF.Concolic;
    FrameSnapshot InputSnapshot = snapshotFrame(Frame);

    StepResult<ConcolicValue> Step = Result.IsSequence
                                         ? Interp.runFragment(Frame)
                                         : Interp.stepInstruction(Frame);

    const std::vector<PathEntry> &Entries = Recorder.entries();
    std::string Signature = pathSignature(Entries);
    if (Seen.insert(Signature).second) {
      PathSolution Sol;
      Sol.Constraints = Recorder.conjunction(B);
      Sol.Entries = Entries;
      Sol.Exit = Step.Kind;
      Sol.Selector = Step.Selector;
      Sol.SendNumArgs = Step.SendNumArgs;
      Sol.Result = Step.Result;
      Sol.InputModel = Item.M;
      Sol.Input = InputSnapshot;
      Sol.Output = snapshotFrame(Frame);
      Sol.SlotStores = Domain.SlotStores;
      Sol.ByteStores = Domain.ByteStores;
      Sol.Allocations = Domain.Allocations;

      // Curation (paper §5.2): keep only paths the prototype supports.
      if (MF.StackDepth > Opts.MaxReplayStackDepth) {
        Sol.Curated = false;
        Sol.CurationNote = "operand stack deeper than the replay harness "
                           "frame area";
      } else {
        // Re-verify the path condition under its own model; paths with
        // materialisation-dependent constraints cannot be verified.
        TermEvaluator Eval(Sol.InputModel, Result.Memory->classTable());
        for (const BoolTerm *C : Sol.Constraints) {
          if (boolTermIsOpaque(C)) {
            Sol.Curated = false;
            Sol.CurationNote =
                "path condition depends on raw memory contents";
            break;
          }
          auto V = Eval.evalBool(C);
          if (!V || !*V) {
            Sol.Curated = false;
            Sol.CurationNote = "model does not verify against the recorded "
                               "path condition";
            break;
          }
        }
      }
      if (Opts.Trace) {
        TraceEvent E;
        E.Kind = TraceEventKind::PathExplored;
        E.Detail = exitKindName(Sol.Exit);
        E.Value = Result.Paths.size();
        E.Extra = Sol.Curated ? 1 : 0;
        Opts.Trace->emit(std::move(E));
      }
      Result.Paths.push_back(std::move(Sol));
    }

    // Runs the degradation ladder on an Unknown answer and files the
    // final verdict: before giving the negation up, retry with
    // progressively cheaper solver configurations. A small cap often
    // answers a query whose full-size search space blew the node
    // budget, at the price of missing some models. Shared by both
    // negation strategies below so they stay behaviourally identical.
    auto FinishNegation = [&](std::size_t I,
                              const std::vector<const BoolTerm *> &Prefix,
                              SolveResult SR) {
      for (unsigned Rung = 1;
           SR.Status == SolveStatus::Unknown && Rung <= Opts.LadderRungs &&
           !Bud.expired();
           ++Rung) {
        ++Result.LadderRetries;
        SolverOptions RungOpts = ladderRung(PrimaryOpts, Rung);
        RungOpts.SharedBudget = &Bud;
        ConstraintSolver Cheap(Result.Memory->classTable(), RungOpts);
        SR = Cheap.solve(Prefix);
        LadderStats.add(Cheap.stats());
        if (SR.Status != SolveStatus::Unknown)
          ++Result.LadderRescues;
        if (Opts.Trace) {
          TraceEvent E;
          E.Kind = TraceEventKind::LadderRung;
          E.Detail = solveStatusName(SR.Status);
          E.Value = Rung;
          Opts.Trace->emit(std::move(E));
        }
      }

      if (SR.Status == SolveStatus::Sat)
        Queue.push_back({std::move(SR.M), I + 1});
      else if (SR.Status == SolveStatus::Unknown)
        ++Result.UnknownNegations;
      else
        ++Result.UnsatNegations;
    };

    // Generational negation: flip each not-yet-negated branch after the
    // inherited prefix depth.
    if (Opts.EnableIncrementalSolver) {
      // Mirror the path onto the solver's assertion stack: push each
      // taken condition in path order; before pushing entry I's taken
      // form, pose prefix(0..I-1) ∧ ¬condition(I) as a one-push
      // excursion. Each level's cumulative case expansion is cached, so
      // a negation at depth I re-expands only the pushed negation.
      Solver.clearAssertions();
      for (std::size_t I = 0; I < Entries.size(); ++I) {
        if (I >= Item.Depth && Entries[I].Negatable) {
          Solver.pushAssertion(Entries[I].Taken ? B.notB(Entries[I].Condition)
                                                : Entries[I].Condition);
          SolveResult SR = Solver.solveStack();
          // assertions() == the prefix vector the from-scratch strategy
          // would build, so ladder rungs re-pose the identical query.
          FinishNegation(I, Solver.assertions(), std::move(SR));
          Solver.popAssertion();
        }
        Solver.pushAssertion(Entries[I].Taken ? Entries[I].Condition
                                              : B.notB(Entries[I].Condition));
      }
    } else {
      for (std::size_t I = Item.Depth; I < Entries.size(); ++I) {
        if (!Entries[I].Negatable)
          continue;
        std::vector<const BoolTerm *> Prefix;
        Prefix.reserve(I + 1);
        for (std::size_t J = 0; J < I; ++J)
          Prefix.push_back(Entries[J].Taken ? Entries[J].Condition
                                            : B.notB(Entries[J].Condition));
        Prefix.push_back(Entries[I].Taken ? B.notB(Entries[I].Condition)
                                          : Entries[I].Condition);
        FinishNegation(I, Prefix, Solver.solve(Prefix));
      }
    }
  }

  Result.Solver = Solver.stats();
  Result.Solver.add(LadderStats);
  if (Bud.expired())
    Result.BudgetExhausted = true;
  Result.BudgetNote = Bud.describe();
  // Provable exhaustion: the loop drained its frontier (not an
  // iteration/path cap with work still queued), nothing was cut short
  // by budget, and every negation got a definite answer.
  Result.FrontierExhausted =
      Queue.empty() && !Result.BudgetExhausted && Result.UnknownNegations == 0;
  if (Opts.Trace) {
    // TraceScope zeroes Millis when the campaign runs untimed, so this
    // span never breaks trace byte-identity.
    TraceEvent E;
    E.Kind = TraceEventKind::ExploreDone;
    E.Detail = Result.BudgetExhausted ? "budget-exhausted" : "complete";
    E.Value = Result.Paths.size();
    E.Extra = Result.Iterations;
    E.Millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - ExploreStart)
                   .count();
    Opts.Trace->emit(std::move(E));
  }
  return Result;
}
