//===- concolic/ConcolicExplorer.h - Interpreter path exploration ------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concolic exploration loop of the paper (§2.3, Figure 2): execute
/// the instruction on concrete inputs while recording symbolic path
/// conditions, then repeatedly negate the last not-already-negated
/// condition, solve, and re-execute with the new model — until every
/// reachable path has been visited.
///
/// Unlike classic concolic testing, exploration does *not* stop at
/// concrete errors: every exit condition (success, failure, message send,
/// method return, invalid frame, invalid memory access) is a first-class
/// outcome attached to its path.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_CONCOLIC_CONCOLICEXPLORER_H
#define IGDT_CONCOLIC_CONCOLICEXPLORER_H

#include "concolic/PathSolution.h"
#include "solver/Solver.h"
#include "vm/InstructionCatalog.h"
#include "vm/ObjectMemory.h"
#include "vm/VMConfig.h"

#include <memory>

namespace igdt {

/// Exploration tunables.
struct ExplorerOptions {
  /// Maximum distinct paths retained per instruction.
  unsigned MaxPaths = 160;
  /// Maximum concolic executions per instruction.
  unsigned MaxIterations = 600;
  /// Operand-stack depth the differential harness supports; deeper paths
  /// are curated out (paper §5.2).
  std::int64_t MaxReplayStackDepth = 8;
  SolverOptions Solver;
  /// Per-instruction exploration budget (a zero field is unlimited).
  /// One work unit is one solver search node; the explorer and solver
  /// poll it cooperatively and stop with a partial result on expiry.
  BudgetOptions InstructionBudget;
  /// External budget used instead of InstructionBudget when non-null
  /// (non-owning), so a campaign layer can read the budget state after
  /// a fault unwound the exploration.
  Budget *ExternalBudget = nullptr;
  /// Degradation-ladder depth: how many progressively cheaper solver
  /// configurations to retry an Unknown negation with before recording
  /// an UnknownNegation. 0 disables the ladder.
  unsigned LadderRungs = 2;
  /// Memoize solver queries within one exploration (exact answers plus
  /// Unsat-core subsumption). Purely an optimisation: results are
  /// bit-identical with the cache on or off because the solver RNG is
  /// seeded from query content, not query order.
  bool EnableSolverCache = true;
  /// Optional campaign-scope index of proven-Unsat cases, shared
  /// across explorations and worker threads (non-owning; see
  /// SolverCache.h for why sharing Unsat — and only Unsat — is sound
  /// and scheduling-transparent). Consulted only when EnableSolverCache
  /// is on, so "cache off" disables every memo tier at once.
  SharedUnsatIndex *SharedUnsat = nullptr;
  /// Whether a tier-0 model-bank hit may *skip* the full solve. The bank
  /// itself is always consulted and always fed — it is part of the
  /// defined exploration algorithm, since which model answers a query
  /// shapes the frontier — so turning this off does not remove the bank;
  /// it makes every hit also run the full search in a throwaway shadow
  /// solver and discard it (see SolverOptions::ModelCacheSkips). On and
  /// off are byte-identical in every output; off exists to A/B the
  /// claimed savings honestly.
  bool EnableModelCache = true;
  /// How many recent satisfying models the per-exploration bank keeps.
  std::size_t ModelBankCapacity = 8;
  /// Mirror the path stack onto the solver's assertion stack and solve
  /// negations with solveStack(), reusing each prefix's cumulative case
  /// expansion, instead of re-posing every negation as a from-scratch
  /// conjunct vector. Bit-identical either way (the solver guarantees
  /// solveStack() ≡ solve() on the same conjuncts); off exists for the
  /// same honest-A/B reason as EnableModelCache.
  bool EnableIncrementalSolver = true;
  /// Harness-fault injection (campaign self-tests): poison the
  /// exploration heap so the first materialisation trips the integrity
  /// check.
  bool InjectHeapCorruption = false;
  /// Observability sink (non-owning, may be null). Propagated into the
  /// primary solver and every ladder rung; the explorer itself emits
  /// PathExplored per retained path, LadderRung per retry, and one
  /// ExploreDone span when the frontier empties.
  TraceSink *Trace = nullptr;
};

/// Everything produced by exploring one instruction. Owns the term arena,
/// heap and method the path solutions reference.
struct ExplorationResult {
  const InstructionSpec *Spec = nullptr;
  /// Synthetic spec for sequence explorations (Spec points into it).
  std::unique_ptr<InstructionSpec> OwnedSpec;
  /// True when the whole method was executed as one fragment (the
  /// sequence-testing extension) rather than a single instruction.
  bool IsSequence = false;
  std::unique_ptr<CompiledMethod> Method;
  std::unique_ptr<TermBuilder> Builder;
  std::unique_ptr<ObjectMemory> Memory;
  std::vector<PathSolution> Paths;

  unsigned Iterations = 0;
  unsigned UnknownNegations = 0; // solver gave up on a negated prefix
  unsigned UnsatNegations = 0;
  SolverStats Solver;

  /// The instruction budget expired before the frontier emptied; the
  /// retained paths are still valid (just incomplete coverage).
  bool BudgetExhausted = false;
  /// Budget state when exploration stopped (for incident reports).
  std::string BudgetNote;
  /// Degradation-ladder activity: cheaper-rung retries attempted, and
  /// how many turned an Unknown negation into a definite answer.
  unsigned LadderRetries = 0;
  unsigned LadderRescues = 0;
  /// The frontier emptied with every negation settled definitively: no
  /// budget expiry and no residual Unknown negations, so the retained
  /// path set is *provably* the instruction's complete path set (under
  /// the iteration/path caps that were in force). The campaign
  /// scheduler's early-exit policy keys on this to refund the unspent
  /// budget to the shared pool.
  bool FrontierExhausted = false;

  /// Paths the differential harness can replay.
  unsigned curatedCount() const {
    unsigned N = 0;
    for (const PathSolution &P : Paths)
      N += P.Curated ? 1 : 0;
    return N;
  }
};

/// Drives concolic exploration of catalog instructions.
///
/// Ownership rule for parallel campaigns: *everything mutable is
/// worker-local*. Each exploration constructs its own TermBuilder
/// (arena + leaf/const/negation consing caches), ObjectMemory (heap +
/// class table), solvers, query cache, RNGs and Budget; nothing of that
/// is ever shared across explorations, let alone threads, so the hot
/// path takes no locks. The only state a campaign may share between
/// concurrently-running explorations is immutable or pure: the
/// VMConfig, the InstructionSpec catalog (const magic statics), and the
/// fault plan (const queries). Determinism across thread counts then
/// follows from seeding: the solver RNG is derived from the query's
/// structural hash mixed with a stable hash of the instruction name, so
/// an instruction explores the same paths no matter which worker runs
/// it, in what order, or alongside what else.
class ConcolicExplorer {
public:
  ConcolicExplorer(const VMConfig &Config,
                   ExplorerOptions Options = ExplorerOptions())
      : Cfg(Config), Opts(Options) {}

  /// Explores every execution path of \p Spec.
  ExplorationResult explore(const InstructionSpec &Spec);

  /// Explores a whole byte-code *sequence* (the paper's future-work
  /// extension): \p Method runs as one fragment from PC 0 until it falls
  /// off the end or leaves through a non-Success exit.
  ExplorationResult exploreMethod(const CompiledMethod &Method,
                                  const std::string &Name);

  const ExplorerOptions &options() const { return Opts; }

private:
  ExplorationResult run(ExplorationResult Seed);

  const VMConfig &Cfg;
  ExplorerOptions Opts;
};

} // namespace igdt

#endif // IGDT_CONCOLIC_CONCOLICEXPLORER_H
