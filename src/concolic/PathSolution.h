//===- concolic/PathSolution.h - One explored execution path -----------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of exploring one interpreter execution path: the recorded
/// path condition, the input model (concrete values that reach the path),
/// snapshots of the abstract input and output frames, the exit condition
/// and the side effects — everything Figure 2 of the paper attaches to a
/// concolic execution column.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_CONCOLIC_PATHSOLUTION_H
#define IGDT_CONCOLIC_PATHSOLUTION_H

#include "solver/Model.h"
#include "symbolic/ConcolicValue.h"
#include "symbolic/Effects.h"
#include "symbolic/PathRecorder.h"
#include "vm/ExitCondition.h"

#include <string>
#include <vector>

namespace igdt {

/// Copy of a concolic frame at a point in time (input or output).
struct FrameSnapshot {
  ConcolicValue Receiver;
  std::vector<ConcolicValue> Locals;
  std::vector<ConcolicValue> Stack;
  std::uint32_t PC = 0;
};

/// One fully-described interpreter execution path.
struct PathSolution {
  /// Path condition as a conjunction (polarity applied).
  std::vector<const BoolTerm *> Constraints;
  /// Raw recorded entries (for negation bookkeeping and display).
  std::vector<PathEntry> Entries;

  ExitKind Exit = ExitKind::Success;
  SelectorId Selector = 0;
  std::uint8_t SendNumArgs = 0;
  ConcolicValue Result; // MethodReturn value / primitive result

  /// Solver model that drives this path (input constraints, solved).
  Model InputModel;

  FrameSnapshot Input;
  FrameSnapshot Output;

  std::vector<SlotStoreEffect> SlotStores;
  std::vector<ByteStoreEffect> ByteStores;
  std::vector<AllocationRecord> Allocations;

  /// False when the prototype harness cannot replay this path
  /// (paper §5.2: "curated paths").
  bool Curated = true;
  std::string CurationNote;
};

} // namespace igdt

#endif // IGDT_CONCOLIC_PATHSOLUTION_H
