//===- concolic/SequenceCatalog.cpp - Byte-code sequences under test ------------===//

#include "concolic/SequenceCatalog.h"

#include "vm/MethodBuilder.h"
#include "vm/SelectorTable.h"

using namespace igdt;

namespace {

std::vector<SequenceSpec> buildSequences() {
  std::vector<SequenceSpec> Out;
  auto Add = [&](const char *Name, const char *Description,
                 CompiledMethod Method) {
    Method.Name = Name;
    Out.push_back({Name, Description, std::move(Method)});
  };

  {
    MethodBuilder B("m");
    B.numTemps(1);
    std::uint8_t Lit = B.addLiteral(smallIntOop(5));
    B.pushLocal(0).pushLiteral(Lit).arith(ArithOp::Add).returnTop();
    Add("seq_local_plus_literal_return",
        "pushLocal + pushLiteral + add + returnTop: the parse-time stack "
        "carries a frame value and a constant into the inlined add",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.dup().arith(ArithOp::Mul);
    Add("seq_dup_square",
        "dup + mul: squaring through a duplicated parse-time entry",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.numTemps(1);
    B.storeLocal(0).pushLocal(0).pushLocal(0).arith(ArithOp::Add);
    Add("seq_store_reload_add",
        "storeLocal + two pushLocal + add: store-to-load forwarding "
        "through the frame",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.pushConstant(4).pushConstant(5).arith(ArithOp::Add).returnTop();
    Add("seq_constant_add",
        "two constant pushes feeding add: all operands are parse-time "
        "constants (no memory traffic in the optimising compilers)",
        B.build());
  }
  {
    // jumpFalse over a pop: a small diamond with a merge point whose two
    // sides reach it with different stack depths (legal for the dynamic
    // in-memory stack the compilers flush to).
    MethodBuilder B("m");
    B.jumpFalse(1); // over the pop
    B.pop();
    B.returnNil();
    Add("seq_diamond_pop",
        "jumpFalse over a pop with a control-flow merge before returnNil:"
        " the parse-time stack must be flushed at the merge",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.arith(ArithOp::Less).jumpFalse(1);
    B.returnTrue();
    B.returnFalse();
    Add("seq_compare_branch",
        "compare + conditional branch + two returns: the boolean flows "
        "from the inlined comparison into the branch",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.pushReceiver().identityEquals().jumpTrue(1);
    B.returnNil();
    B.returnReceiver();
    Add("seq_identity_branch",
        "identity test against the receiver feeding a branch", B.build());
  }
  {
    MethodBuilder B("m");
    B.numTemps(2);
    B.pushLocal(0)
        .pushLocal(1)
        .arith(ArithOp::Mul)
        .storeLocal(0)
        .pushLocal(0);
    Add("seq_mul_store_reload",
        "multiply two locals, store, reload: mixes inlined arithmetic "
        "with frame traffic",
        B.build());
  }
  {
    MethodBuilder B("m");
    std::uint8_t Sel = B.addLiteral(smallIntOop(SelectorAt));
    B.dup().send(Sel, 1);
    Add("seq_dup_send",
        "dup + send: the parse-time stack must be flushed for the "
        "trampoline with the duplicated value intact",
        B.build());
  }
  {
    MethodBuilder B("m");
    B.pushConstant(3) // 0
        .arith(ArithOp::BitAnd)
        .pushConstant(4) // 1
        .arith(ArithOp::BitOr)
        .returnTop();
    Add("seq_bitops_chain",
        "bitAnd with 0 then bitOr with 1, returning the result: chains "
        "two inlined bit operations",
        B.build());
  }
  return Out;
}

} // namespace

const std::vector<SequenceSpec> &igdt::allSequences() {
  static const std::vector<SequenceSpec> Catalog = buildSequences();
  return Catalog;
}

const SequenceSpec *igdt::findSequence(const std::string &Name) {
  for (const SequenceSpec &S : allSequences())
    if (S.Name == Name)
      return &S;
  return nullptr;
}
