//===- concolic/SequenceCatalog.h - Byte-code sequences under test -------------===//
//
// Part of the IGDT project: interpreter-guided differential JIT testing.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A catalog of byte-code *sequences* for the sequence-testing extension
/// (the paper's stated future work: "generate minimal and relevant
/// byte-code sequences for unit testing the JIT compiler"). Sequences
/// exercise exactly what single-instruction tests cannot: the parse-time
/// stack carrying values across instructions, constant folding through
/// pushes, flushes at control-flow merge points, and register reuse
/// across byte-codes.
///
//===----------------------------------------------------------------------===//

#ifndef IGDT_CONCOLIC_SEQUENCECATALOG_H
#define IGDT_CONCOLIC_SEQUENCECATALOG_H

#include "vm/CompiledMethod.h"

#include <string>
#include <vector>

namespace igdt {

/// One byte-code sequence under test.
struct SequenceSpec {
  std::string Name;
  std::string Description;
  CompiledMethod Method;
};

/// Returns the built-in sequences.
const std::vector<SequenceSpec> &allSequences();

/// Finds a sequence by name; nullptr when absent.
const SequenceSpec *findSequence(const std::string &Name);

} // namespace igdt

#endif // IGDT_CONCOLIC_SEQUENCECATALOG_H
