//===- api/Session.cpp - The unified IGDT entry point -------------------------===//

#include "api/Session.h"

#include "api/Requests.h"
#include "support/Flags.h"

#include <stdexcept>
#include <utility>

using namespace igdt;

// Definition of the deprecated shim; new code goes through
// requestFromFlags() + Session::runCampaign(const CampaignRequest&).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
void igdt::addSessionFlags(FlagParser &Flags, SessionConfig &Config) {
  Flags.add("jobs", &Config.Campaign.Jobs,
            "campaign worker threads (0 = hardware)");
  Flags.add("workers", &Config.Campaign.WorkerProcesses,
            "campaign worker processes (0 = in-process threads)");
  Flags.add("worker-deadline-millis", &Config.Campaign.WorkerDeadlineMillis,
            "watchdog deadline per worker item in ms (0 = none)");
  Flags.add("worker-backoff-millis", &Config.Campaign.WorkerBackoffMillis,
            "base respawn backoff after a worker failure in ms");
  Flags.add("max-bytecodes", &Config.Campaign.Harness.MaxBytecodes,
            "limit byte-code instructions (0 = all)");
  Flags.add("max-native-methods", &Config.Campaign.Harness.MaxNativeMethods,
            "limit native methods (0 = all)");
  Flags.add("only", &Config.Campaign.OnlyInstructions,
            "restrict to this instruction (repeatable)");
  Flags.add("checkpoint", &Config.Campaign.CheckpointPath,
            "JSONL checkpoint file (resume + append)");
  Flags.add("incidents", &Config.Campaign.IncidentLogPath,
            "JSONL incident report file");
  Flags.add("trace", &Config.Campaign.TracePath,
            "JSONL trace file (merge-deterministic event stream)");
  Flags.add("profile", &Config.Profile,
            "collect metrics and print the end-of-run profile");
  Flags.add("deterministic", &Config.Deterministic,
            "drop wall timings so outputs are topology-independent");
  Flags.add("stop-after", &Config.Campaign.StopAfter,
            "stop after N new instructions (0 = run to completion)");
  Flags.add("max-attempts", &Config.Campaign.MaxAttempts,
            "attempts per instruction before quarantine");
  Flags.add("campaign-wall-millis", &Config.Campaign.CampaignWallMillis,
            "campaign wall-clock ceiling in ms (0 = unlimited)");
  Flags.add("explore-wall-millis", &Config.Campaign.ExploreBudget.WallMillis,
            "per-instruction exploration wall budget in ms");
  Flags.add("explore-work-units", &Config.Campaign.ExploreBudget.WorkUnits,
            "per-instruction exploration work budget (solver nodes)");
  Flags.add("replay-wall-millis", &Config.Campaign.ReplayBudget.WallMillis,
            "per-instruction replay wall budget in ms");
  Flags.add("replay-work-units", &Config.Campaign.ReplayBudget.WorkUnits,
            "per-instruction replay work budget (tested paths)");
  Flags.add("total-units", &Config.Campaign.TotalExploreUnits,
            "campaign-level explore budget shared by all instructions "
            "(0 = unlimited)");
  Flags.add("schedule", &Config.Campaign.Schedule.Policy,
            "campaign schedule: fixed (byte-identical order) or adaptive");
  Flags.add("solver-tiers", &Config.Campaign.Schedule.SolverTiers,
            "cheap solver tiers below full strength (adaptive schedule)");
  Flags.add("budget-pool", &Config.Campaign.Schedule.BudgetPool,
            "redistribute provably unspent explore budget to starved "
            "instructions");
  Flags.add("budget-pool-cap", &Config.Campaign.Schedule.BudgetPoolCapFactor,
            "per-instruction budget ceiling after a grant (x base budget)");
  Flags.add("warm-start", &Config.Campaign.Schedule.WarmStartPath,
            "checkpoint JSONL whose yield stats seed the priority order");
  Flags.add("persist-yield", &Config.Campaign.Schedule.PersistYield,
            "write per-instruction yield stats into checkpoint records");
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

Session::Session(SessionConfig Config) : Cfg(std::move(Config)) {}

JsonlTraceSink *Session::writer() {
  if (!TraceWriter && !Cfg.Campaign.TracePath.empty()) {
    TraceOut.open(Cfg.Campaign.TracePath, std::ios::trunc);
    TraceWriter = std::make_unique<JsonlTraceSink>(TraceOut);
  }
  return TraceWriter.get();
}

void Session::publish(std::vector<TraceEvent> Events) {
  MetricsSink Sink(Metrics);
  JsonlTraceSink *Out = writer();
  for (TraceEvent &Event : Events) {
    Sink.emit(Event);
    if (Out)
      Out->emit(std::move(Event));
  }
}

ExplorationResult Session::explore(const InstructionSpec &Spec) {
  ExplorerOptions EOpts = Cfg.Campaign.Harness.Explorer;
  TraceBuffer Buffer;
  TraceScope Scope(&Buffer, Spec.Name, /*Attempt=*/1,
                   Cfg.Campaign.RecordTimings);
  EOpts.Trace = &Scope;
  ConcolicExplorer Explorer(Cfg.Campaign.Harness.VM, EOpts);
  ExplorationResult Result = Explorer.explore(Spec);
  foldSolverStats(Metrics, Result.Solver);
  publish(Buffer.take());
  return Result;
}

ExplorationResult Session::explore(const std::string &InstructionName) {
  const InstructionSpec *Spec = findInstruction(InstructionName);
  if (!Spec)
    throw std::invalid_argument("unknown catalog instruction: " +
                                InstructionName);
  return explore(*Spec);
}

DiffTestConfig Session::diffConfig(CompilerKind Kind, bool Arm) const {
  // Delegate to the harness so the façade and the evaluation drivers
  // derive byte-identical configurations from the same HarnessOptions.
  return EvaluationHarness(Cfg.Campaign.Harness).diffConfig(Kind, Arm);
}

PathTestOutcome Session::testPath(const ExplorationResult &Exploration,
                                  std::size_t PathIdx, CompilerKind Kind,
                                  bool Arm) {
  DiffTestConfig DCfg = diffConfig(Kind, Arm);
  TraceBuffer Buffer;
  TraceScope Scope(&Buffer, Exploration.Spec ? Exploration.Spec->Name : "",
                   /*Attempt=*/1, Cfg.Campaign.RecordTimings);
  DCfg.Trace = &Scope;
  // The façade's compile-once cache spans testPath calls: replaying the
  // paths of one exploration re-compiles each distinct unit only once
  // per session. "jit.*" metrics report the running totals.
  JitCacheStats Before = JitStats;
  DCfg.JitStats = &JitStats;
  if (Cfg.Campaign.Harness.EnableCodeCache)
    DCfg.CodeCache = &CodeCache;
  // Per-call engine/arena counters fold straight into the session
  // metrics (no running totals to subtract, unlike the jit cache).
  SimStats SimCounters;
  ReplayStats ReplayCounters;
  DCfg.SimCounters = &SimCounters;
  DCfg.Replay = &ReplayCounters;
  if (Cfg.Campaign.Harness.EnableReplayArena)
    DCfg.Arena = &Arena;
  DifferentialTester Tester(DCfg);
  PathTestOutcome Out = Tester.testPath(Exploration, PathIdx);
  JitCacheStats Delta;
  Delta.Compiles = JitStats.Compiles - Before.Compiles;
  Delta.CodeCacheHits = JitStats.CodeCacheHits - Before.CodeCacheHits;
  foldJitStats(Metrics, Delta);
  foldSimStats(Metrics, SimCounters);
  foldReplayStats(Metrics, ReplayCounters);
  publish(Buffer.take());
  return Out;
}

CampaignSummary Session::runCampaign() {
  CampaignOptions Opts = Cfg.Campaign;
  if (Cfg.Profile)
    Opts.CollectMetrics = true;
  if (Cfg.Deterministic)
    Opts.RecordTimings = false;
  if (TraceWriter) {
    // The session writer is already appending (a direct explore or
    // testPath opened it): route the campaign's merged stream into the
    // same file instead of letting the runner truncate it.
    Opts.TracePath.clear();
    Opts.ExtraTraceSink = TraceWriter.get();
  }
  CampaignSummary Summary = CampaignRunner(Opts).run();
  Metrics.merge(Summary.Metrics);
  LastProfile.reset();
  if (Cfg.Profile)
    LastProfile = std::make_unique<ProfileReport>(
        buildCampaignProfile(Summary, Cfg.TopInstructions));
  return Summary;
}

CampaignSummary Session::runCampaign(const CampaignRequest &Request,
                                     VerdictStore *Store) {
  Cfg = Request.toSessionConfig();
  Cfg.Campaign.Store = Store;
  return runCampaign();
}
